package krcore

import (
	"fmt"
	"io"
	"sort"

	"krcore/internal/attr"
	"krcore/internal/similarity"
	"krcore/internal/snapshot"
)

// SaveSnapshot serialises the engine — graph, attribute store, every
// cached similarity index and filtered graph, every prepared (k,r)
// setting — into the versioned snapshot format, so a later LoadEngine
// warm starts in milliseconds instead of rebuilding all of it. Only
// engines over the built-in attribute metrics (Euclidean, Jaccard,
// weighted Jaccard) serialise; custom metrics return an error.
//
// The snapshot captures prepared state, not statistics: the Hits and
// Misses counters are NOT persisted and restart at zero on load
// (Thresholds and Prepared are structural and survive). Entries still
// being built by a concurrent query when SaveSnapshot runs are
// skipped; they rebuild lazily on the loaded engine.
//
// Snapshots are written deterministically — saving the same engine
// state twice produces identical bytes — and re-encoding a loaded
// snapshot is byte-stable, which the golden-file tests pin down.
func (e *Engine) SaveSnapshot(w io.Writer) error {
	st, err := e.snapshotState()
	if err != nil {
		return err
	}
	return snapshot.Write(w, st)
}

// LoadEngine reconstructs an engine saved by Engine.SaveSnapshot or
// DynamicEngine.SaveSnapshot (the dynamic journal position is ignored
// here — use LoadDynamicEngine to resume updates). Malformed input
// returns a *snapshot.FormatError. See SaveSnapshot for what a
// snapshot does and does not carry.
func LoadEngine(r io.Reader) (*Engine, error) {
	st, err := snapshot.Read(r)
	if err != nil {
		return nil, err
	}
	return engineFromState(st)
}

// SaveSnapshot serialises the dynamic engine: everything
// Engine.SaveSnapshot captures plus the update journal position
// (JournalOffset) and maintenance counters, so a crashed process
// recovers by loading the snapshot and replaying its update journal
// from that offset (see updates.Stream.ReplayStreamFrom). Only the
// capture runs under the engine's read lock — the attribute store (the
// one piece of captured state mutations modify in place) is cloned
// before the lock is released, and the snapshot encoding streams to w
// with no lock held, so neither queries nor mutations wait for the
// write I/O.
func (d *DynamicEngine) SaveSnapshot(w io.Writer) error {
	st, err := d.snapshotLocked()
	if err != nil {
		return err
	}
	return snapshot.Write(w, st)
}

// snapshotLocked captures a consistent serialisable state under the
// read lock. Everything captured is immutable-after-publication
// (patched CSR graphs, built oracles, prepared components) except the
// attribute store, which SetAttributes/AddVertex mutate in place — it
// is deep-cloned here so the caller can encode after unlock.
func (d *DynamicEngine) snapshotLocked() (*snapshot.EngineState, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	st, err := d.eng.snapshotState()
	if err != nil {
		return nil, err
	}
	switch {
	case st.Geo != nil:
		st.Geo = st.Geo.Clone()
	case st.Keywords != nil:
		st.Keywords = st.Keywords.Clone()
	case st.Weighted != nil:
		st.Weighted = st.Weighted.Clone()
	}
	st.Dynamic = &snapshot.DynamicState{
		Updates:            d.stats.Updates,
		Batches:            d.stats.Batches,
		Version:            d.stats.Version,
		IndexesKept:        d.stats.IndexesKept,
		IndexesRebuilt:     d.stats.IndexesRebuilt,
		ComponentsReused:   d.stats.ComponentsReused,
		ComponentsRebuilt:  d.stats.ComponentsRebuilt,
		GroupCommits:       d.stats.GroupCommits,
		PatchesIncremental: d.stats.PatchesIncremental,
		PatchesFull:        d.stats.PatchesFull,
		CoreVisited:        d.stats.CoreVisited,
	}
	return st, nil
}

// LoadDynamicEngine reconstructs a mutable serving engine from a
// snapshot. The engine owns a fresh attribute store decoded from the
// snapshot, accepts updates immediately, and reports the saved journal
// position through JournalOffset — zero when the snapshot was written
// by a static Engine. Malformed input returns a
// *snapshot.FormatError.
func LoadDynamicEngine(r io.Reader) (*DynamicEngine, error) {
	st, err := snapshot.Read(r)
	if err != nil {
		return nil, err
	}
	eng, err := engineFromState(st)
	if err != nil {
		return nil, err
	}
	attrs, err := dynamicAttrsFor(st)
	if err != nil {
		return nil, err
	}
	de := &DynamicEngine{attrs: attrs, g: eng.g, eng: eng}
	if st.Dynamic != nil {
		de.stats = DynamicStats{
			Updates:            st.Dynamic.Updates,
			Batches:            st.Dynamic.Batches,
			Version:            st.Dynamic.Version,
			IndexesKept:        st.Dynamic.IndexesKept,
			IndexesRebuilt:     st.Dynamic.IndexesRebuilt,
			ComponentsReused:   st.Dynamic.ComponentsReused,
			ComponentsRebuilt:  st.Dynamic.ComponentsRebuilt,
			GroupCommits:       st.Dynamic.GroupCommits,
			PatchesIncremental: st.Dynamic.PatchesIncremental,
			PatchesFull:        st.Dynamic.PatchesFull,
			CoreVisited:        st.Dynamic.CoreVisited,
		}
	}
	return de, nil
}

// JournalOffset returns the number of update operations the engine has
// accepted since its original construction — the position an external
// update journal should resume from after loading a snapshot of this
// engine. It equals DynamicStats().Updates and survives
// SaveSnapshot/LoadDynamicEngine round trips.
func (d *DynamicEngine) JournalOffset() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.stats.Updates
}

// snapshotState captures the engine's fully built cache entries as a
// serialisable state. Entries mid-construction are skipped.
func (e *Engine) snapshotState() (*snapshot.EngineState, error) {
	st := &snapshot.EngineState{Graph: e.g}
	switch m := e.metric.(type) {
	case similarity.Euclidean:
		st.Kind, st.Geo = attr.KindGeo, m.Store
	case similarity.Jaccard:
		st.Kind, st.Keywords = attr.KindKeywords, m.Store
	case similarity.WeightedJaccard:
		st.Kind, st.Weighted = attr.KindWeighted, m.Store
	default:
		return nil, fmt.Errorf("krcore: cannot snapshot engine with metric %T: only the built-in attribute metrics serialise", e.metric)
	}
	e.mu.Lock()
	rs := make(map[float64]*rEntry, len(e.byR))
	for r, ent := range e.byR {
		rs[r] = ent
	}
	krs := make(map[krKey]*krEntry, len(e.byKR))
	for key, ent := range e.byKR {
		krs[key] = ent
	}
	e.mu.Unlock()
	for r, ent := range rs {
		if !ent.oracleReady.Load() {
			continue
		}
		th := snapshot.Threshold{R: r, Oracle: ent.oracle}
		if ent.ready.Load() {
			th.Filtered = ent.filtered
		}
		st.Thresholds = append(st.Thresholds, th)
	}
	sort.Slice(st.Thresholds, func(i, j int) bool { return st.Thresholds[i].R < st.Thresholds[j].R })
	// A prepared setting can finish building between the threshold
	// capture above and this loop (its rEntry was read as half-built),
	// so anchor every setting against the captured thresholds and skip
	// the orphans — they rebuild lazily on the loaded engine, exactly
	// like any other mid-construction entry.
	full := make(map[float64]bool, len(st.Thresholds))
	for _, th := range st.Thresholds {
		if th.Filtered != nil {
			full[th.R] = true
		}
	}
	for key, ent := range krs {
		if !ent.ready.Load() || ent.err != nil || !full[key.r] {
			continue
		}
		st.Prepared = append(st.Prepared, snapshot.PreparedSetting{K: key.k, R: key.r, Pr: ent.pr})
	}
	sort.Slice(st.Prepared, func(i, j int) bool {
		if st.Prepared[i].R != st.Prepared[j].R {
			return st.Prepared[i].R < st.Prepared[j].R
		}
		return st.Prepared[i].K < st.Prepared[j].K
	})
	return st, nil
}

// engineFromState rebuilds a serving engine around decoded state: the
// cache maps are seeded with the snapshot's entries, pre-fired so
// queries treat them as built.
func engineFromState(st *snapshot.EngineState) (*Engine, error) {
	metric, err := st.Metric()
	if err != nil {
		return nil, err
	}
	e := NewEngine(st.Graph, metric)
	for _, th := range st.Thresholds {
		if th.Filtered != nil {
			e.byR[th.R] = readyREntry(th.Oracle, th.Filtered)
		} else {
			e.byR[th.R] = oracleOnlyREntry(th.Oracle)
		}
	}
	for _, ps := range st.Prepared {
		e.byKR[krKey{k: ps.K, r: ps.R}] = readyKREntry(ps.Pr)
	}
	return e, nil
}

// oracleOnlyREntry wraps an already-built oracle (with bulk index)
// whose filtered graph stays lazy, mirroring an entry created by
// Engine.Oracle alone.
func oracleOnlyREntry(o *Oracle) *rEntry {
	ent := &rEntry{oracle: o}
	ent.oracleOnce.Do(func() {})
	ent.oracleReady.Store(true)
	return ent
}

// dynamicAttrsFor wraps the decoded attribute store as the engine's
// mutable store.
func dynamicAttrsFor(st *snapshot.EngineState) (DynamicAttributes, error) {
	switch st.Kind {
	case attr.KindGeo:
		return &GeoAttributes{store: st.Geo}, nil
	case attr.KindKeywords:
		return &KeywordAttributes{store: st.Keywords}, nil
	case attr.KindWeighted:
		return &WeightedKeywordAttributes{store: st.Weighted}, nil
	default:
		return nil, fmt.Errorf("krcore: unknown attribute kind %d", st.Kind)
	}
}
