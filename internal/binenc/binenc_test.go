package binenc

import (
	"io"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var b Buffer
	b.U8(7)
	b.U32(0xdeadbeef)
	b.U64(1 << 40)
	b.F64(-3.25)
	b.F64(math.NaN())
	b.I32s([]int32{-1, 0, 5})
	b.I32s(nil)
	b.I64s([]int64{-9, 1 << 50})
	b.F64s([]float64{0.5, -0.5})

	r := NewReader(b.Bytes())
	if got := r.U8(); got != 7 {
		t.Fatalf("U8 = %d", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Fatalf("U32 = %x", got)
	}
	if got := r.U64(); got != 1<<40 {
		t.Fatalf("U64 = %d", got)
	}
	if got := r.F64(); got != -3.25 {
		t.Fatalf("F64 = %g", got)
	}
	if got := r.F64(); !math.IsNaN(got) {
		t.Fatalf("F64 NaN = %g", got)
	}
	if got := r.I32s(); len(got) != 3 || got[0] != -1 || got[2] != 5 {
		t.Fatalf("I32s = %v", got)
	}
	if got := r.I32s(); got != nil {
		t.Fatalf("empty I32s = %v, want nil", got)
	}
	if got := r.I64s(); len(got) != 2 || got[0] != -9 || got[1] != 1<<50 {
		t.Fatalf("I64s = %v", got)
	}
	if got := r.F64s(); len(got) != 2 || got[1] != -0.5 {
		t.Fatalf("F64s = %v", got)
	}
	if r.Remaining() != 0 || r.Err() != nil {
		t.Fatalf("remaining %d, err %v", r.Remaining(), r.Err())
	}
}

func TestUnderflowSticks(t *testing.T) {
	var b Buffer
	b.U32(1)
	r := NewReader(b.Bytes())
	r.U32()
	if got := r.U64(); got != 0 || r.Err() != io.ErrUnexpectedEOF {
		t.Fatalf("underflow: got %d, err %v", got, r.Err())
	}
	// Every later read keeps failing without panicking.
	if got := r.I32s(); got != nil || r.Err() != io.ErrUnexpectedEOF {
		t.Fatalf("sticky error lost: %v, %v", got, r.Err())
	}
}

// TestCorruptCountDoesNotAllocate feeds a length prefix far beyond the
// payload: the guarded Count must fail instead of allocating.
func TestCorruptCountDoesNotAllocate(t *testing.T) {
	var b Buffer
	b.U64(1 << 60) // claims 2^60 elements
	b.U32(0)
	for _, read := range []func(*Reader){
		func(r *Reader) { r.I32s() },
		func(r *Reader) { r.I64s() },
		func(r *Reader) { r.F64s() },
	} {
		r := NewReader(b.Bytes())
		read(r)
		if r.Err() != io.ErrUnexpectedEOF {
			t.Fatalf("corrupt count accepted: %v", r.Err())
		}
	}
}

func TestDeterministicBytes(t *testing.T) {
	enc := func() []byte {
		var b Buffer
		b.F64(1.5)
		b.I32s([]int32{3, 1})
		return b.Bytes()
	}
	a, c := enc(), enc()
	if string(a) != string(c) {
		t.Fatal("same values encoded to different bytes")
	}
}
