// Package binenc provides the fixed-width little-endian primitives
// shared by the snapshot encode/decode hooks of the data-structure
// packages (graph, attr, simgraph, simindex, core). The encoding is
// deliberately dumb — no varints, no compression — so that a value
// always encodes to the same bytes on every platform, which is what
// makes snapshot re-encoding byte-stable and golden files portable.
//
// Buffer appends primitives; Reader consumes them with a sticky error,
// so decode code reads fields linearly and checks Err once. Every
// slice read guards its element count against the bytes actually
// remaining, so a corrupt length can never trigger an outsized
// allocation.
package binenc

import (
	"encoding/binary"
	"io"
	"math"
)

// Buffer accumulates an encoded payload.
type Buffer struct{ b []byte }

// Bytes returns the encoded payload.
func (b *Buffer) Bytes() []byte { return b.b }

// Len returns the number of bytes encoded so far.
func (b *Buffer) Len() int { return len(b.b) }

// U8 appends one byte.
func (b *Buffer) U8(v uint8) { b.b = append(b.b, v) }

// U32 appends a little-endian uint32.
func (b *Buffer) U32(v uint32) { b.b = binary.LittleEndian.AppendUint32(b.b, v) }

// U64 appends a little-endian uint64.
func (b *Buffer) U64(v uint64) { b.b = binary.LittleEndian.AppendUint64(b.b, v) }

// F64 appends the IEEE-754 bit pattern of v.
func (b *Buffer) F64(v float64) { b.U64(math.Float64bits(v)) }

// I32s appends a length-prefixed int32 slice.
func (b *Buffer) I32s(v []int32) {
	b.U64(uint64(len(v)))
	for _, x := range v {
		b.U32(uint32(x))
	}
}

// I64s appends a length-prefixed int64 slice.
func (b *Buffer) I64s(v []int64) {
	b.U64(uint64(len(v)))
	for _, x := range v {
		b.U64(uint64(x))
	}
}

// F64s appends a length-prefixed float64 slice.
func (b *Buffer) F64s(v []float64) {
	b.U64(uint64(len(v)))
	for _, x := range v {
		b.F64(x)
	}
}

// Reader consumes a payload produced by Buffer. The first decode
// failure (underflow) sticks: every later read returns a zero value
// and Err reports io.ErrUnexpectedEOF.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a Reader over the payload.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the sticky decode error, nil while all reads succeeded.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// take consumes n bytes, or sets the sticky error on underflow.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.Remaining() < n {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	s := r.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

// F64 reads an IEEE-754 float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Raw consumes n bytes and returns them as a view into the payload
// (nil and a sticky error on underflow). Decode hot paths read a whole
// block once and convert in a tight loop instead of paying the
// per-element read overhead.
func (r *Reader) Raw(n int) []byte { return r.take(n) }

// Count reads a u64 element count and validates it against the bytes
// remaining (each element occupying at least elemSize bytes), so a
// corrupt count fails with ErrUnexpectedEOF instead of driving a huge
// allocation. elemSize must be >= 1.
func (r *Reader) Count(elemSize int) int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if n > uint64(r.Remaining()/elemSize) {
		r.err = io.ErrUnexpectedEOF
		return 0
	}
	return int(n)
}

// I32s reads a length-prefixed int32 slice (nil when empty).
func (r *Reader) I32s() []int32 {
	n := r.Count(4)
	if r.err != nil || n == 0 {
		return nil
	}
	raw := r.take(4 * n)
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out
}

// I64s reads a length-prefixed int64 slice (nil when empty).
func (r *Reader) I64s() []int64 {
	n := r.Count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	raw := r.take(8 * n)
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out
}

// F64s reads a length-prefixed float64 slice (nil when empty).
func (r *Reader) F64s() []float64 {
	n := r.Count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	raw := r.take(8 * n)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out
}
