package color

import (
	"math/rand"
	"testing"
	"testing/quick"

	"krcore/internal/clique"
	"krcore/internal/graph"
)

func completeGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.Build()
}

func TestGreedyBasics(t *testing.T) {
	if got := Greedy(completeGraph(5)); got != 5 {
		t.Fatalf("K5 colours = %d, want 5", got)
	}
	if got := Greedy(graph.NewBuilder(4).Build()); got != 1 {
		t.Fatalf("edgeless colours = %d, want 1", got)
	}
	if got := Greedy(graph.NewBuilder(0).Build()); got != 0 {
		t.Fatalf("empty colours = %d, want 0", got)
	}
	// Even cycle is 2-colourable and greedy on C4 achieves 2.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	if got := Greedy(b.Build()); got != 2 {
		t.Fatalf("C4 colours = %d, want 2", got)
	}
}

// Property: greedy colouring upper-bounds the maximum clique size.
func TestGreedyBoundsClique(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		return Greedy(g) >= clique.MaxCliqueSize(g)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// dissimOf builds the dissimilarity lists of the complement of g: j is
// dissimilar to i iff (i,j) is NOT an edge of g.
func dissimOf(g *graph.Graph) [][]int32 {
	n := g.N()
	out := make([][]int32, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && !g.HasEdge(int32(i), int32(j)) {
				out[i] = append(out[i], int32(j))
			}
		}
	}
	return out
}

// Property: ColorsComplement on dissim(g) produces a proper colouring
// count for g itself, i.e. it upper-bounds g's max clique and equals
// Greedy-style bounds in spirit. We check the clique bound, the complete
// and edgeless extremes, and agreement under an active subset.
func TestColorsComplementBoundsClique(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		return ColorsComplement(dissimOf(g), nil) >= clique.MaxCliqueSize(g)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestColorsComplementExtremes(t *testing.T) {
	// Complete graph: empty dissim lists -> every vertex needs its own colour.
	n := 6
	dis := make([][]int32, n)
	if got := ColorsComplement(dis, nil); got != n {
		t.Fatalf("complete graph colours = %d, want %d", got, n)
	}
	// Edgeless graph: everyone dissimilar -> one colour suffices.
	for i := range dis {
		for j := 0; j < n; j++ {
			if j != i {
				dis[i] = append(dis[i], int32(j))
			}
		}
	}
	if got := ColorsComplement(dis, nil); got != 1 {
		t.Fatalf("edgeless graph colours = %d, want 1", got)
	}
}

func TestColorsComplementActiveSubset(t *testing.T) {
	// 4 vertices, 0-1 similar, everything else dissimilar. Restricted to
	// {0,1} the complement graph is one edge: needs 2 colours; restricted
	// to {2,3}: 1 colour.
	dis := [][]int32{
		{2, 3},
		{2, 3},
		{0, 1, 3},
		{0, 1, 2},
	}
	if got := ColorsComplement(dis, []int32{0, 1}); got != 2 {
		t.Fatalf("active {0,1} colours = %d, want 2", got)
	}
	if got := ColorsComplement(dis, []int32{2, 3}); got != 1 {
		t.Fatalf("active {2,3} colours = %d, want 1", got)
	}
	if got := ColorsComplement(dis, nil); got != 2 {
		t.Fatalf("all active colours = %d, want 2", got)
	}
}
