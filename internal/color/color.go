// Package color implements greedy graph colouring for the colour-based
// maximum-clique size upper bound of Section 6.2 (following Yuan et al.,
// reference [31]): a k-clique needs k colours, so the number of colours
// used by any proper colouring upper-bounds the maximum clique size.
//
// The bound is evaluated on the similarity graph J'. Because the engine
// stores the complement (dissimilarity lists), ColorsComplement colours
// the complement graph directly without materialising J'.
package color

import (
	"sort"

	"krcore/internal/graph"
)

// Greedy colours g greedily in descending degree order and returns the
// number of colours used (0 for an empty graph).
func Greedy(g *graph.Graph) int {
	n := g.N()
	if n == 0 {
		return 0
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	color := make([]int, n)
	for i := range color {
		color[i] = -1
	}
	used := make([]bool, n+1)
	maxColor := 0
	for _, u := range order {
		for _, v := range g.Neighbors(u) {
			if color[v] >= 0 {
				used[color[v]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		color[u] = c
		if c+1 > maxColor {
			maxColor = c + 1
		}
		for _, v := range g.Neighbors(u) {
			if color[v] >= 0 {
				used[color[v]] = false
			}
		}
	}
	return maxColor
}

// ColorsComplement greedily colours the complement of the graph given by
// dissimilarity lists: vertices i and j are adjacent iff j is NOT in
// dissim[i]. Vertices with the fewest dissimilar partners (highest
// similarity degree) are coloured first. Runs in O(n·colors + Σ|dissim|)
// without materialising the dense complement.
//
// active selects the participating local vertices; nil means all of
// 0..len(dissim)-1.
func ColorsComplement(dissim [][]int32, active []int32) int {
	n := len(dissim)
	var order []int32
	if active == nil {
		order = make([]int32, n)
		for i := range order {
			order[i] = int32(i)
		}
	} else {
		order = append([]int32(nil), active...)
	}
	inSet := make([]bool, n)
	for _, u := range order {
		inSet[u] = true
	}
	// Highest similarity degree first = fewest dissimilar first.
	sort.Slice(order, func(i, j int) bool {
		di, dj := len(dissim[order[i]]), len(dissim[order[j]])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})

	color := make([]int, n)
	for i := range color {
		color[i] = -1
	}
	// colorCount[c] = number of coloured vertices with colour c.
	var colorCount []int
	// dissimWith[c] is scratch: among u's dissimilar coloured vertices,
	// how many have colour c.
	var dissimWith []int
	maxColor := 0
	for _, u := range order {
		for len(dissimWith) < maxColor {
			dissimWith = append(dissimWith, 0)
		}
		for i := range dissimWith {
			dissimWith[i] = 0
		}
		for _, v := range dissim[u] {
			if inSet[v] && color[v] >= 0 {
				dissimWith[color[v]]++
			}
		}
		// Colour c is blocked iff some coloured vertex with colour c is
		// similar to u, i.e. colorCount[c] > dissimWith[c].
		c := 0
		for c < maxColor && colorCount[c] > dissimWith[c] {
			c++
		}
		color[u] = c
		if c == maxColor {
			maxColor++
			colorCount = append(colorCount, 0)
		}
		colorCount[c]++
	}
	return maxColor
}
