//go:build !windows

package fsx

import "os"

// SyncDir fsyncs a directory, making a just-renamed entry durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
