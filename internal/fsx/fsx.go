// Package fsx holds the small filesystem-durability helpers shared by
// every component that renames files into place. Snapshot checkpoints
// (internal/snapshot.WriteFileAtomic) and journal compaction
// (internal/updates.Journal.CompactTo) both follow the same POSIX
// recipe — write a temp file, fsync it, rename it over the target —
// and that recipe is only crash-safe once the containing directory is
// fsynced too: until then the directory entry itself may not survive
// power loss, and a reader after the crash can still see the old
// inode.
package fsx
