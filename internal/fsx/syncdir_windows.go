//go:build windows

package fsx

// SyncDir is a no-op on Windows, which offers no directory-handle
// sync; rename durability is left to the OS.
func SyncDir(string) error { return nil }
