package updates

import (
	"os"
	"path/filepath"
	"testing"

	"krcore"
	"krcore/internal/attr"
)

// journalEngine builds a small dynamic engine plus a journal wired to
// it, in a temp dir.
func journalEngine(t *testing.T) (*krcore.DynamicEngine, *Journal, string) {
	t.Helper()
	d := smallDataset(t, attr.KindGeo)
	attrs, err := Attrs(d)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := krcore.NewDynamicEngine(d.Graph, attrs)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "updates.journal")
	j, err := OpenJournal(path, attr.KindGeo)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	eng.SetJournal(j)
	return eng, j, dir
}

// TestJournalWriteAheadAndRecovery drives updates through a journaled
// engine, then recovers a second engine from journal replay alone and
// checks the graphs agree.
func TestJournalWriteAheadAndRecovery(t *testing.T) {
	eng, j, _ := journalEngine(t)
	d := smallDataset(t, attr.KindGeo)
	ups := Random(d, 40, 3)
	committed, err := Replay(eng, ups, 4)
	if err != nil {
		t.Fatal(err)
	}
	if committed != 10 {
		t.Fatalf("committed %d batches, want 10", committed)
	}
	if j.End() != eng.JournalOffset() {
		t.Fatalf("journal end %d != engine offset %d", j.End(), eng.JournalOffset())
	}
	if j.Base() != 0 {
		t.Fatalf("fresh journal base = %d", j.Base())
	}

	// Recovery: fresh engine over the original dataset + full replay.
	attrs2, err := Attrs(smallDataset(t, attr.KindGeo))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := krcore.NewDynamicEngine(smallDataset(t, attr.KindGeo).Graph, attrs2)
	if err != nil {
		t.Fatal(err)
	}
	tail, base, err := j.Tail()
	if err != nil {
		t.Fatal(err)
	}
	if base != 0 {
		t.Fatalf("tail base = %d", base)
	}
	if _, err := tail.ReplayStreamFrom(rec, rec.JournalOffset(), 8); err != nil {
		t.Fatal(err)
	}
	if rec.N() != eng.N() || rec.M() != eng.M() {
		t.Fatalf("recovered N=%d M=%d, want N=%d M=%d", rec.N(), rec.M(), eng.N(), eng.M())
	}
}

// TestJournalReopenCounts closes and reopens a journal and checks the
// parsed base/ops survive, including after compaction.
func TestJournalReopenCounts(t *testing.T) {
	eng, j, dir := journalEngine(t)
	d := smallDataset(t, attr.KindGeo)
	ups := Random(d, 30, 9)
	if _, err := Replay(eng, ups, 3); err != nil {
		t.Fatal(err)
	}
	end := j.End()

	snapPath := filepath.Join(dir, "checkpoint.snap")
	dropped, err := Compact(eng, j, snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != end {
		t.Fatalf("compaction dropped %d ops, want all %d (no concurrent writers)", dropped, end)
	}
	if j.Base() != end || j.TailOps() != 0 {
		t.Fatalf("post-compaction base=%d tail=%d, want base=%d tail=0", j.Base(), j.TailOps(), end)
	}

	// More traffic after compaction lands in the tail.
	if _, err := Replay(eng, Random(d, 10, 11), 5); err != nil {
		t.Fatal(err)
	}
	if j.TailOps() != 10 {
		t.Fatalf("tail ops = %d, want 10", j.TailOps())
	}

	// Reopen: header base and tail count must be parsed back.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(filepath.Join(dir, "updates.journal"), attr.KindGeo)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Base() != end || j2.TailOps() != 10 {
		t.Fatalf("reopened base=%d tail=%d, want base=%d tail=10", j2.Base(), j2.TailOps(), end)
	}

	// Crash recovery from snapshot + short tail: the replayed engine
	// must land exactly where the journaled engine is.
	f, err := os.Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rec, err := krcore.LoadDynamicEngine(f)
	if err != nil {
		t.Fatal(err)
	}
	tail, base, err := j2.Tail()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tail.ReplayStreamFrom(rec, rec.JournalOffset()-base, 5); err != nil {
		t.Fatal(err)
	}
	if rec.N() != eng.N() || rec.M() != eng.M() || rec.JournalOffset() != eng.JournalOffset() {
		t.Fatalf("recovered N=%d M=%d off=%d, want N=%d M=%d off=%d",
			rec.N(), rec.M(), rec.JournalOffset(), eng.N(), eng.M(), eng.JournalOffset())
	}
}

// TestJournalKindMismatch rejects opening a journal with the wrong
// attribute kind.
func TestJournalKindMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j")
	j, err := OpenJournal(path, attr.KindGeo)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := OpenJournal(path, attr.KindKeywords); err == nil {
		t.Fatal("kind mismatch accepted")
	}
}

// TestJournalCompactSyncsDirectory is the durability regression test
// for journal compaction: CompactTo must fsync the journal's parent
// directory AFTER renaming the compacted file into place and BEFORE
// accepting new appends. Without it, a crash after compaction can
// leave the directory entry referencing the old inode while
// acknowledged appends went to the new file — committed write-ahead
// ops lost. The sync-ordering hook records what the directory entry
// held at sync time; pre-fix the hook never fires and the test fails.
func TestJournalCompactSyncsDirectory(t *testing.T) {
	eng, j, _ := journalEngine(t)
	d := smallDataset(t, attr.KindGeo)
	if _, err := Replay(eng, Random(d, 20, 7), 4); err != nil {
		t.Fatal(err)
	}
	end := j.End()

	type syncCall struct {
		dir     string
		content []byte
	}
	var calls []syncCall
	orig := dirSync
	dirSync = func(dir string) error {
		// Capture what the directory entry resolves to at sync time:
		// after the rename this is the compacted journal, before it the
		// old full one — which is how the ordering is asserted.
		data, err := os.ReadFile(j.path)
		if err != nil {
			t.Errorf("read journal at sync time: %v", err)
		}
		calls = append(calls, syncCall{dir: dir, content: data})
		return orig(dir)
	}
	defer func() { dirSync = orig }()

	if _, err := j.CompactTo(end); err != nil {
		t.Fatal(err)
	}
	if len(calls) == 0 {
		t.Fatal("CompactTo renamed the compacted journal without fsyncing the parent directory: the rename may not survive a crash")
	}
	last := calls[len(calls)-1]
	if want := filepath.Dir(j.path); last.dir != want {
		t.Fatalf("directory synced = %q, want the journal's parent %q", last.dir, want)
	}
	base, err := parseJournalHeader(last.content, attr.KindGeo)
	if err != nil {
		t.Fatalf("journal content at sync time unparseable: %v", err)
	}
	if base != end {
		t.Fatalf("at sync time the directory entry held base=%d, want the compacted journal (base=%d): the sync ran before the rename", base, end)
	}

	// And the journal must still accept appends after the synced
	// compaction (the reopen happened).
	if err := eng.AddEdge(0, 1); err != nil {
		if err := eng.RemoveEdge(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if j.TailOps() != 1 {
		t.Fatalf("post-compaction append not counted: tail=%d", j.TailOps())
	}
}

// TestJournalCompactBounds rejects compaction offsets outside the
// journal's range.
func TestJournalCompactBounds(t *testing.T) {
	eng, j, _ := journalEngine(t)
	if err := eng.AddEdge(0, 1); err != nil {
		if err := eng.RemoveEdge(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := j.CompactTo(-1); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := j.CompactTo(j.End() + 1); err == nil {
		t.Fatal("offset past end accepted")
	}
}
