package updates

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"krcore"
	"krcore/internal/attr"
)

// streamOps builds n distinct, always-valid geo-kind operations for
// driving a journal directly (AppendBatch does not validate against a
// graph, so edge endpoints only need to be distinct).
func streamOps(n int, seed int32) []krcore.Update {
	ops := make([]krcore.Update, 0, n)
	for i := int32(0); len(ops) < n; i++ {
		switch i % 4 {
		case 0:
			ops = append(ops, krcore.AddEdgeUpdate(seed+i, seed+i+1))
		case 1:
			ops = append(ops, krcore.RemoveEdgeUpdate(seed+i, seed+i+2))
		case 2:
			ops = append(ops, krcore.AddVertexUpdate())
		default:
			ops = append(ops, krcore.SetAttributesUpdate(seed+i, krcore.VertexAttributes{X: float64(i), Y: float64(seed)}))
		}
	}
	return ops
}

// opsText serialises ops in the journal text format, the
// representation equality is asserted on.
func opsText(t *testing.T, ops []krcore.Update) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, ops, attr.KindGeo); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func openStreamJournal(t *testing.T) *Journal {
	t.Helper()
	j, err := OpenJournal(filepath.Join(t.TempDir(), "stream.journal"), attr.KindGeo)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

// TestJournalReadFromAcrossCompaction is the regression test for the
// streaming-reader audit of Journal.CompactTo: a follower tailing the
// journal across a concurrent compaction must see every surviving
// entry whole and in order, never bytes mispositioned by the rename.
// Reads therefore address operations by ABSOLUTE offset against the
// journal's in-memory tail — a reader positioned on the replaced file
// handle would re-read from the wrong byte offset after the base
// shifted — and a read below the compacted base must fail typed
// (ErrCompacted) instead of silently serving whatever now lives at
// that file position.
func TestJournalReadFromAcrossCompaction(t *testing.T) {
	j := openStreamJournal(t)
	ops := streamOps(10, 100)
	if err := j.AppendBatch(ops); err != nil {
		t.Fatal(err)
	}

	before, end, err := j.ReadFrom(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if end != 10 || opsText(t, before) != opsText(t, ops[6:]) {
		t.Fatalf("pre-compaction read from 6 diverged (end=%d)", end)
	}

	if _, err := j.CompactTo(6); err != nil {
		t.Fatal(err)
	}

	// The same offsets after compaction: surviving entries identical...
	after, end, err := j.ReadFrom(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if end != 10 || opsText(t, after) != opsText(t, before) {
		t.Fatalf("read from 6 changed across compaction (end=%d):\n%s\nvs\n%s", end, opsText(t, after), opsText(t, before))
	}
	// ...and dropped offsets fail typed, with the end still reported so
	// the caller can tell how far behind it fell.
	_, end, err = j.ReadFrom(4, 0)
	if !errors.Is(err, ErrCompacted) {
		t.Fatalf("read below base returned %v, want ErrCompacted", err)
	}
	if end != 10 {
		t.Fatalf("ErrCompacted read reported end %d, want 10", end)
	}

	// Appends after the compaction extend the same absolute numbering.
	more := streamOps(5, 200)
	if err := j.AppendBatch(more); err != nil {
		t.Fatal(err)
	}
	got, end, err := j.ReadFrom(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if end != 15 || opsText(t, got) != opsText(t, more) {
		t.Fatalf("post-compaction append misnumbered (end=%d)", end)
	}
}

// TestJournalReadFromBounds pins the edges: reading exactly at end is
// an empty success, past end an error, and max caps the slice.
func TestJournalReadFromBounds(t *testing.T) {
	j := openStreamJournal(t)
	if err := j.AppendBatch(streamOps(4, 0)); err != nil {
		t.Fatal(err)
	}
	got, end, err := j.ReadFrom(4, 0)
	if err != nil || len(got) != 0 || end != 4 {
		t.Fatalf("read at end: ops=%d end=%d err=%v", len(got), end, err)
	}
	if _, _, err := j.ReadFrom(5, 0); err == nil {
		t.Fatal("read past end accepted")
	}
	got, _, err = j.ReadFrom(0, 3)
	if err != nil || len(got) != 3 {
		t.Fatalf("max ignored: ops=%d err=%v", len(got), err)
	}
}

// TestJournalStreamConcurrent tails a journal through WaitFrom/ReadFrom
// while a writer appends and periodically compacts behind the reader's
// confirmed progress: the reader must collect every operation exactly
// once, in order — the in-process model of a follower tailing a leader
// across checkpoints. Run under -race in CI.
func TestJournalStreamConcurrent(t *testing.T) {
	j := openStreamJournal(t)
	const total = 120
	all := streamOps(total, 1000)

	var consumed atomic.Int64
	writerDone := make(chan error, 1)
	go func() {
		for off := 0; off < total; off += 6 {
			if err := j.AppendBatch(all[off : off+6]); err != nil {
				writerDone <- err
				return
			}
			// Compact strictly behind the reader: everything the reader
			// has confirmed is fair game to drop.
			if off%24 == 0 {
				if _, err := j.CompactTo(consumed.Load()); err != nil {
					writerDone <- fmt.Errorf("compact: %w", err)
					return
				}
			}
		}
		writerDone <- nil
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var got []krcore.Update
	for int64(len(got)) < total {
		if ctx.Err() != nil {
			t.Fatalf("reader stalled at offset %d", len(got))
		}
		from := int64(len(got))
		j.WaitFrom(ctx, from, 50*time.Millisecond)
		ops, _, err := j.ReadFrom(from, 7)
		if err != nil {
			t.Fatalf("read from %d: %v", from, err)
		}
		got = append(got, ops...)
		consumed.Store(int64(len(got)))
	}
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}
	if opsText(t, got) != opsText(t, all) {
		t.Fatal("streamed tail diverged from the appended sequence")
	}
}

// TestJournalBrokenByFailedReopen is the pre-fix-failing regression
// for the compaction audit's second finding: when the compacted file
// has been renamed into place but the journal cannot reopen it, the
// still-held handle points at the UNLINKED previous file. Accepting
// appends through it acknowledges write-ahead records that no restart
// could ever read back — silent loss of acked writes. The journal must
// refuse further appends instead (ErrJournalBroken), so the engine
// fails the commit round and nothing is acked.
func TestJournalBrokenByFailedReopen(t *testing.T) {
	j := openStreamJournal(t)
	if err := j.AppendBatch(streamOps(8, 50)); err != nil {
		t.Fatal(err)
	}

	orig := reopenFile
	reopenFile = func(string) (*os.File, error) {
		return nil, errors.New("injected reopen failure")
	}
	defer func() { reopenFile = orig }()
	if _, err := j.CompactTo(8); err == nil {
		t.Fatal("compaction with failed reopen reported success")
	}
	reopenFile = orig

	// The poisoned journal must refuse the append — pre-fix this write
	// landed in the unlinked old file and "succeeded".
	err := j.AppendBatch(streamOps(1, 60))
	if !errors.Is(err, ErrJournalBroken) {
		t.Fatalf("append after failed reopen returned %v, want ErrJournalBroken", err)
	}

	// What is on disk is the compacted file, and it must contain every
	// op the journal ever acked — i.e. none past the compaction point,
	// because the poisoned journal acked nothing after it.
	j2, err := OpenJournal(j.path, attr.KindGeo)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Base() != 8 || j2.TailOps() != 0 {
		t.Fatalf("on-disk journal base=%d tail=%d, want base=8 tail=0", j2.Base(), j2.TailOps())
	}
}

// TestJournalResetTo restarts a journal at an arbitrary absolute
// offset — the follower-bootstrap path, where a freshly shipped
// snapshot puts the engine at the leader's offset and the local
// write-ahead journal must restart exactly there.
func TestJournalResetTo(t *testing.T) {
	j := openStreamJournal(t)
	if err := j.AppendBatch(streamOps(5, 7)); err != nil {
		t.Fatal(err)
	}
	if err := j.ResetTo(42); err != nil {
		t.Fatal(err)
	}
	if j.Base() != 42 || j.TailOps() != 0 || j.End() != 42 {
		t.Fatalf("after reset: base=%d tail=%d end=%d, want 42/0/42", j.Base(), j.TailOps(), j.End())
	}
	if _, _, err := j.ReadFrom(41, 0); !errors.Is(err, ErrCompacted) {
		t.Fatal("read below reset base not ErrCompacted")
	}
	more := streamOps(3, 9)
	if err := j.AppendBatch(more); err != nil {
		t.Fatal(err)
	}
	got, end, err := j.ReadFrom(42, 0)
	if err != nil || end != 45 || opsText(t, got) != opsText(t, more) {
		t.Fatalf("post-reset read diverged (end=%d, err=%v)", end, err)
	}
	// The reset survives a reopen (it is a durable rewrite, not an
	// in-memory fiction).
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(j.path, attr.KindGeo)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Base() != 42 || j2.TailOps() != 3 {
		t.Fatalf("reopened after reset: base=%d tail=%d, want 42/3", j2.Base(), j2.TailOps())
	}
	if err := j2.ResetTo(-1); err == nil {
		t.Fatal("negative reset accepted")
	}
}

// TestJournalWaitFrom covers the long-poll: an immediate return when
// data is already past the offset, a wake-up on append, and a timeout
// that reports the unchanged end.
func TestJournalWaitFrom(t *testing.T) {
	j := openStreamJournal(t)
	if err := j.AppendBatch(streamOps(2, 3)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if end := j.WaitFrom(ctx, 1, time.Minute); end != 2 {
		t.Fatalf("immediate wait returned end %d, want 2", end)
	}
	if end := j.WaitFrom(ctx, 2, 20*time.Millisecond); end != 2 {
		t.Fatalf("timed-out wait returned end %d, want 2", end)
	}

	done := make(chan int64, 1)
	go func() { done <- j.WaitFrom(ctx, 2, 30*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	if err := j.AppendBatch(streamOps(1, 4)); err != nil {
		t.Fatal(err)
	}
	select {
	case end := <-done:
		if end != 3 {
			t.Fatalf("woken wait returned end %d, want 3", end)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter never woke on append")
	}

	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if end := j.WaitFrom(cctx, 3, time.Minute); end != 3 {
		t.Fatalf("cancelled wait returned end %d, want 3", end)
	}
}

// TestParseTail pins the truncation semantics of the follower-side
// parser: complete lines parse, a torn final line is discarded — even
// when the torn prefix would still parse as a valid operation, the
// case that silently corrupts a replica — and garbage on a complete
// line is a hard error.
func TestParseTail(t *testing.T) {
	kind := attr.KindGeo
	full := "ae 0 1\nsa 3 1.5 2.5\nre 0 1\n"

	s, truncated, err := ParseTail(strings.NewReader(full), kind)
	if err != nil || truncated || len(s.Ups) != 3 {
		t.Fatalf("clean parse: ops=%d truncated=%v err=%v", len(s.Ups), truncated, err)
	}

	// Torn mid-entry, prefix unparseable: dropped, reported truncated.
	s, truncated, err = ParseTail(strings.NewReader(full[:len(full)-5]), kind)
	if err != nil || !truncated || len(s.Ups) != 2 {
		t.Fatalf("torn tail: ops=%d truncated=%v err=%v", len(s.Ups), truncated, err)
	}

	// Torn mid-entry where the prefix STILL parses: "sa 3 1.5 2.5"
	// truncated to "sa 3 1.5" is a valid-looking geo op with the wrong
	// payload. It must be discarded, not applied.
	s, truncated, err = ParseTail(strings.NewReader("ae 0 1\nsa 3 1.5"), kind)
	if err != nil || !truncated || len(s.Ups) != 1 {
		t.Fatalf("parseable torn line: ops=%d truncated=%v err=%v", len(s.Ups), truncated, err)
	}
	if s.Ups[0].Op != krcore.OpAddEdge {
		t.Fatalf("wrong surviving op %v", s.Ups[0].Op)
	}

	// A complete but malformed line is sender corruption, not network
	// truncation: hard error.
	if _, _, err := ParseTail(strings.NewReader("ae 0 1\nbogus op\nre 0 1\n"), kind); err == nil {
		t.Fatal("malformed complete line accepted")
	}

	// Comments and blanks are skipped like ParseStream.
	s, truncated, err = ParseTail(strings.NewReader("# header\n\nae 0 1\n"), kind)
	if err != nil || truncated || len(s.Ups) != 1 {
		t.Fatalf("comment handling: ops=%d truncated=%v err=%v", len(s.Ups), truncated, err)
	}

	// A mid-body read ERROR (how a dropped connection surfaces) is
	// truncation, not failure: the complete prefix is intact.
	s, truncated, err = ParseTail(io.MultiReader(strings.NewReader("ae 0 1\nre 0"), errReader{}), kind)
	if err != nil || !truncated || len(s.Ups) != 1 {
		t.Fatalf("read error: ops=%d truncated=%v err=%v", len(s.Ups), truncated, err)
	}
}

// errReader fails immediately — the tail of a dropped connection.
type errReader struct{}

func (errReader) Read([]byte) (int, error) { return 0, errors.New("connection reset") }
