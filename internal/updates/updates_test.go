package updates

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"krcore"
	"krcore/internal/attr"
	"krcore/internal/dataset"
)

func smallDataset(t *testing.T, kind attr.Kind) *dataset.Dataset {
	t.Helper()
	cfg, err := dataset.Preset("gowalla")
	if err != nil {
		t.Fatal(err)
	}
	cfg.N = 120
	cfg.NumCommunities = 4
	cfg.Kind = kind
	if kind != attr.KindGeo {
		cfg.Vocab, cfg.TopicWords, cfg.WordsPerVertex = 60, 10, 6
		cfg.MaxWeight = 4
	}
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRoundTripAllKinds(t *testing.T) {
	for _, kind := range []attr.Kind{attr.KindGeo, attr.KindKeywords, attr.KindWeighted} {
		t.Run(kind.String(), func(t *testing.T) {
			d := smallDataset(t, kind)
			ups := Random(d, 60, 7)
			if len(ups) != 60 {
				t.Fatalf("Random returned %d updates", len(ups))
			}
			var buf bytes.Buffer
			if err := Write(&buf, ups, kind); err != nil {
				t.Fatal(err)
			}
			back, err := Parse(&buf, kind)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(ups) != fmt.Sprint(back) {
				t.Fatalf("round trip diverged:\n%v\n%v", ups, back)
			}
		})
	}
}

func TestRandomReplays(t *testing.T) {
	for _, kind := range []attr.Kind{attr.KindGeo, attr.KindWeighted} {
		t.Run(kind.String(), func(t *testing.T) {
			d := smallDataset(t, kind)
			attrs, err := Attrs(d)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := krcore.NewDynamicEngine(d.Graph, attrs)
			if err != nil {
				t.Fatal(err)
			}
			ups := Random(d, 100, 11)
			batches, err := Replay(eng, ups, 8)
			if err != nil {
				t.Fatal(err)
			}
			if want := (100 + 7) / 8; batches != want {
				t.Fatalf("batches = %d, want %d", batches, want)
			}
			if ds := eng.DynamicStats(); ds.Updates != 100 {
				t.Fatalf("updates applied = %d, want 100", ds.Updates)
			}
			// The mutated engine still answers queries.
			if _, err := eng.Enumerate(3, engThreshold(d), krcore.EnumOptions{}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// engThreshold picks a valid threshold per kind for a smoke query.
func engThreshold(d *dataset.Dataset) float64 {
	if d.Kind == attr.KindGeo {
		return 15
	}
	return 0.4
}

func TestParseComments(t *testing.T) {
	in := "# header\n\nae 0 1\n  re 1 2  \nav\nsa 3 1.5 -2\n"
	ups, err := Parse(strings.NewReader(in), attr.KindGeo)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 4 {
		t.Fatalf("parsed %d updates, want 4", len(ups))
	}
	if ups[3].Op != krcore.OpSetAttributes || ups[3].Attrs.X != 1.5 || ups[3].Attrs.Y != -2 {
		t.Fatalf("sa parsed wrong: %+v", ups[3])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in   string
		kind attr.Kind
	}{
		{"xx 1 2", attr.KindGeo},
		{"ae 1", attr.KindGeo},
		{"ae a b", attr.KindGeo},
		{"av 3", attr.KindGeo},
		{"sa", attr.KindGeo},
		{"sa x 1 2", attr.KindGeo},
		{"sa 0 1", attr.KindGeo},
		{"sa 0 a b", attr.KindGeo},
		{"sa 0 nokey", attr.KindKeywords},
		{"sa 0 5", attr.KindWeighted},
		{"sa 0 5:x", attr.KindWeighted},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.in), c.kind); err == nil {
			t.Errorf("Parse(%q, %v) accepted invalid input", c.in, c.kind)
		}
	}
}

func TestReplayReportsFailingBatch(t *testing.T) {
	d := smallDataset(t, attr.KindGeo)
	attrs, err := Attrs(d)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := krcore.NewDynamicEngine(d.Graph, attrs)
	if err != nil {
		t.Fatal(err)
	}
	ups := []krcore.Update{
		krcore.AddEdgeUpdate(0, 1),
		krcore.AddEdgeUpdate(5, 5), // invalid
	}
	if _, err := Replay(eng, ups, 1); err == nil {
		t.Fatal("invalid update must fail the replay")
	}
}

// TestReplayStreamLineNumbersAndAtomicity is the regression test for
// the -updates replay error handling: a semantically invalid update in
// mid-stream must abort with the 1-based source line of the offender,
// and the failing batch must not be partially committed — ApplyBatch
// atomicity observed through the replay path.
func TestReplayStreamLineNumbersAndAtomicity(t *testing.T) {
	d := smallDataset(t, attr.KindGeo)
	attrs, err := Attrs(d)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := krcore.NewDynamicEngine(d.Graph, attrs)
	if err != nil {
		t.Fatal(err)
	}
	// Line 1 is a comment and line 3 blank, so the ops sit on lines
	// 2, 4, 5, 6; the invalid edge (endpoint out of range) is line 5.
	in := "# stream\nae 0 1\n\nae 0 2\nae 0 99999\nae 0 3\n"
	stream, err := ParseStream(strings.NewReader(in), attr.KindGeo)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(stream.Lines) != "[2 4 5 6]" {
		t.Fatalf("bad line map: %v", stream.Lines)
	}

	// Batch size 4 puts every op in one batch: the valid "ae 0 2" in
	// the same batch as the offender must NOT be committed.
	n0, m0 := eng.N(), eng.M()
	hadEdge := eng.Graph().HasEdge(0, 2)
	committed, err := stream.ReplayStream(eng, 4)
	if err == nil {
		t.Fatal("invalid stream replayed cleanly")
	}
	if committed != 0 {
		t.Fatalf("committed %d batches, want 0", committed)
	}
	if !strings.Contains(err.Error(), "line 5") {
		t.Fatalf("error does not name line 5: %v", err)
	}
	if !strings.Contains(err.Error(), "discarded") {
		t.Fatalf("error does not state the batch was discarded: %v", err)
	}
	if eng.N() != n0 || eng.M() != m0 {
		t.Fatalf("failed batch partially committed: %d/%d -> %d/%d", n0, m0, eng.N(), eng.M())
	}
	if eng.Graph().HasEdge(0, 2) != hadEdge {
		t.Fatal("valid update from the discarded batch leaked into the graph")
	}

	// Batch size 1 commits the two leading valid ops, then fails on
	// line 5 with two batches committed.
	committed, err = stream.ReplayStream(eng, 1)
	if err == nil || !strings.Contains(err.Error(), "line 5") {
		t.Fatalf("want line-5 failure, got %v", err)
	}
	if committed != 2 {
		t.Fatalf("committed %d batches, want 2", committed)
	}
	if !strings.Contains(err.Error(), "2 batches committed") {
		t.Fatalf("error does not report committed batches: %v", err)
	}
}
