package updates

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"krcore"
	"krcore/internal/attr"
	"krcore/internal/fsx"
	"krcore/internal/snapshot"
)

// ErrCompacted reports a journal read below the journal's base offset:
// compaction has already dropped the requested operations. A streaming
// follower that hits it cannot catch up from the journal alone and must
// re-bootstrap from the journal's companion snapshot.
var ErrCompacted = errors.New("updates: offset compacted out of the journal")

// ErrJournalBroken reports a journal whose file handle can no longer be
// trusted: a compaction renamed the new file into place but could not
// reopen it, so the held handle points at the unlinked previous file.
// Appends acknowledged through that handle would vanish — the journal
// refuses them instead.
var ErrJournalBroken = errors.New("updates: journal broken by failed compaction")

// dirSync makes a just-renamed journal durable; a seam so the
// compaction regression test can observe that the sync happens, and
// happens after the rename.
var dirSync = fsx.SyncDir

// journalMagic is the first line of every journal file. The base field
// is the absolute journal offset (krcore.DynamicEngine.JournalOffset)
// of the file's first operation: a compacted journal carries only the
// tail past its companion snapshot, and base says where that tail
// starts.
const journalMagic = "# krcore-journal"

// Journal is a durable append-only update log in the package's text
// format, safe for concurrent appenders. It implements
// krcore.JournalAppender: wire it with DynamicEngine.SetJournal and
// every committed group is appended — and fsynced — as one write
// before the engine state changes (write-ahead), so a crashed process
// recovers by loading its last snapshot and replaying the journal tail
// from the snapshot's offset.
//
// Group commit is what makes the fsync affordable: the engine appends
// once per commit round, not once per ApplyBatch call, so N coalesced
// writers share a single disk flush.
type Journal struct {
	// mu's contract IS serialising the append/compact I/O — every
	// record hits the disk in commit order, holding writers back while
	// the previous write+fsync completes. krlint:iolock
	mu   sync.Mutex
	f    *os.File
	path string
	kind attr.Kind
	base int64 // absolute offset of the file's first operation
	ops  int64 // operations currently in the file
	obs  func(ops int, elapsed time.Duration)

	// mem mirrors the file's operations (mem[i] is absolute offset
	// base+i), so streaming readers are served by offset from memory —
	// never from the file handle, which compaction atomically replaces.
	// Its size is the journal tail's, which compaction keeps bounded.
	mem []krcore.Update
	// notify is closed and replaced on every append; long-poll readers
	// grab the current channel under mu and wait on it lock-free.
	notify chan struct{}
	// broken, once set, permanently fails appends: the handle may point
	// at an unlinked file (see ErrJournalBroken).
	broken error
}

// ParseKind maps an attribute-kind name (as reported by
// krcore.DynamicEngine.AttributeKind or attr.Kind.String) back to the
// attr.Kind an update journal needs for payload parsing.
func ParseKind(s string) (attr.Kind, error) {
	for _, k := range []attr.Kind{attr.KindKeywords, attr.KindWeighted, attr.KindGeo} {
		if s == k.String() {
			return k, nil
		}
	}
	return 0, fmt.Errorf("updates: no journal support for attribute kind %q", s)
}

// OpenJournal opens (or creates) the journal at path for the given
// attribute kind. Existing contents are validated and counted, so End
// reports where the engine should be before new appends are accepted.
func OpenJournal(path string, kind attr.Kind) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, path: path, kind: kind, notify: make(chan struct{})}
	if err := j.load(); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// load parses the existing file: header (when present) and operation
// count. A fresh, empty file gets its header written immediately.
func (j *Journal) load() error {
	data, err := io.ReadAll(j.f)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return j.writeHeader(0)
	}
	base, err := parseJournalHeader(data, j.kind)
	if err != nil {
		return fmt.Errorf("updates: journal %s: %w", j.path, err)
	}
	s, err := ParseStream(bytes.NewReader(data), j.kind)
	if err != nil {
		return fmt.Errorf("updates: journal %s: %w", j.path, err)
	}
	j.base = base
	j.ops = int64(len(s.Ups))
	j.mem = s.Ups
	return nil
}

// writeHeader writes a fresh header line for an empty file.
func (j *Journal) writeHeader(base int64) error {
	_, err := fmt.Fprintf(j.f, "%s kind=%s base=%d\n", journalMagic, j.kind, base)
	if err != nil {
		return err
	}
	j.base, j.ops, j.mem = base, 0, nil
	return j.f.Sync()
}

// parseJournalHeader validates the first line and returns the base
// offset. Header-less files (hand-written streams) get base 0.
func parseJournalHeader(data []byte, kind attr.Kind) (int64, error) {
	line := data
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		line = data[:i]
	}
	if !bytes.HasPrefix(line, []byte(journalMagic)) {
		return 0, nil
	}
	base := int64(0)
	for _, f := range strings.Fields(string(line))[2:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		switch k {
		case "kind":
			if v != kind.String() {
				return 0, fmt.Errorf("journal holds %s updates, engine expects %s", v, kind)
			}
		case "base":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				return 0, fmt.Errorf("bad base %q in journal header", v)
			}
			base = n
		}
	}
	return base, nil
}

// SetAppendObserver registers fn (nil to detach), called after every
// durable append with the appended operation count and the combined
// write+fsync latency — the disk-side half of a commit round's cost,
// which the serving layer exports as the journal fsync-latency
// histogram. fn runs under the journal's append lock: keep it to
// in-memory bookkeeping.
func (j *Journal) SetAppendObserver(fn func(ops int, elapsed time.Duration)) {
	j.mu.Lock()
	j.obs = fn
	j.mu.Unlock()
}

// AppendBatch appends one committed operation group as a single write
// followed by one fsync. The engine calls it once per commit round,
// before any in-memory state changes; an error fails the whole round
// with the engine untouched.
func (j *Journal) AppendBatch(batch []krcore.Update) error {
	var buf bytes.Buffer
	if err := Write(&buf, batch, j.kind); err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken != nil {
		return fmt.Errorf("updates: journal %s: %w", j.path, j.broken)
	}
	t0 := time.Now()
	if _, err := j.f.Write(buf.Bytes()); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.ops += int64(len(batch))
	j.mem = append(j.mem, batch...)
	// Wake every long-poll reader waiting for operations past the old
	// end; the next waiter generation gets a fresh channel.
	close(j.notify)
	j.notify = make(chan struct{})
	if j.obs != nil {
		j.obs(len(batch), time.Since(t0))
	}
	return nil
}

// Base returns the absolute journal offset of the file's first
// operation (0 for a never-compacted journal).
func (j *Journal) Base() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.base
}

// TailOps returns the number of operations currently in the file — the
// replay cost of the next crash recovery, and the number compaction
// guidance should watch.
func (j *Journal) TailOps() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ops
}

// End returns Base()+TailOps(): the absolute journal offset one past
// the last logged operation.
func (j *Journal) End() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.base + j.ops
}

// Tail re-reads the journal and returns its operations with their base
// offset — the crash-recovery read path. Call before wiring the
// journal to an engine; replay Ups[snapOffset-base:] (see
// Stream.ReplayStreamFrom) to bring a snapshot-loaded engine current.
func (j *Journal) Tail() (*Stream, int64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	defer j.f.Seek(0, io.SeekEnd)
	s, err := ParseStream(j.f, j.kind)
	if err != nil {
		return nil, 0, fmt.Errorf("updates: journal %s: %w", j.path, err)
	}
	return s, j.base, nil
}

// reopenFile reopens the journal path after a rewrite; a seam so the
// poisoning regression test can observe what a reopen failure does to
// subsequently acknowledged appends.
var reopenFile = func(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
}

// CompactTo drops every operation before the absolute offset newBase,
// rewriting the file atomically (temp file + fsync + rename) so a
// crash mid-compaction leaves the previous journal intact. Operations
// at or past newBase are preserved: concurrent appends are safe — they
// serialise against the rewrite and land in the new file. Concurrent
// streaming readers are safe too: reads address operations by absolute
// offset against the journal's in-memory tail (ReadFrom), never
// through the replaced file handle, so a reader tailing across the
// compaction sees every surviving entry whole, and a reader whose
// offset was dropped gets ErrCompacted instead of mispositioned bytes.
func (j *Journal) CompactTo(newBase int64) (dropped int64, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if newBase < j.base {
		return 0, fmt.Errorf("updates: compact to offset %d below journal base %d", newBase, j.base)
	}
	if newBase > j.base+j.ops {
		return 0, fmt.Errorf("updates: compact to offset %d past journal end %d", newBase, j.base+j.ops)
	}
	dropped = newBase - j.base
	if err := j.rewrite(newBase, j.mem[dropped:]); err != nil {
		return 0, err
	}
	return dropped, nil
}

// ResetTo discards every operation and restarts the journal at the
// absolute offset base — the follower-bootstrap path: an engine just
// restored from a shipped snapshot is at that snapshot's journal
// offset, and a local write-ahead journal (fresh, or left over from a
// previous lineage) must restart exactly there for its recorded
// offsets to stay absolute.
func (j *Journal) ResetTo(base int64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if base < 0 {
		return fmt.Errorf("updates: reset to negative offset %d", base)
	}
	return j.rewrite(base, nil)
}

// rewrite atomically replaces the journal file with a header at
// newBase plus the kept operations, then swaps the handle. The caller
// holds j.mu. Once the rename has succeeded, any failure poisons the
// journal (ErrJournalBroken): the held handle points at the unlinked
// previous file, so accepting further appends would acknowledge
// write-ahead records no recovery could ever read back.
func (j *Journal) rewrite(newBase int64, keep []krcore.Update) error {
	if j.broken != nil {
		return fmt.Errorf("updates: journal %s: %w", j.path, j.broken)
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(j.path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := fmt.Fprintf(tmp, "%s kind=%s base=%d\n", journalMagic, j.kind, newBase); err != nil {
		tmp.Close()
		return err
	}
	if err := Write(tmp, keep, j.kind); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return err
	}
	// POSIX rename durability: until the containing directory is
	// fsynced, a crash can leave the directory entry pointing at the
	// OLD journal while subsequent acknowledged appends land in the new
	// file — committed write-ahead ops lost. Sync before accepting any
	// new appends (callers serialise on j.mu, held here).
	if err := dirSync(dir); err != nil {
		j.broken = ErrJournalBroken
		return fmt.Errorf("updates: journal rewritten but directory sync failed: %w", err)
	}
	nf, err := reopenFile(j.path)
	if err != nil {
		j.broken = ErrJournalBroken
		return fmt.Errorf("updates: journal rewritten but reopen failed: %w", err)
	}
	j.f.Close()
	j.f = nf
	j.base, j.ops = newBase, int64(len(keep))
	j.mem = append([]krcore.Update(nil), keep...)
	return nil
}

// ReadFrom returns up to max operations starting at the absolute
// journal offset from, plus the journal's current end — the streaming
// read path behind the leader's journal endpoint. Operations are
// served from the journal's in-memory tail by offset, so the read is
// immune to a concurrent compaction replacing the file. A from below
// the journal's base returns ErrCompacted (wrapped): those operations
// are gone, and the reader must re-bootstrap from the companion
// snapshot. from == end returns no operations and no error.
func (j *Journal) ReadFrom(from int64, max int) (ops []krcore.Update, end int64, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	end = j.base + j.ops
	if from < j.base {
		return nil, end, fmt.Errorf("updates: read from offset %d below journal base %d: %w", from, j.base, ErrCompacted)
	}
	if from > end {
		return nil, end, fmt.Errorf("updates: read from offset %d past journal end %d", from, end)
	}
	tail := j.mem[from-j.base:]
	if max > 0 && len(tail) > max {
		tail = tail[:max]
	}
	return append([]krcore.Update(nil), tail...), end, nil
}

// WaitFrom blocks until the journal end exceeds from, the wait elapses
// or ctx is cancelled, and returns the current end — the long-poll
// half of the streaming endpoint. It never returns an error: a timeout
// simply reports an end that is still <= from, which the caller
// surfaces as an empty (but successful) poll.
func (j *Journal) WaitFrom(ctx context.Context, from int64, wait time.Duration) int64 {
	deadline := time.Now().Add(wait)
	for {
		j.mu.Lock()
		end := j.base + j.ops
		ch := j.notify
		j.mu.Unlock()
		if end > from {
			return end
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return end
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return end
		}
	}
}

// Kind returns the attribute kind the journal's payloads are encoded
// for; streamed operations must be parsed with the same kind.
func (j *Journal) Kind() attr.Kind { return j.kind }

// Close releases the journal's file handle. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// Compact checkpoints the engine and shortens the journal: it writes
// the engine's snapshot to snapPath atomically, then drops every
// journal operation the snapshot already contains, leaving only the
// short tail of operations still in flight when the snapshot was
// captured. Replay cost after a crash stops growing with total update
// volume and becomes proportional to the update rate × checkpoint
// interval.
//
// The journal is write-ahead of the engine, so the tail kept is always
// a superset of what the snapshot lacks. The overlap is harmless:
// recovery replays from the snapshot's own JournalOffset, not from the
// journal's base, so operations the snapshot already contains are
// skipped, never re-applied.
func Compact(eng *krcore.DynamicEngine, j *Journal, snapPath string) (dropped int64, err error) {
	// Capture the committed offset BEFORE the snapshot: the snapshot may
	// include later commits, and keeping a slightly longer tail is safe
	// while dropping operations the snapshot lacks would lose data.
	offset := eng.JournalOffset()
	if _, err := snapshot.WriteFileAtomic(snapPath, eng.SaveSnapshot); err != nil {
		return 0, err
	}
	return j.CompactTo(offset)
}
