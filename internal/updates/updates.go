// Package updates defines a replayable text format for dynamic-graph
// update streams plus the adapters that wire a generated dataset into
// krcore.DynamicEngine. cmd/datagen writes streams, cmd/krcore replays
// them with -updates, and the expr harness uses Random for the
// update-latency experiment.
//
// Format: one operation per line; blank lines and lines starting with
// '#' are ignored.
//
//	ae <u> <v>       add the undirected edge (u,v)
//	re <u> <v>       remove the undirected edge (u,v)
//	av               add one isolated vertex
//	sa <u> <attrs>   set the attributes of u; the payload uses the
//	                 dataset vertex-line format for the stream's kind:
//	                 "x y" (geo), keyword ids (keywords), or
//	                 "key:weight" pairs (weighted keywords)
package updates

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"krcore"
	"krcore/internal/attr"
	"krcore/internal/dataset"
	"krcore/internal/similarity"
)

// Attrs wraps the dataset's attribute store as a
// krcore.DynamicAttributes, so the dataset can back a DynamicEngine.
// The engine owns the store from then on (see NewDynamicEngine).
func Attrs(d *dataset.Dataset) (krcore.DynamicAttributes, error) {
	switch d.Kind {
	case attr.KindGeo:
		return geoAttrs{store: d.Geo}, nil
	case attr.KindWeighted:
		return weightedAttrs{store: d.Weighted}, nil
	case attr.KindKeywords:
		return keywordAttrs{store: d.Keywords}, nil
	default:
		return nil, fmt.Errorf("updates: unsupported attribute kind %d", d.Kind)
	}
}

type geoAttrs struct{ store *attr.Geo }

func (a geoAttrs) Metric() krcore.Metric { return similarity.Euclidean{Store: a.store} }
func (a geoAttrs) Grow(n int)            { a.store.Grow(n) }
func (a geoAttrs) SetAttributes(u int32, v krcore.VertexAttributes) {
	a.store.SetVertex(u, attr.Point{X: v.X, Y: v.Y})
}

type keywordAttrs struct{ store *attr.Keywords }

func (a keywordAttrs) Metric() krcore.Metric { return similarity.Jaccard{Store: a.store} }
func (a keywordAttrs) Grow(n int)            { a.store.Grow(n) }
func (a keywordAttrs) SetAttributes(u int32, v krcore.VertexAttributes) {
	a.store.SetVertex(u, append([]int32(nil), v.Keys...))
}

type weightedAttrs struct{ store *attr.Weighted }

func (a weightedAttrs) Metric() krcore.Metric { return similarity.WeightedJaccard{Store: a.store} }
func (a weightedAttrs) Grow(n int)            { a.store.Grow(n) }
func (a weightedAttrs) SetAttributes(u int32, v krcore.VertexAttributes) {
	entries := make([]attr.WeightedEntry, 0, len(v.Keys))
	for i, k := range v.Keys {
		w := 1.0
		if i < len(v.Weights) {
			w = v.Weights[i]
		}
		entries = append(entries, attr.WeightedEntry{Key: k, Weight: w})
	}
	a.store.SetVertex(u, entries)
}

// Stream is a parsed update stream that remembers the source line of
// every operation, so a replay rejection can point back into the file
// it came from (Lines[i] is the 1-based line of Ups[i]).
type Stream struct {
	Ups   []krcore.Update
	Lines []int
}

// ParseStream reads an update stream for the given attribute kind,
// keeping source line numbers. A malformed line aborts the parse with
// its line number — nothing of the stream is considered applicable.
func ParseStream(r io.Reader, kind attr.Kind) (*Stream, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	s := &Stream{}
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		up, err := parseOp(fields, kind)
		if err != nil {
			return nil, fmt.Errorf("updates: line %d: %w", line, err)
		}
		s.Ups = append(s.Ups, up)
		s.Lines = append(s.Lines, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// ParseTail reads a journal-stream fragment that may have been cut off
// mid-transfer — the follower-side parse of a streamed tail. Complete
// lines (newline-terminated) parse exactly as in ParseStream; a final
// line without its terminating newline is discarded and reported via
// truncated=true rather than parsed, because a mid-entry cut can yield
// a line that still parses as a valid — but wrong — operation (an "sa"
// payload missing its last keywords, say). The caller applies the
// complete prefix and re-fetches the rest from its own offset. A
// malformed complete line is a hard error: TCP does not truncate in
// the middle of a stream, so garbage there means a corrupt sender.
//
// A mid-body read ERROR (a dropped connection surfaces as one, not as
// a clean EOF) is truncation too: the complete prefix before it is
// intact, so it is returned with truncated=true instead of an error —
// the retry semantics are identical either way.
func ParseTail(r io.Reader, kind attr.Kind) (s *Stream, truncated bool, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	s = &Stream{}
	line := 0
	for {
		text, rerr := br.ReadString('\n')
		if rerr != nil && rerr != io.EOF {
			return s, true, nil
		}
		complete := strings.HasSuffix(text, "\n")
		if complete {
			line++
			fields := strings.Fields(text)
			if len(fields) > 0 && !strings.HasPrefix(fields[0], "#") {
				up, perr := parseOp(fields, kind)
				if perr != nil {
					return nil, false, fmt.Errorf("updates: line %d: %w", line, perr)
				}
				s.Ups = append(s.Ups, up)
				s.Lines = append(s.Lines, line)
			}
		} else if len(text) > 0 {
			truncated = true
		}
		if rerr == io.EOF {
			return s, truncated, nil
		}
	}
}

// Parse reads an update stream for the given attribute kind.
func Parse(r io.Reader, kind attr.Kind) ([]krcore.Update, error) {
	s, err := ParseStream(r, kind)
	if err != nil {
		return nil, err
	}
	return s.Ups, nil
}

func parseOp(fields []string, kind attr.Kind) (krcore.Update, error) {
	parseEdge := func() (int32, int32, error) {
		if len(fields) != 3 {
			return 0, 0, fmt.Errorf("%s needs two endpoints, got %d fields", fields[0], len(fields)-1)
		}
		u, err1 := strconv.ParseInt(fields[1], 10, 32)
		v, err2 := strconv.ParseInt(fields[2], 10, 32)
		if err1 != nil || err2 != nil {
			return 0, 0, fmt.Errorf("bad endpoints %v", fields[1:])
		}
		return int32(u), int32(v), nil
	}
	switch fields[0] {
	case "ae":
		u, v, err := parseEdge()
		return krcore.AddEdgeUpdate(u, v), err
	case "re":
		u, v, err := parseEdge()
		return krcore.RemoveEdgeUpdate(u, v), err
	case "av":
		if len(fields) != 1 {
			return krcore.Update{}, fmt.Errorf("av takes no arguments, got %v", fields[1:])
		}
		return krcore.AddVertexUpdate(), nil
	case "sa":
		if len(fields) < 2 {
			return krcore.Update{}, fmt.Errorf("sa needs a vertex id")
		}
		u, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return krcore.Update{}, fmt.Errorf("bad vertex id %q", fields[1])
		}
		a, err := parsePayload(fields[2:], kind)
		if err != nil {
			return krcore.Update{}, err
		}
		return krcore.SetAttributesUpdate(int32(u), a), nil
	default:
		return krcore.Update{}, fmt.Errorf("unknown op %q", fields[0])
	}
}

func parsePayload(fields []string, kind attr.Kind) (krcore.VertexAttributes, error) {
	var a krcore.VertexAttributes
	switch kind {
	case attr.KindGeo:
		if len(fields) != 2 {
			return a, fmt.Errorf("geo payload needs x y, got %d fields", len(fields))
		}
		x, err1 := strconv.ParseFloat(fields[0], 64)
		y, err2 := strconv.ParseFloat(fields[1], 64)
		if err1 != nil || err2 != nil {
			return a, fmt.Errorf("bad coordinates %v", fields)
		}
		a.X, a.Y = x, y
	case attr.KindWeighted:
		for _, f := range fields {
			kv := strings.SplitN(f, ":", 2)
			if len(kv) != 2 {
				return a, fmt.Errorf("bad weighted entry %q", f)
			}
			k, err1 := strconv.ParseInt(kv[0], 10, 32)
			w, err2 := strconv.ParseFloat(kv[1], 64)
			if err1 != nil || err2 != nil {
				return a, fmt.Errorf("bad weighted entry %q", f)
			}
			a.Keys = append(a.Keys, int32(k))
			a.Weights = append(a.Weights, w)
		}
	default:
		for _, f := range fields {
			k, err := strconv.ParseInt(f, 10, 32)
			if err != nil {
				return a, fmt.Errorf("bad keyword %q", f)
			}
			a.Keys = append(a.Keys, int32(k))
		}
	}
	return a, nil
}

// Write serialises an update stream for the given attribute kind.
func Write(w io.Writer, ups []krcore.Update, kind attr.Kind) error {
	bw := bufio.NewWriter(w)
	for _, up := range ups {
		switch up.Op {
		case krcore.OpAddEdge:
			fmt.Fprintf(bw, "ae %d %d\n", up.U, up.V)
		case krcore.OpRemoveEdge:
			fmt.Fprintf(bw, "re %d %d\n", up.U, up.V)
		case krcore.OpAddVertex:
			fmt.Fprintln(bw, "av")
		case krcore.OpSetAttributes:
			fmt.Fprintf(bw, "sa %d", up.U)
			switch kind {
			case attr.KindGeo:
				fmt.Fprintf(bw, " %g %g", up.Attrs.X, up.Attrs.Y)
			case attr.KindWeighted:
				for i, k := range up.Attrs.Keys {
					w := 1.0
					if i < len(up.Attrs.Weights) {
						w = up.Attrs.Weights[i]
					}
					fmt.Fprintf(bw, " %d:%g", k, w)
				}
			default:
				for _, k := range up.Attrs.Keys {
					fmt.Fprintf(bw, " %d", k)
				}
			}
			fmt.Fprintln(bw)
		default:
			return fmt.Errorf("updates: cannot serialise op %v", up.Op)
		}
	}
	return bw.Flush()
}

// Random generates a plausible social-network update stream for the
// dataset: mostly edge churn (new friendships between similar-community
// members, dropped friendships), some attribute drift, and occasional
// new users wired into the graph. The stream is valid to replay against
// the dataset in order, and deterministic for a given seed.
func Random(d *dataset.Dataset, n int, seed int64) []krcore.Update {
	rng := rand.New(rand.NewSource(seed))
	nv := d.Graph.N()
	// Track a removable-edge pool; start from a sample of real edges.
	type edge = [2]int32
	var pool []edge
	d.Graph.Edges(func(u, v int32) {
		if len(pool) < 4*n || rng.Intn(8) == 0 {
			pool = append(pool, edge{u, v})
		}
	})
	randVertex := func() int32 { return int32(rng.Intn(nv)) }
	// Prefer community members for added edges so updates hit the dense
	// regions the (k,r) queries care about.
	commVertex := func() int32 {
		if len(d.Communities) == 0 || rng.Intn(4) == 0 {
			return randVertex()
		}
		c := d.Communities[rng.Intn(len(d.Communities))]
		return c[rng.Intn(len(c))]
	}
	ups := make([]krcore.Update, 0, n)
	for len(ups) < n {
		switch roll := rng.Intn(100); {
		case roll < 45: // new friendship
			u, v := commVertex(), commVertex()
			if u == v {
				continue
			}
			ups = append(ups, krcore.AddEdgeUpdate(u, v))
			pool = append(pool, edge{u, v})
		case roll < 75: // dropped friendship
			if len(pool) == 0 {
				continue
			}
			i := rng.Intn(len(pool))
			e := pool[i]
			pool[i] = pool[len(pool)-1]
			pool = pool[:len(pool)-1]
			ups = append(ups, krcore.RemoveEdgeUpdate(e[0], e[1]))
		case roll < 95: // profile drift
			ups = append(ups, krcore.SetAttributesUpdate(commVertex(), randomPayload(d, rng)))
		default: // new user joins and makes two friends
			id := int32(nv)
			nv++
			ups = append(ups,
				krcore.AddVertexUpdate(),
				krcore.SetAttributesUpdate(id, randomPayload(d, rng)))
			for i := 0; i < 2 && len(ups) < n; i++ {
				ups = append(ups, krcore.AddEdgeUpdate(id, commVertex()))
			}
		}
	}
	return ups[:n]
}

// randomPayload draws new attributes near the dataset's existing
// distribution: a jittered position for geo stores, a resampled
// existing vertex's keywords otherwise.
func randomPayload(d *dataset.Dataset, rng *rand.Rand) krcore.VertexAttributes {
	donor := int32(rng.Intn(d.Graph.N()))
	switch d.Kind {
	case attr.KindGeo:
		p := d.Geo.Vertex(donor)
		return krcore.VertexAttributes{
			X: p.X + rng.NormFloat64()*3,
			Y: p.Y + rng.NormFloat64()*3,
		}
	case attr.KindWeighted:
		keys := append([]int32(nil), d.Weighted.Keys(donor)...)
		weights := append([]float64(nil), d.Weighted.Weights(donor)...)
		return krcore.VertexAttributes{Keys: keys, Weights: weights}
	default:
		return krcore.VertexAttributes{Keys: append([]int32(nil), d.Keywords.Vertex(donor)...)}
	}
}

// Replay applies the stream to the engine in batches of batch
// operations (1 replays one update per commit) and returns the number
// of committed batches. Invalid updates abort with the position of the
// failing batch.
func Replay(eng *krcore.DynamicEngine, ups []krcore.Update, batch int) (int, error) {
	return replay(eng, ups, nil, batch)
}

// ReplayStream is Replay with source positions: when a batch is
// rejected, the error names the 1-based source line of the offending
// operation (via krcore.BatchError), and — because ApplyBatch is
// atomic — nothing of that batch has been committed. Earlier batches
// stay committed; the returned count says how many.
func (s *Stream) ReplayStream(eng *krcore.DynamicEngine, batch int) (int, error) {
	return replay(eng, s.Ups, s.Lines, batch)
}

// ReplayStreamFrom replays the stream's operations from the given
// offset — the crash-recovery path: an engine restored from a
// snapshot resumes its journal at krcore.DynamicEngine.JournalOffset,
// skipping the operations the snapshot already contains. Rejections
// keep their original source line numbers.
func (s *Stream) ReplayStreamFrom(eng *krcore.DynamicEngine, offset int64, batch int) (int, error) {
	if offset < 0 || offset > int64(len(s.Ups)) {
		return 0, fmt.Errorf("updates: journal offset %d outside stream of %d operations", offset, len(s.Ups))
	}
	return replay(eng, s.Ups[offset:], s.Lines[offset:], batch)
}

// replay drives batched ApplyBatch commits, attributing failures to a
// source line when positions are known.
func replay(eng *krcore.DynamicEngine, ups []krcore.Update, lines []int, batch int) (int, error) {
	if batch < 1 {
		batch = 1
	}
	committed := 0
	for off := 0; off < len(ups); off += batch {
		end := off + batch
		if end > len(ups) {
			end = len(ups)
		}
		if err := eng.ApplyBatch(ups[off:end]); err != nil {
			var be *krcore.BatchError
			if lines != nil && errors.As(err, &be) && off+be.Index < len(lines) {
				return committed, fmt.Errorf(
					"updates: line %d: invalid %s update: %w (batch of %d discarded, %d batches committed)",
					lines[off+be.Index], be.Op, be.Err, end-off, committed)
			}
			return committed, fmt.Errorf("updates: batch at op %d: %w", off, err)
		}
		committed++
	}
	return committed, nil
}
