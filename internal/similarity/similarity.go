// Package similarity defines the pairwise vertex-similarity metrics and
// the thresholded similarity oracle used by every (k,r)-core algorithm.
//
// Following the paper's convention, two vertices are similar when
// sim(u,v) >= r for a similarity metric (Jaccard, weighted Jaccard) and
// when dist(u,v) <= r for a distance metric (Euclidean). The package also
// provides the "top p permille" threshold calibration used for the DBLP
// and Pokec experiments: the threshold is the p/1000 quantile of the
// pairwise similarity distribution in decreasing order.
package similarity

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"krcore/internal/attr"
)

// Metric scores a vertex pair. Direction tells whether larger scores mean
// more similar (similarity metrics) or less similar (distance metrics).
type Metric interface {
	// Score returns the raw metric value for the pair (u,v). It must be
	// symmetric: Score(u,v) == Score(v,u).
	Score(u, v int32) float64
	// Distance reports whether the metric is a distance (smaller is more
	// similar) rather than a similarity.
	Distance() bool
	// Name returns a short metric name for logs and tables.
	Name() string
}

// Jaccard is the plain Jaccard set-similarity metric over a Keywords
// store.
type Jaccard struct{ Store *attr.Keywords }

// Score implements Metric.
func (m Jaccard) Score(u, v int32) float64 { return m.Store.Jaccard(u, v) }

// Distance implements Metric; Jaccard is a similarity.
func (m Jaccard) Distance() bool { return false }

// Name implements Metric.
func (m Jaccard) Name() string { return "jaccard" }

// WeightedJaccard is the weighted Jaccard metric over a Weighted store,
// the metric the paper uses for DBLP and Pokec.
type WeightedJaccard struct{ Store *attr.Weighted }

// Score implements Metric.
func (m WeightedJaccard) Score(u, v int32) float64 { return m.Store.WeightedJaccard(u, v) }

// Distance implements Metric; weighted Jaccard is a similarity.
func (m WeightedJaccard) Distance() bool { return false }

// Name implements Metric.
func (m WeightedJaccard) Name() string { return "weighted-jaccard" }

// Euclidean is the Euclidean distance metric over a Geo store, the metric
// the paper uses for Brightkite and Gowalla.
type Euclidean struct{ Store *attr.Geo }

// Score implements Metric and returns the distance in the store's unit
// (kilometres for the synthetic datasets).
func (m Euclidean) Score(u, v int32) float64 { return math.Sqrt(m.Store.Distance2(u, v)) }

// Distance implements Metric; Euclidean is a distance.
func (m Euclidean) Distance() bool { return true }

// Name implements Metric.
func (m Euclidean) Name() string { return "euclidean" }

// BulkSource computes thresholded similarity structure for whole vertex
// sets at once instead of one Oracle.Similar call per pair. Concrete
// implementations (spatial grid, inverted keyword index, parallel
// brute force) live in package simindex; this interface sits here so an
// Oracle can carry one as an optional capability without an import
// cycle.
//
// Every implementation must agree exactly with Oracle.Similar on
// distinct vertices: bulk and per-pair preprocessing yield bit-identical
// similarity graphs, dissimilarity lists and, downstream, (k,r)-cores.
type BulkSource interface {
	// SimilarAdjacency returns the local adjacency lists of the
	// similarity graph on the given distinct global vertices: out[i]
	// lists, sorted ascending, the local ids j != i for which
	// vertices[i] and vertices[j] are similar.
	SimilarAdjacency(vertices []int32) [][]int32
	// SimilarBatch evaluates many pairs at once: out[i] reports whether
	// pairs[i] is a similar pair (a pair of equal ids is similar, as in
	// Oracle.Similar). Implementations may shard the work across
	// goroutines; the output is positional, hence deterministic.
	SimilarBatch(pairs [][2]int32) []bool
}

// Oracle answers thresholded pairwise similarity queries: Similar(u,v)
// is sim(u,v) >= r for similarity metrics and dist(u,v) <= r for
// distance metrics.
type Oracle struct {
	metric Metric
	r      float64
	// geo fast path: avoids the sqrt per query.
	geo *attr.Geo
	r2  float64

	mu   sync.Mutex
	bulk BulkSource
}

// NewOracle builds an Oracle for metric at threshold r.
func NewOracle(metric Metric, r float64) *Oracle {
	o := &Oracle{metric: metric, r: r}
	if e, ok := metric.(Euclidean); ok {
		o.geo = e.Store
		o.r2 = r * r
	}
	return o
}

// Metric returns the underlying metric.
func (o *Oracle) Metric() Metric { return o.metric }

// Bulk returns the bulk similarity engine attached to the oracle, or
// nil when none has been attached yet. simindex.For attaches the best
// index for the metric on first use; callers wanting to amortise index
// construction across many (k,r) searches attach one up front via the
// public krcore.BuildIndex.
func (o *Oracle) Bulk() BulkSource {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.bulk
}

// SetBulk attaches a bulk similarity engine. The engine must agree
// exactly with Similar; attach after the attribute store is final, as
// indexes snapshot per-vertex statistics at construction time.
func (o *Oracle) SetBulk(b BulkSource) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.bulk = b
}

// Threshold returns the similarity threshold r.
func (o *Oracle) Threshold() float64 { return o.r }

// Similar reports whether u and v are similar with respect to the
// threshold. A vertex is always similar to itself.
func (o *Oracle) Similar(u, v int32) bool {
	if u == v {
		return true
	}
	if o.geo != nil {
		return o.geo.Distance2(u, v) <= o.r2
	}
	if o.metric.Distance() {
		return o.metric.Score(u, v) <= o.r
	}
	return o.metric.Score(u, v) >= o.r
}

// TopPermille returns the similarity threshold corresponding to the top
// p permille of the pairwise score distribution (decreasing order), the
// calibration the paper uses for DBLP and Pokec ("r = top 3‰"). The
// distribution is estimated from sample random vertex pairs drawn with
// the given seed; n is the vertex count. Only valid for similarity
// (non-distance) metrics.
//
// A smaller p means a higher threshold (fewer similar pairs); p is
// clamped to (0, 1000].
func TopPermille(metric Metric, n int, p float64, sample int, seed int64) float64 {
	if metric.Distance() {
		panic("similarity: TopPermille requires a similarity metric")
	}
	if n < 2 {
		return math.Inf(1)
	}
	if p <= 0 {
		p = 0.001
	}
	if p > 1000 {
		p = 1000
	}
	if sample <= 0 {
		sample = 100000
	}
	maxPairs := n * (n - 1) / 2
	var scores []float64
	if sample >= maxPairs {
		// The sample covers every distinct pair: enumerate them exactly
		// once instead of sampling with replacement. Besides giving the
		// exact quantile, this guards tiny graphs against pathological
		// sampling (drawing nearly all distinct pairs with replacement
		// revisits pairs indefinitely and skews the distribution).
		scores = make([]float64, 0, maxPairs)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				scores = append(scores, metric.Score(int32(u), int32(v)))
			}
		}
	} else {
		rng := rand.New(rand.NewSource(seed))
		scores = make([]float64, 0, sample)
		for len(scores) < sample {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if u == v {
				continue
			}
			scores = append(scores, metric.Score(u, v))
		}
	}
	// Sort decreasing; the threshold is the value at rank p/1000 * len.
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	idx := int(p / 1000 * float64(len(scores)))
	if idx >= len(scores) {
		idx = len(scores) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return scores[idx]
}

// CountSimilarPairs exhaustively counts similar pairs among the given
// vertices. Intended for tests and small statistics; O(len(vs)^2).
func CountSimilarPairs(o *Oracle, vs []int32) int {
	cnt := 0
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if o.Similar(vs[i], vs[j]) {
				cnt++
			}
		}
	}
	return cnt
}
