package similarity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"krcore/internal/attr"
)

func keywordFixture() *attr.Keywords {
	s := attr.NewKeywords(3)
	s.SetVertex(0, []int32{1, 2, 3, 4})
	s.SetVertex(1, []int32{1, 2, 3, 9})
	s.SetVertex(2, []int32{7, 8})
	return s
}

func TestOracleJaccard(t *testing.T) {
	o := NewOracle(Jaccard{Store: keywordFixture()}, 0.5)
	if !o.Similar(0, 1) { // 3/5 = 0.6 >= 0.5
		t.Fatal("0 and 1 should be similar")
	}
	if o.Similar(0, 2) { // 0
		t.Fatal("0 and 2 should be dissimilar")
	}
	if !o.Similar(2, 2) {
		t.Fatal("a vertex is similar to itself")
	}
	if o.Threshold() != 0.5 || o.Metric().Name() != "jaccard" {
		t.Fatal("accessors wrong")
	}
}

func TestOracleEuclideanThresholdInclusive(t *testing.T) {
	g := attr.NewGeo(3)
	g.SetVertex(0, attr.Point{X: 0, Y: 0})
	g.SetVertex(1, attr.Point{X: 3, Y: 4}) // distance exactly 5
	g.SetVertex(2, attr.Point{X: 10, Y: 0})
	o := NewOracle(Euclidean{Store: g}, 5)
	if !o.Similar(0, 1) {
		t.Fatal("distance exactly r must count as similar (<= r)")
	}
	if o.Similar(0, 2) {
		t.Fatal("distance 10 > 5 must be dissimilar")
	}
	if !(Euclidean{}).Distance() {
		t.Fatal("Euclidean must report Distance() = true")
	}
	if got := (Euclidean{Store: g}).Score(0, 1); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Euclidean score = %v, want 5", got)
	}
}

func TestWeightedJaccardMetric(t *testing.T) {
	w := attr.NewWeighted(2)
	w.SetVertex(0, []attr.WeightedEntry{{Key: 1, Weight: 2}})
	w.SetVertex(1, []attr.WeightedEntry{{Key: 1, Weight: 2}})
	o := NewOracle(WeightedJaccard{Store: w}, 0.99)
	if !o.Similar(0, 1) {
		t.Fatal("identical weighted sets must be similar at any threshold <= 1")
	}
	if (WeightedJaccard{}).Distance() {
		t.Fatal("weighted Jaccard is a similarity, not a distance")
	}
}

func TestTopPermilleMonotone(t *testing.T) {
	// Construct keyword sets with three distinct pairwise score levels.
	n := 60
	s := attr.NewKeywords(n)
	for u := 0; u < n; u++ {
		base := int32(u / 20 * 100) // three topic groups
		s.SetVertex(int32(u), []int32{base, base + 1, base + 2, int32(u)})
	}
	m := Jaccard{Store: s}
	r1 := TopPermille(m, n, 50, 2000, 7)  // top 5%
	r5 := TopPermille(m, n, 300, 2000, 7) // top 30%
	r9 := TopPermille(m, n, 900, 2000, 7) // top 90%
	if !(r1 >= r5 && r5 >= r9) {
		t.Fatalf("TopPermille not monotone: %v %v %v", r1, r5, r9)
	}
	// Intra-group pairs share 3 of 5 keys -> score 0.6; cross-group 0.
	if r1 < 0.5 {
		t.Fatalf("top-5%% threshold %v should select intra-group scores", r1)
	}
	if r9 > 0.1 {
		t.Fatalf("top-90%% threshold %v should reach cross-group scores", r9)
	}
}

func TestTopPermilleEdgeCases(t *testing.T) {
	s := keywordFixture()
	m := Jaccard{Store: s}
	if got := TopPermille(m, 1, 3, 100, 1); !math.IsInf(got, 1) {
		t.Fatalf("n<2 should yield +Inf, got %v", got)
	}
	// Clamping: p <= 0 and p > 1000 must not panic.
	_ = TopPermille(m, 3, -1, 10, 1)
	_ = TopPermille(m, 3, 5000, 10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("TopPermille on a distance metric must panic")
		}
	}()
	_ = TopPermille(Euclidean{Store: attr.NewGeo(3)}, 3, 3, 10, 1)
}

// TestTopPermilleTinyGraphExact: when the requested sample covers every
// distinct pair, the threshold must come from exact pair enumeration —
// the regression guard against pathological with-replacement sampling
// on tiny graphs (near-complete samples revisit pairs indefinitely and
// skew the quantile).
func TestTopPermilleTinyGraphExact(t *testing.T) {
	// Two vertices: a single distinct pair, so every permille level must
	// return exactly that pair's score whatever the sample size.
	s := attr.NewKeywords(2)
	s.SetVertex(0, []int32{1, 2})
	s.SetVertex(1, []int32{2, 3})
	m := Jaccard{Store: s}
	want := m.Score(0, 1)
	for _, p := range []float64{1, 500, 1000} {
		if got := TopPermille(m, 2, p, 1<<30, 99); got != want {
			t.Fatalf("TopPermille(n=2, p=%v) = %v, want the single pair score %v", p, got, want)
		}
	}
	// Three vertices with three distinct scores: exact quantiles, and
	// independent of the sampling seed.
	fx := keywordFixture()
	mf := Jaccard{Store: fx}
	if a, b := TopPermille(mf, 3, 400, 100, 1), TopPermille(mf, 3, 400, 100, 2); a != b {
		t.Fatalf("exact path must not depend on the seed: %v vs %v", a, b)
	}
	// p=1000 selects the smallest sampled score; here the 0 of the
	// disjoint pairs.
	if got := TopPermille(mf, 3, 1000, 100, 1); got != 0 {
		t.Fatalf("bottom quantile = %v, want 0", got)
	}
}

func TestTopPermilleDeterministic(t *testing.T) {
	s := keywordFixture()
	m := Jaccard{Store: s}
	a := TopPermille(m, 3, 500, 100, 42)
	b := TopPermille(m, 3, 500, 100, 42)
	if a != b {
		t.Fatalf("same seed must give same threshold: %v vs %v", a, b)
	}
}

func TestCountSimilarPairs(t *testing.T) {
	o := NewOracle(Jaccard{Store: keywordFixture()}, 0.5)
	if got := CountSimilarPairs(o, []int32{0, 1, 2}); got != 1 {
		t.Fatalf("CountSimilarPairs = %d, want 1", got)
	}
	if got := CountSimilarPairs(o, []int32{2}); got != 0 {
		t.Fatalf("CountSimilarPairs singleton = %d, want 0", got)
	}
}

// Property: Oracle.Similar is symmetric and reflexive for random stores.
func TestOracleSymmetry(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		geo := attr.NewGeo(n)
		kw := attr.NewKeywords(n)
		for u := 0; u < n; u++ {
			geo.SetVertex(int32(u), attr.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
			var ks []int32
			for i := 0; i < rng.Intn(6); i++ {
				ks = append(ks, int32(rng.Intn(10)))
			}
			kw.SetVertex(int32(u), ks)
		}
		og := NewOracle(Euclidean{Store: geo}, rng.Float64()*100)
		oj := NewOracle(Jaccard{Store: kw}, rng.Float64())
		for i := 0; i < 30; i++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if og.Similar(u, v) != og.Similar(v, u) {
				return false
			}
			if oj.Similar(u, v) != oj.Similar(v, u) {
				return false
			}
			if !og.Similar(u, u) || !oj.Similar(u, u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMetricNamesAndBulk covers the metric name surface and the bulk
// engine attachment used by the serving layer.
func TestMetricNamesAndBulk(t *testing.T) {
	geo := attr.NewGeo(2)
	kw := attr.NewKeywords(2)
	ww := attr.NewWeighted(2)
	names := map[string]Metric{
		"euclidean":        Euclidean{Store: geo},
		"jaccard":          Jaccard{Store: kw},
		"weighted-jaccard": WeightedJaccard{Store: ww},
	}
	for want, m := range names {
		if m.Name() != want {
			t.Fatalf("Name() = %q, want %q", m.Name(), want)
		}
	}
	o := NewOracle(Jaccard{Store: kw}, 0.5)
	if o.Bulk() != nil {
		t.Fatal("fresh oracle must have no bulk engine")
	}
	b := fakeBulk{}
	o.SetBulk(b)
	if o.Bulk() == nil {
		t.Fatal("SetBulk did not attach")
	}
}

type fakeBulk struct{}

func (fakeBulk) SimilarAdjacency(vs []int32) [][]int32 { return make([][]int32, len(vs)) }
func (fakeBulk) SimilarBatch(ps [][2]int32) []bool     { return make([]bool, len(ps)) }

// TestTopPermilleClamping covers the clamping and tiny-graph branches.
func TestTopPermilleClamping(t *testing.T) {
	kw := attr.NewKeywords(3)
	for u := 0; u < 3; u++ {
		kw.SetVertex(int32(u), []int32{int32(u), 5})
	}
	m := Jaccard{Store: kw}
	if got := TopPermille(m, 1, 3, 100, 1); !math.IsInf(got, 1) {
		t.Fatalf("n<2 must yield +Inf, got %v", got)
	}
	// p out of range is clamped on both ends; sample<=0 uses the default.
	lo := TopPermille(m, 3, -1, 0, 1)
	hi := TopPermille(m, 3, 5000, 0, 1)
	if lo < hi {
		t.Fatalf("smaller permille must not lower the threshold: p~0 -> %v, p=1000 -> %v", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("TopPermille must panic on a distance metric")
		}
	}()
	TopPermille(Euclidean{Store: attr.NewGeo(3)}, 3, 3, 100, 1)
}
