package expr

import (
	"bytes"
	"fmt"
	"time"

	"krcore"
	"krcore/internal/dataset"
)

// Snapshot measures versioned snapshot persistence (PR 5): the cost of
// warm starting a serving engine from a saved snapshot versus
// rebuilding it from the raw graph — the restart/deploy/replica
// spin-up cost the persistence layer exists to eliminate.
//
// For every preset the experiment warms an engine at the default
// (k, r) setting, saves its snapshot to memory, and measures:
//
//   - rebuild: NewEngine + Warm from the raw graph (similarity index,
//     edge filter, k-core candidate components), what every restart
//     paid before persistence;
//   - load: krcore.LoadEngine on the snapshot bytes, which
//     reconstructs all of it by decoding instead of recomputing.
//
// A loaded engine is verified to answer the warmed setting as a pure
// cache hit with the same maximum core as the original.
func Snapshot(r *Runner) *Report {
	rep := &Report{
		ID:     "snapshot",
		Title:  "Snapshot persistence: engine load vs rebuild (default r, k=5)",
		XLabel: "dataset",
		Xs:     dataset.PresetNames(),
	}
	const repeats = 3
	var rebuilds, loads, speedups, sizes []string
	for _, name := range rep.Xs {
		d := r.Dataset(name)
		thr := presetThreshold(r, name)

		// Rebuild baseline: mean of cold NewEngine+Warm builds.
		var rebuildT time.Duration
		var eng *krcore.Engine
		for i := 0; i < repeats; i++ {
			t0 := time.Now()
			eng = krcore.NewEngine(d.Graph, d.Metric())
			if err := eng.Warm(servingK, thr); err != nil {
				panic(err)
			}
			rebuildT += time.Since(t0)
		}
		rebuildT /= repeats
		rebuilds = append(rebuilds, fmtDuration(rebuildT, false))

		var snap bytes.Buffer
		if err := eng.SaveSnapshot(&snap); err != nil {
			panic(err)
		}
		sizes = append(sizes, fmt.Sprintf("%.1fKB", float64(snap.Len())/1024))

		// Warm start: mean of snapshot loads over the same bytes.
		var loadT time.Duration
		var loaded *krcore.Engine
		for i := 0; i < repeats; i++ {
			t0 := time.Now()
			var err error
			loaded, err = krcore.LoadEngine(bytes.NewReader(snap.Bytes()))
			if err != nil {
				panic(err)
			}
			loadT += time.Since(t0)
		}
		loadT /= repeats
		loads = append(loads, fmtDuration(loadT, false))

		if loadT > 0 {
			speedups = append(speedups, fmt.Sprintf("%.1fx", float64(rebuildT)/float64(loadT)))
		} else {
			speedups = append(speedups, "-")
		}

		// The loaded engine must serve the warmed setting as a pure
		// cache hit, bit-identically to the rebuilt engine.
		want, err := eng.FindMaximum(servingK, thr, krcore.MaxOptions{Limits: r.limits()})
		if err != nil {
			panic(err)
		}
		got, err := loaded.FindMaximum(servingK, thr, krcore.MaxOptions{Limits: r.limits()})
		if err != nil {
			panic(err)
		}
		if fmt.Sprint(got.Cores) != fmt.Sprint(want.Cores) {
			panic(fmt.Sprintf("%s: loaded engine diverges from rebuilt engine", name))
		}
		if st := loaded.Stats(); st.Hits != 1 || st.Misses != 0 {
			panic(fmt.Sprintf("%s: loaded engine re-prepared the warmed setting: %+v", name, st))
		}
	}
	rep.AddSeries("rebuild (NewEngine+Warm)", rebuilds)
	rep.AddSeries("snapshot load", loads)
	rep.AddSeries("rebuild / load", speedups)
	rep.AddSeries("snapshot size", sizes)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("rebuild = mean of %d cold builds (similarity index + edge filter + k-core components)", repeats),
		fmt.Sprintf("load = mean of %d krcore.LoadEngine calls on in-memory snapshot bytes", repeats),
		"loads are verified: the warmed (k,r) setting answers as a pure cache hit, bit-identical to the rebuilt engine")
	return rep
}
