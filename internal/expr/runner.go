package expr

import (
	"fmt"
	"time"

	"krcore/internal/core"
	"krcore/internal/dataset"
)

// Runner loads datasets lazily, caches top-permille thresholds and
// executes timed algorithm runs with the per-cell budget.
type Runner struct {
	// Budget is the per-cell time budget; a run exceeding it is
	// reported as INF, mirroring the paper's one-hour cap.
	Budget time.Duration

	datasets   map[string]*dataset.Dataset
	thresholds map[string]float64
}

// NewRunner returns a Runner with the given per-cell budget
// (DefaultBudget when zero).
func NewRunner(budget time.Duration) *Runner {
	if budget <= 0 {
		budget = DefaultBudget
	}
	return &Runner{
		Budget:     budget,
		datasets:   map[string]*dataset.Dataset{},
		thresholds: map[string]float64{},
	}
}

// DefaultBudget keeps a full benchrunner invocation in the minutes
// range; the paper used one hour per cell on a Xeon.
const DefaultBudget = 5 * time.Second

// Dataset returns the named preset, generating it on first use.
func (r *Runner) Dataset(name string) *dataset.Dataset {
	if d, ok := r.datasets[name]; ok {
		return d
	}
	d, err := dataset.Load(name)
	if err != nil {
		panic(err) // presets are compiled in; a failure is a bug
	}
	r.datasets[name] = d
	return d
}

// Permille resolves a top-permille specification to a metric threshold
// for a keyword dataset, cached per (dataset, permille).
func (r *Runner) Permille(name string, p float64) float64 {
	key := fmt.Sprintf("%s:%g", name, p)
	if v, ok := r.thresholds[key]; ok {
		return v
	}
	v := r.Dataset(name).TopPermille(p)
	r.thresholds[key] = v
	return v
}

// params builds the (k,r) problem for a dataset. For geo datasets r is
// the distance threshold in km; for keyword datasets r is the
// top-permille specification.
func (r *Runner) params(name string, k int, rval float64, permille bool) core.Params {
	d := r.Dataset(name)
	thr := rval
	if permille {
		thr = r.Permille(name, rval)
	}
	return core.Params{K: k, Oracle: d.Oracle(thr)}
}

// limits returns fresh per-run limits for one budgeted cell.
func (r *Runner) limits() core.Limits {
	return core.Limits{Deadline: time.Now().Add(r.Budget)}
}

// timedEnum runs one enumeration cell and formats its time.
func (r *Runner) timedEnum(name string, k int, rval float64, permille bool, opt core.EnumOptions) (string, *core.Result) {
	opt.Limits = r.limits()
	p := r.params(name, k, rval, permille)
	res, err := core.Enumerate(r.Dataset(name).Graph, p, opt)
	if err != nil {
		panic(err)
	}
	return fmtDuration(res.Elapsed, res.TimedOut), res
}

// timedMax runs one maximum-search cell and formats its time.
func (r *Runner) timedMax(name string, k int, rval float64, permille bool, opt core.MaxOptions) (string, *core.Result) {
	opt.Limits = r.limits()
	p := r.params(name, k, rval, permille)
	res, err := core.FindMaximum(r.Dataset(name).Graph, p, opt)
	if err != nil {
		panic(err)
	}
	return fmtDuration(res.Elapsed, res.TimedOut), res
}

// timedClique runs one Clique+ cell.
func (r *Runner) timedClique(name string, k int, rval float64, permille bool) (string, *core.Result) {
	p := r.params(name, k, rval, permille)
	res, err := core.CliquePlus(r.Dataset(name).Graph, p, core.CliqueOptions{Limits: r.limits()})
	if err != nil {
		panic(err)
	}
	return fmtDuration(res.Elapsed, res.TimedOut), res
}

// Enumeration algorithm variants of Table 2 / Figures 9, 12, 13.
var enumVariants = map[string]core.EnumOptions{
	"BasicEnum": {DisableRetention: true, DisableEarlyTermination: true, DisableMaximalCheck: true},
	"BE+CR":     {DisableEarlyTermination: true, DisableMaximalCheck: true},
	"BE+CR+ET":  {DisableMaximalCheck: true},
	"AdvEnum":   {},
	// AdvEnum-O: all advanced techniques but the degree order instead of
	// the best (Δ1-then-Δ2) order.
	"AdvEnum-O": {Order: core.OrderDegree, CheckOrder: core.OrderDegree},
	// AdvEnum-P: best order but no advanced pruning techniques.
	"AdvEnum-P": {DisableRetention: true, DisableEarlyTermination: true, DisableMaximalCheck: true},
}

// EnumVariant returns the named enumeration configuration.
func EnumVariant(name string) core.EnumOptions {
	opt, ok := enumVariants[name]
	if !ok {
		panic("expr: unknown enum variant " + name)
	}
	return opt
}

// Maximum-search variants of Table 2 / Figures 10, 12, 14.
var maxVariants = map[string]core.MaxOptions{
	"BasicMax":    {Bound: core.BoundNaive},
	"AdvMax":      {},
	"AdvMax-O":    {Order: core.OrderDegree},
	"AdvMax-UB":   {Bound: core.BoundNaive},
	"|M|+|C|":     {Bound: core.BoundNaive},
	"Color+Kcore": {Bound: core.BoundColorKcore},
	"DoubleKcore": {Bound: core.BoundDoubleKcore},
}

// MaxVariant returns the named maximum-search configuration.
func MaxVariant(name string) core.MaxOptions {
	opt, ok := maxVariants[name]
	if !ok {
		panic("expr: unknown max variant " + name)
	}
	return opt
}
