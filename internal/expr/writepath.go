package expr

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"krcore"
	"krcore/internal/core"
	"krcore/internal/dataset"
	"krcore/internal/graph"
	"krcore/internal/updates"
)

// WritePath measures the PR 6 write-path optimisations.
//
// Single-edge core maintenance: the cost of keeping a prepared (k,r)
// setting current across one filtered-graph edge flip, comparing the
// Li & Yu-style incremental repair (traverse only the affected region
// around the changed endpoints) against the full recompute the engine
// used before (re-peel the whole filtered graph; forced here via a
// one-vertex visit budget, which makes the repair bail out immediately
// and fall back). Both paths produce bit-identical Prepared state —
// the differential tests pin that down — so the ratio is pure
// maintenance cost. The gap is asymptotic: full recompute is O(n+m),
// the repair touches a near-constant region, so dblp and pokec run at
// the paper's original million-edge scale (the standard stand-ins are
// reduced 50-100x, which hides exactly the term this PR removes).
//
// Concurrent writers: sustained 1-op ApplyBatch throughput against a
// journaled engine with 16 writers, group commit (concurrent calls
// coalesce into shared commit rounds — one journal fsync, one advance
// for the whole group) versus serialised commits (one round per batch,
// the pre-group-commit behaviour, simulated by an external mutex
// around ApplyBatch).
func WritePath(r *Runner) *Report {
	rep := &Report{
		ID:     "writepath",
		Title:  "Write path: incremental core maintenance + group commit (k=5, default r)",
		XLabel: "dataset",
		Xs:     dataset.PresetNames(),
	}
	var sizes, fulls, incrs, speedups []string
	instances := make(map[string]*dataset.Dataset)
	for _, name := range rep.Xs {
		d := maintenanceInstance(r, name)
		instances[name] = d
		fullT, incrT := singleEdgeMaintenance(r, name, d)
		sizes = append(sizes, fmt.Sprintf("%dk", d.Graph.M()/1000))
		fulls = append(fulls, fmtDuration(fullT, false))
		incrs = append(incrs, fmtDuration(incrT, false))
		if incrT > 0 {
			speedups = append(speedups, fmt.Sprintf("%.1fx", float64(fullT)/float64(incrT)))
		} else {
			speedups = append(speedups, "-")
		}
	}
	rep.AddSeries("edges", sizes)
	rep.AddSeries("full recompute / edge", fulls)
	rep.AddSeries("incremental repair / edge", incrs)
	rep.AddSeries("full / incremental", speedups)

	var serialTps, groupTps, gains, coalesce []string
	throughput := map[string]bool{"dblp": true, "pokec": true}
	for _, name := range rep.Xs {
		if !throughput[name] {
			// The concurrent-writer measurement targets the million-edge
			// instances, where commit rounds are long enough to matter.
			serialTps, groupTps = append(serialTps, "-"), append(groupTps, "-")
			gains, coalesce = append(gains, "-"), append(coalesce, "-")
			continue
		}
		st, gt, factor := writerThroughput(r, name, instances[name])
		serialTps = append(serialTps, fmt.Sprintf("%.0f/s", st))
		groupTps = append(groupTps, fmt.Sprintf("%.0f/s", gt))
		if st > 0 {
			gains = append(gains, fmt.Sprintf("%.1fx", gt/st))
		} else {
			gains = append(gains, "-")
		}
		coalesce = append(coalesce, fmt.Sprintf("%.1f", factor))
	}
	rep.AddSeries("16-writer serialised commits", serialTps)
	rep.AddSeries("16-writer group commit", groupTps)
	rep.AddSeries("group / serialised", gains)
	rep.AddSeries("batches per commit round", coalesce)
	rep.Notes = append(rep.Notes,
		"single-edge rows: mean over sampled filtered-graph edge removals+insertions against a warm k=5 Prepared",
		"full recompute = the pre-incremental path (repair budget forced to 1 vertex, immediate fallback to re-peeling)",
		"dblp and pokec regenerated at the paper's million-edge scale; brightkite and gowalla use the standard stand-ins",
		"throughput rows: 16 writers x 48 one-op batches on writer-disjoint edge slots against warm journaled engines over the million-edge instances",
		"serialised = an external mutex around ApplyBatch, so every batch pays its own commit round and journal fsync",
		"batches per commit round = Batches/GroupCommits of the group-commit run (the coalescing factor)",
		"coalescing needs writers that overlap commit rounds: the harness runs both modes at GOMAXPROCS=8 so a single-core host still timeslices writers against the leader's round")
	return rep
}

// maintenanceInstance returns the graph the single-edge comparison runs
// on: the standard stand-in for the geo presets, a million-edge
// regeneration (the paper's original scale) for dblp and pokec, where
// the O(n+m) vs O(region) separation is the point of the measurement.
func maintenanceInstance(r *Runner, name string) *dataset.Dataset {
	scale := map[string]int{"dblp": 60, "pokec": 50}[name]
	if scale == 0 {
		return r.Dataset(name)
	}
	cfg, err := dataset.Preset(name)
	if err != nil {
		panic(err)
	}
	cfg.N *= scale
	cfg.NumCommunities *= scale
	cfg.HubCount *= 4
	d, err := dataset.Generate(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// singleEdgeMaintenance times one filtered-graph edge flip (remove,
// then re-insert) through PatchPreparedDelta on the given instance,
// with the repair budget at its default (incremental) and forced to
// one vertex (full-recompute fallback). Returns mean per-patch latency.
func singleEdgeMaintenance(r *Runner, name string, d *dataset.Dataset) (fullT, incrT time.Duration) {
	thr := presetThreshold(r, name)
	o := d.Oracle(thr)
	p := core.Params{K: servingK, Oracle: o}
	filtered := core.FilterDissimilar(d.Graph, o)
	pr, err := core.PrepareFiltered(filtered, p)
	if err != nil {
		panic(err)
	}

	// Sample edges spread across the filtered graph.
	samples := 40
	if filtered.M() > 100000 {
		samples = 12 // the full-recompute side costs O(m) per sample
	}
	var edges [][2]int32
	stride := filtered.M()/samples + 1
	i := 0
	filtered.Edges(func(u, v int32) {
		if i%stride == 0 {
			edges = append(edges, [2]int32{u, v})
		}
		i++
	})

	patch := func(old *core.Prepared, g2 *graph.Graph, delta core.PatchDelta) time.Duration {
		t0 := time.Now()
		if _, _, err := core.PatchPreparedDelta(old, g2, p, delta); err != nil {
			panic(err)
		}
		return time.Since(t0)
	}
	touched := make([]bool, filtered.N())
	for _, mode := range []struct {
		maxVisit int
		out      *time.Duration
	}{{1, &fullT}, {0, &incrT}} {
		var total time.Duration
		for _, e := range edges {
			del := graph.NewDelta(filtered)
			if err := del.RemoveEdge(e[0], e[1]); err != nil {
				panic(err)
			}
			minus := filtered.Apply(del)
			pair := [][2]int32{e}
			touched[e[0]], touched[e[1]] = true, true
			total += patch(pr, minus, core.PatchDelta{DelFiltered: pair, Touched: touched, MaxVisit: mode.maxVisit})
			// And back: the insertion repair from the reduced graph.
			prMinus, _, err := core.PatchPreparedDelta(pr, minus, p,
				core.PatchDelta{DelFiltered: pair, Touched: touched})
			if err != nil {
				panic(err)
			}
			total += patch(prMinus, filtered, core.PatchDelta{AddFiltered: pair, Touched: touched, MaxVisit: mode.maxVisit})
			touched[e[0]], touched[e[1]] = false, false
		}
		*mode.out = total / time.Duration(2*len(edges))
	}
	return fullT, incrT
}

// writerThroughput measures 16-writer 1-op ApplyBatch throughput on
// the given instance with a durable journal attached (the krcored
// -journal write path: every commit round is one fsynced append),
// serialised vs group-committed, and returns both rates (batches/sec)
// plus the group run's coalescing factor.
//
// Group commit only pays off when writers overlap a running commit
// round, so both modes run at GOMAXPROCS >= 8: on a single-core bench
// host the kernel then timeslices writer threads against the leader's
// multi-millisecond round, which is exactly the overlap a multi-core
// server gets for free. The workload is edge-only, so the shared
// dataset instance is never mutated (engine graphs are immutable).
func writerThroughput(r *Runner, name string, d *dataset.Dataset) (serialTp, groupTp, factor float64) {
	const (
		writers    = 16
		perWriter  = 48
		slotSpread = 7
	)
	if prev := runtime.GOMAXPROCS(0); prev < 8 {
		runtime.GOMAXPROCS(8)
		defer runtime.GOMAXPROCS(prev)
	}
	thr := presetThreshold(r, name)
	dir, err := os.MkdirTemp("", "writepath")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	run := func(serialise bool) (float64, float64) {
		attrs, err := updates.Attrs(d)
		if err != nil {
			panic(err)
		}
		eng, err := krcore.NewDynamicEngine(d.Graph, attrs)
		if err != nil {
			panic(err)
		}
		if err := eng.Warm(servingK, thr); err != nil {
			panic(err)
		}
		kind, err := updates.ParseKind(eng.AttributeKind())
		if err != nil {
			panic(err)
		}
		jName := fmt.Sprintf("%s-serial-%v.journal", name, serialise)
		j, err := updates.OpenJournal(filepath.Join(dir, jName), kind)
		if err != nil {
			panic(err)
		}
		defer j.Close()
		eng.SetJournal(j)
		n := int32(eng.N())
		var mu sync.Mutex
		var wg sync.WaitGroup
		t0 := time.Now()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				u := int32(w)
				for i := 0; i < perWriter; i++ {
					// Writer-disjoint slots (u is private), alternating
					// insert/remove so every commit does real work.
					v := n/2 + int32(w*slotSpread+(i/2)%slotSpread)
					up := krcore.AddEdgeUpdate(u, v)
					if i%2 == 1 {
						up = krcore.RemoveEdgeUpdate(u, v)
					}
					if serialise {
						mu.Lock()
					}
					err := eng.ApplyBatch([]krcore.Update{up})
					if serialise {
						mu.Unlock()
					}
					if err != nil {
						panic(err)
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(t0)
		ds := eng.DynamicStats()
		f := float64(ds.Batches)
		if ds.GroupCommits > 0 {
			f = float64(ds.Batches) / float64(ds.GroupCommits)
		}
		return float64(writers*perWriter) / elapsed.Seconds(), f
	}
	serialTp, _ = run(true)
	groupTp, factor = run(false)
	return serialTp, groupTp, factor
}
