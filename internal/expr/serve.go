package expr

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"krcore"
	"krcore/client"
	"krcore/server"
)

// Serve measures the HTTP serving daemon end to end (PR 4): sustained
// query throughput through the full stack — JSON encoding, the
// admission-control semaphore, per-request deadlines, the (corrected)
// cache counters — with more concurrent clients than search slots, on
// warmed presets where every query is a cache hit.
//
// The experiment doubles as an invariant check: the observed peak of
// concurrent searches must never exceed the admission limit, and with
// a warm cache every served query must be a hit (misses would mean the
// serving layer re-prepared state it already had).
func Serve(r *Runner) *Report {
	const (
		clients       = 16
		perClient     = 60
		maxConcurrent = 4
	)
	rep := &Report{
		ID: "serve",
		Title: fmt.Sprintf("HTTP serving: %d concurrent clients, %d-slot admission control (warmed, default r, k=%d)",
			clients, maxConcurrent, servingK),
		XLabel: "dataset",
		// Geo presets: default thresholds need no permille calibration,
		// so the cells measure serving cost, not setup.
		Xs: []string{"brightkite", "gowalla"},
	}
	var qps, lat, peak, hitRate, rejected []string
	for _, name := range rep.Xs {
		d := r.Dataset(name)
		thr := presetThreshold(r, name)
		eng := krcore.NewEngine(d.Graph, d.Metric())
		if err := eng.Warm(servingK, thr); err != nil {
			panic(err)
		}
		srv, err := server.New(eng, server.Config{
			Dataset:       name,
			MaxConcurrent: maxConcurrent,
			MaxQueue:      clients * 2, // every client may queue; none should be rejected
			QueueWait:     time.Minute,
		})
		if err != nil {
			panic(err)
		}
		hs := httptest.NewServer(srv.Handler())
		c := client.New(hs.URL)
		ctx := context.Background()

		var (
			wg      sync.WaitGroup
			totalNS atomic.Int64
		)
		start := time.Now()
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for q := 0; q < perClient; q++ {
					t0 := time.Now()
					var err error
					if (w+q)%2 == 0 {
						_, err = c.FindMaximum(ctx, servingK, thr, client.Options{})
					} else {
						_, err = c.Enumerate(ctx, servingK, thr, client.Options{})
					}
					if err != nil {
						panic(fmt.Sprintf("%s: client %d: %v", name, w, err))
					}
					totalNS.Add(int64(time.Since(t0)))
				}
			}(w)
		}
		wg.Wait()
		wall := time.Since(start)
		hs.Close()

		const total = clients * perClient
		st := srv.ServerStats()
		est := eng.Stats()
		if st.Queries != total {
			panic(fmt.Sprintf("%s: served %d of %d queries: %+v", name, st.Queries, total, st))
		}
		if st.PeakInFlight > maxConcurrent {
			panic(fmt.Sprintf("%s: admission control leaked: peak %d > limit %d", name, st.PeakInFlight, maxConcurrent))
		}
		if est.Misses > 1 { // the single Warm is the only allowed miss
			panic(fmt.Sprintf("%s: warmed serving missed the cache: %+v", name, est))
		}
		qps = append(qps, fmt.Sprintf("%.0f q/s", float64(total)/wall.Seconds()))
		lat = append(lat, fmtDuration(time.Duration(totalNS.Load()/total), false))
		peak = append(peak, fmt.Sprintf("%d (cap %d)", st.PeakInFlight, maxConcurrent))
		hitRate = append(hitRate, fmt.Sprintf("%.1f%%", 100*float64(est.Hits)/float64(est.Hits+est.Misses)))
		rejected = append(rejected, fmt.Sprintf("%d", st.Rejected))
	}
	rep.AddSeries("throughput", qps)
	rep.AddSeries("mean latency (incl. queueing)", lat)
	rep.AddSeries("peak concurrent searches", peak)
	rep.AddSeries("cache-hit rate", hitRate)
	rep.AddSeries("rejected (429)", rejected)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("measured with GOMAXPROCS=%d; on one CPU searches serialise, so the observed peak sits below the cap",
			runtime.GOMAXPROCS(0)),
		fmt.Sprintf("%d clients each issue %d queries (alternating maximum / enumerate) over real HTTP", clients, perClient),
		"every query is a cache hit on the warmed setting: service time is search + JSON, zero re-preparation",
		fmt.Sprintf("the admission semaphore bounds concurrent searches at %d; excess requests queue (none rejected)", maxConcurrent),
		"mean latency includes client-side queueing delay behind the semaphore — throughput is the serving metric")
	return rep
}
