package expr

import (
	"fmt"
	"time"

	"krcore"
	"krcore/internal/dataset"
	"krcore/internal/updates"
)

// DynamicUpdates measures the dynamic serving layer (PR 3): the latency
// of keeping a warm engine current through incremental updates versus
// discarding it and rebuilding from scratch — the cost the
// (k,r)-core model pays per mutation on a live social network.
//
// For every preset the experiment warms a DynamicEngine at the default
// (k, r) setting, then measures:
//
//   - rebuild: NewEngine + Warm on the same graph (what every update
//     would cost without incremental maintenance);
//   - single update: one-edge ApplyBatch commits (add / remove
//     alternating, so the graph stays near its original shape), each of
//     which re-validates the warm setting through scoped invalidation;
//   - batched update: 64-op commits, amortising one invalidation across
//     the batch.
//
// The updates experiment loads private dataset copies: its engines
// mutate graph and attribute stores, which must never leak into the
// runner's cache shared by the other experiments.
func DynamicUpdates(r *Runner) *Report {
	rep := &Report{
		ID:     "updates",
		Title:  "Dynamic updates: incremental maintenance vs full rebuild (default r, k=5)",
		XLabel: "dataset",
		Xs:     dataset.PresetNames(),
	}
	const (
		singleOps = 200
		batchOps  = 64
	)
	var rebuilds, singles, batched, speedups []string
	for _, name := range rep.Xs {
		thr := presetThreshold(r, name)
		d, err := dataset.Load(name) // private copy; see doc comment
		if err != nil {
			panic(err)
		}
		attrs, err := updates.Attrs(d)
		if err != nil {
			panic(err)
		}
		eng, err := krcore.NewDynamicEngine(d.Graph, attrs)
		if err != nil {
			panic(err)
		}
		if err := eng.Warm(servingK, thr); err != nil {
			panic(err)
		}

		// Full rebuild baseline: fresh engine, index + filter + prepare.
		const rebuildRepeats = 3
		var rebuildT time.Duration
		for i := 0; i < rebuildRepeats; i++ {
			t0 := time.Now()
			fresh := krcore.NewEngine(eng.Graph(), attrs.Metric())
			if err := fresh.Warm(servingK, thr); err != nil {
				panic(err)
			}
			rebuildT += time.Since(t0)
		}
		rebuildT /= rebuildRepeats
		rebuilds = append(rebuilds, fmtDuration(rebuildT, false))

		// Single-edge updates: alternately add and remove one edge
		// between community members, timing each commit.
		ups := updates.Random(d, singleOps, 17)
		t0 := time.Now()
		if _, err := updates.Replay(eng, ups, 1); err != nil {
			panic(err)
		}
		singleT := time.Since(t0) / singleOps
		singles = append(singles, fmtDuration(singleT, false))

		// Batched updates: one commit per 64 operations.
		ups = updates.Random(d, batchOps, 23)
		t0 = time.Now()
		if _, err := updates.Replay(eng, ups, batchOps); err != nil {
			panic(err)
		}
		batchT := time.Since(t0)
		batched = append(batched, fmtDuration(batchT, false))

		if singleT > 0 {
			speedups = append(speedups, fmt.Sprintf("%.1fx", float64(rebuildT)/float64(singleT)))
		} else {
			speedups = append(speedups, "-")
		}
		// The warm setting must have survived every commit: a query now
		// is a pure cache hit.
		before := eng.Stats()
		if _, err := eng.FindMaximum(servingK, thr, krcore.MaxOptions{Limits: r.limits()}); err != nil {
			panic(err)
		}
		if after := eng.Stats(); after.Hits != before.Hits+1 {
			panic(fmt.Sprintf("%s: query after replay was not a cache hit: %+v -> %+v", name, before, after))
		}
	}
	rep.AddSeries("full rebuild (NewEngine+Warm)", rebuilds)
	rep.AddSeries("single-op update", singles)
	rep.AddSeries(fmt.Sprintf("%d-op batch", batchOps), batched)
	rep.AddSeries("rebuild / single-op", speedups)
	rep.Notes = append(rep.Notes,
		"rebuild = mean of 3 cold NewEngine+Warm builds (similarity index + edge filter + k-core components)",
		fmt.Sprintf("single-op update = mean commit latency over %d one-operation batches on a warm engine", singleOps),
		"updates keep the warm (k,r) setting prepared: structure-only commits reuse the similarity index,",
		"and only candidate components touched by an update are rebuilt (see DynamicStats)")
	return rep
}
