package expr

import (
	"strings"
	"testing"
	"time"
)

func TestReportRender(t *testing.T) {
	rep := &Report{
		ID:     "x",
		Title:  "Test figure",
		XLabel: "k",
		Xs:     []string{"1", "2"},
		Notes:  []string{"a note"},
	}
	rep.AddSeries("algo-a", []string{"1ms", "INF"})
	rep.AddSeries("algo-b", []string{"2ms", "3ms"})
	out := rep.String()
	for _, want := range []string{"Test figure", "algo-a", "INF", "a note", "algo-b"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, out)
		}
	}
	// Header and series rows must have consistent column counts.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 4 {
		t.Fatalf("report too short:\n%s", out)
	}
}

func TestFmtDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		inf  bool
		want string
	}{
		{500 * time.Microsecond, false, "0.50ms"},
		{25 * time.Millisecond, false, "25ms"},
		{2500 * time.Millisecond, false, "2.50s"},
		{time.Second, true, "INF"},
	}
	for _, c := range cases {
		if got := fmtDuration(c.d, c.inf); got != c.want {
			t.Fatalf("fmtDuration(%v, %v) = %q, want %q", c.d, c.inf, got, c.want)
		}
	}
}

func TestRunnerCaching(t *testing.T) {
	r := NewRunner(time.Second)
	d1 := r.Dataset("brightkite")
	d2 := r.Dataset("brightkite")
	if d1 != d2 {
		t.Fatal("datasets must be cached")
	}
	t1 := r.Permille("dblp", 3)
	t2 := r.Permille("dblp", 3)
	if t1 != t2 || t1 <= 0 {
		t.Fatalf("threshold caching broken: %v vs %v", t1, t2)
	}
}

func TestVariantsExist(t *testing.T) {
	for _, v := range []string{"BasicEnum", "BE+CR", "BE+CR+ET", "AdvEnum", "AdvEnum-O", "AdvEnum-P"} {
		_ = EnumVariant(v)
	}
	for _, v := range []string{"BasicMax", "AdvMax", "AdvMax-O", "AdvMax-UB", "|M|+|C|", "Color+Kcore", "DoubleKcore"} {
		_ = MaxVariant(v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown variant must panic")
		}
	}()
	_ = EnumVariant("nope")
}

func TestFindExperiment(t *testing.T) {
	if Find("fig9a") == nil || Find("table3") == nil {
		t.Fatal("known experiments not found")
	}
	if Find("nonexistent") != nil {
		t.Fatal("unknown experiment should return nil")
	}
	// Ids must be unique.
	seen := map[string]bool{}
	for _, e := range Experiments {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil {
			t.Fatalf("experiment %s has no Run", e.ID)
		}
	}
}

// TestExperimentsSmoke runs every experiment with a tiny budget and
// verifies each produces a structurally valid report: series lengths
// match the x grid and the id matches the registry.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a while even with small budgets")
	}
	r := NewRunner(100 * time.Millisecond)
	for _, e := range Experiments {
		rep := e.Run(r)
		if rep.ID != e.ID {
			t.Fatalf("experiment %s produced report id %s", e.ID, rep.ID)
		}
		if rep.Title == "" {
			t.Fatalf("experiment %s has no title", e.ID)
		}
		for _, s := range rep.Series {
			if len(s.Cells) != len(rep.Xs) {
				t.Fatalf("experiment %s series %s has %d cells for %d x-values",
					e.ID, s.Name, len(s.Cells), len(rep.Xs))
			}
			for _, c := range s.Cells {
				if c == "" {
					t.Fatalf("experiment %s series %s has an empty cell", e.ID, s.Name)
				}
			}
		}
		if len(rep.Series) == 0 && len(rep.Notes) == 0 {
			t.Fatalf("experiment %s produced an empty report", e.ID)
		}
	}
}
