package expr

import (
	"fmt"
	"runtime"
	"time"

	"krcore"
	"krcore/internal/core"
	"krcore/internal/dataset"
)

// The serving experiments go beyond the paper's figures: they measure
// the build-once/serve-many engine (cache-hit speedup of repeated
// (k,r) queries) and the parallel AdvMax scaling across candidate
// components, on the same synthetic preset stand-ins as the paper
// reproduction.

// servingK is the engagement threshold of the serving experiments (the
// paper's geo default).
const servingK = 5

// presetThreshold resolves a preset's default similarity threshold
// (DefaultR for geo presets, the top-permille calibration otherwise).
func presetThreshold(r *Runner, name string) float64 {
	cfg, err := dataset.Preset(name)
	if err != nil {
		panic(err)
	}
	if cfg.DefaultPermille > 0 {
		return r.Permille(name, cfg.DefaultPermille)
	}
	return cfg.DefaultR
}

// EngineCache measures the serving engine's cache-hit speedup: the
// cold first query at a (k,r) setting pays for the similarity index,
// the edge filter and the candidate components; repeated queries reuse
// all of it and pay for the search alone.
func EngineCache(r *Runner) *Report {
	rep := &Report{
		ID:     "engine",
		Title:  "Engine cache: cold vs repeated (k,r) query (maximum search, default r, k=5)",
		XLabel: "dataset",
		Xs:     dataset.PresetNames(),
	}
	var cold, warm, speed []string
	for _, name := range rep.Xs {
		d := r.Dataset(name)
		thr := presetThreshold(r, name)
		eng := krcore.NewEngine(d.Graph, d.Metric())
		opt := core.MaxOptions{Limits: r.limits()}
		t0 := time.Now()
		res, err := eng.FindMaximum(servingK, thr, opt)
		if err != nil {
			panic(err)
		}
		coldT := time.Since(t0)
		cold = append(cold, fmtDuration(coldT, res.TimedOut))
		// Warm: repeat the same query; the engine re-prepares nothing.
		const repeats = 3
		var warmT time.Duration
		timedOut := false
		for i := 0; i < repeats; i++ {
			opt := core.MaxOptions{Limits: r.limits()}
			t0 := time.Now()
			res, err := eng.FindMaximum(servingK, thr, opt)
			if err != nil {
				panic(err)
			}
			warmT += time.Since(t0)
			timedOut = timedOut || res.TimedOut
		}
		warmT /= repeats
		warm = append(warm, fmtDuration(warmT, timedOut))
		if res.TimedOut || timedOut || warmT <= 0 {
			speed = append(speed, "-")
		} else {
			speed = append(speed, fmt.Sprintf("%.1fx", float64(coldT)/float64(warmT)))
		}
		if st := eng.Stats(); st.Prepared != 1 {
			panic(fmt.Sprintf("engine re-prepared on a repeated query: %+v", st))
		}
	}
	rep.AddSeries("cold query", cold)
	rep.AddSeries("repeat query", warm)
	rep.AddSeries("speedup", speed)
	rep.Notes = append(rep.Notes,
		"cold = first query at the setting (index + filter + k-core components + search)",
		"repeat = mean of 3 cache-hit queries (search only, zero re-preparation)")
	return rep
}

// ParallelMax measures AdvMax scaling across candidate components: the
// search runs on a worker pool whose workers share the incumbent size
// atomically, so the (k,k')-core bound prunes globally.
func ParallelMax(r *Runner) *Report {
	rep := &Report{
		ID:     "parmax",
		Title:  "Parallel AdvMax: maximum search wall-clock vs workers (default r, k=5)",
		XLabel: "dataset",
		Xs:     dataset.PresetNames(),
	}
	workerGrid := []int{1, 2, 4, 8}
	cells := make(map[int][]string, len(workerGrid))
	var speed []string
	for _, name := range rep.Xs {
		d := r.Dataset(name)
		thr := presetThreshold(r, name)
		// Prepare once so every measurement times the search alone, as
		// a warm serving engine would run it.
		pr, err := core.Prepare(d.Graph, core.Params{K: servingK, Oracle: d.Oracle(thr)})
		if err != nil {
			panic(err)
		}
		var serial, best time.Duration
		for _, w := range workerGrid {
			res, err := pr.FindMaximum(core.MaxOptions{Parallelism: w, Limits: r.limits()})
			if err != nil {
				panic(err)
			}
			cells[w] = append(cells[w], fmtDuration(res.Elapsed, res.TimedOut))
			if res.TimedOut {
				continue // a truncated run must not enter the speedup ratio
			}
			if w == 1 {
				serial, best = res.Elapsed, res.Elapsed
			} else if best == 0 || res.Elapsed < best {
				best = res.Elapsed
			}
		}
		if serial > 0 && best > 0 {
			speed = append(speed, fmt.Sprintf("%.1fx", float64(serial)/float64(best)))
		} else {
			speed = append(speed, "-")
		}
	}
	for _, w := range workerGrid {
		rep.AddSeries(fmt.Sprintf("%d worker(s)", w), cells[w])
	}
	rep.AddSeries("best speedup", speed)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("measured with GOMAXPROCS=%d; below 2 the workers cannot run simultaneously",
			runtime.GOMAXPROCS(0)),
		"components are prepared once (warm engine); cells time the branch-and-bound search only",
		"workers share one incumbent, so the size bound prunes across components;",
		"scaling also needs several comparable components — the synthetic presets concentrate",
		"most search work in one dominant component, which bounds the achievable speedup")
	return rep
}
