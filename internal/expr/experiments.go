package expr

import (
	"fmt"

	"krcore/internal/core"
	"krcore/internal/dataset"
)

// Experiment regenerates one paper table or figure.
type Experiment struct {
	ID    string
	Brief string
	Run   func(*Runner) *Report
}

// Experiments lists every reproduced table and figure in paper order.
// Parameter grids follow the paper; where the synthetic geography
// shifts an interesting region (noted in EXPERIMENTS.md), the grid is
// shifted with it.
var Experiments = []Experiment{
	{"table3", "dataset statistics", Table3},
	{"fig5", "DBLP case study: overlapping research groups", Fig5},
	{"fig6", "Gowalla case study: two geo clusters", Fig6},
	{"fig7a", "(k,r)-core statistics vs r (Gowalla)", Fig7a},
	{"fig7b", "(k,r)-core statistics vs k (DBLP)", Fig7b},
	{"fig8a", "Clique+ vs BasicEnum vs r (Gowalla)", Fig8a},
	{"fig8b", "Clique+ vs BasicEnum vs k (DBLP)", Fig8b},
	{"fig9a", "pruning techniques vs r (Gowalla)", Fig9a},
	{"fig9b", "pruning techniques vs k (DBLP)", Fig9b},
	{"fig10a", "size upper bounds vs r (DBLP)", Fig10a},
	{"fig10b", "size upper bounds vs k (DBLP)", Fig10b},
	{"fig11a", "lambda tuning for AdvMax", Fig11a},
	{"fig11b", "branch orders for AdvMax (DBLP)", Fig11b},
	{"fig11c", "vertex orders for AdvMax (DBLP)", Fig11c},
	{"fig11d", "enumeration orders, small r (Gowalla)", Fig11d},
	{"fig11e", "enumeration orders, large r (Gowalla)", Fig11e},
	{"fig11f", "maximal-check orders (Gowalla)", Fig11f},
	{"fig12a", "enumeration variants on four datasets", Fig12a},
	{"fig12b", "maximum variants on four datasets", Fig12b},
	{"fig13a", "enumeration vs k (Gowalla)", Fig13a},
	{"fig13b", "enumeration vs r (DBLP)", Fig13b},
	{"fig14a", "maximum vs k (Gowalla)", Fig14a},
	{"fig14b", "maximum vs r (DBLP)", Fig14b},
	// Beyond the paper: serving-layer measurements (PR 2).
	{"engine", "serving engine cache-hit speedup (all presets)", EngineCache},
	{"parmax", "parallel AdvMax scaling across components (all presets)", ParallelMax},
	// Beyond the paper: dynamic-update maintenance (PR 3).
	{"updates", "incremental update latency vs full rebuild (all presets)", DynamicUpdates},
	// Beyond the paper: HTTP serving throughput (PR 4).
	{"serve", "HTTP daemon throughput under admission control (geo presets)", Serve},
	// Beyond the paper: snapshot persistence (PR 5).
	{"snapshot", "engine snapshot load vs rebuild (all presets)", Snapshot},
	// Beyond the paper: incremental core maintenance + group commit (PR 6).
	{"writepath", "write path: incremental core repair + group commit (all presets)", WritePath},
}

// Find returns the experiment with the given id, or nil.
func Find(id string) *Experiment {
	for i := range Experiments {
		if Experiments[i].ID == id {
			return &Experiments[i]
		}
	}
	return nil
}

// gowallaRs is the distance grid (km) shared by the Gowalla sweeps
// (Figures 7a, 9a, 11e, 11f).
var gowallaRs = []float64{10, 50, 100, 150, 200}

// dblpKs67890 is the degree grid of Figures 7b and 9b.
var dblpKs67890 = []int{6, 7, 8, 9, 10}

// Table3 reports the statistics of the four synthetic stand-ins next to
// the paper's originals.
func Table3(r *Runner) *Report {
	rep := &Report{
		ID:     "table3",
		Title:  "Table 3: statistics of datasets (synthetic stand-ins)",
		XLabel: "dataset",
		Xs:     []string{"nodes", "edges", "davg", "dmax"},
	}
	paper := map[string][4]string{
		"brightkite": {"58,228", "194,090", "6.7", "1098"},
		"gowalla":    {"196,591", "456,830", "4.7", "9967"},
		"dblp":       {"1,566,919", "6,461,300", "8.3", "2023"},
		"pokec":      {"1,632,803", "8,320,605", "10.2", "7266"},
	}
	for _, name := range dataset.PresetNames() {
		d := r.Dataset(name)
		g := d.Graph
		rep.AddSeries(name, []string{
			fmt.Sprintf("%d", g.N()),
			fmt.Sprintf("%d", g.M()),
			fmt.Sprintf("%.1f", g.AvgDegree()),
			fmt.Sprintf("%d", g.MaxDegree()),
		})
		p := paper[name]
		rep.AddSeries(name+" (paper)", p[:])
	}
	return rep
}

// Fig5 reproduces the DBLP case study: a single structural k-core that
// splits into two maximal (k,r)-cores sharing one bridge author, plus
// the maximum core.
func Fig5(r *Runner) *Report {
	rep := &Report{ID: "fig5", Title: "Figure 5: case study on co-author network (k=6, r=0.3)"}
	d, k, rthr := dataset.CoauthorCase()
	p := core.Params{K: k, Oracle: d.Oracle(rthr)}
	res, err := core.Enumerate(d.Graph, p, core.EnumOptions{Limits: r.limits()})
	if err != nil {
		panic(err)
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("maximal (k,r)-cores found: %d (paper: 2 overlapping research groups)", len(res.Cores)))
	for i, c := range res.Cores {
		shared := contains(c, 0)
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("core %d: %d authors, contains bridge author: %v", i+1, len(c), shared))
	}
	maxRes, err := core.FindMaximum(d.Graph, p, core.MaxOptions{Limits: r.limits()})
	if err != nil {
		panic(err)
	}
	if len(maxRes.Cores) == 1 {
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("maximum (k,r)-core: %d authors — one coherent project team (paper: 49 Ensembl authors)",
				len(maxRes.Cores[0])))
	}
	return rep
}

// Fig6 reproduces the Gowalla case study: one k-core, two geographic
// clusters at r = 10km.
func Fig6(r *Runner) *Report {
	rep := &Report{ID: "fig6", Title: "Figure 6: case study on Gowalla (k=10, r=10km)"}
	d, k, rthr := dataset.GeosocialCase()
	p := core.Params{K: k, Oracle: d.Oracle(rthr)}
	res, err := core.Enumerate(d.Graph, p, core.EnumOptions{Limits: r.limits()})
	if err != nil {
		panic(err)
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("maximal (k,r)-cores found: %d (paper: 2 city clusters)", len(res.Cores)))
	loose, err := core.Enumerate(d.Graph, core.Params{K: k, Oracle: d.Oracle(1e9)},
		core.EnumOptions{Limits: r.limits()})
	if err != nil {
		panic(err)
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("with the similarity constraint dropped the same users form %d k-core group(s)", len(loose.Cores)))
	return rep
}

func contains(s []int32, v int32) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// statsCells runs one enumeration and formats Figure-7 statistics.
func statsCells(r *Runner, name string, k int, rv float64, permille bool) (cnt, maxSz, avgSz string) {
	_, res := r.timedEnum(name, k, rv, permille, core.EnumOptions{})
	s := res.Summarize()
	suffix := ""
	if res.TimedOut {
		suffix = "+"
	}
	return fmt.Sprintf("%d%s", s.Count, suffix),
		fmt.Sprintf("%d%s", s.MaxSize, suffix),
		fmt.Sprintf("%.1f%s", s.AvgSize, suffix)
}

// Fig7a reports core statistics on Gowalla, k=5, varying r.
func Fig7a(r *Runner) *Report {
	rep := &Report{ID: "fig7a", Title: "Figure 7(a): (k,r)-core statistics, Gowalla k=5", XLabel: "r (km)"}
	var cnts, maxs, avgs []string
	for _, rv := range gowallaRs {
		rep.Xs = append(rep.Xs, fmt.Sprintf("%g", rv))
		c, m, a := statsCells(r, "gowalla", 5, rv, false)
		cnts = append(cnts, c)
		maxs = append(maxs, m)
		avgs = append(avgs, a)
	}
	rep.AddSeries("#(k,r)-cores", cnts)
	rep.AddSeries("max size", maxs)
	rep.AddSeries("avg size", avgs)
	return rep
}

// Fig7b reports core statistics on DBLP, r = top 3 permille, varying k.
func Fig7b(r *Runner) *Report {
	rep := &Report{ID: "fig7b", Title: "Figure 7(b): (k,r)-core statistics, DBLP r=top3permille", XLabel: "k"}
	var cnts, maxs, avgs []string
	for _, k := range dblpKs67890 {
		rep.Xs = append(rep.Xs, fmt.Sprintf("%d", k))
		c, m, a := statsCells(r, "dblp", k, 3, true)
		cnts = append(cnts, c)
		maxs = append(maxs, m)
		avgs = append(avgs, a)
	}
	rep.AddSeries("#(k,r)-cores", cnts)
	rep.AddSeries("max size", maxs)
	rep.AddSeries("avg size", avgs)
	return rep
}

// Fig8a compares Clique+ with BasicEnum on Gowalla, k=5, varying r. The
// paper sweeps 2-10km; the synthetic geography's clique-rich band sits
// at 10-50km, so the grid is shifted accordingly.
func Fig8a(r *Runner) *Report {
	rep := &Report{ID: "fig8a", Title: "Figure 8(a): clique-based method, Gowalla k=5", XLabel: "r (km)"}
	var cl, be []string
	for _, rv := range []float64{10, 20, 30, 40, 50} {
		rep.Xs = append(rep.Xs, fmt.Sprintf("%g", rv))
		cell, _ := r.timedClique("gowalla", 5, rv, false)
		cl = append(cl, cell)
		cell, _ = r.timedEnum("gowalla", 5, rv, false, EnumVariant("BasicEnum"))
		be = append(be, cell)
	}
	rep.AddSeries("Clique+", cl)
	rep.AddSeries("BasicEnum", be)
	return rep
}

// Fig8b compares Clique+ with BasicEnum on DBLP, r = top 3 permille,
// varying k.
func Fig8b(r *Runner) *Report {
	rep := &Report{ID: "fig8b", Title: "Figure 8(b): clique-based method, DBLP r=top3permille", XLabel: "k"}
	var cl, be []string
	for _, k := range []int{10, 12, 14, 16, 18} {
		rep.Xs = append(rep.Xs, fmt.Sprintf("%d", k))
		cell, _ := r.timedClique("dblp", k, 3, true)
		cl = append(cl, cell)
		cell, _ = r.timedEnum("dblp", k, 3, true, EnumVariant("BasicEnum"))
		be = append(be, cell)
	}
	rep.AddSeries("Clique+", cl)
	rep.AddSeries("BasicEnum", be)
	return rep
}

// pruningSeries runs the four incremental enumeration configurations of
// Figure 9.
func pruningSeries(r *Runner, rep *Report, name string, ks []int, rvs []float64, permille bool) {
	variants := []string{"BasicEnum", "BE+CR", "BE+CR+ET", "AdvEnum"}
	cells := make(map[string][]string)
	addX := func(label string, k int, rv float64) {
		rep.Xs = append(rep.Xs, label)
		for _, v := range variants {
			cell, _ := r.timedEnum(name, k, rv, permille, EnumVariant(v))
			cells[v] = append(cells[v], cell)
		}
	}
	if ks == nil {
		for _, rv := range rvs {
			addX(fmt.Sprintf("%g", rv), 5, rv)
		}
	} else {
		for _, k := range ks {
			addX(fmt.Sprintf("%d", k), k, rvs[0])
		}
	}
	for _, v := range variants {
		rep.AddSeries(v, cells[v])
	}
}

// Fig9a evaluates the pruning techniques on Gowalla, k=5, varying r.
func Fig9a(r *Runner) *Report {
	rep := &Report{ID: "fig9a", Title: "Figure 9(a): pruning techniques, Gowalla k=5", XLabel: "r (km)"}
	pruningSeries(r, rep, "gowalla", nil, gowallaRs, false)
	return rep
}

// Fig9b evaluates the pruning techniques on DBLP, r = top 3 permille,
// varying k.
func Fig9b(r *Runner) *Report {
	rep := &Report{ID: "fig9b", Title: "Figure 9(b): pruning techniques, DBLP r=top3permille", XLabel: "k"}
	pruningSeries(r, rep, "dblp", dblpKs67890, []float64{3}, true)
	return rep
}

// boundSeries runs the maximum search under the three upper bounds of
// Figure 10.
func boundSeries(r *Runner, rep *Report, name string, ks []int, rvs []float64, permille bool, fixedK int) {
	variants := []string{"|M|+|C|", "Color+Kcore", "DoubleKcore"}
	cells := make(map[string][]string)
	addX := func(label string, k int, rv float64) {
		rep.Xs = append(rep.Xs, label)
		for _, v := range variants {
			cell, _ := r.timedMax(name, k, rv, permille, MaxVariant(v))
			cells[v] = append(cells[v], cell)
		}
	}
	if ks == nil {
		for _, rv := range rvs {
			addX(fmt.Sprintf("%g", rv), fixedK, rv)
		}
	} else {
		for _, k := range ks {
			addX(fmt.Sprintf("%d", k), k, rvs[0])
		}
	}
	for _, v := range variants {
		rep.AddSeries(v, cells[v])
	}
}

// Fig10a compares the size upper bounds on DBLP, k=10, varying r.
func Fig10a(r *Runner) *Report {
	rep := &Report{ID: "fig10a", Title: "Figure 10(a): upper bounds, DBLP k=10", XLabel: "r (top permille)"}
	boundSeries(r, rep, "dblp", nil, []float64{1, 2, 3, 4, 5}, true, 10)
	return rep
}

// Fig10b compares the size upper bounds on DBLP, r = top 3 permille,
// varying k.
func Fig10b(r *Runner) *Report {
	rep := &Report{ID: "fig10b", Title: "Figure 10(b): upper bounds, DBLP r=top3permille", XLabel: "k"}
	boundSeries(r, rep, "dblp", []int{10, 11, 12, 13, 14}, []float64{3}, true, 0)
	return rep
}

// Fig11a tunes λ for the AdvMax order on DBLP and Gowalla.
func Fig11a(r *Runner) *Report {
	rep := &Report{ID: "fig11a", Title: "Figure 11(a): lambda tuning for AdvMax", XLabel: "lambda"}
	var dblp, gow []string
	for _, lambda := range []float64{2, 4, 6, 8, 10} {
		rep.Xs = append(rep.Xs, fmt.Sprintf("%g", lambda))
		cell, _ := r.timedMax("dblp", 15, 3, true, core.MaxOptions{Lambda: lambda})
		dblp = append(dblp, cell)
		cell, _ = r.timedMax("gowalla", 5, 100, false, core.MaxOptions{Lambda: lambda})
		gow = append(gow, cell)
	}
	rep.AddSeries("DBLP k=15 r=top3permille", dblp)
	rep.AddSeries("Gowalla k=5 r=100km", gow)
	return rep
}

// Fig11b compares branch orders for the maximum search on DBLP.
func Fig11b(r *Runner) *Report {
	rep := &Report{ID: "fig11b", Title: "Figure 11(b): branch orders for AdvMax, DBLP r=top3permille", XLabel: "k"}
	branches := []struct {
		name string
		b    core.Branch
	}{
		{"Expand", core.BranchExpandFirst},
		{"Shrink", core.BranchShrinkFirst},
		{"AdvMax", core.BranchAdaptive},
	}
	cells := make(map[string][]string)
	for _, k := range []int{3, 4, 5, 6, 7} {
		rep.Xs = append(rep.Xs, fmt.Sprintf("%d", k))
		for _, br := range branches {
			cell, _ := r.timedMax("dblp", k, 3, true, core.MaxOptions{Branch: br.b})
			cells[br.name] = append(cells[br.name], cell)
		}
	}
	for _, br := range branches {
		rep.AddSeries(br.name, cells[br.name])
	}
	return rep
}

// Fig11c compares vertex orders for the maximum search on DBLP.
func Fig11c(r *Runner) *Report {
	rep := &Report{ID: "fig11c", Title: "Figure 11(c): vertex orders for AdvMax, DBLP r=top3permille", XLabel: "k"}
	orders := []struct {
		name string
		o    core.Order
	}{
		{"Random", core.OrderRandom},
		{"Degree", core.OrderDegree},
		{"d2", core.OrderDelta2},
		{"d1", core.OrderDelta1},
		{"d1-then-d2", core.OrderDelta1ThenDelta2},
		{"lambda*d1-d2", core.OrderLambdaDelta},
	}
	cells := make(map[string][]string)
	for _, k := range []int{3, 4, 5, 6, 7} {
		rep.Xs = append(rep.Xs, fmt.Sprintf("%d", k))
		for _, o := range orders {
			cell, _ := r.timedMax("dblp", k, 3, true, core.MaxOptions{Order: o.o})
			cells[o.name] = append(cells[o.name], cell)
		}
	}
	for _, o := range orders {
		rep.AddSeries(o.name, cells[o.name])
	}
	return rep
}

// enumOrderSeries measures AdvEnum under different vertex orders.
func enumOrderSeries(r *Runner, rep *Report, rvs []float64, orders []struct {
	name string
	o    core.Order
}) {
	cells := make(map[string][]string)
	for _, rv := range rvs {
		rep.Xs = append(rep.Xs, fmt.Sprintf("%g", rv))
		for _, o := range orders {
			cell, _ := r.timedEnum("gowalla", 5, rv, false, core.EnumOptions{Order: o.o})
			cells[o.name] = append(cells[o.name], cell)
		}
	}
	for _, o := range orders {
		rep.AddSeries(o.name, cells[o.name])
	}
}

// Fig11d compares enumeration orders on Gowalla at the small-r end
// (the paper's 1-5km band maps to 10-50km in the synthetic geography).
func Fig11d(r *Runner) *Report {
	rep := &Report{ID: "fig11d", Title: "Figure 11(d): enumeration orders, Gowalla k=5 (small r)", XLabel: "r (km)"}
	enumOrderSeries(r, rep, []float64{10, 20, 30, 40, 50}, []struct {
		name string
		o    core.Order
	}{
		{"Random", core.OrderRandom},
		{"Degree", core.OrderDegree},
		{"d1-then-d2", core.OrderDelta1ThenDelta2},
	})
	return rep
}

// Fig11e compares enumeration orders on Gowalla across the full r grid.
func Fig11e(r *Runner) *Report {
	rep := &Report{ID: "fig11e", Title: "Figure 11(e): enumeration orders, Gowalla k=5", XLabel: "r (km)"}
	enumOrderSeries(r, rep, gowallaRs, []struct {
		name string
		o    core.Order
	}{
		{"d1", core.OrderDelta1},
		{"lambda*d1-d2", core.OrderLambdaDelta},
		{"d1-then-d2", core.OrderDelta1ThenDelta2},
	})
	return rep
}

// Fig11f compares maximal-check orders on Gowalla (AdvEnum with the
// check order varied).
func Fig11f(r *Runner) *Report {
	rep := &Report{ID: "fig11f", Title: "Figure 11(f): maximal-check orders, Gowalla k=5", XLabel: "r (km)"}
	orders := []struct {
		name string
		o    core.Order
	}{
		{"lambda*d1-d2", core.OrderLambdaDelta},
		{"d1-then-d2", core.OrderDelta1ThenDelta2},
		{"Degree", core.OrderDegree},
	}
	cells := make(map[string][]string)
	for _, rv := range gowallaRs {
		rep.Xs = append(rep.Xs, fmt.Sprintf("%g", rv))
		for _, o := range orders {
			cell, _ := r.timedEnum("gowalla", 5, rv, false, core.EnumOptions{CheckOrder: o.o})
			cells[o.name] = append(cells[o.name], cell)
		}
	}
	for _, o := range orders {
		rep.AddSeries(o.name, cells[o.name])
	}
	return rep
}

// datasetGrid holds the Figure 12 per-dataset parameters (k=10
// everywhere; r = 500km, 300km, top 3 permille, top 5 permille).
var datasetGrid = []struct {
	name     string
	rv       float64
	permille bool
}{
	{"brightkite", 500, false},
	{"gowalla", 300, false},
	{"dblp", 3, true},
	{"pokec", 5, true},
}

// Fig12a compares the enumeration variants across all four datasets.
func Fig12a(r *Runner) *Report {
	rep := &Report{ID: "fig12a", Title: "Figure 12(a): enumeration on four datasets (k=10)", XLabel: "dataset"}
	variants := []string{"AdvEnum-O", "AdvEnum-P", "AdvEnum"}
	cells := make(map[string][]string)
	for _, d := range datasetGrid {
		rep.Xs = append(rep.Xs, d.name)
		for _, v := range variants {
			cell, _ := r.timedEnum(d.name, 10, d.rv, d.permille, EnumVariant(v))
			cells[v] = append(cells[v], cell)
		}
	}
	for _, v := range variants {
		rep.AddSeries(v, cells[v])
	}
	return rep
}

// Fig12b compares the maximum-search variants across all four datasets.
func Fig12b(r *Runner) *Report {
	rep := &Report{ID: "fig12b", Title: "Figure 12(b): maximum search on four datasets (k=10)", XLabel: "dataset"}
	variants := []string{"AdvMax-O", "AdvMax-UB", "AdvMax"}
	cells := make(map[string][]string)
	for _, d := range datasetGrid {
		rep.Xs = append(rep.Xs, d.name)
		for _, v := range variants {
			cell, _ := r.timedMax(d.name, 10, d.rv, d.permille, MaxVariant(v))
			cells[v] = append(cells[v], cell)
		}
	}
	for _, v := range variants {
		rep.AddSeries(v, cells[v])
	}
	return rep
}

// enumEffectSeries drives the Figure 13 grids.
func enumEffectSeries(r *Runner, rep *Report, name string, ks []int, rvs []float64, permille bool, fixedK int, fixedR float64) {
	variants := []string{"AdvEnum-O", "AdvEnum-P", "AdvEnum"}
	cells := make(map[string][]string)
	if ks != nil {
		for _, k := range ks {
			rep.Xs = append(rep.Xs, fmt.Sprintf("%d", k))
			for _, v := range variants {
				cell, _ := r.timedEnum(name, k, fixedR, permille, EnumVariant(v))
				cells[v] = append(cells[v], cell)
			}
		}
	} else {
		for _, rv := range rvs {
			rep.Xs = append(rep.Xs, fmt.Sprintf("%g", rv))
			for _, v := range variants {
				cell, _ := r.timedEnum(name, fixedK, rv, permille, EnumVariant(v))
				cells[v] = append(cells[v], cell)
			}
		}
	}
	for _, v := range variants {
		rep.AddSeries(v, cells[v])
	}
}

// Fig13a: effect of k for enumeration on Gowalla, r=100km.
func Fig13a(r *Runner) *Report {
	rep := &Report{ID: "fig13a", Title: "Figure 13(a): enumeration vs k, Gowalla r=100km", XLabel: "k"}
	enumEffectSeries(r, rep, "gowalla", []int{5, 6, 7, 8, 9, 10}, nil, false, 0, 100)
	return rep
}

// Fig13b: effect of r for enumeration on DBLP, k=15.
func Fig13b(r *Runner) *Report {
	rep := &Report{ID: "fig13b", Title: "Figure 13(b): enumeration vs r, DBLP k=15", XLabel: "r (top permille)"}
	enumEffectSeries(r, rep, "dblp", nil, []float64{1, 3, 5, 7, 9, 11, 13, 15}, true, 15, 0)
	return rep
}

// maxEffectSeries drives the Figure 14 grids.
func maxEffectSeries(r *Runner, rep *Report, name string, ks []int, rvs []float64, permille bool, fixedK int, fixedR float64) {
	variants := []string{"AdvMax-O", "AdvMax-UB", "AdvMax"}
	cells := make(map[string][]string)
	if ks != nil {
		for _, k := range ks {
			rep.Xs = append(rep.Xs, fmt.Sprintf("%d", k))
			for _, v := range variants {
				cell, _ := r.timedMax(name, k, fixedR, permille, MaxVariant(v))
				cells[v] = append(cells[v], cell)
			}
		}
	} else {
		for _, rv := range rvs {
			rep.Xs = append(rep.Xs, fmt.Sprintf("%g", rv))
			for _, v := range variants {
				cell, _ := r.timedMax(name, fixedK, rv, permille, MaxVariant(v))
				cells[v] = append(cells[v], cell)
			}
		}
	}
	for _, v := range variants {
		rep.AddSeries(v, cells[v])
	}
}

// Fig14a: effect of k for the maximum search on Gowalla, r=100km.
func Fig14a(r *Runner) *Report {
	rep := &Report{ID: "fig14a", Title: "Figure 14(a): maximum search vs k, Gowalla r=100km", XLabel: "k"}
	maxEffectSeries(r, rep, "gowalla", []int{5, 6, 7, 8, 9, 10}, nil, false, 0, 100)
	return rep
}

// Fig14b: effect of r for the maximum search on DBLP, k=15.
func Fig14b(r *Runner) *Report {
	rep := &Report{ID: "fig14b", Title: "Figure 14(b): maximum search vs r, DBLP k=15", XLabel: "r (top permille)"}
	maxEffectSeries(r, rep, "dblp", nil, []float64{1, 3, 5, 7, 9, 11, 13, 15}, true, 15, 0)
	return rep
}
