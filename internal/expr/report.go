// Package expr is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (Section 8) on the synthetic
// stand-in datasets, with per-cell time budgets and the paper's INF
// convention for cells that exceed them.
package expr

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Report is one reproduced table or figure: a grid of formatted cells
// with one row per series and one column per x-axis value. The struct
// marshals directly to the benchrunner's -json output.
type Report struct {
	ID     string   `json:"id"`     // e.g. "fig9a"
	Title  string   `json:"title"`  // e.g. "Figure 9(a): pruning techniques, Gowalla k=5"
	XLabel string   `json:"xlabel"` // e.g. "r (km)"
	Xs     []string `json:"xs"`
	Series []Series `json:"series"`
	// Notes carries free-form lines (case-study output, caveats).
	Notes []string `json:"notes,omitempty"`
}

// Series is one curve/bar group of a figure.
type Series struct {
	Name  string   `json:"name"`
	Cells []string `json:"cells"`
}

// AddSeries appends a series; the number of cells should match len(Xs).
func (r *Report) AddSeries(name string, cells []string) {
	r.Series = append(r.Series, Series{Name: name, Cells: cells})
}

// Render writes the report as an aligned text table.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", r.Title)
	if len(r.Xs) > 0 {
		// Column widths.
		nameW := len(r.XLabel)
		for _, s := range r.Series {
			if len(s.Name) > nameW {
				nameW = len(s.Name)
			}
		}
		colW := make([]int, len(r.Xs))
		for i, x := range r.Xs {
			colW[i] = len(x)
			for _, s := range r.Series {
				if i < len(s.Cells) && len(s.Cells[i]) > colW[i] {
					colW[i] = len(s.Cells[i])
				}
			}
		}
		fmt.Fprintf(w, "%-*s", nameW+2, r.XLabel)
		for i, x := range r.Xs {
			fmt.Fprintf(w, "  %*s", colW[i], x)
		}
		fmt.Fprintln(w)
		for _, s := range r.Series {
			fmt.Fprintf(w, "%-*s", nameW+2, s.Name)
			for i := range r.Xs {
				cell := ""
				if i < len(s.Cells) {
					cell = s.Cells[i]
				}
				fmt.Fprintf(w, "  %*s", colW[i], cell)
			}
			fmt.Fprintln(w)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders to a string (for tests and logs).
func (r *Report) String() string {
	var b strings.Builder
	r.Render(&b)
	return b.String()
}

// fmtDuration formats a measured cell the way the paper's log-scale
// plots read: seconds with enough precision at the fast end, INF when
// the budget was exceeded.
func fmtDuration(d time.Duration, inf bool) string {
	if inf {
		return "INF"
	}
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	case d < time.Second:
		return fmt.Sprintf("%.0fms", float64(d.Milliseconds()))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
