package attr

import (
	"fmt"
	"math"
	"testing"

	"krcore/internal/binenc"
)

func TestGeoBinaryRoundTrip(t *testing.T) {
	s := NewGeo(4)
	s.SetVertex(0, Point{X: 1.5, Y: -2})
	s.SetVertex(3, Point{X: math.Pi, Y: 0})
	var b binenc.Buffer
	s.AppendBinary(&b)
	got, err := DecodeGeo(binenc.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 4 || got.Vertex(0) != s.Vertex(0) || got.Vertex(3) != s.Vertex(3) {
		t.Fatalf("decoded geo store differs: %+v", got)
	}
	if _, err := DecodeGeo(binenc.NewReader(b.Bytes()[:10])); err == nil {
		t.Fatal("truncated geo store accepted")
	}
}

// TestKeywordsBinaryCanonical checks that a store with backing-slice
// holes (from slot reuse) re-encodes compactly and byte-stably.
func TestKeywordsBinaryCanonical(t *testing.T) {
	s := NewKeywords(3)
	s.SetVertex(0, []int32{5, 1, 3})
	s.SetVertex(1, []int32{2})
	s.SetVertex(0, []int32{7, 9, 11, 13}) // abandons the old slot
	var b binenc.Buffer
	s.AppendBinary(&b)
	got, err := DecodeKeywords(binenc.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u < 3; u++ {
		if fmt.Sprint(got.Vertex(u)) != fmt.Sprint(s.Vertex(u)) {
			t.Fatalf("vertex %d: %v != %v", u, got.Vertex(u), s.Vertex(u))
		}
	}
	var b2 binenc.Buffer
	got.AppendBinary(&b2)
	if string(b.Bytes()) != string(b2.Bytes()) {
		t.Fatal("re-encode not byte-stable")
	}
}

func TestDecodeKeywordsRejectsUnsorted(t *testing.T) {
	var b binenc.Buffer
	b.U64(1) // one vertex
	b.U32(2) // two keys
	b.U32(4) // key 4
	b.U32(2) // key 2: not ascending
	if _, err := DecodeKeywords(binenc.NewReader(b.Bytes())); err == nil {
		t.Fatal("unsorted keyword set accepted")
	}
}

func TestWeightedBinaryRoundTrip(t *testing.T) {
	s := NewWeighted(2)
	s.SetVertex(0, []WeightedEntry{{Key: 3, Weight: 2}, {Key: 1, Weight: 0.5}})
	s.SetVertex(1, []WeightedEntry{{Key: 9, Weight: 4}})
	var b binenc.Buffer
	s.AppendBinary(&b)
	got, err := DecodeWeighted(binenc.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u < 2; u++ {
		if fmt.Sprint(got.Vertex(u)) != fmt.Sprint(s.Vertex(u)) {
			t.Fatalf("vertex %d: %v != %v", u, got.Vertex(u), s.Vertex(u))
		}
	}
	var b2 binenc.Buffer
	got.AppendBinary(&b2)
	if string(b.Bytes()) != string(b2.Bytes()) {
		t.Fatal("re-encode not byte-stable")
	}
}

func TestDecodeWeightedRejectsBadWeights(t *testing.T) {
	for _, w := range []float64{-1, math.NaN(), math.Inf(1)} {
		s := NewWeighted(1)
		s.SetVertex(0, []WeightedEntry{{Key: 1, Weight: 1}})
		s.weights[0] = w // bypass SetVertex to plant the bad weight
		var b binenc.Buffer
		s.AppendBinary(&b)
		if _, err := DecodeWeighted(binenc.NewReader(b.Bytes())); err == nil {
			t.Fatalf("weight %g accepted", w)
		}
	}
}
