// Package attr stores per-vertex attributes for attributed graphs.
//
// The paper's datasets use three attribute kinds: plain keyword sets
// (research interests), weighted keyword sets ("counted" conference and
// journal lists in DBLP, interest frequencies in Pokec), and 2-D
// geographic points (Brightkite, Gowalla check-in homes). Similarity
// metrics over these stores live in package similarity.
package attr

import "sort"

// Kind identifies the attribute type carried by a store.
type Kind int

const (
	// KindKeywords marks per-vertex sets of keyword ids.
	KindKeywords Kind = iota
	// KindWeighted marks per-vertex keyword->weight multisets.
	KindWeighted
	// KindGeo marks per-vertex 2-D points.
	KindGeo
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindKeywords:
		return "keywords"
	case KindWeighted:
		return "weighted-keywords"
	case KindGeo:
		return "geo"
	default:
		return "unknown"
	}
}

// Keywords stores a sorted, deduplicated keyword-id set per vertex.
type Keywords struct {
	sets [][]int32
}

// NewKeywords returns a Keywords store for n vertices with empty sets.
func NewKeywords(n int) *Keywords {
	return &Keywords{sets: make([][]int32, n)}
}

// SetVertex assigns the keyword set of vertex u; the slice is sorted and
// deduplicated in place.
func (s *Keywords) SetVertex(u int32, kws []int32) {
	sort.Slice(kws, func(i, j int) bool { return kws[i] < kws[j] })
	w := 0
	for i, v := range kws {
		if i > 0 && v == kws[i-1] {
			continue
		}
		kws[w] = v
		w++
	}
	s.sets[u] = kws[:w]
}

// Vertex returns the sorted keyword set of u (shared slice; do not
// modify).
func (s *Keywords) Vertex(u int32) []int32 { return s.sets[u] }

// N returns the number of vertices.
func (s *Keywords) N() int { return len(s.sets) }

// Jaccard returns |A∩B| / |A∪B| for the keyword sets of u and v. Two
// empty sets have similarity 0 by convention (such users share no
// interests we can observe).
func (s *Keywords) Jaccard(u, v int32) float64 {
	a, b := s.sets[u], s.sets[v]
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// WeightedEntry is one keyword with its weight (e.g. the number of papers
// an author published at the venue).
type WeightedEntry struct {
	Key    int32
	Weight float64
}

// Weighted stores a sorted keyword->weight list per vertex. Weights must
// be non-negative.
type Weighted struct {
	sets [][]WeightedEntry
}

// NewWeighted returns a Weighted store for n vertices with empty lists.
func NewWeighted(n int) *Weighted {
	return &Weighted{sets: make([][]WeightedEntry, n)}
}

// SetVertex assigns the weighted keyword list of u; entries are sorted by
// key and duplicate keys have their weights summed.
func (s *Weighted) SetVertex(u int32, entries []WeightedEntry) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	w := 0
	for i, e := range entries {
		if i > 0 && e.Key == entries[w-1].Key {
			entries[w-1].Weight += e.Weight
			continue
		}
		entries[w] = e
		w++
	}
	s.sets[u] = entries[:w]
}

// Vertex returns the sorted weighted keyword list of u (shared slice; do
// not modify).
func (s *Weighted) Vertex(u int32) []WeightedEntry { return s.sets[u] }

// N returns the number of vertices.
func (s *Weighted) N() int { return len(s.sets) }

// WeightedJaccard returns Σ min(a_i, b_i) / Σ max(a_i, b_i) over the
// union of keys, the metric the paper uses for DBLP and Pokec. Two empty
// lists have similarity 0.
func (s *Weighted) WeightedJaccard(u, v int32) float64 {
	a, b := s.sets[u], s.sets[v]
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	var num, den float64
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i].Key < b[j].Key):
			den += a[i].Weight
			i++
		case i >= len(a) || b[j].Key < a[i].Key:
			den += b[j].Weight
			j++
		default:
			if a[i].Weight < b[j].Weight {
				num += a[i].Weight
				den += b[j].Weight
			} else {
				num += b[j].Weight
				den += a[i].Weight
			}
			i++
			j++
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Point is a 2-D location. For the synthetic geo datasets the unit is
// kilometres on a plane, matching the paper's 1km-500km thresholds.
type Point struct {
	X, Y float64
}

// Geo stores one Point per vertex.
type Geo struct {
	pts []Point
}

// NewGeo returns a Geo store for n vertices at the origin.
func NewGeo(n int) *Geo {
	return &Geo{pts: make([]Point, n)}
}

// SetVertex assigns the location of u.
func (s *Geo) SetVertex(u int32, p Point) { s.pts[u] = p }

// Vertex returns the location of u.
func (s *Geo) Vertex(u int32) Point { return s.pts[u] }

// N returns the number of vertices.
func (s *Geo) N() int { return len(s.pts) }

// Distance2 returns the squared Euclidean distance between u and v.
// Comparisons against a threshold r should use Distance2 <= r*r to avoid
// the square root.
func (s *Geo) Distance2(u, v int32) float64 {
	dx := s.pts[u].X - s.pts[v].X
	dy := s.pts[u].Y - s.pts[v].Y
	return dx*dx + dy*dy
}
