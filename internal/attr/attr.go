// Package attr stores per-vertex attributes for attributed graphs.
//
// The paper's datasets use three attribute kinds: plain keyword sets
// (research interests), weighted keyword sets ("counted" conference and
// journal lists in DBLP, interest frequencies in Pokec), and 2-D
// geographic points (Brightkite, Gowalla check-in homes). Similarity
// metrics over these stores live in package similarity.
//
// The keyword stores are flat CSR structures: one backing slice of
// keys (plus a parallel weight slice for Weighted) with per-vertex
// offset/length headers, so bulk similarity scans walk contiguous
// memory instead of chasing one heap slice per vertex.
package attr

import "sort"

// Kind identifies the attribute type carried by a store.
type Kind int

const (
	// KindKeywords marks per-vertex sets of keyword ids.
	KindKeywords Kind = iota
	// KindWeighted marks per-vertex keyword->weight multisets.
	KindWeighted
	// KindGeo marks per-vertex 2-D points.
	KindGeo
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindKeywords:
		return "keywords"
	case KindWeighted:
		return "weighted-keywords"
	case KindGeo:
		return "geo"
	default:
		return "unknown"
	}
}

// span locates one vertex's attribute run inside a backing slice.
type span struct {
	off int32
	n   int32
}

// Keywords stores a sorted, deduplicated keyword-id set per vertex in
// CSR form: all keys live in one backing slice, addressed by per-vertex
// spans.
type Keywords struct {
	keys  []int32
	spans []span
}

// NewKeywords returns a Keywords store for n vertices with empty sets.
func NewKeywords(n int) *Keywords {
	return &Keywords{spans: make([]span, n)}
}

// SetVertex assigns the keyword set of vertex u; the slice is sorted and
// deduplicated in place before being copied into the backing slice.
// Re-assigning a vertex reuses its slot when the new set fits and
// appends fresh backing space otherwise.
func (s *Keywords) SetVertex(u int32, kws []int32) {
	sort.Slice(kws, func(i, j int) bool { return kws[i] < kws[j] })
	w := 0
	for i, v := range kws {
		if i > 0 && v == kws[i-1] {
			continue
		}
		kws[w] = v
		w++
	}
	kws = kws[:w]
	sp := s.spans[u]
	if int(sp.n) >= w {
		copy(s.keys[sp.off:], kws)
		s.spans[u].n = int32(w)
		return
	}
	s.spans[u] = span{off: int32(len(s.keys)), n: int32(w)}
	s.keys = append(s.keys, kws...)
}

// Grow extends the store to n vertices with empty keyword sets (no-op
// when already at least that large).
func (s *Keywords) Grow(n int) {
	for len(s.spans) < n {
		s.spans = append(s.spans, span{})
	}
}

// Vertex returns the sorted keyword set of u (a view into the backing
// slice; do not modify).
func (s *Keywords) Vertex(u int32) []int32 {
	sp := s.spans[u]
	return s.keys[sp.off : sp.off+sp.n : sp.off+sp.n]
}

// Len returns the keyword count of u without materialising the view.
func (s *Keywords) Len(u int32) int { return int(s.spans[u].n) }

// N returns the number of vertices.
func (s *Keywords) N() int { return len(s.spans) }

// Jaccard returns |A∩B| / |A∪B| for the keyword sets of u and v. Two
// empty sets have similarity 0 by convention (such users share no
// interests we can observe).
func (s *Keywords) Jaccard(u, v int32) float64 {
	a, b := s.Vertex(u), s.Vertex(v)
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// WeightedEntry is one keyword with its weight (e.g. the number of papers
// an author published at the venue).
type WeightedEntry struct {
	Key    int32
	Weight float64
}

// Weighted stores a sorted keyword->weight list per vertex in CSR form:
// parallel key and weight backing slices addressed by per-vertex spans.
// Weights must be non-negative.
type Weighted struct {
	keys    []int32
	weights []float64
	spans   []span
}

// NewWeighted returns a Weighted store for n vertices with empty lists.
func NewWeighted(n int) *Weighted {
	return &Weighted{spans: make([]span, n)}
}

// SetVertex assigns the weighted keyword list of u; entries are sorted by
// key and duplicate keys have their weights summed. Re-assigning a
// vertex reuses its slot when the new list fits.
func (s *Weighted) SetVertex(u int32, entries []WeightedEntry) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	w := 0
	for i, e := range entries {
		if i > 0 && e.Key == entries[w-1].Key {
			entries[w-1].Weight += e.Weight
			continue
		}
		entries[w] = e
		w++
	}
	entries = entries[:w]
	sp := s.spans[u]
	if int(sp.n) < w {
		sp = span{off: int32(len(s.keys)), n: int32(w)}
		s.keys = append(s.keys, make([]int32, w)...)
		s.weights = append(s.weights, make([]float64, w)...)
	}
	sp.n = int32(w)
	for i, e := range entries {
		s.keys[int(sp.off)+i] = e.Key
		s.weights[int(sp.off)+i] = e.Weight
	}
	s.spans[u] = sp
}

// Grow extends the store to n vertices with empty lists (no-op when
// already at least that large).
func (s *Weighted) Grow(n int) {
	for len(s.spans) < n {
		s.spans = append(s.spans, span{})
	}
}

// Vertex returns the sorted weighted keyword list of u as a freshly
// allocated slice (the store itself keeps keys and weights in parallel
// backing arrays).
func (s *Weighted) Vertex(u int32) []WeightedEntry {
	sp := s.spans[u]
	out := make([]WeightedEntry, sp.n)
	for i := range out {
		out[i] = WeightedEntry{Key: s.keys[int(sp.off)+i], Weight: s.weights[int(sp.off)+i]}
	}
	return out
}

// Keys returns the sorted key list of u (a view; do not modify).
func (s *Weighted) Keys(u int32) []int32 {
	sp := s.spans[u]
	return s.keys[sp.off : sp.off+sp.n : sp.off+sp.n]
}

// Weights returns the weight list of u, parallel to Keys (a view; do
// not modify).
func (s *Weighted) Weights(u int32) []float64 {
	sp := s.spans[u]
	return s.weights[sp.off : sp.off+sp.n : sp.off+sp.n]
}

// Len returns the entry count of u.
func (s *Weighted) Len(u int32) int { return int(s.spans[u].n) }

// N returns the number of vertices.
func (s *Weighted) N() int { return len(s.spans) }

// WeightedJaccard returns Σ min(a_i, b_i) / Σ max(a_i, b_i) over the
// union of keys, the metric the paper uses for DBLP and Pokec. Two empty
// lists have similarity 0.
func (s *Weighted) WeightedJaccard(u, v int32) float64 {
	ak, aw := s.Keys(u), s.Weights(u)
	bk, bw := s.Keys(v), s.Weights(v)
	if len(ak) == 0 && len(bk) == 0 {
		return 0
	}
	var num, den float64
	i, j := 0, 0
	for i < len(ak) || j < len(bk) {
		switch {
		case j >= len(bk) || (i < len(ak) && ak[i] < bk[j]):
			den += aw[i]
			i++
		case i >= len(ak) || bk[j] < ak[i]:
			den += bw[j]
			j++
		default:
			if aw[i] < bw[j] {
				num += aw[i]
				den += bw[j]
			} else {
				num += bw[j]
				den += aw[i]
			}
			i++
			j++
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Point is a 2-D location. For the synthetic geo datasets the unit is
// kilometres on a plane, matching the paper's 1km-500km thresholds.
type Point struct {
	X, Y float64
}

// Geo stores one Point per vertex (already flat: one backing slice).
type Geo struct {
	pts []Point
}

// NewGeo returns a Geo store for n vertices at the origin.
func NewGeo(n int) *Geo {
	return &Geo{pts: make([]Point, n)}
}

// SetVertex assigns the location of u.
func (s *Geo) SetVertex(u int32, p Point) { s.pts[u] = p }

// Grow extends the store to n vertices at the origin (no-op when
// already at least that large).
func (s *Geo) Grow(n int) {
	for len(s.pts) < n {
		s.pts = append(s.pts, Point{})
	}
}

// Vertex returns the location of u.
func (s *Geo) Vertex(u int32) Point { return s.pts[u] }

// N returns the number of vertices.
func (s *Geo) N() int { return len(s.pts) }

// Distance2 returns the squared Euclidean distance between u and v.
// Comparisons against a threshold r should use Distance2 <= r*r to avoid
// the square root.
func (s *Geo) Distance2(u, v int32) float64 {
	dx := s.pts[u].X - s.pts[v].X
	dy := s.pts[u].Y - s.pts[v].Y
	return dx*dx + dy*dy
}

// Clone returns a deep copy of the store sharing no backing storage,
// so a caller can keep reading a consistent state (a snapshot encoder
// writing outside the serving lock) while the original resumes
// mutating.
func (s *Keywords) Clone() *Keywords {
	return &Keywords{
		keys:  append([]int32(nil), s.keys...),
		spans: append([]span(nil), s.spans...),
	}
}

// Clone returns a deep copy of the store sharing no backing storage.
// See Keywords.Clone.
func (s *Weighted) Clone() *Weighted {
	return &Weighted{
		keys:    append([]int32(nil), s.keys...),
		weights: append([]float64(nil), s.weights...),
		spans:   append([]span(nil), s.spans...),
	}
}

// Clone returns a deep copy of the store sharing no backing storage.
// See Keywords.Clone.
func (s *Geo) Clone() *Geo {
	return &Geo{pts: append([]Point(nil), s.pts...)}
}
