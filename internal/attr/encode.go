package attr

import (
	"encoding/binary"
	"fmt"
	"math"

	"krcore/internal/binenc"
)

// The attribute stores serialise in canonical compact form: per-vertex
// lengths first, then the attribute data flattened in vertex order.
// A store that accumulated backing-slice holes through SetVertex slot
// reuse re-encodes without them, and a decoded store is always
// compact, so decode-then-encode is byte-identical — the snapshot
// golden tests depend on exactly that.

// AppendBinary serialises the geo store.
func (s *Geo) AppendBinary(b *binenc.Buffer) {
	b.U64(uint64(len(s.pts)))
	for _, p := range s.pts {
		b.F64(p.X)
		b.F64(p.Y)
	}
}

// DecodeGeo reconstructs a geo store written by AppendBinary.
func DecodeGeo(r *binenc.Reader) (*Geo, error) {
	n := r.Count(16)
	raw := r.Raw(16 * n)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("geo store: %w", err)
	}
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			X: math.Float64frombits(binary.LittleEndian.Uint64(raw[16*i:])),
			Y: math.Float64frombits(binary.LittleEndian.Uint64(raw[16*i+8:])),
		}
	}
	return &Geo{pts: pts}, nil
}

// AppendBinary serialises the keyword store in compact CSR form.
func (s *Keywords) AppendBinary(b *binenc.Buffer) {
	b.U64(uint64(len(s.spans)))
	for _, sp := range s.spans {
		b.U32(uint32(sp.n))
	}
	for _, sp := range s.spans {
		for _, k := range s.keys[sp.off : sp.off+sp.n] {
			b.U32(uint32(k))
		}
	}
}

// decodeSpans reads the per-vertex lengths and flattened values shared
// by both keyword stores, validating each vertex's keys strictly
// ascending (the sorted-and-deduplicated store invariant).
func decodeSpans(r *binenc.Reader) (spans []span, keys []int32, err error) {
	n := r.Count(4)
	rawLens := r.Raw(4 * n)
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	spans = make([]span, n)
	total := 0
	for i := range spans {
		c := binary.LittleEndian.Uint32(rawLens[4*i:])
		spans[i] = span{off: int32(total), n: int32(c)}
		total += int(c)
		// Checked inside the loop so a corrupt section cannot drive the
		// running total into overflow before a single post-loop check.
		if total > r.Remaining()/4 {
			return nil, nil, fmt.Errorf("claims %d+ keys, only %d bytes left", total, r.Remaining())
		}
	}
	raw := r.Raw(4 * total)
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	keys = make([]int32, total)
	for i := range keys {
		keys[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	for u, sp := range spans {
		list := keys[sp.off : sp.off+sp.n]
		for i := 1; i < len(list); i++ {
			if list[i] <= list[i-1] {
				return nil, nil, fmt.Errorf("vertex %d: keys not strictly ascending", u)
			}
		}
	}
	return spans, keys, nil
}

// DecodeKeywords reconstructs a keyword store written by AppendBinary.
func DecodeKeywords(r *binenc.Reader) (*Keywords, error) {
	spans, keys, err := decodeSpans(r)
	if err != nil {
		return nil, fmt.Errorf("keyword store: %w", err)
	}
	return &Keywords{keys: keys, spans: spans}, nil
}

// AppendBinary serialises the weighted keyword store in compact CSR
// form: lengths, flattened keys, then flattened weights.
func (s *Weighted) AppendBinary(b *binenc.Buffer) {
	b.U64(uint64(len(s.spans)))
	for _, sp := range s.spans {
		b.U32(uint32(sp.n))
	}
	for _, sp := range s.spans {
		for _, k := range s.keys[sp.off : sp.off+sp.n] {
			b.U32(uint32(k))
		}
	}
	for _, sp := range s.spans {
		for _, w := range s.weights[sp.off : sp.off+sp.n] {
			b.F64(w)
		}
	}
}

// DecodeWeighted reconstructs a weighted keyword store written by
// AppendBinary, additionally validating that every weight is finite
// and non-negative (the store invariant the metrics assume).
func DecodeWeighted(r *binenc.Reader) (*Weighted, error) {
	spans, keys, err := decodeSpans(r)
	if err != nil {
		return nil, fmt.Errorf("weighted store: %w", err)
	}
	raw := r.Raw(8 * len(keys))
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("weighted store: %w", err)
	}
	weights := make([]float64, len(keys))
	for i := range weights {
		weights[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	for i, w := range weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return nil, fmt.Errorf("weighted store: weight %d is %g, want finite and non-negative", i, w)
		}
	}
	return &Weighted{keys: keys, weights: weights, spans: spans}, nil
}
