package attr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKeywordsJaccard(t *testing.T) {
	s := NewKeywords(4)
	s.SetVertex(0, []int32{1, 2, 3})
	s.SetVertex(1, []int32{2, 3, 4})
	s.SetVertex(2, []int32{1, 2, 3})
	// vertex 3 left empty
	if got := s.Jaccard(0, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Jaccard(0,1) = %v, want 0.5", got)
	}
	if got := s.Jaccard(0, 2); got != 1 {
		t.Fatalf("Jaccard of identical sets = %v, want 1", got)
	}
	if got := s.Jaccard(0, 3); got != 0 {
		t.Fatalf("Jaccard with empty set = %v, want 0", got)
	}
	if got := s.Jaccard(3, 3); got != 0 {
		t.Fatalf("Jaccard of two empty sets = %v, want 0 by convention", got)
	}
}

func TestKeywordsSetVertexDedup(t *testing.T) {
	s := NewKeywords(1)
	s.SetVertex(0, []int32{5, 1, 5, 3, 1})
	got := s.Vertex(0)
	want := []int32{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Vertex(0) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vertex(0) = %v, want %v", got, want)
		}
	}
}

func TestWeightedJaccard(t *testing.T) {
	s := NewWeighted(3)
	s.SetVertex(0, []WeightedEntry{{Key: 1, Weight: 2}, {Key: 2, Weight: 3}})
	s.SetVertex(1, []WeightedEntry{{Key: 1, Weight: 1}, {Key: 3, Weight: 4}})
	// min sum over union: key1 min(2,1)=1; key2 min(3,0)=0; key3 min(0,4)=0 => 1
	// max sum: key1 2 + key2 3 + key3 4 = 9
	if got := s.WeightedJaccard(0, 1); math.Abs(got-1.0/9.0) > 1e-12 {
		t.Fatalf("WeightedJaccard = %v, want 1/9", got)
	}
	if got := s.WeightedJaccard(0, 0); got != 1 {
		t.Fatalf("self weighted Jaccard = %v, want 1", got)
	}
	if got := s.WeightedJaccard(0, 2); got != 0 {
		t.Fatalf("weighted Jaccard with empty = %v, want 0", got)
	}
	if got := s.WeightedJaccard(2, 2); got != 0 {
		t.Fatalf("weighted Jaccard of empties = %v, want 0", got)
	}
}

func TestWeightedSetVertexMergesDuplicates(t *testing.T) {
	s := NewWeighted(1)
	s.SetVertex(0, []WeightedEntry{{Key: 2, Weight: 1}, {Key: 2, Weight: 4}, {Key: 1, Weight: 3}})
	got := s.Vertex(0)
	if len(got) != 2 || got[0].Key != 1 || got[0].Weight != 3 || got[1].Key != 2 || got[1].Weight != 5 {
		t.Fatalf("merged entries = %v", got)
	}
}

func TestGeoDistance(t *testing.T) {
	s := NewGeo(2)
	s.SetVertex(0, Point{X: 0, Y: 0})
	s.SetVertex(1, Point{X: 3, Y: 4})
	if got := s.Distance2(0, 1); got != 25 {
		t.Fatalf("Distance2 = %v, want 25", got)
	}
	if got := s.Distance2(0, 0); got != 0 {
		t.Fatalf("self distance = %v, want 0", got)
	}
}

// Properties: symmetry and range of both Jaccard variants.
func TestJaccardProperties(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		kw := NewKeywords(n)
		ww := NewWeighted(n)
		for u := 0; u < n; u++ {
			var ks []int32
			var ws []WeightedEntry
			for i := 0; i < rng.Intn(8); i++ {
				k := int32(rng.Intn(12))
				ks = append(ks, k)
				ws = append(ws, WeightedEntry{Key: k, Weight: float64(1 + rng.Intn(5))})
			}
			kw.SetVertex(int32(u), ks)
			ww.SetVertex(int32(u), ws)
		}
		for i := 0; i < 20; i++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			j1, j2 := kw.Jaccard(u, v), kw.Jaccard(v, u)
			w1, w2 := ww.WeightedJaccard(u, v), ww.WeightedJaccard(v, u)
			if j1 != j2 || w1 != w2 {
				return false // symmetry
			}
			if j1 < 0 || j1 > 1 || w1 < 0 || w1 > 1 {
				return false // range
			}
			// Plain Jaccard with unit weights equals weighted Jaccard of
			// the deduplicated set only if weights are equal; skip that
			// cross-check here, covered by the explicit tests above.
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if KindKeywords.String() != "keywords" || KindWeighted.String() != "weighted-keywords" ||
		KindGeo.String() != "geo" || Kind(99).String() != "unknown" {
		t.Fatal("Kind.String() wrong")
	}
}

// TestGrow covers the dynamic-engine growth path of all three stores:
// growth preserves existing attributes, new vertices are zero-valued,
// and shrinking requests are no-ops.
func TestGrow(t *testing.T) {
	kw := NewKeywords(2)
	kw.SetVertex(1, []int32{3, 1})
	kw.Grow(4)
	if kw.N() != 4 || len(kw.Vertex(3)) != 0 {
		t.Fatalf("Keywords.Grow: N=%d, v3=%v", kw.N(), kw.Vertex(3))
	}
	if got := kw.Vertex(1); len(got) != 2 || got[0] != 1 {
		t.Fatalf("Keywords.Grow lost attributes: %v", got)
	}
	kw.SetVertex(3, []int32{7})
	if kw.Len(3) != 1 {
		t.Fatal("grown vertex not assignable")
	}
	kw.Grow(1)
	if kw.N() != 4 {
		t.Fatal("Grow must never shrink")
	}

	ww := NewWeighted(1)
	ww.SetVertex(0, []WeightedEntry{{Key: 2, Weight: 3}})
	ww.Grow(3)
	if ww.N() != 3 || ww.Len(2) != 0 || ww.Len(0) != 1 {
		t.Fatalf("Weighted.Grow: N=%d", ww.N())
	}

	geo := NewGeo(1)
	geo.SetVertex(0, Point{X: 5, Y: 6})
	geo.Grow(3)
	if geo.N() != 3 || geo.Vertex(2) != (Point{}) || geo.Vertex(0) != (Point{X: 5, Y: 6}) {
		t.Fatalf("Geo.Grow: N=%d v0=%v v2=%v", geo.N(), geo.Vertex(0), geo.Vertex(2))
	}
}
