package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField flags struct fields that are accessed through sync/atomic
// in one place and read or written plainly in another. A field touched
// by atomic.AddInt64 in the hot path and `x.n++` in a cleanup path has
// a data race the race detector only catches when both paths collide
// under test; mixing the two access modes is never intentional in this
// codebase — the counter discipline since PR 2/4 is typed atomics or
// sync/atomic everywhere. The typed atomic.Int64/Bool/... types are
// immune by construction (no plain access compiles) and are the
// preferred fix.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "a struct field accessed via sync/atomic must never be read or written plainly",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) error {
	// Pass 1: fields reached through sync/atomic calls, and the selector
	// nodes inside those calls (which are the sanctioned accesses).
	atomicFields := map[types.Object]string{} // field -> first atomic call key
	sanctioned := map[token.Pos]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(pass.TypesInfo, call)
			if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				selection, ok := pass.TypesInfo.Selections[sel]
				if !ok || selection.Kind() != types.FieldVal {
					continue
				}
				obj := selection.Obj()
				if _, seen := atomicFields[obj]; !seen {
					atomicFields[obj] = funcKey(f)
				}
				sanctioned[sel.Sel.Pos()] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: every other access to those fields is a race.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := pass.TypesInfo.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			key, isAtomic := atomicFields[selection.Obj()]
			if !isAtomic || sanctioned[sel.Sel.Pos()] {
				return true
			}
			pass.Reportf(sel.Pos(), "plain access to %s, which is accessed atomically (%s) elsewhere; use sync/atomic everywhere or a typed atomic.Int64",
				exprString(sel), key)
			return true
		})
	}
	return nil
}
