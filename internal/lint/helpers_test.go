package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runFixture loads testdata/src/<rel> GOPATH-style, runs the analyzers
// over it and checks the findings against `// want "regex"` comments —
// the x/tools analysistest convention: each expectation sits on the
// line it expects a diagnostic on, multiple quoted regexps mean
// multiple diagnostics on that line, and both unmatched findings and
// unmet expectations fail the test.
func runFixture(t *testing.T, rel string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	loader, err := NewLoader(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(rel)
	if err != nil {
		t.Fatalf("load %s: %v", rel, err)
	}
	// Fixture subpackages pulled in as imports join the summary table,
	// exactly as krlint feeds a module's dependency closure.
	var deps []*Package
	for _, p := range loader.LoadedLocal() {
		if p.Path != pkg.Path {
			deps = append(deps, p)
		}
	}
	diags, err := RunModule([]*Package{pkg}, deps, analyzers)
	if err != nil {
		t.Fatalf("run %s: %v", rel, err)
	}
	checkWants(t, pkg, diags)
	return diags
}

type wantKey struct {
	file string
	line int
}

// checkWants compares diagnostics against the fixture's want comments.
func checkWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := map[wantKey][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, ok := parseWant(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := wantKey{pos.Filename, pos.Line}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	for _, d := range diags {
		k := wantKey{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re != nil && re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		wants[k][matched] = nil
	}
	for k, res := range wants {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

// parseWant extracts the quoted regexps of one want comment.
func parseWant(comment string) ([]string, bool) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return nil, false
	}
	var patterns []string
	for {
		rest = strings.TrimSpace(rest)
		if len(rest) == 0 || (rest[0] != '"' && rest[0] != '`') {
			break
		}
		quote := rest[0]
		end := strings.IndexByte(rest[1:], quote)
		if end < 0 {
			break
		}
		patterns = append(patterns, rest[1:1+end])
		rest = rest[end+2:]
	}
	if len(patterns) == 0 {
		return nil, false
	}
	return patterns, true
}

// diagStrings renders findings for failure messages.
func diagStrings(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}
