package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// MapOrder flags `range` over a map whose iteration order flows into
// ordered output without an intervening sort. The repo's headline
// contract is bit-identical results — parallel vs serial, incremental
// vs rebuilt, follower vs leader — and Go map iteration is the one
// construct in the language that is *deliberately* nondeterministic:
// let it reach a wire encoder, a snapshot section, a journal append,
// or a rendered /metrics page and every differential harness in the
// tree turns flaky. The analyzer is the mechanical check behind that
// contract: emitting inside a map range, or accumulating keys into a
// slice that reaches ordered output unsorted, is a finding; building
// another map, counting, or sorting before use is not. Functions that
// *return* a map-ordered slice taint their callers through the
// summary layer's MapOrderedResults bit.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration order must not reach ordered output (wire, snapshot, journal, metrics) without a sort",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			findings, _ := mapOrderAnalyze(pass.pkg, fd, pass.Summaries)
			for _, f := range findings {
				pass.Reportf(f.pos, "%s", f.msg)
			}
		}
	}
	return nil
}

type mapFinding struct {
	pos token.Pos
	msg string
}

// mapTaint tracks one slice variable whose element order derives from
// map iteration.
type mapTaint struct {
	src    string    // the ranged expression ("m", "keys(m)")
	srcPos token.Pos // the range statement
	sorted bool
}

// emitFuncs write their arguments (or format output) in call order —
// ordered sinks for determinism purposes, whether or not the
// destination is in memory.
var emitFuncs = map[string]bool{
	"fmt.Fprintf": true, "fmt.Fprint": true, "fmt.Fprintln": true,
	"fmt.Printf": true, "fmt.Print": true, "fmt.Println": true,
}

// emitMethods are method names that append to an ordered stream.
var emitMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "AppendBatch": true,
}

// consumeFuncs consume a slice in element order; a tainted slice
// passed to one is a finding.
var consumeFuncs = map[string]bool{
	"strings.Join": true,
}

// sortFuncs cleanse: after one of these sees the slice, its order is
// canonical.
var sortFuncs = map[string]bool{
	"sort.Strings": true, "sort.Ints": true, "sort.Float64s": true,
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true, "sort.Stable": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

// mapOrderAnalyze runs the per-function map-order taint analysis and
// returns local findings plus the indices of results whose slice order
// derives from map iteration (the interprocedural summary bit).
// Shared between the maporder analyzer and the summary fixpoint.
func mapOrderAnalyze(pkg *Package, fd *ast.FuncDecl, sums *Summaries) ([]mapFinding, []int) {
	a := &mapOrderFunc{pkg: pkg, sums: sums, fd: fd, taints: map[types.Object]*mapTaint{}}

	// Pass 1, in source order: map ranges (direct emits inside are
	// findings; appends taint their targets) and taint propagation
	// through assignments from map-ordered calls. Ranges over tainted
	// slices wait for pass 3, after cleansing has marked sorted ones.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if src, ok := a.mapOrderedRangeSeed(n); ok {
				a.scanRangeBody(n, src)
			}
		case *ast.AssignStmt:
			a.assignFromOrderedCall(n)
		}
		return true
	})

	// Pass 2: cleansing — any sort call that sees a tainted variable
	// after its range cancels the taint.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(pkg.Info, call)
		if f == nil || !sortFuncs[funcKey(f)] {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if t, tainted := a.taints[pkg.Info.Uses[id]]; tainted && call.Pos() > t.srcPos {
						t.sorted = true
					}
				}
				return true
			})
		}
		return true
	})

	// Pass 3: sinks — a tainted, unsorted slice reaching ordered
	// output, a map-ordered range over one, or the return values.
	var orderedResults []int
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			a.checkSinkCall(n)
		case *ast.RangeStmt:
			if src, ok := a.taintedRange(n); ok {
				a.scanRangeBody(n, src)
			}
		case *ast.ReturnStmt:
			orderedResults = append(orderedResults, a.checkReturn(n)...)
		}
		return true
	})
	// Named results assigned a tainted slice and returned bare.
	orderedResults = append(orderedResults, a.taintedNamedResults()...)

	sort.Ints(orderedResults)
	orderedResults = dedupInts(orderedResults)
	return a.findings, orderedResults
}

type mapOrderFunc struct {
	pkg      *Package
	sums     *Summaries
	fd       *ast.FuncDecl
	taints   map[types.Object]*mapTaint
	findings []mapFinding
}

// mapOrderedRangeSeed reports whether the range statement iterates in
// map-dependent order at the source: directly over a map, or over a
// call whose summary marks the result map-ordered. Ranges over tainted
// slices are classified later (taintedRange), once the cleansing pass
// has marked sorted ones.
func (a *mapOrderFunc) mapOrderedRangeSeed(st *ast.RangeStmt) (src string, ok bool) {
	x := ast.Unparen(st.X)
	if t := a.pkg.Info.TypeOf(x); t != nil {
		if _, isMap := t.Underlying().(*types.Map); isMap {
			return exprString(x), true
		}
	}
	if call, isCall := x.(*ast.CallExpr); isCall {
		if f := calleeFunc(a.pkg.Info, call); f != nil {
			if cs := a.sums.Of(funcKey(f)); cs != nil && containsInt(cs.MapOrderedResults, 0) {
				return exprString(x), true
			}
		}
	}
	return "", false
}

// taintedRange reports whether the range iterates over a slice still
// carrying map-order taint after cleansing.
func (a *mapOrderFunc) taintedRange(st *ast.RangeStmt) (src string, ok bool) {
	if id, isIdent := ast.Unparen(st.X).(*ast.Ident); isIdent {
		if t, tainted := a.taints[a.pkg.Info.Uses[id]]; tainted && !t.sorted && st.Pos() > t.srcPos {
			return t.src, true
		}
	}
	return "", false
}

// scanRangeBody walks one map-ordered range body: emit calls are
// findings, slice appends/index-writes taint their targets.
func (a *mapOrderFunc) scanRangeBody(st *ast.RangeStmt, src string) {
	ast.Inspect(st.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := a.emitCall(n); ok {
				a.findings = append(a.findings, mapFinding{
					pos: n.Pos(),
					msg: "call to " + name + " inside range over " + src +
						": map iteration order reaches ordered output (sort keys first)",
				})
			}
		case *ast.AssignStmt:
			a.taintAssign(n, st, src)
		}
		return true
	})
}

// taintAssign taints slice variables written per-iteration inside a
// map-ordered range: s = append(s, ...), s[i] = v.
func (a *mapOrderFunc) taintAssign(as *ast.AssignStmt, st *ast.RangeStmt, src string) {
	for i, lhs := range as.Lhs {
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if i >= len(as.Rhs) {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
				continue
			} else if _, isBuiltin := a.pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
				continue
			}
			obj := a.pkg.Info.Uses[l]
			if obj == nil {
				obj = a.pkg.Info.Defs[l]
			}
			if obj != nil && isSliceVar(obj) && obj.Pos() < st.Pos() {
				a.taint(obj, st, src)
			}
		case *ast.IndexExpr:
			if id, ok := ast.Unparen(l.X).(*ast.Ident); ok {
				if obj := a.pkg.Info.Uses[id]; obj != nil && isSliceVar(obj) && obj.Pos() < st.Pos() {
					a.taint(obj, st, src)
				}
			}
		}
	}
}

func (a *mapOrderFunc) taint(obj types.Object, st *ast.RangeStmt, src string) {
	if _, ok := a.taints[obj]; !ok {
		a.taints[obj] = &mapTaint{src: src, srcPos: st.Pos()}
	}
}

// assignFromOrderedCall taints variables assigned the result of a call
// whose summary marks that result map-ordered.
func (a *mapOrderFunc) assignFromOrderedCall(as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	f := calleeFunc(a.pkg.Info, call)
	if f == nil {
		return
	}
	cs := a.sums.Of(funcKey(f))
	if cs == nil || len(cs.MapOrderedResults) == 0 {
		return
	}
	for i, lhs := range as.Lhs {
		if !containsInt(cs.MapOrderedResults, i) {
			continue
		}
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			obj := a.pkg.Info.Uses[id]
			if obj == nil {
				obj = a.pkg.Info.Defs[id]
			}
			if obj != nil && isSliceVar(obj) {
				a.taints[obj] = &mapTaint{src: exprString(call), srcPos: as.Pos()}
			}
		}
	}
}

// emitCall classifies one call as an ordered-output sink.
func (a *mapOrderFunc) emitCall(call *ast.CallExpr) (string, bool) {
	f := calleeFunc(a.pkg.Info, call)
	if f == nil {
		return "", false
	}
	key := funcKey(f)
	if emitFuncs[key] {
		return key, true
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil && emitMethods[f.Name()] {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			return exprString(sel.X) + "." + f.Name(), true
		}
		return f.Name(), true
	}
	return "", false
}

// checkSinkCall reports tainted, unsorted slices passed to ordered
// consumers (emit calls, strings.Join).
func (a *mapOrderFunc) checkSinkCall(call *ast.CallExpr) {
	name, isEmit := a.emitCall(call)
	if !isEmit {
		f := calleeFunc(a.pkg.Info, call)
		if f == nil || !consumeFuncs[funcKey(f)] {
			return
		}
		name = funcKey(f)
	}
	for _, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			continue
		}
		t, tainted := a.taints[a.pkg.Info.Uses[id]]
		if tainted && !t.sorted && call.Pos() > t.srcPos {
			a.findings = append(a.findings, mapFinding{
				pos: call.Pos(),
				msg: id.Name + " accumulates range over " + t.src +
					" and reaches " + name + " unsorted: map iteration order leaks into ordered output",
			})
		}
	}
}

// checkReturn marks result indices returning tainted, unsorted slices
// — directly, or through a call whose summary marks them.
func (a *mapOrderFunc) checkReturn(ret *ast.ReturnStmt) []int {
	var out []int
	for i, res := range ret.Results {
		switch r := ast.Unparen(res).(type) {
		case *ast.Ident:
			if t, tainted := a.taints[a.pkg.Info.Uses[r]]; tainted && !t.sorted {
				out = append(out, i)
			}
		case *ast.CallExpr:
			if f := calleeFunc(a.pkg.Info, r); f != nil {
				if cs := a.sums.Of(funcKey(f)); cs != nil && len(ret.Results) == 1 {
					out = append(out, cs.MapOrderedResults...)
				}
			}
		}
	}
	return out
}

// taintedNamedResults handles `return` with named results: a tainted
// named result variable is map-ordered.
func (a *mapOrderFunc) taintedNamedResults() []int {
	if a.fd.Type.Results == nil {
		return nil
	}
	var out []int
	idx := 0
	for _, field := range a.fd.Type.Results.List {
		if len(field.Names) == 0 {
			idx++
			continue
		}
		for _, name := range field.Names {
			if obj := a.pkg.Info.Defs[name]; obj != nil {
				if t, tainted := a.taints[obj]; tainted && !t.sorted {
					out = append(out, idx)
				}
			}
			idx++
		}
	}
	return out
}

func isSliceVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	_, isSlice := v.Type().Underlying().(*types.Slice)
	return isSlice
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func dedupInts(s []int) []int {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
