package lint

import (
	"fmt"
	"sort"
	"strings"
)

// LockOrder reports potential deadlocks from the module-wide
// acquired-before graph: if one call path takes lock A then lock B
// while another takes B then A, two goroutines can block each other
// forever — the classic ABBA shape, invisible to any per-function
// check because the two acquisitions usually live in different
// functions (or different packages). The analyzer also reports double
// acquisition of a non-reentrant mutex by the same instance (a
// self-deadlock: sync.Mutex and sync.RWMutex do not support recursive
// locking), including the transitive shape where a method called with
// the lock held re-locks it deep in a callee.
//
// Lock identity is canonical (struct field, package-level var), so the
// graph spans instances; a deliberate instance-ordered scheme
// (hand-over-hand on two values of one type) is invisible to it and
// never reported — only cross-key cycles are.
var LockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "lock acquisition order must be acyclic, and no mutex is re-acquired while held",
	RunModule: runLockOrder,
}

func runLockOrder(mp *ModulePass) error {
	analyzed := map[string]bool{}
	for _, pkg := range mp.Pkgs {
		analyzed[pkg.Types.Path()] = true
	}

	type edgeInfo struct {
		OrderEdge
		fn string
	}
	// Aggregate edges across every analyzed function, keeping the
	// lexically smallest witness per (from, to) pair for determinism.
	edges := map[[2]string]edgeInfo{}
	sums := mp.Summaries
	for _, key := range sums.Keys() {
		sum := sums.Of(key)
		if !analyzed[sum.PkgPath] {
			continue
		}
		for _, r := range sum.Reacquired {
			via := ""
			if len(r.Via) > 0 {
				via = " via " + strings.Join(r.Via, " -> ")
			}
			mp.Reportf(r.Pos, "%s acquired again while already held (first acquisition at %s)%s",
				r.Display, mp.Fset.Position(r.FirstPos), via)
		}
		for _, e := range sum.Edges {
			if len(e.Via) > 0 {
				// Transitive edges re-materialize in every caller; the
				// direct edge in the acquiring function is the canonical
				// witness and is always present in some summary.
				continue
			}
			k := [2]string{e.From, e.To}
			prev, ok := edges[k]
			if !ok || mp.Fset.Position(e.Pos).String() < mp.Fset.Position(prev.Pos).String() {
				edges[k] = edgeInfo{OrderEdge: e, fn: key}
			}
		}
	}

	// Interprocedural edges: F holds A and calls G which acquires B.
	// Those appear as Via-carrying edges in F's summary; fold them in
	// (the direct-edge dedup above only covers same-function pairs).
	for _, key := range sums.Keys() {
		sum := sums.Of(key)
		if !analyzed[sum.PkgPath] {
			continue
		}
		for _, e := range sum.Edges {
			if len(e.Via) == 0 {
				continue
			}
			k := [2]string{e.From, e.To}
			if _, ok := edges[k]; !ok {
				edges[k] = edgeInfo{OrderEdge: e, fn: key}
			}
		}
	}

	// Cycle detection over the canonical lock keys.
	nodeSet := map[string]bool{}
	adj := map[string][]string{}
	for k := range edges {
		if k[0] == k[1] {
			continue // same-key self edges are instance pairs, not order cycles
		}
		nodeSet[k[0]], nodeSet[k[1]] = true, true
		adj[k[0]] = append(adj[k[0]], k[1])
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for n := range adj {
		sort.Strings(adj[n])
	}

	for _, comp := range tarjanSCC(nodes, adj) {
		if len(comp) < 2 {
			continue
		}
		inComp := map[string]bool{}
		for _, n := range comp {
			inComp[n] = true
		}
		cycle := findCycle(comp[0], adj, inComp)
		if len(cycle) == 0 {
			continue
		}
		var hops []string
		for i := 0; i < len(cycle); i++ {
			from, to := cycle[i], cycle[(i+1)%len(cycle)]
			e := edges[[2]string{from, to}]
			via := ""
			if len(e.Via) > 0 {
				via = " via " + strings.Join(e.Via, " -> ")
			}
			hops = append(hops, fmt.Sprintf("%s -> %s in %s%s (%s)",
				from, to, e.fn, via, mp.Fset.Position(e.Pos)))
		}
		first := edges[[2]string{cycle[0], cycle[1%len(cycle)]}]
		mp.Reportf(first.Pos, "lock order cycle (potential deadlock): %s -> %s; %s",
			strings.Join(cycle, " -> "), cycle[0], strings.Join(hops, "; "))
	}
	return nil
}

// findCycle returns a cycle through start inside one SCC, as the node
// sequence (start, ..., last) with an implicit edge back to start.
// Deterministic: neighbors are explored in sorted order.
func findCycle(start string, adj map[string][]string, inComp map[string]bool) []string {
	var path []string
	onPath := map[string]bool{}
	var dfs func(n string) bool
	dfs = func(n string) bool {
		path = append(path, n)
		onPath[n] = true
		for _, m := range adj[n] {
			if !inComp[m] {
				continue
			}
			if m == start && len(path) > 1 {
				return true
			}
			if !onPath[m] {
				if dfs(m) {
					return true
				}
			}
		}
		path = path[:len(path)-1]
		onPath[n] = false
		return false
	}
	if dfs(start) {
		return path
	}
	return nil
}
