package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockHeld flags blocking calls — file and network I/O, fsync, sleeps,
// and any module function that *transitively* reaches one — made while
// a sync.Mutex or sync.RWMutex is held. The serving engine's locks
// guard query fast paths: one fsync under them and every reader stalls
// behind the next writer, the outage class the group-commit write path
// was restructured to avoid.
//
// Classification is interprocedural: only standard-library leaves are
// named by hand (blockingFuncs); whether a module function blocks is
// derived from its call-graph summary, so a SaveSnapshot-class bug
// hiding any number of calls deep is caught without anyone updating a
// list. Interface-method calls with I/O-verb names and calls through
// function values are conservatively widened to blocking (the target
// is unknown). A mutex whose job IS to serialise I/O — a write-ahead
// journal's append lock — declares that contract with a
// "krlint:iolock" marker in its field doc comment, which exempts its
// regions.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "no blocking call (even transitively) while a sync.Mutex/RWMutex is held (mark deliberate I/O locks with krlint:iolock)",
	Run:  runLockHeld,
}

// blockingFuncs seeds may-block with standard-library leaves only:
// functions that reach the kernel for file, network, or timer waits.
// Module-local functions are never listed here — the summary layer
// derives their blocking behavior from what they transitively call.
var blockingFuncs = map[string]bool{
	"os.Open": true, "os.OpenFile": true, "os.Create": true, "os.CreateTemp": true,
	"os.Rename": true, "os.Remove": true, "os.RemoveAll": true,
	"os.Mkdir": true, "os.MkdirAll": true, "os.MkdirTemp": true,
	"os.ReadFile": true, "os.WriteFile": true, "os.ReadDir": true,
	"os.Stat": true, "os.Lstat": true, "os.Truncate": true,
	"os.Link": true, "os.Symlink": true, "os.Chmod": true, "os.Chtimes": true,
	"time.Sleep": true,
	"net.Dial":   true, "net.DialTimeout": true, "net.Listen": true,
	"net/http.Get": true, "net/http.Post": true, "net/http.PostForm": true, "net/http.Head": true,
	"io.Copy": true, "io.CopyN": true, "io.CopyBuffer": true, "io.ReadAll": true, "io.ReadFull": true,

	"(os.File).Write": true, "(os.File).WriteString": true, "(os.File).WriteAt": true,
	"(os.File).Read": true, "(os.File).ReadAt": true, "(os.File).ReadFrom": true,
	"(os.File).Sync": true, "(os.File).Close": true, "(os.File).Seek": true,
	"(net/http.Client).Do": true, "(net/http.Client).Get": true, "(net/http.Client).Post": true,
	"(os/exec.Cmd).Run": true, "(os/exec.Cmd).Output": true,
	"(os/exec.Cmd).CombinedOutput": true, "(os/exec.Cmd).Wait": true,
}

// blockingIfaceMethods are method names that mean I/O when invoked
// through an interface-typed receiver (io.Writer, io.Reader,
// io.Closer, krcore.JournalAppender and friends): the concrete target
// is unknown, so the call must be assumed to reach a file or socket.
var blockingIfaceMethods = map[string]bool{
	"Write": true, "Read": true, "Close": true, "Sync": true, "Flush": true,
	"ReadFrom": true, "WriteTo": true, "AppendBatch": true, "SaveSnapshot": true,
}

// fprintFuncs write to their first argument; they block unless that
// argument is statically an in-memory buffer.
var fprintFuncs = map[string]bool{
	"fmt.Fprintf": true, "fmt.Fprintln": true, "fmt.Fprint": true,
}

// memoryWriters are concrete types fmt.Fprintf may target without
// blocking.
var memoryWriters = map[string]bool{
	"bytes.Buffer":                  true,
	"strings.Builder":               true,
	"krcore/internal/binenc.Buffer": true,
}

func runLockHeld(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			f, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			key := ""
			if f != nil {
				key = funcKey(f)
			}
			lc := &lockHeldChecker{pass: pass, params: funcParamObjs(pass.pkg, fd)}
			walkFuncBody(pass.pkg, key, fd.Body, pass.Summaries, lc)
		}
	}
	return nil
}

// lockHeldChecker is the lockEvents implementation behind the
// analyzer: it cares only about calls made while non-iolock locks are
// held; acquisition bookkeeping is the walker's job.
type lockHeldChecker struct {
	pass   *Pass
	params map[types.Object]int
}

func (lc *lockHeldChecker) acquire(l *heldLock, prior *heldSet)             {}
func (lc *lockHeldChecker) reacquire(l *heldLock, existing *heldLock)       {}
func (lc *lockHeldChecker) strayRelease(key, display string, pos token.Pos) {}
func (lc *lockHeldChecker) exit(held *heldSet)                              {}
func (lc *lockHeldChecker) async() lockEvents                               { return lc }

func (lc *lockHeldChecker) call(call *ast.CallExpr, held *heldSet, deferred bool) {
	if deferred {
		// A deferred blocking call runs at return; any sticky (deferred
		// unlock) region no longer covers it in source order.
		return
	}
	guarded := heldOutsideIOLocks(held)
	if len(guarded) == 0 {
		return
	}
	bc := classifyBlocking(lc.pass.pkg, lc.pass.Summaries, call, lc.params)
	if !bc.blocks && len(bc.params) == 0 {
		return
	}
	// A call that blocks only through this function's own parameters is
	// still reported: the lock region is handed to caller-supplied code,
	// and whether any caller passes something blocking is invisible from
	// here. A deliberate pure-callback contract is documented with an
	// ignore directive at the call site.
	chain := ""
	if len(bc.via) > 1 {
		chain = "; blocks via " + strings.Join(bc.via, " -> ")
	}
	lc.pass.Reportf(call.Pos(), "blocking call to %s while %s is held (locked at %s)%s",
		bc.name, lockNames(guarded), lc.pass.Fset.Position(earliestLock(guarded)), chain)
}

// heldOutsideIOLocks filters out locks whose documented contract is
// serialising I/O.
func heldOutsideIOLocks(held *heldSet) []*heldLock {
	var out []*heldLock
	for _, l := range held.sorted() {
		if !l.iolock {
			out = append(out, l)
		}
	}
	return out
}

// lockNames lists held lock expressions for the message.
func lockNames(locks []*heldLock) string {
	names := make([]string, 0, len(locks))
	for _, l := range locks {
		names = append(names, l.display)
	}
	return strings.Join(names, ", ")
}

func earliestLock(locks []*heldLock) token.Pos {
	min := token.NoPos
	for _, l := range locks {
		if min == token.NoPos || l.pos < min {
			min = l.pos
		}
	}
	return min
}
