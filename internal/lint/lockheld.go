package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockHeld flags blocking calls — file and network I/O, fsync, journal
// appends, snapshot encodes, sleeps — made while a sync.Mutex or
// sync.RWMutex is held. The serving engine's locks guard query fast
// paths: one fsync under them and every reader stalls behind the next
// writer, the outage class the group-commit write path was
// restructured to avoid (structure-only rebuilds run outside the
// reader lock). A mutex whose job IS to serialise I/O — a write-ahead
// journal's append lock — declares that contract with a "krlint:iolock"
// marker in its field doc comment, which exempts its regions.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "no blocking I/O while a sync.Mutex/RWMutex is held (mark deliberate I/O locks with krlint:iolock)",
	Run:  runLockHeld,
}

// blockingFuncs names package-level functions that block on I/O or
// time, keyed by funcKey.
var blockingFuncs = map[string]bool{
	"os.Open": true, "os.OpenFile": true, "os.Create": true, "os.CreateTemp": true,
	"os.Rename": true, "os.Remove": true, "os.RemoveAll": true,
	"os.Mkdir": true, "os.MkdirAll": true, "os.MkdirTemp": true,
	"os.ReadFile": true, "os.WriteFile": true, "os.ReadDir": true,
	"os.Stat": true, "os.Lstat": true, "os.Truncate": true,
	"os.Link": true, "os.Symlink": true, "os.Chmod": true, "os.Chtimes": true,
	"time.Sleep": true,
	"net.Dial":   true, "net.DialTimeout": true, "net.Listen": true,
	"net/http.Get": true, "net/http.Post": true, "net/http.PostForm": true, "net/http.Head": true,
	"io.Copy": true, "io.CopyN": true, "io.CopyBuffer": true, "io.ReadAll": true, "io.ReadFull": true,

	// Module-specific blockers: the snapshot encoder writes to its
	// io.Writer as it goes, the journal fsyncs per append, and the
	// shared directory-sync helper opens and fsyncs a directory.
	"krcore/internal/fsx.SyncDir":              true,
	"krcore/internal/snapshot.Write":           true,
	"krcore/internal/snapshot.WriteFileAtomic": true,
	"krcore/internal/updates.Compact":          true,

	"(os.File).Write": true, "(os.File).WriteString": true, "(os.File).WriteAt": true,
	"(os.File).Read": true, "(os.File).ReadAt": true, "(os.File).ReadFrom": true,
	"(os.File).Sync": true, "(os.File).Close": true, "(os.File).Seek": true,
	"(net/http.Client).Do": true, "(net/http.Client).Get": true, "(net/http.Client).Post": true,
	"(os/exec.Cmd).Run": true, "(os/exec.Cmd).Output": true,
	"(os/exec.Cmd).CombinedOutput": true, "(os/exec.Cmd).Wait": true,

	"(krcore/internal/updates.Journal).AppendBatch": true,
	"(krcore/internal/updates.Journal).CompactTo":   true,
	"(krcore/internal/updates.Journal).Tail":        true,
	"(krcore/internal/updates.Journal).Close":       true,
}

// blockingIfaceMethods are method names that mean I/O when invoked
// through an interface-typed receiver (io.Writer, io.Reader,
// io.Closer, krcore.JournalAppender and friends): the concrete target
// is unknown, so the call must be assumed to reach a file or socket.
var blockingIfaceMethods = map[string]bool{
	"Write": true, "Read": true, "Close": true, "Sync": true, "Flush": true,
	"ReadFrom": true, "WriteTo": true, "AppendBatch": true, "SaveSnapshot": true,
}

// fprintFuncs write to their first argument; they block unless that
// argument is statically an in-memory buffer.
var fprintFuncs = map[string]bool{
	"fmt.Fprintf": true, "fmt.Fprintln": true, "fmt.Fprint": true,
}

// memoryWriters are concrete types fmt.Fprintf may target without
// blocking.
var memoryWriters = map[string]bool{
	"bytes.Buffer":                  true,
	"strings.Builder":               true,
	"krcore/internal/binenc.Buffer": true,
}

func runLockHeld(pass *Pass) error {
	ioLocks := ioLockFields(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lh := &lockChecker{pass: pass, ioLocks: ioLocks}
			lh.block(fd.Body, newHeldSet())
		}
	}
	return nil
}

// ioLockFields collects mutex struct fields whose doc comment carries
// the krlint:iolock marker.
func ioLockFields(pass *Pass) map[types.Object]bool {
	marked := map[types.Object]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				if !commentHas(f.Doc, "krlint:iolock") && !commentHas(f.Comment, "krlint:iolock") {
					continue
				}
				for _, name := range f.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil && isMutex(obj.Type()) {
						marked[obj] = true
					}
				}
			}
			return true
		})
	}
	return marked
}

func commentHas(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	return strings.Contains(cg.Text(), marker)
}

// isMutex reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutex(t types.Type) bool {
	return isNamed(t, "sync", "Mutex") || isNamed(t, "sync", "RWMutex")
}

// heldSet tracks the lock expressions currently held, keyed by the
// printed receiver expression ("e.mu"). sticky entries were locked
// with a deferred unlock and stay held to the end of the function.
type heldSet struct {
	locks map[string]token.Pos
}

func newHeldSet() *heldSet { return &heldSet{locks: map[string]token.Pos{}} }

func (h *heldSet) clone() *heldSet {
	c := newHeldSet()
	for k, v := range h.locks {
		c.locks[k] = v
	}
	return c
}

type lockChecker struct {
	pass    *Pass
	ioLocks map[types.Object]bool
}

// block walks one statement list in order, threading the held-lock set
// through lock/unlock calls and recursing into nested statements.
func (lc *lockChecker) block(b *ast.BlockStmt, held *heldSet) {
	for _, stmt := range b.List {
		lc.stmt(stmt, held)
	}
}

func (lc *lockChecker) stmt(s ast.Stmt, held *heldSet) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if lc.lockOp(call, held, false) {
				return
			}
		}
		lc.checkExpr(st.X, held)
	case *ast.DeferStmt:
		if lc.lockOp(st.Call, held, true) {
			return
		}
		// A deferred blocking call runs at return; any sticky (deferred
		// unlock) region no longer covers it in source order, so only
		// check the arguments, which evaluate immediately.
		for _, arg := range st.Call.Args {
			lc.checkExpr(arg, held)
		}
	case *ast.GoStmt:
		// The goroutine body runs without this frame's locks; its
		// argument expressions evaluate now.
		for _, arg := range st.Call.Args {
			lc.checkExpr(arg, held)
		}
		if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
			lc.block(fl.Body, newHeldSet())
		}
	case *ast.BlockStmt:
		lc.block(st, held)
	case *ast.IfStmt:
		if st.Init != nil {
			lc.stmt(st.Init, held)
		}
		lc.checkExpr(st.Cond, held)
		lc.block(st.Body, held.clone())
		if st.Else != nil {
			lc.stmt(st.Else, held.clone())
		}
	case *ast.ForStmt:
		if st.Init != nil {
			lc.stmt(st.Init, held)
		}
		if st.Cond != nil {
			lc.checkExpr(st.Cond, held)
		}
		lc.block(st.Body, held.clone())
	case *ast.RangeStmt:
		lc.checkExpr(st.X, held)
		lc.block(st.Body, held.clone())
	case *ast.SwitchStmt:
		if st.Init != nil {
			lc.stmt(st.Init, held)
		}
		if st.Tag != nil {
			lc.checkExpr(st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				h := held.clone()
				for _, s2 := range cc.Body {
					lc.stmt(s2, h)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				h := held.clone()
				for _, s2 := range cc.Body {
					lc.stmt(s2, h)
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				h := held.clone()
				for _, s2 := range cc.Body {
					lc.stmt(s2, h)
				}
			}
		}
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			lc.checkExpr(rhs, held)
		}
	case *ast.ReturnStmt:
		for _, res := range st.Results {
			lc.checkExpr(res, held)
		}
	case *ast.LabeledStmt:
		lc.stmt(st.Stmt, held)
	default:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				lc.checkExpr(e, held)
				return false
			}
			return true
		})
	}
}

// lockOp updates the held set when call is a Lock/Unlock on a mutex,
// reporting whether it consumed the call. deferred marks unlocks
// registered with defer: the lock stays held for the rest of the
// function body.
func (lc *lockChecker) lockOp(call *ast.CallExpr, held *heldSet, deferred bool) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recvT := lc.pass.TypesInfo.TypeOf(sel.X)
	if recvT == nil || !isMutex(recvT) {
		return false
	}
	key := exprString(sel.X)
	switch sel.Sel.Name {
	case "Lock", "RLock":
		if lc.exempt(sel.X) {
			return true
		}
		held.locks[key] = call.Pos()
		return true
	case "Unlock", "RUnlock":
		if !deferred {
			delete(held.locks, key)
		}
		// A deferred unlock keeps the lock held through the rest of the
		// body, which is exactly what the held set already records.
		return true
	case "TryLock", "TryRLock":
		// The result decides whether the lock is held; treat as held in
		// the remainder conservatively only when statement-level
		// handling sees it — skip for simplicity.
		return true
	}
	return false
}

// exempt reports whether the lock receiver is a field marked
// krlint:iolock.
func (lc *lockChecker) exempt(recv ast.Expr) bool {
	sel, ok := ast.Unparen(recv).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := lc.pass.TypesInfo.Selections[sel]
	if !ok {
		return false
	}
	return lc.ioLocks[selection.Obj()]
}

// checkExpr reports blocking calls inside e while locks are held, and
// recurses into function literals passed as call arguments (sync.Once
// bodies, sort.Slice comparators run synchronously under the caller's
// locks).
func (lc *lockChecker) checkExpr(e ast.Expr, held *heldSet) {
	if e == nil || len(held.locks) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal that is merely stored or returned runs later,
			// possibly without these locks. Literals that execute now —
			// call arguments (sync.Once.Do bodies, sort comparators)
			// and immediately-invoked functions — are walked from their
			// CallExpr below.
			return false
		case *ast.CallExpr:
			if name, blocking := lc.blockingCall(n); blocking {
				lc.pass.Reportf(n.Pos(), "blocking call to %s while %s is held (locked at %s)",
					name, heldNames(held), lc.pass.Fset.Position(earliest(held)).String())
			}
			if fl, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				lc.block(fl.Body, held.clone())
			}
			for _, arg := range n.Args {
				if fl, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					lc.block(fl.Body, held.clone())
				}
			}
		}
		return true
	})
}

// blockingCall classifies one call expression.
func (lc *lockChecker) blockingCall(call *ast.CallExpr) (string, bool) {
	f := calleeFunc(lc.pass.TypesInfo, call)
	if f != nil {
		key := funcKey(f)
		if blockingFuncs[key] {
			return key, true
		}
		if fprintFuncs[key] && len(call.Args) > 0 {
			t := lc.pass.TypesInfo.TypeOf(call.Args[0])
			if t != nil {
				if pkgPath, name, ok := namedName(t); ok && memoryWriters[pkgPath+"."+name] {
					return "", false
				}
			}
			return key, true
		}
		// Interface-dispatched I/O: the receiver's static type is an
		// interface and the method name is an I/O verb.
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			if types.IsInterface(sig.Recv().Type()) && blockingIfaceMethods[f.Name()] {
				return funcIfaceKey(lc.pass, call, f), true
			}
		}
	}
	return "", false
}

// funcIfaceKey renders "w.Write" style names for interface calls.
func funcIfaceKey(pass *Pass, call *ast.CallExpr, f *types.Func) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return exprString(sel.X) + "." + f.Name()
	}
	return f.Name()
}

// heldNames lists the held lock expressions for the message.
func heldNames(h *heldSet) string {
	names := make([]string, 0, len(h.locks))
	for k := range h.locks {
		names = append(names, k)
	}
	if len(names) == 1 {
		return names[0]
	}
	sortStrings(names)
	return strings.Join(names, ", ")
}

func earliest(h *heldSet) token.Pos {
	min := token.NoPos
	for _, p := range h.locks {
		if min == token.NoPos || p < min {
			min = p
		}
	}
	return min
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
