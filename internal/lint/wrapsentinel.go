package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// WrapSentinel flags sentinel errors passed to fmt.Errorf with a verb
// other than %w. The snapshot and batch error contracts (PR 4/5) are
// built on errors.Is: callers match ErrChecksum, ErrTruncated,
// ErrMagic through arbitrarily deep wrapping. An Errorf("...: %v",
// ErrChecksum) flattens the sentinel to text and silently breaks every
// errors.Is test downstream — the decode still fails, but the caller
// can no longer tell corruption from version skew. The analyzer aligns
// the format verbs with the arguments and reports any package-level
// `Err*` variable (or error-typed constant expression naming one)
// formatted with %v, %s, %q or %x instead of %w.
var WrapSentinel = &Analyzer{
	Name: "wrapsentinel",
	Doc:  "sentinel errors (Err* package vars) passed to fmt.Errorf must use %w, not %v/%s",
	Run:  runWrapSentinel,
}

func runWrapSentinel(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(pass.TypesInfo, call)
			if f == nil || funcKey(f) != "fmt.Errorf" || len(call.Args) < 2 {
				return true
			}
			format, ok := constString(pass.TypesInfo, call.Args[0])
			if !ok {
				return true
			}
			verbs := formatVerbs(format)
			args := call.Args[1:]
			for i, verb := range verbs {
				if i >= len(args) {
					break
				}
				if verb == 'w' {
					continue
				}
				if obj := sentinelArg(pass.TypesInfo, args[i]); obj != nil {
					pass.Reportf(args[i].Pos(), "sentinel %s formatted with %%%c; use %%w so errors.Is keeps matching through the wrap",
						obj.Name(), verb)
				}
			}
			return true
		})
	}
	return nil
}

// constString evaluates e as a constant string.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatVerbs extracts the verb characters of a fmt format string in
// argument order. A '*' width or precision consumes an argument of its
// own and appears as '*' in the result.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		// flags, width, precision — '*' consumes an argument.
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if strings.IndexByte("+-# 0123456789.[]", c) >= 0 {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
		}
	}
	return verbs
}

// sentinelArg reports the package-level Err* error variable e denotes,
// or nil.
func sentinelArg(info *types.Info, e ast.Expr) types.Object {
	var id *ast.Ident
	switch ex := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = ex
	case *ast.SelectorExpr:
		id = ex.Sel
	default:
		return nil
	}
	obj := info.Uses[id]
	v, ok := obj.(*types.Var)
	if !ok || v.Parent() == nil || v.Parent().Parent() != types.Universe {
		// Package-level variables live in the package scope, whose
		// parent is the universe scope.
		return nil
	}
	if !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	if !types.Implements(v.Type(), errorType) && !types.Implements(types.NewPointer(v.Type()), errorType) {
		return nil
	}
	return v
}
