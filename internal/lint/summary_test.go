package lint

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// loadFixturePkgs loads one fixture package plus its transitively
// loaded local imports, returning the package and the full closure.
func loadFixturePkgs(t *testing.T, rel string) (*Package, []*Package) {
	t.Helper()
	loader, err := NewLoader(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(rel)
	if err != nil {
		t.Fatalf("load %s: %v", rel, err)
	}
	return pkg, loader.LoadedLocal()
}

func summaryOf(t *testing.T, sums *Summaries, key string) *Summary {
	t.Helper()
	s := sums.Of(key)
	if s == nil {
		t.Fatalf("no summary for %s (have %v)", key, sums.Keys())
	}
	return s
}

func TestSummaryEffects(t *testing.T) {
	_, all := loadFixturePkgs(t, "interproc")
	sums := BuildSummaries(all)

	// May-block propagates from stdlib leaves through the call graph,
	// across packages, and around a mutual-recursion SCC.
	for _, key := range []string{
		"interproc.writeFile",
		"(interproc.server).SaveSnapshot",
		"interproc.pingWrite",
		"interproc.pongWrite",
		"interproc/dep.Flush",
	} {
		if s := summaryOf(t, sums, key); !s.MayBlock {
			t.Errorf("%s: MayBlock = false, want true", key)
		}
	}
	save := summaryOf(t, sums, "(interproc.server).SaveSnapshot")
	if want := []string{"interproc.writeFile", "os.WriteFile"}; !reflect.DeepEqual(save.BlockVia, want) {
		t.Errorf("SaveSnapshot BlockVia = %v, want %v", save.BlockVia, want)
	}

	// Pure functions and param-sensitive callers stay un-widened.
	for _, key := range []string{
		"(interproc.server).size",
		"interproc.runEach",
		"interproc.newCounter",
		"interproc/dep.Len",
	} {
		if s := summaryOf(t, sums, key); s.MayBlock {
			t.Errorf("%s: MayBlock = true (via %v), want false", key, s.BlockVia)
		}
	}
	if s := summaryOf(t, sums, "interproc.runEach"); !reflect.DeepEqual(s.BlockParams, []int{1}) {
		t.Errorf("runEach BlockParams = %v, want [1]", s.BlockParams)
	}
	if s := summaryOf(t, sums, "interproc.newCounter"); !reflect.DeepEqual(s.CleanFuncResults, []int{0}) {
		t.Errorf("newCounter CleanFuncResults = %v, want [0]", s.CleanFuncResults)
	}

	// Lock and unlock helpers summarize their effect on the caller.
	const muKey = "interproc.server.mu"
	if s := summaryOf(t, sums, "(interproc.server).lock"); s.HeldOnExit[muKey] == nil {
		t.Errorf("lock HeldOnExit missing %s: %v", muKey, s.HeldOnExit)
	}
	if s := summaryOf(t, sums, "(interproc.server).unlock"); s.ReleasedOnEntry[muKey] == 0 {
		t.Errorf("unlock ReleasedOnEntry missing %s: %v", muKey, s.ReleasedOnEntry)
	}
	// handle locks and releases symmetrically: nothing held on exit.
	if s := summaryOf(t, sums, "(interproc.server).handle"); len(s.HeldOnExit) != 0 {
		t.Errorf("handle HeldOnExit = %v, want empty", s.HeldOnExit)
	}
}

func TestSummaryMapOrdered(t *testing.T) {
	_, all := loadFixturePkgs(t, "maporder")
	sums := BuildSummaries(all)
	for key, want := range map[string][]int{
		"maporder.unsortedKeys": {0},
		"maporder.namedResult":  {0},
		"maporder.sortedKeys":   nil,
		"maporder.countValues":  nil,
		"maporder.invert":       nil,
	} {
		got := summaryOf(t, sums, key).MapOrderedResults
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s MapOrderedResults = %v, want %v", key, got, want)
		}
	}
}

func TestSummaryFormatDeterministic(t *testing.T) {
	render := func() string {
		pkg, all := loadFixturePkgs(t, "interproc")
		sums := BuildSummaries(all)
		var b strings.Builder
		for _, key := range sums.Keys() {
			b.WriteString(sums.Of(key).Format(pkg.Fset))
		}
		return b.String()
	}
	first, second := render(), render()
	if first != second {
		t.Fatal("Format output differs between identical builds")
	}
	if !strings.Contains(first, "blocks if parameter 1 blocks") {
		t.Errorf("rendered summaries missing runEach's block-params line:\n%s", first)
	}
}

// TestTwoHopNeedsSummaries is the regression pin for the
// interprocedural rebuild: the SaveSnapshot-shape bug — blocking leaf
// two calls below a held lock — is invisible to per-function analysis
// (an empty summary table, the old world where only hand-listed
// functions counted as blocking) and caught with real summaries.
func TestTwoHopNeedsSummaries(t *testing.T) {
	pkg, all := loadFixturePkgs(t, "interproc")

	run := func(sums *Summaries) []Diagnostic {
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:  LockHeld,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Summaries: sums,
			pkg:       pkg,
			diags:     &diags,
		}
		if err := LockHeld.Run(pass); err != nil {
			t.Fatalf("lockheld: %v", err)
		}
		return diags
	}
	const twoHop = "blocking call to (interproc.server).SaveSnapshot"

	for _, d := range run(BuildSummaries(nil)) {
		if strings.Contains(d.Message, twoHop) {
			t.Fatalf("per-function analysis unexpectedly found the two-hop bug: %s", d)
		}
	}
	var hits []Diagnostic
	for _, d := range run(BuildSummaries(all)) {
		if strings.Contains(d.Message, twoHop) {
			hits = append(hits, d)
		}
	}
	if len(hits) != 1 {
		t.Fatalf("summary-backed analysis found %d two-hop findings, want 1:\n%s", len(hits), diagStrings(hits))
	}
	if !strings.Contains(hits[0].Message, "blocks via (interproc.server).SaveSnapshot -> interproc.writeFile -> os.WriteFile") {
		t.Errorf("two-hop finding lacks the witness chain: %s", hits[0].Message)
	}
}
