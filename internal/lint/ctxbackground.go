package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxBackground flags context.Background() and context.TODO() in
// library code that already has a caller's context (or a Limits, which
// carries one) in scope. Minting a fresh root context there severs the
// caller's deadline and cancellation — a request that should have been
// abandoned keeps burning a search budget, the bug class PR 4's
// request-deadline plumbing exists to prevent. Detached-but-valued
// work (a shutdown drain that must outlive the cancelled request
// context) should derive with context.WithoutCancel(ctx) instead, so
// the provenance stays explicit. Test files are exempt: tests are the
// legitimate root of their own context trees.
var CtxBackground = &Analyzer{
	Name: "ctxbackground",
	Doc:  "no context.Background()/TODO() where a caller context or Limits is in scope (derive from it)",
	Run:  runCtxBackground,
}

func runCtxBackground(pass *Pass) error {
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxFunc(pass, fd.Body, ctxParams(pass, fd.Type))
		}
	}
	return nil
}

// ctxParams reports whether the function signature binds a
// context.Context or a Limits-typed parameter.
func ctxParams(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, f := range ft.Params.List {
		t := pass.TypesInfo.TypeOf(f.Type)
		if t == nil {
			continue
		}
		if isNamed(t, "context", "Context") {
			return true
		}
		// Limits carries the caller's deadline/budget; any type of that
		// name counts so engine and fixture packages alike are covered.
		if _, name, ok := namedName(t); ok && name == "Limits" {
			return true
		}
		if hasCtxField(t) {
			return true
		}
	}
	return false
}

// hasCtxField reports whether a struct parameter embeds a
// context.Context field (an options struct that carries the caller's
// context).
func hasCtxField(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isNamed(st.Field(i).Type(), "context", "Context") {
			return true
		}
	}
	return false
}

// checkCtxFunc walks one function body. inScope carries whether the
// enclosing declaration chain binds a caller context; closures inherit
// it (a FuncLit inside a ctx-taking function still has ctx in scope).
func checkCtxFunc(pass *Pass, body *ast.BlockStmt, inScope bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncLit:
			checkCtxFunc(pass, nn.Body, inScope || ctxParams(pass, nn.Type))
			return false
		case *ast.CallExpr:
			if !inScope {
				return true
			}
			f := calleeFunc(pass.TypesInfo, nn)
			if f == nil {
				return true
			}
			switch funcKey(f) {
			case "context.Background", "context.TODO":
				pass.Reportf(nn.Pos(), "%s() with a caller context in scope; derive from it (context.WithoutCancel(ctx) if it must outlive cancellation)", f.Name())
			}
		}
		return true
	})
}
