package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DecodeBound flags wire-decoded lengths that reach an allocation
// before any bounds check. A count read from snapshot bytes and passed
// straight to make() lets a 5-byte corrupt file demand gigabytes — the
// allocation-bomb class PR 5's decode contract closed by routing every
// count through binenc.Reader.Count (which validates against the bytes
// actually remaining). The analyzer taints integer values produced by
// decode primitives — Reader methods U8/U16/U32/U64/Uvarint and
// encoding/binary's byte-order Uint decoders — and reports a tainted
// value used as a make() size or as the bound of an append-growing
// loop without an intervening comparison. Reader.Count and any
// explicit comparison cleanse the value.
var DecodeBound = &Analyzer{
	Name: "decodebound",
	Doc:  "a length decoded from wire bytes must pass a bounds check before make/append growth",
	Run:  runDecodeBound,
}

// decodeTaintMethods are Reader decode primitives whose results carry
// attacker-controlled magnitudes. Recognition is structural (method
// name on a type named Reader) so the check covers binenc.Reader and
// test fixtures alike.
var decodeTaintMethods = map[string]bool{
	"U8": true, "U16": true, "U32": true, "U64": true, "Uvarint": true,
}

func runDecodeBound(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			db := &boundChecker{
				pass:    pass,
				tainted: map[types.Object]bool{},
			}
			db.stmts(fd.Body.List)
		}
	}
	return nil
}

type boundChecker struct {
	pass    *Pass
	tainted map[types.Object]bool
}

// stmts walks a statement list in source order, so a cleansing
// comparison only protects uses after it.
func (db *boundChecker) stmts(list []ast.Stmt) {
	for _, s := range list {
		db.stmt(s)
	}
}

func (db *boundChecker) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		db.check(st)
		for i, rhs := range st.Rhs {
			if i < len(st.Lhs) {
				db.assign(st.Lhs[i], rhs)
			}
		}
		// Multi-value form: n, err := r.Uvarint() style single-call RHS.
		if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
			if db.taintSource(st.Rhs[0]) {
				db.taint(st.Lhs[0])
			}
		}
	case *ast.ForStmt:
		if st.Init != nil {
			db.stmt(st.Init)
		}
		// A tainted loop bound that drives append growth is the flagged
		// pattern; the condition's own comparison does not cleanse it
		// for this loop (that comparison IS the unchecked use).
		if st.Cond != nil {
			if obj, name := db.taintedOperand(st.Cond); obj != nil && bodyAppends(st.Body) {
				db.pass.Reportf(st.Cond.Pos(), "loop bound %s comes from wire bytes without a bounds check and the loop grows a slice; validate it (e.g. Reader.Count) first", name)
			}
			db.cleanseComparisons(st.Cond)
		}
		db.stmts(st.Body.List)
	case *ast.IfStmt:
		if st.Init != nil {
			db.stmt(st.Init)
		}
		db.check(&ast.ExprStmt{X: st.Cond})
		db.cleanseComparisons(st.Cond)
		db.stmts(st.Body.List)
		if st.Else != nil {
			db.stmt(st.Else)
		}
	case *ast.BlockStmt:
		db.stmts(st.List)
	case *ast.RangeStmt:
		db.check(&ast.ExprStmt{X: st.X})
		db.stmts(st.Body.List)
	case *ast.SwitchStmt:
		if st.Init != nil {
			db.stmt(st.Init)
		}
		if st.Tag != nil {
			db.cleanseComparisons(st.Tag)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				db.stmts(cc.Body)
			}
		}
	default:
		db.check(s)
	}
}

// assign propagates taint through one lhs = rhs pair.
func (db *boundChecker) assign(lhs, rhs ast.Expr) {
	if db.taintSource(rhs) || db.taintedExpr(rhs) != nil {
		db.taint(lhs)
		return
	}
	// Reassignment from a clean source cleanses.
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if obj := db.ident(id); obj != nil {
			delete(db.tainted, obj)
		}
	}
}

func (db *boundChecker) taint(lhs ast.Expr) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
		if obj := db.ident(id); obj != nil {
			db.tainted[obj] = true
		}
	}
}

func (db *boundChecker) ident(id *ast.Ident) types.Object {
	if obj := db.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return db.pass.TypesInfo.Uses[id]
}

// taintSource reports whether e is a direct decode-primitive call.
func (db *boundChecker) taintSource(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		// A conversion like int(r.U32()) keeps the taint.
		return false
	}
	// Conversions: int(r.U32()).
	if len(call.Args) == 1 {
		if _, isConv := db.pass.TypesInfo.Types[call.Fun]; isConv && db.pass.TypesInfo.Types[call.Fun].IsType() {
			return db.taintSource(call.Args[0])
		}
	}
	f := calleeFunc(db.pass.TypesInfo, call)
	if f == nil {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, recvName, ok := namedName(sig.Recv().Type())
	if !ok {
		return false
	}
	if recvName == "Reader" && decodeTaintMethods[f.Name()] {
		return true
	}
	// encoding/binary.LittleEndian.Uint32 and friends.
	if f.Pkg() != nil && f.Pkg().Path() == "encoding/binary" && strings.HasPrefix(f.Name(), "Uint") {
		return true
	}
	return false
}

// taintedExpr returns the object of a tainted identifier appearing in
// e (outside nested function literals), or nil.
func (db *boundChecker) taintedExpr(e ast.Expr) types.Object {
	var found types.Object
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := db.ident(id); obj != nil && db.tainted[obj] {
				found = obj
			}
		}
		return true
	})
	return found
}

// taintedOperand finds a tainted identifier in a loop condition.
func (db *boundChecker) taintedOperand(cond ast.Expr) (types.Object, string) {
	var obj types.Object
	var name string
	ast.Inspect(cond, func(n ast.Node) bool {
		if obj != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if o := db.ident(id); o != nil && db.tainted[o] {
				obj, name = o, id.Name
			}
		}
		return true
	})
	return obj, name
}

// cleanseComparisons clears taint from identifiers that participate in
// a comparison: once code has compared the value against anything, it
// has had its chance to reject it, and the analyzer trusts the
// surrounding logic.
func (db *boundChecker) cleanseComparisons(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
			for _, side := range []ast.Expr{be.X, be.Y} {
				ast.Inspect(side, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if obj := db.ident(id); obj != nil {
							delete(db.tainted, obj)
						}
					}
					return true
				})
			}
		}
		return true
	})
}

// check scans one statement for tainted allocation sizes.
func (db *boundChecker) check(s ast.Stmt) {
	ast.Inspect(s, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "make" {
			return true
		}
		if _, isBuiltin := db.pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		// make(T, len) and make(T, len, cap): args after the type.
		for _, arg := range call.Args[1:] {
			if db.taintSource(arg) {
				db.pass.Reportf(arg.Pos(), "make size comes straight from wire bytes without a bounds check; validate it (e.g. Reader.Count) first")
				continue
			}
			if obj := db.taintedExpr(arg); obj != nil {
				db.pass.Reportf(arg.Pos(), "make size %s comes from wire bytes without a bounds check; validate it (e.g. Reader.Count) first", obj.Name())
			}
		}
		return true
	})
}

// bodyAppends reports whether the loop body grows a slice with append.
func bodyAppends(body *ast.BlockStmt) bool {
	grows := false
	ast.Inspect(body, func(n ast.Node) bool {
		if grows {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			grows = true
			return false
		}
		return true
	})
	return grows
}
