// Package ctxbackground exercises the ctxbackground analyzer: no fresh
// root contexts where a caller's context (or Limits) is in scope.
package ctxbackground

import (
	"context"
	"time"
)

// Limits mirrors the engine's search-budget struct: having one in
// scope means the caller's budget applies.
type Limits struct {
	MaxNodes int
}

// Options carries a caller context in a field.
type Options struct {
	Ctx context.Context
}

// severs is the flagged shape: the caller's deadline is dropped.
func severs(ctx context.Context) error {
	c, cancel := context.WithTimeout(context.Background(), time.Second) // want `Background\(\) with a caller context in scope`
	defer cancel()
	return work(c)
}

// todoSevers: TODO is the same bug with a different name.
func todoSevers(ctx context.Context, n int) error {
	return work(context.TODO()) // want `TODO\(\) with a caller context in scope`
}

// limitsSevers: a Limits parameter means a caller budget exists.
func limitsSevers(lim Limits) error {
	return work(context.Background()) // want `Background\(\) with a caller context in scope`
}

// optsSevers: a context field inside an options struct counts.
func optsSevers(opts Options) error {
	return work(context.Background()) // want `Background\(\) with a caller context in scope`
}

// closureSevers: closures inherit the enclosing function's context.
func closureSevers(ctx context.Context) func() error {
	return func() error {
		return work(context.Background()) // want `Background\(\) with a caller context in scope`
	}
}

// rootIsFine: no caller context in scope — main(), tests, daemons
// legitimately mint roots.
func rootIsFine() error {
	return work(context.Background())
}

// derives is the fixed shape: detachment stays explicit.
func derives(ctx context.Context) error {
	c, cancel := context.WithTimeout(context.WithoutCancel(ctx), time.Second)
	defer cancel()
	return work(c)
}

// suppressed demonstrates the directive escape.
func suppressed(ctx context.Context) error {
	//krlint:ignore ctxbackground deliberate: detached telemetry flush
	return work(context.Background())
}

func work(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}
