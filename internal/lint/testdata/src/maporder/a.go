// Package maporder exercises map-iteration-order taint: emitting
// inside a map range, slices accumulated from one reaching ordered
// sinks, cleansing by sort, and the interprocedural MapOrderedResults
// bit that taints callers of a key-leaking function.
package maporder

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// emitDirect streams key=value lines straight out of map order.
func emitDirect(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `call to fmt\.Fprintf inside range over m: map iteration order reaches ordered output \(sort keys first\)`
	}
}

// builderEmit writes into a strings.Builder — in memory, but still an
// ordered stream.
func builderEmit(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `call to b\.WriteString inside range over m: map iteration order reaches ordered output`
	}
	return b.String()
}

// sortedKeys is the canonical clean shape: accumulate, sort, return.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// unsortedKeys leaks map order through its result: no local finding,
// but the summary marks result 0 map-ordered for every caller.
func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// joinUnsorted hands the tainted slice to an ordered consumer.
func joinUnsorted(m map[string]int) string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return strings.Join(keys, ",") // want `keys accumulates range over m and reaches strings\.Join unsorted: map iteration order leaks into ordered output`
}

// joinSorted cleanses before consuming.
func joinSorted(m map[string]int) string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

// rangeOrderedCall ranges directly over a callee's map-ordered result.
func rangeOrderedCall(w io.Writer, m map[string]int) {
	for _, k := range unsortedKeys(m) {
		fmt.Fprintln(w, k) // want `call to fmt\.Fprintln inside range over unsortedKeys\(m\): map iteration order reaches ordered output`
	}
}

// assignedOrderedCall: the taint travels through the assignment and
// the sort cancels it before the range.
func assignedOrderedCall(w io.Writer, m map[string]int) {
	keys := unsortedKeys(m)
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintln(w, k)
	}
}

// emitTaintedVar: assigned from a map-ordered call, emitted whole.
func emitTaintedVar(w io.Writer, m map[string]int) {
	keys := unsortedKeys(m)
	fmt.Fprintln(w, keys) // want `keys accumulates range over unsortedKeys\(m\) and reaches fmt\.Fprintln unsorted`
}

// namedResult returns a tainted named result bare: no local finding,
// summary-only (callers see MapOrderedResults = [0]).
func namedResult(m map[string]int) (keys []string) {
	for k := range m {
		keys = append(keys, k)
	}
	return
}

// countValues only aggregates — order-insensitive, clean.
func countValues(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// invert builds another map — order-insensitive, clean.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
