// Package decodebound exercises the decodebound analyzer: wire-decoded
// lengths must pass a bounds check before reaching an allocation.
package decodebound

import "encoding/binary"

// Reader mirrors the binenc.Reader shape: U-prefixed decode primitives
// over a byte slice, plus the Count bounds-check primitive.
type Reader struct {
	buf []byte
	off int
}

func (r *Reader) U8() uint8   { b := r.buf[r.off]; r.off++; return b }
func (r *Reader) U32() uint32 { v := binary.LittleEndian.Uint32(r.buf[r.off:]); r.off += 4; return v }
func (r *Reader) U64() uint64 { v := binary.LittleEndian.Uint64(r.buf[r.off:]); r.off += 8; return v }

// Remaining reports the bytes left.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Count validates a decoded count against the bytes remaining — the
// canonical cleanse.
func (r *Reader) Count(elem int) int {
	n := int(r.U32())
	if n < 0 || n > r.Remaining()/elem {
		return -1
	}
	return n
}

// allocRaw is the allocation bomb: a 4-byte prefix demands an
// arbitrary allocation.
func allocRaw(r *Reader) []uint32 {
	n := int(r.U32())
	out := make([]uint32, n) // want `make size n comes from wire bytes without a bounds check`
	for i := range out {
		out[i] = r.U32()
	}
	return out
}

// allocInline: the decode feeding make directly.
func allocInline(r *Reader) []byte {
	return make([]byte, r.U64()) // want `make size comes straight from wire bytes without a bounds check`
}

// appendLoop: a tainted loop bound growing a slice is the same bomb in
// amortised form.
func appendLoop(r *Reader) []uint32 {
	n := r.U32()
	var out []uint32
	for i := uint32(0); i < n; i++ { // want `loop bound n comes from wire bytes without a bounds check and the loop grows a slice`
		out = append(out, r.U32())
	}
	return out
}

// allocChecked is the contract shape: compare before allocating.
func allocChecked(r *Reader) []uint32 {
	n := int(r.U32())
	if n < 0 || n > r.Remaining()/4 {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = r.U32()
	}
	return out
}

// allocCounted: Reader.Count cleanses by construction.
func allocCounted(r *Reader) []uint32 {
	n := r.Count(4)
	if n < 0 {
		return nil
	}
	return make([]uint32, n)
}

// loopChecked: a bounds-checked count may drive an append loop.
func loopChecked(r *Reader) []uint32 {
	n := r.U32()
	if int(n) > r.Remaining()/4 {
		return nil
	}
	var out []uint32
	for i := uint32(0); i < n; i++ {
		out = append(out, r.U32())
	}
	return out
}

// binaryDirect: encoding/binary byte-order decoders taint too.
func binaryDirect(b []byte) []byte {
	n := binary.BigEndian.Uint32(b)
	return make([]byte, n) // want `make size n comes from wire bytes without a bounds check`
}

// constSize: sizes not derived from the wire are fine.
func constSize(r *Reader) []byte {
	out := make([]byte, 16)
	out[0] = r.U8()
	return out
}
