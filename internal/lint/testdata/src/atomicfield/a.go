// Package atomicfield exercises the atomicfield analyzer: fields
// reached through sync/atomic anywhere must never be touched plainly.
package atomicfield

import (
	"sync"
	"sync/atomic"
)

type counters struct {
	hits  int64        // accessed via atomic.AddInt64 AND plainly: every plain site flagged
	calls int64        // plain-only: fine
	typed atomic.Int64 // typed atomic: immune by construction
	mu    sync.Mutex
}

func (c *counters) hit() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) snapshot() int64 {
	return c.hits // want `plain access to c\.hits, which is accessed atomically \(sync/atomic\.AddInt64\) elsewhere`
}

func (c *counters) reset() {
	c.mu.Lock()
	c.hits = 0 // want `plain access to c\.hits`
	c.mu.Unlock()
}

func (c *counters) plainOnly() int64 {
	c.calls++
	return c.calls
}

func (c *counters) typedOnly() int64 {
	c.typed.Add(1)
	return c.typed.Load()
}

// loadOK: sync/atomic accesses themselves are the sanctioned sites.
func (c *counters) loadOK() int64 {
	return atomic.LoadInt64(&c.hits)
}

// swapOK: any sync/atomic function sanctions its &field argument.
func (c *counters) swapOK() int64 {
	return atomic.SwapInt64(&c.hits, 0)
}

// suppressedRead demonstrates the directive escape for a documented
// single-goroutine init path.
func (c *counters) suppressedRead() int64 {
	//krlint:ignore atomicfield read-only before the engine is published
	return c.hits
}
