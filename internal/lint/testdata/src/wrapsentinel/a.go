// Package wrapsentinel exercises the wrapsentinel analyzer: sentinel
// errors must be wrapped with %w so errors.Is keeps matching.
package wrapsentinel

import (
	"errors"
	"fmt"
)

var (
	ErrChecksum  = errors.New("checksum mismatch")
	ErrTruncated = errors.New("truncated input")
	errInternal  = errors.New("internal") // lower-case: not part of the Is contract
)

// flattens is the bug: %v renders the sentinel to text and breaks
// errors.Is downstream.
func flattens(section string) error {
	return fmt.Errorf("section %s: %v", section, ErrChecksum) // want `sentinel ErrChecksum formatted with %v; use %w`
}

// flattensS: %s is the same flattening.
func flattensS() error {
	return fmt.Errorf("decode: %s", ErrTruncated) // want `sentinel ErrTruncated formatted with %s; use %w`
}

// wraps is the contract shape.
func wraps(section string) error {
	return fmt.Errorf("section %s: %w", section, ErrChecksum)
}

// multiVerb: alignment must track argument positions past earlier verbs.
func multiVerb(off int64) error {
	return fmt.Errorf("offset %d (%s): %v", off, "hdr", ErrTruncated) // want `sentinel ErrTruncated formatted with %v; use %w`
}

// lowerCase: unexported helpers are not sentinels callers match on.
func lowerCase() error {
	return fmt.Errorf("op failed: %v", errInternal)
}

// notAnError: an Err-prefixed non-error value is not a sentinel.
var ErrCount = 3

func notAnError() error {
	return fmt.Errorf("tries: %d", ErrCount)
}

// dynamic: a freshly built error wrapped with %w is fine; only
// sentinels demand it.
func dynamic(err error) error {
	return fmt.Errorf("load: %v", err)
}

// suppressed demonstrates the directive escape for log-only messages.
func suppressed() string {
	//krlint:ignore wrapsentinel log text, never matched with errors.Is
	return fmt.Errorf("warn: %v", ErrChecksum).Error()
}
