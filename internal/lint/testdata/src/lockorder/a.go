// Package lockorder exercises the module-wide acquired-before graph:
// an ABBA cycle taken directly, one that only exists through helper
// calls, double acquisition of a non-reentrant mutex (direct and
// transitive through a callee), and the instance-ordered negative the
// canonical-key graph must never flag.
package lockorder

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
)

// abba1 and abba2 take the package locks in opposite orders — the
// classic deadlock pair, invisible to any per-function check. The
// cycle anchors at the smaller key's outgoing edge: muA -> muB here.
func abba1() {
	muA.Lock()
	muB.Lock() // want `lock order cycle \(potential deadlock\): lockorder\.muA -> lockorder\.muB -> lockorder\.muA`
	muB.Unlock()
	muA.Unlock()
}

func abba2() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

var (
	muC sync.Mutex
	muD sync.Mutex
)

// The C/D cycle exists only interprocedurally: each side takes its
// second lock inside a helper, so both edges carry via chains.
func cd1() {
	muC.Lock()
	defer muC.Unlock()
	lockD() // want `lock order cycle \(potential deadlock\): lockorder\.muC -> lockorder\.muD -> lockorder\.muC.* via lockorder\.lockD`
}

func lockD() {
	muD.Lock()
	muD.Unlock()
}

func cd2() {
	muD.Lock()
	defer muD.Unlock()
	lockC()
}

func lockC() {
	muC.Lock()
	muC.Unlock()
}

type box struct {
	mu sync.Mutex
	n  int
}

// double re-locks its own mutex: a self-deadlock, sync.Mutex is not
// reentrant.
func (b *box) double() {
	b.mu.Lock()
	b.mu.Lock() // want `b\.mu acquired again while already held \(first acquisition at .*\)`
	b.n++
	b.mu.Unlock()
	b.mu.Unlock()
}

// outer holds b.mu and calls a method that re-locks it — the
// transitive self-deadlock, visible only through lockInner's summary
// and only because the receiver is demonstrably the same instance.
func (b *box) outer() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lockInner() // want `b\.mu acquired again while already held \(first acquisition at .*\) via \(lockorder\.box\)\.lockInner`
}

func (b *box) lockInner() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// handOverHand orders two instances of one type. Both sides map to the
// same canonical key, so this is an instance pair — never a cycle, and
// never a reacquire (x and y are distinct values).
func handOverHand(x, y *box) {
	x.mu.Lock()
	y.mu.Lock()
	x.mu.Unlock()
	y.mu.Unlock()
}
