// Package lockheld exercises the lockheld analyzer: blocking calls
// under sync.Mutex/RWMutex regions are flagged, I/O after unlock and
// under krlint:iolock-marked locks is not.
package lockheld

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

type engine struct {
	mu    sync.RWMutex
	state []byte
	file  *os.File
	out   io.Writer
}

// saveUnderLock is the bug class: writer I/O while the serving lock is
// held stalls every reader behind the write.
func (e *engine) saveUnderLock(path string) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return os.WriteFile(path, e.state, 0o644) // want `blocking call to os.WriteFile while e\.mu is held`
}

// syncUnderLock: fsync on a concrete *os.File under the lock.
func (e *engine) syncUnderLock() error {
	e.mu.Lock()
	err := e.file.Sync() // want `blocking call to \(os\.File\)\.Sync while e\.mu is held`
	e.mu.Unlock()
	return err
}

// ifaceWriteUnderLock: interface-dispatched Write must be assumed to
// reach a file or socket.
func (e *engine) ifaceWriteUnderLock() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.out.Write(e.state) // want `blocking call to e\.out\.Write while e\.mu is held`
}

// sleepUnderLock: time.Sleep blocks like I/O does.
func (e *engine) sleepUnderLock() {
	e.mu.Lock()
	time.Sleep(time.Millisecond) // want `blocking call to time\.Sleep while e\.mu is held`
	e.mu.Unlock()
}

// fprintfIface: fmt.Fprintf to an interface-typed writer blocks;
// writing to an in-memory strings.Builder does not.
func (e *engine) fprintfIface(w io.Writer) {
	e.mu.Lock()
	defer e.mu.Unlock()
	fmt.Fprintf(w, "n=%d", len(e.state)) // want `blocking call to fmt\.Fprintf while e\.mu is held`
}

// closureUnderLock: a function literal passed as a call argument runs
// synchronously under the caller's locks.
func (e *engine) closureUnderLock(once *sync.Once) {
	e.mu.Lock()
	defer e.mu.Unlock()
	once.Do(func() {
		_ = os.Mkdir("x", 0o755) // want `blocking call to os\.Mkdir while e\.mu is held`
	})
}

// saveOutsideLock is the fixed shape: capture under the lock, write
// after releasing it.
func (e *engine) saveOutsideLock(path string) error {
	e.mu.RLock()
	buf := append([]byte(nil), e.state...)
	e.mu.RUnlock()
	return os.WriteFile(path, buf, 0o644)
}

// goroutineEscapes: a goroutine body does not run under this frame's
// locks.
func (e *engine) goroutineEscapes(path string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	go func() {
		_ = os.WriteFile(path, nil, 0o644)
	}()
}

// builderIsMemory: fmt.Fprintf into strings.Builder never blocks.
func (e *engine) builderIsMemory(b *strings.Builder) string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	fmt.Fprintf(b, "n=%d", len(e.state))
	return b.String()
}

// journal models a lock whose documented contract IS serialising I/O.
type journal struct {
	// mu serialises appends; holding it across the write+fsync is the
	// point. krlint:iolock
	mu sync.Mutex
	f  *os.File
}

// append is exempt: j.mu carries the iolock marker.
func (j *journal) append(rec []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(rec); err != nil {
		return err
	}
	return j.f.Sync()
}

// suppressed demonstrates the line directive escape.
func (e *engine) suppressed() {
	e.mu.Lock()
	defer e.mu.Unlock()
	//krlint:ignore lockheld deliberate: measured, sub-microsecond tmpfs write
	_ = os.Remove("scratch")
}
