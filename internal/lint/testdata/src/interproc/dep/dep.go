// Package dep is a module-local leaf imported by the interproc
// fixture: its blocking behavior must cross the package boundary
// through the summary table, never through a hand-kept list.
package dep

import "os"

// Flush rewrites the file at path — blocking, one hop from the leaf.
func Flush(path string, b []byte) error {
	return os.WriteFile(path, b, 0o600)
}

// Len is pure; callers under a lock must stay clean.
func Len(b []byte) int { return len(b) }
