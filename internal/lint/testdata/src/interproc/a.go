// Package interproc exercises the summary layer's interprocedural
// reasoning: blocking leaves discovered through the call graph (two
// hops deep, mutually recursive, or in another package), lock helpers
// that acquire or release on their caller's behalf, and the precision
// cases — caller-supplied funcs, local closures, method values,
// generics, context.CancelFunc — that must not be widened to blocking.
package interproc

import (
	"context"
	"os"
	"sync"

	"interproc/dep"
)

type server struct {
	mu    sync.Mutex
	state []byte
}

// SaveSnapshot persists state. It blocks, but only through writeFile —
// nothing in this function names the os package.
func (s *server) SaveSnapshot(path string) error {
	return writeFile(path, s.state)
}

func writeFile(path string, b []byte) error {
	return os.WriteFile(path, b, 0o600)
}

// handle is the two-hop SaveSnapshot shape: the blocking leaf sits two
// calls away, so only the summary fixpoint can see it from here.
func (s *server) handle(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.SaveSnapshot(path) // want `blocking call to \(interproc\.server\)\.SaveSnapshot while s\.mu is held \(locked at .*\); blocks via \(interproc\.server\)\.SaveSnapshot -> interproc\.writeFile -> os\.WriteFile`
}

// pingWrite and pongWrite are mutually recursive: the SCC fixpoint must
// converge with both marked may-block from the single os.Remove leaf.
func pingWrite(path string, n int) error {
	if n == 0 {
		return os.Remove(path)
	}
	return pongWrite(path, n-1)
}

func pongWrite(path string, n int) error {
	if n == 0 {
		return nil
	}
	return pingWrite(path, n-1)
}

func (s *server) recurse(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return pongWrite(path, 3) // want `blocking call to interproc\.pongWrite while s\.mu is held \(locked at .*\); blocks via interproc\.pongWrite -> interproc\.pingWrite -> os\.Remove`
}

// crossPackage reaches the leaf through an imported package: the
// summary table spans the dependency closure.
func (s *server) crossPackage(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return dep.Flush(path, s.state) // want `blocking call to interproc/dep\.Flush while s\.mu is held \(locked at .*\); blocks via interproc/dep\.Flush -> os\.WriteFile`
}

func (s *server) crossPackagePure() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return dep.Len(s.state) // dep's summary proves it pure: clean
}

// snapshotter loses the concrete target, so the interface I/O-verb
// widening applies regardless of what implements it.
type snapshotter interface {
	SaveSnapshot(path string) error
}

func (s *server) viaInterface(sn snapshotter, path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sn.SaveSnapshot(path) // want `blocking call to sn\.SaveSnapshot while s\.mu is held`
}

// lock and unlock acquire and release on the caller's behalf: the
// walker applies their held-on-exit / released-on-entry summaries.
func (s *server) lock()   { s.mu.Lock() }
func (s *server) unlock() { s.mu.Unlock() }

func (s *server) helperPaths(flag bool) error {
	s.lock()
	if flag {
		s.unlock()
		return nil
	}
	err := os.Chmod("state", 0o600) // want `blocking call to os\.Chmod while interproc\.server\.mu is held`
	s.unlock()
	return err
}

// deferPaths releases through a deferred unlock with an early return:
// the region covers every path until the function exits.
func (s *server) deferPaths(flag bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if flag {
		return nil
	}
	return os.Truncate("state", 0) // want `blocking call to os\.Truncate while s\.mu is held`
}

// load is generic; the summary belongs to the generic declaration and
// instantiated call sites must resolve to it through the index expr.
func load[T any](path string) (T, error) {
	var zero T
	_, err := os.ReadFile(path)
	return zero, err
}

func (s *server) generic(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := load[int](path) // want `blocking call to interproc\.load while s\.mu is held`
	return err
}

// runEach blocks exactly when fn does: its summary records the
// param-sensitive verdict, resolved independently at each call site.
func runEach(n int, fn func()) {
	for i := 0; i < n; i++ {
		fn()
	}
}

func (s *server) pureCallback() int {
	count := 0
	s.mu.Lock()
	defer s.mu.Unlock()
	runEach(3, func() { count++ }) // statically pure argument: clean
	return count
}

func (s *server) blockingCallback(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	runEach(1, func() { // want `blocking call to interproc\.runEach while s\.mu is held \(locked at .*\); blocks via interproc\.runEach -> func literal -> os\.Remove`
		os.Remove(path) // want `blocking call to os\.Remove while s\.mu is held`
	})
}

// withLock hands its locked region to caller-supplied code: reported
// here — the only place the lock is visible — while the summary records
// the dependency so callers with pure arguments stay clean.
func (s *server) withLock(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn() // want `blocking call to fn \(caller-supplied func\) while s\.mu is held`
}

// localClosure calls a variable bound to exactly one literal: resolved
// by that literal's body instead of widened.
func (s *server) localClosure() int {
	total := 0
	add := func(n int) { total += n }
	s.mu.Lock()
	defer s.mu.Unlock()
	add(2) // the literal's body is pure: clean
	return total
}

// reassignedClosure cannot be resolved — two assignments — so the call
// widens to blocking, the conservative fallback.
func (s *server) reassignedClosure(path string) {
	f := func() {}
	f = func() { os.Remove(path) }
	s.mu.Lock()
	defer s.mu.Unlock()
	f() // want `blocking call to f \(function value\) while s\.mu is held`
}

// cancelUnderLock: context.CancelFunc values only signal; calling one
// under a lock is fine.
func (s *server) cancelUnderLock(ctx context.Context) context.Context {
	cctx, cancel := context.WithCancel(ctx)
	s.mu.Lock()
	defer s.mu.Unlock()
	cancel() // cancellation never performs I/O: clean
	return cctx
}

// newCounter's returned func is statically non-blocking; the summary
// records the clean result so callers may invoke it under a lock.
func newCounter() func() int {
	n := 0
	return func() int { n++; return n }
}

func (s *server) counterUnderLock() int {
	tick := newCounter()
	s.mu.Lock()
	defer s.mu.Unlock()
	return tick() // producer promises a non-blocking result: clean
}

func (s *server) size() int { return len(s.state) }

// observe and runPath call their parameters; a method value passed
// through them is judged by its summary, exactly like a direct call.
func observe(f func() int) int { return f() }

func runPath(fn func(string) error, path string) error { return fn(path) }

func (s *server) methodValues(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	observe(s.size)                      // pure method value: clean
	return runPath(s.SaveSnapshot, path) // want `blocking call to interproc\.runPath while s\.mu is held \(locked at .*\); blocks via interproc\.runPath -> \(interproc\.server\)\.SaveSnapshot -> interproc\.writeFile -> os\.WriteFile`
}
