package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path ("krcore/server"), or its
	// root-relative directory for GOPATH-style fixture roots.
	Path string
	// Dir is the package's directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// litBinds and callBinds cache the package's resolvable local
	// bindings (litBindings, callBindings); nil until first use.
	litBinds  map[types.Object]*ast.FuncLit
	callBinds map[types.Object]callBinding
}

// Loader parses and type-checks packages without the go toolchain's
// build cache or any external dependency: module-local imports are
// type-checked recursively from source, standard-library imports go
// through the compiler's source importer. One Loader memoises every
// package it checks, so a whole-module run pays for each import once.
type Loader struct {
	// Root is the directory packages and local imports resolve under.
	Root string
	// ModulePath is the module path local imports start with ("krcore").
	// Empty means GOPATH-style resolution: an import path is a directory
	// relative to Root (the testdata/src fixture convention).
	ModulePath string

	fset  *token.FileSet
	std   types.ImporterFrom
	cache map[string]*loadEntry
}

type loadEntry struct {
	pkg *Package
	err error
}

// NewLoader returns a loader rooted at dir. A go.mod in dir sets the
// module path; without one the root is treated as a GOPATH-style
// source tree (import path == relative directory).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{Root: abs, fset: token.NewFileSet(), cache: map[string]*loadEntry{}}
	l.std, _ = importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)
	if mod, err := os.ReadFile(filepath.Join(abs, "go.mod")); err == nil {
		l.ModulePath = modulePath(mod)
	}
	return l, nil
}

// modulePath extracts the module path from go.mod contents.
func modulePath(mod []byte) string {
	for _, line := range strings.Split(string(mod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// LoadedLocal returns every module-local package this loader has
// type-checked so far — requested packages and their transitively
// loaded local imports — sorted by import path. Front ends feed these
// to RunModule so summaries cover the whole dependency closure.
func (l *Loader) LoadedLocal() []*Package {
	paths := make([]string, 0, len(l.cache))
	for path, ent := range l.cache {
		if ent.pkg != nil && ent.err == nil {
			paths = append(paths, path)
		}
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, path := range paths {
		pkgs = append(pkgs, l.cache[path].pkg)
	}
	return pkgs
}

// Expand resolves command-line package patterns to root-relative
// directories: "./..." walks everything under the root, "./x/..."
// everything under x, "./x" (or "x") exactly that directory. testdata
// and hidden directories never match a "..." walk.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(rel string) {
		rel = filepath.ToSlash(filepath.Clean(rel))
		if !seen[rel] {
			seen[rel] = true
			dirs = append(dirs, rel)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		pat = strings.TrimPrefix(pat, "./")
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			base := filepath.Join(l.Root, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					rel, err := filepath.Rel(l.Root, path)
					if err != nil {
						return err
					}
					add(rel)
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("lint: pattern %q: %w", pat, err)
			}
			continue
		}
		dir := filepath.Join(l.Root, filepath.FromSlash(pat))
		if !hasGoFiles(dir) {
			return nil, fmt.Errorf("lint: no Go files in %s", dir)
		}
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return nil, err
		}
		add(rel)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test Go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir parses and type-checks the package in the root-relative
// directory rel.
func (l *Loader) LoadDir(rel string) (*Package, error) {
	path := l.importPathFor(rel)
	return l.load(path)
}

// importPathFor maps a root-relative directory to its import path.
func (l *Loader) importPathFor(rel string) string {
	rel = filepath.ToSlash(filepath.Clean(rel))
	if l.ModulePath == "" {
		return rel
	}
	if rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + rel
}

// localDir maps an import path to the directory it lives in under the
// root, or ok=false for non-local (standard library) paths.
func (l *Loader) localDir(path string) (string, bool) {
	if l.ModulePath == "" {
		// GOPATH-style roots claim only directories that exist with Go
		// files in them; anything else ("fmt", "sync") is standard
		// library and resolves through the source importer.
		dir := filepath.Join(l.Root, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir, true
		}
		return "", false
	}
	if path == l.ModulePath {
		return l.Root, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.Root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// load type-checks the package at the import path, memoised. Cycles in
// module-local imports are reported, not followed.
func (l *Loader) load(path string) (*Package, error) {
	if ent, ok := l.cache[path]; ok {
		if ent.pkg == nil && ent.err == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return ent.pkg, ent.err
	}
	ent := &loadEntry{}
	l.cache[path] = ent
	pkg, err := l.loadUncached(path)
	ent.pkg, ent.err = pkg, err
	if err != nil {
		ent.err = fmt.Errorf("lint: %s: %w", path, err)
	}
	return ent.pkg, ent.err
}

func (l *Loader) loadUncached(path string) (*Package, error) {
	dir, ok := l.localDir(path)
	if !ok {
		return nil, fmt.Errorf("not under the analysis root")
	}
	// go/build evaluates build constraints (file suffixes and
	// //go:build lines) exactly like the toolchain, so platform-gated
	// files are selected consistently with a real build.
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files")
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: &chainImporter{l: l}}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// chainImporter resolves module-local imports through the loader and
// everything else through the standard library's source importer.
type chainImporter struct{ l *Loader }

func (c *chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c *chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if _, ok := c.l.localDir(path); ok {
		pkg, err := c.l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if c.l.std == nil {
		return nil, fmt.Errorf("lint: no importer for %q", path)
	}
	return c.l.std.ImportFrom(path, dir, mode)
}
