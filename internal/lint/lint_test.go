package lint

import (
	"strings"
	"testing"
)

func TestLockHeld(t *testing.T) {
	runFixture(t, "lockheld", LockHeld)
}

func TestInterproc(t *testing.T) {
	runFixture(t, "interproc", LockHeld)
}

func TestLockOrder(t *testing.T) {
	runFixture(t, "lockorder", LockOrder)
}

func TestMapOrder(t *testing.T) {
	runFixture(t, "maporder", MapOrder)
}

func TestAtomicField(t *testing.T) {
	runFixture(t, "atomicfield", AtomicField)
}

func TestDecodeBound(t *testing.T) {
	runFixture(t, "decodebound", DecodeBound)
}

func TestCtxBackground(t *testing.T) {
	runFixture(t, "ctxbackground", CtxBackground)
}

func TestWrapSentinel(t *testing.T) {
	runFixture(t, "wrapsentinel", WrapSentinel)
}

func TestAnalyzersStableOrder(t *testing.T) {
	names := []string{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || (a.Run == nil && a.RunModule == nil) {
			t.Fatalf("analyzer %+v incomplete", a)
		}
		names = append(names, a.Name)
	}
	want := "lockheld,lockorder,maporder,atomicfield,decodebound,ctxbackground,wrapsentinel"
	if got := strings.Join(names, ","); got != want {
		t.Fatalf("Analyzers() order = %s, want %s", got, want)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "lockheld", Message: "boom"}
	d.Pos.Filename, d.Pos.Line, d.Pos.Column = "a.go", 3, 7
	if got, want := d.String(), "a.go:3:7: boom (lockheld)"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		comment string
		names   []string
		ok      bool
	}{
		{"//krlint:ignore lockheld reason text", []string{"lockheld"}, true},
		{"// krlint:ignore a,b why", []string{"a", "b"}, true},
		{"//krlint:ignore all everything", []string{"all"}, true},
		{"//krlint:ignore", nil, false},
		{"// regular comment", nil, false},
	}
	for _, c := range cases {
		names, ok := parseIgnore(c.comment)
		if ok != c.ok {
			t.Errorf("parseIgnore(%q) ok = %v, want %v", c.comment, ok, c.ok)
			continue
		}
		if strings.Join(names, ",") != strings.Join(c.names, ",") {
			t.Errorf("parseIgnore(%q) = %v, want %v", c.comment, names, c.names)
		}
	}
}

func TestFormatVerbs(t *testing.T) {
	cases := []struct {
		format string
		verbs  string
	}{
		{"plain", ""},
		{"%d and %s", "ds"},
		{"100%% done: %w", "w"},
		{"%+v %#x %6.2f", "vxf"},
		{"%*d", "*d"},
		{"%[1]s", "s"},
	}
	for _, c := range cases {
		if got := string(formatVerbs(c.format)); got != c.verbs {
			t.Errorf("formatVerbs(%q) = %q, want %q", c.format, got, c.verbs)
		}
	}
}

func TestExpandPatterns(t *testing.T) {
	loader, err := NewLoader("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	all, err := loader.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 5 {
		t.Fatalf("Expand(./...) = %v, want the five fixture packages", all)
	}
	one, err := loader.Expand([]string{"./lockheld"})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0] != "lockheld" {
		t.Fatalf("Expand(./lockheld) = %v", one)
	}
	if _, err := loader.Expand([]string{"./nonexistent"}); err == nil {
		t.Fatal("Expand of a dir without Go files should fail")
	}
}
