// Package lint is the repo's static-analysis suite: seven analyzers
// that mechanically enforce invariants this codebase established the
// hard way — no blocking I/O under a serving lock, even transitively
// (PR 6's group-commit restructure), no lock-order cycles or
// re-entrant locking across the module's call graph, no map iteration
// order reaching ordered output unsorted (the bit-identical-results
// contract), no plain access to atomically-accessed fields (PR 2/4
// counter discipline), no wire-decoded length reaching an allocation
// unchecked (PR 5's decode-safety contract), no context.Background()
// where a caller context is in scope (PR 4's request-deadline
// plumbing), and no sentinel error formatted without %w (PR 5's typed
// *FormatError contract).
//
// The first three are interprocedural: a module-wide call graph with
// per-function summaries (summary.go) computed bottom-up over SCCs
// answers "does this call reach blocking I/O?", "which locks does it
// take, in what order?" and "is this slice map-ordered?" — so no
// module-local function is ever hand-listed as blocking, and a
// SaveSnapshot-class bug any number of calls below a held lock is
// caught the day it is written.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, Diagnostic, testdata/src fixtures with
// "// want" comments) but is self-contained on the standard library:
// packages are parsed with go/parser and type-checked with go/types,
// module-local imports resolved from source and standard-library
// imports through the compiler's source importer, so the suite builds
// and runs with zero external dependencies — including offline.
//
// # Suppressing a finding
//
// A finding that reflects a deliberate design decision is suppressed
// with a line directive on the flagged line or the line above it:
//
//	//krlint:ignore lockheld the journal lock exists to serialise appends
//
// naming one analyzer, a comma-separated list, or "all". Additionally,
// a mutex struct field whose doc comment contains the marker
// "krlint:iolock" declares that holding it across blocking I/O is the
// field's documented contract (a write-ahead journal's append lock);
// lockheld skips regions guarded by such fields. Both escapes are
// greppable, so every exemption in the tree is enumerable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Per-package analyzers set
// Run; analyzers whose findings span packages (lock-order cycles) set
// RunModule instead, which fires once per whole-module run with the
// summary table. Either may be nil.
type Analyzer struct {
	// Name is the analyzer's identifier, used in output, -only flags
	// and ignore directives.
	Name string
	// Doc is the one-line invariant statement shown by krlint -list.
	Doc string
	// Run performs the per-package check.
	Run func(*Pass) error
	// RunModule performs a whole-module check over the summary table.
	RunModule func(*ModulePass) error
}

// Pass carries one package's parsed and type-checked state to an
// analyzer, plus the module-wide interprocedural summaries.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Summaries is the module-wide call-graph summary table; analyzers
	// consult it to see through calls into other functions and packages.
	Summaries *Summaries

	pkg   *Package
	diags *[]Diagnostic
}

// ModulePass carries the whole-module state to a RunModule analyzer.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Pkgs are the packages under analysis (diagnostics should concern
	// these; Summaries may cover more).
	Pkgs      []*Package
	Summaries *Summaries

	diags *[]Diagnostic
}

// Reportf records one module-level finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: a position, the analyzer that produced it
// and the message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the finding the way compilers do, so editors and CI
// annotate it in place.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		LockHeld,
		LockOrder,
		MapOrder,
		AtomicField,
		DecodeBound,
		CtxBackground,
		WrapSentinel,
	}
}

// Run applies the analyzers to one loaded package. Summaries are built
// from that package alone; whole-module runs should use RunModule so
// interprocedural facts cross package boundaries.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunModule([]*Package{pkg}, nil, analyzers)
}

// RunModule applies the analyzers to pkgs with interprocedural
// summaries computed over pkgs plus deps (module-local packages loaded
// as imports), and returns the surviving findings sorted by position.
// Ignore directives are honoured here so every front end (driver,
// tests) applies the same suppression semantics.
func RunModule(pkgs, deps []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	sums := BuildSummaries(append(append([]*Package{}, pkgs...), deps...))
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Summaries: sums,
				pkg:       pkg,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		mp := &ModulePass{
			Analyzer:  a,
			Fset:      fsetOf(pkgs),
			Pkgs:      pkgs,
			Summaries: sums,
			diags:     &diags,
		}
		if err := a.RunModule(mp); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	diags = suppress(pkgs, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags, nil
}

func fsetOf(pkgs []*Package) *token.FileSet {
	if len(pkgs) > 0 {
		return pkgs[0].Fset
	}
	return token.NewFileSet()
}

// suppress drops findings covered by a "//krlint:ignore" directive on
// the same line or the line immediately above.
func suppress(pkgs []*Package, diags []Diagnostic) []Diagnostic {
	type key struct {
		file string
		line int
	}
	ignored := map[key][]string{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					names, ok := parseIgnore(c.Text)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					k := key{file: pos.Filename, line: pos.Line}
					ignored[k] = append(ignored[k], names...)
				}
			}
		}
	}
	if len(ignored) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if !matchIgnore(ignored[key{d.Pos.Filename, d.Pos.Line}], d.Analyzer) &&
			!matchIgnore(ignored[key{d.Pos.Filename, d.Pos.Line - 1}], d.Analyzer) {
			kept = append(kept, d)
		}
	}
	return kept
}

// parseIgnore extracts the analyzer names of one ignore directive.
func parseIgnore(comment string) ([]string, bool) {
	text := strings.TrimPrefix(comment, "//")
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, "krlint:ignore")
	if !ok {
		return nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, false // a bare directive names no analyzer: ignored itself
	}
	return strings.Split(fields[0], ","), true
}

// matchIgnore reports whether the directive names cover the analyzer.
func matchIgnore(names []string, analyzer string) bool {
	for _, n := range names {
		if n == "all" || n == analyzer {
			return true
		}
	}
	return false
}

// --- shared type helpers used by several analyzers ---

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isNamed reports whether t (after pointer unwrapping) is the named
// type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// namedName returns the package path and name of t's named type after
// unwrapping one pointer, or ok=false for unnamed types.
func namedName(t types.Type) (pkgPath, name string, ok bool) {
	if p, isP := t.(*types.Pointer); isP {
		t = p.Elem()
	}
	n, isN := t.(*types.Named)
	if !isN {
		return "", "", false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name(), true
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// exprString renders an expression the way it appears in source, for
// diagnostics ("d.mu", "j.f").
func exprString(e ast.Expr) string { return types.ExprString(e) }

// calleeFunc resolves the *types.Func a call expression invokes, nil
// for calls through function-typed variables, conversions and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	// Generic instantiations (f[T](...)) wrap the callee in an index
	// expression; the summary of interest is the generic declaration's,
	// so unwrap to it. Value indexing (fns[0]()) resolves to a *types.Var
	// below and still returns nil.
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(idx.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// funcKey returns "pkgpath.Name" for package functions and
// "(pkgpath.Recv).Name" for methods.
func funcKey(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		if f.Pkg() == nil {
			return f.Name()
		}
		return f.Pkg().Path() + "." + f.Name()
	}
	pkgPath, name, ok := namedName(sig.Recv().Type())
	if !ok {
		return f.Name()
	}
	if pkgPath == "" {
		return "(" + name + ")." + f.Name()
	}
	return "(" + pkgPath + "." + name + ")." + f.Name()
}
