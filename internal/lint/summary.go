package lint

// summary.go is the interprocedural layer: a module-wide call graph
// with one Summary per declared function, computed by a bottom-up
// fixpoint over the call graph's strongly-connected components.
// Summaries answer, for any function in the module, "does calling this
// reach blocking I/O?", "which mutexes does it acquire, and in what
// order?", and "does its returned slice order depend on map
// iteration?" — so the analyzers built on top (lockheld, lockorder,
// maporder) see through call chains instead of relying on
// hand-maintained lists of module functions.
//
// Seeding and widening rules:
//
//   - may-block is seeded ONLY by standard-library leaves
//     (blockingFuncs: os/net/time/io primitives) — no module-local
//     function is ever named by hand; it inherits the property from
//     what it transitively calls.
//   - a call through an interface receiver is widened to may-block
//     when the method name is an I/O verb (blockingIfaceMethods): the
//     concrete target is unknown, so it must be assumed to reach a
//     file or socket.
//   - a call through a function value (stored closure, callback
//     parameter, method value) is widened to may-block
//     unconditionally: the target is unknown and may be anything.
//   - mutual recursion is handled by SCC widening: every member of a
//     cycle is iterated until the component's summaries stop changing,
//     so a property established anywhere in the cycle reaches every
//     member.
//
// Lock identity is canonical, not instance-based: a struct-field mutex
// is "pkgpath.Type.field", a package-level mutex "pkgpath.var", a
// local "funcKey$expr". Two instances of the same struct therefore
// share a key — acceptable for a lint (lock *order* between types is
// what deadlocks in practice) — and double-acquisition is only
// reported when the receiver instance demonstrably matches (same
// source expression or a package-level lock).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// isMutex reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutex(t types.Type) bool {
	return isNamed(t, "sync", "Mutex") || isNamed(t, "sync", "RWMutex")
}

// commentHas reports whether a comment group contains the marker.
func commentHas(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	return strings.Contains(cg.Text(), marker)
}

// LockUse records one mutex a function acquires, directly or through
// its callees.
type LockUse struct {
	// Key is the canonical lock name ("krcore.Engine.mu").
	Key string
	// Display is the source expression at the direct acquisition site
	// ("e.mu"); propagated uses keep the canonical key as display.
	Display string
	// Write is true if any acquisition is a write Lock (not RLock).
	Write bool
	// IOLock marks locks whose field doc carries krlint:iolock.
	IOLock bool
	// Pos is the direct acquisition position (in the function that
	// performs it).
	Pos token.Pos
	// Via is the call chain from the summarized function to the direct
	// acquirer; nil for direct acquisitions.
	Via []string
}

// OrderEdge records "From was held while To was acquired".
type OrderEdge struct {
	From, To string
	// Pos is where the edge was established: the acquisition of To (or
	// the call that transitively acquires it).
	Pos token.Pos
	// Via is the call chain to the function that acquired To; nil for
	// edges established directly in the summarized function.
	Via []string
}

// Reacquire records a mutex acquired while demonstrably already held
// by the same goroutine — a self-deadlock on a non-reentrant mutex.
type Reacquire struct {
	Key     string
	Display string
	// Pos is the second acquisition (or the call leading to it);
	// FirstPos is where the lock was first taken.
	Pos, FirstPos token.Pos
	Via           []string
}

// Summary is the interprocedural abstract of one declared function.
type Summary struct {
	// Key is the function's funcKey; PkgPath the declaring package.
	Key     string
	PkgPath string
	// Pos is the function declaration position.
	Pos token.Pos

	// MayBlock reports whether calling the function can reach file or
	// network I/O, fsync, or sleep; BlockVia is a witness call chain
	// ending at the blocking leaf.
	MayBlock bool
	BlockVia []string
	// BlockParams lists declared-parameter indices (flattened, in
	// declaration order) of function-typed parameters this function may
	// call: whether those calls block depends on the argument, so the
	// verdict is deferred to each call site instead of widening the
	// function itself to may-block.
	BlockParams []int
	// CleanFuncResults lists function-typed result indices for which
	// every value this function returns is statically non-blocking to
	// call — a cleanup closure, say — so callers invoking the returned
	// value are not widened.
	CleanFuncResults []int

	// Acquires holds every lock the function may take, keyed by
	// canonical lock key.
	Acquires map[string]*LockUse
	// HeldOnExit holds locks acquired and still held on every return
	// path (a lock() helper); deferred unlocks count as released.
	HeldOnExit map[string]*LockUse
	// ReleasedOnEntry holds locks the function unlocks without having
	// acquired (an unlock() helper), keyed by canonical lock key.
	ReleasedOnEntry map[string]token.Pos

	// Edges are acquired-before facts; Reacquired are same-instance
	// double acquisitions.
	Edges      []OrderEdge
	Reacquired []Reacquire

	// MapOrderedResults lists result indices whose returned slice
	// order derives from map iteration without an intervening sort.
	MapOrderedResults []int
}

// Summaries is the module-wide summary table.
type Summaries struct {
	funcs  map[string]*Summary
	decls  map[string]*declInfo
	ioLock map[string]bool
	// nonBlockField holds canonical keys of func-typed struct fields
	// whose doc carries krlint:nonblocking: the field's documented
	// contract is that every value stored in it is non-blocking, so
	// calls through it are not widened.
	nonBlockField map[string]bool
}

type declInfo struct {
	pkg  *Package
	decl *ast.FuncDecl
	obj  *types.Func
	key  string
}

// Of returns the summary for a funcKey, nil if the function is not
// declared in the analyzed module.
func (s *Summaries) Of(key string) *Summary {
	if s == nil {
		return nil
	}
	return s.funcs[key]
}

// Keys lists all summarized functions, sorted.
func (s *Summaries) Keys() []string {
	keys := make([]string, 0, len(s.funcs))
	for k := range s.funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// IsIOLock reports whether the canonical lock key carries the
// krlint:iolock field marker.
func (s *Summaries) IsIOLock(key string) bool {
	if s == nil {
		return false
	}
	return s.ioLock[key]
}

// BuildSummaries computes the module-wide summary table over the given
// packages (duplicates by path are ignored). Deterministic: the result
// depends only on package paths and source, never on map iteration.
func BuildSummaries(pkgs []*Package) *Summaries {
	s := &Summaries{
		funcs:         map[string]*Summary{},
		decls:         map[string]*declInfo{},
		ioLock:        map[string]bool{},
		nonBlockField: map[string]bool{},
	}
	seen := map[string]bool{}
	var uniq []*Package
	for _, p := range pkgs {
		if p == nil || seen[p.Path] {
			continue
		}
		seen[p.Path] = true
		uniq = append(uniq, p)
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i].Path < uniq[j].Path })

	var keys []string
	for _, pkg := range uniq {
		s.collectIOLocks(pkg)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				f, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if f == nil {
					continue
				}
				key := funcKey(f)
				if _, dup := s.decls[key]; dup {
					continue // platform twins can't both be loaded; first wins
				}
				s.decls[key] = &declInfo{pkg: pkg, decl: fd, obj: f, key: key}
				keys = append(keys, key)
			}
		}
	}
	sort.Strings(keys)

	// Pre-pass: static call edges between declared functions, for the
	// SCC condensation only (the fixpoint re-reads bodies itself).
	edges := map[string][]string{}
	for _, key := range keys {
		di := s.decls[key]
		callees := map[string]bool{}
		ast.Inspect(di.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if f := calleeFunc(di.pkg.Info, call); f != nil {
				ck := funcKey(f)
				if _, local := s.decls[ck]; local && !callees[ck] {
					callees[ck] = true
					edges[key] = append(edges[key], ck)
				}
			}
			return true
		})
		sort.Strings(edges[key])
	}

	// Bottom-up fixpoint: Tarjan emits SCCs callees-first, so by the
	// time a component is iterated every callee outside it is final.
	for _, comp := range tarjanSCC(keys, edges) {
		for changed := true; changed; {
			changed = false
			for _, key := range comp {
				next := s.computeEffects(s.decls[key])
				if !summarySig(next).equal(summarySig(s.funcs[key])) {
					s.funcs[key] = next
					changed = true
				} else {
					s.funcs[key] = next
				}
			}
		}
	}
	return s
}

// collectIOLocks records the canonical keys of marked struct fields:
// mutexes whose doc carries krlint:iolock, and func-typed fields whose
// doc carries krlint:nonblocking.
func (s *Summaries) collectIOLocks(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, f := range st.Fields.List {
					ioLock := commentHas(f.Doc, "krlint:iolock") || commentHas(f.Comment, "krlint:iolock")
					nonBlock := commentHas(f.Doc, "krlint:nonblocking") || commentHas(f.Comment, "krlint:nonblocking")
					if !ioLock && !nonBlock {
						continue
					}
					for _, name := range f.Names {
						obj := pkg.Info.Defs[name]
						if obj == nil {
							continue
						}
						key := pkg.Types.Path() + "." + ts.Name.Name + "." + name.Name
						if ioLock && isMutex(obj.Type()) {
							s.ioLock[key] = true
						}
						if _, isFunc := obj.Type().Underlying().(*types.Signature); nonBlock && isFunc {
							s.nonBlockField[key] = true
						}
					}
				}
			}
		}
	}
}

// tarjanSCC returns the strongly-connected components of the keyed
// graph in reverse topological order (callees before callers), each
// component sorted.
func tarjanSCC(keys []string, edges map[string][]string) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var comps [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range edges[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			comps = append(comps, comp)
		}
	}
	for _, v := range keys {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return comps
}

// computeEffects re-derives one function's summary from its body and
// the current summaries of its callees.
func (s *Summaries) computeEffects(di *declInfo) *Summary {
	out := &Summary{
		Key:             di.key,
		PkgPath:         di.pkg.Types.Path(),
		Pos:             di.decl.Pos(),
		Acquires:        map[string]*LockUse{},
		HeldOnExit:      map[string]*LockUse{},
		ReleasedOnEntry: map[string]token.Pos{},
	}
	ec := &effectCollector{pkg: di.pkg, sums: s, out: out, params: funcParamObjs(di.pkg, di.decl)}
	walkFuncBody(di.pkg, di.key, di.decl.Body, s, ec)
	ec.finish()
	out.CleanFuncResults = cleanFuncResults(di.pkg, s, di.decl, di.obj, ec.params)
	_, out.MapOrderedResults = mapOrderAnalyze(di.pkg, di.decl, s)
	return out
}

// summarySig renders the fixpoint-relevant part of a summary as a
// canonical string, for convergence detection.
type sigString string

func summarySig(s *Summary) sigString {
	if s == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "block=%v|", s.MayBlock)
	for _, i := range s.BlockParams {
		fmt.Fprintf(&b, "bp=%d;", i)
	}
	b.WriteByte('|')
	for _, i := range s.CleanFuncResults {
		fmt.Fprintf(&b, "cfr=%d;", i)
	}
	b.WriteByte('|')
	for _, k := range sortedLockKeys(s.Acquires) {
		u := s.Acquires[k]
		fmt.Fprintf(&b, "acq=%s,w=%v;", k, u.Write)
	}
	b.WriteByte('|')
	for _, k := range sortedLockKeys(s.HeldOnExit) {
		fmt.Fprintf(&b, "exit=%s;", k)
	}
	b.WriteByte('|')
	rel := make([]string, 0, len(s.ReleasedOnEntry))
	for k := range s.ReleasedOnEntry {
		rel = append(rel, k)
	}
	sort.Strings(rel)
	for _, k := range rel {
		fmt.Fprintf(&b, "rel=%s;", k)
	}
	b.WriteByte('|')
	pairs := make([]string, 0, len(s.Edges))
	for _, e := range s.Edges {
		pairs = append(pairs, e.From+"->"+e.To)
	}
	sort.Strings(pairs)
	b.WriteString(strings.Join(pairs, ";"))
	b.WriteByte('|')
	for _, r := range s.Reacquired {
		fmt.Fprintf(&b, "re=%s@%d;", r.Key, r.Pos)
	}
	b.WriteByte('|')
	for _, i := range s.MapOrderedResults {
		fmt.Fprintf(&b, "mo=%d;", i)
	}
	return sigString(b.String())
}

func (a sigString) equal(b sigString) bool { return a == b }

func sortedLockKeys(m map[string]*LockUse) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// --- the shared statement-ordered lock walker ---

// heldLock is one mutex currently held during the walk.
type heldLock struct {
	key     string // canonical
	display string // source expression ("e.mu")
	write   bool
	iolock  bool
	pos     token.Pos
	// deferred marks locks whose unlock was registered with defer: held
	// for the rest of the body in source order, released at return.
	deferred bool
}

// heldSet tracks held locks, keyed by display expression so distinct
// instances of the same field stay distinct.
type heldSet struct {
	locks map[string]*heldLock
}

func newHeldSet() *heldSet { return &heldSet{locks: map[string]*heldLock{}} }

func (h *heldSet) clone() *heldSet {
	c := newHeldSet()
	for k, v := range h.locks {
		cp := *v
		c.locks[k] = &cp
	}
	return c
}

// sorted returns the held locks ordered by display name.
func (h *heldSet) sorted() []*heldLock {
	keys := make([]string, 0, len(h.locks))
	for k := range h.locks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*heldLock, 0, len(keys))
	for _, k := range keys {
		out = append(out, h.locks[k])
	}
	return out
}

// lockEvents receives the walker's observations. Implementations must
// not retain the heldSet arguments.
type lockEvents interface {
	// acquire fires before l joins the held set; prior is what was held.
	acquire(l *heldLock, prior *heldSet)
	// reacquire fires instead of acquire when the same display
	// expression is already held.
	reacquire(l *heldLock, existing *heldLock)
	// strayRelease fires on an unlock with no matching held lock.
	strayRelease(key, display string, pos token.Pos)
	// call fires for every call expression evaluated in this frame;
	// deferred marks calls registered with defer (they run at return).
	call(call *ast.CallExpr, held *heldSet, deferred bool)
	// exit fires at each return statement and at the end of the body.
	exit(held *heldSet)
	// async returns the events to use inside goroutine bodies, whose
	// effects are concurrent, not the caller's; return nil to skip them.
	async() lockEvents
}

// lockWalker threads a held-lock set through one function body in
// source order, interpreting Lock/Unlock calls (including lock-helper
// calls, via callee summaries) and reporting everything else to its
// events.
type lockWalker struct {
	pkg   *Package
	fnKey string
	sums  *Summaries
	ev    lockEvents
}

// walkFuncBody runs the walker over one function body.
func walkFuncBody(pkg *Package, fnKey string, body *ast.BlockStmt, sums *Summaries, ev lockEvents) {
	w := &lockWalker{pkg: pkg, fnKey: fnKey, sums: sums, ev: ev}
	held := newHeldSet()
	w.block(body, held)
	ev.exit(held)
}

func (w *lockWalker) block(b *ast.BlockStmt, held *heldSet) {
	for _, stmt := range b.List {
		w.stmt(stmt, held)
	}
}

func (w *lockWalker) stmt(s ast.Stmt, held *heldSet) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if w.lockOp(call, held, false) {
				return
			}
		}
		w.expr(st.X, held)
	case *ast.DeferStmt:
		if w.lockOp(st.Call, held, true) {
			return
		}
		// The deferred call runs at return; its arguments evaluate now.
		for _, arg := range st.Call.Args {
			w.expr(arg, held)
		}
		w.ev.call(st.Call, held, true)
		if fl, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
			w.block(fl.Body, held.clone())
		}
		// A deferred unlock-helper keeps its locks held (sticky) for the
		// rest of the body, released at return.
		if rel := w.calleeReleases(st.Call); len(rel) > 0 {
			for _, l := range held.sorted() {
				for _, k := range rel {
					if l.key == k {
						l.deferred = true
					}
				}
			}
		}
	case *ast.GoStmt:
		// The goroutine body runs without this frame's locks; its
		// argument expressions evaluate now.
		for _, arg := range st.Call.Args {
			w.expr(arg, held)
		}
		if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
			if aev := w.ev.async(); aev != nil {
				aw := &lockWalker{pkg: w.pkg, fnKey: w.fnKey, sums: w.sums, ev: aev}
				fresh := newHeldSet()
				aw.block(fl.Body, fresh)
				aev.exit(fresh)
			}
		}
	case *ast.BlockStmt:
		w.block(st, held)
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init, held)
		}
		w.expr(st.Cond, held)
		w.block(st.Body, held.clone())
		if st.Else != nil {
			w.stmt(st.Else, held.clone())
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init, held)
		}
		if st.Cond != nil {
			w.expr(st.Cond, held)
		}
		w.block(st.Body, held.clone())
	case *ast.RangeStmt:
		w.expr(st.X, held)
		w.block(st.Body, held.clone())
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init, held)
		}
		if st.Tag != nil {
			w.expr(st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				h := held.clone()
				for _, s2 := range cc.Body {
					w.stmt(s2, h)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				h := held.clone()
				for _, s2 := range cc.Body {
					w.stmt(s2, h)
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				h := held.clone()
				for _, s2 := range cc.Body {
					w.stmt(s2, h)
				}
			}
		}
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			w.expr(rhs, held)
		}
	case *ast.ReturnStmt:
		for _, res := range st.Results {
			w.expr(res, held)
		}
		w.ev.exit(held)
	case *ast.LabeledStmt:
		w.stmt(st.Stmt, held)
	default:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.expr(e, held)
				return false
			}
			return true
		})
	}
}

// expr scans one expression for calls (and function literals that run
// synchronously as part of it).
func (w *lockWalker) expr(e ast.Expr, held *heldSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal that is merely stored or returned runs later,
			// possibly without these locks. Literals that execute now —
			// call arguments (sync.Once.Do bodies, sort comparators) and
			// immediately-invoked functions — are walked from their
			// CallExpr below.
			return false
		case *ast.CallExpr:
			w.ev.call(n, held, false)
			w.applyCalleeLocks(n, held)
			if fl, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				w.block(fl.Body, held.clone())
			}
			for _, arg := range n.Args {
				if fl, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					w.block(fl.Body, held.clone())
				}
			}
		}
		return true
	})
}

// lockOp interprets Lock/Unlock calls on mutex receivers, returning
// whether it consumed the call. deferred marks defer statements.
func (w *lockWalker) lockOp(call *ast.CallExpr, held *heldSet, deferred bool) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recvT := w.pkg.Info.TypeOf(sel.X)
	if recvT == nil || !isMutex(recvT) {
		return false
	}
	key, display := w.lockKeyFor(sel.X)
	switch sel.Sel.Name {
	case "Lock", "RLock":
		l := &heldLock{
			key:     key,
			display: display,
			write:   sel.Sel.Name == "Lock",
			iolock:  w.sums.IsIOLock(key),
			pos:     call.Pos(),
		}
		if existing, ok := held.locks[display]; ok {
			w.ev.reacquire(l, existing)
			return true
		}
		w.ev.acquire(l, held)
		held.locks[display] = l
		return true
	case "Unlock", "RUnlock":
		if l, ok := held.locks[display]; ok {
			if deferred {
				l.deferred = true
			} else {
				delete(held.locks, display)
			}
		} else if !deferred {
			w.ev.strayRelease(key, display, call.Pos())
		} else {
			// defer x.Unlock() with nothing held at this point still
			// releases whatever is held at return; treat as stray so
			// unlock-helpers summarize correctly.
			w.ev.strayRelease(key, display, call.Pos())
		}
		return true
	case "TryLock", "TryRLock":
		// Held only if the result is true; skipped, as before.
		return true
	}
	return false
}

// applyCalleeLocks mutates the held set after a call per the callee's
// summary: lock helpers leave locks held, unlock helpers release them.
func (w *lockWalker) applyCalleeLocks(call *ast.CallExpr, held *heldSet) {
	f := calleeFunc(w.pkg.Info, call)
	if f == nil {
		return
	}
	cs := w.sums.Of(funcKey(f))
	if cs == nil {
		return
	}
	for _, k := range sortedLockKeys(cs.HeldOnExit) {
		u := cs.HeldOnExit[k]
		already := false
		for _, l := range held.sorted() {
			if l.key == k {
				already = true
			}
		}
		if already {
			continue
		}
		held.locks[k] = &heldLock{
			key:     k,
			display: k,
			write:   u.Write,
			iolock:  w.sums.IsIOLock(k),
			pos:     call.Pos(),
		}
	}
	if len(cs.ReleasedOnEntry) > 0 {
		for disp, l := range held.locks {
			if _, rel := cs.ReleasedOnEntry[l.key]; rel {
				delete(held.locks, disp)
			}
		}
	}
}

// calleeReleases returns the canonical keys a statically-resolved
// callee unlocks on entry (for deferred unlock helpers).
func (w *lockWalker) calleeReleases(call *ast.CallExpr) []string {
	f := calleeFunc(w.pkg.Info, call)
	if f == nil {
		return nil
	}
	cs := w.sums.Of(funcKey(f))
	if cs == nil || len(cs.ReleasedOnEntry) == 0 {
		return nil
	}
	keys := make([]string, 0, len(cs.ReleasedOnEntry))
	for k := range cs.ReleasedOnEntry {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// lockKeyFor canonicalizes a mutex receiver expression.
func (w *lockWalker) lockKeyFor(recv ast.Expr) (key, display string) {
	display = exprString(recv)
	e := ast.Unparen(recv)
	switch e := e.(type) {
	case *ast.SelectorExpr:
		// pkgname.Var → package-level lock.
		if id, ok := e.X.(*ast.Ident); ok {
			if pn, ok := w.pkg.Info.Uses[id].(*types.PkgName); ok {
				return pn.Imported().Path() + "." + e.Sel.Name, display
			}
		}
		// x.field → field of x's named type.
		if xt := w.pkg.Info.TypeOf(e.X); xt != nil {
			if pkgPath, name, ok := namedName(xt); ok {
				if pkgPath == "" {
					return name + "." + e.Sel.Name, display
				}
				return pkgPath + "." + name + "." + e.Sel.Name, display
			}
		}
	case *ast.Ident:
		if v, ok := w.pkg.Info.Uses[e].(*types.Var); ok && !v.IsField() &&
			v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name(), display
		}
	}
	return w.fnKey + "$" + display, display
}

// --- effect collection (the events impl behind computeEffects) ---

// maxBlockVia caps witness chains in messages.
const maxBlockVia = 6

type effectCollector struct {
	pkg    *Package
	sums   *Summaries
	out    *Summary
	params map[types.Object]int
	exits  []map[string]*LockUse
}

func (c *effectCollector) acquire(l *heldLock, prior *heldSet) {
	c.recordAcquire(l)
	for _, h := range prior.sorted() {
		if h.key != l.key {
			c.out.Edges = append(c.out.Edges, OrderEdge{From: h.key, To: l.key, Pos: l.pos})
		}
	}
}

func (c *effectCollector) recordAcquire(l *heldLock) {
	if u, ok := c.out.Acquires[l.key]; ok {
		u.Write = u.Write || l.write
		return
	}
	c.out.Acquires[l.key] = &LockUse{
		Key: l.key, Display: l.display, Write: l.write, IOLock: l.iolock, Pos: l.pos,
	}
}

func (c *effectCollector) reacquire(l *heldLock, existing *heldLock) {
	c.recordAcquire(l)
	c.out.Reacquired = append(c.out.Reacquired, Reacquire{
		Key: l.key, Display: l.display, Pos: l.pos, FirstPos: existing.pos,
	})
}

func (c *effectCollector) strayRelease(key, display string, pos token.Pos) {
	if _, ok := c.out.ReleasedOnEntry[key]; !ok {
		c.out.ReleasedOnEntry[key] = pos
	}
}

func (c *effectCollector) call(call *ast.CallExpr, held *heldSet, deferred bool) {
	bc := classifyBlocking(c.pkg, c.sums, call, c.params)
	if bc.blocks && !c.out.MayBlock {
		c.out.MayBlock = true
		c.out.BlockVia = bc.via
	}
	for _, pi := range bc.params {
		if !containsInt(c.out.BlockParams, pi) {
			c.out.BlockParams = append(c.out.BlockParams, pi)
		}
	}
	f := calleeFunc(c.pkg.Info, call)
	if f == nil {
		return
	}
	cs := c.sums.Of(funcKey(f))
	if cs == nil {
		return
	}
	calleeKey := funcKey(f)
	// Locks the callee may take become locks this function may take,
	// and order edges against everything currently held.
	for _, k := range sortedLockKeys(cs.Acquires) {
		u := cs.Acquires[k]
		if _, ok := c.out.Acquires[k]; !ok {
			c.out.Acquires[k] = &LockUse{
				Key: k, Display: k, Write: u.Write, IOLock: u.IOLock, Pos: call.Pos(),
				Via: prependVia(calleeKey, u.Via),
			}
		} else if u.Write {
			c.out.Acquires[k].Write = true
		}
		for _, h := range held.sorted() {
			if h.key == k {
				// Transitive double acquisition: only when the instance
				// demonstrably matches — the callee is invoked on the
				// same receiver expression the held lock hangs off, or
				// the lock is package-level (one instance by construction).
				if sameInstanceCall(call, h) {
					c.out.Reacquired = append(c.out.Reacquired, Reacquire{
						Key: k, Display: h.display, Pos: call.Pos(), FirstPos: h.pos,
						Via: prependVia(calleeKey, u.Via),
					})
				}
				continue
			}
			c.out.Edges = append(c.out.Edges, OrderEdge{
				From: h.key, To: k, Pos: call.Pos(), Via: prependVia(calleeKey, u.Via),
			})
		}
	}
	// The callee's internal order edges propagate verbatim.
	for _, e := range cs.Edges {
		c.out.Edges = append(c.out.Edges, OrderEdge{
			From: e.From, To: e.To, Pos: call.Pos(), Via: prependVia(calleeKey, e.Via),
		})
	}
	_ = deferred
}

func (c *effectCollector) exit(held *heldSet) {
	snap := map[string]*LockUse{}
	for _, l := range held.sorted() {
		if l.deferred {
			continue // deferred unlock runs at return: released
		}
		snap[l.key] = &LockUse{Key: l.key, Display: l.display, Write: l.write, IOLock: l.iolock, Pos: l.pos}
	}
	c.exits = append(c.exits, snap)
}

func (c *effectCollector) async() lockEvents { return nil }

// finish intersects the exit-path held sets into HeldOnExit: only a
// lock held on every return path summarizes as held-on-exit, so
// conditionally-locking helpers never poison callers.
func (c *effectCollector) finish() {
	sort.Ints(c.out.BlockParams)
	if len(c.exits) == 0 {
		return
	}
	for k, u := range c.exits[0] {
		everywhere := true
		for _, ex := range c.exits[1:] {
			if _, ok := ex[k]; !ok {
				everywhere = false
				break
			}
		}
		if everywhere {
			c.out.HeldOnExit[k] = u
		}
	}
}

func prependVia(key string, via []string) []string {
	out := make([]string, 0, len(via)+1)
	out = append(out, key)
	out = append(out, via...)
	if len(out) > maxBlockVia {
		out = out[:maxBlockVia]
	}
	return out
}

// sameInstanceCall reports whether call's receiver expression matches
// the instance the held lock hangs off ("e.mu" held, "e.helper()"
// called), or the lock is package-level.
func sameInstanceCall(call *ast.CallExpr, h *heldLock) bool {
	if h.key == h.display || !strings.Contains(h.display, ".") {
		// Package-level or propagated lock: canonical key IS the instance.
		return h.key == h.display || !strings.Contains(h.key, "$")
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	base := h.display[:strings.LastIndex(h.display, ".")]
	return exprString(sel.X) == base
}

// --- blocking-call classification, shared by summaries and lockheld ---

// blockClass is the verdict for one call or function value: it blocks
// outright, or it blocks exactly when one of the *enclosing* function's
// listed parameters is given a blocking argument (param-sensitivity).
type blockClass struct {
	name   string
	via    []string
	blocks bool
	params []int
}

// classifyBlocking decides whether one call expression may block.
// Module-local callees are decided by their summaries; standard-library
// leaves and the widening rules (interface I/O verbs, unresolvable
// function values) decide directly. Three shapes stay precise instead
// of widening: calls through the enclosing function's own
// function-typed parameters become a param-sensitive verdict resolved
// at each call site, calls through local variables bound to exactly one
// func literal are classified by that literal's body, and calls to
// context.CancelFunc values never block (cancellation only signals).
// params maps the enclosing function's function-typed parameter objects
// to their declared indices (nil when there are none).
func classifyBlocking(pkg *Package, sums *Summaries, call *ast.CallExpr, params map[types.Object]int) blockClass {
	return classifyCall(pkg, sums, call, params, map[*ast.FuncLit]bool{})
}

func classifyCall(pkg *Package, sums *Summaries, call *ast.CallExpr, params map[types.Object]int, visiting map[*ast.FuncLit]bool) blockClass {
	f := calleeFunc(pkg.Info, call)
	if f != nil {
		key := funcKey(f)
		if blockingFuncs[key] {
			return blockClass{name: key, via: []string{key}, blocks: true}
		}
		if fprintFuncs[key] && len(call.Args) > 0 {
			t := pkg.Info.TypeOf(call.Args[0])
			if t != nil {
				if pkgPath, tname, ok := namedName(t); ok && memoryWriters[pkgPath+"."+tname] {
					return blockClass{}
				}
			}
			return blockClass{name: key, via: []string{key}, blocks: true}
		}
		// Interface-dispatched I/O: the receiver's static type is an
		// interface and the method name is an I/O verb.
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			if types.IsInterface(sig.Recv().Type()) && blockingIfaceMethods[f.Name()] {
				return blockClass{name: funcIfaceKey(pkg, call, f), via: []string{"(interface)." + f.Name()}, blocks: true}
			}
		}
		// Module-local callee: its summary decides. A callee that blocks
		// only through its own function parameters is resolved here, by
		// classifying the arguments it is given.
		if cs := sums.Of(key); cs != nil {
			if cs.MayBlock {
				return blockClass{name: key, via: prependVia(key, cs.BlockVia), blocks: true}
			}
			var out blockClass
			for _, idx := range cs.BlockParams {
				if idx >= len(call.Args) {
					continue // variadic tail or conversion shape: no argument supplied
				}
				av := valueBlocks(pkg, sums, call.Args[idx], params, visiting)
				if av.blocks {
					return blockClass{name: key, via: prependVia(key, av.via), blocks: true}
				}
				out.params = append(out.params, av.params...)
			}
			if len(out.params) > 0 {
				out.name = key + " (passes a caller-supplied func)"
				out.via = []string{out.name}
			}
			return out
		}
		return blockClass{}
	}
	// No static callee: a conversion, a builtin, or a function value.
	fun := ast.Unparen(call.Fun)
	if tv, ok := pkg.Info.Types[fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return blockClass{}
	}
	if lit, ok := fun.(*ast.FuncLit); ok {
		// An immediately-invoked literal's body is walked inline by the
		// lock walker; the call itself proves nothing.
		_ = lit
		return blockClass{}
	}
	if isCancelFunc(pkg, fun) {
		return blockClass{}
	}
	if id, ok := fun.(*ast.Ident); ok {
		obj := pkg.Info.Uses[id]
		if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
			return blockClass{}
		}
		if pi, isParam := params[obj]; isParam {
			// Calling the enclosing function's own parameter: the verdict
			// belongs to whoever supplies the argument.
			return blockClass{
				name:   id.Name + " (caller-supplied func)",
				via:    []string{id.Name + " (caller-supplied func)"},
				params: []int{pi},
			}
		}
		if lit := litBindings(pkg)[obj]; lit != nil {
			lc := funcLitBlocks(pkg, sums, lit, params, visiting)
			if lc.blocks {
				lc.name = id.Name
				lc.via = prependVia(id.Name, lc.via)
			}
			return lc
		}
		if cb, bound := callBindings(pkg)[obj]; bound && cleanCallResult(pkg, sums, cb) {
			return blockClass{}
		}
	}
	if nonBlockingField(pkg, sums, fun) {
		return blockClass{}
	}
	// Function value: target unknown, conservatively widened.
	disp := exprString(fun)
	return blockClass{name: disp + " (function value)", via: []string{disp + " (function value)"}, blocks: true}
}

// nonBlockingField reports whether the expression selects a func-typed
// struct field documented with the krlint:nonblocking contract.
func nonBlockingField(pkg *Package, sums *Summaries, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	sl, ok := pkg.Info.Selections[sel]
	if !ok || sl.Kind() != types.FieldVal {
		return false
	}
	pkgPath, tname, ok := namedName(pkg.Info.TypeOf(sel.X))
	if !ok || pkgPath == "" {
		return false
	}
	return sums != nil && sums.nonBlockField[pkgPath+"."+tname+"."+sel.Sel.Name]
}

// valueBlocks classifies a function-typed argument expression: does
// *calling* this value block?
func valueBlocks(pkg *Package, sums *Summaries, arg ast.Expr, params map[types.Object]int, visiting map[*ast.FuncLit]bool) blockClass {
	arg = ast.Unparen(arg)
	if isCancelFunc(pkg, arg) {
		return blockClass{}
	}
	switch a := arg.(type) {
	case *ast.FuncLit:
		return funcLitBlocks(pkg, sums, a, params, visiting)
	case *ast.Ident:
		if a.Name == "nil" {
			return blockClass{}
		}
		obj := pkg.Info.Uses[a]
		if pi, isParam := params[obj]; isParam {
			return blockClass{params: []int{pi}}
		}
		if lit := litBindings(pkg)[obj]; lit != nil {
			return funcLitBlocks(pkg, sums, lit, params, visiting)
		}
		if cb, bound := callBindings(pkg)[obj]; bound && cleanCallResult(pkg, sums, cb) {
			return blockClass{}
		}
		if f, isFunc := obj.(*types.Func); isFunc {
			return funcValueBlocks(sums, f)
		}
	case *ast.SelectorExpr:
		if f, isFunc := pkg.Info.Uses[a.Sel].(*types.Func); isFunc {
			return funcValueBlocks(sums, f)
		}
		if nonBlockingField(pkg, sums, a) {
			return blockClass{}
		}
	}
	// Unknown value: widened, like any other function value.
	disp := exprString(arg)
	return blockClass{name: disp + " (function value)", via: []string{disp + " (function value)"}, blocks: true}
}

// funcValueBlocks classifies a named function or method used as a
// value, with the same rules a direct call would get — passing
// src.SimilarBatch as a callback must not be judged more harshly than
// calling it inline. The verdict must hold for *any* arguments the
// eventual caller supplies, so param-sensitive callees are widened to
// blocking here.
func funcValueBlocks(sums *Summaries, f *types.Func) blockClass {
	key := funcKey(f)
	if blockingFuncs[key] || fprintFuncs[key] {
		return blockClass{name: key, via: []string{key}, blocks: true}
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		if blockingIfaceMethods[f.Name()] {
			return blockClass{name: key, via: []string{"(interface)." + f.Name()}, blocks: true}
		}
		return blockClass{} // interface method outside the I/O verbs: same as a direct call
	}
	if cs := sums.Of(key); cs != nil {
		if cs.MayBlock {
			return blockClass{name: key, via: prependVia(key, cs.BlockVia), blocks: true}
		}
		if len(cs.BlockParams) > 0 {
			return blockClass{name: key, via: []string{key + " (calls its func parameters)"}, blocks: true}
		}
		return blockClass{}
	}
	// Standard-library function outside the blocking leaves: a direct
	// call would be clean, so the value is too.
	if f.Pkg() != nil {
		return blockClass{}
	}
	return blockClass{name: key, via: []string{key}, blocks: true}
}

// funcLitBlocks classifies a func literal's body: any blocking call
// inside means calling the literal blocks. Nested literals are only
// entered through calls that reach them; visiting breaks closure
// cycles optimistically.
func funcLitBlocks(pkg *Package, sums *Summaries, lit *ast.FuncLit, params map[types.Object]int, visiting map[*ast.FuncLit]bool) blockClass {
	if visiting[lit] {
		return blockClass{}
	}
	visiting[lit] = true
	defer delete(visiting, lit)
	var out blockClass
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if out.blocks {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // a literal merely defined here is not called here
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var c blockClass
		if inner, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			// Immediately-invoked nested literal: its body runs here.
			c = funcLitBlocks(pkg, sums, inner, params, visiting)
		} else {
			c = classifyCall(pkg, sums, call, params, visiting)
		}
		if c.blocks {
			out = blockClass{name: c.name, via: prependVia("func literal", c.via), blocks: true}
			return false
		}
		out.params = append(out.params, c.params...)
		return true
	})
	return out
}

// isCancelFunc reports whether the expression's static type is
// context.CancelFunc — calling one signals cancellation and never
// performs I/O.
func isCancelFunc(pkg *Package, e ast.Expr) bool {
	t := pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	pkgPath, name, ok := namedName(t)
	return ok && pkgPath == "context" && name == "CancelFunc"
}

// callBinding records a local variable bound to one result of one
// call: "stop := context.AfterFunc(...)", "_, release := f(...)".
type callBinding struct {
	call *ast.CallExpr
	idx  int
}

// litBindings indexes, per package, local variables bound to exactly
// one func literal and never reassigned or address-taken: calls
// through them are classified by the literal's body instead of being
// widened. Computed once per package, lazily.
func litBindings(pkg *Package) map[types.Object]*ast.FuncLit {
	computeBindings(pkg)
	return pkg.litBinds
}

// callBindings is the same index for variables bound to a call result,
// used to see whether the producing function promises a non-blocking
// value for that result position.
func callBindings(pkg *Package) map[types.Object]callBinding {
	computeBindings(pkg)
	return pkg.callBinds
}

func computeBindings(pkg *Package) {
	if pkg.litBinds != nil {
		return
	}
	lits := map[types.Object]*ast.FuncLit{}
	calls := map[types.Object]callBinding{}
	assigns := map[types.Object]int{}
	aliased := map[types.Object]bool{}
	bindOne := func(obj types.Object, rhs ast.Expr, callIdx int, fromCall *ast.CallExpr) {
		if lit, ok := ast.Unparen(rhs).(*ast.FuncLit); ok {
			lits[obj] = lit
		} else if fromCall != nil {
			calls[obj] = callBinding{call: fromCall, idx: callIdx}
		} else if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			calls[obj] = callBinding{call: call, idx: 0}
		}
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				// Multi-value form: a, b := f() binds each LHS to one
				// result index of the single call.
				var multi *ast.CallExpr
				if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
					multi, _ = ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
				}
				for i, lhs := range n.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					obj := pkg.Info.Defs[id]
					if obj == nil {
						obj = pkg.Info.Uses[id]
					}
					if obj == nil {
						continue
					}
					assigns[obj]++
					if len(n.Lhs) == len(n.Rhs) {
						bindOne(obj, n.Rhs[i], 0, nil)
					} else if multi != nil {
						bindOne(obj, n.Rhs[0], i, multi)
					}
				}
			case *ast.ValueSpec:
				var multi *ast.CallExpr
				if len(n.Values) == 1 && len(n.Names) > 1 {
					multi, _ = ast.Unparen(n.Values[0]).(*ast.CallExpr)
				}
				for i, name := range n.Names {
					obj := pkg.Info.Defs[name]
					if obj == nil {
						continue
					}
					if len(n.Values) > 0 {
						assigns[obj]++
					}
					if i < len(n.Values) && len(n.Values) == len(n.Names) {
						bindOne(obj, n.Values[i], 0, nil)
					} else if multi != nil {
						bindOne(obj, n.Values[0], i, multi)
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
						if obj := pkg.Info.Uses[id]; obj != nil {
							aliased[obj] = true
						}
					}
				}
			}
			return true
		})
	}
	usable := func(obj types.Object) bool {
		return assigns[obj] == 1 && !aliased[obj] && obj.Parent() != pkg.Types.Scope()
	}
	for obj := range lits {
		if !usable(obj) {
			delete(lits, obj) // reassigned, aliased, or package-level: unresolvable
		}
	}
	for obj := range calls {
		if !usable(obj) {
			delete(calls, obj)
		}
	}
	pkg.litBinds = lits
	pkg.callBinds = calls
}

// nonBlockingFuncResults names standard-library functions whose
// returned functions never block when called: context.AfterFunc's stop
// only unregisters the callback.
var nonBlockingFuncResults = map[string]bool{
	"context.AfterFunc": true,
}

// cleanCallResult reports whether the bound call's producer promises a
// non-blocking function value at the bound result index.
func cleanCallResult(pkg *Package, sums *Summaries, cb callBinding) bool {
	f := calleeFunc(pkg.Info, cb.call)
	if f == nil {
		return false
	}
	key := funcKey(f)
	if nonBlockingFuncResults[key] {
		return true
	}
	cs := sums.Of(key)
	return cs != nil && containsInt(cs.CleanFuncResults, cb.idx)
}

// cleanFuncResults computes, for one declaration, the function-typed
// result indices whose every returned value is statically non-blocking
// to call. Any return shape the analysis can't read (bare returns with
// named results, multi-value call returns) clears all candidates.
func cleanFuncResults(pkg *Package, sums *Summaries, fd *ast.FuncDecl, obj *types.Func, params map[types.Object]int) []int {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Results() == nil || sig.Results().Len() == 0 {
		return nil
	}
	res := sig.Results()
	candidates := map[int]bool{}
	for i := 0; i < res.Len(); i++ {
		if _, isFunc := res.At(i).Type().Underlying().(*types.Signature); isFunc {
			candidates[i] = true
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	// Walk the body's own return statements (not nested literals').
	var scan func(n ast.Node) bool
	scan = func(n ast.Node) bool {
		if len(candidates) == 0 {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) != res.Len() {
			candidates = map[int]bool{} // bare or multi-value shape: give up
			return false
		}
		for i := range candidates {
			vb := valueBlocks(pkg, sums, ret.Results[i], params, map[*ast.FuncLit]bool{})
			if vb.blocks || len(vb.params) > 0 {
				delete(candidates, i)
			}
		}
		return true
	}
	ast.Inspect(fd.Body, scan)
	out := make([]int, 0, len(candidates))
	for i := range candidates {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// funcParamObjs maps a declaration's function-typed parameter objects
// to their flattened declaration indices.
func funcParamObjs(pkg *Package, fd *ast.FuncDecl) map[types.Object]int {
	if fd.Type.Params == nil {
		return nil
	}
	params := map[types.Object]int{}
	idx := 0
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			idx++
			continue
		}
		for _, name := range field.Names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				if _, isFunc := obj.Type().Underlying().(*types.Signature); isFunc {
					params[obj] = idx
				}
			}
			idx++
		}
	}
	return params
}

// funcIfaceKey renders "w.Write" style names for interface calls.
func funcIfaceKey(pkg *Package, call *ast.CallExpr, f *types.Func) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return exprString(sel.X) + "." + f.Name()
	}
	return f.Name()
}

// Format renders a summary for krlint -summary.
func (s *Summary) Format(fset *token.FileSet) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Key)
	fmt.Fprintf(&b, "  declared at %s\n", fset.Position(s.Pos))
	if s.MayBlock {
		fmt.Fprintf(&b, "  may block: %s\n", strings.Join(s.BlockVia, " -> "))
	} else {
		fmt.Fprintf(&b, "  may block: no\n")
	}
	for _, i := range s.BlockParams {
		fmt.Fprintf(&b, "  blocks if parameter %d blocks (caller-supplied func is called)\n", i)
	}
	if len(s.Acquires) == 0 {
		fmt.Fprintf(&b, "  locks: none\n")
	} else {
		for _, k := range sortedLockKeys(s.Acquires) {
			u := s.Acquires[k]
			mode := "read"
			if u.Write {
				mode = "write"
			}
			via := ""
			if len(u.Via) > 0 {
				via = " via " + strings.Join(u.Via, " -> ")
			}
			io := ""
			if u.IOLock {
				io = " [iolock]"
			}
			fmt.Fprintf(&b, "  acquires %s (%s)%s%s\n", k, mode, io, via)
		}
	}
	for _, k := range sortedLockKeys(s.HeldOnExit) {
		fmt.Fprintf(&b, "  held on exit: %s\n", k)
	}
	rel := make([]string, 0, len(s.ReleasedOnEntry))
	for k := range s.ReleasedOnEntry {
		rel = append(rel, k)
	}
	sort.Strings(rel)
	for _, k := range rel {
		fmt.Fprintf(&b, "  releases on entry: %s\n", k)
	}
	seen := map[string]bool{}
	for _, e := range s.Edges {
		pair := e.From + " -> " + e.To
		if seen[pair] {
			continue
		}
		seen[pair] = true
		fmt.Fprintf(&b, "  lock order: %s\n", pair)
	}
	for _, i := range s.MapOrderedResults {
		fmt.Fprintf(&b, "  result %d: slice order derives from map iteration\n", i)
	}
	return b.String()
}
