// Package simgraph materialises similarity structure for a vertex set.
//
// The paper's similarity graph G' connects every similar vertex pair
// (Section 3). Inside a candidate component, similar pairs vastly
// outnumber dissimilar ones (otherwise no (k,r)-core could exist there),
// so the search engine stores the complement — dissimilarity adjacency
// lists — and derives similarity degrees as (n-1) - |dissimilar|. The
// Clique+ baseline and the colour/k-core upper bounds use the explicit
// similarity graph instead.
package simgraph

import (
	"sort"

	"krcore/internal/graph"
	"krcore/internal/similarity"
)

// Dissim holds, for a set of vertices with local ids 0..n-1, the sorted
// list of locally-dissimilar vertices of each vertex, plus the total
// number of dissimilar pairs.
type Dissim struct {
	Lists [][]int32
	Pairs int
}

// BuildDissim computes the pairwise dissimilarity lists for the given
// global vertices under the oracle. Local id i corresponds to
// vertices[i]. O(len(vertices)^2) oracle queries.
func BuildDissim(o *similarity.Oracle, vertices []int32) *Dissim {
	n := len(vertices)
	d := &Dissim{Lists: make([][]int32, n)}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !o.Similar(vertices[i], vertices[j]) {
				d.Lists[i] = append(d.Lists[i], int32(j))
				d.Lists[j] = append(d.Lists[j], int32(i))
				d.Pairs++
			}
		}
	}
	return d
}

// SimilarityGraph materialises the explicit similarity graph on the given
// global vertices: local vertices i and j are adjacent iff vertices[i]
// and vertices[j] are similar. O(len(vertices)^2) oracle queries.
func SimilarityGraph(o *similarity.Oracle, vertices []int32) *graph.Graph {
	n := len(vertices)
	adj := make([][]int32, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if o.Similar(vertices[i], vertices[j]) {
				adj[i] = append(adj[i], int32(j))
				adj[j] = append(adj[j], int32(i))
			}
		}
	}
	for i := range adj {
		nb := adj[i]
		sort.Slice(nb, func(a, b int) bool { return nb[a] < nb[b] })
	}
	return graph.FromAdjacency(adj)
}

// BuildDissimBulk computes the same Dissim as BuildDissim through a
// bulk similarity engine: the engine yields the similar adjacency of
// the set in bulk (near-linear for the indexed metrics) and the
// dissimilarity lists are its complement, written with trivial per-item
// work instead of one metric evaluation per pair. The result is
// bit-identical to BuildDissim for the engine's oracle.
func BuildDissimBulk(src similarity.BulkSource, vertices []int32) *Dissim {
	n := len(vertices)
	sim := src.SimilarAdjacency(vertices)
	d := &Dissim{Lists: make([][]int32, n)}
	simEdges := 0
	total := 0
	for i := 0; i < n; i++ {
		simEdges += len(sim[i])
		total += n - 1 - len(sim[i])
	}
	d.Pairs = n*(n-1)/2 - simEdges/2
	backing := make([]int32, total)
	mark := make([]bool, n)
	off := 0
	for i := 0; i < n; i++ {
		for _, j := range sim[i] {
			mark[j] = true
		}
		list := backing[off:off]
		for j := 0; j < n; j++ {
			if j != i && !mark[j] {
				list = append(list, int32(j))
			}
		}
		off += len(list)
		d.Lists[i] = list
		for _, j := range sim[i] {
			mark[j] = false
		}
	}
	return d
}

// SimilarityGraphBulk materialises the explicit similarity graph
// through a bulk similarity engine; identical to SimilarityGraph for
// the engine's oracle.
func SimilarityGraphBulk(src similarity.BulkSource, vertices []int32) *graph.Graph {
	return graph.FromAdjacency(src.SimilarAdjacency(vertices))
}

// Complement returns the similarity graph implied by d (the complement of
// the dissimilarity lists on n local vertices). Useful for tests and for
// the baseline upper bounds on small candidate sets.
func (d *Dissim) Complement() *graph.Graph {
	n := len(d.Lists)
	adj := make([][]int32, n)
	for i := 0; i < n; i++ {
		dis := d.Lists[i]
		k := 0
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			for k < len(dis) && int(dis[k]) < j {
				k++
			}
			if k < len(dis) && int(dis[k]) == j {
				continue
			}
			adj[i] = append(adj[i], int32(j))
		}
	}
	return graph.FromAdjacency(adj)
}

// SimDegree returns n-1-|dissim(i)|, the similarity degree of local
// vertex i within the whole set.
func (d *Dissim) SimDegree(i int32) int {
	return len(d.Lists) - 1 - len(d.Lists[i])
}

// IsDissimilar reports whether local vertices i and j are dissimilar.
// O(log) via binary search on the shorter list.
func (d *Dissim) IsDissimilar(i, j int32) bool {
	l := d.Lists[i]
	if len(d.Lists[j]) < len(l) {
		l = d.Lists[j]
		i, j = j, i
	}
	k := sort.Search(len(l), func(k int) bool { return l[k] >= j })
	return k < len(l) && l[k] == j
}
