package simgraph

import (
	"fmt"
	"testing"

	"krcore/internal/binenc"
)

func TestDissimBinaryRoundTrip(t *testing.T) {
	d := &Dissim{
		Lists: [][]int32{{1, 2}, {0}, {0}, nil},
		Pairs: 2,
	}
	var b binenc.Buffer
	AppendDissim(&b, d)
	got, err := DecodeDissim(binenc.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Pairs != d.Pairs || fmt.Sprint(got.Lists) != fmt.Sprint(d.Lists) {
		t.Fatalf("decoded %+v, want %+v", got, d)
	}
	if _, err := DecodeDissim(binenc.NewReader(b.Bytes()[:5])); err == nil {
		t.Fatal("truncated dissim accepted")
	}
}
