package simgraph

import (
	"fmt"
	"math/rand"
	"testing"

	"krcore/internal/attr"
	"krcore/internal/graph"
	"krcore/internal/similarity"
	"krcore/internal/simindex"
)

// scratchFilter filters g's edges through the oracle from scratch — the
// reference PatchFiltered must match bit for bit.
func scratchFilter(g *graph.Graph, o *similarity.Oracle) *graph.Graph {
	return g.FilterEdges(func(u, v int32) bool { return o.Similar(u, v) })
}

func sameGraph(t *testing.T, label string, got, want *graph.Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("%s: got N=%d M=%d, want N=%d M=%d", label, got.N(), got.M(), want.N(), want.M())
	}
	for u := 0; u < want.N(); u++ {
		if fmt.Sprint(got.Neighbors(int32(u))) != fmt.Sprint(want.Neighbors(int32(u))) {
			t.Fatalf("%s: neighbors of %d: got %v, want %v",
				label, u, got.Neighbors(int32(u)), want.Neighbors(int32(u)))
		}
	}
}

// TestPatchFilteredEquivalence mutates a random geo-attributed graph —
// edge churn, attribute moves and vertex growth — and asserts after
// every batch that the patched filtered graph equals a from-scratch
// re-filter of the mutated graph.
func TestPatchFilteredEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		n := 8 + rng.Intn(30)
		store := attr.NewGeo(n)
		for u := 0; u < n; u++ {
			store.SetVertex(int32(u), attr.Point{X: rng.Float64() * 30, Y: rng.Float64() * 30})
		}
		b := graph.NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		r := 4 + rng.Float64()*10
		oracle := similarity.NewOracle(similarity.Euclidean{Store: store}, r)
		filtered := scratchFilter(g, oracle)

		for batch := 0; batch < 4; batch++ {
			d := graph.NewDelta(g)
			var attrVerts []int32
			seenAttr := map[int32]bool{}
			for op := 0; op < 1+rng.Intn(8); op++ {
				switch rng.Intn(6) {
				case 0:
					nv := d.AddVertex()
					store.Grow(int(nv) + 1)
					store.SetVertex(nv, attr.Point{X: rng.Float64() * 30, Y: rng.Float64() * 30})
					if err := d.AddEdge(nv, int32(rng.Intn(int(nv)))); err != nil {
						t.Fatal(err)
					}
				case 1:
					u := int32(rng.Intn(g.N()))
					if !seenAttr[u] {
						seenAttr[u] = true
						attrVerts = append(attrVerts, u)
					}
					store.SetVertex(u, attr.Point{X: rng.Float64() * 30, Y: rng.Float64() * 30})
				case 2, 3:
					u, v := int32(rng.Intn(d.N())), int32(rng.Intn(d.N()))
					if u != v {
						if err := d.AddEdge(u, v); err != nil {
							t.Fatal(err)
						}
					}
				default:
					u, v := int32(rng.Intn(d.N())), int32(rng.Intn(d.N()))
					if u != v {
						if err := d.RemoveEdge(u, v); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			g2 := g.Apply(d)
			add, del := d.Diff()
			// A fresh index over the post-mutation attributes, as the
			// serving layer rebuilds it when attributes changed.
			src := simindex.New(oracle)
			got, addF, delF := PatchFiltered(filtered, src, g2, add, del, attrVerts)
			want := scratchFilter(g2, oracle)
			sameGraph(t, fmt.Sprintf("trial %d batch %d", trial, batch), got, want)
			// The reported filtered diff must be exactly the edge change
			// between the old and new filtered graphs.
			for _, p := range addF {
				if filtered.HasEdge(p[0], p[1]) || !got.HasEdge(p[0], p[1]) {
					t.Fatalf("trial %d batch %d: bogus filtered addition %v", trial, batch, p)
				}
			}
			for _, p := range delF {
				if !filtered.HasEdge(p[0], p[1]) || got.HasEdge(p[0], p[1]) {
					t.Fatalf("trial %d batch %d: bogus filtered removal %v", trial, batch, p)
				}
			}
			if got.M()-filtered.M() != len(addF)-len(delF) {
				t.Fatalf("trial %d batch %d: filtered diff %d-%d inconsistent with M %d->%d",
					trial, batch, len(addF), len(delF), filtered.M(), got.M())
			}
			g, filtered = g2, got
		}
	}
}

// TestPatchFilteredNoop verifies that a no-change batch returns the
// filtered graph itself (shared, zero work beyond the empty batch).
func TestPatchFilteredNoop(t *testing.T) {
	store := attr.NewGeo(4)
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	g := b.Build()
	oracle := similarity.NewOracle(similarity.Euclidean{Store: store}, 1)
	filtered := scratchFilter(g, oracle)
	got, addF, delF := PatchFiltered(filtered, simindex.New(oracle), g, nil, nil, nil)
	if got != filtered {
		t.Fatal("no-op patch must return the filtered graph unchanged")
	}
	if len(addF) != 0 || len(delF) != 0 {
		t.Fatalf("no-op patch reported a filtered diff: +%v -%v", addF, delF)
	}
}
