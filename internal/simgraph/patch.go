package simgraph

import (
	"krcore/internal/graph"
	"krcore/internal/similarity"
)

// PatchFiltered incrementally maintains a dissimilar-edge-filtered
// graph (the output of filtering a base graph's edges through a
// similarity oracle) across a mutation batch, consulting the bulk
// similarity engine only for the new and changed pairs instead of
// re-filtering all m edges.
//
// filtered is the filter of the pre-mutation graph; g2 is the
// post-mutation graph; addPairs and delPairs are the effective edge
// diff between them (normalized u < v, as produced by graph.Delta.Diff);
// attrVerts lists the vertices whose attributes changed, so every g2
// edge incident to one of them is re-classified under src. src must
// answer similarity for the post-mutation attributes; the result is
// identical to re-filtering g2 from scratch with src.
//
// Alongside the patched graph, PatchFiltered returns the effective
// edge diff OF THE FILTERED GRAPH itself (normalized u < v, sorted):
// this differs from the base-graph diff because dissimilar additions
// never appear, and because an attribute change can flip edges whose
// far endpoint is nowhere in the batch. Incremental core maintenance
// consumes exactly this diff (see core.PatchPreparedDelta).
func PatchFiltered(filtered *graph.Graph, src similarity.BulkSource, g2 *graph.Graph,
	addPairs, delPairs [][2]int32, attrVerts []int32) (patched *graph.Graph, addF, delF [][2]int32) {
	d := graph.NewDelta(filtered)
	d.Grow(g2.N())
	seen := map[[2]int32]bool{}
	classify := make([][2]int32, 0, len(addPairs))
	push := func(u, v int32) {
		if u > v {
			u, v = v, u
		}
		p := [2]int32{u, v}
		if !seen[p] {
			seen[p] = true
			classify = append(classify, p)
		}
	}
	for _, p := range addPairs {
		push(p[0], p[1])
	}
	for _, u := range attrVerts {
		for _, v := range g2.Neighbors(u) {
			push(u, v)
		}
	}
	keep := src.SimilarBatch(classify)
	for i, p := range classify {
		var err error
		if keep[i] {
			err = d.AddEdge(p[0], p[1])
		} else {
			err = d.RemoveEdge(p[0], p[1])
		}
		if err != nil {
			// classify pairs are valid g2 edges (or effective additions),
			// so a failure here is an internal invariant violation.
			panic("simgraph: " + err.Error())
		}
	}
	for _, p := range delPairs {
		if err := d.RemoveEdge(p[0], p[1]); err != nil {
			panic("simgraph: " + err.Error())
		}
	}
	addF, delF = d.Diff()
	return filtered.Apply(d), addF, delF
}
