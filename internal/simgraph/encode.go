package simgraph

import (
	"fmt"

	"krcore/internal/binenc"
	"krcore/internal/graph"
)

// AppendDissim serialises the dissimilarity lists. Dissim shares the
// adjacency-list shape and invariants of package graph (sorted,
// loop-free, symmetric), so the encoding reuses the graph CSR hook;
// Pairs is derived on decode rather than stored.
func AppendDissim(b *binenc.Buffer, d *Dissim) {
	graph.AppendAdjacency(b, d.Lists)
}

// DecodeDissim reconstructs dissimilarity lists written by
// AppendDissim.
func DecodeDissim(r *binenc.Reader) (*Dissim, error) {
	lists, total, err := graph.DecodeAdjacency(r)
	if err != nil {
		return nil, fmt.Errorf("dissim: %w", err)
	}
	return &Dissim{Lists: lists, Pairs: total / 2}, nil
}
