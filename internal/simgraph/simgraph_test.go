package simgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"krcore/internal/attr"
	"krcore/internal/similarity"
	"krcore/internal/simindex"
)

func geoOracle(pts []attr.Point, r float64) *similarity.Oracle {
	g := attr.NewGeo(len(pts))
	for i, p := range pts {
		g.SetVertex(int32(i), p)
	}
	return similarity.NewOracle(similarity.Euclidean{Store: g}, r)
}

func TestBuildDissim(t *testing.T) {
	// Three points: 0 and 1 close, 2 far away.
	o := geoOracle([]attr.Point{{X: 0}, {X: 1}, {X: 100}}, 10)
	d := BuildDissim(o, []int32{0, 1, 2})
	if d.Pairs != 2 {
		t.Fatalf("Pairs = %d, want 2", d.Pairs)
	}
	if len(d.Lists[0]) != 1 || d.Lists[0][0] != 2 {
		t.Fatalf("dissim(0) = %v, want [2]", d.Lists[0])
	}
	if len(d.Lists[2]) != 2 {
		t.Fatalf("dissim(2) = %v, want [0 1]", d.Lists[2])
	}
	if !d.IsDissimilar(0, 2) || d.IsDissimilar(0, 1) || !d.IsDissimilar(2, 1) {
		t.Fatal("IsDissimilar wrong")
	}
	if d.SimDegree(0) != 1 || d.SimDegree(2) != 0 {
		t.Fatal("SimDegree wrong")
	}
}

func TestSimilarityGraphAndComplementAgree(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		pts := make([]attr.Point, n)
		for i := range pts {
			pts[i] = attr.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
		}
		o := geoOracle(pts, 5+rng.Float64()*20)
		vs := make([]int32, n)
		for i := range vs {
			vs[i] = int32(i)
		}
		sg := SimilarityGraph(o, vs)
		d := BuildDissim(o, vs)
		comp := d.Complement()
		if sg.N() != comp.N() || sg.M() != comp.M() {
			return false
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				want := o.Similar(int32(u), int32(v))
				if sg.HasEdge(int32(u), int32(v)) != want {
					return false
				}
				if comp.HasEdge(int32(u), int32(v)) != want {
					return false
				}
				if d.IsDissimilar(int32(u), int32(v)) == want {
					return false
				}
			}
		}
		// Pair accounting: similar + dissimilar = all pairs.
		if sg.M()+d.Pairs != n*(n-1)/2 {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBulkBuildersMatchSerial(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		pts := make([]attr.Point, n)
		for i := range pts {
			pts[i] = attr.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
		}
		o := geoOracle(pts, 5+rng.Float64()*20)
		vs := make([]int32, n)
		for i := range vs {
			vs[i] = int32(i)
		}
		src := simindex.NewSerial(o)
		d, db := BuildDissim(o, vs), BuildDissimBulk(src, vs)
		if d.Pairs != db.Pairs || len(d.Lists) != len(db.Lists) {
			return false
		}
		for i := range d.Lists {
			if len(d.Lists[i]) != len(db.Lists[i]) {
				return false
			}
			for k := range d.Lists[i] {
				if d.Lists[i][k] != db.Lists[i][k] {
					return false
				}
			}
		}
		sg, sgb := SimilarityGraph(o, vs), SimilarityGraphBulk(src, vs)
		if sg.N() != sgb.N() || sg.M() != sgb.M() {
			return false
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if sg.HasEdge(int32(u), int32(v)) != sgb.HasEdge(int32(u), int32(v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDissimSubsetMapping(t *testing.T) {
	// Local ids must refer to positions in the input slice, not global ids.
	o := geoOracle([]attr.Point{{X: 0}, {X: 100}, {X: 1}, {X: 101}}, 10)
	d := BuildDissim(o, []int32{1, 3, 0}) // local 0=g1, 1=g3, 2=g0
	// g1 and g3 are close (dist 1): similar. g1-g0 and g3-g0 far.
	if d.IsDissimilar(0, 1) {
		t.Fatal("local 0 and 1 (global 1,3) should be similar")
	}
	if !d.IsDissimilar(0, 2) || !d.IsDissimilar(1, 2) {
		t.Fatal("global vertex 0 should be dissimilar to 1 and 3")
	}
	if d.Pairs != 2 {
		t.Fatalf("Pairs = %d, want 2", d.Pairs)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	o := geoOracle([]attr.Point{{X: 0}}, 1)
	d := BuildDissim(o, nil)
	if d.Pairs != 0 || len(d.Lists) != 0 {
		t.Fatal("empty dissim wrong")
	}
	d1 := BuildDissim(o, []int32{0})
	if d1.Pairs != 0 || d1.SimDegree(0) != 0 {
		t.Fatal("singleton dissim wrong")
	}
	if g := SimilarityGraph(o, []int32{0}); g.N() != 1 || g.M() != 0 {
		t.Fatal("singleton similarity graph wrong")
	}
}
