// Package graph provides the undirected simple-graph substrate used by all
// (k,r)-core algorithms: an immutable adjacency-list graph, a builder that
// deduplicates edges, induced subgraphs, connected components and breadth
// first traversals.
//
// Vertices are dense integers 0..N-1 stored as int32; every algorithm in
// this repository works on vertex identifiers, attributes live in
// package attr.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable undirected simple graph with vertices 0..N-1.
// Neighbor lists are sorted ascending and contain no duplicates or
// self-loops. The zero value is an empty graph with no vertices.
type Graph struct {
	adj [][]int32
	m   int
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u int32) int { return len(g.adj[u]) }

// Neighbors returns the sorted neighbor list of u. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(u int32) []int32 { return g.adj[u] }

// HasEdge reports whether the edge (u,v) exists. It runs in
// O(log deg(u)) time.
func (g *Graph) HasEdge(u, v int32) bool {
	nb := g.adj[u]
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	return i < len(nb) && nb[i] == v
}

// MaxDegree returns the maximum vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, nb := range g.adj {
		if len(nb) > max {
			max = len(nb)
		}
	}
	return max
}

// AvgDegree returns the average vertex degree (2M/N), or 0 for an empty
// graph.
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(len(g.adj))
}

// Edges calls fn once for every undirected edge with u < v.
func (g *Graph) Edges(fn func(u, v int32)) {
	for u, nb := range g.adj {
		for _, v := range nb {
			if int32(u) < v {
				fn(int32(u), v)
			}
		}
	}
}

// Builder accumulates edges for a Graph. Duplicate edges and self-loops
// are silently dropped at Build time.
type Builder struct {
	n     int
	edges [][2]int32
}

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// AddEdge records the undirected edge (u,v). It panics if either endpoint
// is out of range.
func (b *Builder) AddEdge(u, v int32) {
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	b.edges = append(b.edges, [2]int32{u, v})
}

// Build constructs the immutable Graph. The builder can be reused
// afterwards but retains its edges.
func (b *Builder) Build() *Graph {
	deg := make([]int, b.n)
	for _, e := range b.edges {
		if e[0] == e[1] {
			continue
		}
		deg[e[0]]++
		deg[e[1]]++
	}
	adj := make([][]int32, b.n)
	for u := range adj {
		adj[u] = make([]int32, 0, deg[u])
	}
	for _, e := range b.edges {
		if e[0] == e[1] {
			continue
		}
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	m := 0
	for u := range adj {
		nb := adj[u]
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		// Deduplicate in place.
		w := 0
		for i, v := range nb {
			if i > 0 && v == nb[i-1] {
				continue
			}
			nb[w] = v
			w++
		}
		adj[u] = nb[:w]
		m += w
	}
	return &Graph{adj: adj, m: m / 2}
}

// FromAdjacency wraps pre-built adjacency lists into a Graph. Each list
// must already be sorted, deduplicated, loop-free and symmetric; this is
// only checked lazily by algorithms, so callers in this module must
// guarantee it. Intended for internal fast paths.
func FromAdjacency(adj [][]int32) *Graph {
	m := 0
	for _, nb := range adj {
		m += len(nb)
	}
	return &Graph{adj: adj, m: m / 2}
}

// FilterEdges returns a new graph on the same vertex set containing only
// the edges for which keep returns true. keep is called once per edge
// with u < v.
func (g *Graph) FilterEdges(keep func(u, v int32) bool) *Graph {
	adj := make([][]int32, len(g.adj))
	m := 0
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if int32(u) < v && keep(int32(u), v) {
				adj[u] = append(adj[u], v)
				adj[v] = append(adj[v], int32(u))
				m++
			}
		}
	}
	// Lists were appended in ascending u order; the half added as adj[v]
	// may be unsorted relative to the adj[u] half, so sort.
	for u := range adj {
		nb := adj[u]
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	}
	return &Graph{adj: adj, m: m}
}

// FilterEdgesBatch returns the same graph as FilterEdges but gathers
// every edge (u < v) first and evaluates them with a single batched
// predicate call, so an indexed or parallel similarity engine can
// answer all edges at once. keep[i] must report whether pairs[i]
// survives.
func (g *Graph) FilterEdgesBatch(eval func(pairs [][2]int32) []bool) *Graph {
	pairs := make([][2]int32, 0, g.m)
	g.Edges(func(u, v int32) { pairs = append(pairs, [2]int32{u, v}) })
	keep := eval(pairs)
	adj := make([][]int32, len(g.adj))
	m := 0
	for i, e := range pairs {
		if !keep[i] {
			continue
		}
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
		m++
	}
	for u := range adj {
		nb := adj[u]
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	}
	return &Graph{adj: adj, m: m}
}

// Induced returns the subgraph induced by vertices (global ids), with
// local ids 0..len(vertices)-1 assigned in the given order, plus the
// local-to-global mapping (a copy of vertices).
func (g *Graph) Induced(vertices []int32) (*Graph, []int32) {
	local := make(map[int32]int32, len(vertices))
	for i, v := range vertices {
		local[v] = int32(i)
	}
	adj := make([][]int32, len(vertices))
	m := 0
	for i, v := range vertices {
		for _, w := range g.adj[v] {
			if lw, ok := local[w]; ok {
				adj[i] = append(adj[i], lw)
				m++
			}
		}
		sort.Slice(adj[i], func(a, b int) bool { return adj[i][a] < adj[i][b] })
	}
	orig := make([]int32, len(vertices))
	copy(orig, vertices)
	return &Graph{adj: adj, m: m / 2}, orig
}

// ConnectedComponents returns the connected components of g as slices of
// vertex ids, each sorted ascending. Isolated vertices form singleton
// components. Components are returned in order of their smallest vertex.
func (g *Graph) ConnectedComponents() [][]int32 {
	return g.ComponentsOf(nil)
}

// ComponentsOf returns the connected components of the subgraph induced
// by the given vertices (nil means all vertices). Each component is
// sorted ascending.
func (g *Graph) ComponentsOf(vertices []int32) [][]int32 {
	n := len(g.adj)
	inSet := make([]bool, n)
	if vertices == nil {
		for i := range inSet {
			inSet[i] = true
		}
	} else {
		for _, v := range vertices {
			inSet[v] = true
		}
	}
	visited := make([]bool, n)
	var comps [][]int32
	queue := make([]int32, 0, 64)
	for s := 0; s < n; s++ {
		if !inSet[s] || visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue[:0], int32(s))
		comp := []int32{int32(s)}
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range g.adj[u] {
				if inSet[v] && !visited[v] {
					visited[v] = true
					queue = append(queue, v)
					comp = append(comp, v)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	return comps
}

// IsConnectedSubset reports whether the subgraph induced by vertices is
// connected. The empty set is considered connected.
func (g *Graph) IsConnectedSubset(vertices []int32) bool {
	if len(vertices) <= 1 {
		return true
	}
	comps := g.ComponentsOf(vertices)
	return len(comps) == 1
}

// DegreeWithin returns the number of neighbors of u inside the given
// membership mask.
func (g *Graph) DegreeWithin(u int32, in []bool) int {
	d := 0
	for _, v := range g.adj[u] {
		if in[v] {
			d++
		}
	}
	return d
}
