package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// rebuildReference reconstructs the expected post-delta graph from
// scratch with the Builder, given the base edges and the delta ops.
func rebuildReference(n int, edges map[[2]int32]bool) *Graph {
	b := NewBuilder(n)
	for e, present := range edges {
		if present {
			b.AddEdge(e[0], e[1])
		}
	}
	return b.Build()
}

func graphsEqual(a, b *Graph) error {
	if a.N() != b.N() {
		return fmt.Errorf("N: %d != %d", a.N(), b.N())
	}
	if a.M() != b.M() {
		return fmt.Errorf("M: %d != %d", a.M(), b.M())
	}
	for u := 0; u < a.N(); u++ {
		na, nb := a.Neighbors(int32(u)), b.Neighbors(int32(u))
		if len(na) != len(nb) {
			return fmt.Errorf("degree of %d: %d != %d", u, len(na), len(nb))
		}
		for i := range na {
			if na[i] != nb[i] {
				return fmt.Errorf("neighbors of %d differ: %v != %v", u, na, nb)
			}
		}
	}
	return nil
}

func TestDeltaApplyBasics(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()

	d := NewDelta(g)
	if err := d.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(1, 0); err != nil { // re-added after removal: last op wins
		t.Fatal(err)
	}
	nv := d.AddVertex()
	if nv != 4 {
		t.Fatalf("AddVertex id = %d, want 4", nv)
	}
	if err := d.AddEdge(nv, 0); err != nil {
		t.Fatal(err)
	}
	g2 := g.Apply(d)
	want := rebuildReference(5, map[[2]int32]bool{
		{0, 1}: true, {1, 2}: true, {2, 3}: true, {0, 4}: true,
	})
	if err := graphsEqual(g2, want); err != nil {
		t.Fatal(err)
	}
	// The base graph must be untouched.
	if g.N() != 4 || g.M() != 2 || !g.HasEdge(0, 1) {
		t.Fatalf("base graph mutated: N=%d M=%d", g.N(), g.M())
	}
}

func TestDeltaValidation(t *testing.T) {
	g := NewBuilder(3).Build()
	d := NewDelta(g)
	if err := d.AddEdge(0, 3); err == nil {
		t.Fatal("out-of-range endpoint must error")
	}
	if err := d.AddEdge(-1, 0); err == nil {
		t.Fatal("negative endpoint must error")
	}
	if err := d.AddEdge(1, 1); err == nil {
		t.Fatal("self-loop must error")
	}
	if err := d.RemoveEdge(0, 5); err == nil {
		t.Fatal("out-of-range removal must error")
	}
	if !d.Empty() {
		t.Fatal("failed operations must not dirty the delta")
	}
}

func TestDeltaNoopSharing(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g := b.Build()
	d := NewDelta(g)
	// Adding an existing edge and removing a missing one are no-ops.
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatal("no-op delta should be Empty")
	}
	if got := g.Apply(d); got != g {
		t.Fatal("empty delta must return the base graph unchanged")
	}
}

func TestDeltaDiffAndTouched(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	d := NewDelta(g)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.AddEdge(3, 4))
	must(d.AddEdge(0, 1)) // already present: not in Diff
	must(d.RemoveEdge(2, 3))
	must(d.RemoveEdge(0, 4)) // already absent: not in Diff
	add, del := d.Diff()
	if fmt.Sprint(add) != "[[3 4]]" || fmt.Sprint(del) != "[[2 3]]" {
		t.Fatalf("Diff = %v / %v", add, del)
	}
	if got := fmt.Sprint(d.Touched()); got != "[2 3 4]" {
		t.Fatalf("Touched = %s", got)
	}
}

func TestApplyWrongBasePanics(t *testing.T) {
	g1 := NewBuilder(2).Build()
	g2 := NewBuilder(2).Build()
	d := NewDelta(g1)
	defer func() {
		if recover() == nil {
			t.Fatal("Apply on a foreign graph must panic")
		}
	}()
	g2.Apply(d)
}

// TestDeltaRandomizedEquivalence cross-checks Apply against a
// from-scratch Builder rebuild over many random mutation batches,
// including chained deltas (apply, then mutate the result again).
func TestDeltaRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(12)
		edges := map[[2]int32]bool{}
		b := NewBuilder(n)
		for i := 0; i < rng.Intn(3*n); i++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			b.AddEdge(u, v)
			edges[[2]int32{u, v}] = true
		}
		g := b.Build()
		for step := 0; step < 4; step++ {
			d := NewDelta(g)
			for op := 0; op < rng.Intn(2*n)+1; op++ {
				u, v := int32(rng.Intn(d.N())), int32(rng.Intn(d.N()))
				switch rng.Intn(5) {
				case 0:
					nv := d.AddVertex()
					if rng.Intn(2) == 0 && nv > 0 {
						if err := d.AddEdge(nv, int32(rng.Intn(int(nv)))); err != nil {
							t.Fatal(err)
						}
					}
				case 1, 2:
					if u == v {
						continue
					}
					if err := d.AddEdge(u, v); err != nil {
						t.Fatal(err)
					}
				default:
					if u == v {
						continue
					}
					if err := d.RemoveEdge(u, v); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Mirror the delta's set semantics on the edge map.
			mirror := map[[2]int32]bool{}
			for e, p := range edges {
				mirror[e] = p
			}
			add, del := d.Diff()
			for _, p := range add {
				mirror[p] = true
			}
			for _, p := range del {
				mirror[p] = false
			}
			g2 := g.Apply(d)
			want := rebuildReference(d.N(), mirror)
			if err := graphsEqual(g2, want); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			g, edges = g2, mirror
		}
	}
}
