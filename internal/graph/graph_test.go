package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func buildPath(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

func TestBuilderDedupAndLoops(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self loop dropped
	b.AddEdge(2, 3)
	g := b.Build()
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 1 || g.Degree(3) != 1 {
		t.Fatalf("unexpected degrees: %d %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2), g.Degree(3))
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) || g.HasEdge(2, 2) {
		t.Fatal("HasEdge gave wrong answers")
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range edge")
		}
	}()
	NewBuilder(2).AddEdge(0, 2)
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.N() != 0 || g.M() != 0 || g.MaxDegree() != 0 || g.AvgDegree() != 0 {
		t.Fatal("empty graph should have all-zero statistics")
	}
	if comps := g.ConnectedComponents(); len(comps) != 0 {
		t.Fatalf("empty graph has %d components, want 0", len(comps))
	}
}

func TestNeighborsSorted(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 4)
	b.AddEdge(0, 2)
	b.AddEdge(0, 1)
	b.AddEdge(0, 3)
	g := b.Build()
	want := []int32{1, 2, 3, 4}
	if !reflect.DeepEqual(g.Neighbors(0), want) {
		t.Fatalf("Neighbors(0) = %v, want %v", g.Neighbors(0), want)
	}
}

func TestEdgesIteration(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g := b.Build()
	var got [][2]int32
	g.Edges(func(u, v int32) { got = append(got, [2]int32{u, v}) })
	if len(got) != 4 {
		t.Fatalf("iterated %d edges, want 4", len(got))
	}
	for _, e := range got {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not emitted with u < v", e)
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(4, 5)
	g := b.Build()
	comps := g.ConnectedComponents()
	want := [][]int32{{0, 1, 2}, {3}, {4, 5}, {6}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("components = %v, want %v", comps, want)
	}
}

func TestComponentsOfSubset(t *testing.T) {
	g := buildPath(6) // 0-1-2-3-4-5
	comps := g.ComponentsOf([]int32{0, 1, 3, 4, 5})
	want := [][]int32{{0, 1}, {3, 4, 5}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("components = %v, want %v", comps, want)
	}
	if g.IsConnectedSubset([]int32{0, 1, 3}) {
		t.Fatal("subset {0,1,3} of a path should be disconnected")
	}
	if !g.IsConnectedSubset([]int32{2, 3, 4}) {
		t.Fatal("subset {2,3,4} of a path should be connected")
	}
	if !g.IsConnectedSubset(nil) || !g.IsConnectedSubset([]int32{2}) {
		t.Fatal("empty and singleton subsets are connected by definition")
	}
}

func TestInduced(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 0)
	g := b.Build() // 5-cycle
	sub, orig := g.Induced([]int32{0, 1, 2, 4})
	if sub.N() != 4 {
		t.Fatalf("induced N = %d, want 4", sub.N())
	}
	// Edges among {0,1,2,4}: (0,1),(1,2),(4,0) -> 3 edges.
	if sub.M() != 3 {
		t.Fatalf("induced M = %d, want 3", sub.M())
	}
	if !reflect.DeepEqual(orig, []int32{0, 1, 2, 4}) {
		t.Fatalf("orig mapping = %v", orig)
	}
	// local ids: 0->0, 1->1, 2->2, 4->3
	if !sub.HasEdge(0, 3) || sub.HasEdge(2, 3) {
		t.Fatal("induced adjacency wrong")
	}
}

func TestFilterEdges(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	f := g.FilterEdges(func(u, v int32) bool { return u != 1 && v != 1 })
	if f.M() != 1 || !f.HasEdge(2, 3) || f.HasEdge(0, 1) {
		t.Fatalf("filtered graph wrong: M=%d", f.M())
	}
	if f.N() != g.N() {
		t.Fatal("FilterEdges must preserve the vertex set")
	}
}

func TestFilterEdgesBatchMatchesFilterEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(30)
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		keep := func(u, v int32) bool { return (u+v)%3 != 0 }
		want := g.FilterEdges(keep)
		got := g.FilterEdgesBatch(func(pairs [][2]int32) []bool {
			out := make([]bool, len(pairs))
			for i, p := range pairs {
				out[i] = keep(p[0], p[1])
			}
			return out
		})
		if got.N() != want.N() || got.M() != want.M() {
			t.Fatalf("trial %d: N/M mismatch: %d/%d vs %d/%d", trial, got.N(), got.M(), want.N(), want.M())
		}
		for u := 0; u < n; u++ {
			gn, wn := got.Neighbors(int32(u)), want.Neighbors(int32(u))
			if len(gn) != len(wn) {
				t.Fatalf("trial %d: degree mismatch at %d", trial, u)
			}
			for i := range wn {
				if gn[i] != wn[i] {
					t.Fatalf("trial %d: neighbours differ at %d", trial, u)
				}
			}
		}
	}
}

func TestDegreeWithin(t *testing.T) {
	g := buildPath(5)
	in := []bool{true, true, false, true, true}
	if d := g.DegreeWithin(1, in); d != 1 {
		t.Fatalf("DegreeWithin(1) = %d, want 1", d)
	}
	if d := g.DegreeWithin(3, in); d != 1 {
		t.Fatalf("DegreeWithin(3) = %d, want 1", d)
	}
}

// Property: for random graphs, the sum of degrees equals 2M and all
// neighbor lists are sorted, deduplicated and symmetric.
func TestRandomGraphInvariants(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		sum := 0
		for u := 0; u < n; u++ {
			nb := g.Neighbors(int32(u))
			sum += len(nb)
			if !sort.SliceIsSorted(nb, func(i, j int) bool { return nb[i] < nb[j] }) {
				return false
			}
			for i, v := range nb {
				if i > 0 && v == nb[i-1] {
					return false // duplicate
				}
				if v == int32(u) {
					return false // self loop
				}
				if !g.HasEdge(v, int32(u)) {
					return false // asymmetric
				}
			}
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: components partition the vertex set and every component is
// internally connected.
func TestComponentsPartitionProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		b := NewBuilder(n)
		for i := 0; i < n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		comps := g.ConnectedComponents()
		seen := make([]bool, n)
		total := 0
		for _, c := range comps {
			total += len(c)
			for _, v := range c {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
			if !g.IsConnectedSubset(c) {
				return false
			}
		}
		return total == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
