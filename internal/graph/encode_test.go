package graph

import (
	"fmt"
	"math/rand"
	"testing"

	"krcore/internal/binenc"
)

func TestGraphBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := NewBuilder(50)
	for i := 0; i < 200; i++ {
		b.AddEdge(int32(rng.Intn(50)), int32(rng.Intn(50)))
	}
	g := b.Build()
	var buf binenc.Buffer
	AppendBinary(&buf, g)
	got, err := DecodeBinary(binenc.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != g.N() || got.M() != g.M() {
		t.Fatalf("decoded %d/%d, want %d/%d", got.N(), got.M(), g.N(), g.M())
	}
	for u := 0; u < g.N(); u++ {
		if fmt.Sprint(got.Neighbors(int32(u))) != fmt.Sprint(g.Neighbors(int32(u))) {
			t.Fatalf("vertex %d adjacency differs", u)
		}
	}
	// Canonical bytes: re-encoding the decoded graph is identical.
	var buf2 binenc.Buffer
	AppendBinary(&buf2, got)
	if string(buf.Bytes()) != string(buf2.Bytes()) {
		t.Fatal("re-encode not byte-stable")
	}
}

func TestDecodeAdjacencyRejectsInvariantViolations(t *testing.T) {
	enc := func(adj [][]int32) *binenc.Reader {
		var b binenc.Buffer
		AppendAdjacency(&b, adj)
		return binenc.NewReader(b.Bytes())
	}
	cases := map[string][][]int32{
		"out-of-range": {{3}, {}},
		"negative":     {{-1}, {}},
		"self-loop":    {{0}, {}},
		"unsorted":     {{}, {}, {1, 0}},
		"duplicate":    {{1, 1}, {0}},
	}
	for name, adj := range cases {
		if _, _, err := DecodeAdjacency(enc(adj)); err == nil {
			t.Fatalf("%s adjacency accepted", name)
		}
	}
	// Truncated payload.
	var b binenc.Buffer
	AppendAdjacency(&b, [][]int32{{1}, {0}})
	if _, _, err := DecodeAdjacency(binenc.NewReader(b.Bytes()[:len(b.Bytes())-2])); err == nil {
		t.Fatal("truncated adjacency accepted")
	}
	// Degree sum beyond the remaining bytes.
	var c binenc.Buffer
	c.U64(1)
	c.U32(1 << 30)
	if _, _, err := DecodeAdjacency(binenc.NewReader(c.Bytes())); err == nil {
		t.Fatal("oversized degree sum accepted")
	}
}
