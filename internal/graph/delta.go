package graph

import (
	"fmt"
	"sort"
)

// Delta records a batch of mutations against a base graph: edge
// insertions, edge removals and vertex additions. Operations use set
// semantics — the last recorded operation for a pair decides whether the
// edge is present after Apply, so adding an existing edge or removing a
// missing one is a harmless no-op. Unlike Builder (a bulk-loading path
// that panics on bad input), Delta is the serving-layer mutation path
// and reports invalid operations as errors.
//
// A Delta is bound to the graph it was created from; Apply merges it
// into a new immutable Graph that shares the adjacency lists of every
// untouched vertex with the base, so a small batch costs O(n) for the
// header array plus work proportional to the patched vertices only.
type Delta struct {
	base *Graph
	n    int
	want map[[2]int32]bool // normalized pair (u<v) -> desired presence
}

// NewDelta returns an empty Delta against the base graph.
func NewDelta(base *Graph) *Delta {
	return &Delta{base: base, n: base.N(), want: map[[2]int32]bool{}}
}

// N returns the vertex count after the recorded vertex additions.
func (d *Delta) N() int { return d.n }

// AddVertex appends one isolated vertex and returns its id. Edges to it
// may be recorded in the same delta.
func (d *Delta) AddVertex() int32 {
	id := int32(d.n)
	d.n++
	return id
}

// Grow extends the vertex count to at least n (no-op when already
// larger). Used when mirroring a delta onto a derived graph whose
// vertex set must match another graph's.
func (d *Delta) Grow(n int) {
	if n > d.n {
		d.n = n
	}
}

// pair validates and normalizes an edge operation's endpoints.
func (d *Delta) pair(u, v int32) ([2]int32, error) {
	if u < 0 || int(u) >= d.n || v < 0 || int(v) >= d.n {
		return [2]int32{}, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, d.n)
	}
	if u == v {
		return [2]int32{}, fmt.Errorf("graph: self-loop (%d,%d) rejected", u, v)
	}
	if u > v {
		u, v = v, u
	}
	return [2]int32{u, v}, nil
}

// AddEdge records that the edge (u,v) must exist after Apply.
func (d *Delta) AddEdge(u, v int32) error {
	p, err := d.pair(u, v)
	if err != nil {
		return err
	}
	d.want[p] = true
	return nil
}

// RemoveEdge records that the edge (u,v) must not exist after Apply.
func (d *Delta) RemoveEdge(u, v int32) error {
	p, err := d.pair(u, v)
	if err != nil {
		return err
	}
	d.want[p] = false
	return nil
}

// hasBase reports whether the pair is an edge of the base graph. Pairs
// touching vertices added by this delta are never base edges.
func (d *Delta) hasBase(p [2]int32) bool {
	n := d.base.N()
	return int(p[0]) < n && int(p[1]) < n && d.base.HasEdge(p[0], p[1])
}

// Diff resolves the recorded operations against the base graph and
// returns the pairs whose presence actually changes: add lists edges to
// insert (desired present, absent in the base), del lists edges to
// remove. Both are normalized (u < v) and sorted for determinism.
func (d *Delta) Diff() (add, del [][2]int32) {
	for p, present := range d.want {
		if present != d.hasBase(p) {
			if present {
				add = append(add, p)
			} else {
				del = append(del, p)
			}
		}
	}
	sortPairs(add)
	sortPairs(del)
	return add, del
}

// Empty reports whether Apply would return a graph identical to the
// base: no effective edge change and no vertex growth.
func (d *Delta) Empty() bool {
	if d.n != d.base.N() {
		return false
	}
	add, del := d.Diff()
	return len(add) == 0 && len(del) == 0
}

// Touched returns the sorted distinct endpoints of the effective edge
// changes — the vertices whose adjacency differs between the base and
// the applied graph.
func (d *Delta) Touched() []int32 {
	add, del := d.Diff()
	seen := map[int32]bool{}
	var out []int32
	note := func(v int32) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, p := range add {
		note(p[0])
		note(p[1])
	}
	for _, p := range del {
		note(p[0])
		note(p[1])
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortPairs(ps [][2]int32) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
}

// Apply merges the delta into a new immutable Graph. The delta must
// have been created by NewDelta on g (Apply panics otherwise — mixing
// graphs would silently corrupt the diff). The base graph is never
// modified; untouched vertices share their adjacency slices with it.
// When the delta is empty, Apply returns g itself.
func (g *Graph) Apply(d *Delta) *Graph {
	if d.base != g {
		panic("graph: delta applied to a graph it was not built on")
	}
	add, del := d.Diff()
	if len(add) == 0 && len(del) == 0 && d.n == len(g.adj) {
		return g
	}
	adj := make([][]int32, d.n)
	copy(adj, g.adj)
	addBy := map[int32][]int32{}
	delBy := map[int32]map[int32]bool{}
	for _, p := range add {
		addBy[p[0]] = append(addBy[p[0]], p[1])
		addBy[p[1]] = append(addBy[p[1]], p[0])
	}
	for _, p := range del {
		for _, s := range [2][2]int32{{p[0], p[1]}, {p[1], p[0]}} {
			if delBy[s[0]] == nil {
				delBy[s[0]] = map[int32]bool{}
			}
			delBy[s[0]][s[1]] = true
		}
	}
	patched := map[int32]bool{}
	for u := range addBy {
		patched[u] = true
	}
	for u := range delBy {
		patched[u] = true
	}
	for u := range patched {
		old := adj[u]
		drop := delBy[u]
		nb := make([]int32, 0, len(old)+len(addBy[u]))
		for _, v := range old {
			if !drop[v] {
				nb = append(nb, v)
			}
		}
		nb = append(nb, addBy[u]...)
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		adj[u] = nb
	}
	return &Graph{adj: adj, m: g.m + len(add) - len(del)}
}
