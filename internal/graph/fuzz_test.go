package graph

import (
	"testing"
)

// FuzzGraphBuilder feeds arbitrary byte streams through the two graph
// construction paths — the bulk Builder and the mutation Delta — and
// checks the structural invariants every algorithm in this repository
// relies on: sorted deduplicated loop-free symmetric adjacency and a
// consistent edge count. The Delta phase deliberately replays the raw
// (possibly out-of-range, self-looping, duplicated) operations and
// requires errors, never panics.
func FuzzGraphBuilder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 1, 1, 2, 2, 0})
	f.Add([]byte{1, 0, 0})                   // self-loop
	f.Add([]byte{4, 0, 1, 0, 1, 1, 0})       // duplicates both ways
	f.Add([]byte{2, 0, 200, 255, 1, 7, 7})   // out-of-range + self-loop
	f.Add([]byte{5, 0, 1, 1, 2, 2, 3, 3, 4}) // path
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0]) % 24
		ops := data[1:]

		// Builder phase: endpoints reduced into range (the Builder's
		// documented contract panics on out-of-range input).
		b := NewBuilder(n)
		if n > 0 {
			for i := 0; i+1 < len(ops); i += 2 {
				b.AddEdge(int32(int(ops[i])%n), int32(int(ops[i+1])%n))
			}
		}
		g := b.Build()
		checkInvariants(t, g)

		// Delta phase: raw endpoints, alternating add/remove, plus
		// occasional vertex additions. Invalid operations must come back
		// as errors and leave the delta usable.
		d := NewDelta(g)
		for i := 0; i+1 < len(ops); i += 2 {
			u, v := int32(ops[i]), int32(ops[i+1])
			switch i / 2 % 4 {
			case 0, 1:
				_ = d.AddEdge(u, v)
			case 2:
				_ = d.RemoveEdge(u, v)
			default:
				if d.N() < 64 {
					d.AddVertex()
				}
			}
		}
		g2 := g.Apply(d)
		checkInvariants(t, g2)
		if g2.N() != d.N() {
			t.Fatalf("applied N = %d, want %d", g2.N(), d.N())
		}
		// Cross-check against a from-scratch rebuild of the same edge set.
		ref := NewBuilder(g2.N())
		g2.Edges(func(u, v int32) { ref.AddEdge(u, v) })
		if err := graphsEqual(g2, ref.Build()); err != nil {
			t.Fatalf("apply/rebuild mismatch: %v", err)
		}
	})
}

// checkInvariants asserts the Graph representation invariants.
func checkInvariants(t *testing.T, g *Graph) {
	t.Helper()
	m := 0
	for u := 0; u < g.N(); u++ {
		nb := g.Neighbors(int32(u))
		m += len(nb)
		for i, v := range nb {
			if v == int32(u) {
				t.Fatalf("self-loop at %d", u)
			}
			if v < 0 || int(v) >= g.N() {
				t.Fatalf("neighbor %d of %d out of range", v, u)
			}
			if i > 0 && nb[i-1] >= v {
				t.Fatalf("neighbors of %d not sorted/deduplicated: %v", u, nb)
			}
			if !g.HasEdge(v, int32(u)) {
				t.Fatalf("edge (%d,%d) not symmetric", u, v)
			}
		}
	}
	if m != 2*g.M() {
		t.Fatalf("M() = %d but adjacency holds %d entries", g.M(), m)
	}
}
