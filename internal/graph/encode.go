package graph

import (
	"encoding/binary"
	"fmt"

	"krcore/internal/binenc"
)

// AppendAdjacency serialises adjacency lists in CSR order: the vertex
// count, one degree per vertex, then every neighbour list flattened.
// The encoding is canonical — equal lists always produce equal bytes —
// which is what snapshot golden files rely on.
func AppendAdjacency(b *binenc.Buffer, adj [][]int32) {
	b.U64(uint64(len(adj)))
	for _, nb := range adj {
		b.U32(uint32(len(nb)))
	}
	for _, nb := range adj {
		for _, v := range nb {
			b.U32(uint32(v))
		}
	}
}

// DecodeAdjacency reads lists written by AppendAdjacency into one
// shared backing slice and validates the graph invariants every
// algorithm in this module assumes: each list strictly ascending,
// loop-free and within [0, n). It returns the lists plus the total
// entry count (2m for symmetric adjacency).
func DecodeAdjacency(r *binenc.Reader) ([][]int32, int, error) {
	n := r.Count(4)
	rawDeg := r.Raw(4 * n)
	if err := r.Err(); err != nil {
		return nil, 0, err
	}
	deg := make([]uint32, n)
	total := 0
	for i := range deg {
		deg[i] = binary.LittleEndian.Uint32(rawDeg[4*i:])
		if int(deg[i]) >= n {
			// A vertex has at most n-1 distinct neighbours; rejecting
			// larger degrees here also keeps the running total far
			// below overflow whatever the section claims.
			return nil, 0, fmt.Errorf("vertex %d: degree %d with %d vertices", i, deg[i], n)
		}
		total += int(deg[i])
		if total > r.Remaining()/4 {
			return nil, 0, fmt.Errorf("adjacency claims %d+ entries, only %d bytes left", total, r.Remaining())
		}
	}
	raw := r.Raw(4 * total)
	if err := r.Err(); err != nil {
		return nil, 0, err
	}
	backing := make([]int32, total)
	adj := make([][]int32, n)
	off := 0
	for u := range adj {
		d := int(deg[u])
		list := backing[off : off+d : off+d]
		// Convert and validate in one pass: prev starts below zero, so
		// v <= prev also catches negative ids and duplicates.
		prev := int32(-1)
		for i := 0; i < d; i++ {
			v := int32(binary.LittleEndian.Uint32(raw[4*(off+i):]))
			if v <= prev || int(v) >= n {
				return nil, 0, fmt.Errorf("vertex %d: neighbour %d breaks the sorted-range invariant [0,%d)", u, v, n)
			}
			if int(v) == u {
				return nil, 0, fmt.Errorf("vertex %d: self-loop", u)
			}
			list[i] = v
			prev = v
		}
		adj[u] = list
		off += d
	}
	return adj, total, nil
}

// AppendBinary serialises the graph (see AppendAdjacency).
func AppendBinary(b *binenc.Buffer, g *Graph) { AppendAdjacency(b, g.adj) }

// DecodeBinary reconstructs a graph written by AppendBinary,
// validating the per-list invariants. Adjacency symmetry is not
// re-checked — snapshots carry per-section checksums against
// accidental corruption.
func DecodeBinary(r *binenc.Reader) (*Graph, error) {
	adj, total, err := DecodeAdjacency(r)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	return &Graph{adj: adj, m: total / 2}, nil
}
