// Package dataset generates the synthetic attributed social networks
// used by the experiment harness, standing in for the four real datasets
// of the paper (Brightkite, Gowalla, DBLP, Pokec; Table 3), which cannot
// be downloaded in this offline environment.
//
// Each dataset is a sparse background graph with preferential-attachment
// hubs plus planted communities whose members are both densely connected
// (supporting the structure constraint) and attribute-coherent
// (supporting the similarity constraint): geo datasets place communities
// inside city clusters, keyword datasets give them coherent topics.
// Consecutive communities can overlap, producing the fused candidate
// components with many dissimilar pairs that make (k,r)-core search
// non-trivial — the regime the paper's pruning techniques target.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"krcore/internal/attr"
	"krcore/internal/graph"
	"krcore/internal/similarity"
)

// Config parameterises a synthetic dataset.
type Config struct {
	Name string
	Seed int64
	N    int

	// Background graph shape.
	AvgDegree float64 // target average degree including community edges
	HubCount  int     // number of high-degree hubs
	HubDegree int     // approximate degree of each hub

	// Planted communities.
	NumCommunities int
	CommunityMin   int
	CommunityMax   int
	IntraProb      float64 // edge probability inside a community
	OverlapSize    int     // members shared between consecutive communities

	// Attribute kind and parameters.
	Kind attr.Kind

	// Geo attributes (Kind == KindGeo). Units are kilometres.
	Area           float64 // side of the square world
	Cities         int     // number of city centres
	CitySigma      float64 // member spread around a city
	CommunitySigma float64 // member spread around its community centre

	// Keyword attributes (KindKeywords / KindWeighted).
	Vocab          int // vocabulary size
	TopicWords     int // words per topic
	WordsPerVertex int // words per vertex
	NoiseFrac      float64
	MaxWeight      int // weighted datasets: maximum keyword weight

	// Default similarity parameterisation for benchmarks and examples.
	// Geo presets declare DefaultR, the kilometre threshold at which
	// planted communities straddle the boundary (the regime of the
	// quickstart example and the geosocial case study); keyword presets
	// declare DefaultPermille, the Figure 12 top-permille calibration.
	// Exactly one of the two is set per preset.
	DefaultR        float64
	DefaultPermille float64
}

// Dataset is a generated attributed graph.
type Dataset struct {
	Name  string
	Graph *graph.Graph
	Kind  attr.Kind

	Keywords *attr.Keywords // set iff Kind == KindKeywords
	Weighted *attr.Weighted // set iff Kind == KindWeighted
	Geo      *attr.Geo      // set iff Kind == KindGeo

	// Communities is the planted ground truth (useful for case
	// studies); overlapping communities share OverlapSize members.
	Communities [][]int32
}

// Metric returns the similarity metric matching the dataset's attribute
// kind: weighted Jaccard for weighted keywords (DBLP, Pokec), Jaccard
// for plain keywords, Euclidean distance for geo (Brightkite, Gowalla).
func (d *Dataset) Metric() similarity.Metric {
	switch d.Kind {
	case attr.KindGeo:
		return similarity.Euclidean{Store: d.Geo}
	case attr.KindWeighted:
		return similarity.WeightedJaccard{Store: d.Weighted}
	default:
		return similarity.Jaccard{Store: d.Keywords}
	}
}

// Oracle returns a similarity oracle at threshold r (kilometres for geo
// datasets, metric value otherwise).
func (d *Dataset) Oracle(r float64) *similarity.Oracle {
	return similarity.NewOracle(d.Metric(), r)
}

// TopPermille converts a "top p permille" specification into a metric
// threshold using the sampled pairwise similarity distribution, as the
// paper does for DBLP and Pokec. Only valid for keyword datasets.
func (d *Dataset) TopPermille(p float64) float64 {
	return similarity.TopPermille(d.Metric(), d.Graph.N(), p, 200000, 12345)
}

// DefaultThreshold resolves the dataset's declared default similarity
// threshold — DefaultR for geo presets, the top-permille calibration
// otherwise (the single place encoding that rule). It errors when the
// dataset's name matches no preset. Permille resolution samples the
// pairwise distribution, so callers wanting to amortise it across
// repeated lookups should cache the result (see expr.Runner.Permille).
func (d *Dataset) DefaultThreshold() (float64, error) {
	cfg, err := Preset(d.Name)
	if err != nil {
		return 0, fmt.Errorf("dataset: %q declares no default threshold: %w", d.Name, err)
	}
	if cfg.DefaultPermille > 0 {
		return d.TopPermille(cfg.DefaultPermille), nil
	}
	return cfg.DefaultR, nil
}

// Generate builds the dataset for the given configuration. The same
// configuration always produces the same dataset.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("dataset: N must be >= 2, got %d", cfg.N)
	}
	if cfg.CommunityMax < cfg.CommunityMin {
		return nil, fmt.Errorf("dataset: CommunityMax %d < CommunityMin %d", cfg.CommunityMax, cfg.CommunityMin)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	comms := planCommunities(cfg, rng)
	b := graph.NewBuilder(cfg.N)
	intraEdges := addCommunityEdges(b, comms, cfg, rng)
	addBackgroundEdges(b, cfg, rng, intraEdges)
	g := b.Build()

	d := &Dataset{Name: cfg.Name, Graph: g, Kind: cfg.Kind, Communities: comms}
	switch cfg.Kind {
	case attr.KindGeo:
		d.Geo = generateGeo(cfg, comms, rng)
	case attr.KindWeighted:
		d.Weighted = generateWeighted(cfg, comms, rng)
	default:
		d.Keywords = generateKeywords(cfg, comms, rng)
	}
	return d, nil
}

// planCommunities assigns members to communities. Members are drawn from
// a shuffled vertex pool so communities are disjoint except for the
// explicit overlap with the previous community.
func planCommunities(cfg Config, rng *rand.Rand) [][]int32 {
	pool := rng.Perm(cfg.N)
	next := 0
	take := func(n int) []int32 {
		out := make([]int32, 0, n)
		for len(out) < n && next < len(pool) {
			out = append(out, int32(pool[next]))
			next++
		}
		return out
	}
	var comms [][]int32
	for i := 0; i < cfg.NumCommunities; i++ {
		size := cfg.CommunityMin
		if cfg.CommunityMax > cfg.CommunityMin {
			size += rng.Intn(cfg.CommunityMax - cfg.CommunityMin + 1)
		}
		var members []int32
		if i > 0 && cfg.OverlapSize > 0 && len(comms) > 0 {
			prev := comms[len(comms)-1]
			k := cfg.OverlapSize
			if k > len(prev) {
				k = len(prev)
			}
			members = append(members, prev[len(prev)-k:]...)
			size -= k
		}
		members = append(members, take(size)...)
		if len(members) >= 3 {
			comms = append(comms, members)
		}
	}
	return comms
}

// addCommunityEdges wires each community as a dense random subgraph.
func addCommunityEdges(b *graph.Builder, comms [][]int32, cfg Config, rng *rand.Rand) int {
	edges := 0
	for _, c := range comms {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				if rng.Float64() < cfg.IntraProb {
					b.AddEdge(c[i], c[j])
					edges++
				}
			}
		}
	}
	return edges
}

// addBackgroundEdges adds preferential-attachment noise edges up to the
// target average degree, plus explicit hubs for the skewed dmax of
// Table 3.
func addBackgroundEdges(b *graph.Builder, cfg Config, rng *rand.Rand, existing int) {
	target := int(cfg.AvgDegree * float64(cfg.N) / 2)
	remaining := target - existing
	if remaining < 0 {
		remaining = 0
	}
	// Preferential attachment via a repeated-endpoint list.
	repeated := make([]int32, 0, 2*remaining+2)
	randomVertex := func() int32 { return int32(rng.Intn(cfg.N)) }
	biasedVertex := func() int32 {
		if len(repeated) == 0 || rng.Float64() < 0.3 {
			return randomVertex()
		}
		return repeated[rng.Intn(len(repeated))]
	}
	for i := 0; i < remaining; i++ {
		u := randomVertex()
		v := biasedVertex()
		if u == v {
			continue
		}
		b.AddEdge(u, v)
		repeated = append(repeated, u, v)
	}
	for h := 0; h < cfg.HubCount; h++ {
		hub := randomVertex()
		for i := 0; i < cfg.HubDegree; i++ {
			v := randomVertex()
			if v != hub {
				b.AddEdge(hub, v)
			}
		}
	}
}

// generateGeo places cities uniformly and then walks community centres
// along chains: consecutive (overlapping) communities sit a city-sigma
// step apart, so at any distance threshold some prefix of each chain
// fuses into one candidate component whose boundary members straddle
// the threshold — the continuous geography that makes real check-in
// networks hard for (k,r)-core search. Background users gather around
// the chain corridors with a uniform minority elsewhere.
func generateGeo(cfg Config, comms [][]int32, rng *rand.Rand) *attr.Geo {
	geo := attr.NewGeo(cfg.N)
	cities := make([]attr.Point, cfg.Cities)
	for i := range cities {
		cities[i] = attr.Point{X: rng.Float64() * cfg.Area, Y: rng.Float64() * cfg.Area}
	}
	// Community centres: long chain walks between rare city restarts,
	// so chains span several hundred kilometres and keep dissimilar
	// tension inside fused components across the whole threshold sweep.
	centers := make([]attr.Point, len(comms))
	cur := cities[0]
	for i := range comms {
		if i == 0 || rng.Float64() < 0.12 {
			cur = cities[rng.Intn(len(cities))]
		} else {
			step := cfg.CitySigma * (0.8 + 0.7*rng.Float64())
			angle := rng.Float64() * 2 * math.Pi
			cur = attr.Point{
				X: cur.X + step*math.Cos(angle),
				Y: cur.Y + step*math.Sin(angle),
			}
		}
		centers[i] = cur
	}
	// Background: near a community corridor, a city, or uniform.
	for u := 0; u < cfg.N; u++ {
		var base attr.Point
		var sigma float64
		switch roll := rng.Float64(); {
		case roll < 0.45 && len(centers) > 0:
			base = centers[rng.Intn(len(centers))]
			sigma = 2.5 * cfg.CommunitySigma
		case roll < 0.85:
			base = cities[rng.Intn(len(cities))]
			sigma = cfg.CitySigma
		default:
			geo.SetVertex(int32(u), attr.Point{X: rng.Float64() * cfg.Area, Y: rng.Float64() * cfg.Area})
			continue
		}
		geo.SetVertex(int32(u), attr.Point{
			X: base.X + rng.NormFloat64()*sigma,
			Y: base.Y + rng.NormFloat64()*sigma,
		})
	}
	for i, comm := range comms {
		for _, v := range comm {
			geo.SetVertex(v, attr.Point{
				X: centers[i].X + rng.NormFloat64()*cfg.CommunitySigma,
				Y: centers[i].Y + rng.NormFloat64()*cfg.CommunitySigma,
			})
		}
	}
	return geo
}

// topicOf deterministically assigns a topic to each community, reusing
// topics when there are more communities than topics so that distinct
// communities can share research areas (as DBLP groups do).
func topicCount(cfg Config) int {
	t := cfg.Vocab / maxInt(cfg.TopicWords, 1)
	if t < 1 {
		t = 1
	}
	return t
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// drawWords samples a background vertex's keywords: mostly from its
// topic, the rest uniform noise from the vocabulary.
func drawWords(cfg Config, topic int, noise float64, rng *rand.Rand) []int32 {
	words := make([]int32, 0, cfg.WordsPerVertex)
	topicBase := int32(topic * cfg.TopicWords)
	for len(words) < cfg.WordsPerVertex {
		if rng.Float64() < noise {
			words = append(words, int32(rng.Intn(maxInt(cfg.Vocab, 1))))
		} else {
			words = append(words, topicBase+int32(rng.Intn(maxInt(cfg.TopicWords, 1))))
		}
	}
	return words
}

// communityCore draws the shared core vocabulary of one community: every
// member carries these words, so intra-community similarity is directly
// governed by the core fraction. Tightness varies per community — some
// communities share almost their whole vocabulary, some only half — so
// a top-permille threshold sweep admits communities gradually.
func communityCore(cfg Config, topic int, rng *rand.Rand) (core []int32, coreFrac float64) {
	coreFrac = 0.45 + 0.5*rng.Float64() // per-community tightness
	size := int(coreFrac * float64(cfg.WordsPerVertex))
	if size < 1 {
		size = 1
	}
	topicBase := int32(topic * cfg.TopicWords)
	perm := rng.Perm(maxInt(cfg.TopicWords, size))
	core = make([]int32, 0, size)
	for _, w := range perm[:size] {
		core = append(core, topicBase+int32(w%maxInt(cfg.TopicWords, 1)))
	}
	return core, coreFrac
}

// memberWords gives one community member the shared core plus personal
// extra words drawn from the topic and the global vocabulary.
func memberWords(cfg Config, core []int32, topic int, rng *rand.Rand) []int32 {
	words := append([]int32(nil), core...)
	topicBase := int32(topic * cfg.TopicWords)
	for len(words) < cfg.WordsPerVertex {
		if rng.Float64() < 0.5 {
			words = append(words, int32(rng.Intn(maxInt(cfg.Vocab, 1))))
		} else {
			words = append(words, topicBase+int32(rng.Intn(maxInt(cfg.TopicWords, 1))))
		}
	}
	return words
}

// communityTopics assigns a topic to every community. Consecutive
// (overlapping) communities keep the same topic half of the time,
// forming research-area chains: their members are partially similar, so
// at looser thresholds the chain fuses into one large candidate
// component with many dissimilar pairs — the hard instances the paper's
// pruning rules target.
func communityTopics(nComms, topics int, rng *rand.Rand) []int {
	out := make([]int, nComms)
	for i := range out {
		if i > 0 && rng.Float64() < 0.5 {
			out[i] = out[i-1]
		} else {
			out[i] = rng.Intn(topics)
		}
	}
	return out
}

func generateKeywords(cfg Config, comms [][]int32, rng *rand.Rand) *attr.Keywords {
	kw := attr.NewKeywords(cfg.N)
	topics := topicCount(cfg)
	bgNoise := cfg.NoiseFrac + 0.3
	for u := 0; u < cfg.N; u++ {
		kw.SetVertex(int32(u), drawWords(cfg, rng.Intn(topics), bgNoise, rng))
	}
	topicOf := communityTopics(len(comms), topics, rng)
	for i, comm := range comms {
		core, _ := communityCore(cfg, topicOf[i], rng)
		for _, v := range comm {
			kw.SetVertex(v, memberWords(cfg, core, topicOf[i], rng))
		}
	}
	return kw
}

func generateWeighted(cfg Config, comms [][]int32, rng *rand.Rand) *attr.Weighted {
	ww := attr.NewWeighted(cfg.N)
	topics := topicCount(cfg)
	maxW := maxInt(cfg.MaxWeight, 1)
	toEntries := func(words []int32, coreLen int) []attr.WeightedEntry {
		entries := make([]attr.WeightedEntry, 0, len(words))
		for i, w := range words {
			// Core venues get a stable weight so the weighted Jaccard
			// inside a community stays high; personal extras are
			// skewed (most venues appear once or twice, a few often).
			weight := 2
			if i >= coreLen {
				weight = 1
				for weight < maxW && rng.Float64() < 0.45 {
					weight++
				}
			}
			entries = append(entries, attr.WeightedEntry{Key: w, Weight: float64(weight)})
		}
		return entries
	}
	bgNoise := cfg.NoiseFrac + 0.3
	for u := 0; u < cfg.N; u++ {
		ww.SetVertex(int32(u), toEntries(drawWords(cfg, rng.Intn(topics), bgNoise, rng), 0))
	}
	topicOf := communityTopics(len(comms), topics, rng)
	for i, comm := range comms {
		core, _ := communityCore(cfg, topicOf[i], rng)
		for _, v := range comm {
			ww.SetVertex(v, toEntries(memberWords(cfg, core, topicOf[i], rng), len(core)))
		}
	}
	return ww
}
