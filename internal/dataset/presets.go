package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"krcore/internal/attr"
	"krcore/internal/graph"
)

// Preset returns the configuration of one of the scaled-down stand-ins
// for the paper's datasets (Table 3). Sizes are reduced roughly 50-100×
// so the NP-hard searches run in seconds on one machine; average degree,
// hub skew, attribute kind and similarity metric follow the originals:
//
//	name        paper original        kind      metric
//	brightkite  58k nodes, davg 6.7   geo       Euclidean (km)
//	gowalla     197k nodes, davg 4.7  geo       Euclidean (km)
//	dblp        1.6M nodes, davg 8.3  weighted  weighted Jaccard
//	pokec       1.6M nodes, davg 10.2 weighted  weighted Jaccard
func Preset(name string) (Config, error) {
	switch name {
	case "brightkite":
		return Config{
			Name: "brightkite", Seed: 101, N: 1200,
			AvgDegree: 6.7, HubCount: 2, HubDegree: 50,
			NumCommunities: 24, CommunityMin: 10, CommunityMax: 22,
			IntraProb: 0.72, OverlapSize: 4,
			Kind: attr.KindGeo,
			Area: 800, Cities: 7, CitySigma: 18, CommunitySigma: 4.5,
			DefaultR: 10,
		}, nil
	case "gowalla":
		return Config{
			Name: "gowalla", Seed: 202, N: 2000,
			AvgDegree: 4.7, HubCount: 3, HubDegree: 100,
			NumCommunities: 34, CommunityMin: 12, CommunityMax: 26,
			IntraProb: 0.72, OverlapSize: 5,
			Kind: attr.KindGeo,
			Area: 1000, Cities: 10, CitySigma: 22, CommunitySigma: 5,
			DefaultR: 10,
		}, nil
	case "dblp":
		return Config{
			Name: "dblp", Seed: 303, N: 4000,
			AvgDegree: 8.3, HubCount: 4, HubDegree: 80,
			NumCommunities: 60, CommunityMin: 16, CommunityMax: 40,
			IntraProb: 0.65, OverlapSize: 4,
			Kind:  attr.KindWeighted,
			Vocab: 600, TopicWords: 15, WordsPerVertex: 12,
			NoiseFrac: 0.22, MaxWeight: 8,
			DefaultPermille: 3,
		}, nil
	case "pokec":
		return Config{
			Name: "pokec", Seed: 404, N: 4000,
			AvgDegree: 10.2, HubCount: 4, HubDegree: 120,
			NumCommunities: 50, CommunityMin: 14, CommunityMax: 34,
			IntraProb: 0.7, OverlapSize: 4,
			Kind:  attr.KindWeighted,
			Vocab: 500, TopicWords: 12, WordsPerVertex: 10,
			NoiseFrac: 0.25, MaxWeight: 6,
			DefaultPermille: 5,
		}, nil
	default:
		return Config{}, fmt.Errorf("dataset: unknown preset %q (want brightkite, gowalla, dblp or pokec)", name)
	}
}

// PresetNames lists the available presets in Table 3 order.
func PresetNames() []string {
	return []string{"brightkite", "gowalla", "dblp", "pokec"}
}

// Load generates the dataset for a named preset.
func Load(name string) (*Dataset, error) {
	cfg, err := Preset(name)
	if err != nil {
		return nil, err
	}
	return Generate(cfg)
}

// CoauthorCase hand-builds the Figure 5(a) analogue: two dense research
// groups ("EBI" and "Wellcome Trust") sharing exactly one author, on a
// weighted-keyword co-author graph. With k=6 and threshold r≈0.25 the
// bridge author belongs to both maximal (k,r)-cores while the union is
// not a core (cross-group research interests are dissimilar). The
// returned k and r reproduce the case study.
func CoauthorCase() (d *Dataset, k int, r float64) { //nolint:gocyclo
	rng := rand.New(rand.NewSource(55))
	const (
		groupA  = 14
		groupB  = 12
		nOthers = 60
	)
	n := groupA + groupB - 1 + nOthers // the bridge author is shared
	bridge := int32(0)
	a := make([]int32, 0, groupA)
	bGrp := make([]int32, 0, groupB)
	a = append(a, bridge)
	bGrp = append(bGrp, bridge)
	for i := 1; i < groupA; i++ {
		a = append(a, int32(i))
	}
	for i := 0; i < groupB-1; i++ {
		bGrp = append(bGrp, int32(groupA+i))
	}

	gb := graph.NewBuilder(n)
	dense := func(members []int32, p float64) {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if rng.Float64() < p {
					gb.AddEdge(members[i], members[j])
				}
			}
		}
	}
	dense(a, 0.9)
	dense(bGrp, 0.9)
	// The bridge author has co-authored with much of both groups.
	for i := 1; i < 9; i++ {
		gb.AddEdge(bridge, a[i])
		gb.AddEdge(bridge, bGrp[i])
	}
	// Sparse background co-authorships.
	for i := 0; i < 2*nOthers; i++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u != v {
			gb.AddEdge(u, v)
		}
	}

	// Fixed weights keep the pairwise similarities exact: group members
	// score 1.0 with each other, 0.36 with the bridge author and 0 with
	// the other group, so r = 0.3 separates cleanly.
	ww := attr.NewWeighted(n)
	topicWords := func(base, count int) []attr.WeightedEntry {
		entries := make([]attr.WeightedEntry, 0, count)
		for w := 0; w < count; w++ {
			entries = append(entries, attr.WeightedEntry{
				Key:    int32(base + w),
				Weight: 2,
			})
		}
		return entries
	}
	for _, v := range a {
		if v == bridge {
			continue
		}
		ww.SetVertex(v, topicWords(0, 16)) // bioinformatics venues
	}
	for _, v := range bGrp {
		if v == bridge {
			continue
		}
		ww.SetVertex(v, topicWords(100, 16)) // genetics venues
	}
	// The bridge author publishes in both areas.
	ww.SetVertex(bridge, append(topicWords(0, 9), topicWords(100, 9)...))
	for i := groupA + groupB - 1; i < n; i++ {
		ww.SetVertex(int32(i), topicWords(200+10*rng.Intn(5), 8))
	}

	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	sort.Slice(bGrp, func(i, j int) bool { return bGrp[i] < bGrp[j] })
	d = &Dataset{
		Name:        "coauthor-case",
		Graph:       gb.Build(),
		Kind:        attr.KindWeighted,
		Weighted:    ww,
		Communities: [][]int32{a, bGrp},
	}
	return d, 6, 0.3
}

// GeosocialCase hand-builds the Figure 6 analogue: one structurally
// connected k-core of Gowalla-style users that splits into two maximal
// (k,r)-cores 40km apart when r = 10km.
func GeosocialCase() (d *Dataset, k int, r float64) {
	rng := rand.New(rand.NewSource(66))
	const (
		groupSize = 15
		nOthers   = 50
	)
	n := 2*groupSize + nOthers
	gb := graph.NewBuilder(n)
	groupA := make([]int32, groupSize)
	groupB := make([]int32, groupSize)
	for i := 0; i < groupSize; i++ {
		groupA[i] = int32(i)
		groupB[i] = int32(groupSize + i)
	}
	dense := func(members []int32, p float64) {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if rng.Float64() < p {
					gb.AddEdge(members[i], members[j])
				}
			}
		}
	}
	dense(groupA, 0.9)
	dense(groupB, 0.9)
	// Cross-group friendships keep the union one structural k-core.
	for i := 0; i < 3*groupSize; i++ {
		gb.AddEdge(groupA[rng.Intn(groupSize)], groupB[rng.Intn(groupSize)])
	}
	for i := 0; i < 2*nOthers; i++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u != v {
			gb.AddEdge(u, v)
		}
	}

	geo := attr.NewGeo(n)
	place := func(members []int32, cx, cy float64) {
		for _, v := range members {
			// Spread well below r/2 so every intra-group pair stays
			// within the 10km threshold.
			geo.SetVertex(v, attr.Point{
				X: cx + rng.NormFloat64()*1.2,
				Y: cy + rng.NormFloat64()*1.2,
			})
		}
	}
	place(groupA, 0, 0)  // "Austin"
	place(groupB, 40, 0) // a city 40km away
	for i := 2 * groupSize; i < n; i++ {
		geo.SetVertex(int32(i), attr.Point{
			X: rng.Float64()*400 - 200,
			Y: rng.Float64()*400 - 200,
		})
	}
	d = &Dataset{
		Name:        "geosocial-case",
		Graph:       gb.Build(),
		Kind:        attr.KindGeo,
		Geo:         geo,
		Communities: [][]int32{groupA, groupB},
	}
	return d, 10, 10
}
