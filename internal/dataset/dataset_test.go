package dataset

import (
	"bytes"
	"math"
	"testing"

	"krcore/internal/attr"
	"krcore/internal/core"
)

func TestPresetsGenerate(t *testing.T) {
	for _, name := range PresetNames() {
		d, err := Load(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cfg, _ := Preset(name)
		if d.Graph.N() != cfg.N {
			t.Fatalf("%s: N = %d, want %d", name, d.Graph.N(), cfg.N)
		}
		// Average degree within 25% of the target (community edges can
		// overshoot slightly).
		got := d.Graph.AvgDegree()
		if got < cfg.AvgDegree*0.75 || got > cfg.AvgDegree*1.6 {
			t.Fatalf("%s: avg degree %.2f too far from target %.2f", name, got, cfg.AvgDegree)
		}
		// Hubs give a skewed dmax.
		if d.Graph.MaxDegree() < 3*int(cfg.AvgDegree) {
			t.Fatalf("%s: max degree %d not skewed", name, d.Graph.MaxDegree())
		}
		if len(d.Communities) == 0 {
			t.Fatalf("%s: no planted communities", name)
		}
	}
	if _, err := Load("nope"); err == nil {
		t.Fatal("unknown preset must fail")
	}
}

func TestPresetDefaults(t *testing.T) {
	for _, name := range PresetNames() {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		geo := cfg.Kind == attr.KindGeo
		if geo && (cfg.DefaultR <= 0 || cfg.DefaultPermille != 0) {
			t.Fatalf("%s: geo preset must declare DefaultR only, got r=%v p=%v",
				name, cfg.DefaultR, cfg.DefaultPermille)
		}
		if !geo && (cfg.DefaultPermille <= 0 || cfg.DefaultR != 0) {
			t.Fatalf("%s: keyword preset must declare DefaultPermille only, got r=%v p=%v",
				name, cfg.DefaultR, cfg.DefaultPermille)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg, _ := Preset("brightkite")
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.M() != b.Graph.M() || a.Graph.N() != b.Graph.N() {
		t.Fatal("same config must generate identical graphs")
	}
	for u := 0; u < a.Graph.N(); u++ {
		pa, pb := a.Geo.Vertex(int32(u)), b.Geo.Vertex(int32(u))
		if pa != pb {
			t.Fatalf("vertex %d placed differently: %v vs %v", u, pa, pb)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{N: 1}); err == nil {
		t.Fatal("N=1 must be rejected")
	}
	if _, err := Generate(Config{N: 10, CommunityMin: 5, CommunityMax: 3}); err == nil {
		t.Fatal("inverted community bounds must be rejected")
	}
}

func TestCommunitiesAreAttributeCoherent(t *testing.T) {
	d, err := Load("gowalla")
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := Preset("gowalla")
	// Members of one community must sit within a few sigma of each
	// other; vertices of different communities usually do not. The last
	// OverlapSize members are shared with (and placed at) the next
	// community, so only the exclusive members are checked.
	comm := d.Communities[0]
	own := comm[:len(comm)-cfg.OverlapSize]
	for i := 1; i < len(own); i++ {
		dist := math.Sqrt(d.Geo.Distance2(own[0], own[i]))
		if dist > 12*cfg.CommunitySigma {
			t.Fatalf("community member %d is %.1fkm from member 0", i, dist)
		}
	}
}

func TestPresetsContainKRCores(t *testing.T) {
	// The generated datasets must actually contain (k,r)-cores at the
	// paper's parameter ranges, or every experiment would be vacuous.
	d, err := Load("gowalla")
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Enumerate(d.Graph, core.Params{K: 5, Oracle: d.Oracle(100)}, core.EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut || len(res.Cores) == 0 {
		t.Fatalf("gowalla k=5 r=100km: %d cores, timedOut=%v", len(res.Cores), res.TimedOut)
	}
}

func TestTopPermilleThresholdOnDBLP(t *testing.T) {
	d, err := Load("dblp")
	if err != nil {
		t.Fatal(err)
	}
	r3 := d.TopPermille(3)
	r15 := d.TopPermille(15)
	if !(r3 > r15) {
		t.Fatalf("top 3 permille threshold %v must exceed top 15 permille %v", r3, r15)
	}
	if r3 <= 0 || r3 > 1 {
		t.Fatalf("top 3 permille threshold %v out of range", r3)
	}
}

func TestSaveReadRoundTrip(t *testing.T) {
	for _, name := range []string{"brightkite", "dblp"} {
		d, err := Load(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := d.Save(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		if got.Name != d.Name || got.Kind != d.Kind ||
			got.Graph.N() != d.Graph.N() || got.Graph.M() != d.Graph.M() {
			t.Fatalf("%s: round trip mismatch", name)
		}
		// Attributes survive: spot-check pairwise similarity scores.
		m1, m2 := d.Metric(), got.Metric()
		for u := int32(0); u < 20; u++ {
			if math.Abs(m1.Score(u, u+1)-m2.Score(u, u+1)) > 1e-9 {
				t.Fatalf("%s: score(%d,%d) changed after round trip", name, u, u+1)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"x 1 2 3\n",
		"d name 0 2\nv 5 1 2\n", // vertex id out of range
		"d name 0 2\ne 0 9\n",   // edge out of range
		"d name 99 2\n",         // unknown kind
		"d name 1 2\nv 0 1:x\n", // bad weight
		"d name 2 2\nv 0 1\n",   // geo vertex needs two coords
		"d name 0 2\nq what\n",  // unknown record
	}
	for i, c := range cases {
		if _, err := Read(bytes.NewReader([]byte(c))); err == nil {
			t.Fatalf("case %d (%q) should fail", i, c)
		}
	}
}

func TestCaseStudies(t *testing.T) {
	d, k, r := CoauthorCase()
	if d.Kind != attr.KindWeighted || len(d.Communities) != 2 {
		t.Fatal("coauthor case malformed")
	}
	res, err := core.Enumerate(d.Graph, core.Params{K: k, Oracle: d.Oracle(r)}, core.EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 2 {
		t.Fatalf("coauthor case: %d maximal cores, want 2 (got %v)", len(res.Cores), res.Cores)
	}
	// The bridge author 0 appears in both.
	for i, c := range res.Cores {
		if c[0] != 0 {
			t.Fatalf("core %d does not contain the bridge author: %v", i, c)
		}
	}

	g, k2, r2 := GeosocialCase()
	res2, err := core.Enumerate(g.Graph, core.Params{K: k2, Oracle: g.Oracle(r2)}, core.EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Cores) != 2 {
		t.Fatalf("geosocial case: %d maximal cores, want 2", len(res2.Cores))
	}
	// Without the similarity constraint the two groups form one k-core:
	// with a huge r the union merges into one core.
	res3, err := core.Enumerate(g.Graph, core.Params{K: k2, Oracle: g.Oracle(1e6)}, core.EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Cores) != 1 {
		t.Fatalf("geosocial case with r=inf: %d cores, want 1", len(res3.Cores))
	}
}
