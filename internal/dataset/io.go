package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"krcore/internal/attr"
	"krcore/internal/graph"
)

// Open resolves the CLI dataset-source convention shared by the
// commands: exactly one of preset (a built-in name for Load) or file
// (a path written by datagen, for Read) must be given.
func Open(preset, file string) (*Dataset, error) {
	switch {
	case preset != "" && file != "":
		return nil, fmt.Errorf("use either -data or -load, not both")
	case preset != "":
		return Load(preset)
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return Read(f)
	default:
		return nil, fmt.Errorf("need -data <preset> or -load <file>")
	}
}

// Save writes the dataset in a line-oriented text format:
//
//	d <name> <kind> <n>
//	v <id> <attributes>      one line per vertex
//	e <u> <v>                one line per edge
//
// Geo attributes are "x y"; keyword attributes are space-separated ids;
// weighted attributes are "key:weight" pairs.
func (d *Dataset) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	n := d.Graph.N()
	if _, err := fmt.Fprintf(bw, "d %s %d %d\n", d.Name, int(d.Kind), n); err != nil {
		return err
	}
	for u := 0; u < n; u++ {
		fmt.Fprintf(bw, "v %d", u)
		switch d.Kind {
		case attr.KindGeo:
			p := d.Geo.Vertex(int32(u))
			fmt.Fprintf(bw, " %g %g", p.X, p.Y)
		case attr.KindWeighted:
			for _, e := range d.Weighted.Vertex(int32(u)) {
				fmt.Fprintf(bw, " %d:%g", e.Key, e.Weight)
			}
		default:
			for _, k := range d.Keywords.Vertex(int32(u)) {
				fmt.Fprintf(bw, " %d", k)
			}
		}
		fmt.Fprintln(bw)
	}
	var saveErr error
	d.Graph.Edges(func(u, v int32) {
		if saveErr == nil {
			_, saveErr = fmt.Fprintf(bw, "e %d %d\n", u, v)
		}
	})
	if saveErr != nil {
		return saveErr
	}
	return bw.Flush()
}

// Read parses a dataset previously written by Save. Planted community
// information is not serialised.
func Read(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("dataset: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 4 || header[0] != "d" {
		return nil, fmt.Errorf("dataset: bad header %q", sc.Text())
	}
	kindInt, err := strconv.Atoi(header[2])
	if err != nil {
		return nil, fmt.Errorf("dataset: bad kind: %v", err)
	}
	n, err := strconv.Atoi(header[3])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("dataset: bad vertex count %q", header[3])
	}
	d := &Dataset{Name: header[1], Kind: attr.Kind(kindInt)}
	switch d.Kind {
	case attr.KindGeo:
		d.Geo = attr.NewGeo(n)
	case attr.KindWeighted:
		d.Weighted = attr.NewWeighted(n)
	case attr.KindKeywords:
		d.Keywords = attr.NewKeywords(n)
	default:
		return nil, fmt.Errorf("dataset: unknown kind %d", kindInt)
	}
	b := graph.NewBuilder(n)
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "v":
			if err := d.parseVertex(fields[1:], n); err != nil {
				return nil, fmt.Errorf("dataset: line %d: %v", line, err)
			}
		case "e":
			if len(fields) != 3 {
				return nil, fmt.Errorf("dataset: line %d: bad edge %q", line, sc.Text())
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || u < 0 || u >= n || v < 0 || v >= n {
				return nil, fmt.Errorf("dataset: line %d: bad edge %q", line, sc.Text())
			}
			b.AddEdge(int32(u), int32(v))
		default:
			return nil, fmt.Errorf("dataset: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	d.Graph = b.Build()
	return d, nil
}

func (d *Dataset) parseVertex(fields []string, n int) error {
	if len(fields) < 1 {
		return fmt.Errorf("missing vertex id")
	}
	id, err := strconv.Atoi(fields[0])
	if err != nil || id < 0 || id >= n {
		return fmt.Errorf("bad vertex id %q", fields[0])
	}
	rest := fields[1:]
	switch d.Kind {
	case attr.KindGeo:
		if len(rest) != 2 {
			return fmt.Errorf("geo vertex needs x y, got %d fields", len(rest))
		}
		x, err1 := strconv.ParseFloat(rest[0], 64)
		y, err2 := strconv.ParseFloat(rest[1], 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad coordinates %v", rest)
		}
		d.Geo.SetVertex(int32(id), attr.Point{X: x, Y: y})
	case attr.KindWeighted:
		entries := make([]attr.WeightedEntry, 0, len(rest))
		for _, f := range rest {
			kv := strings.SplitN(f, ":", 2)
			if len(kv) != 2 {
				return fmt.Errorf("bad weighted entry %q", f)
			}
			k, err1 := strconv.Atoi(kv[0])
			w, err2 := strconv.ParseFloat(kv[1], 64)
			if err1 != nil || err2 != nil {
				return fmt.Errorf("bad weighted entry %q", f)
			}
			entries = append(entries, attr.WeightedEntry{Key: int32(k), Weight: w})
		}
		d.Weighted.SetVertex(int32(id), entries)
	default:
		words := make([]int32, 0, len(rest))
		for _, f := range rest {
			k, err := strconv.Atoi(f)
			if err != nil {
				return fmt.Errorf("bad keyword %q", f)
			}
			words = append(words, int32(k))
		}
		d.Keywords.SetVertex(int32(id), words)
	}
	return nil
}
