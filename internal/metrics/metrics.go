// Package metrics is the self-contained observability substrate of the
// serving layer: lock-free counters, gauges and fixed-bucket latency
// histograms, collected in a Registry that renders the Prometheus text
// exposition format (version 0.0.4) — no external dependencies, so the
// daemon's /metrics endpoint costs nothing to ship and nothing to
// scrape.
//
// Hot-path instruments (Counter, Gauge, Histogram and their labelled
// Vec variants) are updated with single atomic operations; label
// resolution (Vec.With) takes a read lock only on the child-map lookup
// and callers on a steady label set should cache the returned child.
// Pull-style series — values that live elsewhere, like engine cache
// counters or runtime stats — register a SampleFunc callback gathered
// at scrape time.
//
// Histograms estimate quantiles the standard Prometheus way: the
// observation count per fixed bucket, with linear interpolation inside
// the bucket holding the requested rank. The estimate's error is
// bounded by the bucket width around the true quantile, which is why
// the default latency buckets grow geometrically — constant relative
// error across six orders of magnitude.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a pull-style SampleFunc family for the TYPE line.
type Kind int

const (
	// KindCounter renders as a Prometheus counter (monotone total).
	KindCounter Kind = iota
	// KindGauge renders as a Prometheus gauge (point-in-time value).
	KindGauge
)

func (k Kind) String() string {
	if k == KindCounter {
		return "counter"
	}
	return "gauge"
}

// Sample is one series of a pull-style family: its label values (in
// the family's label-name order) and current value.
type Sample struct {
	Labels []string
	Value  float64
}

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta, which must be >= 0 for the series to stay a valid
// Prometheus counter.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current total.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution of float64 observations
// (latencies in seconds, batch sizes, ...). Observations are two
// atomic operations; there is no per-observation allocation.
type Histogram struct {
	bounds []float64       // strictly increasing finite upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // IEEE-754 bits of the observation sum
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("metrics: histogram bounds must be finite")
		}
		if i > 0 && b <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution: it finds the bucket holding the rank q·count and
// interpolates linearly inside it, exactly as Prometheus's
// histogram_quantile does. Ranks landing in the +Inf overflow bucket
// return the largest finite bound (the estimate cannot exceed the
// instrumented range); an empty histogram returns NaN.
func (h *Histogram) Quantile(q float64) float64 {
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(h.bounds) {
			return h.bounds[len(h.bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = h.bounds[i-1]
		}
		return lower + (h.bounds[i]-lower)*(rank-prev)/float64(c)
	}
	return h.bounds[len(h.bounds)-1]
}

// ExponentialBuckets returns count bounds starting at start, each
// factor times the previous — the right shape for latency, where
// relative error matters at every magnitude.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("metrics: ExponentialBuckets needs start > 0, factor > 1, count >= 1")
	}
	b := make([]float64, count)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// LinearBuckets returns count bounds starting at start, each width
// apart.
func LinearBuckets(start, width float64, count int) []float64 {
	if width <= 0 || count < 1 {
		panic("metrics: LinearBuckets needs width > 0, count >= 1")
	}
	b := make([]float64, count)
	for i := range b {
		b[i] = start
		start += width
	}
	return b
}

// DefLatencyBuckets spans 50µs to ~27s geometrically (×2 per bucket,
// 20 buckets): sub-millisecond cache hits, multi-second cold searches
// and everything between resolve with ≤ 2× relative quantile error.
func DefLatencyBuckets() []float64 { return ExponentialBuckets(50e-6, 2, 20) }

// family is one named metric family in a registry.
type family struct {
	name string
	help string
	typ  string
	// collect gathers the family's rendered sample lines. It may take
	// family-internal locks but must not block on I/O: the registry
	// writes the lines to the scrape response only after collect
	// returns.
	collect func() []string
}

// Registry holds metric families and renders them in registration
// order. All methods are safe for concurrent use; registration is
// expected at construction time (duplicate or invalid names panic —
// they are programming errors, not runtime conditions).
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]bool{}}
}

func (r *Registry) register(name, help, typ string, collect func() []string) {
	checkName(name, "metric")
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[name] {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	r.byName[name] = true
	r.families = append(r.families, &family{name: name, help: help, typ: typ, collect: collect})
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", func() []string {
		return []string{sampleLine(name, "", c.Value())}
	})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", func() []string {
		return []string{sampleLine(name, "", g.Value())}
	})
	return g
}

// Histogram registers and returns a histogram with the given bucket
// upper bounds (strictly increasing; a +Inf overflow bucket is
// implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.register(name, help, "histogram", func() []string {
		return renderHistogram(name, "", h)
	})
	return h
}

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	v := &CounterVec{vec: newVec(labelNames)}
	r.register(name, help, "counter", func() []string {
		var lines []string
		for _, ch := range v.vec.children() {
			lines = append(lines, sampleLine(name, ch.labels, ch.metric.(*Counter).Value()))
		}
		return lines
	})
	return v
}

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	v := &GaugeVec{vec: newVec(labelNames)}
	r.register(name, help, "gauge", func() []string {
		var lines []string
		for _, ch := range v.vec.children() {
			lines = append(lines, sampleLine(name, ch.labels, ch.metric.(*Gauge).Value()))
		}
		return lines
	})
	return v
}

// HistogramVec registers a labelled histogram family; every child
// shares the same bucket bounds.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	newHistogram(bounds) // validate once, loudly, at registration
	v := &HistogramVec{vec: newVec(labelNames), bounds: bounds}
	r.register(name, help, "histogram", func() []string {
		var lines []string
		for _, ch := range v.vec.children() {
			lines = append(lines, renderHistogram(name, ch.labels, ch.metric.(*Histogram))...)
		}
		return lines
	})
	return v
}

// SampleFunc registers a pull-style family: fn is called at scrape
// time and returns one Sample per series, each with len(labelNames)
// label values. fn must not block on I/O and must tolerate concurrent
// calls.
func (r *Registry) SampleFunc(name, help string, kind Kind, labelNames []string, fn func() []Sample) {
	for _, l := range labelNames {
		checkName(l, "label")
	}
	names := append([]string(nil), labelNames...)
	r.register(name, help, kind.String(), func() []string {
		samples := fn()
		lines := make([]string, 0, len(samples))
		for _, s := range samples {
			if len(s.Labels) != len(names) {
				panic(fmt.Sprintf("metrics: %s sample has %d label values, family declares %d", name, len(s.Labels), len(names)))
			}
			lines = append(lines, name+labelBlock(renderLabels(names, s.Labels))+" "+formatFloat(s.Value))
		}
		return lines
	})
}

// WriteText renders every family in the Prometheus text exposition
// format. Samples are gathered before anything is written, so no
// registry or family lock is held while w (typically a network
// response) blocks.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, line := range f.collect() {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// TextContentType is the Content-Type of the rendered exposition.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// vec is the shared child-map machinery of the labelled families.
type vec struct {
	labelNames []string
	mu         sync.RWMutex
	kids       map[string]any
}

func newVec(labelNames []string) *vec {
	if len(labelNames) == 0 {
		panic("metrics: a Vec needs at least one label name")
	}
	for _, l := range labelNames {
		checkName(l, "label")
	}
	return &vec{labelNames: append([]string(nil), labelNames...), kids: map[string]any{}}
}

// with returns the child for the label values, creating it with mk on
// first use.
func (v *vec) with(values []string, mk func() any) any {
	if len(values) != len(v.labelNames) {
		panic(fmt.Sprintf("metrics: got %d label values, want %d", len(values), len(v.labelNames)))
	}
	key := strings.Join(values, "\xff")
	v.mu.RLock()
	m, ok := v.kids[key]
	v.mu.RUnlock()
	if ok {
		return m
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if m, ok := v.kids[key]; ok {
		return m
	}
	// Every mk in this package is a plain struct constructor; nothing
	// caller-supplied crosses the package boundary, so running it under
	// v.mu cannot reach I/O.
	m = mk() //krlint:ignore lockheld mk is a package-local pure constructor
	v.kids[key] = m
	return m
}

// child pairs a rendered label block body with its metric, for
// deterministic (label-sorted) scrape output.
type child struct {
	labels string
	metric any
}

func (v *vec) children() []child {
	v.mu.RLock()
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]child, 0, len(keys))
	for _, k := range keys {
		out = append(out, child{
			labels: renderLabels(v.labelNames, strings.Split(k, "\xff")),
			metric: v.kids[k],
		})
	}
	v.mu.RUnlock()
	return out
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct{ vec *vec }

// With returns the counter for the given label values (in the
// family's label-name order), creating it on first use. Callers on a
// hot path with a fixed label set should cache the result.
func (v *CounterVec) With(values ...string) *Counter {
	return v.vec.with(values, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct{ vec *vec }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.vec.with(values, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a family of histograms distinguished by label
// values.
type HistogramVec struct {
	vec    *vec
	bounds []float64
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.vec.with(values, func() any { return newHistogram(v.bounds) }).(*Histogram)
}

// renderLabels renders `a="x",b="y"` (no braces) with escaped values.
func renderLabels(names, values []string) string {
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeValue(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// labelBlock wraps a non-empty label body in braces.
func labelBlock(body string) string {
	if body == "" {
		return ""
	}
	return "{" + body + "}"
}

func sampleLine(name, labels string, v int64) string {
	return name + labelBlock(labels) + " " + strconv.FormatInt(v, 10)
}

// renderHistogram emits the cumulative _bucket series plus _sum and
// _count, merging the family labels with le.
func renderHistogram(name, labels string, h *Histogram) []string {
	lines := make([]string, 0, len(h.bounds)+3)
	var cum uint64
	withLE := func(le string) string {
		body := labels
		if body != "" {
			body += ","
		}
		return labelBlock(body + `le="` + le + `"`)
	}
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		lines = append(lines, name+"_bucket"+withLE(formatFloat(bound))+" "+strconv.FormatUint(cum, 10))
	}
	cum += h.counts[len(h.bounds)].Load()
	lines = append(lines,
		name+"_bucket"+withLE("+Inf")+" "+strconv.FormatUint(cum, 10),
		name+"_sum"+labelBlock(labels)+" "+formatFloat(h.Sum()),
		name+"_count"+labelBlock(labels)+" "+strconv.FormatUint(cum, 10),
	)
	return lines
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// checkName validates a metric or label name against the Prometheus
// grammar.
func checkName(s, what string) {
	if s == "" {
		panic("metrics: empty " + what + " name")
	}
	for i, c := range s {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(what == "metric" && c == ':') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("metrics: invalid %s name %q", what, s))
		}
	}
}
