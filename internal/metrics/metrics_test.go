package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "operations")
	g := r.Gauge("test_depth", "queue depth")
	c.Add(41)
	c.Inc()
	g.Set(7)
	g.Add(-3)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_ops_total operations
# TYPE test_ops_total counter
test_ops_total 42
# HELP test_depth queue depth
# TYPE test_depth gauge
test_depth 4
`
	if b.String() != want {
		t.Fatalf("rendered:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestVecLabelsAndEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_errs_total", "errors", "endpoint", "cause")
	v.With("enumerate", "timeout").Add(3)
	v.With("update", `quo"te\and`+"\nnewline").Inc()
	if v.With("enumerate", "timeout") != v.With("enumerate", "timeout") {
		t.Fatal("With is not caching children")
	}

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_errs_total{endpoint="enumerate",cause="timeout"} 3`,
		`test_errs_total{endpoint="update",cause="quo\"te\\and\nnewline"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// TestHistogramQuantileUniform checks the interpolation against a
// known uniform distribution: with fine buckets, p50/p99/p999 must
// land within one bucket width of the true quantiles.
func TestHistogramQuantileUniform(t *testing.T) {
	h := newHistogram(LinearBuckets(0.01, 0.01, 100)) // 0.01 .. 1.00
	const n = 100000
	for i := 0; i < n; i++ {
		h.Observe((float64(i) + 0.5) / n)
	}
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	if s := h.Sum(); math.Abs(s-n/2) > 1 {
		t.Fatalf("sum = %f, want ~%d", s, n/2)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 0.5}, {0.99, 0.99}, {0.999, 0.999}, {0.25, 0.25},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > 0.011 {
			t.Errorf("Quantile(%g) = %g, want %g ± one bucket width", tc.q, got, tc.want)
		}
	}
}

// TestHistogramQuantileExponential cross-checks against the empirical
// quantiles of a deterministic exponential-ish sample with geometric
// buckets: the relative error must stay within one bucket factor.
func TestHistogramQuantileExponential(t *testing.T) {
	h := newHistogram(ExponentialBuckets(1e-4, 1.5, 40))
	rng := rand.New(rand.NewSource(8))
	var xs []float64
	for i := 0; i < 50000; i++ {
		x := rng.ExpFloat64() * 2e-3 // mean 2ms
		xs = append(xs, x)
		h.Observe(x)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := sorted[int(q*float64(len(sorted)))-1]
		got := h.Quantile(q)
		if got < want/1.5 || got > want*1.5 {
			t.Errorf("Quantile(%g) = %g, empirical %g: outside one bucket factor", q, got, want)
		}
	}
}

// TestHistogramQuantileEdges pins the documented estimator semantics:
// point masses interpolate inside their bucket, overflow observations
// report the largest finite bound, empties are NaN.
func TestHistogramQuantileEdges(t *testing.T) {
	h := newHistogram([]float64{0.5, 1, 2})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
	for i := 0; i < 100; i++ {
		h.Observe(0.9) // all mass in the (0.5, 1] bucket
	}
	if got := h.Quantile(0.5); got != 0.75 {
		t.Fatalf("point-mass p50 = %g, want the bucket midpoint 0.75", got)
	}
	if got := h.Quantile(1); got != 1.0 {
		t.Fatalf("point-mass p100 = %g, want the bucket upper bound 1", got)
	}

	over := newHistogram([]float64{0.001, 0.01})
	over.Observe(5)
	over.Observe(7)
	if got := over.Quantile(0.99); got != 0.01 {
		t.Fatalf("overflow quantile = %g, want the largest finite bound 0.01", got)
	}
}

func TestHistogramRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(10)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_seconds latency
# TYPE test_seconds histogram
test_seconds_bucket{le="0.1"} 1
test_seconds_bucket{le="1"} 3
test_seconds_bucket{le="+Inf"} 4
test_seconds_sum 11.05
test_seconds_count 4
`
	if b.String() != want {
		t.Fatalf("rendered:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestHistogramVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("test_req_seconds", "per endpoint", []float64{1}, "endpoint")
	v.With("enumerate").Observe(0.5)
	v.With("maximum").Observe(2)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_req_seconds_bucket{endpoint="enumerate",le="1"} 1`,
		`test_req_seconds_bucket{endpoint="maximum",le="+Inf"} 1`,
		`test_req_seconds_count{endpoint="maximum"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSampleFunc(t *testing.T) {
	r := NewRegistry()
	r.SampleFunc("test_cache_hits_total", "per setting", KindCounter, []string{"k", "r"}, func() []Sample {
		return []Sample{
			{Labels: []string{"5", "10"}, Value: 12},
			{Labels: []string{"6", "12.5"}, Value: 3},
		}
	})
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE test_cache_hits_total counter",
		`test_cache_hits_total{k="5",r="10"} 12`,
		`test_cache_hits_total{k="6",r="12.5"} 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// TestConcurrentInstruments hammers every instrument kind from many
// goroutines (run under -race in CI) and checks the totals are exact:
// lock-free must not mean lossy.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "x")
	g := r.Gauge("test_g", "x")
	h := r.Histogram("test_h", "x", DefLatencyBuckets())
	v := r.CounterVec("test_v_total", "x", "who")

	const workers, per = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lab := []string{"a", "b"}[w%2]
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(0.001 * float64(i%10))
				v.With(lab).Inc()
				if i%100 == 0 {
					var b strings.Builder
					_ = r.WriteText(&b) // scrape concurrently with updates
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if got := v.With("a").Value() + v.With("b").Value(); got != workers*per {
		t.Fatalf("vec total = %d, want %d", got, workers*per)
	}
}

func TestRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x")
	for name, fn := range map[string]func(){
		"duplicate name": func() { r.Gauge("dup_total", "x") },
		"invalid name":   func() { r.Counter("bad-name", "x") },
		"empty bounds":   func() { r.Histogram("h_total", "x", nil) },
		"bad bounds":     func() { r.Histogram("h2_total", "x", []float64{2, 1}) },
		"no vec labels":  func() { r.CounterVec("v_total", "x") },
		"bad label":      func() { r.CounterVec("v2_total", "x", "le gal") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestVecArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_total", "x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	v.With("only-one")
}
