// Package clique enumerates maximal cliques with the Bron–Kerbosch
// algorithm using pivoting (Tomita-style pivot selection).
//
// The Clique+ baseline of Section 3 enumerates maximal cliques of the
// similarity graph of each candidate component and intersects them with
// the structure constraint; this package provides the clique enumeration
// half, replacing the third-party code the paper downloaded.
package clique

import (
	"krcore/internal/bitset"
	"krcore/internal/graph"
)

// MaximalCliques calls emit once per maximal clique of g, with vertices
// sorted ascending. The emitted slice is reused between calls; callers
// that retain cliques must copy. If emit returns false the enumeration
// stops early.
func MaximalCliques(g *graph.Graph, emit func(clique []int32) bool) {
	n := g.N()
	if n == 0 {
		return
	}
	adj := make([]*bitset.Set, n)
	for u := 0; u < n; u++ {
		adj[u] = bitset.New(n)
		for _, v := range g.Neighbors(int32(u)) {
			adj[u].Set(int(v))
		}
	}
	p := bitset.New(n)
	for u := 0; u < n; u++ {
		p.Set(u)
	}
	x := bitset.New(n)
	e := &enumerator{g: g, adj: adj, emit: emit}
	e.run(nil, p, x)
}

type enumerator struct {
	g       *graph.Graph
	adj     []*bitset.Set
	emit    func([]int32) bool
	stopped bool
	buf     []int32
}

// run implements Bron–Kerbosch with pivoting on (R=r, P=p, X=x).
// p and x are consumed destructively by the caller's frame; clones are
// made for recursion.
func (e *enumerator) run(r []int32, p, x *bitset.Set) {
	if e.stopped {
		return
	}
	if !p.Any() && !x.Any() {
		e.buf = append(e.buf[:0], r...)
		if !e.emit(e.buf) {
			e.stopped = true
		}
		return
	}
	// Pivot: vertex of P ∪ X with the most neighbours in P.
	pivot, best := -1, -1
	choose := func(u int) {
		c := p.IntersectionCount(e.adj[u])
		if c > best {
			best = c
			pivot = u
		}
	}
	p.ForEach(choose)
	x.ForEach(choose)

	// Candidates: P \ N(pivot).
	cand := p.Clone()
	if pivot >= 0 {
		cand.AndNot(e.adj[pivot])
	}
	cand.ForEach(func(u int) {
		if e.stopped || !p.Test(u) {
			return
		}
		np := p.Clone()
		np.And(e.adj[u])
		nx := x.Clone()
		nx.And(e.adj[u])
		e.run(append(r, int32(u)), np, nx)
		p.Clear(u)
		x.Set(u)
	})
}

// MaxCliqueSize returns the size of the maximum clique of g (0 for an
// empty graph). Exponential in the worst case; used only in tests and on
// small candidate sets.
func MaxCliqueSize(g *graph.Graph) int {
	best := 0
	MaximalCliques(g, func(c []int32) bool {
		if len(c) > best {
			best = len(c)
		}
		return true
	})
	return best
}
