package clique

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"krcore/internal/graph"
)

func completeGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.Build()
}

func collect(g *graph.Graph) [][]int32 {
	var out [][]int32
	MaximalCliques(g, func(c []int32) bool {
		cc := make([]int32, len(c))
		copy(cc, c)
		sort.Slice(cc, func(i, j int) bool { return cc[i] < cc[j] })
		out = append(out, cc)
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

func TestCompleteGraphSingleClique(t *testing.T) {
	cs := collect(completeGraph(5))
	if len(cs) != 1 || len(cs[0]) != 5 {
		t.Fatalf("complete graph cliques = %v", cs)
	}
	if MaxCliqueSize(completeGraph(7)) != 7 {
		t.Fatal("MaxCliqueSize of K7 must be 7")
	}
}

func TestTriangleWithTail(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	cs := collect(b.Build())
	if len(cs) != 2 {
		t.Fatalf("got %d cliques, want 2: %v", len(cs), cs)
	}
	// {0,1,2} and {2,3}
	if len(cs[0]) != 3 || len(cs[1]) != 2 {
		t.Fatalf("cliques = %v", cs)
	}
}

func TestEdgelessGraph(t *testing.T) {
	g := graph.NewBuilder(3).Build()
	cs := collect(g)
	// Every isolated vertex is a maximal clique of size 1.
	if len(cs) != 3 {
		t.Fatalf("got %v, want three singleton cliques", cs)
	}
	if g0 := graph.NewBuilder(0).Build(); MaxCliqueSize(g0) != 0 {
		t.Fatal("empty graph max clique must be 0")
	}
}

func TestEarlyStop(t *testing.T) {
	count := 0
	MaximalCliques(completeGraph(3), func(c []int32) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop emitted %d cliques, want 1", count)
	}
	// Disconnected graph: stop after first of several cliques.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.AddEdge(4, 5)
	count = 0
	MaximalCliques(b.Build(), func(c []int32) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop after 2 emitted %d", count)
	}
}

// bruteMaximalCliques enumerates maximal cliques by subset enumeration
// (n <= ~16).
func bruteMaximalCliques(g *graph.Graph) [][]int32 {
	n := g.N()
	isClique := func(mask int) bool {
		for u := 0; u < n; u++ {
			if mask&(1<<u) == 0 {
				continue
			}
			for v := u + 1; v < n; v++ {
				if mask&(1<<v) == 0 {
					continue
				}
				if !g.HasEdge(int32(u), int32(v)) {
					return false
				}
			}
		}
		return true
	}
	var cliques []int
	for mask := 1; mask < 1<<n; mask++ {
		if isClique(mask) {
			cliques = append(cliques, mask)
		}
	}
	var out [][]int32
	for _, m := range cliques {
		maximal := true
		for _, m2 := range cliques {
			if m2 != m && m2&m == m {
				maximal = false
				break
			}
		}
		if maximal {
			var c []int32
			for u := 0; u < n; u++ {
				if m&(1<<u) != 0 {
					c = append(c, int32(u))
				}
			}
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

func TestAgainstBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		b := graph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		got := collect(g)
		want := bruteMaximalCliques(g)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if len(got[i]) != len(want[i]) {
				return false
			}
			for k := range got[i] {
				if got[i][k] != want[i][k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
