// Package snapshot implements the versioned binary snapshot format
// that persists a serving engine's built state — graph, attribute
// store, per-threshold similarity indexes and filtered graphs, and
// prepared (k,r) candidate components — so a restarted process warm
// starts by reading it back instead of rebuilding everything from the
// raw graph.
//
// # Format
//
// A snapshot is a 16-byte header followed by length-prefixed sections:
//
//	header   magic [8]byte, format version u32, metric kind u8,
//	         reserved [3]byte (zero)
//	section  id u32, payload length u64, payload, CRC-32C(payload) u32
//
// Sections appear in a fixed order: attributes, graph, one threshold
// section per cached r (ascending), one prepared section per cached
// (k,r) (ascending by r then k), an optional dynamic section, and an
// end marker. All integers are little-endian; floats are IEEE-754 bit
// patterns. The encoding is canonical — writing a freshly decoded
// snapshot reproduces the input byte for byte — which is what the
// golden-file tests pin down.
//
// Every structural defect (bad magic, unsupported version, truncation,
// checksum mismatch, out-of-range vertex ids, sections out of order)
// is reported as a *FormatError wrapping a sentinel cause, so callers
// can both branch on the class of failure and print a precise
// diagnosis.
package snapshot

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"krcore/internal/attr"
	"krcore/internal/binenc"
	"krcore/internal/core"
	"krcore/internal/fsx"
	"krcore/internal/graph"
	"krcore/internal/similarity"
	"krcore/internal/simindex"
)

// magic identifies a snapshot stream. The 0x1a byte (ctrl-Z) stops
// accidental text-mode dumps early, PNG-style.
var magic = [8]byte{'k', 'r', 's', 'n', 'a', 'p', 0x1a, 0}

// Version is the current snapshot format version. Version 2 added the
// maintained per-vertex core numbers to each prepared section and four
// write-path counters to the dynamic section. Readers accept the
// current version and version 1 (core numbers are recomputed by linear
// peeling, the new counters start at zero); writers always emit the
// current version.
const Version = 2

// versionV1 is the previous format, still readable.
const versionV1 = 1

// Section identifiers.
const (
	secAttrs     uint32 = 1
	secGraph     uint32 = 2
	secThreshold uint32 = 3
	secPrepared  uint32 = 4
	secDynamic   uint32 = 5
	secEnd       uint32 = 6
)

// Sentinel causes wrapped by FormatError; test with errors.Is.
var (
	// ErrMagic marks input that is not a krcore snapshot at all.
	ErrMagic = errors.New("not a krcore snapshot (bad magic)")
	// ErrVersion marks a snapshot written by an unsupported format
	// version.
	ErrVersion = errors.New("unsupported snapshot format version")
	// ErrTruncated marks a snapshot that ends mid-structure.
	ErrTruncated = errors.New("snapshot truncated")
	// ErrChecksum marks a section whose payload fails its CRC.
	ErrChecksum = errors.New("section checksum mismatch")
	// ErrCorrupt marks a snapshot whose structure decodes but violates
	// the format's invariants (out-of-order sections, bad ranges,
	// inconsistent counts).
	ErrCorrupt = errors.New("snapshot corrupt")
)

// FormatError is the typed error every failed snapshot decode returns:
// the structural element being decoded and the underlying cause (one
// of the sentinel errors above, possibly annotated).
type FormatError struct {
	// Section names the structural element ("header", "graph",
	// "threshold 2", ...).
	Section string
	// Err is the underlying cause; errors.Is finds the sentinels
	// through it.
	Err error
}

// Error implements the error interface.
func (e *FormatError) Error() string { return fmt.Sprintf("snapshot: %s: %v", e.Section, e.Err) }

// Unwrap returns the underlying cause.
func (e *FormatError) Unwrap() error { return e.Err }

// formatErr builds a *FormatError wrapping cause, annotated with a
// detail message when given.
func formatErr(section string, cause error, detail string, args ...any) error {
	if detail != "" {
		cause = fmt.Errorf("%w: %s", cause, fmt.Sprintf(detail, args...))
	}
	return &FormatError{Section: section, Err: cause}
}

// IsMagic reports whether b starts with the snapshot magic, for
// callers sniffing a file that could be a snapshot or something else.
// Prefixes shorter than the magic report false.
func IsMagic(b []byte) bool {
	return len(b) >= len(magic) && bytes.Equal(b[:len(magic)], magic[:])
}

// castagnoli is the CRC-32C table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Threshold is the cached r-dependent state of one similarity
// threshold: the oracle (with its bulk index attached) and, unless the
// entry was built for oracle-only serving, the dissimilar-edge-filtered
// graph.
type Threshold struct {
	R      float64
	Oracle *similarity.Oracle
	// Filtered is nil for oracle-only entries (threshold cached, full
	// per-r build still lazy).
	Filtered *graph.Graph
}

// PreparedSetting is one cached (k,r) problem.
type PreparedSetting struct {
	K  int
	R  float64
	Pr *core.Prepared
}

// DynamicState carries the dynamic engine's update history: the
// journal offset (updates applied since construction) and the
// maintenance counters, so a recovered process resumes its journal at
// the right position and keeps coherent statistics.
type DynamicState struct {
	Updates           int64
	Batches           int64
	Version           int64
	IndexesKept       int64
	IndexesRebuilt    int64
	ComponentsReused  int64
	ComponentsRebuilt int64

	// Write-path counters added by format version 2; a v1 snapshot
	// decodes them as zero.
	GroupCommits       int64
	PatchesIncremental int64
	PatchesFull        int64
	CoreVisited        int64
}

// counters lists the dynamic counters in serialisation order for the
// given format version: the seven v1 counters, then the four added by
// v2.
func (d *DynamicState) counters(ver uint32) []*int64 {
	fields := []*int64{&d.Updates, &d.Batches, &d.Version,
		&d.IndexesKept, &d.IndexesRebuilt, &d.ComponentsReused, &d.ComponentsRebuilt}
	if ver >= 2 {
		fields = append(fields, &d.GroupCommits, &d.PatchesIncremental, &d.PatchesFull, &d.CoreVisited)
	}
	return fields
}

// EngineState is the serialisable form of a serving engine: the
// attributed graph plus every cache level worth persisting. Exactly
// one attribute store (matching Kind) is set. Dynamic is nil for
// static engines.
type EngineState struct {
	Kind     attr.Kind
	Geo      *attr.Geo
	Keywords *attr.Keywords
	Weighted *attr.Weighted

	Graph *graph.Graph

	Thresholds []Threshold
	Prepared   []PreparedSetting

	Dynamic *DynamicState
}

// Metric returns the similarity metric over the state's attribute
// store.
func (st *EngineState) Metric() (similarity.Metric, error) {
	switch st.Kind {
	case attr.KindGeo:
		if st.Geo == nil {
			return nil, errors.New("snapshot: geo state without geo store")
		}
		return similarity.Euclidean{Store: st.Geo}, nil
	case attr.KindKeywords:
		if st.Keywords == nil {
			return nil, errors.New("snapshot: keyword state without keyword store")
		}
		return similarity.Jaccard{Store: st.Keywords}, nil
	case attr.KindWeighted:
		if st.Weighted == nil {
			return nil, errors.New("snapshot: weighted state without weighted store")
		}
		return similarity.WeightedJaccard{Store: st.Weighted}, nil
	default:
		return nil, fmt.Errorf("snapshot: unknown attribute kind %d", st.Kind)
	}
}

// storeN returns the attribute store's vertex count.
func (st *EngineState) storeN() int {
	switch st.Kind {
	case attr.KindGeo:
		return st.Geo.N()
	case attr.KindKeywords:
		return st.Keywords.N()
	default:
		return st.Weighted.N()
	}
}

// Write serialises the state at the current format version.
// Thresholds and prepared settings are written in sorted order
// whatever order the caller supplies, keeping the encoding canonical.
func Write(w io.Writer, st *EngineState) error {
	return writeVersion(w, st, Version)
}

// writeVersion serialises the state at the given format version. Only
// the backward-compatibility tests ask for versionV1; production
// writers always emit the current version.
func writeVersion(w io.Writer, st *EngineState, ver uint32) error {
	if _, err := st.Metric(); err != nil {
		return err
	}
	if st.Graph == nil {
		return errors.New("snapshot: state has no graph")
	}
	if st.Graph.N() != st.storeN() {
		return fmt.Errorf("snapshot: graph has %d vertices, attribute store %d", st.Graph.N(), st.storeN())
	}

	hdr := make([]byte, 0, 16)
	hdr = append(hdr, magic[:]...)
	var hb binenc.Buffer
	hb.U32(ver)
	hb.U8(uint8(st.Kind))
	hb.U8(0)
	hb.U8(0)
	hb.U8(0)
	hdr = append(hdr, hb.Bytes()...)
	if _, err := w.Write(hdr); err != nil {
		return err
	}

	var b binenc.Buffer
	switch st.Kind {
	case attr.KindGeo:
		st.Geo.AppendBinary(&b)
	case attr.KindKeywords:
		st.Keywords.AppendBinary(&b)
	default:
		st.Weighted.AppendBinary(&b)
	}
	if err := writeSection(w, secAttrs, b.Bytes()); err != nil {
		return err
	}

	b = binenc.Buffer{}
	graph.AppendBinary(&b, st.Graph)
	if err := writeSection(w, secGraph, b.Bytes()); err != nil {
		return err
	}

	ths := append([]Threshold(nil), st.Thresholds...)
	sort.Slice(ths, func(i, j int) bool { return ths[i].R < ths[j].R })
	for i, th := range ths {
		if i > 0 && th.R == ths[i-1].R {
			return fmt.Errorf("snapshot: duplicate threshold %g", th.R)
		}
		if math.IsNaN(th.R) {
			return errors.New("snapshot: NaN threshold")
		}
		b = binenc.Buffer{}
		b.F64(th.R)
		var flags uint8
		if th.Filtered != nil {
			flags |= 1
		}
		b.U8(flags)
		idx := th.Oracle.Bulk()
		if idx == nil {
			return fmt.Errorf("snapshot: threshold %g has no bulk index", th.R)
		}
		if err := simindex.AppendIndex(&b, idx); err != nil {
			return err
		}
		if th.Filtered != nil {
			if th.Filtered.N() != st.Graph.N() {
				return fmt.Errorf("snapshot: threshold %g filtered graph has %d vertices, graph %d",
					th.R, th.Filtered.N(), st.Graph.N())
			}
			graph.AppendBinary(&b, th.Filtered)
		}
		if err := writeSection(w, secThreshold, b.Bytes()); err != nil {
			return err
		}
	}

	prs := append([]PreparedSetting(nil), st.Prepared...)
	sort.Slice(prs, func(i, j int) bool {
		if prs[i].R != prs[j].R {
			return prs[i].R < prs[j].R
		}
		return prs[i].K < prs[j].K
	})
	for i, ps := range prs {
		if i > 0 && ps.R == prs[i-1].R && ps.K == prs[i-1].K {
			return fmt.Errorf("snapshot: duplicate prepared setting (k=%d, r=%g)", ps.K, ps.R)
		}
		if !hasFilteredThreshold(ths, ps.R) {
			return fmt.Errorf("snapshot: prepared (k=%d, r=%g) without a fully built threshold %g",
				ps.K, ps.R, ps.R)
		}
		b = binenc.Buffer{}
		b.F64(ps.R)
		if ver >= 2 {
			core.AppendPrepared(&b, ps.Pr)
		} else {
			core.AppendPreparedV1(&b, ps.Pr)
		}
		if err := writeSection(w, secPrepared, b.Bytes()); err != nil {
			return err
		}
	}

	if st.Dynamic != nil {
		b = binenc.Buffer{}
		for _, f := range st.Dynamic.counters(ver) {
			b.U64(uint64(*f))
		}
		if err := writeSection(w, secDynamic, b.Bytes()); err != nil {
			return err
		}
	}

	return writeSection(w, secEnd, nil)
}

// hasFilteredThreshold reports whether the sorted threshold list holds
// a fully built (filtered-graph-carrying) entry at exactly r.
func hasFilteredThreshold(ths []Threshold, r float64) bool {
	i := sort.Search(len(ths), func(i int) bool { return ths[i].R >= r })
	return i < len(ths) && ths[i].R == r && ths[i].Filtered != nil
}

// writeSection emits one framed section: id, payload length, payload,
// CRC-32C of the payload.
func writeSection(w io.Writer, id uint32, payload []byte) error {
	var h binenc.Buffer
	h.U32(id)
	h.U64(uint64(len(payload)))
	if _, err := w.Write(h.Bytes()); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	var c binenc.Buffer
	c.U32(crc32.Checksum(payload, castagnoli))
	_, err := w.Write(c.Bytes())
	return err
}

// Read parses a snapshot and reconstructs the engine state: stores and
// graphs are decoded, per-threshold oracles are rebuilt over the
// decoded store with their serialised bulk indexes attached, and
// prepared problems are re-anchored to those oracles. Any structural
// defect returns a *FormatError.
func Read(rd io.Reader) (*EngineState, error) {
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(rd, hdr); err != nil {
		return nil, formatErr("header", ErrTruncated, "%v", err)
	}
	if !IsMagic(hdr) {
		return nil, formatErr("header", ErrMagic, "")
	}
	hr := binenc.NewReader(hdr[8:])
	ver := hr.U32()
	if ver != Version && ver != versionV1 {
		return nil, formatErr("header", ErrVersion, "version %d, this build reads %d and %d",
			ver, versionV1, Version)
	}
	kind := attr.Kind(hr.U8())
	if kind != attr.KindGeo && kind != attr.KindKeywords && kind != attr.KindWeighted {
		return nil, formatErr("header", ErrCorrupt, "unknown metric kind %d", kind)
	}
	if hr.U8() != 0 || hr.U8() != 0 || hr.U8() != 0 {
		return nil, formatErr("header", ErrCorrupt, "reserved header bytes not zero")
	}

	st := &EngineState{Kind: kind}
	var metric similarity.Metric
	var prev uint32 // id of the previous section; ids must not decrease
	for {
		id, payload, err := readSection(rd)
		if err != nil {
			return nil, err
		}
		name := sectionName(id)
		// Sections must appear in id order; only thresholds and
		// prepared settings may repeat.
		if id < prev || (id == prev && id != secThreshold && id != secPrepared) {
			return nil, formatErr(name, ErrCorrupt, "section out of order")
		}
		if id > secEnd {
			return nil, formatErr(name, ErrCorrupt, "unknown section id %d", id)
		}
		if id > secAttrs && st.storeMissing() {
			return nil, formatErr(name, ErrCorrupt, "attribute section missing")
		}
		if id > secGraph && st.Graph == nil {
			return nil, formatErr(name, ErrCorrupt, "graph section missing")
		}
		prev = id
		r := binenc.NewReader(payload)
		switch id {
		case secAttrs:
			if err := st.decodeAttrs(r); err != nil {
				return nil, formatErr(name, ErrCorrupt, "%v", err)
			}
			metric, _ = st.Metric()
		case secGraph:
			g, err := graph.DecodeBinary(r)
			if err != nil {
				return nil, formatErr(name, ErrCorrupt, "%v", err)
			}
			if g.N() != st.storeN() {
				return nil, formatErr(name, ErrCorrupt,
					"graph has %d vertices, attribute store %d", g.N(), st.storeN())
			}
			st.Graph = g
		case secThreshold:
			th, err := decodeThreshold(r, metric, st.Graph)
			if err != nil {
				return nil, formatErr(fmt.Sprintf("threshold %d", len(st.Thresholds)), ErrCorrupt, "%v", err)
			}
			if n := len(st.Thresholds); n > 0 && th.R <= st.Thresholds[n-1].R {
				return nil, formatErr(name, ErrCorrupt, "thresholds not strictly ascending")
			}
			st.Thresholds = append(st.Thresholds, th)
		case secPrepared:
			ps, err := st.decodePrepared(r, ver)
			if err != nil {
				return nil, formatErr(fmt.Sprintf("prepared %d", len(st.Prepared)), ErrCorrupt, "%v", err)
			}
			if n := len(st.Prepared); n > 0 {
				last := st.Prepared[n-1]
				if ps.R < last.R || (ps.R == last.R && ps.K <= last.K) {
					return nil, formatErr(name, ErrCorrupt, "prepared settings not strictly ascending")
				}
			}
			st.Prepared = append(st.Prepared, ps)
		case secDynamic:
			var d DynamicState
			fields := d.counters(ver)
			for _, f := range fields {
				*f = int64(r.U64())
			}
			// An underflow must fail here, not decode missing trailing
			// counters as zero — a zero Updates would make a recovery
			// replay the whole journal from offset 0.
			if err := r.Err(); err != nil {
				return nil, formatErr(name, ErrCorrupt, "%v", err)
			}
			for _, f := range fields {
				if *f < 0 {
					return nil, formatErr(name, ErrCorrupt, "negative counter")
				}
			}
			st.Dynamic = &d
		case secEnd:
			if r.Remaining() != 0 {
				return nil, formatErr(name, ErrCorrupt, "end marker carries payload")
			}
			if st.Graph == nil {
				return nil, formatErr(name, ErrCorrupt, "graph section missing")
			}
			// Anything after the end marker is not part of the format.
			var one [1]byte
			if n, _ := rd.Read(one[:]); n != 0 {
				return nil, formatErr(name, ErrCorrupt, "trailing data after end marker")
			}
			return st, nil
		}
		if id != secEnd && r.Remaining() != 0 {
			return nil, formatErr(name, ErrCorrupt, "%d trailing bytes in section", r.Remaining())
		}
	}
}

// storeMissing reports whether no attribute store has been decoded yet.
func (st *EngineState) storeMissing() bool {
	return st.Geo == nil && st.Keywords == nil && st.Weighted == nil
}

// decodeAttrs decodes the attribute section for the header's kind.
func (st *EngineState) decodeAttrs(r *binenc.Reader) error {
	var err error
	switch st.Kind {
	case attr.KindGeo:
		st.Geo, err = attr.DecodeGeo(r)
	case attr.KindKeywords:
		st.Keywords, err = attr.DecodeKeywords(r)
	default:
		st.Weighted, err = attr.DecodeWeighted(r)
	}
	return err
}

// decodeThreshold decodes one threshold section: r, flags, the bulk
// index, and (when flagged) the filtered graph.
func decodeThreshold(r *binenc.Reader, metric similarity.Metric, g *graph.Graph) (Threshold, error) {
	rv := r.F64()
	flags := r.U8()
	if err := r.Err(); err != nil {
		return Threshold{}, err
	}
	if math.IsNaN(rv) {
		return Threshold{}, errors.New("NaN threshold")
	}
	if flags&^1 != 0 {
		return Threshold{}, fmt.Errorf("unknown flags %#x", flags)
	}
	o := similarity.NewOracle(metric, rv)
	idx, err := simindex.DecodeIndex(r, o)
	if err != nil {
		return Threshold{}, err
	}
	o.SetBulk(idx)
	th := Threshold{R: rv, Oracle: o}
	if flags&1 != 0 {
		fg, err := graph.DecodeBinary(r)
		if err != nil {
			return Threshold{}, fmt.Errorf("filtered %w", err)
		}
		if fg.N() != g.N() {
			return Threshold{}, fmt.Errorf("filtered graph has %d vertices, graph %d", fg.N(), g.N())
		}
		th.Filtered = fg
	}
	return th, nil
}

// decodePrepared decodes one prepared section, anchoring it to the
// already-decoded threshold of its r (which must be fully built). ver
// selects the payload flavour: v2 carries maintained core numbers, v1
// recomputes them from the threshold's filtered graph.
func (st *EngineState) decodePrepared(r *binenc.Reader, ver uint32) (PreparedSetting, error) {
	rv := r.F64()
	if err := r.Err(); err != nil {
		return PreparedSetting{}, err
	}
	i := sort.Search(len(st.Thresholds), func(i int) bool { return st.Thresholds[i].R >= rv })
	if i >= len(st.Thresholds) || st.Thresholds[i].R != rv {
		return PreparedSetting{}, fmt.Errorf("no threshold section for r=%g", rv)
	}
	th := st.Thresholds[i]
	if th.Filtered == nil {
		return PreparedSetting{}, fmt.Errorf("threshold r=%g is oracle-only, cannot anchor prepared state", rv)
	}
	pr, err := core.DecodePrepared(r, th.Oracle, st.Graph.N(), th.Filtered, ver >= 2)
	if err != nil {
		return PreparedSetting{}, err
	}
	return PreparedSetting{K: pr.K(), R: rv, Pr: pr}, nil
}

// sectionName names a section id for error messages.
func sectionName(id uint32) string {
	switch id {
	case secAttrs:
		return "attributes"
	case secGraph:
		return "graph"
	case secThreshold:
		return "threshold"
	case secPrepared:
		return "prepared"
	case secDynamic:
		return "dynamic"
	case secEnd:
		return "end"
	default:
		return fmt.Sprintf("section %d", id)
	}
}

// WriteFileAtomic persists a snapshot to path atomically, the shared
// checkpoint-writing path of the commands: save writes into a
// temporary file in path's directory, which is synced and renamed over
// the target, so a crash mid-write never leaves a truncated snapshot
// and readers (or crash restarts) only ever see complete files. It
// returns the snapshot's size in bytes.
func WriteFileAtomic(path string, save func(io.Writer) error) (int64, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := save(tmp); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, err
	}
	// CreateTemp hard-codes 0600 and rename preserves it; published
	// snapshots follow the usual world-readable artifact convention so
	// backup jobs and other users can load them.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return 0, err
	}
	info, err := tmp.Stat()
	if err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, err
	}
	// POSIX rename durability: the new directory entry survives power
	// loss only after the containing directory is fsynced. Windows has
	// no directory-handle sync, so the flush is left to the OS there.
	if err := fsx.SyncDir(filepath.Dir(path)); err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// readSection reads one framed section, verifying its checksum. The
// payload buffer grows with the bytes actually present, so a corrupt
// length on a truncated stream cannot drive an outsized allocation.
func readSection(rd io.Reader) (uint32, []byte, error) {
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(rd, hdr); err != nil {
		return 0, nil, formatErr("section header", ErrTruncated, "%v", err)
	}
	hr := binenc.NewReader(hdr)
	id := hr.U32()
	n := hr.U64()
	name := sectionName(id)
	var buf bytes.Buffer
	// Grow once for the common case; the cap keeps a lying length on a
	// truncated stream from driving an outsized allocation (the buffer
	// still grows naturally past it for genuinely large sections).
	if n < 1<<24 {
		buf.Grow(int(n))
	} else {
		buf.Grow(1 << 24)
	}
	if copied, err := io.CopyN(&buf, rd, int64(n)); err != nil || uint64(copied) != n {
		return 0, nil, formatErr(name, ErrTruncated, "payload %d of %d bytes", buf.Len(), n)
	}
	crc := make([]byte, 4)
	if _, err := io.ReadFull(rd, crc); err != nil {
		return 0, nil, formatErr(name, ErrTruncated, "missing checksum")
	}
	payload := buf.Bytes()
	if got, want := crc32.Checksum(payload, castagnoli), binenc.NewReader(crc).U32(); got != want {
		return 0, nil, formatErr(name, ErrChecksum, "computed %08x, stored %08x", got, want)
	}
	return id, payload, nil
}
