package snapshot

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoadSnapshot feeds arbitrary bytes through the snapshot decoder,
// seeded with every checked-in golden and corrupt fixture (current v2,
// legacy v1, and the corrupt derivatives), and pins the decode
// contract the corrupt-fixture tests check pointwise:
//
//   - Read never panics and never allocates proportionally to a lied
//     length — malformed input fails fast with an error (the
//     decodebound invariant, exercised here instead of proven).
//   - Every decode error is a *FormatError wrapping one of the
//     sentinels, so callers can keep telling corruption from version
//     skew with errors.Is.
//   - Anything that does decode re-encodes deterministically: a
//     successful Read survives Write→Read→Write with identical bytes.
//     (Input bytes themselves are not required to be stable — reading
//     a v1 snapshot re-encodes as v2 — so idempotence is asserted one
//     generation in.)
func FuzzLoadSnapshot(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("..", "..", "testdata", "snapshots", "*.snap"))
	if err != nil || len(seeds) == 0 {
		f.Fatalf("no snapshot fixtures found: %v", err)
	}
	for _, path := range seeds {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Read(bytes.NewReader(data))
		if err != nil {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("decode error is not a *FormatError: %T %v", err, err)
			}
			if !errors.Is(err, ErrMagic) && !errors.Is(err, ErrVersion) &&
				!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) &&
				!errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error wraps no sentinel: %v", err)
			}
			return
		}
		var first bytes.Buffer
		if err := Write(&first, st); err != nil {
			t.Fatalf("re-encode of successfully decoded state: %v", err)
		}
		st2, err := Read(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		var second bytes.Buffer
		if err := Write(&second, st2); err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("re-encoding is not idempotent: %d vs %d bytes", first.Len(), second.Len())
		}
	})
}
