package snapshot

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"testing"

	"krcore/internal/attr"
	"krcore/internal/binenc"
	"krcore/internal/core"
	"krcore/internal/graph"
	"krcore/internal/similarity"
	"krcore/internal/simindex"
)

// buildGeoState builds a small fully populated engine state over a
// deterministic geo instance: two thresholds (one oracle-only), two
// prepared settings and optionally dynamic counters.
func buildGeoState(t *testing.T, dynamic bool) *EngineState {
	t.Helper()
	const n = 80
	rng := rand.New(rand.NewSource(42))
	b := graph.NewBuilder(n)
	for i := 0; i < 4*n; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	g := b.Build()
	geo := attr.NewGeo(n)
	for u := 0; u < n; u++ {
		geo.SetVertex(int32(u), attr.Point{X: rng.Float64() * 30, Y: rng.Float64() * 30})
	}
	st := &EngineState{Kind: attr.KindGeo, Geo: geo, Graph: g}
	metric := similarity.Euclidean{Store: geo}

	full := similarity.NewOracle(metric, 8)
	simindex.For(full)
	filtered := core.FilterDissimilar(g, full)
	st.Thresholds = append(st.Thresholds, Threshold{R: 8, Oracle: full, Filtered: filtered})

	oracleOnly := similarity.NewOracle(metric, 15)
	simindex.For(oracleOnly)
	st.Thresholds = append(st.Thresholds, Threshold{R: 15, Oracle: oracleOnly})

	for _, k := range []int{2, 3} {
		pr, err := core.PrepareFiltered(filtered, core.Params{K: k, Oracle: full})
		if err != nil {
			t.Fatal(err)
		}
		st.Prepared = append(st.Prepared, PreparedSetting{K: k, R: 8, Pr: pr})
	}
	if dynamic {
		st.Dynamic = &DynamicState{Updates: 17, Batches: 5, Version: 4,
			IndexesKept: 3, IndexesRebuilt: 1, ComponentsReused: 9, ComponentsRebuilt: 2}
	}
	return st
}

// buildKeywordState builds a small keyword (Jaccard) engine state;
// weighted toggles the weighted-Jaccard variant.
func buildKeywordState(t *testing.T, weighted bool) *EngineState {
	t.Helper()
	const n = 60
	rng := rand.New(rand.NewSource(7))
	b := graph.NewBuilder(n)
	for i := 0; i < 3*n; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	g := b.Build()
	st := &EngineState{Graph: g}
	var metric similarity.Metric
	if weighted {
		ws := attr.NewWeighted(n)
		for u := 0; u < n; u++ {
			var es []attr.WeightedEntry
			for j := 0; j < 6; j++ {
				es = append(es, attr.WeightedEntry{Key: int32(rng.Intn(25)), Weight: float64(1 + rng.Intn(4))})
			}
			ws.SetVertex(int32(u), es)
		}
		st.Kind, st.Weighted = attr.KindWeighted, ws
		metric = similarity.WeightedJaccard{Store: ws}
	} else {
		kw := attr.NewKeywords(n)
		for u := 0; u < n; u++ {
			var keys []int32
			for j := 0; j < 6; j++ {
				keys = append(keys, int32(rng.Intn(25)))
			}
			kw.SetVertex(int32(u), keys)
		}
		st.Kind, st.Keywords = attr.KindKeywords, kw
		metric = similarity.Jaccard{Store: kw}
	}
	o := similarity.NewOracle(metric, 0.3)
	simindex.For(o)
	filtered := core.FilterDissimilar(g, o)
	st.Thresholds = []Threshold{{R: 0.3, Oracle: o, Filtered: filtered}}
	pr, err := core.PrepareFiltered(filtered, core.Params{K: 2, Oracle: o})
	if err != nil {
		t.Fatal(err)
	}
	st.Prepared = []PreparedSetting{{K: 2, R: 0.3, Pr: pr}}
	return st
}

// encode writes the state to bytes.
func encode(t *testing.T, st *EngineState) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRoundTripByteStable checks, for every metric kind and both
// flavours, that writing, reading and re-writing reproduces identical
// bytes and identical structural state.
func TestRoundTripByteStable(t *testing.T) {
	cases := map[string]*EngineState{
		"geo-static":  buildGeoState(t, false),
		"geo-dynamic": buildGeoState(t, true),
		"keywords":    buildKeywordState(t, false),
		"weighted":    buildKeywordState(t, true),
	}
	for name, st := range cases {
		t.Run(name, func(t *testing.T) {
			first := encode(t, st)
			if again := encode(t, st); !bytes.Equal(first, again) {
				t.Fatal("same state encoded to different bytes")
			}
			got, err := Read(bytes.NewReader(first))
			if err != nil {
				t.Fatal(err)
			}
			if got.Kind != st.Kind || got.Graph.N() != st.Graph.N() || got.Graph.M() != st.Graph.M() {
				t.Fatalf("decoded shape mismatch: kind %v n %d m %d", got.Kind, got.Graph.N(), got.Graph.M())
			}
			if len(got.Thresholds) != len(st.Thresholds) || len(got.Prepared) != len(st.Prepared) {
				t.Fatalf("decoded %d thresholds / %d prepared, want %d / %d",
					len(got.Thresholds), len(got.Prepared), len(st.Thresholds), len(st.Prepared))
			}
			for i, th := range got.Thresholds {
				if th.R != st.Thresholds[i].R || (th.Filtered == nil) != (st.Thresholds[i].Filtered == nil) {
					t.Fatalf("threshold %d mismatch", i)
				}
				if th.Filtered != nil && th.Filtered.M() != st.Thresholds[i].Filtered.M() {
					t.Fatalf("threshold %d filtered edge count %d, want %d",
						i, th.Filtered.M(), st.Thresholds[i].Filtered.M())
				}
			}
			for i, ps := range got.Prepared {
				want := st.Prepared[i]
				if ps.K != want.K || ps.R != want.R || ps.Pr.Components() != want.Pr.Components() {
					t.Fatalf("prepared %d mismatch: (k=%d,r=%g,%d comps)", i, ps.K, ps.R, ps.Pr.Components())
				}
			}
			if (got.Dynamic == nil) != (st.Dynamic == nil) {
				t.Fatal("dynamic flavour lost")
			}
			if got.Dynamic != nil && *got.Dynamic != *st.Dynamic {
				t.Fatalf("dynamic state %+v, want %+v", got.Dynamic, st.Dynamic)
			}
			// Byte-stable re-encode: the decoded state writes back to
			// exactly the input bytes.
			if re := encode(t, got); !bytes.Equal(first, re) {
				t.Fatal("re-encoding a decoded snapshot changed its bytes")
			}
		})
	}
}

// TestDecodedIndexMatchesFresh verifies a decoded bulk index answers
// exactly like a freshly built one.
func TestDecodedIndexMatchesFresh(t *testing.T) {
	st := buildGeoState(t, false)
	got, err := Read(bytes.NewReader(encode(t, st)))
	if err != nil {
		t.Fatal(err)
	}
	vs := make([]int32, st.Graph.N())
	for i := range vs {
		vs[i] = int32(i)
	}
	fresh := st.Thresholds[0].Oracle.Bulk().SimilarAdjacency(vs)
	loaded := got.Thresholds[0].Oracle.Bulk().SimilarAdjacency(vs)
	if fmt.Sprint(fresh) != fmt.Sprint(loaded) {
		t.Fatal("decoded index disagrees with fresh index")
	}
}

func TestRejectBadMagic(t *testing.T) {
	raw := encode(t, buildGeoState(t, false))
	raw[0] ^= 0xff
	assertFormatError(t, raw, ErrMagic)
}

func TestRejectWrongVersion(t *testing.T) {
	raw := encode(t, buildGeoState(t, false))
	raw[8] = 99 // version field, little-endian low byte
	assertFormatError(t, raw, ErrVersion)
}

func TestRejectBitFlip(t *testing.T) {
	raw := encode(t, buildGeoState(t, false))
	// Flip one bit inside each section's payload region (past the
	// 16-byte header and 12-byte section header).
	for _, off := range []int{16 + 12 + 3, len(raw) / 2, len(raw) - 40} {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x10
		var fe *FormatError
		if _, err := Read(bytes.NewReader(mut)); !errors.As(err, &fe) {
			t.Fatalf("bit flip at %d not rejected with FormatError: %v", off, err)
		}
	}
}

func TestRejectTruncation(t *testing.T) {
	raw := encode(t, buildGeoState(t, false))
	for _, cut := range []int{4, 15, 20, len(raw) / 3, len(raw) - 1} {
		assertFormatError(t, raw[:cut], ErrTruncated)
	}
}

func TestRejectTrailingData(t *testing.T) {
	raw := encode(t, buildGeoState(t, false))
	assertFormatError(t, append(append([]byte(nil), raw...), 0), ErrCorrupt)
}

func assertFormatError(t *testing.T, raw []byte, want error) {
	t.Helper()
	_, err := Read(bytes.NewReader(raw))
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("got %v, want *FormatError", err)
	}
	if !errors.Is(err, want) {
		t.Fatalf("got %v, want cause %v", err, want)
	}
}

// TestRejectShortDynamicSection pins the sticky-error check of the
// dynamic section: a well-framed (checksummed) dynamic payload that is
// too short must fail, not decode missing trailing counters as zero —
// a zeroed journal offset would make a recovery double-apply updates.
func TestRejectShortDynamicSection(t *testing.T) {
	raw := encode(t, buildGeoState(t, true))
	for _, keep := range []int{0, 48} { // no counters / six of seven
		mut := truncateSection(t, raw, secDynamic, keep)
		assertFormatError(t, mut, ErrCorrupt)
	}
}

// truncateSection rewrites the snapshot with the first section of the
// given id truncated to keep payload bytes, with consistent framing
// (length and CRC recomputed), so only the in-section validation can
// catch it.
func truncateSection(t *testing.T, raw []byte, id uint32, keep int) []byte {
	t.Helper()
	out := append([]byte(nil), raw[:16]...)
	r := binenc.NewReader(raw[16:])
	for r.Remaining() > 0 {
		sid := r.U32()
		n := int(r.U64())
		payload := r.Raw(n)
		r.U32() // stored crc
		if err := r.Err(); err != nil {
			t.Fatal(err)
		}
		if sid == id {
			if keep > len(payload) {
				t.Fatalf("section %d has only %d bytes", id, len(payload))
			}
			payload = payload[:keep]
			id = 0 // only the first occurrence
		}
		var h binenc.Buffer
		h.U32(sid)
		h.U64(uint64(len(payload)))
		out = append(out, h.Bytes()...)
		out = append(out, payload...)
		var c binenc.Buffer
		c.U32(crc32.Checksum(payload, castagnoli))
		out = append(out, c.Bytes()...)
	}
	return out
}

// TestWriteRejectsInvalidState covers the writer-side validation.
func TestWriteRejectsInvalidState(t *testing.T) {
	var buf bytes.Buffer
	st := buildGeoState(t, false)

	// Prepared setting whose threshold is oracle-only.
	bad := *st
	bad.Prepared = append([]PreparedSetting(nil), st.Prepared...)
	bad.Prepared[0].R = 15
	if err := Write(&buf, &bad); err == nil {
		t.Fatal("prepared setting anchored to an oracle-only threshold accepted")
	}

	// Missing store.
	bad = *st
	bad.Geo = nil
	if err := Write(&buf, &bad); err == nil {
		t.Fatal("state without store accepted")
	}

	// Store and graph of different sizes.
	bad = *st
	bad.Geo = attr.NewGeo(3)
	if err := Write(&buf, &bad); err == nil {
		t.Fatal("store/graph size mismatch accepted")
	}
}

// TestOracleOnlyThresholdSurvives checks the oracle-only flag round
// trips: the decoded entry carries an index but no filtered graph.
func TestOracleOnlyThresholdSurvives(t *testing.T) {
	st := buildGeoState(t, false)
	got, err := Read(bytes.NewReader(encode(t, st)))
	if err != nil {
		t.Fatal(err)
	}
	var oracleOnly *Threshold
	for i := range got.Thresholds {
		if got.Thresholds[i].R == 15 {
			oracleOnly = &got.Thresholds[i]
		}
	}
	if oracleOnly == nil || oracleOnly.Filtered != nil || oracleOnly.Oracle.Bulk() == nil {
		t.Fatalf("oracle-only threshold not preserved: %+v", oracleOnly)
	}
}
