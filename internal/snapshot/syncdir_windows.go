//go:build windows

package snapshot

// syncDir is a no-op on Windows, which offers no directory-handle
// sync; rename metadata durability is left to the OS.
func syncDir(string) error { return nil }
