// Package bitset implements a dense fixed-size bitset used by the clique
// enumerator and the (k,r)-core search engine for fast set intersection.
package bitset

import "math/bits"

// Set is a fixed-capacity bitset. Create one with New; the zero value is
// an empty set with zero capacity.
type Set struct {
	words []uint64
	n     int
}

// New returns a Set able to hold bits 0..n-1, all clear.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity of the set (number of addressable bits).
func (s *Set) Len() int { return s.n }

// Set sets bit i.
func (s *Set) Set(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (s *Set) Clear(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool { return s.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Reset clears all bits.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w, n: s.n}
}

// CopyFrom overwrites s with the contents of t. The sets must have the
// same capacity.
func (s *Set) CopyFrom(t *Set) {
	copy(s.words, t.words)
}

// And sets s = s ∩ t.
func (s *Set) And(t *Set) {
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// AndNot sets s = s \ t.
func (s *Set) AndNot(t *Set) {
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// Or sets s = s ∪ t.
func (s *Set) Or(t *Set) {
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// IntersectionCount returns |s ∩ t| without materialising it.
func (s *Set) IntersectionCount(t *Set) int {
	c := 0
	for i := range s.words {
		c += bits.OnesCount64(s.words[i] & t.words[i])
	}
	return c
}

// ForEach calls fn for every set bit in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi<<6 + b)
			w &= w - 1
		}
	}
}

// Members appends the set bits in ascending order to dst and returns it.
func (s *Set) Members(dst []int32) []int32 {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, int32(wi<<6+b))
			w &= w - 1
		}
	}
	return dst
}

// First returns the smallest set bit, or -1 if the set is empty.
func (s *Set) First() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}
