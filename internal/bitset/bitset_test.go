package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if s.Any() || s.Count() != 0 || s.First() != -1 {
		t.Fatal("new set must be empty")
	}
	s.Set(0)
	s.Set(64)
	s.Set(129)
	if !s.Test(0) || !s.Test(64) || !s.Test(129) || s.Test(1) {
		t.Fatal("Test after Set wrong")
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	if s.First() != 0 {
		t.Fatalf("First = %d, want 0", s.First())
	}
	s.Clear(0)
	if s.Test(0) || s.Count() != 2 || s.First() != 64 {
		t.Fatal("Clear wrong")
	}
	var got []int32
	got = s.Members(got)
	if len(got) != 2 || got[0] != 64 || got[1] != 129 {
		t.Fatalf("Members = %v", got)
	}
	s.Reset()
	if s.Any() {
		t.Fatal("Reset must clear everything")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := New(200)
	b := New(200)
	for i := 0; i < 200; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 200; i += 3 {
		b.Set(i)
	}
	inter := a.Clone()
	inter.And(b)
	if inter.Count() != 34 { // multiples of 6 in [0,200): 0,6,...,198
		t.Fatalf("intersection count = %d, want 34", inter.Count())
	}
	if got := a.IntersectionCount(b); got != 34 {
		t.Fatalf("IntersectionCount = %d, want 34", got)
	}
	diff := a.Clone()
	diff.AndNot(b)
	if diff.Count() != a.Count()-34 {
		t.Fatalf("difference count = %d", diff.Count())
	}
	union := a.Clone()
	union.Or(b)
	if union.Count() != a.Count()+b.Count()-34 {
		t.Fatalf("union count = %d", union.Count())
	}
}

func TestForEachOrder(t *testing.T) {
	s := New(300)
	want := []int{3, 70, 128, 255}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", got, want)
		}
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(100)
	a.Set(5)
	b := New(100)
	b.Set(50)
	b.CopyFrom(a)
	if !b.Test(5) || b.Test(50) {
		t.Fatal("CopyFrom must overwrite")
	}
}

// Property: a bitset agrees with a map-based reference under a random
// operation sequence.
func TestAgainstMapModel(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		s := New(n)
		model := map[int]bool{}
		for op := 0; op < 200; op++ {
			i := rng.Intn(n)
			if rng.Intn(2) == 0 {
				s.Set(i)
				model[i] = true
			} else {
				s.Clear(i)
				delete(model, i)
			}
		}
		if s.Count() != len(model) {
			return false
		}
		for i := 0; i < n; i++ {
			if s.Test(i) != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
