package simindex

import (
	"math"

	"krcore/internal/attr"
)

// Grid is the uniform spatial index for the Euclidean metric. Cells
// are w×w squares with w = |r|, so every pair within distance |r| lies
// in the same or one of the eight adjacent cells; only those candidate
// pairs pay a distance computation. The index snapshots each vertex's
// cell coordinates at construction.
//
// The oracle deems (u,v) similar when Distance2(u,v) <= r², which for
// negative r behaves like |r| and for NaN r matches nothing; the grid
// mirrors both exactly. A zero threshold degenerates to exact
// coordinate match, handled by hashing points. The cell width is |r|
// padded by 0.1% and cell coordinates are capped at 2^40, which keeps
// the division-rounding error on x/w far below the padding, so two
// points within |r| always land in the same or adjacent cells;
// overflowing or non-finite cell coordinates (NaN positions, absurdly
// small r) disable the grid and fall back to brute-force scans, which
// remain bit-identical to the oracle.
type Grid struct {
	store *attr.Geo
	r2    float64 // squared threshold, computed exactly as the oracle does
	w     float64 // cell width: |r| padded against division rounding
	cx    []int64 // per-vertex cell column (when gridded)
	cy    []int64 // per-vertex cell row
	exact bool    // r == 0: only coincident points are similar
	never bool    // r is NaN: no pair is similar
	brute bool    // ungriddable coordinates: per-pair fallback
}

// NewGrid builds the spatial index for the store at threshold r.
func NewGrid(store *attr.Geo, r float64) *Grid {
	// The 0.1% padding keeps the quotient spread of an in-range pair
	// strictly below one cell even after division rounding (bounded by
	// 2^40 * 2^-53 per coordinate under the maxCell guard), so the
	// 3×3 neighbourhood sweep never misses a similar pair.
	g := &Grid{store: store, r2: r * r, w: math.Abs(r) * 1.001}
	if math.IsNaN(r) {
		g.never = true
		return g
	}
	if g.w == 0 {
		g.exact = true
		return g
	}
	n := store.N()
	g.cx = make([]int64, n)
	g.cy = make([]int64, n)
	const maxCell = 1 << 40
	for u := 0; u < n; u++ {
		p := store.Vertex(int32(u))
		cx := math.Floor(p.X / g.w)
		cy := math.Floor(p.Y / g.w)
		if !(cx > -maxCell && cx < maxCell && cy > -maxCell && cy < maxCell) {
			g.brute = true
			g.cx, g.cy = nil, nil
			return g
		}
		g.cx[u] = int64(cx)
		g.cy[u] = int64(cy)
	}
	return g
}

// pairSimilar mirrors Oracle.Similar's geo fast path.
func (g *Grid) pairSimilar(u, v int32) bool {
	return g.store.Distance2(u, v) <= g.r2
}

// SimilarBatch implements similarity.BulkSource.
func (g *Grid) SimilarBatch(pairs [][2]int32) []bool {
	return batchPairs(pairs, g.pairSimilar)
}

// SimilarAdjacency implements similarity.BulkSource.
func (g *Grid) SimilarAdjacency(vertices []int32) [][]int32 {
	n := len(vertices)
	switch {
	case g.never:
		// NaN threshold: Distance2 <= NaN holds for no pair.
		return make([][]int32, n)
	case g.brute:
		return bruteAdjacency(n, func(i, j int32) bool {
			return g.pairSimilar(vertices[i], vertices[j])
		})
	case g.exact:
		return g.exactAdjacency(vertices)
	default:
		return g.gridAdjacency(vertices)
	}
}

// exactAdjacency handles r == 0: a pair is similar iff the points
// coincide (distance² <= 0).
func (g *Grid) exactAdjacency(vertices []int32) [][]int32 {
	buckets := make(map[attr.Point][]int32)
	for i, v := range vertices {
		p := g.store.Vertex(v)
		buckets[p] = append(buckets[p], int32(i))
	}
	rows := make([][]int32, len(vertices))
	for _, members := range buckets {
		// Members are ascending by construction; each member's backward
		// row is every earlier member of its bucket.
		for x := 1; x < len(members); x++ {
			rows[members[x]] = append([]int32(nil), members[:x]...)
		}
	}
	return mergeRows(len(vertices), rows)
}

// forwardCells is the half-neighbourhood used to visit each adjacent
// unordered cell pair exactly once.
var forwardCells = [4][2]int64{{1, -1}, {1, 0}, {1, 1}, {0, 1}}

// gridAdjacency buckets the vertex subset into cells and checks only
// same-cell and adjacent-cell candidates. The subset's coordinates are
// copied into flat per-cell arrays so the candidate loops stream
// contiguous memory, similar pairs are packed into uint64s in exactly
// pre-counted buffers, and the adjacency is assembled with counting
// sorts — no comparison sort anywhere, so the whole path is linear in
// candidates plus output.
func (g *Grid) gridAdjacency(vertices []int32) [][]int32 {
	n := len(vertices)
	type cellKey [2]int64
	cellOf := make(map[cellKey]int32, n)
	var keys []cellKey
	cellIdx := make([]int32, n) // local vertex -> cell
	cnt := make([]int32, 0, 64) // members per cell
	for i, v := range vertices {
		k := cellKey{g.cx[v], g.cy[v]}
		ci, ok := cellOf[k]
		if !ok {
			ci = int32(len(keys))
			cellOf[k] = ci
			keys = append(keys, k)
			cnt = append(cnt, 0)
		}
		cellIdx[i] = ci
		cnt[ci]++
	}
	nc := len(keys)
	// Counting-sort the subset into cell-major order, with coordinates
	// flattened alongside so the pair loops below touch xs/ys/ids only.
	start := make([]int32, nc+1)
	for c := 0; c < nc; c++ {
		start[c+1] = start[c] + cnt[c]
	}
	ids := make([]int32, n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	cur := make([]int32, nc)
	copy(cur, start[:nc])
	for i := 0; i < n; i++ {
		c := cellIdx[i]
		p := g.store.Vertex(vertices[i])
		ids[cur[c]] = int32(i)
		xs[cur[c]] = p.X
		ys[cur[c]] = p.Y
		cur[c]++
	}
	// Resolve each cell's forward neighbours once, and count candidate
	// pairs so the emit buffers allocate exactly once.
	nbIdx := make([][4]int32, nc)
	cand := make([]int, nc)
	for c := 0; c < nc; c++ {
		m := int(cnt[c])
		cand[c] = m * (m - 1) / 2
		for d, off := range forwardCells {
			nb, ok := cellOf[cellKey{keys[c][0] + off[0], keys[c][1] + off[1]}]
			if !ok {
				nb = -1
			} else {
				cand[c] += m * int(cnt[nb])
			}
			nbIdx[c][d] = nb
		}
	}

	nw := 1
	if n >= 4096 {
		nw = workers(nc)
	}
	found := make([][]uint64, nw)
	runParallel(nw, func(w int) {
		size := 0
		for c := w; c < nc; c += nw {
			size += cand[c]
		}
		out := make([]uint64, 0, size)
		for c := w; c < nc; c += nw {
			lo, hi := int(start[c]), int(start[c+1])
			// Same-cell candidates: members are id-ascending, so a<b
			// emits packed pairs directly.
			for a := lo; a < hi; a++ {
				xa, ya := xs[a], ys[a]
				for b := a + 1; b < hi; b++ {
					dx, dy := xa-xs[b], ya-ys[b]
					if dx*dx+dy*dy <= g.r2 {
						out = append(out, uint64(ids[a])<<32|uint64(ids[b]))
					}
				}
			}
			for _, nb := range nbIdx[c] {
				if nb < 0 {
					continue
				}
				nlo, nhi := int(start[nb]), int(start[nb+1])
				for a := lo; a < hi; a++ {
					xa, ya := xs[a], ys[a]
					ia := ids[a]
					for b := nlo; b < nhi; b++ {
						dx, dy := xa-xs[b], ya-ys[b]
						if dx*dx+dy*dy <= g.r2 {
							ib := ids[b]
							if ia < ib {
								out = append(out, uint64(ia)<<32|uint64(ib))
							} else {
								out = append(out, uint64(ib)<<32|uint64(ia))
							}
						}
					}
				}
			}
		}
		found[w] = out
	})
	return packedPairsToAdjacency(n, found)
}

// packedPairsToAdjacency turns buffers of packed (lo<<32|hi, lo < hi)
// similar pairs into sorted adjacency lists in linear time. Each row's
// final content is [backward neighbours ascending][forward neighbours
// ascending]; both sections are produced by stable counting sorts (by
// lo for the backward fills, by hi for the forward fills), so there is
// no comparison sort and the result is independent of how the pairs
// were distributed across the buffers. Each pair must appear exactly
// once across the buffers.
func packedPairsToAdjacency(n int, buffers [][]uint64) [][]int32 {
	total := 0
	for _, buf := range buffers {
		total += len(buf)
	}
	deg := make([]int32, n)
	cntL := make([]int32, n)
	cntH := make([]int32, n)
	for _, buf := range buffers {
		for _, p := range buf {
			lo, hi := int32(p>>32), int32(uint32(p))
			deg[lo]++
			deg[hi]++
			cntL[lo]++
			cntH[hi]++
		}
	}
	backing := make([]int32, 2*total)
	adj := make([][]int32, n)
	off := int32(0)
	for i := 0; i < n; i++ {
		adj[i] = backing[off : off : off+deg[i]]
		off += deg[i]
	}
	// Stable counting sort by lo; consuming it in order appends each
	// pair's lo to adj[hi], so every backward section ascends.
	tmp := make([]uint64, total)
	pos := int32(0)
	for i := 0; i < n; i++ {
		pos, cntL[i] = pos+cntL[i], pos
	}
	for _, buf := range buffers {
		for _, p := range buf {
			lo := p >> 32
			tmp[cntL[lo]] = p
			cntL[lo]++
		}
	}
	for _, p := range tmp {
		hi := uint32(p)
		adj[hi] = append(adj[hi], int32(p>>32))
	}
	// Stable counting sort by hi; consuming it appends each pair's hi
	// to adj[lo], so every forward section ascends after the backward
	// one.
	pos = 0
	for i := 0; i < n; i++ {
		pos, cntH[i] = pos+cntH[i], pos
	}
	for _, buf := range buffers {
		for _, p := range buf {
			hi := uint32(p)
			tmp[cntH[hi]] = p
			cntH[hi]++
		}
	}
	for _, p := range tmp {
		lo := p >> 32
		adj[lo] = append(adj[lo], int32(uint32(p)))
	}
	return adj
}
