package simindex

import "krcore/internal/similarity"

// Brute is the bulk fallback for arbitrary metrics: no index structure,
// but the pair matrix is sharded across GOMAXPROCS workers, so custom
// Metric implementations still get parallel bulk preprocessing.
type Brute struct {
	o *similarity.Oracle
}

// NewBrute wraps the oracle in a parallel brute-force bulk engine.
func NewBrute(o *similarity.Oracle) *Brute { return &Brute{o: o} }

// SimilarAdjacency implements similarity.BulkSource.
func (b *Brute) SimilarAdjacency(vertices []int32) [][]int32 {
	return bruteAdjacency(len(vertices), func(i, j int32) bool {
		return b.o.Similar(vertices[i], vertices[j])
	})
}

// SimilarBatch implements similarity.BulkSource.
func (b *Brute) SimilarBatch(pairs [][2]int32) []bool {
	return batchPairs(pairs, b.o.Similar)
}

// Serial is the non-indexed reference engine: one Oracle.Similar call
// per pair, single-threaded — exactly the preprocessing the indexes
// replace. Equivalence tests and benchmarks attach it via
// Oracle.SetBulk to reproduce the serial path.
type Serial struct {
	o *similarity.Oracle
}

// NewSerial wraps the oracle in the serial reference engine.
func NewSerial(o *similarity.Oracle) *Serial { return &Serial{o: o} }

// SimilarAdjacency implements similarity.BulkSource.
func (s *Serial) SimilarAdjacency(vertices []int32) [][]int32 {
	n := len(vertices)
	adj := make([][]int32, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if s.o.Similar(vertices[i], vertices[j]) {
				adj[i] = append(adj[i], int32(j))
				adj[j] = append(adj[j], int32(i))
			}
		}
	}
	return adj
}

// SimilarBatch implements similarity.BulkSource.
func (s *Serial) SimilarBatch(pairs [][2]int32) []bool {
	out := make([]bool, len(pairs))
	for i, p := range pairs {
		out[i] = s.o.Similar(p[0], p[1])
	}
	return out
}
