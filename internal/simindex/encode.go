package simindex

import (
	"fmt"
	"math"

	"krcore/internal/binenc"
	"krcore/internal/similarity"
)

// Index tags of the snapshot encoding. The tag pins the index type a
// threshold was built with, so a snapshot decoded on a metric whose
// best index differs (a format mismatch, never a legal state) fails
// loudly instead of misbehaving.
const (
	tagGrid             uint8 = 1
	tagInverted         uint8 = 2
	tagWeightedInverted uint8 = 3
)

// Grid flag bits.
const (
	gridExact uint8 = 1 << iota
	gridNever
	gridBrute
)

// AppendIndex serialises the derived per-vertex arrays of a bulk
// similarity index — the part of the index that cost a pass over the
// attribute store to build — so a snapshot load reattaches the store
// and skips the construction scan entirely. Only the three built-in
// indexes serialise; Brute and Serial carry no state worth saving and
// snapshots reject their (custom-metric) oracles earlier anyway.
func AppendIndex(b *binenc.Buffer, src similarity.BulkSource) error {
	switch ix := src.(type) {
	case *Grid:
		b.U8(tagGrid)
		var flags uint8
		if ix.exact {
			flags |= gridExact
		}
		if ix.never {
			flags |= gridNever
		}
		if ix.brute {
			flags |= gridBrute
		}
		b.U8(flags)
		b.I64s(ix.cx)
		b.I64s(ix.cy)
	case *Inverted:
		b.U8(tagInverted)
		b.I32s(ix.prefix)
	case *WeightedInverted:
		b.U8(tagWeightedInverted)
		b.F64s(ix.total)
		b.I32s(ix.prefix)
	default:
		return fmt.Errorf("simindex: cannot serialise index %T", src)
	}
	return nil
}

// DecodeIndex reconstructs the bulk index of the oracle's metric from
// arrays written by AppendIndex, without rescanning the attribute
// store. The caller attaches the result via Oracle.SetBulk. The
// decoded index is validated against the oracle: tag matching the
// metric, array lengths matching the store, flags matching the
// threshold — so it behaves bit-identically to a freshly built one.
func DecodeIndex(r *binenc.Reader, o *similarity.Oracle) (similarity.BulkSource, error) {
	tag := r.U8()
	thr := o.Threshold()
	switch m := o.Metric().(type) {
	case similarity.Euclidean:
		if tag != tagGrid {
			return nil, fmt.Errorf("simindex: index tag %d for Euclidean metric, want grid", tag)
		}
		flags := r.U8()
		g := &Grid{
			store: m.Store,
			r2:    thr * thr,
			w:     math.Abs(thr) * 1.001,
			exact: flags&gridExact != 0,
			never: flags&gridNever != 0,
			brute: flags&gridBrute != 0,
		}
		g.cx = r.I64s()
		g.cy = r.I64s()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("simindex: grid: %w", err)
		}
		if flags&^(gridExact|gridNever|gridBrute) != 0 {
			return nil, fmt.Errorf("simindex: grid: unknown flags %#x", flags)
		}
		if g.exact != (g.w == 0) || g.never != math.IsNaN(thr) {
			return nil, fmt.Errorf("simindex: grid flags %#x inconsistent with threshold %g", flags, thr)
		}
		if g.exact || g.never || g.brute {
			if g.cx != nil || g.cy != nil {
				return nil, fmt.Errorf("simindex: degenerate grid carries cell arrays")
			}
		} else if len(g.cx) != m.Store.N() || len(g.cy) != m.Store.N() {
			return nil, fmt.Errorf("simindex: grid cells for %d/%d vertices, store has %d",
				len(g.cx), len(g.cy), m.Store.N())
		}
		return g, nil
	case similarity.Jaccard:
		if tag != tagInverted {
			return nil, fmt.Errorf("simindex: index tag %d for Jaccard metric, want inverted", tag)
		}
		iv := &Inverted{store: m.Store, r: thr, prefix: r.I32s()}
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("simindex: inverted: %w", err)
		}
		if err := checkPrefix(iv.prefix, thr, m.Store.N(), m.Store.Len); err != nil {
			return nil, fmt.Errorf("simindex: inverted: %w", err)
		}
		return iv, nil
	case similarity.WeightedJaccard:
		if tag != tagWeightedInverted {
			return nil, fmt.Errorf("simindex: index tag %d for weighted-Jaccard metric, want weighted inverted", tag)
		}
		iv := &WeightedInverted{store: m.Store, r: thr, total: r.F64s(), prefix: r.I32s()}
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("simindex: weighted inverted: %w", err)
		}
		if err := checkPrefix(iv.prefix, thr, m.Store.N(), m.Store.Len); err != nil {
			return nil, fmt.Errorf("simindex: weighted inverted: %w", err)
		}
		if thr > 0 && len(iv.total) != m.Store.N() {
			return nil, fmt.Errorf("simindex: weighted inverted: totals for %d vertices, store has %d",
				len(iv.total), m.Store.N())
		}
		if thr <= 0 && iv.total != nil {
			return nil, fmt.Errorf("simindex: weighted inverted: totals present at threshold %g", thr)
		}
		return iv, nil
	default:
		return nil, fmt.Errorf("simindex: cannot decode index for metric %T", o.Metric())
	}
}

// checkPrefix validates a decoded prefix array against the threshold
// convention of the inverted indexes: present (one entry per vertex,
// within the vertex's key count) for r > 0, absent otherwise.
func checkPrefix(prefix []int32, thr float64, n int, lenOf func(int32) int) error {
	if thr > 0 {
		if len(prefix) != n {
			return fmt.Errorf("prefix lengths for %d vertices, store has %d", len(prefix), n)
		}
		for i, p := range prefix {
			if p < 0 || int(p) > lenOf(int32(i)) {
				return fmt.Errorf("vertex %d: prefix length %d outside [0,%d]", i, p, lenOf(int32(i)))
			}
		}
		return nil
	}
	if prefix != nil {
		return fmt.Errorf("prefix lengths present at threshold %g", thr)
	}
	return nil
}
