package simindex_test

// Benchmarks for bulk similar-pair construction on the Table 3 dataset
// presets: each pair compares the serial per-pair oracle scan against
// the metric's index. The headline acceptance number is the geo preset
// at its default threshold (gowalla at DefaultR = 10km, the regime of
// the quickstart example and the geosocial case study), where the
// spatial grid replaces the O(n²) distance scan. The denser 25km and
// 100km thresholds are included to show how the advantage shrinks as
// the similar-pair output itself approaches quadratic size.
//
// Run with:
//
//	go test ./internal/simindex -bench SimilarPairs -benchtime 20x
//
// Representative single-core results (Intel Xeon 2.10GHz, GOMAXPROCS=1)
// are recorded in the README's benchmark section.

import (
	"testing"

	"krcore/internal/dataset"
	"krcore/internal/similarity"
	"krcore/internal/simindex"
)

// allVertices returns 0..n-1 for a dataset graph.
func allVertices(d *dataset.Dataset) []int32 {
	vs := make([]int32, d.Graph.N())
	for i := range vs {
		vs[i] = int32(i)
	}
	return vs
}

// benchAdjacency measures one engine's bulk similar-pair construction
// over the whole preset vertex set.
func benchAdjacency(b *testing.B, src similarity.BulkSource, vs []int32) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if adj := src.SimilarAdjacency(vs); len(adj) != len(vs) {
			b.Fatal("bad adjacency size")
		}
	}
}

func loadPreset(b *testing.B, name string) *dataset.Dataset {
	b.Helper()
	d, err := dataset.Load(name)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// defaultR resolves a geo preset's declared default threshold.
func defaultR(b *testing.B, name string) float64 {
	b.Helper()
	cfg, err := dataset.Preset(name)
	if err != nil {
		b.Fatal(err)
	}
	return cfg.DefaultR
}

// Gowalla at its default r (10km).

func BenchmarkSimilarPairsGowallaDefaultSerial(b *testing.B) {
	d := loadPreset(b, "gowalla")
	o := d.Oracle(defaultR(b, "gowalla"))
	benchAdjacency(b, simindex.NewSerial(o), allVertices(d))
}

func BenchmarkSimilarPairsGowallaDefaultGrid(b *testing.B) {
	d := loadPreset(b, "gowalla")
	src := simindex.NewGrid(d.Geo, defaultR(b, "gowalla"))
	benchAdjacency(b, src, allVertices(d))
}

// Gowalla at denser thresholds: the output itself grows toward
// quadratic, shrinking the achievable advantage.

func BenchmarkSimilarPairsGowalla25kmSerial(b *testing.B) {
	d := loadPreset(b, "gowalla")
	benchAdjacency(b, simindex.NewSerial(d.Oracle(25)), allVertices(d))
}

func BenchmarkSimilarPairsGowalla25kmGrid(b *testing.B) {
	d := loadPreset(b, "gowalla")
	benchAdjacency(b, simindex.NewGrid(d.Geo, 25), allVertices(d))
}

func BenchmarkSimilarPairsGowalla100kmSerial(b *testing.B) {
	d := loadPreset(b, "gowalla")
	benchAdjacency(b, simindex.NewSerial(d.Oracle(100)), allVertices(d))
}

func BenchmarkSimilarPairsGowalla100kmGrid(b *testing.B) {
	d := loadPreset(b, "gowalla")
	benchAdjacency(b, simindex.NewGrid(d.Geo, 100), allVertices(d))
}

// Brightkite at its default r (10km).

func BenchmarkSimilarPairsBrightkiteDefaultSerial(b *testing.B) {
	d := loadPreset(b, "brightkite")
	o := d.Oracle(defaultR(b, "brightkite"))
	benchAdjacency(b, simindex.NewSerial(o), allVertices(d))
}

func BenchmarkSimilarPairsBrightkiteDefaultGrid(b *testing.B) {
	d := loadPreset(b, "brightkite")
	src := simindex.NewGrid(d.Geo, defaultR(b, "brightkite"))
	benchAdjacency(b, src, allVertices(d))
}

// DBLP at its default calibration (top 3 permille, weighted Jaccard).

func dblpThreshold(b *testing.B, d *dataset.Dataset) float64 {
	b.Helper()
	cfg, err := dataset.Preset("dblp")
	if err != nil {
		b.Fatal(err)
	}
	return d.TopPermille(cfg.DefaultPermille)
}

func BenchmarkSimilarPairsDBLPDefaultSerial(b *testing.B) {
	d := loadPreset(b, "dblp")
	o := d.Oracle(dblpThreshold(b, d))
	benchAdjacency(b, simindex.NewSerial(o), allVertices(d))
}

func BenchmarkSimilarPairsDBLPDefaultInverted(b *testing.B) {
	d := loadPreset(b, "dblp")
	src := simindex.NewWeightedInverted(d.Weighted, dblpThreshold(b, d))
	benchAdjacency(b, src, allVertices(d))
}

// Index construction cost, for the build-once-serve-many trade-off.

func BenchmarkBuildGridGowalla(b *testing.B) {
	d := loadPreset(b, "gowalla")
	r := defaultR(b, "gowalla")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if simindex.NewGrid(d.Geo, r) == nil {
			b.Fatal("nil index")
		}
	}
}

func BenchmarkBuildInvertedDBLP(b *testing.B) {
	d := loadPreset(b, "dblp")
	r := dblpThreshold(b, d)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if simindex.NewWeightedInverted(d.Weighted, r) == nil {
			b.Fatal("nil index")
		}
	}
}
