// Package simindex provides bulk similar-pair engines behind the
// similarity.BulkSource interface: given a vertex set, an engine
// materialises the whole thresholded similarity structure at once
// instead of answering one Oracle.Similar call per pair.
//
// Three indexes cover the paper's metrics:
//
//   - Grid: a uniform spatial grid for the Euclidean metric. Cells are
//     r×r squares, so every pair within distance r lies in the same or
//     an adjacent cell; preprocessing drops from O(n²) distance checks
//     to near-linear for realistic thresholds.
//   - Inverted / WeightedInverted: an inverted keyword index with
//     prefix-filter and size-ratio upper bounds for the Jaccard and
//     weighted-Jaccard metrics; candidate pairs must share an indexed
//     keyword, and pairs whose cheap upper bound already fails r are
//     pruned before the exact intersection.
//   - Brute: a parallel brute-force fallback for arbitrary metrics that
//     shards the pair matrix across GOMAXPROCS workers.
//
// Serial is the non-indexed reference implementation used by the
// equivalence tests and benchmarks. Every engine agrees bit-for-bit
// with the serial per-pair oracle path: identical similarity graphs,
// identical dissimilarity lists, and therefore identical (k,r)-cores.
package simindex

import (
	"runtime"
	"sync"

	"krcore/internal/similarity"
)

// For returns the bulk engine attached to the oracle, building and
// attaching the best index for its metric on first use. Searches call
// this from their preprocessing stage, so a pre-attached index (see
// krcore.BuildIndex) is reused across many (k,r) queries.
func For(o *similarity.Oracle) similarity.BulkSource {
	if b := o.Bulk(); b != nil {
		return b
	}
	b := New(o)
	o.SetBulk(b)
	return b
}

// New builds the best bulk engine for the oracle's metric: a spatial
// grid for Euclidean, an inverted keyword index for (weighted) Jaccard,
// and the parallel brute-force fallback for any other metric. The
// index snapshots per-vertex statistics of the attribute store, so
// build it after the store is final.
func New(o *similarity.Oracle) similarity.BulkSource {
	switch m := o.Metric().(type) {
	case similarity.Euclidean:
		return NewGrid(m.Store, o.Threshold())
	case similarity.Jaccard:
		return NewInverted(m.Store, o.Threshold())
	case similarity.WeightedJaccard:
		return NewWeightedInverted(m.Store, o.Threshold())
	default:
		return NewBrute(o)
	}
}

// boundSlack is the relative safety margin applied to the prefix-filter
// and weight-ratio upper bounds. The bounds are exact in real
// arithmetic, but the oracle compares floating-point scores against r;
// the slack keeps a bound from pruning a pair whose accumulated float
// score lands on the similar side of r by a few ulps. It is many
// orders of magnitude above accumulation error for realistic attribute
// sizes and costs only a handful of extra candidate verifications.
const boundSlack = 1e-9

// workers caps construction parallelism by the available cores and the
// number of work items.
func workers(items int) int {
	w := runtime.GOMAXPROCS(0)
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runParallel runs fn(w) for w in [0,nw) on nw goroutines (inline when
// nw <= 1) and waits for completion.
func runParallel(nw int, fn func(w int)) {
	if nw <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// mergeRows symmetrises one-sided similar-pair rows into full adjacency
// lists. rows[i] must be sorted ascending and strictly one-sided —
// either every entry < i (backward rows) or every entry > i (forward
// rows), consistently across all rows. The result shares one backing
// slice (CSR layout) and every list is sorted ascending, so the output
// is deterministic however the rows were computed.
func mergeRows(n int, rows [][]int32) [][]int32 {
	deg := make([]int32, n)
	total := 0
	for i := 0; i < n; i++ {
		deg[i] += int32(len(rows[i]))
		total += 2 * len(rows[i])
		for _, j := range rows[i] {
			deg[j]++
		}
	}
	backing := make([]int32, total)
	adj := make([][]int32, n)
	off := 0
	for i := 0; i < n; i++ {
		adj[i] = backing[off : off : off+int(deg[i])]
		off += int(deg[i])
	}
	// Single ascending pass: copying row[i] and then pushing i into the
	// row entries' lists keeps every list sorted for both row
	// directions (backward copies land before later forward pushes;
	// forward copies land after the earlier backward pushes).
	for i := 0; i < n; i++ {
		adj[i] = append(adj[i], rows[i]...)
		for _, j := range rows[i] {
			adj[j] = append(adj[j], int32(i))
		}
	}
	return adj
}

// batchPairs evaluates pred positionally over all pairs, sharding
// across cores for large batches. Pairs of equal ids are similar by
// definition, matching Oracle.Similar.
func batchPairs(pairs [][2]int32, pred func(u, v int32) bool) []bool {
	out := make([]bool, len(pairs))
	nw := 1
	if len(pairs) >= 4096 {
		nw = workers(len(pairs))
	}
	chunk := (len(pairs) + nw - 1) / nw
	runParallel(nw, func(w int) {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		for idx := lo; idx < hi; idx++ {
			p := pairs[idx]
			out[idx] = p[0] == p[1] || pred(p[0], p[1])
		}
	})
	return out
}

// bruteAdjacency computes similar adjacency by sharding the strict
// upper triangle of the pair matrix across workers: row i (all j > i)
// is owned by exactly one worker, so rows need no locking and the
// result is deterministic.
func bruteAdjacency(n int, pred func(i, j int32) bool) [][]int32 {
	rows := make([][]int32, n)
	nw := 1
	if n >= 96 {
		nw = workers(n)
	}
	runParallel(nw, func(w int) {
		// Striding interleaves long (small i) and short (large i) rows
		// across workers, balancing the triangle.
		for i := w; i < n; i += nw {
			var row []int32
			for j := i + 1; j < n; j++ {
				if pred(int32(i), int32(j)) {
					row = append(row, int32(j))
				}
			}
			rows[i] = row
		}
	})
	return mergeRows(n, rows)
}

// completeAdjacency is the all-similar case (threshold r <= 0 on a
// similarity metric): every pair of distinct vertices is similar.
func completeAdjacency(n int) [][]int32 {
	backing := make([]int32, n*(n-1))
	adj := make([][]int32, n)
	off := 0
	for i := 0; i < n; i++ {
		row := backing[off : off+n-1]
		off += n - 1
		w := 0
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			row[w] = int32(j)
			w++
		}
		adj[i] = row
	}
	return adj
}
