package simindex_test

import (
	"math"
	"math/rand"
	"testing"

	"krcore/internal/attr"
	"krcore/internal/simgraph"
	"krcore/internal/similarity"
	"krcore/internal/simindex"
)

// sameAdjacency compares two local adjacency-list sets exactly.
func sameAdjacency(a, b [][]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				return false
			}
		}
	}
	return true
}

// subset draws a random distinct vertex subset (sometimes everything,
// sometimes a shuffled slice, sometimes tiny or empty).
func subset(rng *rand.Rand, n int) []int32 {
	switch rng.Intn(4) {
	case 0:
		all := make([]int32, n)
		for i := range all {
			all[i] = int32(i)
		}
		return all
	case 1:
		return nil
	default:
		perm := rng.Perm(n)
		k := rng.Intn(n + 1)
		out := make([]int32, 0, k)
		for _, v := range perm[:k] {
			out = append(out, int32(v))
		}
		return out
	}
}

// checkSource cross-checks one bulk engine against the serial reference
// on random subsets and random pair batches.
func checkSource(t *testing.T, rng *rand.Rand, name string, src similarity.BulkSource, o *similarity.Oracle, n int) {
	t.Helper()
	serial := simindex.NewSerial(o)
	for trial := 0; trial < 4; trial++ {
		vs := subset(rng, n)
		got := src.SimilarAdjacency(vs)
		want := serial.SimilarAdjacency(vs)
		if !sameAdjacency(got, want) {
			t.Fatalf("%s: SimilarAdjacency mismatch on %v (r=%v):\ngot  %v\nwant %v",
				name, vs, o.Threshold(), got, want)
		}
		// The bulk dissimilarity lists must be bit-identical to the
		// serial BuildDissim, and the bulk similarity graph to the
		// serial SimilarityGraph.
		d := simgraph.BuildDissimBulk(src, vs)
		ds := simgraph.BuildDissim(o, vs)
		if d.Pairs != ds.Pairs || !sameAdjacency(d.Lists, ds.Lists) {
			t.Fatalf("%s: BuildDissimBulk mismatch on %v (r=%v): got %v/%d want %v/%d",
				name, vs, o.Threshold(), d.Lists, d.Pairs, ds.Lists, ds.Pairs)
		}
		sg := simgraph.SimilarityGraphBulk(src, vs)
		sgs := simgraph.SimilarityGraph(o, vs)
		if sg.N() != sgs.N() || sg.M() != sgs.M() {
			t.Fatalf("%s: SimilarityGraphBulk mismatch on %v: %d/%d edges, want %d/%d",
				name, vs, sg.N(), sg.M(), sgs.N(), sgs.M())
		}
		for u := 0; u < sg.N(); u++ {
			gu, wu := sg.Neighbors(int32(u)), sgs.Neighbors(int32(u))
			for k := range wu {
				if gu[k] != wu[k] {
					t.Fatalf("%s: SimilarityGraphBulk neighbours differ at %d", name, u)
				}
			}
		}
	}
	// Batched pair evaluation, including self-pairs.
	pairs := make([][2]int32, 0, 64)
	for i := 0; i < 60; i++ {
		pairs = append(pairs, [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))})
	}
	pairs = append(pairs, [2]int32{0, 0})
	got := src.SimilarBatch(pairs)
	for i, p := range pairs {
		if want := o.Similar(p[0], p[1]); got[i] != want {
			t.Fatalf("%s: SimilarBatch(%v) = %v, want %v (r=%v)", name, p, got[i], want, o.Threshold())
		}
	}
}

// geoStore builds a random geo store, with duplicated coordinates
// sprinkled in (the r=0 degenerate case needs exact collisions).
func geoStore(rng *rand.Rand, n int) *attr.Geo {
	geo := attr.NewGeo(n)
	for u := 0; u < n; u++ {
		if u > 0 && rng.Intn(5) == 0 {
			geo.SetVertex(int32(u), geo.Vertex(int32(rng.Intn(u)))) // duplicate point
			continue
		}
		geo.SetVertex(int32(u), attr.Point{
			X: rng.Float64()*40 - 20,
			Y: rng.Float64()*40 - 20,
		})
	}
	return geo
}

func TestGridMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(60)
		geo := geoStore(rng, n)
		var r float64
		switch trial % 5 {
		case 0:
			r = 0 // exact-match degenerate case
		case 1:
			r = 1e9 // all-similar
		case 2:
			r = -(1 + rng.Float64()*5) // negative threshold: |r| semantics
		default:
			r = rng.Float64() * 15
		}
		o := similarity.NewOracle(similarity.Euclidean{Store: geo}, r)
		checkSource(t, rng, "grid", simindex.NewGrid(geo, r), o, n)
	}
}

// TestNaNThresholdMatchesSerial: a NaN threshold satisfies no score
// comparison, so every engine must report no similar pairs (and must
// not panic), exactly like the oracle.
func TestNaNThresholdMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	nan := math.NaN()
	n := 20

	geo := geoStore(rng, n)
	og := similarity.NewOracle(similarity.Euclidean{Store: geo}, nan)
	checkSource(t, rng, "grid-nan", simindex.NewGrid(geo, nan), og, n)

	kw := keywordStore(rng, n)
	oj := similarity.NewOracle(similarity.Jaccard{Store: kw}, nan)
	checkSource(t, rng, "inverted-nan", simindex.NewInverted(kw, nan), oj, n)

	ww := weightedStore(rng, n)
	ow := similarity.NewOracle(similarity.WeightedJaccard{Store: ww}, nan)
	checkSource(t, rng, "weighted-nan", simindex.NewWeightedInverted(ww, nan), ow, n)
}

func TestGridUngriddableFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	geo := attr.NewGeo(6)
	for u := 0; u < 6; u++ {
		geo.SetVertex(int32(u), attr.Point{X: float64(u) * 10, Y: 0})
	}
	// A threshold so small the cell coordinates overflow: the grid must
	// fall back to brute-force scans, still matching the oracle.
	r := 1e-300
	o := similarity.NewOracle(similarity.Euclidean{Store: geo}, r)
	checkSource(t, rng, "grid-fallback", simindex.NewGrid(geo, r), o, 6)
}

// keywordStore builds a random keyword store including empty sets.
func keywordStore(rng *rand.Rand, n int) *attr.Keywords {
	kw := attr.NewKeywords(n)
	for u := 0; u < n; u++ {
		if rng.Intn(6) == 0 {
			kw.SetVertex(int32(u), nil) // empty keyword set
			continue
		}
		topic := int32(rng.Intn(3)) * 10
		words := []int32{topic, topic + 1}
		for i := 0; i < rng.Intn(6); i++ {
			words = append(words, int32(rng.Intn(25)))
		}
		kw.SetVertex(int32(u), words)
	}
	return kw
}

func TestInvertedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(60)
		kw := keywordStore(rng, n)
		var r float64
		switch trial % 5 {
		case 0:
			r = 0 // everything similar (score >= 0)
		case 1:
			r = -0.5 // negative threshold: also everything similar
		case 2:
			r = 1 // only identical non-empty sets
		default:
			r = rng.Float64()
		}
		o := similarity.NewOracle(similarity.Jaccard{Store: kw}, r)
		checkSource(t, rng, "inverted", simindex.NewInverted(kw, r), o, n)
	}
}

// weightedStore builds a random weighted store including empty and
// zero-weight lists.
func weightedStore(rng *rand.Rand, n int) *attr.Weighted {
	ww := attr.NewWeighted(n)
	for u := 0; u < n; u++ {
		if rng.Intn(6) == 0 {
			ww.SetVertex(int32(u), nil)
			continue
		}
		var entries []attr.WeightedEntry
		topic := int32(rng.Intn(3)) * 10
		for i := 0; i < 1+rng.Intn(6); i++ {
			w := float64(rng.Intn(5))
			if rng.Intn(8) == 0 {
				w = 0 // zero-weight entries stress the weight-ratio bound
			}
			entries = append(entries, attr.WeightedEntry{
				Key:    topic + int32(rng.Intn(8)),
				Weight: w,
			})
		}
		ww.SetVertex(int32(u), entries)
	}
	return ww
}

func TestWeightedInvertedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(60)
		ww := weightedStore(rng, n)
		var r float64
		switch trial % 4 {
		case 0:
			r = 0
		case 1:
			r = 1
		default:
			r = rng.Float64()
		}
		o := similarity.NewOracle(similarity.WeightedJaccard{Store: ww}, r)
		checkSource(t, rng, "weighted-inverted", simindex.NewWeightedInverted(ww, r), o, n)
	}
}

// negated inverts an existing metric's sign, producing a metric type
// the index factory does not recognise.
type negated struct{ m similarity.Metric }

func (n negated) Score(u, v int32) float64 { return -n.m.Score(u, v) }
func (n negated) Distance() bool           { return !n.m.Distance() }
func (n negated) Name() string             { return "neg-" + n.m.Name() }

func TestBruteMatchesSerialForCustomMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(50)
		geo := geoStore(rng, n)
		// Negated Euclidean distance is a "similarity" (bigger = closer);
		// the factory must fall back to the parallel brute engine.
		m := negated{m: similarity.Euclidean{Store: geo}}
		r := -rng.Float64() * 15
		o := similarity.NewOracle(m, r)
		src := simindex.New(o)
		if _, ok := src.(*simindex.Brute); !ok {
			t.Fatalf("custom metric should select Brute, got %T", src)
		}
		checkSource(t, rng, "brute", src, o, n)
	}
}

func TestForAttachesAndReuses(t *testing.T) {
	geo := attr.NewGeo(4)
	o := similarity.NewOracle(similarity.Euclidean{Store: geo}, 2)
	if o.Bulk() != nil {
		t.Fatal("fresh oracle should have no bulk engine")
	}
	a := simindex.For(o)
	if _, ok := a.(*simindex.Grid); !ok {
		t.Fatalf("Euclidean oracle should select Grid, got %T", a)
	}
	if b := simindex.For(o); b != a {
		t.Fatal("For must reuse the attached engine")
	}
	if o.Bulk() != a {
		t.Fatal("For must attach the engine to the oracle")
	}
}

func TestFactorySelectsIndexPerMetric(t *testing.T) {
	kw := attr.NewKeywords(3)
	ww := attr.NewWeighted(3)
	if _, ok := simindex.New(similarity.NewOracle(similarity.Jaccard{Store: kw}, 0.5)).(*simindex.Inverted); !ok {
		t.Fatal("Jaccard should select Inverted")
	}
	if _, ok := simindex.New(similarity.NewOracle(similarity.WeightedJaccard{Store: ww}, 0.5)).(*simindex.WeightedInverted); !ok {
		t.Fatal("WeightedJaccard should select WeightedInverted")
	}
}
