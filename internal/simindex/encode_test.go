package simindex

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"krcore/internal/attr"
	"krcore/internal/binenc"
	"krcore/internal/similarity"
)

// roundTripIndex encodes the oracle's freshly built index and decodes
// it onto a second oracle over the same store.
func roundTripIndex(t *testing.T, o *similarity.Oracle) similarity.BulkSource {
	t.Helper()
	fresh := New(o)
	var b binenc.Buffer
	if err := AppendIndex(&b, fresh); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeIndex(binenc.NewReader(b.Bytes()), o)
	if err != nil {
		t.Fatal(err)
	}
	// The decoded index must agree with the fresh one on a full
	// adjacency query.
	n := 0
	switch m := o.Metric().(type) {
	case similarity.Euclidean:
		n = m.Store.N()
	case similarity.Jaccard:
		n = m.Store.N()
	case similarity.WeightedJaccard:
		n = m.Store.N()
	}
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(i)
	}
	if fmt.Sprint(got.SimilarAdjacency(vs)) != fmt.Sprint(fresh.SimilarAdjacency(vs)) {
		t.Fatal("decoded index disagrees with fresh index")
	}
	return got
}

func TestGridIndexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	geo := attr.NewGeo(60)
	for u := 0; u < 60; u++ {
		geo.SetVertex(int32(u), attr.Point{X: rng.Float64() * 40, Y: rng.Float64() * 40})
	}
	for _, r := range []float64{5, 0} { // gridded and exact-match cases
		if _, ok := roundTripIndex(t, similarity.NewOracle(similarity.Euclidean{Store: geo}, r)).(*Grid); !ok {
			t.Fatalf("r=%g: decoded index is not a grid", r)
		}
	}
}

func TestInvertedIndexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	kw := attr.NewKeywords(50)
	for u := 0; u < 50; u++ {
		kw.SetVertex(int32(u), []int32{int32(rng.Intn(20)), int32(rng.Intn(20)), int32(rng.Intn(20))})
	}
	for _, r := range []float64{0.4, 0} {
		if _, ok := roundTripIndex(t, similarity.NewOracle(similarity.Jaccard{Store: kw}, r)).(*Inverted); !ok {
			t.Fatalf("r=%g: decoded index is not inverted", r)
		}
	}
}

func TestWeightedInvertedIndexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ws := attr.NewWeighted(50)
	for u := 0; u < 50; u++ {
		ws.SetVertex(int32(u), []attr.WeightedEntry{
			{Key: int32(rng.Intn(20)), Weight: float64(1 + rng.Intn(3))},
			{Key: int32(rng.Intn(20)), Weight: float64(1 + rng.Intn(3))},
		})
	}
	for _, r := range []float64{0.5, 0} {
		o := similarity.NewOracle(similarity.WeightedJaccard{Store: ws}, r)
		if _, ok := roundTripIndex(t, o).(*WeightedInverted); !ok {
			t.Fatalf("r=%g: decoded index is not weighted inverted", r)
		}
	}
}

func TestAppendIndexRejectsBrute(t *testing.T) {
	geo := attr.NewGeo(2)
	o := similarity.NewOracle(similarity.Euclidean{Store: geo}, 1)
	var b binenc.Buffer
	if err := AppendIndex(&b, NewBrute(o)); err == nil {
		t.Fatal("brute index serialised")
	}
}

func TestDecodeIndexRejectsCorruption(t *testing.T) {
	geo := attr.NewGeo(10)
	o := similarity.NewOracle(similarity.Euclidean{Store: geo}, 2)
	var b binenc.Buffer
	if err := AppendIndex(&b, New(o)); err != nil {
		t.Fatal(err)
	}
	raw := b.Bytes()

	// Wrong tag for the metric.
	mut := append([]byte(nil), raw...)
	mut[0] = tagInverted
	if _, err := DecodeIndex(binenc.NewReader(mut), o); err == nil {
		t.Fatal("wrong tag accepted")
	}
	// Inconsistent flags (never-flag on a finite threshold).
	mut = append([]byte(nil), raw...)
	mut[1] |= gridNever
	if _, err := DecodeIndex(binenc.NewReader(mut), o); err == nil {
		t.Fatal("inconsistent grid flags accepted")
	}
	// Truncation.
	if _, err := DecodeIndex(binenc.NewReader(raw[:len(raw)-3]), o); err == nil {
		t.Fatal("truncated index accepted")
	}
	// Cell arrays sized for the wrong store.
	small := attr.NewGeo(3)
	os := similarity.NewOracle(similarity.Euclidean{Store: small}, 2)
	if _, err := DecodeIndex(binenc.NewReader(raw), os); err == nil {
		t.Fatal("mis-sized cell arrays accepted")
	}
}

func TestDecodeInvertedRejectsBadPrefix(t *testing.T) {
	kw := attr.NewKeywords(2)
	kw.SetVertex(0, []int32{1, 2})
	kw.SetVertex(1, []int32{2, 3})
	o := similarity.NewOracle(similarity.Jaccard{Store: kw}, 0.5)
	var b binenc.Buffer
	b.U8(tagInverted)
	b.I32s([]int32{3, 1}) // prefix 3 > |keys(0)| = 2
	if _, err := DecodeIndex(binenc.NewReader(b.Bytes()), o); err == nil {
		t.Fatal("prefix beyond key count accepted")
	}
	if math.IsNaN(o.Threshold()) {
		t.Fatal("unreachable")
	}
}
