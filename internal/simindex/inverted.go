package simindex

import (
	"math"
	"sort"

	"krcore/internal/attr"
)

// Inverted is the bulk engine for the plain Jaccard metric: an inverted
// keyword index with the classic prefix filter. Each vertex indexes
// only the first |A| - ⌈r·|A|⌉ + 1 of its sorted keywords; two sets
// with Jaccard >= r must share a keyword inside both prefixes, so
// candidate pairs are exactly the co-occurrences in the prefix lists.
// Candidates whose size-ratio upper bound min/max < r are rejected
// before the exact intersection.
type Inverted struct {
	store  *attr.Keywords
	r      float64
	prefix []int32 // indexed prefix length per vertex
}

// NewInverted builds the inverted index for the store at threshold r.
func NewInverted(store *attr.Keywords, r float64) *Inverted {
	iv := &Inverted{store: store, r: r}
	if r > 0 {
		n := store.N()
		iv.prefix = make([]int32, n)
		for u := 0; u < n; u++ {
			iv.prefix[u] = jaccardPrefixLen(store.Len(int32(u)), r)
		}
	}
	return iv
}

// jaccardPrefixLen returns the prefix length of a set of the given
// size: a pair with Jaccard >= r shares at least α = ⌈r·size⌉ keys, so
// at least one shared key falls within the first size-α+1. The slack
// keeps the bound sound against the oracle's floating-point score
// comparison; the empty prefix (size 0 or r > 1) produces no
// candidates, matching a vertex that can never reach the threshold.
func jaccardPrefixLen(size int, r float64) int32 {
	if size == 0 {
		return 0
	}
	alpha := int(math.Ceil(r * float64(size) * (1 - boundSlack)))
	if alpha < 1 {
		alpha = 1
	}
	if alpha > size {
		return 0
	}
	return int32(size - alpha + 1)
}

// pairSimilar mirrors Oracle.Similar for the Jaccard metric, with the
// size-ratio reject first. Correctly-rounded division is monotone, so
// float64(min)/float64(max) < r soundly implies the oracle's
// inter/union < r.
func (iv *Inverted) pairSimilar(u, v int32) bool {
	if iv.r > 0 {
		a, b := iv.store.Len(u), iv.store.Len(v)
		if a > b {
			a, b = b, a
		}
		if b == 0 || float64(a)/float64(b) < iv.r {
			return false
		}
	}
	return iv.store.Jaccard(u, v) >= iv.r
}

// SimilarBatch implements similarity.BulkSource.
func (iv *Inverted) SimilarBatch(pairs [][2]int32) []bool {
	return batchPairs(pairs, iv.pairSimilar)
}

// SimilarAdjacency implements similarity.BulkSource.
func (iv *Inverted) SimilarAdjacency(vertices []int32) [][]int32 {
	if math.IsNaN(iv.r) {
		// score >= NaN holds for no pair.
		return make([][]int32, len(vertices))
	}
	if iv.r <= 0 {
		// Every score is >= 0 >= r: all pairs are similar.
		return completeAdjacency(len(vertices))
	}
	return invertedAdjacency(len(vertices),
		func(i int32) []int32 {
			v := vertices[i]
			return iv.store.Vertex(v)[:iv.prefix[v]]
		},
		func(i, j int32) bool { return iv.pairSimilar(vertices[i], vertices[j]) },
	)
}

// WeightedInverted is the bulk engine for the weighted Jaccard metric.
// The prefix of a vertex is the shortest key prefix whose remaining
// (suffix) weight falls below r·W, W being the vertex's total weight:
// if two vertices share no prefix key, Σmin is bounded by the smaller
// suffix weight and the score stays below r. Candidates failing the
// weight-ratio bound min(W_u,W_v)/max(W_u,W_v) >= r are rejected before
// the exact merge.
type WeightedInverted struct {
	store  *attr.Weighted
	r      float64
	total  []float64 // per-vertex weight sum
	prefix []int32
}

// NewWeightedInverted builds the weighted inverted index for the store
// at threshold r.
func NewWeightedInverted(store *attr.Weighted, r float64) *WeightedInverted {
	iv := &WeightedInverted{store: store, r: r}
	if r > 0 {
		n := store.N()
		iv.total = make([]float64, n)
		iv.prefix = make([]int32, n)
		for u := 0; u < n; u++ {
			ws := store.Weights(int32(u))
			var w float64
			for _, x := range ws {
				w += x
			}
			iv.total[u] = w
			iv.prefix[u] = weightedPrefixLen(ws, w, r)
		}
	}
	return iv
}

// weightedPrefixLen returns the smallest prefix length p such that the
// suffix weight beyond p is below r·total (with slack); beyond that
// point no disjoint-prefix pair can reach the threshold.
func weightedPrefixLen(ws []float64, total, r float64) int32 {
	if total <= 0 {
		return 0
	}
	bound := r * total * (1 - boundSlack)
	suffix := total
	for p := 0; p < len(ws); p++ {
		if suffix < bound {
			return int32(p)
		}
		suffix -= ws[p]
	}
	return int32(len(ws))
}

// pairSimilar mirrors Oracle.Similar for the weighted Jaccard metric,
// with the weight-ratio reject first.
func (iv *WeightedInverted) pairSimilar(u, v int32) bool {
	if iv.r > 0 {
		wa, wb := iv.total[u], iv.total[v]
		if wa > wb {
			wa, wb = wb, wa
		}
		if wb <= 0 || wa/wb < iv.r*(1-boundSlack) {
			return false
		}
	}
	return iv.store.WeightedJaccard(u, v) >= iv.r
}

// SimilarBatch implements similarity.BulkSource.
func (iv *WeightedInverted) SimilarBatch(pairs [][2]int32) []bool {
	return batchPairs(pairs, iv.pairSimilar)
}

// SimilarAdjacency implements similarity.BulkSource.
func (iv *WeightedInverted) SimilarAdjacency(vertices []int32) [][]int32 {
	if math.IsNaN(iv.r) {
		// score >= NaN holds for no pair.
		return make([][]int32, len(vertices))
	}
	if iv.r <= 0 {
		return completeAdjacency(len(vertices))
	}
	return invertedAdjacency(len(vertices),
		func(i int32) []int32 {
			v := vertices[i]
			return iv.store.Keys(v)[:iv.prefix[v]]
		},
		func(i, j int32) bool { return iv.pairSimilar(vertices[i], vertices[j]) },
	)
}

// invertedAdjacency is the candidate sweep shared by both inverted
// indexes. prefixKeys yields the indexed key prefix of a local vertex;
// accept performs the bound checks and the exact verification.
//
// The sweep first builds the prefix posting lists for the subset, then
// probes in parallel: vertex i collects every j < i co-occurring in one
// of its prefix lists (deduplicated with a stamp array), so each
// unordered candidate pair is examined exactly once, by its larger
// endpoint. Rows are sorted before the symmetric merge, making the
// output deterministic.
func invertedAdjacency(n int, prefixKeys func(int32) []int32, accept func(i, j int32) bool) [][]int32 {
	lists := make(map[int32][]int32)
	for i := int32(0); i < int32(n); i++ {
		for _, t := range prefixKeys(i) {
			lists[t] = append(lists[t], i)
		}
	}
	rows := make([][]int32, n)
	nw := 1
	if n >= 2048 {
		nw = workers(n)
	}
	runParallel(nw, func(w int) {
		seen := make([]int32, n) // stamp = probing vertex + 1
		var cand []int32
		for i := int32(w); i < int32(n); i += int32(nw) {
			cand = cand[:0]
			for _, t := range prefixKeys(i) {
				for _, j := range lists[t] {
					if j >= i {
						break // lists are ascending; the rest probe later
					}
					if seen[j] == i+1 {
						continue
					}
					seen[j] = i + 1
					cand = append(cand, j)
				}
			}
			sort.Slice(cand, func(a, b int) bool { return cand[a] < cand[b] })
			var row []int32
			for _, j := range cand {
				if accept(i, j) {
					row = append(row, j)
				}
			}
			rows[i] = row
		}
	})
	return mergeRows(n, rows)
}
