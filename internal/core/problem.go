package core

import (
	"sort"

	"krcore/internal/graph"
	"krcore/internal/kcore"
	"krcore/internal/simgraph"
	"krcore/internal/similarity"
	"krcore/internal/simindex"
)

// problem is one candidate component prepared by the initial stage of
// Algorithm 1: a connected component of the k-core of the graph after
// removing dissimilar edges, re-indexed with local vertex ids 0..n-1.
type problem struct {
	k      int
	n      int
	adj    [][]int32 // structural adjacency (all edges join similar vertices)
	dissim [][]int32 // pairwise-dissimilar local vertex lists, sorted
	pairs  int       // number of dissimilar pairs
	orig   []int32   // local id -> global id
	maxDeg int       // maximum structural degree (for component ordering)
}

// prepare runs the shared preprocessing of Algorithm 1 lines 1-3: drop
// edges between dissimilar vertices, compute the k-core, split into
// connected components and build the local problems. Components smaller
// than k+1 vertices cannot host a (k,r)-core and are skipped.
//
// Both preprocessing stages run through the oracle's bulk similarity
// engine (simindex): the edge filter is answered as one batched query
// and the per-component dissimilarity lists come from the engine's bulk
// similar-pair construction instead of O(n²) per-pair oracle calls.
// The engine is bit-identical to the serial oracle path, so the
// resulting problems — and every core derived from them — are
// unchanged.
func prepare(g *graph.Graph, p Params) []*problem {
	src := simindex.For(p.Oracle)
	filtered := g.FilterEdgesBatch(src.SimilarBatch)
	kc := kcore.KCore(filtered, p.K)
	if len(kc) == 0 {
		return nil
	}
	comps := filtered.ComponentsOf(kc)
	var probs []*problem
	for _, comp := range comps {
		if len(comp) < p.K+1 {
			continue
		}
		probs = append(probs, buildProblem(filtered, src, p, comp))
	}
	return probs
}

// buildProblem constructs the local problem for one component of the
// filtered k-core.
func buildProblem(filtered *graph.Graph, src similarity.BulkSource, p Params, comp []int32) *problem {
	sub, orig := filtered.Induced(comp)
	d := simgraph.BuildDissimBulk(src, orig)
	pr := &problem{
		k:      p.K,
		n:      sub.N(),
		adj:    make([][]int32, sub.N()),
		dissim: d.Lists,
		pairs:  d.Pairs,
		orig:   orig,
	}
	for u := 0; u < sub.N(); u++ {
		pr.adj[u] = sub.Neighbors(int32(u))
		if len(pr.adj[u]) > pr.maxDeg {
			pr.maxDeg = len(pr.adj[u])
		}
	}
	return pr
}

// toGlobal maps sorted local vertex ids to sorted global ids.
func (p *problem) toGlobal(locals []int32) []int32 {
	out := make([]int32, len(locals))
	for i, v := range locals {
		out[i] = p.orig[v]
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// canonicalize sorts cores lexicographically (then by length) so results
// compare deterministically across algorithms.
func canonicalize(cores [][]int32) [][]int32 {
	sort.Slice(cores, func(i, j int) bool {
		a, b := cores[i], cores[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return cores
}

// dedupCores removes duplicate vertex sets from a canonicalized list.
func dedupCores(cores [][]int32) [][]int32 {
	out := cores[:0]
	for i, c := range cores {
		if i > 0 && equalCores(cores[i-1], c) {
			continue
		}
		out = append(out, c)
	}
	return out
}

func equalCores(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// filterMaximal removes cores that are proper subsets of another core,
// implementing the naive maximal check of Algorithm 1 lines 6-8. Input
// cores must each be sorted; the result is canonicalized.
func filterMaximal(cores [][]int32) [][]int32 {
	if len(cores) <= 1 {
		return canonicalize(cores)
	}
	// Sort by size descending; a core can only be contained in a larger
	// (or equal, i.e. duplicate) one.
	sort.Slice(cores, func(i, j int) bool { return len(cores[i]) > len(cores[j]) })
	var kept [][]int32
	for _, c := range cores {
		contained := false
		for _, big := range kept {
			if len(big) >= len(c) && isSubset(c, big) {
				contained = true
				break
			}
		}
		if !contained {
			kept = append(kept, c)
		}
	}
	return dedupCores(canonicalize(kept))
}

// isSubset reports whether sorted slice a is a subset of sorted slice b.
func isSubset(a, b []int32) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}
