package core

import (
	"sort"

	"krcore/internal/graph"
	"krcore/internal/kcore"
	"krcore/internal/simgraph"
	"krcore/internal/similarity"
	"krcore/internal/simindex"
)

// problem is one candidate component prepared by the initial stage of
// Algorithm 1: a connected component of the k-core of the graph after
// removing dissimilar edges, re-indexed with local vertex ids 0..n-1.
type problem struct {
	k      int
	n      int
	adj    [][]int32 // structural adjacency (all edges join similar vertices)
	dissim [][]int32 // pairwise-dissimilar local vertex lists, sorted
	pairs  int       // number of dissimilar pairs
	orig   []int32   // local id -> global id
	maxDeg int       // maximum structural degree (for component ordering)
}

// Prepared holds the candidate components of one (k,r) problem, the
// output of Algorithm 1 lines 1-3, ready to be searched many times.
// A Prepared is immutable after construction and safe for concurrent
// use: Enumerate, EnumerateContaining and FindMaximum may all run at
// once against the same Prepared, each with its own search state and
// budget. The serving layer (krcore.Engine) caches Prepared values per
// (k,r) so repeated queries skip preprocessing entirely.
type Prepared struct {
	p     Params
	n     int        // vertex count of the source graph (anchor validation)
	probs []*problem // candidate components in discovery order
	byDeg []*problem // the same components sorted by maxDeg descending

	// coreNums holds the core number of every vertex of the filtered
	// graph (length n), the substrate incremental maintenance repairs
	// instead of re-peeling (see PatchPreparedDelta). compID maps each
	// vertex to the smallest vertex of its candidate component — the key
	// its problem is identified by — or -1 for vertices outside every
	// prepared component. Both are immutable once built and shared
	// copy-on-write across patches that leave them unchanged.
	coreNums []int32
	compID   []int32
}

// CoreNumbers returns the per-vertex core numbers of the filtered graph
// the problem was prepared on. The slice is shared and must not be
// modified.
func (pr *Prepared) CoreNumbers() []int32 { return pr.coreNums }

// newCompIDs returns a component-id array with every vertex unassigned.
func newCompIDs(n int) []int32 {
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = -1
	}
	return ids
}

// coreMembers lists the vertices with core number >= k, ascending.
func coreMembers(core []int32, k int) []int32 {
	var out []int32
	for u, c := range core {
		if c >= int32(k) {
			out = append(out, int32(u))
		}
	}
	return out
}

// Prepare runs the shared preprocessing of Algorithm 1 lines 1-3 and
// returns the reusable candidate components.
func Prepare(g *graph.Graph, p Params) (*Prepared, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	return PrepareFiltered(FilterDissimilar(g, p.Oracle), p)
}

// FilterDissimilar drops the edges of g joining dissimilar vertex pairs
// (Algorithm 1 line 1), answered as one batched query through the
// oracle's bulk similarity engine. The result depends only on the
// similarity threshold r, not on k, so a serving layer can share one
// filtered graph across every k at the same r.
func FilterDissimilar(g *graph.Graph, o *similarity.Oracle) *graph.Graph {
	return g.FilterEdgesBatch(simindex.For(o).SimilarBatch)
}

// PrepareFiltered builds the candidate components for p on a graph
// already filtered by FilterDissimilar with p.Oracle: it computes the
// k-core, splits it into connected components and builds the local
// problems. Components smaller than k+1 vertices cannot host a
// (k,r)-core and are skipped.
//
// The per-component dissimilarity lists come from the bulk engine's
// similar-pair construction instead of O(n²) per-pair oracle calls.
// The engine is bit-identical to the serial oracle path, so the
// resulting problems — and every core derived from them — are
// unchanged.
func PrepareFiltered(filtered *graph.Graph, p Params) (*Prepared, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	pr := &Prepared{p: p, n: filtered.N()}
	pr.coreNums = kcore.Decompose32(filtered)
	pr.compID = newCompIDs(pr.n)
	src := simindex.For(p.Oracle)
	kc := coreMembers(pr.coreNums, p.K)
	if len(kc) == 0 {
		return pr, nil
	}
	for _, comp := range filtered.ComponentsOf(kc) {
		if len(comp) < p.K+1 {
			continue
		}
		for _, v := range comp {
			pr.compID[v] = comp[0]
		}
		pr.probs = append(pr.probs, buildProblem(filtered, src, p, comp))
	}
	// The maximum search starts from the component holding the
	// highest-degree vertex (Section 6.1): a large core early tightens
	// the size bound everywhere. Sorted once here so concurrent
	// FindMaximum calls share the read-only order.
	pr.byDeg = append([]*problem(nil), pr.probs...)
	sort.SliceStable(pr.byDeg, func(i, j int) bool { return pr.byDeg[i].maxDeg > pr.byDeg[j].maxDeg })
	return pr, nil
}

// Components reports the number of prepared candidate components.
func (pr *Prepared) Components() int { return len(pr.probs) }

// prepare is the single-shot form used by the baselines and tests.
func prepare(g *graph.Graph, p Params) []*problem {
	pr, err := Prepare(g, p)
	if err != nil {
		return nil
	}
	return pr.probs
}

// buildProblem constructs the local problem for one component of the
// filtered k-core.
func buildProblem(filtered *graph.Graph, src similarity.BulkSource, p Params, comp []int32) *problem {
	sub, orig := filtered.Induced(comp)
	d := simgraph.BuildDissimBulk(src, orig)
	pr := &problem{
		k:      p.K,
		n:      sub.N(),
		adj:    make([][]int32, sub.N()),
		dissim: d.Lists,
		pairs:  d.Pairs,
		orig:   orig,
	}
	for u := 0; u < sub.N(); u++ {
		pr.adj[u] = sub.Neighbors(int32(u))
		if len(pr.adj[u]) > pr.maxDeg {
			pr.maxDeg = len(pr.adj[u])
		}
	}
	return pr
}

// toGlobal maps sorted local vertex ids to sorted global ids.
func (p *problem) toGlobal(locals []int32) []int32 {
	out := make([]int32, len(locals))
	for i, v := range locals {
		out[i] = p.orig[v]
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// canonicalize sorts cores lexicographically (then by length) so results
// compare deterministically across algorithms.
func canonicalize(cores [][]int32) [][]int32 {
	sort.Slice(cores, func(i, j int) bool {
		a, b := cores[i], cores[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return cores
}

// dedupCores removes duplicate vertex sets from a canonicalized list.
func dedupCores(cores [][]int32) [][]int32 {
	out := cores[:0]
	for i, c := range cores {
		if i > 0 && equalCores(cores[i-1], c) {
			continue
		}
		out = append(out, c)
	}
	return out
}

func equalCores(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// filterMaximal removes cores that are proper subsets of another core,
// implementing the naive maximal check of Algorithm 1 lines 6-8. Input
// cores must each be sorted; the result is canonicalized.
func filterMaximal(cores [][]int32) [][]int32 {
	if len(cores) <= 1 {
		return canonicalize(cores)
	}
	// Sort by size descending; a core can only be contained in a larger
	// (or equal, i.e. duplicate) one.
	sort.Slice(cores, func(i, j int) bool { return len(cores[i]) > len(cores[j]) })
	var kept [][]int32
	for _, c := range cores {
		contained := false
		for _, big := range kept {
			if len(big) >= len(c) && isSubset(c, big) {
				contained = true
				break
			}
		}
		if !contained {
			kept = append(kept, c)
		}
	}
	return dedupCores(canonicalize(kept))
}

// isSubset reports whether sorted slice a is a subset of sorted slice b.
func isSubset(a, b []int32) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}
