package core

import (
	"sort"

	"krcore/internal/graph"
	"krcore/internal/kcore"
	"krcore/internal/similarity"
	"krcore/internal/simindex"
)

// PatchStats reports how much prepared state a PatchPrepared call
// carried over versus rebuilt.
type PatchStats struct {
	// Reused counts candidate components taken verbatim from the old
	// Prepared (identical vertex set, no touched member).
	Reused int
	// Rebuilt counts candidate components reconstructed from the new
	// filtered graph.
	Rebuilt int
}

// PatchPrepared rebuilds the candidate components of a (k,r) problem
// for a mutated filtered graph, reusing every component of old that the
// mutation provably left intact. It recomputes the structural part from
// scratch — the k-core of the new filtered graph and its connected
// components, O(n+m) — but a component whose vertex set is unchanged
// and contains no touched vertex keeps its existing problem object,
// including the dissimilarity lists that would otherwise cost bulk
// similarity work to rebuild.
//
// filtered must already be dissimilar-edge-filtered under p.Oracle
// (see simgraph.PatchFiltered for the incremental way to maintain it).
// touched[v] marks the vertices whose incident structure or attributes
// changed; it must cover both endpoints of every edge added to or
// removed from the filtered graph and every vertex whose attributes
// changed, and its length must be filtered.N(). p must carry the same K
// as old and an oracle that agrees with old's on untouched vertex
// pairs. Under those contracts the result is bit-identical to
// PrepareFiltered(filtered, p).
func PatchPrepared(old *Prepared, filtered *graph.Graph, p Params, touched []bool) (*Prepared, PatchStats, error) {
	var st PatchStats
	if err := p.validate(); err != nil {
		return nil, st, err
	}
	pr := &Prepared{p: p, n: filtered.N()}
	// Components are sorted ascending, so the smallest member identifies
	// a candidate old component in O(1).
	oldByMin := make(map[int32]*problem, len(old.probs))
	for _, ob := range old.probs {
		if len(ob.orig) > 0 {
			oldByMin[ob.orig[0]] = ob
		}
	}
	var src similarity.BulkSource // built lazily: only rebuilt components need it
	kc := kcore.KCore(filtered, p.K)
	if len(kc) == 0 {
		return pr, st, nil
	}
	for _, comp := range filtered.ComponentsOf(kc) {
		if len(comp) < p.K+1 {
			continue
		}
		if ob := oldByMin[comp[0]]; ob != nil && reusable(ob, comp, touched) {
			pr.probs = append(pr.probs, ob)
			st.Reused++
			continue
		}
		if src == nil {
			src = simindex.For(p.Oracle)
		}
		pr.probs = append(pr.probs, buildProblem(filtered, src, p, comp))
		st.Rebuilt++
	}
	pr.byDeg = append([]*problem(nil), pr.probs...)
	sort.SliceStable(pr.byDeg, func(i, j int) bool { return pr.byDeg[i].maxDeg > pr.byDeg[j].maxDeg })
	return pr, st, nil
}

// reusable reports whether the old problem covers exactly the new
// component with no touched member. Equal vertex sequences imply equal
// local ids; no touched member implies identical induced adjacency
// (every changed filtered edge has a touched endpoint, so a changed
// internal edge would mark a member) and identical dissimilarity lists
// (attribute changes mark their vertex).
func reusable(ob *problem, comp []int32, touched []bool) bool {
	if len(ob.orig) != len(comp) {
		return false
	}
	for i, v := range comp {
		if ob.orig[i] != v || touched[v] {
			return false
		}
	}
	return true
}
