package core

import (
	"sort"

	"krcore/internal/graph"
	"krcore/internal/kcore"
	"krcore/internal/similarity"
	"krcore/internal/simindex"
)

// PatchStats reports how much prepared state a patch call carried over
// versus rebuilt, and which maintenance path produced the result.
type PatchStats struct {
	// Reused counts candidate components taken verbatim from the old
	// Prepared (identical vertex set, no touched member).
	Reused int
	// Rebuilt counts candidate components reconstructed from the new
	// filtered graph.
	Rebuilt int
	// Incremental reports whether Li & Yu-style core repair handled the
	// batch; false means the O(n+m) full recompute ran (always for
	// PatchPrepared, as a fallback for PatchPreparedDelta).
	Incremental bool
	// CoreVisited counts the vertices whose neighbourhoods the
	// incremental path scanned — core repair plus affected-region
	// discovery — before it finished or gave up.
	CoreVisited int
}

// PatchDelta describes one committed mutation batch to the incremental
// maintenance path of PatchPreparedDelta.
type PatchDelta struct {
	// AddFiltered and DelFiltered are the effective edge diff of the
	// FILTERED graph — not the base graph — normalized u < v with no
	// duplicates, exactly as simgraph.PatchFiltered reports it. An
	// attribute change that flips an edge's similarity shows up here
	// even though its far endpoint appears nowhere else in the batch.
	AddFiltered, DelFiltered [][2]int32
	// AttrVerts lists the vertices whose attributes changed.
	AttrVerts []int32
	// Touched is the conservative taint mask over filtered.N() vertices
	// (same contract as PatchPrepared's touched argument); components
	// containing a touched vertex are never reused verbatim.
	Touched []bool
	// MaxVisit bounds the vertices the incremental path may walk —
	// core repair plus region discovery — before falling back to full
	// recompute. Zero picks a default proportional to the graph size.
	MaxVisit int
}

// defaultMaxVisit is the fallback threshold heuristic: generous enough
// that single-edge updates on social graphs stay incremental, small
// enough that a batch rewriting a large fraction of the graph pays one
// linear recompute instead of a slower quadratic-ish walk.
func defaultMaxVisit(n int) int {
	return 64 + n/8
}

// PatchPreparedDelta is the incremental successor of PatchPrepared: it
// repairs the maintained core numbers around the changed edges (see
// kcore.Repair), discovers the affected candidate components by
// walking only the region around the change, and reuses every other
// component object untouched — no O(n+m) re-peeling, no full component
// scan. When the touched region exceeds d.MaxVisit the call falls back
// to the full recompute of PatchPrepared (PatchStats.Incremental
// reports which path ran).
//
// Contracts are PatchPrepared's, plus: d.AddFiltered/d.DelFiltered
// must be the exact effective edge diff between old's filtered graph
// and the new one (simgraph.PatchFiltered returns it), and d.Touched
// must cover their endpoints and every attribute-changed vertex. The
// result is bit-identical to PrepareFiltered(filtered, p).
func PatchPreparedDelta(old *Prepared, filtered *graph.Graph, p Params, d PatchDelta) (*Prepared, PatchStats, error) {
	var st PatchStats
	if err := p.validate(); err != nil {
		return nil, st, err
	}
	pr, visited, ok := patchIncremental(old, filtered, p, d, &st)
	if ok {
		st.Incremental = true
		st.CoreVisited = visited
		return pr, st, nil
	}
	full, fst, err := PatchPrepared(old, filtered, p, d.Touched)
	fst.CoreVisited = visited // what the abandoned walk cost before giving up
	return full, fst, err
}

// patchIncremental runs the incremental path; ok=false means the
// caller must fall back to the full recompute (budget exhausted or old
// state unusable).
func patchIncremental(old *Prepared, filtered *graph.Graph, p Params, d PatchDelta, st *PatchStats) (*Prepared, int, bool) {
	n := filtered.N()
	if old == nil || old.coreNums == nil || old.compID == nil ||
		len(old.coreNums) != old.n || old.n > n || len(d.Touched) != n {
		return nil, 0, false
	}
	budget := d.MaxVisit
	if budget <= 0 {
		budget = defaultMaxVisit(n)
	}

	// Nothing changed at all: the filtered graph and every attribute are
	// as before, so the old Prepared is the answer.
	structChange := len(d.AddFiltered) > 0 || len(d.DelFiltered) > 0 || n != old.n
	if !structChange && len(d.AttrVerts) == 0 {
		st.Reused = len(old.probs)
		return old, 0, true
	}

	// 1. Repair the core numbers (copy-on-write: untouched arrays are
	// shared with the old Prepared, including the whole array when the
	// repair turns out to be a net no-op).
	cores := old.coreNums
	visited := 0
	var coreChanged []int32
	if structChange {
		// append copies in one pass (no separate zeroing of the fresh
		// array), which matters at million-vertex scale; the growth case
		// pads with explicit zeros.
		next := append([]int32(nil), old.coreNums...)
		for len(next) < n {
			next = append(next, 0) // grown vertices start at core 0
		}
		ch, v, ok := kcore.Repair(filtered, next, d.AddFiltered, d.DelFiltered, budget)
		visited = v
		if !ok {
			return nil, visited, false
		}
		coreChanged, cores = ch, next
		if len(ch) == 0 && n == old.n {
			cores = old.coreNums
		}
	}

	// 2. Seed the affected-region discovery. Every new component that
	// differs from an old one — split piece, merged group, changed
	// membership — and every component whose cached dissimilarity might
	// be stale provably contains a seed: a changed-edge endpoint still
	// in the k-core, a vertex that entered the k-core, a new-k-core
	// neighbour of a vertex that left it, or an attribute-changed
	// vertex.
	k := int32(p.K)
	seedSet := make(map[int32]bool)
	var seeds []int32
	addSeed := func(v int32) {
		if cores[v] >= k && !seedSet[v] {
			seedSet[v] = true
			seeds = append(seeds, v)
		}
	}
	for _, pr := range d.AddFiltered {
		addSeed(pr[0])
		addSeed(pr[1])
	}
	for _, pr := range d.DelFiltered {
		addSeed(pr[0])
		addSeed(pr[1])
	}
	for _, v := range d.AttrVerts {
		if int(v) < n {
			addSeed(v)
		}
	}
	// Repair reported exactly which vertices it wrote, so membership
	// changes are found without rescanning all n core numbers.
	var leavers []int32
	for _, cv := range coreChanged {
		if int(cv) >= old.n {
			continue // grown vertices are seeded below
		}
		oc, nc := old.coreNums[cv], cores[cv]
		if oc == nc || (oc < k && nc < k) {
			continue
		}
		if nc >= k && oc < k {
			addSeed(cv) // entered the k-core
		} else if oc >= k && nc < k {
			leavers = append(leavers, cv)
		}
	}
	for v := old.n; v < n; v++ {
		addSeed(int32(v)) // grown vertices with immediate k-core membership
	}
	for _, l := range leavers {
		for _, x := range filtered.Neighbors(l) {
			addSeed(x)
		}
	}

	// 3. Region discovery: the full new components containing seeds,
	// found by BFS restricted to the new k-core and charged against the
	// same budget as the repair walk.
	inRegion := make([]bool, n)
	var comps [][]int32
	queue := make([]int32, 0, 64)
	for _, s := range seeds {
		if inRegion[s] {
			continue
		}
		inRegion[s] = true
		queue = append(queue[:0], s)
		comp := []int32{s}
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			visited++
			if visited > budget {
				return nil, visited, false
			}
			for _, v := range filtered.Neighbors(u) {
				if cores[v] >= k && !inRegion[v] {
					inRegion[v] = true
					queue = append(queue, v)
					comp = append(comp, v)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })

	// 4. Retire every old component the change could have reshaped: one
	// with a member inside the region or a member that left the k-core.
	// Everything else survives verbatim — the change provably did not
	// touch its vertex set, its induced edges or its attributes.
	dropped := make(map[int32]bool)
	for _, l := range leavers {
		if id := old.compID[l]; id >= 0 {
			dropped[id] = true
		}
	}
	for _, comp := range comps {
		for _, v := range comp {
			if int(v) < old.n {
				if id := old.compID[v]; id >= 0 {
					dropped[id] = true
				}
			}
		}
	}

	pr := &Prepared{p: p, n: n, coreNums: cores}
	for _, ob := range old.probs {
		if len(ob.orig) > 0 && !dropped[ob.orig[0]] {
			pr.probs = append(pr.probs, ob)
			st.Reused++
		}
	}
	var attrTouched map[int32]bool
	if len(d.AttrVerts) > 0 {
		attrTouched = make(map[int32]bool, len(d.AttrVerts))
		for _, v := range d.AttrVerts {
			attrTouched[v] = true
		}
	}
	var src similarity.BulkSource
	for _, comp := range comps {
		if len(comp) < p.K+1 {
			continue
		}
		ob := probByMin(old.probs, comp[0])
		if ob != nil && reusable(ob, comp, d.Touched) {
			pr.probs = append(pr.probs, ob)
			st.Reused++
			continue
		}
		// A component whose vertex set survived intact with no member's
		// attributes changed keeps its dissimilarity lists — the O(size²)
		// half of a rebuild — and only re-derives the induced adjacency
		// from the new filtered graph.
		if ob != nil && sameVerts(ob, comp) && noneAttrTouched(comp, attrTouched) {
			pr.probs = append(pr.probs, restructureProblem(filtered, ob, comp, d.Touched))
			st.Rebuilt++
			continue
		}
		if src == nil {
			src = simindex.For(p.Oracle)
		}
		pr.probs = append(pr.probs, buildProblem(filtered, src, p, comp))
		st.Rebuilt++
	}
	// Components are discovered by ComponentsOf in order of smallest
	// vertex; restoring that order keeps the result bit-identical to a
	// fresh PrepareFiltered, including FindMaximum's tie-breaking.
	sort.Slice(pr.probs, func(i, j int) bool { return pr.probs[i].orig[0] < pr.probs[j].orig[0] })

	// 5. Component ids: shared when no assignment changed — including
	// the common single-edge case where the region's components keep
	// their exact membership — otherwise patched for exactly the region
	// and the leavers (every other vertex keeps its component, proven by
	// the seed argument above).
	shareIDs := len(leavers) == 0 && n == old.n
	if shareIDs {
	idCheck:
		for _, comp := range comps {
			id := comp[0]
			if len(comp) < p.K+1 {
				id = -1
			}
			for _, v := range comp {
				if old.compID[v] != id {
					shareIDs = false
					break idCheck
				}
			}
		}
	}
	if shareIDs {
		pr.compID = old.compID
	} else {
		compID := make([]int32, n)
		copy(compID, old.compID)
		for v := old.n; v < n; v++ {
			compID[v] = -1
		}
		for _, l := range leavers {
			compID[l] = -1
		}
		for _, comp := range comps {
			id := comp[0]
			if len(comp) < p.K+1 {
				id = -1
			}
			for _, v := range comp {
				compID[v] = id
			}
		}
		pr.compID = compID
	}

	pr.byDeg = append([]*problem(nil), pr.probs...)
	sort.SliceStable(pr.byDeg, func(i, j int) bool { return pr.byDeg[i].maxDeg > pr.byDeg[j].maxDeg })
	return pr, visited, true
}

// PatchPrepared rebuilds the candidate components of a (k,r) problem
// for a mutated filtered graph, reusing every component of old that the
// mutation provably left intact. It recomputes the structural part from
// scratch — the k-core of the new filtered graph and its connected
// components, O(n+m) — but a component whose vertex set is unchanged
// and contains no touched vertex keeps its existing problem object,
// including the dissimilarity lists that would otherwise cost bulk
// similarity work to rebuild. PatchPreparedDelta is the incremental
// form that avoids the linear re-peeling; this full recompute remains
// its fallback for oversized batches.
//
// filtered must already be dissimilar-edge-filtered under p.Oracle
// (see simgraph.PatchFiltered for the incremental way to maintain it).
// touched[v] marks the vertices whose incident structure or attributes
// changed; it must cover both endpoints of every edge added to or
// removed from the filtered graph and every vertex whose attributes
// changed, and its length must be filtered.N(). p must carry the same K
// as old and an oracle that agrees with old's on untouched vertex
// pairs. Under those contracts the result is bit-identical to
// PrepareFiltered(filtered, p).
func PatchPrepared(old *Prepared, filtered *graph.Graph, p Params, touched []bool) (*Prepared, PatchStats, error) {
	var st PatchStats
	if err := p.validate(); err != nil {
		return nil, st, err
	}
	pr := &Prepared{p: p, n: filtered.N()}
	pr.coreNums = kcore.Decompose32(filtered)
	pr.compID = newCompIDs(pr.n)
	// Components are sorted ascending, so the smallest member identifies
	// a candidate old component in O(1).
	oldByMin := make(map[int32]*problem, len(old.probs))
	for _, ob := range old.probs {
		if len(ob.orig) > 0 {
			oldByMin[ob.orig[0]] = ob
		}
	}
	var src similarity.BulkSource // built lazily: only rebuilt components need it
	kc := coreMembers(pr.coreNums, p.K)
	if len(kc) == 0 {
		return pr, st, nil
	}
	for _, comp := range filtered.ComponentsOf(kc) {
		if len(comp) < p.K+1 {
			continue
		}
		for _, v := range comp {
			pr.compID[v] = comp[0]
		}
		if ob := oldByMin[comp[0]]; ob != nil && reusable(ob, comp, touched) {
			pr.probs = append(pr.probs, ob)
			st.Reused++
			continue
		}
		if src == nil {
			src = simindex.For(p.Oracle)
		}
		pr.probs = append(pr.probs, buildProblem(filtered, src, p, comp))
		st.Rebuilt++
	}
	pr.byDeg = append([]*problem(nil), pr.probs...)
	sort.SliceStable(pr.byDeg, func(i, j int) bool { return pr.byDeg[i].maxDeg > pr.byDeg[j].maxDeg })
	return pr, st, nil
}

// reusable reports whether the old problem covers exactly the new
// component with no touched member. Equal vertex sequences imply equal
// local ids; no touched member implies identical induced adjacency
// (every changed filtered edge has a touched endpoint, so a changed
// internal edge would mark a member) and identical dissimilarity lists
// (attribute changes mark their vertex).
func reusable(ob *problem, comp []int32, touched []bool) bool {
	if len(ob.orig) != len(comp) {
		return false
	}
	for i, v := range comp {
		if ob.orig[i] != v || touched[v] {
			return false
		}
	}
	return true
}

// probByMin finds the problem whose component is identified by the
// smallest vertex v. probs are sorted by orig[0] (discovery order of
// ComponentsOf, restored after every patch), so a binary search keeps
// single-edge patches free of a map over every component.
func probByMin(probs []*problem, v int32) *problem {
	i := sort.Search(len(probs), func(i int) bool { return probs[i].orig[0] >= v })
	if i < len(probs) && probs[i].orig[0] == v {
		return probs[i]
	}
	return nil
}

// sameVerts reports whether the old problem covers exactly the new
// component's vertex sequence (both sorted ascending).
func sameVerts(ob *problem, comp []int32) bool {
	if len(ob.orig) != len(comp) {
		return false
	}
	for i, v := range comp {
		if ob.orig[i] != v {
			return false
		}
	}
	return true
}

// noneAttrTouched reports whether no member of comp had its attributes
// changed in this batch (attrTouched is nil for structure-only rounds).
func noneAttrTouched(comp []int32, attrTouched map[int32]bool) bool {
	if attrTouched == nil {
		return true
	}
	for _, v := range comp {
		if attrTouched[v] {
			return false
		}
	}
	return true
}

// restructureProblem rebuilds one component's local problem after a
// structure-only change that preserved its vertex set. The vertex
// sequence — hence the local id mapping — is ob's; the dissimilarity
// lists, a function of the unchanged vertex set and attributes only,
// are shared outright. Only the adjacency rows of touched vertices are
// re-derived from the new filtered graph (an untouched vertex has no
// incident filtered-edge change, so its induced row is ob's row);
// every other row is shared too. Bit-identical to buildProblem on the
// same component without the O(size²) bulk similarity pass or the
// O(component edges) induced-subgraph rebuild.
func restructureProblem(filtered *graph.Graph, ob *problem, comp []int32, touched []bool) *problem {
	pr := &problem{
		k:      ob.k,
		n:      ob.n,
		adj:    append([][]int32(nil), ob.adj...),
		dissim: ob.dissim,
		pairs:  ob.pairs,
		orig:   ob.orig,
	}
	for u, g := range pr.orig {
		if !touched[g] {
			continue
		}
		var row []int32
		for _, x := range filtered.Neighbors(g) {
			if l, ok := localOf(comp, x); ok {
				row = append(row, l)
			}
		}
		// Induced builds rows sorted ascending; match it exactly.
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		pr.adj[u] = row
	}
	for _, row := range pr.adj {
		if len(row) > pr.maxDeg {
			pr.maxDeg = len(row)
		}
	}
	return pr
}

// localOf maps a global vertex to its local id in the sorted component,
// reporting whether it is a member.
func localOf(comp []int32, v int32) (int32, bool) {
	i := sort.Search(len(comp), func(i int) bool { return comp[i] >= v })
	if i < len(comp) && comp[i] == v {
		return int32(i), true
	}
	return 0, false
}
