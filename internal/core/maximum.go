package core

import (
	"sort"
	"time"

	"krcore/internal/graph"
)

// FindMaximum returns the maximum (k,r)-core of g (Algorithm 5). With
// default options it is AdvMax (the (k,k')-core bound plus the λΔ1−Δ2
// order with adaptive branching); BoundNaive reproduces BasicMax.
// Result.Cores is empty when no (k,r)-core exists, otherwise it holds
// exactly one core.
func FindMaximum(g *graph.Graph, p Params, opt MaxOptions) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if opt.Order == OrderDefault {
		opt.Order = OrderLambdaDelta // Section 7.2
	}
	if opt.Bound == BoundDefault {
		opt.Bound = BoundDoubleKcore // Section 6.2
	}
	start := time.Now()
	bud := &budget{limits: opt.Limits}
	probs := prepare(g, p)
	// Start from the component holding the highest-degree vertex
	// (Section 6.1): a large core early tightens the bound everywhere.
	sort.Slice(probs, func(i, j int) bool { return probs[i].maxDeg > probs[j].maxDeg })

	var best []int32
	for _, prob := range probs {
		if len(prob.orig) <= len(best) {
			continue // the whole component cannot beat the incumbent
		}
		ms := &maxSearch{st: newState(prob, bud), opt: opt, bestSize: len(best)}
		ms.node()
		if ms.best != nil {
			best = prob.toGlobal(ms.best)
		}
		if bud.timedOut {
			break
		}
	}
	res := &Result{Nodes: bud.nodes, TimedOut: bud.timedOut, Elapsed: time.Since(start)}
	if best != nil {
		res.Cores = [][]int32{best}
	}
	return res, nil
}

// maxSearch runs Algorithm 5 on one component.
type maxSearch struct {
	st       *state
	opt      MaxOptions
	best     []int32 // best core of this component (local ids), nil if none beat bestSize
	bestSize int     // global incumbent size
}

func (m *maxSearch) node() {
	s := m.st
	if !s.bud.step() {
		return
	}
	if !s.prune(true) {
		return
	}
	if s.cntM+s.cntC == 0 {
		return
	}
	if !m.opt.DisableEarlyTermination && s.earlyTerminate() {
		return
	}
	if s.bound(m.opt.Bound) <= m.bestSize {
		return
	}
	if s.sumDpC == 0 { // C = SF(C): M∪C is a (k,r)-core (Theorem 4)
		m.reportLeaf()
		return
	}

	order := m.opt.Order
	ch, ok := s.chooseVertex(order, m.opt.Lambda, true, true)
	if !ok {
		return
	}
	expandFirst := true
	switch m.opt.Branch {
	case BranchAdaptive:
		expandFirst = ch.expandFirst
	case BranchExpandFirst:
		expandFirst = true
	case BranchShrinkFirst:
		expandFirst = false
	}

	runExpand := func() {
		mk := s.mark()
		s.expand(ch.v)
		m.node()
		s.rewind(mk)
	}
	runShrink := func() {
		mk := s.mark()
		s.discard(ch.v)
		m.node()
		s.rewind(mk)
	}
	if expandFirst {
		runExpand()
		if s.bud.timedOut {
			return
		}
		runShrink()
	} else {
		runShrink()
		if s.bud.timedOut {
			return
		}
		runExpand()
	}
}

func (m *maxSearch) reportLeaf() {
	s := m.st
	var candidates [][]int32
	if s.cntM > 0 {
		candidates = [][]int32{s.members(nil, statusM, statusC)}
	} else {
		candidates = s.mcComponents()
	}
	for _, r := range candidates {
		if len(r) >= s.p.k+1 && len(r) > m.bestSize {
			m.bestSize = len(r)
			m.best = append(m.best[:0], r...)
		}
	}
}
