package core

import (
	"sync"
	"sync/atomic"
	"time"

	"krcore/internal/graph"
)

// FindMaximum returns the maximum (k,r)-core of g (Algorithm 5). With
// default options it is AdvMax (the (k,k')-core bound plus the λΔ1−Δ2
// order with adaptive branching); BoundNaive reproduces BasicMax.
// Result.Cores is empty when no (k,r)-core exists, otherwise it holds
// exactly one core.
func FindMaximum(g *graph.Graph, p Params, opt MaxOptions) (*Result, error) {
	start := time.Now()
	pr, err := Prepare(g, p)
	if err != nil {
		return nil, err
	}
	res, err := pr.FindMaximum(opt)
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start) // include preparation time
	return res, nil
}

// FindMaximum runs the maximum search over the prepared candidate
// components, serially or on a worker pool (MaxOptions.Parallelism).
// All workers share one budget and one incumbent: the incumbent size is
// read atomically at every search node, so a large core found in one
// component immediately tightens the (k,k')-core size bound in every
// other component. Safe for concurrent use against one Prepared.
func (pr *Prepared) FindMaximum(opt MaxOptions) (*Result, error) {
	if opt.Order == OrderDefault {
		opt.Order = OrderLambdaDelta // Section 7.2
	}
	if opt.Bound == BoundDefault {
		opt.Bound = BoundDoubleKcore // Section 6.2
	}
	start := time.Now()
	bud := newBudget(opt.Limits)
	inc := &incumbent{}
	probs := pr.byDeg
	if bud.precheck() {
		runPool(len(probs), opt.Parallelism, bud, func(i int) {
			searchMaxComponent(probs[i], i, opt, bud, inc)
		})
	}
	res := &Result{Nodes: bud.count(), TimedOut: bud.exhausted(), Elapsed: time.Since(start)}
	if best := inc.snapshot(); best != nil {
		res.Cores = [][]int32{best}
	}
	return res, nil
}

// searchMaxComponent runs Algorithm 5 on the component with serial
// order index comp.
func searchMaxComponent(prob *problem, comp int, opt MaxOptions, bud *budget, inc *incumbent) {
	if len(prob.orig) <= inc.threshold(comp) {
		return // the whole component cannot improve on the incumbent
	}
	ms := &maxSearch{st: newState(prob, bud), opt: opt, inc: inc, comp: comp}
	ms.node()
}

// incumbent is the best core found so far, shared by every worker of
// one maximum search. The (size, component) pair is packed into one
// atomic word so the hot pruning path (threshold) is a single load; the
// core itself is guarded by the mutex.
//
// Ties between equal-sized cores from different components are broken
// towards the smaller serial component index, which makes the reported
// core of a completed (non-TimedOut) run identical to a serial run's
// whatever the worker interleaving: the serial search keeps the first
// strictly-larger core in component order, i.e. the equal-size core
// from the earliest component. Truncated runs stop at interleaving-
// dependent frontiers and may report different partial incumbents.
type incumbent struct {
	// packed holds size<<32 | comp. Zero means empty (a real core has
	// at least k+1 >= 2 vertices, so size 0 cannot be confused with an
	// installed core).
	packed atomic.Uint64

	mu   sync.Mutex
	core []int32 // global vertex ids
}

// threshold returns the prune threshold for the component with the
// given serial order index: subtrees (and whole components) that cannot
// contain a core strictly larger than the threshold may be abandoned.
// An equal-sized core still matters when the incumbent came from a
// later component — the earlier component wins the tie — hence the
// threshold drops by one in that case.
func (inc *incumbent) threshold(comp int) int {
	p := inc.packed.Load()
	if p == 0 {
		return 0
	}
	size, from := int(p>>32), int(uint32(p))
	if from > comp {
		return size - 1
	}
	return size
}

// offer installs core (global ids, at least k+1 of them) found by the
// component with serial order index comp when it beats the incumbent:
// strictly larger, or equal-sized from an earlier component.
func (inc *incumbent) offer(core []int32, comp int) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	p := inc.packed.Load()
	size, from := int(p>>32), int(uint32(p))
	if p != 0 && (len(core) < size || (len(core) == size && comp >= from)) {
		return
	}
	inc.core = append(inc.core[:0], core...)
	inc.packed.Store(uint64(len(core))<<32 | uint64(uint32(comp)))
}

// snapshot returns a copy of the incumbent core, nil when none exists.
func (inc *incumbent) snapshot() []int32 {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if len(inc.core) == 0 {
		return nil
	}
	return append([]int32(nil), inc.core...)
}

// maxSearch runs Algorithm 5 on one component.
type maxSearch struct {
	st   *state
	opt  MaxOptions
	inc  *incumbent // shared incumbent ((k,k')-core bound prunes globally)
	comp int        // serial order index of this component
}

func (m *maxSearch) node() {
	s := m.st
	if !s.bud.step() {
		return
	}
	if !s.prune(true) {
		return
	}
	if s.cntM+s.cntC == 0 {
		return
	}
	if !m.opt.DisableEarlyTermination && s.earlyTerminate() {
		return
	}
	if s.bound(m.opt.Bound) <= m.inc.threshold(m.comp) {
		return
	}
	if s.sumDpC == 0 { // C = SF(C): M∪C is a (k,r)-core (Theorem 4)
		m.reportLeaf()
		return
	}

	order := m.opt.Order
	ch, ok := s.chooseVertex(order, m.opt.Lambda, true, true)
	if !ok {
		return
	}
	expandFirst := true
	switch m.opt.Branch {
	case BranchAdaptive:
		expandFirst = ch.expandFirst
	case BranchExpandFirst:
		expandFirst = true
	case BranchShrinkFirst:
		expandFirst = false
	}

	runExpand := func() {
		mk := s.mark()
		s.expand(ch.v)
		m.node()
		s.rewind(mk)
	}
	runShrink := func() {
		mk := s.mark()
		s.discard(ch.v)
		m.node()
		s.rewind(mk)
	}
	if expandFirst {
		runExpand()
		if s.bud.exhausted() {
			return
		}
		runShrink()
	} else {
		runShrink()
		if s.bud.exhausted() {
			return
		}
		runExpand()
	}
}

func (m *maxSearch) reportLeaf() {
	s := m.st
	var candidates [][]int32
	if s.cntM > 0 {
		candidates = [][]int32{s.members(nil, statusM, statusC)}
	} else {
		candidates = s.mcComponents()
	}
	for _, r := range candidates {
		if len(r) >= s.p.k+1 && len(r) > m.inc.threshold(m.comp) {
			m.inc.offer(s.p.toGlobal(r), m.comp)
		}
	}
}
