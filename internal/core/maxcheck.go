package core

// Maximal checking (Theorem 6, Algorithm 4). A freshly found (k,r)-core
// R is maximal iff no non-empty subset U of the relevant excluded set E
// yields a (k,r)-core R∪U. The check explores subsets of the eligible
// excluded vertices with the short-sighted greedy orders of Section 7.4
// and stops at the first valid extension.
//
// Two observations keep the check polynomial except on genuinely hard
// instances:
//
//  1. Candidates that lose the structural closure (deg(v, T∪cand) < k)
//     or that cannot reach R inside T∪cand can never participate in an
//     extension (a connected R∪U needs a path from every u ∈ U to R).
//  2. Once the surviving candidate set has no dissimilar pair left,
//     T∪cand itself is an extension — no further branching is needed.
//     Branching therefore only happens on vertices involved in
//     dissimilar pairs, bounding the tree by the dissimilarity structure
//     rather than by |E|.

// checkMaximal reports whether the core with the given local vertex ids
// is maximal with respect to the current excluded set E.
func (s *state) checkMaximal(r []int32, order Order, lambda float64) bool {
	inT := make([]bool, s.p.n)
	for _, v := range r {
		inT[v] = true
	}
	// Eligible extension candidates: excluded vertices similar to every
	// vertex of R. Membership in E guarantees similarity to M; the
	// dissimilarity scan covers the rest of R (which matters at the
	// all-shrink leaf, where R may be a strict subset of M∪C).
	var cand []int32
	for v := int32(0); v < int32(s.p.n); v++ {
		if s.status[v] != statusE {
			continue
		}
		ok := true
		for _, d := range s.p.dissim[v] {
			if inT[d] {
				ok = false
				break
			}
		}
		if ok {
			cand = append(cand, v)
		}
	}
	if len(cand) == 0 {
		return true
	}
	ck := &checkSearch{
		s:      s,
		root:   r[0],
		inT:    inT,
		inCand: make([]bool, s.p.n),
		seen:   make([]bool, s.p.n),
		order:  order,
		lambda: lambda,
	}
	return !ck.extend(nil, cand)
}

// checkSearch is the nested Algorithm 4 search. T = R ∪ added is the
// committed extension candidate; cand the remaining eligible excluded
// vertices.
type checkSearch struct {
	s      *state
	root   int32  // any vertex of R, the BFS anchor
	inT    []bool // R plus committed additions
	inCand []bool // scratch: current candidate mask
	seen   []bool // scratch: BFS marker
	order  Order
	lambda float64
}

// extend reports whether some superset R∪U (U non-empty) is a
// (k,r)-core. It consumes cand; callers pass fresh slices.
func (c *checkSearch) extend(added, cand []int32) bool {
	s := c.s
	if !s.bud.step() {
		return false // budget exhausted: give up on extending
	}
	var deadBranch bool
	cand, deadBranch = c.pruneCand(added, cand)
	if deadBranch {
		return false
	}

	// Success: every committed vertex already has k neighbours in T and
	// T is connected.
	if len(added) > 0 && c.isCore(added) {
		return true
	}
	// Shortcut: no dissimilar pair among the candidates means T∪cand is
	// itself a valid extension (closure guarantees degrees, the
	// reachability filter guarantees connectivity).
	if len(cand) > 0 {
		clean := true
		for _, v := range cand {
			for _, d := range s.p.dissim[v] {
				if c.inCandOrT(d, cand) {
					clean = false
					break
				}
			}
			if !clean {
				break
			}
		}
		if clean {
			return true
		}
	}
	if len(cand) == 0 {
		return false
	}

	u := c.choose(cand)
	rest := make([]int32, 0, len(cand)-1)
	for _, v := range cand {
		if v != u {
			rest = append(rest, v)
		}
	}
	// Expand branch first (Section 7.4).
	c.inT[u] = true
	if c.extend(append(added, u), append([]int32(nil), rest...)) {
		c.inT[u] = false
		return true
	}
	c.inT[u] = false
	// Shrink branch.
	return c.extend(added, rest)
}

// inCandOrT reports whether d is a current candidate (cand mask is
// maintained by pruneCand and valid within one extend frame).
func (c *checkSearch) inCandOrT(d int32, cand []int32) bool {
	return c.inCand[d]
}

// pruneCand removes candidates that are dissimilar to T, structurally
// unsupported inside T∪cand, or unreachable from R, iterating to a
// fixpoint. It reports deadBranch=true when a committed vertex can no
// longer reach degree k or reach R.
func (c *checkSearch) pruneCand(added, cand []int32) ([]int32, bool) {
	s := c.s
	for {
		changed := false
		// Maintain the candidate mask for degree counting.
		for i := range c.inCand {
			c.inCand[i] = false
		}
		for _, v := range cand {
			c.inCand[v] = true
		}
		// Similarity against T plus structural closure.
		out := cand[:0]
		for _, v := range cand {
			okSim := true
			for _, d := range s.p.dissim[v] {
				if c.inT[d] {
					okSim = false
					break
				}
			}
			if !okSim || c.degTC(v) < int32(s.p.k) {
				c.inCand[v] = false
				changed = true
				continue
			}
			out = append(out, v)
		}
		cand = out
		// Reachability from R over T∪cand.
		for i := range c.seen {
			c.seen[i] = false
		}
		stack := []int32{c.root}
		c.seen[c.root] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, nb := range s.p.adj[u] {
				if !c.seen[nb] && (c.inT[nb] || c.inCand[nb]) {
					c.seen[nb] = true
					stack = append(stack, nb)
				}
			}
		}
		for _, a := range added {
			if !c.seen[a] || c.degTC(a) < int32(s.p.k) {
				return cand, true // committed vertex stranded
			}
		}
		out = cand[:0]
		for _, v := range cand {
			if !c.seen[v] {
				c.inCand[v] = false
				changed = true
				continue
			}
			out = append(out, v)
		}
		cand = out
		if !changed {
			return cand, false
		}
	}
}

// degTC returns deg(v, T ∪ cand) using the maintained masks.
func (c *checkSearch) degTC(v int32) int32 {
	var d int32
	for _, nb := range c.s.p.adj[v] {
		if c.inT[nb] || c.inCand[nb] {
			d++
		}
	}
	return d
}

// isCore reports whether T (= R plus the committed additions) is a
// (k,r)-core: R's vertices keep their degrees by monotonicity, committed
// additions need deg(a,T) >= k, pairwise similarity holds by pruning,
// and T must be connected.
func (c *checkSearch) isCore(added []int32) bool {
	s := c.s
	for _, a := range added {
		var d int32
		for _, nb := range s.p.adj[a] {
			if c.inT[nb] {
				d++
			}
		}
		if d < int32(s.p.k) {
			return false
		}
	}
	// Connectivity via BFS over T alone.
	for i := range c.seen {
		c.seen[i] = false
	}
	stack := []int32{c.root}
	c.seen[c.root] = true
	visited := 1
	total := 0
	for v := int32(0); v < int32(s.p.n); v++ {
		if c.inT[v] {
			total++
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range s.p.adj[u] {
			if c.inT[nb] && !c.seen[nb] {
				c.seen[nb] = true
				visited++
				stack = append(stack, nb)
			}
		}
	}
	return visited == total
}

// choose picks the next candidate. OrderDegree (the paper's best check
// order) takes the highest degree in T∪cand; the Δ orders use simplified
// single-vertex estimates (the check search has no M/C split, so the
// full two-hop simulation does not apply). Vertices engaged in
// dissimilar pairs are preferred across all orders — branching on a
// similarity-free vertex makes no progress towards the shortcut.
func (c *checkSearch) choose(cand []int32) int32 {
	s := c.s
	// Restrict to candidates with a dissimilar partner among the
	// candidates; the shortcut guarantees at least one exists.
	conflicted := make([]int32, 0, len(cand))
	for _, v := range cand {
		for _, d := range s.p.dissim[v] {
			if c.inCand[d] {
				conflicted = append(conflicted, v)
				break
			}
		}
	}
	pool := conflicted
	if len(pool) == 0 {
		pool = cand
	}
	dissimIn := func(v int32) int32 {
		var n int32
		for _, d := range s.p.dissim[v] {
			if c.inCand[d] {
				n++
			}
		}
		return n
	}
	best := pool[0]
	switch c.order {
	case OrderRandom:
		return pool[int(s.nextRand()%uint64(len(pool)))]
	case OrderDelta1ThenDelta2, OrderDelta1:
		bestScore := int32(-1)
		for _, v := range pool {
			if sc := dissimIn(v); sc > bestScore {
				bestScore = sc
				best = v
			}
		}
	case OrderLambdaDelta:
		lambda := c.lambda
		if lambda == 0 {
			lambda = 5
		}
		bestScore := -1e18
		for _, v := range pool {
			sc := lambda*float64(dissimIn(v)) - float64(c.degTC(v))
			if sc > bestScore {
				bestScore = sc
				best = v
			}
		}
	default: // OrderDegree and everything else
		bestDeg := int32(-1)
		for _, v := range pool {
			if d := c.degTC(v); d > bestDeg {
				bestDeg = d
				best = v
			}
		}
	}
	return best
}
