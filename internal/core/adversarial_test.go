package core

// Adversarial structures that historically break (k,r)-core searches:
// matching-complement similarity (exponentially many maximal cliques in
// the similarity graph), shared-boundary cliques (maximal check must
// extend across the boundary), and chains (connectivity pruning).

import (
	"fmt"
	"testing"

	"krcore/internal/attr"
	"krcore/internal/graph"
	"krcore/internal/similarity"
)

// matchingInstance builds a structural clique on 2t vertices whose
// dissimilarity graph is a perfect matching: vertex 2i is dissimilar to
// vertex 2i+1 only. Valid cores pick at most one endpoint per pair, so
// the similarity graph has 2^t maximal cliques; the maximal (k,r)-cores
// are exactly the 2^t vertex sets choosing one endpoint per pair
// (each of size t, connected, with degree t-1 >= k).
func matchingInstance(t2 int, k int) testInstance {
	n := 2 * t2
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	// Geo positions: pair endpoints far apart, pairs on a tight ring so
	// every non-partner pair is similar.
	geo := attr.NewGeo(n)
	for p := 0; p < t2; p++ {
		geo.SetVertex(int32(2*p), attr.Point{X: float64(p), Y: 0})
		geo.SetVertex(int32(2*p+1), attr.Point{X: float64(p), Y: 100})
	}
	// Distance threshold: same-side pairs are close (<= t2), opposite
	// sides are 100 apart.
	return testInstance{
		g: b.Build(),
		p: Params{K: k, Oracle: similarity.NewOracle(similarity.Euclidean{Store: geo}, 50)},
	}
}

func TestMatchingComplementEnumeration(t *testing.T) {
	// 2^4 = 16 maximal cores expected... but opposite-side vertices are
	// only similar within their own side: side A = y=0 row, side B =
	// y=100 row. A core mixing sides is impossible (distance 100 > 50),
	// so the maximal cores are the two sides themselves.
	inst := matchingInstance(4, 2)
	res, err := Enumerate(inst.g, inst.p, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := BruteForce(inst.g, inst.p)
	if err != nil {
		t.Fatal(err)
	}
	if !sameCoreSets(res.Cores, want) {
		t.Fatalf("got %v, want %v", res.Cores, want)
	}
	if len(res.Cores) != 2 {
		t.Fatalf("expected the two ring sides, got %d cores", len(res.Cores))
	}
}

// trueMatchingInstance makes only the matched pair dissimilar (keyword
// trick): everyone shares a big common set; pair endpoints additionally
// carry a poison pill making exactly that one pair dissimilar.
func trueMatchingInstance(pairs, k int) testInstance {
	n := 2 * pairs
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	kw := attr.NewKeywords(n)
	// Common base of 8 keywords; each pair endpoint gets 12 private
	// keywords. Jaccard(same pair) = 8/32 = 0.25; Jaccard(cross pair)
	// = 8/32 = 0.25?? Private keywords must overlap within a pair and
	// differ across pairs to separate the two cases; instead give pair
	// p's endpoints DISJOINT privates and cross-pair endpoints SHARED
	// side keywords: side 0 vertices share side-keyword S0, side 1
	// share S1, and every vertex has the base.
	// sim(2p, 2q) for p != q: base(8) + S0 shared => 9/ (9+9-9+...).
	// Simpler exact construction: base 20 keywords everyone; pair p
	// endpoint 0 adds p-specific keyword A_p, endpoint 1 adds B_p, and
	// additionally endpoints of the SAME pair drop a shared subset to
	// lower their similarity: give endpoint 0 of pair p keywords
	// {base} ∪ {1000+p}, endpoint 1 {base minus first 10} ∪ {1000+p}.
	// Then same-pair similarity is lower than cross-pair similarity.
	for p := 0; p < pairs; p++ {
		full := make([]int32, 0, 21)
		for w := int32(0); w < 20; w++ {
			full = append(full, w)
		}
		kw.SetVertex(int32(2*p), append(full, int32(1000+p)))
		half := make([]int32, 0, 11)
		for w := int32(10); w < 20; w++ {
			half = append(half, w)
		}
		kw.SetVertex(int32(2*p+1), append(half, int32(1000+p)))
	}
	// sim(2p, 2p+1) = |{10..19, 1000+p}| / |{0..19, 1000+p}| = 11/21 ≈ 0.524
	// sim(2p, 2q)   = 20/22 ≈ 0.909
	// sim(2p, 2q+1) = 10/22 ≈ 0.455   (q != p)
	// sim(2p+1,2q+1)= 10/12 ≈ 0.833
	// Hmm: cross odd-even pairs are also dissimilar at r=0.6. The
	// dissimilarity graph at r=0.6 is a complete bipartite-ish graph
	// between evens and odds: cores = all-evens and all-odds.
	return testInstance{
		g: b.Build(),
		p: Params{K: k, Oracle: similarity.NewOracle(similarity.Jaccard{Store: kw}, 0.6)},
	}
}

func TestBipartiteDissimilarity(t *testing.T) {
	inst := trueMatchingInstance(5, 2)
	res, err := Enumerate(inst.g, inst.p, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := BruteForce(inst.g, inst.p)
	if err != nil {
		t.Fatal(err)
	}
	if !sameCoreSets(res.Cores, want) {
		t.Fatalf("got %v, want %v", res.Cores, want)
	}
	for _, opt := range []EnumOptions{
		{DisableRetention: true, DisableEarlyTermination: true, DisableMaximalCheck: true},
		{Order: OrderRandom},
	} {
		alt, err := Enumerate(inst.g, inst.p, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !sameCoreSets(alt.Cores, want) {
			t.Fatalf("variant %+v: got %v, want %v", opt, alt.Cores, want)
		}
	}
}

// sharedBoundaryInstance: two cliques sharing exactly k vertices, all
// similar. The union is one core; the maximal check must not report
// either clique alone.
func sharedBoundaryInstance(size, k int) testInstance {
	n := 2*size - k
	b := graph.NewBuilder(n)
	cliqueA := make([]int32, size)
	cliqueB := make([]int32, size)
	for i := 0; i < size; i++ {
		cliqueA[i] = int32(i)
		cliqueB[i] = int32(size - k + i)
	}
	for _, c := range [][]int32{cliqueA, cliqueB} {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				b.AddEdge(c[i], c[j])
			}
		}
	}
	geo := attr.NewGeo(n)
	for i := 0; i < n; i++ {
		geo.SetVertex(int32(i), attr.Point{X: float64(i % 3), Y: float64(i % 2)})
	}
	return testInstance{
		g: b.Build(),
		p: Params{K: k, Oracle: similarity.NewOracle(similarity.Euclidean{Store: geo}, 10)},
	}
}

func TestSharedBoundaryCliques(t *testing.T) {
	inst := sharedBoundaryInstance(6, 3)
	res, err := Enumerate(inst.g, inst.p, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 1 || len(res.Cores[0]) != inst.g.N() {
		t.Fatalf("expected one core covering all %d vertices, got %v", inst.g.N(), res.Cores)
	}
	maxRes, err := FindMaximum(inst.g, inst.p, MaxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(maxRes.Cores) != 1 || len(maxRes.Cores[0]) != inst.g.N() {
		t.Fatalf("maximum should be the union, got %v", maxRes.Cores)
	}
}

// chainInstance: cliques linked in a chain by single edges, each clique
// placed in its own far-away location, so the links join dissimilar
// vertices and every clique is its own core. (With unbounded r the
// whole chain would be one valid connected core — the links supply
// connectivity while intra-clique edges supply degree.)
func chainInstance(cliques, size, k int) testInstance {
	n := cliques * size
	b := graph.NewBuilder(n)
	geo := attr.NewGeo(n)
	for c := 0; c < cliques; c++ {
		for i := 0; i < size; i++ {
			geo.SetVertex(int32(c*size+i), attr.Point{X: 1000*float64(c) + float64(i)})
			for j := i + 1; j < size; j++ {
				b.AddEdge(int32(c*size+i), int32(c*size+j))
			}
		}
		if c > 0 {
			b.AddEdge(int32((c-1)*size), int32(c*size))
		}
	}
	return testInstance{
		g: b.Build(),
		p: Params{K: k, Oracle: similarity.NewOracle(similarity.Euclidean{Store: geo}, 100)},
	}
}

func TestCliqueChain(t *testing.T) {
	inst := chainInstance(5, 5, 4)
	res, err := Enumerate(inst.g, inst.p, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 5 {
		t.Fatalf("expected 5 separate cliques, got %d: %v", len(res.Cores), res.Cores)
	}
	for i, c := range res.Cores {
		if len(c) != 5 {
			t.Fatalf("core %d has size %d, want 5", i, len(c))
		}
	}
	// Every vertex is in exactly one core; anchored queries agree.
	for v := int32(0); v < int32(inst.g.N()); v += 7 {
		anchored, err := EnumerateContaining(inst.g, inst.p, v, EnumOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(anchored.Cores) != 1 {
			t.Fatalf("vertex %d should be in exactly one core, got %d", v, len(anchored.Cores))
		}
	}
}

// TestDeterministicAcrossRuns: same input, same options => identical
// output and node counts, for every order (OrderRandom uses a fixed
// xorshift seed).
func TestDeterministicAcrossRuns(t *testing.T) {
	inst := trueMatchingInstance(5, 2)
	for _, order := range []Order{OrderDelta1ThenDelta2, OrderRandom, OrderDegree, OrderLambdaDelta} {
		opt := EnumOptions{Order: order}
		a, err := Enumerate(inst.g, inst.p, opt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Enumerate(inst.g, inst.p, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !sameCoreSets(a.Cores, b.Cores) || a.Nodes != b.Nodes {
			t.Fatalf("order %v: non-deterministic (%d vs %d nodes)", order, a.Nodes, b.Nodes)
		}
	}
}

// TestLargeMatchingStress: 2^10 similarity-graph cliques must not blow
// up the enumeration (the retention rule collapses them).
func TestLargeMatchingStress(t *testing.T) {
	inst := trueMatchingInstance(10, 2)
	res, err := Enumerate(inst.g, inst.p, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("stress instance timed out")
	}
	// Evens form one core, odds the other.
	if len(res.Cores) != 2 {
		t.Fatalf("got %d cores: %v", len(res.Cores), coreSizes(res.Cores))
	}
}

func coreSizes(cores [][]int32) []string {
	out := make([]string, len(cores))
	for i, c := range cores {
		out[i] = fmt.Sprintf("%d", len(c))
	}
	return out
}
