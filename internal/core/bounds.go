package core

import "krcore/internal/color"

// Size upper bounds for the maximum search (Section 6.2). All bounds are
// evaluated on H = M∪C: J is the structural induced subgraph, J' the
// similarity graph on H. Any (k,r)-core R derivable from the current
// node satisfies R ⊆ H, so an upper bound on the maximum clique of J'
// (respectively the (k,k')-core of Theorem 7) bounds |R|.

// bound dispatches to the configured upper-bound computation.
func (s *state) bound(kind Bound) int {
	switch kind {
	case BoundNaive:
		return s.cntM + s.cntC
	case BoundColor:
		return s.colorBound()
	case BoundKcore:
		return s.simPeelBound(false)
	case BoundColorKcore:
		c := s.colorBound()
		k := s.simPeelBound(false)
		if k < c {
			return k
		}
		return c
	case BoundDoubleKcore, BoundDefault:
		return s.simPeelBound(true)
	default:
		return s.cntM + s.cntC
	}
}

// colorBound greedily colours the similarity graph J' (the complement of
// the dissimilarity lists restricted to H); a clique of size q needs q
// colours, so the colour count bounds |R|.
func (s *state) colorBound() int {
	h := s.members(s.scratch[:0], statusM, statusC)
	s.scratch = h[:0]
	if len(h) == 0 {
		return 0
	}
	return color.ColorsComplement(s.p.dissim, h)
}

// simPeelBound peels H by ascending similarity degree, optionally with
// the structural k-core cascade of Algorithm 6 (KK'coreUpdate). With the
// cascade it computes k'max of the (k,k')-core (Theorem 7), returning
// k'max+1; without it, it computes the similarity-graph degeneracy
// kmax(J'), returning kmax+1 — the plain k-core clique bound.
//
// The similarity graph is dense inside H, so the peel runs on the
// complement: simdeg(v) = |H|−1−|dissim(v)∩H|. Removing any vertex w
// decrements the similarity degree of every remaining vertex except w's
// dissimilar partners. We therefore keep key(v) = simdeg0(v) +
// (number of removed dissimilar partners of v); the effective similarity
// degree is key(v) − removedTotal, and keys only grow, so a monotone
// bucket scan yields the minimum in O(|H| + nd) total.
func (s *state) simPeelBound(structural bool) int {
	h := s.members(s.scratch[:0], statusM, statusC)
	defer func() { s.scratch = h[:0] }()
	n := len(h)
	if n == 0 {
		return 0
	}
	inH := s.visited // reuse as "still in H" marker
	for v := range inH {
		inH[v] = false
	}
	for _, v := range h {
		inH[v] = true
	}

	key := make([]int32, s.p.n)  // simdeg0 + corrections
	sdeg := make([]int32, s.p.n) // structural degree within remaining H
	for _, v := range h {
		dIn := int32(0)
		for _, d := range s.p.dissim[v] {
			if inH[d] {
				dIn++
			}
		}
		key[v] = int32(n) - 1 - dIn
		sdeg[v] = s.degM[v] + s.degC[v]
	}

	// Lazy bucket queue over keys; keys never exceed simdeg0+|dissim| <
	// 2n, and never decrease, so the ascending scan is monotone.
	buckets := make([][]int32, 2*n+2)
	for _, v := range h {
		buckets[key[v]] = append(buckets[key[v]], v)
	}

	removedTotal := int32(0)
	kPrime := int32(0)
	remove := func(v int32) {
		inH[v] = false
		removedTotal++
		for _, d := range s.p.dissim[v] {
			if inH[d] {
				key[d]++
				buckets[key[d]] = append(buckets[key[d]], d)
			}
		}
	}
	// cascade removes structurally deficient vertices at the current k'
	// level (KK'coreUpdate); their removal does not raise k'.
	var cascadeQueue []int32
	cascade := func(v int32) {
		cascadeQueue = append(cascadeQueue[:0], v)
		for len(cascadeQueue) > 0 {
			u := cascadeQueue[len(cascadeQueue)-1]
			cascadeQueue = cascadeQueue[:len(cascadeQueue)-1]
			if !inH[u] {
				continue
			}
			remove(u)
			for _, nb := range s.p.adj[u] {
				if !inH[nb] {
					continue
				}
				sdeg[nb]--
				if structural && sdeg[nb] < int32(s.p.k) {
					cascadeQueue = append(cascadeQueue, nb)
				}
			}
		}
	}

	for b := 0; b < len(buckets) && removedTotal < int32(n); b++ {
		for len(buckets[b]) > 0 {
			v := buckets[b][len(buckets[b])-1]
			buckets[b] = buckets[b][:len(buckets[b])-1]
			if !inH[v] || int(key[v]) != b {
				continue // stale entry
			}
			eff := key[v] - removedTotal
			if eff > kPrime {
				kPrime = eff
			}
			cascade(v)
		}
	}
	return int(kPrime) + 1
}
