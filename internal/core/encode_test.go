package core

import (
	"fmt"
	"math/rand"
	"testing"

	"krcore/internal/attr"
	"krcore/internal/binenc"
	"krcore/internal/graph"
	"krcore/internal/kcore"
	"krcore/internal/similarity"
)

// preparedFixture builds a Prepared over a small clustered geo
// instance with at least one real candidate component, returning the
// filtered graph decoding anchors against.
func preparedFixture(t *testing.T) (*Prepared, Params, *graph.Graph) {
	t.Helper()
	const n = 70
	rng := rand.New(rand.NewSource(9))
	b := graph.NewBuilder(n)
	for i := 0; i < 5*n; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	g := b.Build()
	geo := attr.NewGeo(n)
	for u := 0; u < n; u++ {
		geo.SetVertex(int32(u), attr.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20})
	}
	o := similarity.NewOracle(similarity.Euclidean{Store: geo}, 9)
	p := Params{K: 2, Oracle: o}
	pr, err := Prepare(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Components() == 0 {
		t.Fatal("fixture has no candidate components")
	}
	return pr, p, FilterDissimilar(g, o)
}

func TestPreparedBinaryRoundTrip(t *testing.T) {
	pr, p, filtered := preparedFixture(t)
	var b binenc.Buffer
	AppendPrepared(&b, pr)
	got, err := DecodePrepared(binenc.NewReader(b.Bytes()), p.Oracle, filtered.N(), filtered, true)
	if err != nil {
		t.Fatal(err)
	}
	if got.K() != pr.K() || got.Components() != pr.Components() {
		t.Fatalf("decoded k=%d comps=%d, want k=%d comps=%d",
			got.K(), got.Components(), pr.K(), pr.Components())
	}
	// The decoded problem must search bit-identically.
	want, err := pr.Enumerate(EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.Enumerate(EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(have.Cores) != fmt.Sprint(want.Cores) || have.Nodes != want.Nodes {
		t.Fatal("decoded Prepared enumerates differently")
	}
	wantMax, err := pr.FindMaximum(MaxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	haveMax, err := got.FindMaximum(MaxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(haveMax.Cores) != fmt.Sprint(wantMax.Cores) || haveMax.Nodes != wantMax.Nodes {
		t.Fatal("decoded Prepared finds a different maximum")
	}
	// Canonical re-encode.
	var b2 binenc.Buffer
	AppendPrepared(&b2, got)
	if string(b.Bytes()) != string(b2.Bytes()) {
		t.Fatal("re-encode not byte-stable")
	}
	// The maintained core numbers survive the round trip and match a
	// fresh peel of the filtered graph.
	if fmt.Sprint(got.CoreNumbers()) != fmt.Sprint(kcore.Decompose32(filtered)) {
		t.Fatal("decoded core numbers differ from a fresh decomposition")
	}
}

// TestDecodePreparedV1 checks the backward-compatible path: a v1
// payload (no core numbers) decodes with the core numbers recomputed
// by linear peeling, searching bit-identically to the original.
func TestDecodePreparedV1(t *testing.T) {
	pr, p, filtered := preparedFixture(t)
	var b binenc.Buffer
	AppendPreparedV1(&b, pr)
	got, err := DecodePrepared(binenc.NewReader(b.Bytes()), p.Oracle, filtered.N(), filtered, false)
	if err != nil {
		t.Fatal(err)
	}
	if got.Components() != pr.Components() {
		t.Fatalf("v1 decode has %d components, want %d", got.Components(), pr.Components())
	}
	if fmt.Sprint(got.CoreNumbers()) != fmt.Sprint(pr.CoreNumbers()) {
		t.Fatal("v1 decode recomputed different core numbers")
	}
	// Re-encoding at v2 must match the original's v2 encoding: the
	// recomputed core numbers are canonical.
	var v2a, v2b binenc.Buffer
	AppendPrepared(&v2a, pr)
	AppendPrepared(&v2b, got)
	if string(v2a.Bytes()) != string(v2b.Bytes()) {
		t.Fatal("v1 decode re-encodes differently at v2")
	}
}

func TestDecodePreparedRejectsCorruption(t *testing.T) {
	pr, p, filtered := preparedFixture(t)
	n := filtered.N()
	var b binenc.Buffer
	AppendPrepared(&b, pr)
	raw := b.Bytes()

	// Vertex-count anchor mismatch.
	if _, err := DecodePrepared(binenc.NewReader(raw), p.Oracle, n+1, filtered, true); err == nil {
		t.Fatal("anchor mismatch accepted")
	}
	// Missing or mismatched filtered graph.
	if _, err := DecodePrepared(binenc.NewReader(raw), p.Oracle, n, nil, true); err == nil {
		t.Fatal("nil filtered graph accepted")
	}
	// Truncation at several depths.
	for _, cut := range []int{4, 20, len(raw) / 2, len(raw) - 1} {
		if _, err := DecodePrepared(binenc.NewReader(raw[:cut]), p.Oracle, n, filtered, true); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// k = 0 violates Params validation.
	mut := append([]byte(nil), raw...)
	mut[0], mut[1], mut[2], mut[3] = 0, 0, 0, 0
	if _, err := DecodePrepared(binenc.NewReader(mut), p.Oracle, n, filtered, true); err == nil {
		t.Fatal("k=0 accepted")
	}
	// A core number above the vertex's filtered degree is impossible.
	// Layout: k u32, n u64, then the length-prefixed core array; the
	// first core value sits right after the array's u64 length.
	mut = append([]byte(nil), raw...)
	off := 4 + 8 + 8
	mut[off], mut[off+1], mut[off+2], mut[off+3] = 0xff, 0xff, 0xff, 0x7f
	if _, err := DecodePrepared(binenc.NewReader(mut), p.Oracle, n, filtered, true); err == nil {
		t.Fatal("out-of-range core number accepted")
	}
}
