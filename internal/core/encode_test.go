package core

import (
	"fmt"
	"math/rand"
	"testing"

	"krcore/internal/attr"
	"krcore/internal/binenc"
	"krcore/internal/graph"
	"krcore/internal/similarity"
)

// preparedFixture builds a Prepared over a small clustered geo
// instance with at least one real candidate component.
func preparedFixture(t *testing.T) (*Prepared, Params, *graph.Graph) {
	t.Helper()
	const n = 70
	rng := rand.New(rand.NewSource(9))
	b := graph.NewBuilder(n)
	for i := 0; i < 5*n; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	g := b.Build()
	geo := attr.NewGeo(n)
	for u := 0; u < n; u++ {
		geo.SetVertex(int32(u), attr.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20})
	}
	o := similarity.NewOracle(similarity.Euclidean{Store: geo}, 9)
	p := Params{K: 2, Oracle: o}
	pr, err := Prepare(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Components() == 0 {
		t.Fatal("fixture has no candidate components")
	}
	return pr, p, g
}

func TestPreparedBinaryRoundTrip(t *testing.T) {
	pr, p, g := preparedFixture(t)
	var b binenc.Buffer
	AppendPrepared(&b, pr)
	got, err := DecodePrepared(binenc.NewReader(b.Bytes()), p.Oracle, g.N())
	if err != nil {
		t.Fatal(err)
	}
	if got.K() != pr.K() || got.Components() != pr.Components() {
		t.Fatalf("decoded k=%d comps=%d, want k=%d comps=%d",
			got.K(), got.Components(), pr.K(), pr.Components())
	}
	// The decoded problem must search bit-identically.
	want, err := pr.Enumerate(EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.Enumerate(EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(have.Cores) != fmt.Sprint(want.Cores) || have.Nodes != want.Nodes {
		t.Fatal("decoded Prepared enumerates differently")
	}
	wantMax, err := pr.FindMaximum(MaxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	haveMax, err := got.FindMaximum(MaxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(haveMax.Cores) != fmt.Sprint(wantMax.Cores) || haveMax.Nodes != wantMax.Nodes {
		t.Fatal("decoded Prepared finds a different maximum")
	}
	// Canonical re-encode.
	var b2 binenc.Buffer
	AppendPrepared(&b2, got)
	if string(b.Bytes()) != string(b2.Bytes()) {
		t.Fatal("re-encode not byte-stable")
	}
}

func TestDecodePreparedRejectsCorruption(t *testing.T) {
	pr, p, g := preparedFixture(t)
	var b binenc.Buffer
	AppendPrepared(&b, pr)
	raw := b.Bytes()

	// Vertex-count anchor mismatch.
	if _, err := DecodePrepared(binenc.NewReader(raw), p.Oracle, g.N()+1); err == nil {
		t.Fatal("anchor mismatch accepted")
	}
	// Truncation at several depths.
	for _, cut := range []int{4, 20, len(raw) / 2, len(raw) - 1} {
		if _, err := DecodePrepared(binenc.NewReader(raw[:cut]), p.Oracle, g.N()); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// k = 0 violates Params validation.
	mut := append([]byte(nil), raw...)
	mut[0], mut[1], mut[2], mut[3] = 0, 0, 0, 0
	if _, err := DecodePrepared(binenc.NewReader(mut), p.Oracle, g.N()); err == nil {
		t.Fatal("k=0 accepted")
	}
}
