package core

import (
	"math/rand"

	"krcore/internal/attr"
	"krcore/internal/graph"
	"krcore/internal/similarity"
)

// testInstance is a random attributed graph plus the (k,r) parameters,
// used by the cross-validation tests.
type testInstance struct {
	g *graph.Graph
	p Params
}

// randomGeoInstance builds a small random graph whose vertices carry 2-D
// points; similarity is Euclidean distance within threshold r. Points
// cluster around a few centres so both similar and dissimilar pairs
// occur in the same component.
func randomGeoInstance(rng *rand.Rand, maxN int) testInstance {
	n := 4 + rng.Intn(maxN-3)
	b := graph.NewBuilder(n)
	// Random edges with density tuned so k-cores of small k exist.
	for i := 0; i < 3*n; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	g := b.Build()

	geo := attr.NewGeo(n)
	centers := []attr.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 5, Y: 9}}
	for u := 0; u < n; u++ {
		c := centers[rng.Intn(len(centers))]
		geo.SetVertex(int32(u), attr.Point{
			X: c.X + rng.NormFloat64()*2,
			Y: c.Y + rng.NormFloat64()*2,
		})
	}
	r := 3 + rng.Float64()*8 // sometimes merges clusters, sometimes not
	k := 1 + rng.Intn(3)
	return testInstance{
		g: g,
		p: Params{K: k, Oracle: similarity.NewOracle(similarity.Euclidean{Store: geo}, r)},
	}
}

// randomKeywordInstance uses Jaccard similarity over random keyword sets
// drawn from a handful of topics.
func randomKeywordInstance(rng *rand.Rand, maxN int) testInstance {
	n := 4 + rng.Intn(maxN-3)
	b := graph.NewBuilder(n)
	for i := 0; i < 3*n; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	g := b.Build()

	kw := attr.NewKeywords(n)
	for u := 0; u < n; u++ {
		topic := int32(rng.Intn(3)) * 10
		words := []int32{topic, topic + 1, topic + 2}
		if rng.Intn(2) == 0 {
			words = append(words, topic+int32(rng.Intn(4)))
		}
		if rng.Intn(3) == 0 {
			words = append(words, 100+int32(rng.Intn(5))) // shared noise words
		}
		kw.SetVertex(int32(u), words)
	}
	r := 0.2 + rng.Float64()*0.5
	k := 1 + rng.Intn(3)
	return testInstance{
		g: g,
		p: Params{K: k, Oracle: similarity.NewOracle(similarity.Jaccard{Store: kw}, r)},
	}
}

// randomInstance alternates between the two attribute kinds.
func randomInstance(rng *rand.Rand, maxN int) testInstance {
	if rng.Intn(2) == 0 {
		return randomGeoInstance(rng, maxN)
	}
	return randomKeywordInstance(rng, maxN)
}

// sameCoreSets reports whether two canonicalized core lists are equal.
func sameCoreSets(a, b [][]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !equalCores(a[i], b[i]) {
			return false
		}
	}
	return true
}

// validCore checks the full (k,r)-core definition for a result core.
func validCore(inst testInstance, core []int32) bool {
	return len(core) >= inst.p.K+1 && subsetIsCore(inst.g, inst.p, core)
}
