package core

import (
	"fmt"
	"math/rand"
	"testing"

	"krcore/internal/attr"
	"krcore/internal/binenc"
	"krcore/internal/graph"
	"krcore/internal/similarity"
)

// twoClusters builds two dense geo clusters far apart: each is its own
// candidate component at small r.
func twoClusters() (*graph.Graph, *similarity.Oracle) {
	const half = 6
	store := attr.NewGeo(2 * half)
	b := graph.NewBuilder(2 * half)
	for c := 0; c < 2; c++ {
		base := c * half
		for i := 0; i < half; i++ {
			store.SetVertex(int32(base+i), attr.Point{X: float64(c) * 100, Y: float64(i)})
			for j := i + 1; j < half; j++ {
				b.AddEdge(int32(base+i), int32(base+j))
			}
		}
	}
	b.AddEdge(0, half) // structural bridge, dissimilar at r=20
	return b.Build(), similarity.NewOracle(similarity.Euclidean{Store: store}, 20)
}

func TestPatchPreparedReusesUntouchedComponent(t *testing.T) {
	g, oracle := twoClusters()
	p := Params{K: 2, Oracle: oracle}
	filtered := FilterDissimilar(g, p.Oracle)
	pr, err := PrepareFiltered(filtered, p)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Components() != 2 {
		t.Fatalf("want 2 candidate components, got %d", pr.Components())
	}

	// Remove one edge inside the second cluster (vertices 6..11).
	d := graph.NewDelta(filtered)
	if err := d.RemoveEdge(6, 7); err != nil {
		t.Fatal(err)
	}
	filtered2 := filtered.Apply(d)
	touched := make([]bool, filtered2.N())
	touched[6], touched[7] = true, true

	pr2, st, err := PatchPrepared(pr, filtered2, p, touched)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reused != 1 || st.Rebuilt != 1 {
		t.Fatalf("stats = %+v, want 1 reused + 1 rebuilt", st)
	}
	// The untouched first cluster keeps its problem object.
	if pr2.probs[0] != pr.probs[0] {
		t.Fatal("untouched component was rebuilt instead of reused")
	}
	// Results must equal a from-scratch preparation.
	fresh, err := PrepareFiltered(filtered2, p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := pr2.Enumerate(EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := fresh.Enumerate(EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a.Cores) != fmt.Sprint(b.Cores) {
		t.Fatalf("patched %v != fresh %v", a.Cores, b.Cores)
	}
}

// TestPatchPreparedRandomized drives random filtered-graph mutations
// (touching edges only, attributes fixed) and checks the patched
// Prepared is bit-identical to a fresh preparation: same enumeration,
// same maximum.
func TestPatchPreparedRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 12 + rng.Intn(24)
		store := attr.NewGeo(n)
		for u := 0; u < n; u++ {
			store.SetVertex(int32(u), attr.Point{X: rng.Float64() * 25, Y: rng.Float64() * 25})
		}
		oracle := similarity.NewOracle(similarity.Euclidean{Store: store}, 6+rng.Float64()*8)
		p := Params{K: 1 + rng.Intn(3), Oracle: oracle}
		b := graph.NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		filtered := FilterDissimilar(g, oracle)
		pr, err := PrepareFiltered(filtered, p)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 5; step++ {
			d := graph.NewDelta(filtered)
			for op := 0; op < 1+rng.Intn(4); op++ {
				u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
				if u == v {
					continue
				}
				// Only similar pairs may enter a filtered graph.
				if rng.Intn(2) == 0 && oracle.Similar(u, v) {
					if err := d.AddEdge(u, v); err != nil {
						t.Fatal(err)
					}
				} else if err := d.RemoveEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
			filtered2 := filtered.Apply(d)
			touched := make([]bool, n)
			for _, v := range d.Touched() {
				touched[v] = true
			}
			pr2, _, err := PatchPrepared(pr, filtered2, p, touched)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := PrepareFiltered(filtered2, p)
			if err != nil {
				t.Fatal(err)
			}
			pe, err := pr2.Enumerate(EnumOptions{})
			if err != nil {
				t.Fatal(err)
			}
			fe, err := fresh.Enumerate(EnumOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(pe.Cores) != fmt.Sprint(fe.Cores) {
				t.Fatalf("trial %d step %d: patched enum %v != fresh %v", trial, step, pe.Cores, fe.Cores)
			}
			pm, err := pr2.FindMaximum(MaxOptions{})
			if err != nil {
				t.Fatal(err)
			}
			fm, err := fresh.FindMaximum(MaxOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(pm.Cores) != fmt.Sprint(fm.Cores) {
				t.Fatalf("trial %d step %d: patched max %v != fresh %v", trial, step, pm.Cores, fm.Cores)
			}
			filtered, pr = filtered2, pr2
		}
	}
}

// samePrepared asserts two Prepared values are bit-identical: same
// serialised form (components in the same order, same mappings, same
// dissimilarity lists, same core numbers) and same component-id map.
func samePrepared(t *testing.T, label string, got, want *Prepared) {
	t.Helper()
	var gb, wb binenc.Buffer
	AppendPrepared(&gb, got)
	AppendPrepared(&wb, want)
	if string(gb.Bytes()) != string(wb.Bytes()) {
		t.Fatalf("%s: patched Prepared encodes differently from fresh", label)
	}
	if fmt.Sprint(got.compID) != fmt.Sprint(want.compID) {
		t.Fatalf("%s: component ids diverged:\n got %v\nwant %v", label, got.compID, want.compID)
	}
}

// TestPatchPreparedDeltaRandomized drives random filtered-graph edge
// churn through the incremental maintenance path and checks the result
// is bit-identical — same encoding, same core numbers, same component
// ids, same maximum — to a fresh preparation. A second pass with a
// one-vertex visit budget forces the full-recompute fallback and must
// produce the same answer.
func TestPatchPreparedDeltaRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	incremental, full := 0, 0
	for trial := 0; trial < 30; trial++ {
		n := 12 + rng.Intn(24)
		store := attr.NewGeo(n)
		for u := 0; u < n; u++ {
			store.SetVertex(int32(u), attr.Point{X: rng.Float64() * 25, Y: rng.Float64() * 25})
		}
		oracle := similarity.NewOracle(similarity.Euclidean{Store: store}, 6+rng.Float64()*8)
		p := Params{K: 1 + rng.Intn(3), Oracle: oracle}
		b := graph.NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		filtered := FilterDissimilar(g, oracle)
		pr, err := PrepareFiltered(filtered, p)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 6; step++ {
			d := graph.NewDelta(filtered)
			// trial%3 skews the stream: mixed, insert-heavy, remove-heavy.
			addBias := []int{2, 3, 1}[trial%3]
			for op := 0; op < 1+rng.Intn(4); op++ {
				u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
				if u == v {
					continue
				}
				if rng.Intn(4) < addBias && oracle.Similar(u, v) {
					if err := d.AddEdge(u, v); err != nil {
						t.Fatal(err)
					}
				} else if err := d.RemoveEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
			filtered2 := filtered.Apply(d)
			addF, delF := d.Diff()
			touched := make([]bool, n)
			for _, v := range d.Touched() {
				touched[v] = true
			}
			pd := PatchDelta{AddFiltered: addF, DelFiltered: delF, Touched: touched, MaxVisit: 100 * n}
			pr2, st, err := PatchPreparedDelta(pr, filtered2, p, pd)
			if err != nil {
				t.Fatal(err)
			}
			if st.Incremental {
				incremental++
			} else {
				full++
			}
			fresh, err := PrepareFiltered(filtered2, p)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("trial %d step %d", trial, step)
			samePrepared(t, label, pr2, fresh)
			pm, err := pr2.FindMaximum(MaxOptions{})
			if err != nil {
				t.Fatal(err)
			}
			fm, err := fresh.FindMaximum(MaxOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(pm.Cores) != fmt.Sprint(fm.Cores) {
				t.Fatalf("%s: patched max %v != fresh %v", label, pm.Cores, fm.Cores)
			}
			// The fallback must agree with the incremental path.
			pd.MaxVisit = 1
			pr2b, stb, err := PatchPreparedDelta(pr, filtered2, p, pd)
			if err != nil {
				t.Fatal(err)
			}
			if stb.Incremental && (len(addF) > 0 || len(delF) > 0) {
				t.Fatalf("%s: one-vertex budget still took the incremental path", label)
			}
			samePrepared(t, label+" (fallback)", pr2b, fresh)
			filtered, pr = filtered2, pr2
		}
	}
	if incremental == 0 {
		t.Fatal("no batch ever took the incremental path")
	}
	t.Logf("incremental=%d full=%d", incremental, full)
}

// TestPatchPreparedDeltaNoop checks a no-change delta returns the old
// Prepared wholesale — shared pointer, zero visits.
func TestPatchPreparedDeltaNoop(t *testing.T) {
	g, oracle := twoClusters()
	p := Params{K: 2, Oracle: oracle}
	filtered := FilterDissimilar(g, p.Oracle)
	pr, err := PrepareFiltered(filtered, p)
	if err != nil {
		t.Fatal(err)
	}
	pr2, st, err := PatchPreparedDelta(pr, filtered, p, PatchDelta{Touched: make([]bool, filtered.N())})
	if err != nil {
		t.Fatal(err)
	}
	if pr2 != pr {
		t.Fatal("no-op delta must return the old Prepared itself")
	}
	if !st.Incremental || st.CoreVisited != 0 || st.Reused != pr.Components() {
		t.Fatalf("no-op stats = %+v", st)
	}
}

// TestPatchPreparedDeltaGrowth applies a vertex-growth batch through
// the incremental path and checks it against a fresh preparation.
func TestPatchPreparedDeltaGrowth(t *testing.T) {
	g, oracle := twoClusters()
	store := oracle.Metric().(similarity.Euclidean).Store
	p := Params{K: 2, Oracle: oracle}
	filtered := FilterDissimilar(g, p.Oracle)
	pr, err := PrepareFiltered(filtered, p)
	if err != nil {
		t.Fatal(err)
	}
	// Grow one vertex co-located with cluster one and weld it in with
	// three similar edges: it must join that candidate component.
	d := graph.NewDelta(filtered)
	nv := d.AddVertex()
	store.Grow(int(nv) + 1)
	store.SetVertex(nv, attr.Point{X: 0, Y: 2.5})
	for _, u := range []int32{0, 1, 2} {
		if err := d.AddEdge(nv, u); err != nil {
			t.Fatal(err)
		}
	}
	filtered2 := filtered.Apply(d)
	addF, delF := d.Diff()
	touched := make([]bool, filtered2.N())
	for _, v := range d.Touched() {
		touched[v] = true
	}
	// Vertex growth invalidates the bulk similarity index (it snapshots
	// per-vertex state at construction), so the serving layer hands the
	// patch a rebuilt oracle — mirror that here.
	p2 := Params{K: p.K, Oracle: similarity.NewOracle(similarity.Euclidean{Store: store}, 20)}
	pr2, st, err := PatchPreparedDelta(pr, filtered2, p2, PatchDelta{
		AddFiltered: addF, DelFiltered: delF, Touched: touched, MaxVisit: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Incremental {
		t.Fatalf("growth batch fell back to full recompute: %+v", st)
	}
	fresh, err := PrepareFiltered(filtered2, p2)
	if err != nil {
		t.Fatal(err)
	}
	samePrepared(t, "growth", pr2, fresh)
}
