package core

import (
	"fmt"
	"math/rand"
	"testing"

	"krcore/internal/attr"
	"krcore/internal/graph"
	"krcore/internal/similarity"
)

// twoClusters builds two dense geo clusters far apart: each is its own
// candidate component at small r.
func twoClusters() (*graph.Graph, *similarity.Oracle) {
	const half = 6
	store := attr.NewGeo(2 * half)
	b := graph.NewBuilder(2 * half)
	for c := 0; c < 2; c++ {
		base := c * half
		for i := 0; i < half; i++ {
			store.SetVertex(int32(base+i), attr.Point{X: float64(c) * 100, Y: float64(i)})
			for j := i + 1; j < half; j++ {
				b.AddEdge(int32(base+i), int32(base+j))
			}
		}
	}
	b.AddEdge(0, half) // structural bridge, dissimilar at r=20
	return b.Build(), similarity.NewOracle(similarity.Euclidean{Store: store}, 20)
}

func TestPatchPreparedReusesUntouchedComponent(t *testing.T) {
	g, oracle := twoClusters()
	p := Params{K: 2, Oracle: oracle}
	filtered := FilterDissimilar(g, p.Oracle)
	pr, err := PrepareFiltered(filtered, p)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Components() != 2 {
		t.Fatalf("want 2 candidate components, got %d", pr.Components())
	}

	// Remove one edge inside the second cluster (vertices 6..11).
	d := graph.NewDelta(filtered)
	if err := d.RemoveEdge(6, 7); err != nil {
		t.Fatal(err)
	}
	filtered2 := filtered.Apply(d)
	touched := make([]bool, filtered2.N())
	touched[6], touched[7] = true, true

	pr2, st, err := PatchPrepared(pr, filtered2, p, touched)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reused != 1 || st.Rebuilt != 1 {
		t.Fatalf("stats = %+v, want 1 reused + 1 rebuilt", st)
	}
	// The untouched first cluster keeps its problem object.
	if pr2.probs[0] != pr.probs[0] {
		t.Fatal("untouched component was rebuilt instead of reused")
	}
	// Results must equal a from-scratch preparation.
	fresh, err := PrepareFiltered(filtered2, p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := pr2.Enumerate(EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := fresh.Enumerate(EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a.Cores) != fmt.Sprint(b.Cores) {
		t.Fatalf("patched %v != fresh %v", a.Cores, b.Cores)
	}
}

// TestPatchPreparedRandomized drives random filtered-graph mutations
// (touching edges only, attributes fixed) and checks the patched
// Prepared is bit-identical to a fresh preparation: same enumeration,
// same maximum.
func TestPatchPreparedRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 12 + rng.Intn(24)
		store := attr.NewGeo(n)
		for u := 0; u < n; u++ {
			store.SetVertex(int32(u), attr.Point{X: rng.Float64() * 25, Y: rng.Float64() * 25})
		}
		oracle := similarity.NewOracle(similarity.Euclidean{Store: store}, 6+rng.Float64()*8)
		p := Params{K: 1 + rng.Intn(3), Oracle: oracle}
		b := graph.NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		filtered := FilterDissimilar(g, oracle)
		pr, err := PrepareFiltered(filtered, p)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 5; step++ {
			d := graph.NewDelta(filtered)
			for op := 0; op < 1+rng.Intn(4); op++ {
				u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
				if u == v {
					continue
				}
				// Only similar pairs may enter a filtered graph.
				if rng.Intn(2) == 0 && oracle.Similar(u, v) {
					if err := d.AddEdge(u, v); err != nil {
						t.Fatal(err)
					}
				} else if err := d.RemoveEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
			filtered2 := filtered.Apply(d)
			touched := make([]bool, n)
			for _, v := range d.Touched() {
				touched[v] = true
			}
			pr2, _, err := PatchPrepared(pr, filtered2, p, touched)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := PrepareFiltered(filtered2, p)
			if err != nil {
				t.Fatal(err)
			}
			pe, err := pr2.Enumerate(EnumOptions{})
			if err != nil {
				t.Fatal(err)
			}
			fe, err := fresh.Enumerate(EnumOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(pe.Cores) != fmt.Sprint(fe.Cores) {
				t.Fatalf("trial %d step %d: patched enum %v != fresh %v", trial, step, pe.Cores, fe.Cores)
			}
			pm, err := pr2.FindMaximum(MaxOptions{})
			if err != nil {
				t.Fatal(err)
			}
			fm, err := fresh.FindMaximum(MaxOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(pm.Cores) != fmt.Sprint(fm.Cores) {
				t.Fatalf("trial %d step %d: patched max %v != fresh %v", trial, step, pm.Cores, fm.Cores)
			}
			filtered, pr = filtered2, pr2
		}
	}
}
