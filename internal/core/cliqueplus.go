package core

import (
	"sync"
	"time"

	"krcore/internal/clique"
	"krcore/internal/graph"
	"krcore/internal/simgraph"
	"krcore/internal/simindex"
)

// CliqueOptions configures the CliquePlus baseline.
type CliqueOptions struct {
	// Parallelism, when above 1, processes candidate components on that
	// many goroutines, sharing one global budget.
	Parallelism int
	// Limits bounds the clique enumeration (shared across workers).
	Limits Limits
}

// CliquePlus is the improved clique-based baseline of Section 3: compute
// the k-core of the dissimilar-edge-filtered graph, materialise the
// similarity graph of each connected component, enumerate its maximal
// cliques, and compute the k-core of the structural subgraph induced by
// each maximal clique. Connected survivors are (k,r)-cores; a final
// maximal filter removes contained results.
func CliquePlus(g *graph.Graph, p Params, opt CliqueOptions) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	bud := newBudget(opt.Limits)
	var all [][]int32
	if bud.precheck() {
		probs := prepare(g, p)
		var mu sync.Mutex
		searchOne := func(prob *problem) {
			// The similarity graph of the component, on local ids, built
			// in bulk through the oracle's similarity index.
			simG := simgraph.SimilarityGraphBulk(simindex.For(p.Oracle), prob.orig)
			clique.MaximalCliques(simG, func(q []int32) bool {
				if !bud.step() {
					return false
				}
				if len(q) < p.K+1 {
					return true
				}
				for _, r := range kcoreComponents(prob, q) {
					if len(r) >= p.K+1 {
						mu.Lock()
						all = append(all, prob.toGlobal(r))
						mu.Unlock()
					}
				}
				return true
			})
		}
		runPool(len(probs), opt.Parallelism, bud, func(i int) {
			searchOne(probs[i])
		})
	}
	all = filterMaximal(all)
	return &Result{
		Cores:    all,
		Nodes:    bud.count(),
		TimedOut: bud.exhausted(),
		Elapsed:  time.Since(start),
	}, nil
}

// kcoreComponents peels the structural subgraph induced by the local
// vertex set q down to its k-core and returns its connected components.
func kcoreComponents(p *problem, q []int32) [][]int32 {
	in := make(map[int32]bool, len(q))
	for _, v := range q {
		in[v] = true
	}
	deg := make(map[int32]int32, len(q))
	degOf := func(v int32) int32 {
		var d int32
		for _, nb := range p.adj[v] {
			if in[nb] {
				d++
			}
		}
		return d
	}
	// Degrees against the full set first; removals are marked only
	// afterwards, so the cascade decrements each edge exactly once.
	for _, v := range q {
		deg[v] = degOf(v)
	}
	var queue []int32
	for _, v := range q {
		if deg[v] < int32(p.k) {
			queue = append(queue, v)
			in[v] = false
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, nb := range p.adj[v] {
			if !in[nb] {
				continue
			}
			deg[nb]--
			if deg[nb] < int32(p.k) {
				in[nb] = false
				queue = append(queue, nb)
			}
		}
	}
	// Components of the survivors.
	var comps [][]int32
	seen := make(map[int32]bool, len(q))
	for _, v := range q {
		if !in[v] || seen[v] {
			continue
		}
		comp := []int32{v}
		seen[v] = true
		stack := []int32{v}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, nb := range p.adj[u] {
				if in[nb] && !seen[nb] {
					seen[nb] = true
					comp = append(comp, nb)
					stack = append(stack, nb)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}
