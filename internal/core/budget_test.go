package core

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// TestNodesClampedToMaxNodes: a limited search must report at most
// MaxNodes accounted nodes (the pre-fix budget counted the refusing
// step, reporting MaxNodes+1).
func TestNodesClampedToMaxNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		inst := randomInstance(rng, 18)
		for _, maxNodes := range []int64{1, 7, 50} {
			res, err := Enumerate(inst.g, inst.p, EnumOptions{Limits: Limits{MaxNodes: maxNodes}})
			if err != nil {
				t.Fatal(err)
			}
			if res.Nodes > maxNodes {
				t.Fatalf("trial %d: Enumerate Nodes=%d exceeds MaxNodes=%d", trial, res.Nodes, maxNodes)
			}
			mres, err := FindMaximum(inst.g, inst.p, MaxOptions{Limits: Limits{MaxNodes: maxNodes}})
			if err != nil {
				t.Fatal(err)
			}
			if mres.Nodes > maxNodes {
				t.Fatalf("trial %d: FindMaximum Nodes=%d exceeds MaxNodes=%d", trial, mres.Nodes, maxNodes)
			}
		}
	}
}

// TestParallelSharedNodeLimit: with Parallelism=P the node cap is
// global, not per worker — a regression test for the bug where every
// worker got its own budget and MaxNodes was effectively multiplied by
// P (and an exhausted worker did not stop the others).
func TestParallelSharedNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		inst := randomInstance(rng, 20)
		full, err := Enumerate(inst.g, inst.p, EnumOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if full.Nodes < 8 {
			continue // too small for the limit to matter
		}
		maxNodes := full.Nodes / 2
		for _, workers := range []int{1, 2, 4, 8} {
			opt := EnumOptions{Parallelism: workers, Limits: Limits{MaxNodes: maxNodes}}
			res, err := Enumerate(inst.g, inst.p, opt)
			if err != nil {
				t.Fatal(err)
			}
			if res.Nodes > maxNodes {
				t.Fatalf("trial %d (workers=%d): Nodes=%d exceeds global MaxNodes=%d",
					trial, workers, res.Nodes, maxNodes)
			}
			if !res.TimedOut {
				t.Fatalf("trial %d (workers=%d): expected TimedOut at MaxNodes=%d (full run: %d nodes)",
					trial, workers, maxNodes, full.Nodes)
			}
			mopt := MaxOptions{Parallelism: workers, Limits: Limits{MaxNodes: maxNodes}}
			mres, err := FindMaximum(inst.g, inst.p, mopt)
			if err != nil {
				t.Fatal(err)
			}
			if mres.Nodes > maxNodes {
				t.Fatalf("trial %d (workers=%d): FindMaximum Nodes=%d exceeds global MaxNodes=%d",
					trial, workers, mres.Nodes, maxNodes)
			}
		}
	}
}

// TestContextCancellation: a search started with a cancelled context
// does no work and reports TimedOut.
func TestContextCancellation(t *testing.T) {
	inst := figure1Instance()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		res, err := Enumerate(inst.g, inst.p, EnumOptions{
			Parallelism: workers,
			Limits:      Limits{Context: ctx},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.TimedOut || res.Nodes != 0 || len(res.Cores) != 0 {
			t.Fatalf("workers=%d: cancelled enumerate ran anyway: %+v", workers, res)
		}
		mres, err := FindMaximum(inst.g, inst.p, MaxOptions{
			Parallelism: workers,
			Limits:      Limits{Context: ctx},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !mres.TimedOut || mres.Nodes != 0 || len(mres.Cores) != 0 {
			t.Fatalf("workers=%d: cancelled FindMaximum ran anyway: %+v", workers, mres)
		}
		cres, err := CliquePlus(inst.g, inst.p, CliqueOptions{
			Parallelism: workers,
			Limits:      Limits{Context: ctx},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !cres.TimedOut || cres.Nodes != 0 {
			t.Fatalf("workers=%d: cancelled CliquePlus ran anyway: %+v", workers, cres)
		}
	}
}

// TestContextCancellationMidSearch: cancelling while workers are inside
// the search stops them (observed within budgetCheckInterval nodes per
// worker). The instance is made expensive enough that the search cannot
// finish before the cancellation lands.
func TestContextCancellationMidSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	inst := hardInstance(rng)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *Result, 1)
	go func() {
		res, err := Enumerate(inst.g, inst.p, EnumOptions{
			Parallelism: 2,
			Limits:      Limits{Context: ctx},
		})
		if err != nil {
			panic(err)
		}
		done <- res
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case res := <-done:
		// Either the search finished before the cancel (tiny instance)
		// or it was cut short; both are fine — the point is that it
		// returns promptly instead of running to completion.
		_ = res
	case <-time.After(30 * time.Second):
		t.Fatal("search did not observe cancellation")
	}
}

// hardInstance builds a dense random instance whose enumeration takes
// long enough for mid-search cancellation to land.
func hardInstance(rng *rand.Rand) testInstance {
	best := randomInstance(rng, 20)
	var bestNodes int64
	for i := 0; i < 12; i++ {
		inst := randomInstance(rng, 20)
		res, err := Enumerate(inst.g, inst.p, EnumOptions{})
		if err != nil {
			continue
		}
		if res.Nodes > bestNodes {
			bestNodes = res.Nodes
			best = inst
		}
	}
	return best
}

// TestParallelFindMaximumMatchesSerial: the parallel maximum search
// must return exactly the serial result — same core, not just the same
// size — thanks to the component-order tie-break on the shared
// incumbent.
func TestParallelFindMaximumMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 60; trial++ {
		inst := randomInstance(rng, 18)
		serial, err := FindMaximum(inst.g, inst.p, MaxOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			par, err := FindMaximum(inst.g, inst.p, MaxOptions{Parallelism: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !sameCoreSets(par.Cores, serial.Cores) {
				t.Fatalf("trial %d (workers=%d): parallel %v != serial %v",
					trial, workers, par.Cores, serial.Cores)
			}
		}
	}
}

// TestParallelCliquePlusMatchesSerial: CliquePlus results are
// canonicalized, so worker interleaving must not change them.
func TestParallelCliquePlusMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 30; trial++ {
		inst := randomInstance(rng, 16)
		serial, err := CliquePlus(inst.g, inst.p, CliqueOptions{})
		if err != nil {
			t.Fatal(err)
		}
		par, err := CliquePlus(inst.g, inst.p, CliqueOptions{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !sameCoreSets(par.Cores, serial.Cores) {
			t.Fatalf("trial %d: parallel %v != serial %v", trial, par.Cores, serial.Cores)
		}
	}
}

// TestBudgetStepConcurrencyClamp hammers one budget from many
// goroutines and verifies the global cap and the clamped counter.
func TestBudgetStepConcurrencyClamp(t *testing.T) {
	const maxNodes = 1000
	bud := newBudget(Limits{MaxNodes: maxNodes})
	const workers = 8
	done := make(chan int64, workers)
	for w := 0; w < workers; w++ {
		go func() {
			var accepted int64
			for i := 0; i < maxNodes; i++ {
				if bud.step() {
					accepted++
				}
			}
			done <- accepted
		}()
	}
	var total int64
	for w := 0; w < workers; w++ {
		total += <-done
	}
	if total != maxNodes {
		t.Fatalf("accepted %d steps in total, want exactly %d", total, maxNodes)
	}
	if got := bud.count(); got != maxNodes {
		t.Fatalf("counter settled at %d, want %d", got, maxNodes)
	}
	if !bud.exhausted() {
		t.Fatal("budget should be exhausted")
	}
}

// TestPreparedReuse: one Prepared must serve repeated and concurrent
// searches with identical results.
func TestPreparedReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		inst := randomInstance(rng, 16)
		pr, err := Prepare(inst.g, inst.p)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Enumerate(inst.g, inst.p, EnumOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			res, err := pr.Enumerate(EnumOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !sameCoreSets(res.Cores, fresh.Cores) {
				t.Fatalf("trial %d run %d: prepared %v != fresh %v", trial, i, res.Cores, fresh.Cores)
			}
		}
		freshMax, err := FindMaximum(inst.g, inst.p, MaxOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			res, err := pr.FindMaximum(MaxOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !sameCoreSets(res.Cores, freshMax.Cores) {
				t.Fatalf("trial %d run %d: prepared max %v != fresh %v", trial, i, res.Cores, freshMax.Cores)
			}
		}
	}
}
