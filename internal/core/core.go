// Package core implements the paper's contribution: enumeration of all
// maximal (k,r)-cores and computation of the maximum (k,r)-core on an
// attributed graph (Zhang et al., VLDB 2017).
//
// A (k,r)-core is a connected subgraph in which every vertex has at
// least k neighbours inside the subgraph (structure constraint,
// Definition 1) and every vertex pair is similar under the threshold r
// (similarity constraint, Definition 2). Both problems are NP-hard
// (Theorem 1); the algorithms here are branch-and-bound set-enumeration
// searches over candidate components with:
//
//   - candidate pruning (Theorems 2 and 3),
//   - candidate retention via similarity-free vertices SF(C) (Theorem 4),
//   - early termination via the relevant excluded set E (Theorem 5),
//   - maximal checking against E (Theorem 6, Algorithm 4),
//   - size upper bounds including the (k,k')-core bound (Theorem 7,
//     Algorithm 6) for the maximum search (Algorithm 5), and
//   - the search orders of Section 7.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"krcore/internal/similarity"
)

// Params carries the (k,r)-core problem definition: the degree threshold
// k and the similarity oracle encapsulating the metric and threshold r.
type Params struct {
	K      int
	Oracle *similarity.Oracle
}

func (p Params) validate() error {
	if p.K < 1 {
		return fmt.Errorf("core: k must be >= 1, got %d", p.K)
	}
	if p.Oracle == nil {
		return errors.New("core: similarity oracle must not be nil")
	}
	return nil
}

// Order selects the vertex visiting order of Section 7.
type Order int

const (
	// OrderDefault resolves to the algorithm-specific best order: the
	// Δ1-then-Δ2 order for enumeration (Section 7.3), λΔ1−Δ2 for the
	// maximum search (Section 7.2) and the degree order for maximal
	// checking (Section 7.4).
	OrderDefault Order = iota
	// OrderDelta1ThenDelta2 prefers the vertex with the largest Δ1
	// (dissimilar-pair reduction), breaking ties by smallest Δ2 (edge
	// reduction); the best order for enumeration (Section 7.3).
	OrderDelta1ThenDelta2
	// OrderLambdaDelta scores branches by λΔ1−Δ2 and visits the best
	// branch of the best vertex first; the best order for the maximum
	// search (Section 7.2).
	OrderLambdaDelta
	// OrderDegree chooses the vertex with the highest degree in M∪C;
	// the best order for maximal checking (Section 7.4).
	OrderDegree
	// OrderRandom chooses a pseudo-random candidate (baseline).
	OrderRandom
	// OrderDelta1 maximises Δ1 only.
	OrderDelta1
	// OrderDelta2 minimises Δ2 only.
	OrderDelta2
)

// String returns the name used in the paper's figures.
func (o Order) String() string {
	switch o {
	case OrderDefault:
		return "default"
	case OrderDelta1ThenDelta2:
		return "d1-then-d2"
	case OrderLambdaDelta:
		return "lambda*d1-d2"
	case OrderDegree:
		return "degree"
	case OrderRandom:
		return "random"
	case OrderDelta1:
		return "d1"
	case OrderDelta2:
		return "d2"
	default:
		return "unknown"
	}
}

// Bound selects the (k,r)-core size upper bound of Section 6.2 used by
// the maximum search.
type Bound int

const (
	// BoundDefault resolves to BoundDoubleKcore, the AdvMax bound.
	BoundDefault Bound = iota
	// BoundNaive is |M|+|C| (the BasicMax bound).
	BoundNaive
	// BoundColor is the colour-based clique bound on the similarity
	// graph J'.
	BoundColor
	// BoundKcore is kmax(J')+1, the k-core based clique bound on J'.
	BoundKcore
	// BoundColorKcore takes the smaller of BoundColor and BoundKcore
	// (the Color+Kcore competitor of Figure 10, after Yuan et al.).
	BoundColorKcore
	// BoundDoubleKcore is the paper's (k,k')-core bound (Algorithm 6),
	// the tightest of the four.
	BoundDoubleKcore
)

// String returns the name used in the paper's figures.
func (b Bound) String() string {
	switch b {
	case BoundDefault:
		return "default"
	case BoundNaive:
		return "|M|+|C|"
	case BoundColor:
		return "color"
	case BoundKcore:
		return "kcore"
	case BoundColorKcore:
		return "color+kcore"
	case BoundDoubleKcore:
		return "double-kcore"
	default:
		return "unknown"
	}
}

// Branch selects which branch the maximum search explores first.
type Branch int

const (
	// BranchAdaptive explores first the branch with the higher
	// λΔ1−Δ2 score (AdvMax behaviour, Section 7.2).
	BranchAdaptive Branch = iota
	// BranchExpandFirst always expands first.
	BranchExpandFirst
	// BranchShrinkFirst always shrinks first.
	BranchShrinkFirst
)

// String returns the name used in Figure 11(b).
func (b Branch) String() string {
	switch b {
	case BranchAdaptive:
		return "adaptive"
	case BranchExpandFirst:
		return "expand"
	case BranchShrinkFirst:
		return "shrink"
	default:
		return "unknown"
	}
}

// Limits bounds a search. The zero value means unlimited. All limits
// are global: with Parallelism above 1 the workers draw search nodes
// from one shared budget, so MaxNodes caps the total across workers and
// nested maximal checks (not MaxNodes per worker), and the first worker
// to observe an exhausted budget stops every other worker.
type Limits struct {
	// Deadline aborts the search when passed (reported via
	// Result.TimedOut); the harness uses this for the paper's INF cells.
	Deadline time.Time
	// MaxNodes aborts after this many search-tree nodes in total, summed
	// across all workers and nested maximal checks (0 = unlimited).
	// Result.Nodes never exceeds MaxNodes.
	MaxNodes int64
	// Context, when non-nil, cancels the search when done: cancellation
	// is observed within budgetCheckInterval search nodes and reported
	// via Result.TimedOut, like any other exhausted limit.
	Context context.Context
}

// EnumOptions configures the maximal (k,r)-core enumeration.
// The zero value is the full AdvEnum configuration of Table 2.
type EnumOptions struct {
	// Order is the vertex visiting order (default OrderDelta1ThenDelta2,
	// the best enumeration order).
	Order Order
	// Lambda is the λ of OrderLambdaDelta (default 5, the paper's
	// default).
	Lambda float64
	// DisableRetention turns off the SF(C) candidate retention of
	// Theorem 4 (BasicEnum behaviour).
	DisableRetention bool
	// DisableEarlyTermination turns off Theorem 5.
	DisableEarlyTermination bool
	// DisableMaximalCheck turns off the Theorem 6 in-search maximal
	// check; non-maximal results are then removed by a quadratic
	// post-filter, as in Algorithm 1 lines 6-8.
	DisableMaximalCheck bool
	// CheckOrder is the vertex order inside the maximal check
	// (default OrderDegree, the best per Section 7.4).
	CheckOrder Order
	// MinSize, when positive, restricts the output to maximal cores
	// with at least MinSize vertices and prunes subtrees whose
	// (k,k')-core size bound falls below it — the natural
	// size-constrained variant of the enumeration (an application of
	// Theorem 7 beyond the maximum search).
	MinSize int
	// Parallelism, when above 1, processes candidate components on
	// that many goroutines. Results are identical to a serial run
	// (they are canonicalized); all workers draw from one shared
	// budget, so Limits holds globally, not per worker.
	Parallelism int
	// Limits bounds the search (shared globally across workers).
	Limits Limits

	// anchorPlus1 restricts the enumeration to cores containing vertex
	// anchorPlus1-1 when non-zero (set via EnumerateContaining; zero
	// means unrestricted, keeping the zero EnumOptions meaningful).
	anchorPlus1 int32
}

// MaxOptions configures the maximum (k,r)-core search. The zero value is
// the full AdvMax configuration of Table 2.
type MaxOptions struct {
	// Order is the vertex visiting order (default OrderLambdaDelta).
	Order Order
	// Lambda is the λ of OrderLambdaDelta (default 5).
	Lambda float64
	// Bound is the size upper bound (default BoundDoubleKcore).
	Bound Bound
	// Branch selects the branch exploration order (default
	// BranchAdaptive).
	Branch Branch
	// DisableEarlyTermination turns off Theorem 5 (Algorithm 5 line 1
	// applies it by default; disabling it is useful for ablations).
	DisableEarlyTermination bool
	// Parallelism, when above 1, searches candidate components on that
	// many goroutines sharing one incumbent size atomically, so the
	// (k,k')-core bound prunes globally. For runs that complete without
	// TimedOut, the reported core is identical to a serial run's (ties
	// between components are broken by the serial component order);
	// node counts may differ because pruning depends on when the
	// incumbent tightens, and truncated runs may stop at different
	// frontiers.
	Parallelism int
	// Limits bounds the search (shared globally across workers).
	Limits Limits
}

// Result reports the outcome of a search.
type Result struct {
	// Cores holds the reported (k,r)-cores as sorted global vertex-id
	// slices: all maximal cores for Enumerate (canonically ordered), at
	// most one core for FindMaximum.
	Cores [][]int32
	// Nodes counts expanded search-tree nodes across all candidate
	// components and workers (including maximal-check nodes). It never
	// exceeds Limits.MaxNodes when that cap is set.
	Nodes int64
	// TimedOut reports whether a limit — deadline, node cap or context
	// cancellation — aborted the search; Cores is then incomplete.
	TimedOut bool
	// Elapsed is the wall-clock duration of the search.
	Elapsed time.Duration
}

// Stats summarises an enumeration result as plotted in Figure 7.
type Stats struct {
	Count   int     // number of maximal (k,r)-cores
	MaxSize int     // size of the largest one
	AvgSize float64 // average size
}

// Summarize computes Figure-7 statistics over the result cores.
func (r *Result) Summarize() Stats {
	s := Stats{Count: len(r.Cores)}
	total := 0
	for _, c := range r.Cores {
		total += len(c)
		if len(c) > s.MaxSize {
			s.MaxSize = len(c)
		}
	}
	if s.Count > 0 {
		s.AvgSize = float64(total) / float64(s.Count)
	}
	return s
}

// budget tracks node counts, deadlines and cancellation for one search.
// A single budget is shared by every worker of a parallel search and by
// the nested maximal checks, so the limits are global: the node counter
// is one atomic total and the stop flag halts all workers at once. The
// zero value is an unlimited budget.
type budget struct {
	limits  Limits
	nodes   atomic.Int64
	stopped atomic.Bool
}

// newBudget returns a budget enforcing the given limits.
func newBudget(l Limits) *budget { return &budget{limits: l} }

// budgetCheckInterval is how many search nodes may pass between
// deadline/cancellation checks (a power of two; the counter is tested
// against interval-1 as a mask).
const budgetCheckInterval = 1024

// step accounts for one search node and reports whether the search may
// continue. Safe for concurrent use. The node counter is clamped so
// that it never exceeds MaxNodes: a step that would cross the cap is
// not counted, only refused.
func (b *budget) step() bool {
	if b.stopped.Load() {
		return false
	}
	n := b.nodes.Add(1)
	if b.limits.MaxNodes > 0 && n > b.limits.MaxNodes {
		// Undo the over-cap increment so Result.Nodes stays clamped to
		// MaxNodes. Concurrent over-cap steps each undo their own
		// increment, so the counter settles at most at MaxNodes.
		b.nodes.Add(-1)
		b.stopped.Store(true)
		return false
	}
	if n&(budgetCheckInterval-1) == 0 {
		if !b.limits.Deadline.IsZero() && time.Now().After(b.limits.Deadline) {
			b.stopped.Store(true)
			return false
		}
		if b.limits.Context != nil && b.limits.Context.Err() != nil {
			b.stopped.Store(true)
			return false
		}
	}
	return true
}

// exhausted reports whether some limit has stopped the search.
func (b *budget) exhausted() bool { return b.stopped.Load() }

// count returns the number of accounted search nodes.
func (b *budget) count() int64 { return b.nodes.Load() }

// precheck stops the budget up front when the context is already
// cancelled or the deadline already passed, so a search started with a
// dead context does no work. It reports whether the search may start.
func (b *budget) precheck() bool {
	if b.limits.Context != nil && b.limits.Context.Err() != nil {
		b.stopped.Store(true)
	}
	if !b.limits.Deadline.IsZero() && time.Now().After(b.limits.Deadline) {
		b.stopped.Store(true)
	}
	return !b.stopped.Load()
}

// runPool runs fn(i) for every i in [0, items) on up to `workers`
// goroutines drawing from the shared budget: once the budget is
// exhausted, remaining items are drained without running. With one
// worker (or one item) it runs inline in index order, stopping at the
// first exhaustion — the common search driver for enumeration, the
// maximum search and the Clique+ baseline.
func runPool(items, workers int, bud *budget, fn func(i int)) {
	if workers > items {
		workers = items
	}
	if workers <= 1 {
		for i := 0; i < items; i++ {
			fn(i)
			if bud.exhausted() {
				break
			}
		}
		return
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if bud.exhausted() {
					continue // drain remaining work after exhaustion
				}
				fn(i)
			}
		}()
	}
	for i := 0; i < items; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}
