package core

import (
	"fmt"

	"krcore/internal/graph"
)

// BruteForce enumerates the maximal (k,r)-cores of g by exhaustive
// subset enumeration over the raw graph, independent of all search
// machinery — the NaiveEnum ground truth of Section 4 used to validate
// the optimised algorithms. It refuses graphs with more than 22
// vertices.
func BruteForce(g *graph.Graph, p Params) ([][]int32, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := g.N()
	if n > 22 {
		return nil, fmt.Errorf("core: BruteForce limited to 22 vertices, got %d", n)
	}
	var cores [][]int32
	verts := make([]int32, 0, n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		verts = verts[:0]
		for u := 0; u < n; u++ {
			if mask&(1<<uint(u)) != 0 {
				verts = append(verts, int32(u))
			}
		}
		if len(verts) < p.K+1 {
			continue
		}
		if !subsetIsCore(g, p, verts) {
			continue
		}
		cores = append(cores, append([]int32(nil), verts...))
	}
	return filterMaximal(cores), nil
}

// BruteForceMaximum returns one maximum (k,r)-core of g by exhaustive
// enumeration (nil if none exists).
func BruteForceMaximum(g *graph.Graph, p Params) ([]int32, error) {
	cores, err := BruteForce(g, p)
	if err != nil {
		return nil, err
	}
	var best []int32
	for _, c := range cores {
		if len(c) > len(best) {
			best = c
		}
	}
	return best, nil
}

// subsetIsCore checks the full (k,r)-core definition on a sorted vertex
// subset: structure, similarity and connectivity.
func subsetIsCore(g *graph.Graph, p Params, verts []int32) bool {
	in := make(map[int32]bool, len(verts))
	for _, v := range verts {
		in[v] = true
	}
	for _, v := range verts {
		d := 0
		for _, nb := range g.Neighbors(v) {
			if in[nb] {
				d++
			}
		}
		if d < p.K {
			return false
		}
	}
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			if !p.Oracle.Similar(verts[i], verts[j]) {
				return false
			}
		}
	}
	return g.IsConnectedSubset(verts)
}
