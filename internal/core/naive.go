package core

import (
	"fmt"

	"krcore/internal/graph"
	"krcore/internal/simindex"
)

// BruteForce enumerates the maximal (k,r)-cores of g by exhaustive
// subset enumeration over the raw graph, independent of all search
// machinery — the NaiveEnum ground truth of Section 4 used to validate
// the optimised algorithms. It refuses graphs with more than 22
// vertices.
func BruteForce(g *graph.Graph, p Params) ([][]int32, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := g.N()
	if n > 22 {
		return nil, fmt.Errorf("core: BruteForce limited to 22 vertices, got %d", n)
	}
	// The explicit similarity structure, built once through the
	// oracle's bulk engine and flattened into per-vertex bitmasks so
	// each of the 2^n subset checks tests similarity in O(n) words.
	all := make([]int32, n)
	for u := range all {
		all[u] = int32(u)
	}
	simMask := make([]uint32, n)
	for u, nbs := range simindex.For(p.Oracle).SimilarAdjacency(all) {
		simMask[u] = 1 << uint(u) // a vertex is similar to itself
		for _, v := range nbs {
			simMask[u] |= 1 << uint(v)
		}
	}
	var cores [][]int32
	verts := make([]int32, 0, n)
	for mask := uint32(0); mask < 1<<uint(n); mask++ {
		verts = verts[:0]
		for u := 0; u < n; u++ {
			if mask&(1<<uint(u)) != 0 {
				verts = append(verts, int32(u))
			}
		}
		if len(verts) < p.K+1 {
			continue
		}
		if !maskIsCore(g, p, verts, mask, simMask) {
			continue
		}
		cores = append(cores, append([]int32(nil), verts...))
	}
	return filterMaximal(cores), nil
}

// BruteForceMaximum returns one maximum (k,r)-core of g by exhaustive
// enumeration (nil if none exists).
func BruteForceMaximum(g *graph.Graph, p Params) ([]int32, error) {
	cores, err := BruteForce(g, p)
	if err != nil {
		return nil, err
	}
	var best []int32
	for _, c := range cores {
		if len(c) > len(best) {
			best = c
		}
	}
	return best, nil
}

// maskIsCore checks the full (k,r)-core definition on a subset given as
// both a sorted vertex slice and a bitmask, with similarity answered by
// the precomputed per-vertex masks.
func maskIsCore(g *graph.Graph, p Params, verts []int32, mask uint32, simMask []uint32) bool {
	for _, v := range verts {
		if mask&^simMask[v] != 0 {
			return false
		}
	}
	for _, v := range verts {
		d := 0
		for _, nb := range g.Neighbors(v) {
			if mask&(1<<uint(nb)) != 0 {
				d++
			}
		}
		if d < p.K {
			return false
		}
	}
	return g.IsConnectedSubset(verts)
}

// subsetIsCore checks the full (k,r)-core definition on a sorted vertex
// subset: structure, similarity and connectivity. Used by the
// cross-validation tests on arbitrary result cores.
func subsetIsCore(g *graph.Graph, p Params, verts []int32) bool {
	in := make(map[int32]bool, len(verts))
	for _, v := range verts {
		in[v] = true
	}
	for _, v := range verts {
		d := 0
		for _, nb := range g.Neighbors(v) {
			if in[nb] {
				d++
			}
		}
		if d < p.K {
			return false
		}
	}
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			if !p.Oracle.Similar(verts[i], verts[j]) {
				return false
			}
		}
	}
	return g.IsConnectedSubset(verts)
}
