package core

import (
	"math/bits"
	"math/rand"
	"testing"
)

// bruteKPrimeMax computes the exact largest k' such that a (k,k')-core
// exists on the problem's full vertex set (Definition 6): the maximum
// over subsets U with structural min-degree >= k of the minimum
// similarity degree inside U. Exponential; n <= 16.
func bruteKPrimeMax(p *problem) int {
	n := p.n
	best := -1
	isDissim := func(a, b int32) bool {
		for _, d := range p.dissim[a] {
			if d == b {
				return true
			}
		}
		return false
	}
	for mask := 1; mask < 1<<uint(n); mask++ {
		size := bits.OnesCount(uint(mask))
		okStruct := true
		minSim := size // upper start
		for u := int32(0); u < int32(n) && okStruct; u++ {
			if mask&(1<<uint(u)) == 0 {
				continue
			}
			deg := 0
			for _, nb := range p.adj[u] {
				if mask&(1<<uint(nb)) != 0 {
					deg++
				}
			}
			if deg < p.k {
				okStruct = false
				break
			}
			sim := 0
			for v := int32(0); v < int32(n); v++ {
				if v != u && mask&(1<<uint(v)) != 0 && !isDissim(u, v) {
					sim++
				}
			}
			if sim < minSim {
				minSim = sim
			}
		}
		if okStruct && minSim > best {
			best = minSim
		}
	}
	return best
}

func rootState(prob *problem) *state {
	return newState(prob, &budget{})
}

func TestDoubleKcoreBoundExact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	checked := 0
	for trial := 0; trial < 200 && checked < 80; trial++ {
		inst := randomInstance(rng, 12)
		for _, prob := range prepare(inst.g, inst.p) {
			if prob.n > 14 {
				continue
			}
			checked++
			st := rootState(prob)
			got := st.bound(BoundDoubleKcore)
			want := bruteKPrimeMax(prob) + 1
			if got != want {
				t.Fatalf("trial %d: double-kcore bound = %d, want k'max+1 = %d (n=%d, k=%d, adj=%v, dissim=%v)",
					trial, got, want, prob.n, prob.k, prob.adj, prob.dissim)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no components exercised")
	}
}

func TestBoundsAreSoundUpperBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	kinds := []Bound{BoundNaive, BoundColor, BoundKcore, BoundColorKcore, BoundDoubleKcore}
	for trial := 0; trial < 60; trial++ {
		inst := randomInstance(rng, 12)
		probs := prepare(inst.g, inst.p)
		for _, prob := range probs {
			// The true maximum core within this component.
			best := 0
			res, err := FindMaximum(inst.g, inst.p, MaxOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range res.Cores {
				// Only count cores fully inside this component.
				inComp := map[int32]bool{}
				for _, v := range prob.orig {
					inComp[v] = true
				}
				all := true
				for _, v := range c {
					if !inComp[v] {
						all = false
						break
					}
				}
				if all && len(c) > best {
					best = len(c)
				}
			}
			st := rootState(prob)
			for _, kind := range kinds {
				if b := st.bound(kind); b < best {
					t.Fatalf("trial %d: bound %v = %d < true maximum %d", trial, kind, b, best)
				}
			}
		}
	}
}

func TestBoundDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 80; trial++ {
		inst := randomInstance(rng, 14)
		for _, prob := range prepare(inst.g, inst.p) {
			st := rootState(prob)
			naive := st.bound(BoundNaive)
			col := st.bound(BoundColor)
			kc := st.bound(BoundKcore)
			ck := st.bound(BoundColorKcore)
			dk := st.bound(BoundDoubleKcore)
			if naive != prob.n {
				t.Fatalf("naive bound = %d, want |M|+|C| = %d", naive, prob.n)
			}
			if col > naive || kc > naive {
				t.Fatalf("colour/kcore bounds must not exceed naive: %d %d > %d", col, kc, naive)
			}
			if ck != min(col, kc) {
				t.Fatalf("color+kcore = %d, want min(%d,%d)", ck, col, kc)
			}
			// The (k,k')-core bound adds a structural constraint on top
			// of the J' peel, so it can only be tighter than the plain
			// k-core bound.
			if dk > kc {
				t.Fatalf("double-kcore bound %d exceeds kcore bound %d", dk, kc)
			}
		}
	}
}

func TestBoundsOnEmptyState(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := randomGeoInstance(rng, 10)
	probs := prepare(inst.g, inst.p)
	if len(probs) == 0 {
		t.Skip("instance has no candidate component")
	}
	st := rootState(probs[0])
	// Discard everything: all bounds must be 0 on an empty M∪C.
	for v := int32(0); v < int32(probs[0].n); v++ {
		st.apply(v, statusOut)
	}
	for _, kind := range []Bound{BoundNaive, BoundColor, BoundKcore, BoundColorKcore, BoundDoubleKcore} {
		if b := st.bound(kind); b != 0 {
			t.Fatalf("bound %v on empty state = %d, want 0", kind, b)
		}
	}
}
