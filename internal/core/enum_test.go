package core

import (
	"math/rand"
	"testing"

	"krcore/internal/attr"
	"krcore/internal/graph"
	"krcore/internal/similarity"
)

// figure1Instance builds a small analogue of the paper's Figure 1: two
// dense similar groups G1, G2 sharing structure, a structurally-dense
// but dissimilar group, and a similar but sparse group.
func figure1Instance() testInstance {
	// Vertices 0-4: clique, all similar (G1).
	// Vertices 5-8: clique, all similar (G2), vertex 4 bridges them
	//   structurally but 5-8 are dissimilar to 0-3.
	// Vertices 9-12: clique but mutually dissimilar (G5 analogue).
	// Vertices 13-16: all similar but only a path (G4 analogue).
	n := 17
	b := graph.NewBuilder(n)
	cliqueEdges := func(vs []int32) {
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				b.AddEdge(vs[i], vs[j])
			}
		}
	}
	cliqueEdges([]int32{0, 1, 2, 3, 4})
	cliqueEdges([]int32{5, 6, 7, 8})
	cliqueEdges([]int32{9, 10, 11, 12})
	b.AddEdge(4, 5) // structural bridge
	b.AddEdge(13, 14)
	b.AddEdge(14, 15)
	b.AddEdge(15, 16)
	g := b.Build()

	geo := attr.NewGeo(n)
	for _, v := range []int32{0, 1, 2, 3, 4} {
		geo.SetVertex(v, attr.Point{X: 0, Y: float64(v)})
	}
	for _, v := range []int32{5, 6, 7, 8} {
		geo.SetVertex(v, attr.Point{X: 100, Y: float64(v)})
	}
	for i, v := range []int32{9, 10, 11, 12} {
		geo.SetVertex(v, attr.Point{X: 1000 * float64(i+1), Y: 1000 * float64(i+1)})
	}
	for _, v := range []int32{13, 14, 15, 16} {
		geo.SetVertex(v, attr.Point{X: 500, Y: float64(v)})
	}
	return testInstance{
		g: g,
		p: Params{K: 2, Oracle: similarity.NewOracle(similarity.Euclidean{Store: geo}, 20)},
	}
}

func TestEnumerateFigure1(t *testing.T) {
	inst := figure1Instance()
	res, err := Enumerate(inst.g, inst.p, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("unexpected timeout")
	}
	// Expected maximal (2,r)-cores: {0..4}, {5..8}, {13..16}? The path
	// 13-14-15-16 has max degree 2 but endpoint degree 1 < 2, so it is
	// not a 2-core. The dissimilar clique 9-12 fails similarity.
	want := [][]int32{{0, 1, 2, 3, 4}, {5, 6, 7, 8}}
	if !sameCoreSets(res.Cores, want) {
		t.Fatalf("cores = %v, want %v", res.Cores, want)
	}
}

func TestEnumerateMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	variants := []EnumOptions{
		{}, // AdvEnum defaults
		{Order: OrderDegree},
		{Order: OrderRandom},
		{Order: OrderDelta1},
		{Order: OrderDelta2},
		{Order: OrderLambdaDelta, Lambda: 5},
		{DisableRetention: true},
		{DisableEarlyTermination: true},
		{DisableMaximalCheck: true},
		{DisableRetention: true, DisableEarlyTermination: true, DisableMaximalCheck: true},
		{DisableEarlyTermination: true, DisableMaximalCheck: true},
		{CheckOrder: OrderLambdaDelta},
		{CheckOrder: OrderDelta1ThenDelta2},
	}
	for trial := 0; trial < 160; trial++ {
		inst := randomInstance(rng, 12)
		want, err := BruteForce(inst.g, inst.p)
		if err != nil {
			t.Fatal(err)
		}
		opt := variants[trial%len(variants)]
		res, err := Enumerate(inst.g, inst.p, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !sameCoreSets(res.Cores, want) {
			t.Fatalf("trial %d (k=%d, opts=%+v): got %v, want %v",
				trial, inst.p.K, opt, res.Cores, want)
		}
	}
}

func TestEnumerateAllResultsAreValidCores(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		inst := randomInstance(rng, 18)
		res, err := Enumerate(inst.g, inst.p, EnumOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range res.Cores {
			if !validCore(inst, c) {
				t.Fatalf("trial %d: invalid core %v", trial, c)
			}
		}
		// No result may contain another.
		for i := range res.Cores {
			for j := range res.Cores {
				if i != j && isSubset(res.Cores[i], res.Cores[j]) {
					t.Fatalf("trial %d: core %v contained in %v", trial, res.Cores[i], res.Cores[j])
				}
			}
		}
	}
}

func TestEnumerateParamValidation(t *testing.T) {
	inst := figure1Instance()
	if _, err := Enumerate(inst.g, Params{K: 0, Oracle: inst.p.Oracle}, EnumOptions{}); err == nil {
		t.Fatal("k=0 must be rejected")
	}
	if _, err := Enumerate(inst.g, Params{K: 2}, EnumOptions{}); err == nil {
		t.Fatal("nil oracle must be rejected")
	}
}

func TestEnumerateEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	geo := attr.NewGeo(0)
	res, err := Enumerate(g, Params{K: 2, Oracle: similarity.NewOracle(similarity.Euclidean{Store: geo}, 1)}, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 0 || res.TimedOut {
		t.Fatalf("empty graph result: %+v", res)
	}
}

func TestEnumerateNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// A larger instance so the limit actually triggers.
	inst := randomGeoInstance(rng, 18)
	opt := EnumOptions{Limits: Limits{MaxNodes: 1}}
	res, err := Enumerate(inst.g, inst.p, opt)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Enumerate(inst.g, inst.p, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Nodes > 1 && !res.TimedOut {
		t.Fatalf("expected TimedOut with MaxNodes=1 (full run took %d nodes)", full.Nodes)
	}
}

func TestSummarize(t *testing.T) {
	r := &Result{Cores: [][]int32{{1, 2, 3}, {4, 5, 6, 7, 8}}}
	s := r.Summarize()
	if s.Count != 2 || s.MaxSize != 5 || s.AvgSize != 4 {
		t.Fatalf("stats = %+v", s)
	}
	empty := (&Result{}).Summarize()
	if empty.Count != 0 || empty.MaxSize != 0 || empty.AvgSize != 0 {
		t.Fatalf("empty stats = %+v", empty)
	}
}

func TestStateInvariantsDuringSearch(t *testing.T) {
	// Drive a search manually and verify counter invariants at every
	// node via a wrapped order.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		inst := randomInstance(rng, 12)
		bud := &budget{}
		for _, prob := range prepare(inst.g, inst.p) {
			st := newState(prob, bud)
			if err := st.checkInvariants(); err != nil {
				t.Fatalf("trial %d initial state: %v", trial, err)
			}
			var walk func(depth int)
			walk = func(depth int) {
				if depth > 6 || !st.prune(true) {
					return
				}
				if err := st.checkInvariants(); err != nil {
					t.Fatalf("trial %d after prune: %v", trial, err)
				}
				ch, ok := st.chooseVertex(OrderDegree, 5, true, false)
				if !ok {
					return
				}
				m := st.mark()
				st.expand(ch.v)
				if err := st.checkInvariants(); err != nil {
					t.Fatalf("trial %d after expand: %v", trial, err)
				}
				walk(depth + 1)
				st.rewind(m)
				if err := st.checkInvariants(); err != nil {
					t.Fatalf("trial %d after rewind: %v", trial, err)
				}
				m = st.mark()
				st.discard(ch.v)
				walk(depth + 1)
				st.rewind(m)
				if err := st.checkInvariants(); err != nil {
					t.Fatalf("trial %d after shrink rewind: %v", trial, err)
				}
			}
			walk(0)
		}
	}
}
