package core

// Cross-checks between the indexed preprocessing path (simindex) and
// the serial per-pair oracle path, on the Table 3 dataset presets: the
// acceptance bar for the bulk-similarity engine is bit-identical
// problems and bit-identical search results.

import (
	"math/rand"
	"testing"

	"krcore/internal/dataset"
	"krcore/internal/similarity"
	"krcore/internal/simindex"
)

// presetCase is one (preset, k, r) test configuration. Geo presets use
// a kilometre threshold; keyword presets resolve r from the top-3‰
// calibration, as the paper does for DBLP and Pokec.
type presetCase struct {
	name string
	k    int
	r    float64
}

// presetCases picks moderate thresholds so the searches finish in test
// time while still producing non-trivial candidate components.
func presetCases(t *testing.T) []presetCase {
	t.Helper()
	cases := []presetCase{
		{name: "brightkite", k: 4, r: 25},
		{name: "gowalla", k: 4, r: 100},
	}
	for _, name := range []string{"dblp", "pokec"} {
		d, err := dataset.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, presetCase{name: name, k: 8, r: d.TopPermille(3)})
	}
	return cases
}

// oraclePair returns two fresh oracles over the same dataset and
// threshold: one forced onto the serial reference engine, one left to
// pick up its metric's index on first use.
func oraclePair(d *dataset.Dataset, r float64) (serial, indexed *similarity.Oracle) {
	serial = similarity.NewOracle(d.Metric(), r)
	serial.SetBulk(simindex.NewSerial(serial))
	indexed = similarity.NewOracle(d.Metric(), r)
	return serial, indexed
}

func TestIndexedPrepareMatchesSerialOnPresets(t *testing.T) {
	for _, tc := range presetCases(t) {
		d, err := dataset.Load(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		so, io := oraclePair(d, tc.r)
		ps := prepare(d.Graph, Params{K: tc.k, Oracle: so})
		pi := prepare(d.Graph, Params{K: tc.k, Oracle: io})
		if len(ps) != len(pi) {
			t.Fatalf("%s: %d serial components vs %d indexed", tc.name, len(ps), len(pi))
		}
		for c := range ps {
			a, b := ps[c], pi[c]
			if a.n != b.n || a.pairs != b.pairs || a.maxDeg != b.maxDeg {
				t.Fatalf("%s comp %d: header mismatch (%d,%d,%d) vs (%d,%d,%d)",
					tc.name, c, a.n, a.pairs, a.maxDeg, b.n, b.pairs, b.maxDeg)
			}
			for i := range a.orig {
				if a.orig[i] != b.orig[i] {
					t.Fatalf("%s comp %d: orig differs at %d", tc.name, c, i)
				}
			}
			for u := 0; u < a.n; u++ {
				if !equalCores(a.adj[u], b.adj[u]) || !equalCores(a.dissim[u], b.dissim[u]) {
					t.Fatalf("%s comp %d: adjacency/dissim differ at local %d", tc.name, c, u)
				}
			}
		}
	}
}

func TestIndexedSearchMatchesSerialOnPresets(t *testing.T) {
	// A deterministic node cap keeps the slowest cells bounded; both
	// paths build identical problems, so a capped search truncates at
	// exactly the same tree node on both sides.
	limits := Limits{MaxNodes: 300000}
	for _, tc := range presetCases(t) {
		d, err := dataset.Load(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		so, io := oraclePair(d, tc.r)

		es, err := Enumerate(d.Graph, Params{K: tc.k, Oracle: so}, EnumOptions{Limits: limits})
		if err != nil {
			t.Fatal(err)
		}
		ei, err := Enumerate(d.Graph, Params{K: tc.k, Oracle: io}, EnumOptions{Limits: limits})
		if err != nil {
			t.Fatal(err)
		}
		if es.Nodes != ei.Nodes || es.TimedOut != ei.TimedOut {
			t.Fatalf("%s: enumeration effort differs: %d/%v nodes vs %d/%v",
				tc.name, es.Nodes, es.TimedOut, ei.Nodes, ei.TimedOut)
		}
		if !sameCoreSets(es.Cores, ei.Cores) {
			t.Fatalf("%s: enumeration cores differ (%d vs %d)", tc.name, len(es.Cores), len(ei.Cores))
		}

		ms, err := FindMaximum(d.Graph, Params{K: tc.k, Oracle: so}, MaxOptions{Limits: limits})
		if err != nil {
			t.Fatal(err)
		}
		mi, err := FindMaximum(d.Graph, Params{K: tc.k, Oracle: io}, MaxOptions{Limits: limits})
		if err != nil {
			t.Fatal(err)
		}
		if ms.Nodes != mi.Nodes || ms.TimedOut != mi.TimedOut || !sameCoreSets(ms.Cores, mi.Cores) {
			t.Fatalf("%s: maximum search differs: %v (%d nodes) vs %v (%d nodes)",
				tc.name, ms.Cores, ms.Nodes, mi.Cores, mi.Nodes)
		}
	}
}

func TestIndexedCliquePlusMatchesSerial(t *testing.T) {
	d, err := dataset.Load("brightkite")
	if err != nil {
		t.Fatal(err)
	}
	so, io := oraclePair(d, 25)
	limits := Limits{MaxNodes: 300000}
	cs, err := CliquePlus(d.Graph, Params{K: 4, Oracle: so}, CliqueOptions{Limits: limits})
	if err != nil {
		t.Fatal(err)
	}
	ci, err := CliquePlus(d.Graph, Params{K: 4, Oracle: io}, CliqueOptions{Limits: limits})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Nodes != ci.Nodes || !sameCoreSets(cs.Cores, ci.Cores) {
		t.Fatalf("Clique+ differs: %d cores/%d nodes vs %d cores/%d nodes",
			len(cs.Cores), cs.Nodes, len(ci.Cores), ci.Nodes)
	}
}

// TestIndexedSearchMatchesSerialRandom sweeps the randomized fixtures
// for extra coverage beyond the presets (both attribute kinds, many
// thresholds).
func TestIndexedSearchMatchesSerialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 30; trial++ {
		inst := randomInstance(rng, 40)
		serial := similarity.NewOracle(inst.p.Oracle.Metric(), inst.p.Oracle.Threshold())
		serial.SetBulk(simindex.NewSerial(serial))
		es, err := Enumerate(inst.g, Params{K: inst.p.K, Oracle: serial}, EnumOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ei, err := Enumerate(inst.g, inst.p, EnumOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if es.Nodes != ei.Nodes || !sameCoreSets(es.Cores, ei.Cores) {
			t.Fatalf("trial %d: serial and indexed enumerations differ", trial)
		}
	}
}
