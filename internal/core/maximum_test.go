package core

import (
	"math/rand"
	"testing"

	"krcore/internal/graph"
)

func TestFindMaximumMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	variants := []MaxOptions{
		{}, // AdvMax defaults
		{Bound: BoundNaive},
		{Bound: BoundColor},
		{Bound: BoundKcore},
		{Bound: BoundColorKcore},
		{Order: OrderDegree},
		{Order: OrderRandom},
		{Order: OrderDelta1},
		{Order: OrderDelta2},
		{Order: OrderDelta1ThenDelta2},
		{Branch: BranchExpandFirst},
		{Branch: BranchShrinkFirst},
		{DisableEarlyTermination: true},
		{Bound: BoundNaive, Order: OrderDegree, Branch: BranchExpandFirst},
	}
	for trial := 0; trial < 160; trial++ {
		inst := randomInstance(rng, 12)
		want, err := BruteForceMaximum(inst.g, inst.p)
		if err != nil {
			t.Fatal(err)
		}
		opt := variants[trial%len(variants)]
		res, err := FindMaximum(inst.g, inst.p, opt)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			if len(res.Cores) != 0 {
				t.Fatalf("trial %d: got %v, want no core", trial, res.Cores)
			}
			continue
		}
		if len(res.Cores) != 1 {
			t.Fatalf("trial %d (opts=%+v): got %d cores, want 1 (brute: %v)",
				trial, opt, len(res.Cores), want)
		}
		got := res.Cores[0]
		// The maximum is not necessarily unique; compare sizes and
		// validate the returned set.
		if len(got) != len(want) {
			t.Fatalf("trial %d (k=%d, opts=%+v): |got|=%d (%v), |want|=%d (%v)",
				trial, inst.p.K, opt, len(got), got, len(want), want)
		}
		if !validCore(inst, got) {
			t.Fatalf("trial %d: result %v is not a valid core", trial, got)
		}
	}
}

func TestFindMaximumAgreesWithEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		inst := randomInstance(rng, 16)
		enum, err := Enumerate(inst.g, inst.p, EnumOptions{})
		if err != nil {
			t.Fatal(err)
		}
		max, err := FindMaximum(inst.g, inst.p, MaxOptions{})
		if err != nil {
			t.Fatal(err)
		}
		bestEnum := 0
		for _, c := range enum.Cores {
			if len(c) > bestEnum {
				bestEnum = len(c)
			}
		}
		bestMax := 0
		if len(max.Cores) == 1 {
			bestMax = len(max.Cores[0])
		}
		if bestEnum != bestMax {
			t.Fatalf("trial %d: enumeration max size %d, FindMaximum size %d",
				trial, bestEnum, bestMax)
		}
	}
}

func TestFindMaximumParamValidation(t *testing.T) {
	inst := figure1Instance()
	if _, err := FindMaximum(inst.g, Params{K: -1, Oracle: inst.p.Oracle}, MaxOptions{}); err == nil {
		t.Fatal("negative k must be rejected")
	}
}

func TestFindMaximumFigure1(t *testing.T) {
	inst := figure1Instance()
	res, err := FindMaximum(inst.g, inst.p, MaxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 1 || len(res.Cores[0]) != 5 {
		t.Fatalf("maximum core = %v, want the 5-vertex group", res.Cores)
	}
}

func TestCliquePlusMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 120; trial++ {
		inst := randomInstance(rng, 12)
		want, err := BruteForce(inst.g, inst.p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := CliquePlus(inst.g, inst.p, CliqueOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !sameCoreSets(res.Cores, want) {
			t.Fatalf("trial %d (k=%d): got %v, want %v", trial, inst.p.K, res.Cores, want)
		}
	}
}

func TestCliquePlusNodeLimit(t *testing.T) {
	inst := figure1Instance()
	res, err := CliquePlus(inst.g, inst.p, CliqueOptions{Limits: Limits{MaxNodes: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatal("MaxNodes=1 should abort Clique+")
	}
}

func TestBruteForceRejectsLargeGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inst := randomGeoInstance(rng, 10)
	big := graph.NewBuilder(30).Build()
	if _, err := BruteForce(big, inst.p); err == nil {
		t.Fatal("BruteForce must reject graphs with more than 22 vertices")
	}
}
