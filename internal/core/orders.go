package core

// Search orders (Section 7). The engine must pick (i) which candidate
// vertex to branch on and (ii) which branch to explore first. The Δ1
// measurement is the relative reduction of dissimilar pairs in C, Δ2 the
// relative reduction of edges in M∪C (Equations 3 and 4); both are
// estimated by simulating the candidate pruning restricted to vertices
// within two hops of the chosen vertex, as in Section 7.2.

// branchSim holds the estimated effect of taking one branch for a
// candidate vertex.
type branchSim struct {
	delta1 float64
	delta2 float64
}

// score is λΔ1−Δ2, the suitability measure of Section 7.2.
func (b branchSim) score(lambda float64) float64 {
	return lambda*b.delta1 - b.delta2
}

// choice is the vertex selected by an order, with the preferred branch.
type choice struct {
	v           int32
	expandFirst bool
}

// chooseVertex picks the next branching vertex among the eligible
// candidates (C when retention is off, C \ SF(C) when on) according to
// the order. It returns ok=false when no eligible candidate exists.
func (s *state) chooseVertex(order Order, lambda float64, retention, forMaximum bool) (choice, bool) {
	best := choice{v: -1, expandFirst: true}
	switch order {
	case OrderDegree:
		bestDeg := int32(-1)
		for v := int32(0); v < int32(s.p.n); v++ {
			if !s.eligible(v, retention) {
				continue
			}
			if d := s.degM[v] + s.degC[v]; d > bestDeg {
				bestDeg = d
				best.v = v
			}
		}
	case OrderRandom:
		cnt := 0
		for v := int32(0); v < int32(s.p.n); v++ {
			if !s.eligible(v, retention) {
				continue
			}
			cnt++
			// Reservoir sampling with the state's deterministic rng.
			if s.nextRand()%uint64(cnt) == 0 {
				best.v = v
			}
		}
	default:
		best = s.chooseByDelta(order, lambda, retention, forMaximum)
	}
	return best, best.v >= 0
}

func (s *state) eligible(v int32, retention bool) bool {
	if s.status[v] != statusC {
		return false
	}
	if retention && s.dpC[v] == 0 {
		return false // Theorem 4: never branch on similarity-free vertices
	}
	return true
}

// nextRand advances the xorshift state.
func (s *state) nextRand() uint64 {
	x := s.rngState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rngState = x
	return x
}

// chooseByDelta evaluates Δ1/Δ2 for both branches of every eligible
// candidate and applies the order-specific aggregation:
//
//   - OrderLambdaDelta (maximum search): pick the vertex whose best
//     branch maximises λΔ1−Δ2 and explore that branch first.
//   - OrderDelta1ThenDelta2 (enumeration): pick the vertex with the
//     largest summed Δ1, ties broken by smallest summed Δ2.
//   - OrderDelta1: largest Δ1 (summed, or best-branch for maximum).
//   - OrderDelta2: smallest Δ2.
func (s *state) chooseByDelta(order Order, lambda float64, retention, forMaximum bool) choice {
	if lambda == 0 {
		lambda = 5 // paper default
	}
	best := choice{v: -1, expandFirst: true}
	var bestPrimary, bestSecondary float64
	first := true
	for v := int32(0); v < int32(s.p.n); v++ {
		if !s.eligible(v, retention) {
			continue
		}
		exp := s.simulateBranch(v, true)
		shr := s.simulateBranch(v, false)
		var primary, secondary float64
		expandFirst := true
		switch order {
		case OrderLambdaDelta:
			se, ss := exp.score(lambda), shr.score(lambda)
			if se >= ss {
				primary = se
			} else {
				primary = ss
				expandFirst = false
			}
		case OrderDelta1ThenDelta2:
			if forMaximum {
				if exp.delta1 >= shr.delta1 {
					primary, secondary = exp.delta1, -exp.delta2
				} else {
					primary, secondary = shr.delta1, -shr.delta2
					expandFirst = false
				}
			} else {
				primary = exp.delta1 + shr.delta1
				secondary = -(exp.delta2 + shr.delta2)
			}
		case OrderDelta1:
			if forMaximum {
				if exp.delta1 >= shr.delta1 {
					primary = exp.delta1
				} else {
					primary = shr.delta1
					expandFirst = false
				}
			} else {
				primary = exp.delta1 + shr.delta1
			}
		case OrderDelta2:
			if forMaximum {
				if exp.delta2 <= shr.delta2 {
					primary = -exp.delta2
				} else {
					primary = -shr.delta2
					expandFirst = false
				}
			} else {
				primary = -(exp.delta2 + shr.delta2)
			}
		}
		if first || primary > bestPrimary ||
			(primary == bestPrimary && secondary > bestSecondary) {
			first = false
			bestPrimary, bestSecondary = primary, secondary
			best.v = v
			best.expandFirst = expandFirst
		}
	}
	return best
}

// simulateBranch estimates Δ1 and Δ2 for branching on v without mutating
// the search state. Pruning effects are propagated at most two hops from
// v, as in Section 7.2.
func (s *state) simulateBranch(v int32, expandBranch bool) branchSim {
	s.simEpoch++
	ep := s.simEpoch
	removed := s.simList[:0]
	markRemoved := func(u int32) {
		if s.simMark[u] != ep {
			s.simMark[u] = ep
			removed = append(removed, u)
		}
	}
	tentDeg := func(u int32) int32 {
		if s.simDegEp[u] != ep {
			s.simDegEp[u] = ep
			s.simDeg[u] = s.degM[u] + s.degC[u]
		}
		return s.simDeg[u]
	}

	if expandBranch {
		// v joins M: its dissimilar candidates are discarded.
		for _, d := range s.p.dissim[v] {
			if s.status[d] == statusC {
				markRemoved(d)
			}
		}
	} else {
		// v is discarded.
		markRemoved(v)
	}

	// Structural cascade, limited to two waves beyond the seed set.
	frontier := removed
	for wave := 0; wave < 2 && len(frontier) > 0; wave++ {
		start := len(removed)
		for _, r := range frontier {
			for _, nb := range s.p.adj[r] {
				if s.status[nb] != statusC || s.simMark[nb] == ep {
					continue
				}
				d := tentDeg(nb) - 1
				s.simDeg[nb] = d
				if d < int32(s.p.k) {
					markRemoved(nb)
				}
			}
		}
		frontier = removed[start:]
	}
	s.simList = removed[:0]

	// Count removed dissimilar pairs and removed edges. Each removed
	// vertex r loses dpC[r] pairs and deg(r, M∪C) edges; pairs and
	// edges internal to the removed set are counted twice by these
	// sums. The double counting is deliberately left in: correcting it
	// costs a scan of every removed vertex's dissimilarity list (the
	// dominant term on dense components), biases every candidate the
	// same way, and the measure is already a two-hop heuristic
	// (Section 7.2). In the expand branch v itself keeps its edges —
	// it moves to M, staying inside M∪C — while its dissimilar pairs
	// disappear with their removed partners.
	var pairLoss, edgeLoss int64
	for _, r := range removed {
		pairLoss += int64(s.dpC[r])
		edgeLoss += int64(s.degM[r] + s.degC[r])
	}

	var sim branchSim
	if dp := s.sumDpC / 2; dp > 0 {
		sim.delta1 = float64(pairLoss) / float64(dp)
	}
	if s.edgesMC > 0 {
		sim.delta2 = float64(edgeLoss) / float64(s.edgesMC)
	}
	return sim
}
