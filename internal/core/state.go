package core

import "fmt"

// Vertex statuses of the set-enumeration search. M holds chosen
// vertices, C candidates, E the relevant excluded vertices (discarded
// but similar to every vertex of M, Section 5.2), and Out everything
// else.
const (
	statusOut byte = iota
	statusC
	statusM
	statusE
)

// change records one status transition for the undo trail.
type change struct {
	v        int32
	from, to byte
}

// state is the mutable search state over one problem. All counter
// mutations happen through apply, which records an undo entry; rewind
// restores any earlier trail mark exactly.
type state struct {
	p      *problem
	status []byte

	// Incremental counters, maintained for every vertex regardless of
	// status (Section 5.1's invariants are expressed through them):
	degM []int32 // structural neighbours in M
	degC []int32 // structural neighbours in C
	dpM  []int32 // dissimilar partners in M
	dpC  []int32 // dissimilar partners in C
	dpE  []int32 // dissimilar partners in E

	cntM, cntC, cntE int
	sumDpC           int64 // Σ_{u∈C} dpC[u] = 2 × DP(C)
	edgesMC          int64 // |E(M∪C)|

	trail []change

	bud *budget

	// Scratch space reused across nodes.
	queue   []int32
	visited []bool
	scratch []int32
	// Two-hop Δ simulation scratch (orders.go).
	simEpoch int32
	simMark  []int32
	simDeg   []int32
	simDegEp []int32
	simList  []int32
	rngState uint64
}

func newState(p *problem, bud *budget) *state {
	n := p.n
	s := &state{
		p:        p,
		status:   make([]byte, n),
		degM:     make([]int32, n),
		degC:     make([]int32, n),
		dpM:      make([]int32, n),
		dpC:      make([]int32, n),
		dpE:      make([]int32, n),
		bud:      bud,
		visited:  make([]bool, n),
		simMark:  make([]int32, n),
		simDeg:   make([]int32, n),
		simDegEp: make([]int32, n),
		rngState: 0x9E3779B97F4A7C15,
	}
	for v := 0; v < n; v++ {
		s.apply(int32(v), statusC)
	}
	s.trail = s.trail[:0] // initial population is not undoable
	return s
}

// mark returns the current trail position.
func (s *state) mark() int { return len(s.trail) }

// rewind undoes every transition after trail mark m.
func (s *state) rewind(m int) {
	for len(s.trail) > m {
		c := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		s.transition(c.v, c.from)
	}
}

// apply moves v to the given status, recording the undo entry.
func (s *state) apply(v int32, to byte) {
	from := s.status[v]
	if from == to {
		return
	}
	s.trail = append(s.trail, change{v: v, from: from, to: to})
	s.transition(v, to)
}

// transition performs the status change and counter updates without
// touching the trail.
func (s *state) transition(v int32, to byte) {
	s.detach(v)
	s.status[v] = to
	s.attach(v)
}

func (s *state) detach(v int32) {
	switch s.status[v] {
	case statusM:
		s.cntM--
		s.edgesMC -= int64(s.degM[v] + s.degC[v])
		for _, nb := range s.p.adj[v] {
			s.degM[nb]--
		}
		for _, d := range s.p.dissim[v] {
			s.dpM[d]--
		}
	case statusC:
		s.cntC--
		s.edgesMC -= int64(s.degM[v] + s.degC[v])
		s.sumDpC -= int64(s.dpC[v])
		for _, nb := range s.p.adj[v] {
			s.degC[nb]--
		}
		for _, d := range s.p.dissim[v] {
			s.dpC[d]--
			if s.status[d] == statusC {
				s.sumDpC--
			}
		}
	case statusE:
		s.cntE--
		for _, d := range s.p.dissim[v] {
			s.dpE[d]--
		}
	}
}

func (s *state) attach(v int32) {
	switch s.status[v] {
	case statusM:
		s.cntM++
		s.edgesMC += int64(s.degM[v] + s.degC[v])
		for _, nb := range s.p.adj[v] {
			s.degM[nb]++
		}
		for _, d := range s.p.dissim[v] {
			s.dpM[d]++
		}
	case statusC:
		s.cntC++
		s.edgesMC += int64(s.degM[v] + s.degC[v])
		s.sumDpC += int64(s.dpC[v])
		for _, nb := range s.p.adj[v] {
			s.degC[nb]++
		}
		for _, d := range s.p.dissim[v] {
			s.dpC[d]++
			if s.status[d] == statusC {
				s.sumDpC++
			}
		}
	case statusE:
		s.cntE++
		for _, d := range s.p.dissim[v] {
			s.dpE[d]++
		}
	}
}

// discard removes a candidate: to E when it is similar to all of M
// (relevant excluded vertex), otherwise Out.
func (s *state) discard(v int32) {
	if s.dpM[v] == 0 {
		s.apply(v, statusE)
	} else {
		s.apply(v, statusOut)
	}
}

// expand moves candidate u into M and enforces the similarity pruning
// rule (Theorem 3): candidates and excluded vertices dissimilar to u
// leave the search. Structural consequences are handled by prune.
func (s *state) expand(u int32) {
	s.apply(u, statusM)
	// Collect first: apply mutates dpM which the discard destination
	// reads, but iterating p.dissim[u] is safe (static problem data).
	for _, d := range s.p.dissim[u] {
		switch s.status[d] {
		case statusC:
			// dpM[d] > 0 now, so discard sends it Out.
			s.apply(d, statusOut)
		case statusE:
			s.apply(d, statusOut)
		}
	}
}

// prune restores the similarity and degree invariants (Equations 1 and
// 2) plus the trivial connectivity rule: it repeatedly
//
//  1. discards candidates with dpM > 0 (Theorem 3),
//  2. peels candidates with deg(v, M∪C) < k (Theorem 2),
//  3. when retention is on, promotes similarity-free candidates already
//     having k chosen neighbours straight into M (Remark 1), and
//  4. discards candidates disconnected from M in M∪C.
//
// It returns false when the branch is dead: a vertex of M lost the
// structure constraint or M became disconnected inside M∪C.
func (s *state) prune(retention bool) bool {
	for {
		changed := false
		// (1) + (2): similarity kick and structural peeling in one pass
		// using a worklist seeded with all current candidates.
		q := s.queue[:0]
		for v := int32(0); v < int32(s.p.n); v++ {
			if s.status[v] == statusC && (s.dpM[v] > 0 || s.degM[v]+s.degC[v] < int32(s.p.k)) {
				q = append(q, v)
			}
			if s.status[v] == statusM && s.degM[v]+s.degC[v] < int32(s.p.k) {
				s.queue = q
				return false
			}
			if s.status[v] == statusE && s.dpM[v] > 0 {
				s.apply(v, statusOut)
			}
		}
		for len(q) > 0 {
			v := q[len(q)-1]
			q = q[:len(q)-1]
			if s.status[v] != statusC {
				continue
			}
			if s.dpM[v] == 0 && s.degM[v]+s.degC[v] >= int32(s.p.k) {
				continue // repaired by an earlier pop? cannot happen, but safe
			}
			changed = true
			s.discard(v)
			for _, nb := range s.p.adj[v] {
				switch s.status[nb] {
				case statusC:
					if s.degM[nb]+s.degC[nb] < int32(s.p.k) {
						q = append(q, nb)
					}
				case statusM:
					if s.degM[nb]+s.degC[nb] < int32(s.p.k) {
						s.queue = q
						return false
					}
				}
			}
		}
		s.queue = q

		// (3) Remark 1: similarity-free candidates adjacent to >= k
		// chosen vertices can move straight to M.
		if retention {
			for v := int32(0); v < int32(s.p.n); v++ {
				if s.status[v] == statusC && s.dpC[v] == 0 && s.dpM[v] == 0 &&
					s.degM[v] >= int32(s.p.k) {
					s.expand(v)
					changed = true
				}
			}
		}

		// (4) Connectivity: candidates unreachable from M inside M∪C
		// cannot join a connected core containing M.
		if s.cntM > 0 {
			if !s.pruneDisconnected() {
				return false
			}
			// pruneDisconnected only discards C vertices; their removal
			// may break degrees, handled by the next sweep.
			for v := int32(0); v < int32(s.p.n); v++ {
				if s.status[v] == statusC && s.degM[v]+s.degC[v] < int32(s.p.k) {
					changed = true
				}
				if s.status[v] == statusM && s.degM[v]+s.degC[v] < int32(s.p.k) {
					return false
				}
			}
		}
		if !changed {
			return true
		}
	}
}

// pruneDisconnected discards candidates outside the M-component of M∪C.
// Returns false when the vertices of M span multiple components.
func (s *state) pruneDisconnected() bool {
	var start int32 = -1
	for v := int32(0); v < int32(s.p.n); v++ {
		s.visited[v] = false
		if start < 0 && s.status[v] == statusM {
			start = v
		}
	}
	if start < 0 {
		return true
	}
	q := s.queue[:0]
	q = append(q, start)
	s.visited[start] = true
	seenM := 1
	for len(q) > 0 {
		u := q[len(q)-1]
		q = q[:len(q)-1]
		for _, nb := range s.p.adj[u] {
			st := s.status[nb]
			if (st == statusM || st == statusC) && !s.visited[nb] {
				s.visited[nb] = true
				if st == statusM {
					seenM++
				}
				q = append(q, nb)
			}
		}
	}
	s.queue = q[:0]
	if seenM < s.cntM {
		return false
	}
	discarded := false
	for v := int32(0); v < int32(s.p.n); v++ {
		if s.status[v] == statusC && !s.visited[v] {
			s.discard(v)
			discarded = true
		}
	}
	_ = discarded
	return true
}

// members collects the local ids currently holding any of the given
// statuses, in ascending order, into dst.
func (s *state) members(dst []int32, statuses ...byte) []int32 {
	dst = dst[:0]
	for v := int32(0); v < int32(s.p.n); v++ {
		st := s.status[v]
		for _, want := range statuses {
			if st == want {
				dst = append(dst, v)
				break
			}
		}
	}
	return dst
}

// mcComponents returns the connected components of M∪C as local-id
// slices.
func (s *state) mcComponents() [][]int32 {
	var comps [][]int32
	for v := range s.visited {
		s.visited[v] = false
	}
	for v := int32(0); v < int32(s.p.n); v++ {
		st := s.status[v]
		if (st != statusM && st != statusC) || s.visited[v] {
			continue
		}
		comp := []int32{v}
		s.visited[v] = true
		q := s.queue[:0]
		q = append(q, v)
		for len(q) > 0 {
			u := q[len(q)-1]
			q = q[:len(q)-1]
			for _, nb := range s.p.adj[u] {
				nst := s.status[nb]
				if (nst == statusM || nst == statusC) && !s.visited[nb] {
					s.visited[nb] = true
					comp = append(comp, nb)
					q = append(q, nb)
				}
			}
		}
		s.queue = q[:0]
		comps = append(comps, comp)
	}
	return comps
}

// checkInvariants verifies the similarity and degree invariants
// (Equations 1 and 2) plus counter consistency; used by tests only.
func (s *state) checkInvariants() error {
	cntM, cntC, cntE := 0, 0, 0
	var sum int64
	var edges int64
	for v := int32(0); v < int32(s.p.n); v++ {
		var dm, dc, pm, pc, pe int32
		for _, nb := range s.p.adj[v] {
			switch s.status[nb] {
			case statusM:
				dm++
			case statusC:
				dc++
			}
		}
		for _, d := range s.p.dissim[v] {
			switch s.status[d] {
			case statusM:
				pm++
			case statusC:
				pc++
			case statusE:
				pe++
			}
		}
		if dm != s.degM[v] || dc != s.degC[v] || pm != s.dpM[v] || pc != s.dpC[v] || pe != s.dpE[v] {
			return fmt.Errorf("counters of v=%d: got degM=%d degC=%d dpM=%d dpC=%d dpE=%d, want %d %d %d %d %d",
				v, s.degM[v], s.degC[v], s.dpM[v], s.dpC[v], s.dpE[v], dm, dc, pm, pc, pe)
		}
		switch s.status[v] {
		case statusM:
			cntM++
			if pm != 0 || pc != 0 {
				return fmt.Errorf("similarity invariant violated at M vertex %d", v)
			}
			edges += int64(dm + dc)
		case statusC:
			cntC++
			sum += int64(pc)
			edges += int64(dm + dc)
		case statusE:
			cntE++
			if pm != 0 {
				return fmt.Errorf("E vertex %d dissimilar to M", v)
			}
		}
	}
	if cntM != s.cntM || cntC != s.cntC || cntE != s.cntE {
		return fmt.Errorf("set sizes: got %d/%d/%d, want %d/%d/%d", s.cntM, s.cntC, s.cntE, cntM, cntC, cntE)
	}
	if sum != s.sumDpC {
		return fmt.Errorf("sumDpC: got %d, want %d", s.sumDpC, sum)
	}
	if edges != 2*s.edgesMC {
		return fmt.Errorf("edgesMC: got %d, want %d", s.edgesMC, edges/2)
	}
	return nil
}
