package core

import (
	"math/rand"
	"testing"
)

// TestEnumerateContainingMatchesFilter: the anchored enumeration must
// equal the v-containing subset of the full enumeration.
func TestEnumerateContainingMatchesFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 80; trial++ {
		inst := randomInstance(rng, 14)
		full, err := Enumerate(inst.g, inst.p, EnumOptions{})
		if err != nil {
			t.Fatal(err)
		}
		v := int32(rng.Intn(inst.g.N()))
		want := [][]int32{}
		for _, c := range full.Cores {
			if isSubset([]int32{v}, c) {
				want = append(want, c)
			}
		}
		got, err := EnumerateContaining(inst.g, inst.p, v, EnumOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !sameCoreSets(got.Cores, want) {
			t.Fatalf("trial %d (v=%d): got %v, want %v", trial, v, got.Cores, want)
		}
	}
}

func TestEnumerateContainingValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inst := randomGeoInstance(rng, 8)
	if _, err := EnumerateContaining(inst.g, inst.p, -1, EnumOptions{}); err == nil {
		t.Fatal("negative query vertex must be rejected")
	}
	if _, err := EnumerateContaining(inst.g, inst.p, int32(inst.g.N()), EnumOptions{}); err == nil {
		t.Fatal("out-of-range query vertex must be rejected")
	}
}

// TestMinSizeMatchesFilter: size-constrained enumeration must equal the
// size-filtered full enumeration, for both maximal-check modes.
func TestMinSizeMatchesFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 80; trial++ {
		inst := randomInstance(rng, 14)
		full, err := Enumerate(inst.g, inst.p, EnumOptions{})
		if err != nil {
			t.Fatal(err)
		}
		minSize := inst.p.K + 1 + rng.Intn(4)
		want := [][]int32{}
		for _, c := range full.Cores {
			if len(c) >= minSize {
				want = append(want, c)
			}
		}
		for _, opt := range []EnumOptions{
			{MinSize: minSize},
			{MinSize: minSize, DisableMaximalCheck: true},
		} {
			got, err := Enumerate(inst.g, inst.p, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !sameCoreSets(got.Cores, want) {
				t.Fatalf("trial %d (minSize=%d, opt=%+v): got %v, want %v",
					trial, minSize, opt, got.Cores, want)
			}
		}
	}
}

// TestParallelEnumerationMatchesSerial: a parallel run must produce the
// same canonical core set as the serial run.
func TestParallelEnumerationMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 40; trial++ {
		inst := randomInstance(rng, 18)
		serial, err := Enumerate(inst.g, inst.p, EnumOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4} {
			par, err := Enumerate(inst.g, inst.p, EnumOptions{Parallelism: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !sameCoreSets(par.Cores, serial.Cores) {
				t.Fatalf("trial %d (workers=%d): parallel %v != serial %v",
					trial, workers, par.Cores, serial.Cores)
			}
			if par.Nodes != serial.Nodes {
				// Node totals must match: components are independent.
				t.Fatalf("trial %d: parallel nodes %d != serial nodes %d",
					trial, par.Nodes, serial.Nodes)
			}
		}
	}
}

func TestMinSizeAboveMaximumYieldsNothing(t *testing.T) {
	inst := figure1Instance()
	res, err := Enumerate(inst.g, inst.p, EnumOptions{MinSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 0 {
		t.Fatalf("MinSize=100 should prune everything, got %v", res.Cores)
	}
	// MinSize equal to the largest core keeps exactly it.
	res5, err := Enumerate(inst.g, inst.p, EnumOptions{MinSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res5.Cores) != 1 || len(res5.Cores[0]) != 5 {
		t.Fatalf("MinSize=5 should keep only the 5-vertex core, got %v", res5.Cores)
	}
}

func TestAnchoredFigure1(t *testing.T) {
	inst := figure1Instance()
	// Vertex 4 belongs only to the first group's core.
	res, err := EnumerateContaining(inst.g, inst.p, 4, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 1 || !isSubset([]int32{4}, res.Cores[0]) {
		t.Fatalf("anchored cores = %v", res.Cores)
	}
	// Vertex 16 (the path) is in no core.
	res16, err := EnumerateContaining(inst.g, inst.p, 16, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res16.Cores) != 0 {
		t.Fatalf("vertex 16 should be coreless, got %v", res16.Cores)
	}
}
