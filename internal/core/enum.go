package core

import (
	"fmt"
	"sync"
	"time"

	"krcore/internal/graph"
)

// containsLocal reports whether the sorted-or-not local id slice holds v.
func containsLocal(s []int32, v int32) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Enumerate returns the maximal (k,r)-cores of g. With default options
// it is the AdvEnum algorithm (Algorithm 3 + Theorems 2-6 + the
// Δ1-then-Δ2 order); the Disable* options reproduce BasicEnum, BE+CR and
// BE+CR+ET from the evaluation (Table 2, Figure 9).
func Enumerate(g *graph.Graph, p Params, opt EnumOptions) (*Result, error) {
	start := time.Now()
	pr, err := Prepare(g, p)
	if err != nil {
		return nil, err
	}
	res, err := pr.Enumerate(opt)
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start) // include preparation time
	return res, nil
}

// Enumerate runs the maximal (k,r)-core enumeration over the prepared
// candidate components. Safe for concurrent use: the prepared state is
// read-only and every call owns its search state and budget.
func (pr *Prepared) Enumerate(opt EnumOptions) (*Result, error) {
	if opt.anchorPlus1 > 0 && int(opt.anchorPlus1-1) >= pr.n {
		return nil, fmt.Errorf("core: anchor vertex %d out of range [0,%d)", opt.anchorPlus1-1, pr.n)
	}
	if opt.Order == OrderDefault {
		opt.Order = OrderDelta1ThenDelta2 // Section 7.3
	}
	if opt.CheckOrder == OrderDefault {
		opt.CheckOrder = OrderDegree // Section 7.4
	}
	start := time.Now()
	probs := pr.probs
	if opt.anchorPlus1 > 0 {
		probs = filterAnchorComponent(probs, opt.anchorPlus1-1)
	}
	all, nodes, timedOut := runEnumeration(probs, opt)
	if opt.DisableMaximalCheck {
		all = filterMaximal(all)
	} else {
		all = dedupCores(canonicalize(all))
	}
	return &Result{
		Cores:    all,
		Nodes:    nodes,
		TimedOut: timedOut,
		Elapsed:  time.Since(start),
	}, nil
}

// EnumerateContaining runs the anchored enumeration (see the package
// function of the same name) over the prepared components.
func (pr *Prepared) EnumerateContaining(v int32, opt EnumOptions) (*Result, error) {
	if v < 0 || int(v) >= pr.n {
		return nil, fmt.Errorf("core: query vertex %d out of range [0,%d)", v, pr.n)
	}
	opt.anchorPlus1 = v + 1
	return pr.Enumerate(opt)
}

// EnumerateContaining returns the maximal (k,r)-cores that contain the
// query vertex v — the community-search flavour of the problem. Any
// maximal core containing v is also maximal among all cores, so the
// result equals the v-containing subset of Enumerate's output, computed
// by searching only v's candidate component with v pre-committed to M.
func EnumerateContaining(g *graph.Graph, p Params, v int32, opt EnumOptions) (*Result, error) {
	if v < 0 || int(v) >= g.N() {
		return nil, fmt.Errorf("core: query vertex %d out of range [0,%d)", v, g.N())
	}
	opt.anchorPlus1 = v + 1
	return Enumerate(g, p, opt)
}

// filterAnchorComponent keeps only the component containing the anchor.
func filterAnchorComponent(probs []*problem, anchor int32) []*problem {
	for _, prob := range probs {
		for _, v := range prob.orig {
			if v == anchor {
				return []*problem{prob}
			}
		}
	}
	return nil
}

// runEnumeration searches every candidate component, serially or on a
// worker pool, and returns the collected cores (global ids). All
// workers share one budget, so the limits are global: MaxNodes caps the
// total node count and the first exhausted worker stops the rest.
func runEnumeration(probs []*problem, opt EnumOptions) (all [][]int32, nodes int64, timedOut bool) {
	bud := newBudget(opt.Limits)
	if !bud.precheck() {
		return nil, 0, true
	}
	var mu sync.Mutex
	emit := func(c []int32) {
		mu.Lock()
		all = append(all, c)
		mu.Unlock()
	}
	runPool(len(probs), opt.Parallelism, bud, func(i int) {
		searchComponent(probs[i], opt, bud, emit)
	})
	return all, bud.count(), bud.exhausted()
}

// searchComponent runs one component's search, honouring the anchor and
// emitting cores as global-id slices.
func searchComponent(prob *problem, opt EnumOptions, bud *budget, emit func([]int32)) {
	e := &enumSearch{st: newState(prob, bud), opt: opt}
	if opt.anchorPlus1 > 0 {
		anchor := opt.anchorPlus1 - 1
		local := int32(-1)
		for i, v := range prob.orig {
			if v == anchor {
				local = int32(i)
				break
			}
		}
		if local < 0 {
			return
		}
		e.st.expand(local)
		e.anchor = local
	} else {
		e.anchor = -1
	}
	e.run(func(localCore []int32) {
		emit(prob.toGlobal(localCore))
	})
}

// enumSearch carries one component's enumeration.
type enumSearch struct {
	st  *state
	opt EnumOptions
	// emit receives each discovered core. Every value stored here is an
	// in-memory collector (runEnumeration's mutex-guarded append): the
	// search runs under the serving engine's read lock, so emit must
	// never perform I/O.
	//
	// krlint:nonblocking
	emit   func([]int32)
	anchor int32 // pre-committed query vertex, -1 when unanchored
}

func (e *enumSearch) run(emit func([]int32)) {
	e.emit = emit
	e.node()
}

// node is one search-tree node of Algorithm 3 (or of the basic
// Algorithm 1 enumeration when retention is disabled). The caller is
// responsible for rewinding the state.
func (e *enumSearch) node() {
	s := e.st
	if !s.bud.step() {
		return
	}
	retention := !e.opt.DisableRetention
	if !s.prune(retention) {
		return
	}
	if s.cntM+s.cntC == 0 {
		return
	}
	if !e.opt.DisableEarlyTermination && s.earlyTerminate() {
		return
	}
	// Size-constrained enumeration: no core larger than the
	// (k,k')-core bound can emerge from this subtree (Theorem 7).
	if e.opt.MinSize > 0 && s.bound(BoundDoubleKcore) < e.opt.MinSize {
		return
	}

	// Leaf: C = SF(C), i.e. no dissimilar pair is left in C, so M∪C
	// satisfies both constraints (Theorem 4). Both the basic and the
	// advanced configurations stop here — without this rule the basic
	// enumeration would visit every single (k,r)-core as its own leaf,
	// which is hopeless on any realistic input. What candidate
	// retention adds on top (and what DisableRetention removes) is the
	// rule to never *branch* on a similarity-free candidate plus the
	// Remark 1 promotion.
	if s.sumDpC == 0 {
		e.reportLeaf()
		return
	}

	ch, ok := s.chooseVertex(e.opt.Order, e.opt.Lambda, retention, false)
	if !ok {
		// Retention leaves no eligible candidate only when sumDpC == 0,
		// which was handled above; without retention C is non-empty
		// here. Defensive: treat as a leaf.
		e.reportLeaf()
		return
	}

	// Expand branch.
	m := s.mark()
	s.expand(ch.v)
	e.node()
	s.rewind(m)
	if s.bud.exhausted() {
		return
	}
	// Shrink branch: the candidate joins the relevant excluded set
	// (it is similar to all of M, or it would have been pruned).
	m = s.mark()
	s.discard(ch.v)
	e.node()
	s.rewind(m)
}

// reportLeaf extracts the (k,r)-cores at a leaf. With M non-empty, M∪C
// is a single connected core (connectivity pruning guarantees it). At
// the unique all-shrink leaf (M empty) each connected component of C is
// a core on its own. Each core is checked for maximality against the
// relevant excluded set E (Theorem 6) unless disabled.
func (e *enumSearch) reportLeaf() {
	s := e.st
	var candidates [][]int32
	if s.cntM > 0 {
		candidates = [][]int32{s.members(nil, statusM, statusC)}
	} else {
		candidates = s.mcComponents()
	}
	for _, r := range candidates {
		if len(r) < s.p.k+1 || len(r) < e.opt.MinSize {
			continue
		}
		if e.anchor >= 0 && !containsLocal(r, e.anchor) {
			continue
		}
		if !e.opt.DisableMaximalCheck {
			if !s.checkMaximal(r, e.opt.CheckOrder, e.opt.Lambda) {
				continue
			}
		}
		e.emit(r)
		if s.bud.exhausted() {
			return
		}
	}
}

// earlyTerminate implements Theorem 5: the subtree cannot contain any
// maximal (k,r)-core when some excluded vertex (or excluded set) can
// extend every core derivable from (M, C).
func (s *state) earlyTerminate() bool {
	if s.cntE == 0 {
		return false
	}
	// Condition (i): a vertex u ∈ SF_C(E) with deg(u,M) >= k extends any
	// derived core (it is similar to all of M∪C and structurally
	// supported by M alone).
	for v := int32(0); v < int32(s.p.n); v++ {
		if s.status[v] == statusE && s.dpC[v] == 0 && s.degM[v] >= int32(s.p.k) {
			return true
		}
	}
	// Condition (ii): a set U ⊆ SF_{C∪E}(E) where every u ∈ U has
	// deg(u, M∪U) >= k. Computed as the k-core-style fixpoint of the
	// eligible excluded vertices supported by M, restricted to vertices
	// reachable from M (the extension must keep R∪U connected).
	w := s.scratch[:0]
	for v := int32(0); v < int32(s.p.n); v++ {
		if s.status[v] == statusE && s.dpC[v] == 0 && s.dpE[v] == 0 {
			w = append(w, v)
		}
	}
	if len(w) == 0 {
		s.scratch = w[:0]
		return false
	}
	inW := make(map[int32]bool, len(w))
	degW := make(map[int32]int32, len(w))
	for _, v := range w {
		inW[v] = true
	}
	for _, v := range w {
		d := s.degM[v]
		for _, nb := range s.p.adj[v] {
			if inW[nb] {
				d++
			}
		}
		degW[v] = d
	}
	queue := s.queue[:0]
	for _, v := range w {
		if degW[v] < int32(s.p.k) {
			queue = append(queue, v)
			inW[v] = false
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, nb := range s.p.adj[v] {
			if !inW[nb] {
				continue
			}
			degW[nb]--
			if degW[nb] < int32(s.p.k) {
				inW[nb] = false
				queue = append(queue, nb)
			}
		}
	}
	s.queue = queue[:0]
	s.scratch = w[:0]
	survivors := false
	for _, v := range w {
		if inW[v] {
			survivors = true
			break
		}
	}
	if !survivors {
		return false
	}
	// Keep only survivors attached to M: BFS from M over M ∪ survivors.
	for v := range s.visited {
		s.visited[v] = false
	}
	q := s.queue[:0]
	for v := int32(0); v < int32(s.p.n); v++ {
		if s.status[v] == statusM {
			s.visited[v] = true
			q = append(q, v)
		}
	}
	reached := false
	for len(q) > 0 {
		u := q[len(q)-1]
		q = q[:len(q)-1]
		for _, nb := range s.p.adj[u] {
			if s.visited[nb] {
				continue
			}
			if inW[nb] {
				s.visited[nb] = true
				reached = true
				q = append(q, nb)
			} else if s.status[nb] == statusM {
				s.visited[nb] = true
				q = append(q, nb)
			}
		}
	}
	s.queue = q[:0]
	if !reached {
		return false
	}
	// Unreachable survivors must be dropped, which may invalidate the
	// degree support of reachable ones; re-run the fixpoint on the
	// reachable survivor set.
	changed := false
	for _, v := range w {
		if inW[v] && !s.visited[v] {
			inW[v] = false
			changed = true
		}
	}
	if changed {
		for _, v := range w {
			if !inW[v] {
				continue
			}
			d := s.degM[v]
			for _, nb := range s.p.adj[v] {
				if inW[nb] {
					d++
				}
			}
			if d < int32(s.p.k) {
				// Conservative: give up on condition (ii) instead of
				// iterating again; correctness is unaffected (we only
				// skip an optional pruning opportunity).
				return false
			}
		}
	}
	return true
}
