package core

// Micro-benchmarks for the engine's building blocks: problem
// preparation, the three size bounds (the ablation behind Figure 10),
// state transitions with trail rewind, and full searches on the hard
// band of the synthetic Gowalla stand-in. Figure-level benchmarks live
// in the repository root's bench_test.go.

import (
	"math/rand"
	"testing"

	"krcore/internal/attr"
	"krcore/internal/graph"
	"krcore/internal/similarity"
	"krcore/internal/simindex"
)

// benchInstance builds a mid-sized tangled component: three overlapping
// geo clusters whose boundaries straddle the threshold.
func benchInstance() testInstance {
	rng := rand.New(rand.NewSource(424242))
	n := 600
	b := graph.NewBuilder(n)
	geo := attr.NewGeo(n)
	for c := 0; c < 12; c++ {
		base := c * 50
		cx := float64(c) * 6
		members := make([]int32, 0, 50)
		for i := 0; i < 50; i++ {
			v := int32(base + i)
			members = append(members, v)
			geo.SetVertex(v, attr.Point{
				X: cx + rng.NormFloat64()*3,
				Y: rng.NormFloat64() * 3,
			})
		}
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if rng.Float64() < 0.25 {
					b.AddEdge(members[i], members[j])
				}
			}
		}
		if c > 0 {
			for i := 0; i < 60; i++ {
				b.AddEdge(int32(base-50+rng.Intn(50)), int32(base+rng.Intn(50)))
			}
		}
	}
	return testInstance{
		g: b.Build(),
		p: Params{K: 5, Oracle: similarity.NewOracle(similarity.Euclidean{Store: geo}, 10)},
	}
}

func BenchmarkPrepare(b *testing.B) {
	inst := benchInstance()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if probs := prepare(inst.g, inst.p); len(probs) == 0 {
			b.Fatal("expected candidate components")
		}
	}
}

// BenchmarkPrepareSerial pins the oracle to the serial per-pair
// reference engine, measuring the preprocessing the similarity indexes
// replace (compare with BenchmarkPrepare).
func BenchmarkPrepareSerial(b *testing.B) {
	inst := benchInstance()
	inst.p.Oracle.SetBulk(simindex.NewSerial(inst.p.Oracle))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if probs := prepare(inst.g, inst.p); len(probs) == 0 {
			b.Fatal("expected candidate components")
		}
	}
}

func benchRootState(b *testing.B) *state {
	b.Helper()
	inst := benchInstance()
	probs := prepare(inst.g, inst.p)
	if len(probs) == 0 {
		b.Fatal("no components")
	}
	biggest := probs[0]
	for _, p := range probs {
		if p.n > biggest.n {
			biggest = p
		}
	}
	return newState(biggest, &budget{})
}

func BenchmarkBoundNaive(b *testing.B) {
	st := benchRootState(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.bound(BoundNaive)
	}
}

func BenchmarkBoundColor(b *testing.B) {
	st := benchRootState(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.bound(BoundColor)
	}
}

func BenchmarkBoundKcoreSim(b *testing.B) {
	st := benchRootState(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.bound(BoundKcore)
	}
}

func BenchmarkBoundDoubleKcore(b *testing.B) {
	st := benchRootState(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.bound(BoundDoubleKcore)
	}
}

func BenchmarkStateExpandRewind(b *testing.B) {
	st := benchRootState(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := st.mark()
		st.expand(int32(i % st.p.n))
		st.prune(true)
		st.rewind(m)
	}
}

func BenchmarkChooseVertexDelta(b *testing.B) {
	st := benchRootState(b)
	st.prune(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.chooseVertex(OrderDelta1ThenDelta2, 5, true, false)
	}
}

func BenchmarkEnumerateHardBand(b *testing.B) {
	inst := benchInstance()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Enumerate(inst.g, inst.p, EnumOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if res.TimedOut {
			b.Fatal("unexpected timeout")
		}
	}
}

func BenchmarkFindMaximumHardBand(b *testing.B) {
	inst := benchInstance()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FindMaximum(inst.g, inst.p, MaxOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCliquePlusHardBand(b *testing.B) {
	inst := benchInstance()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CliquePlus(inst.g, inst.p, CliqueOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBruteForceSmall(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	inst := randomGeoInstance(rng, 14)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BruteForce(inst.g, inst.p); err != nil {
			b.Fatal(err)
		}
	}
}
