package core

import (
	"fmt"
	"sort"

	"krcore/internal/binenc"
	"krcore/internal/graph"
	"krcore/internal/kcore"
	"krcore/internal/simgraph"
	"krcore/internal/similarity"
)

// K returns the engagement threshold the problem was prepared for.
func (pr *Prepared) K() int { return pr.p.K }

// AppendPrepared serialises the candidate components of one (k,r)
// problem: K, the source-graph vertex count, the maintained per-vertex
// core numbers (format v2), then per component the structural
// adjacency, the dissimilarity lists and the local-to-global vertex
// mapping. Derived state (maxDeg, the byDeg order, pair counts, the
// component-id map) is recomputed on decode, keeping the encoding
// canonical.
func AppendPrepared(b *binenc.Buffer, pr *Prepared) {
	appendPrepared(b, pr, true)
}

// AppendPreparedV1 writes the format-v1 payload (no core numbers);
// only the snapshot backward-compatibility tests use it.
func AppendPreparedV1(b *binenc.Buffer, pr *Prepared) {
	appendPrepared(b, pr, false)
}

func appendPrepared(b *binenc.Buffer, pr *Prepared, withCore bool) {
	b.U32(uint32(pr.p.K))
	b.U64(uint64(pr.n))
	if withCore {
		b.I32s(pr.coreNums)
	}
	b.U64(uint64(len(pr.probs)))
	for _, p := range pr.probs {
		graph.AppendAdjacency(b, p.adj)
		simgraph.AppendDissim(b, &simgraph.Dissim{Lists: p.dissim, Pairs: p.pairs})
		b.I32s(p.orig)
	}
}

// DecodePrepared reconstructs a Prepared written by AppendPrepared.
// The oracle supplies the similarity half of its Params (the oracle is
// rebuilt by the snapshot layer, it is not part of this payload);
// wantN anchors the source-graph vertex count; filtered is the
// threshold's dissimilar-edge-filtered graph the problem was prepared
// on. withCore selects the payload flavour: format v2 carries the
// maintained core numbers (validated against filtered's degrees), a
// v1 payload omits them and they are recomputed by linear peeling.
// Every structural invariant the searches assume is re-validated:
// component adjacency and dissimilarity lists sorted and in local
// range, local and global vertex counts consistent, the
// local-to-global mapping strictly ascending within the source graph,
// every component member's core number at least K.
func DecodePrepared(r *binenc.Reader, o *similarity.Oracle, wantN int,
	filtered *graph.Graph, withCore bool) (*Prepared, error) {
	k := int(r.U32())
	n := int(r.U64())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: prepared: %w", err)
	}
	if n != wantN {
		return nil, fmt.Errorf("core: prepared for %d vertices, graph has %d", n, wantN)
	}
	if filtered == nil || filtered.N() != n {
		return nil, fmt.Errorf("core: prepared needs its filtered graph over %d vertices", n)
	}
	var coreNums []int32
	if withCore {
		coreNums = r.I32s()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("core: prepared core numbers: %w", err)
		}
		if len(coreNums) != n {
			return nil, fmt.Errorf("core: %d core numbers for %d vertices", len(coreNums), n)
		}
		for v, c := range coreNums {
			if c < 0 || int(c) > filtered.Degree(int32(v)) {
				return nil, fmt.Errorf("core: vertex %d has core number %d outside [0,%d]",
					v, c, filtered.Degree(int32(v)))
			}
		}
	} else {
		coreNums = kcore.Decompose32(filtered)
	}
	cnt := r.Count(16) // each component occupies well above 16 bytes
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: prepared: %w", err)
	}
	pr := &Prepared{p: Params{K: k, Oracle: o}, n: n, coreNums: coreNums, compID: newCompIDs(n)}
	if err := pr.p.validate(); err != nil {
		return nil, err
	}
	for i := 0; i < cnt; i++ {
		adj, _, err := graph.DecodeAdjacency(r)
		if err != nil {
			return nil, fmt.Errorf("core: component %d adjacency: %w", i, err)
		}
		d, err := simgraph.DecodeDissim(r)
		if err != nil {
			return nil, fmt.Errorf("core: component %d: %w", i, err)
		}
		if len(d.Lists) != len(adj) {
			return nil, fmt.Errorf("core: component %d: %d dissim lists for %d vertices", i, len(d.Lists), len(adj))
		}
		orig := r.I32s()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("core: component %d mapping: %w", i, err)
		}
		if len(orig) != len(adj) {
			return nil, fmt.Errorf("core: component %d: mapping for %d of %d vertices", i, len(orig), len(adj))
		}
		for j, v := range orig {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("core: component %d: global vertex %d out of range [0,%d)", i, v, n)
			}
			if j > 0 && v <= orig[j-1] {
				return nil, fmt.Errorf("core: component %d: mapping not strictly ascending", i)
			}
			if int(coreNums[v]) < k {
				return nil, fmt.Errorf("core: component %d: member %d has core number %d below k=%d",
					i, v, coreNums[v], k)
			}
			pr.compID[v] = orig[0]
		}
		p := &problem{
			k:      k,
			n:      len(adj),
			adj:    adj,
			dissim: d.Lists,
			pairs:  d.Pairs,
			orig:   orig,
		}
		for _, nb := range adj {
			if len(nb) > p.maxDeg {
				p.maxDeg = len(nb)
			}
		}
		pr.probs = append(pr.probs, p)
	}
	// Re-derive the maximum-search component order exactly as
	// PrepareFiltered does, so a decoded Prepared searches components
	// in the same sequence as the one that was saved.
	pr.byDeg = append([]*problem(nil), pr.probs...)
	sort.SliceStable(pr.byDeg, func(i, j int) bool { return pr.byDeg[i].maxDeg > pr.byDeg[j].maxDeg })
	return pr, nil
}
