// Package kcore implements linear-time core decomposition and k-core
// extraction following Batagelj and Zaversnik, "An O(m) algorithm for
// cores decomposition of networks" (reference [2] of the paper).
//
// The k-core of a graph is the maximal subgraph in which every vertex has
// degree at least k; the core number of a vertex is the largest k such
// that the vertex belongs to the k-core. The (k,r)-core engine uses k-core
// computation both as the preprocessing step of Algorithm 1 and as the
// structure-based candidate pruning rule (Theorem 2).
package kcore

import "krcore/internal/graph"

// Decompose returns the core number of every vertex of g using the
// bucket-based O(n+m) peeling algorithm.
func Decompose(g *graph.Graph) []int {
	n := g.N()
	deg := make([]int, n)
	maxDeg := 0
	for u := 0; u < n; u++ {
		deg[u] = g.Degree(int32(u))
		if deg[u] > maxDeg {
			maxDeg = deg[u]
		}
	}
	// Bucket sort vertices by degree.
	bin := make([]int, maxDeg+2)
	for _, d := range deg {
		bin[d]++
	}
	start := 0
	for d := 0; d <= maxDeg; d++ {
		count := bin[d]
		bin[d] = start
		start += count
	}
	pos := make([]int, n)  // position of vertex in vert
	vert := make([]int, n) // vertices sorted by current degree
	for u := 0; u < n; u++ {
		pos[u] = bin[deg[u]]
		vert[pos[u]] = u
		bin[deg[u]]++
	}
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	core := make([]int, n)
	for i := 0; i < n; i++ {
		u := vert[i]
		core[u] = deg[u]
		for _, v := range g.Neighbors(int32(u)) {
			if deg[v] > deg[u] {
				// Move v to the front of its bucket, then shift the
				// bucket boundary right, effectively decrementing
				// deg[v] in O(1).
				dv := deg[v]
				pv := pos[v]
				pw := bin[dv]
				w := vert[pw]
				if v != int32(w) {
					vert[pv], vert[pw] = w, int(v)
					pos[v], pos[w] = pw, pv
				}
				bin[dv]++
				deg[v]--
			}
		}
	}
	return core
}

// KCore returns the sorted vertex set of the k-core of g (possibly
// empty). The k-core may be disconnected; use
// g.ComponentsOf(KCore(g,k)) to split it.
func KCore(g *graph.Graph, k int) []int32 {
	core := Decompose(g)
	var out []int32
	for u, c := range core {
		if c >= k {
			out = append(out, int32(u))
		}
	}
	return out
}

// Within peels the subgraph of g induced by the mask down to its k-core,
// clearing mask entries of removed vertices in place. members must list
// exactly the vertices with mask true; the returned slice (reusing
// members' backing array) holds the surviving vertices. This is the
// restricted form used by the candidate pruning rule, where the mask is
// M ∪ C.
func Within(g *graph.Graph, k int, mask []bool, members []int32) []int32 {
	deg := make(map[int32]int, len(members))
	for _, u := range members {
		deg[u] = g.DegreeWithin(u, mask)
	}
	queue := make([]int32, 0, len(members))
	for _, u := range members {
		if deg[u] < k {
			queue = append(queue, u)
			mask[u] = false
		}
	}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, v := range g.Neighbors(u) {
			if !mask[v] {
				continue
			}
			deg[v]--
			if deg[v] < k {
				mask[v] = false
				queue = append(queue, v)
			}
		}
	}
	out := members[:0]
	for _, u := range members {
		if mask[u] {
			out = append(out, u)
		}
	}
	return out
}

// MaxCoreNumber returns the largest k such that the k-core of g is
// non-empty (0 for an edgeless graph).
func MaxCoreNumber(g *graph.Graph) int {
	max := 0
	for _, c := range Decompose(g) {
		if c > max {
			max = c
		}
	}
	return max
}
