package kcore

import "krcore/internal/graph"

// This file implements incremental core maintenance following Li, Yu
// and Mao, "Efficient Core Maintenance in Large Dynamic Graphs"
// (PAPERS.md): inserting or removing one edge changes core numbers by
// at most one, and only within the subcore around the edge — the
// vertices with core number c = min(core(u), core(v)) reachable from
// the endpoints through vertices of core number exactly c. Repair
// walks that region alone, so a single-edge update costs work
// proportional to the affected neighbourhood instead of the O(n+m)
// full peeling of Decompose.

// Decompose32 is Decompose with the compact element type the
// maintenance path stores: core numbers fit int32 because they are
// bounded by vertex degree.
func Decompose32(g *graph.Graph) []int32 {
	core := Decompose(g)
	out := make([]int32, len(core))
	for i, c := range core {
		out[i] = int32(c)
	}
	return out
}

// Repair updates the core decomposition in place across an edge diff:
// core must hold the core numbers of the pre-diff graph (extended with
// zeros for any vertices the diff grew the graph by), g is the
// post-diff graph, and add/del are the effective changes — every add
// pair absent before and present in g, every del pair the reverse,
// normalized u < v, with no duplicates (graph.Delta.Diff's contract).
//
// Each changed edge is repaired against the graph state with all
// earlier changes applied and all later ones not, simulated by a small
// overlay on g, so a multi-edge batch is a sequence of provably-local
// single-edge repairs. changed lists the distinct vertices whose core
// number was written (a vertex changed and changed back still appears;
// compare against the old array to filter net no-ops) — callers patch
// downstream state from it instead of rescanning all n vertices.
// visited counts the vertices whose neighbourhoods were scanned. When
// budget is positive and the walk exceeds it, Repair stops and returns
// ok=false; core is then in an unspecified state and the caller must
// fall back to a full Decompose.
func Repair(g *graph.Graph, core []int32, add, del [][2]int32, budget int) (changed []int32, visited int, ok bool) {
	if len(add) == 0 && len(del) == 0 {
		return nil, 0, true
	}
	rp := &repairer{g: g, core: core, budget: budget,
		hide:  pairMap(add),
		extra: pairMap(del),
	}
	// Removals run first, while every pending insertion is still hidden;
	// insertions then run with the extra overlay already empty.
	for _, p := range del {
		dropPair(rp.extra, p)
		if !rp.remove(p[0], p[1]) {
			return nil, rp.visited, false
		}
	}
	for _, p := range add {
		dropPair(rp.hide, p)
		if !rp.insert(p[0], p[1]) {
			return nil, rp.visited, false
		}
	}
	return rp.changed, rp.visited, true
}

// repairer carries one Repair call's state: the final graph, the core
// array being fixed up, and the pending-change overlay that makes g
// look like each intermediate graph.
type repairer struct {
	g       *graph.Graph
	core    []int32
	budget  int
	visited int

	// changed collects the distinct vertices whose core number was
	// written, in write order.
	changed    []int32
	changedSet map[int32]bool

	// hide holds not-yet-applied insertions: edges present in g that the
	// current intermediate graph does not have. extra holds
	// not-yet-applied removals: edges absent from g that the current
	// intermediate graph still has. Both are symmetric.
	hide  map[int32][]int32
	extra map[int32][]int32
}

// pairMap expands normalized pairs into a symmetric per-vertex map.
func pairMap(pairs [][2]int32) map[int32][]int32 {
	if len(pairs) == 0 {
		return nil
	}
	m := make(map[int32][]int32, 2*len(pairs))
	for _, p := range pairs {
		m[p[0]] = append(m[p[0]], p[1])
		m[p[1]] = append(m[p[1]], p[0])
	}
	return m
}

// dropPair removes one applied change from the overlay, both ways.
func dropPair(m map[int32][]int32, p [2]int32) {
	m[p[0]] = dropVal(m[p[0]], p[1])
	m[p[1]] = dropVal(m[p[1]], p[0])
}

func dropVal(s []int32, v int32) []int32 {
	for i, x := range s {
		if x == v {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// visit charges one neighbourhood scan against the budget.
func (rp *repairer) visit() bool {
	rp.visited++
	return rp.budget <= 0 || rp.visited <= rp.budget
}

// eachNeighbor iterates the current intermediate graph's neighbours of
// u: g's list minus hidden pending insertions, plus pending removals.
func (rp *repairer) eachNeighbor(u int32, f func(v int32)) {
	h := rp.hide[u]
	for _, v := range rp.g.Neighbors(u) {
		if len(h) > 0 && containsVal(h, v) {
			continue
		}
		f(v)
	}
	for _, v := range rp.extra[u] {
		f(v)
	}
}

func containsVal(s []int32, v int32) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// subcore collects the vertices with core number exactly c reachable
// from the seeds through vertices of core number c (the seeds must
// themselves have core c). Returns nil members and false on budget
// exhaustion.
func (rp *repairer) subcore(seeds []int32, c int32, inS map[int32]bool) ([]int32, bool) {
	members := append([]int32(nil), seeds...)
	for _, s := range seeds {
		inS[s] = true
	}
	for i := 0; i < len(members); i++ {
		w := members[i]
		if !rp.visit() {
			return nil, false
		}
		rp.eachNeighbor(w, func(x int32) {
			if rp.core[x] == c && !inS[x] {
				inS[x] = true
				members = append(members, x)
			}
		})
	}
	return members, true
}

// insert repairs core numbers after inserting the edge (u,v), which
// must already be visible in the current intermediate graph. Theorem
// (insertion): only vertices in the subcore of the smaller-core
// endpoint(s) can gain — each by exactly one. A subcore member w
// reaches core c+1 iff it keeps at least c+1 qualified neighbours:
// those with core > c, plus subcore members that themselves survive.
// That is a (c+1)-core peeling over the subcore with higher-core
// neighbours as fixed anchors.
func (rp *repairer) insert(u, v int32) bool {
	c := rp.core[u]
	if rp.core[v] < c {
		c = rp.core[v]
	}
	var seeds []int32
	if rp.core[u] == c {
		seeds = append(seeds, u)
	}
	if rp.core[v] == c {
		seeds = append(seeds, v)
	}
	inS := make(map[int32]bool)
	members, ok := rp.subcore(seeds, c, inS)
	if !ok {
		return false
	}
	cd := make(map[int32]int, len(members))
	for _, w := range members {
		if !rp.visit() {
			return false
		}
		d := 0
		rp.eachNeighbor(w, func(x int32) {
			if rp.core[x] > c || (rp.core[x] == c && inS[x]) {
				d++
			}
		})
		cd[w] = d
	}
	removed := make(map[int32]bool)
	var stack []int32
	for _, w := range members {
		if cd[w] < int(c)+1 {
			removed[w] = true
			stack = append(stack, w)
		}
	}
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !rp.visit() {
			return false
		}
		rp.eachNeighbor(w, func(x int32) {
			if inS[x] && !removed[x] {
				cd[x]--
				if cd[x] < int(c)+1 {
					removed[x] = true
					stack = append(stack, x)
				}
			}
		})
	}
	for _, w := range members {
		if !removed[w] {
			rp.setCore(w, c+1)
		}
	}
	return true
}

// setCore writes one repaired core number and records the vertex.
func (rp *repairer) setCore(w, c int32) {
	rp.core[w] = c
	if !rp.changedSet[w] {
		if rp.changedSet == nil {
			rp.changedSet = make(map[int32]bool)
		}
		rp.changedSet[w] = true
		rp.changed = append(rp.changed, w)
	}
}

// remove repairs core numbers after removing the edge (u,v), which must
// already be invisible in the current intermediate graph (core numbers
// still reflect the graph with the edge). Theorem (removal): only the
// subcore members around the smaller-core endpoint(s) can lose — each
// by exactly one. A member drops iff peeling its subcore at threshold
// c (neighbours with old core >= c count as support) removes it.
func (rp *repairer) remove(u, v int32) bool {
	c := rp.core[u]
	if rp.core[v] < c {
		c = rp.core[v]
	}
	var seeds []int32
	if rp.core[u] == c {
		seeds = append(seeds, u)
	}
	if rp.core[v] == c && v != u {
		seeds = append(seeds, v)
	}
	inS := make(map[int32]bool)
	members, ok := rp.subcore(seeds, c, inS)
	if !ok {
		return false
	}
	cd := make(map[int32]int, len(members))
	for _, w := range members {
		if !rp.visit() {
			return false
		}
		d := 0
		rp.eachNeighbor(w, func(x int32) {
			if rp.core[x] >= c {
				d++
			}
		})
		cd[w] = d
	}
	dropped := make(map[int32]bool)
	var stack []int32
	for _, w := range members {
		if cd[w] < int(c) {
			dropped[w] = true
			stack = append(stack, w)
		}
	}
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !rp.visit() {
			return false
		}
		rp.eachNeighbor(w, func(x int32) {
			if inS[x] && !dropped[x] {
				cd[x]--
				if cd[x] < int(c) {
					dropped[x] = true
					stack = append(stack, x)
				}
			}
		})
	}
	for w := range dropped {
		rp.setCore(w, c-1)
	}
	return true
}
