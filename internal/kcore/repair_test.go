package kcore

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"krcore/internal/graph"
)

// edgeSet materialises a graph from an undirected edge set.
func buildFrom(n int, edges map[[2]int32]bool) *graph.Graph {
	b := graph.NewBuilder(n)
	for e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func norm(u, v int32) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{u, v}
}

func sortedPairs(m map[[2]int32]bool) [][2]int32 {
	out := make([][2]int32, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// randomEdges draws a random graph with the given density bias.
func randomEdges(rng *rand.Rand, n, m int) map[[2]int32]bool {
	edges := map[[2]int32]bool{}
	for i := 0; i < m; i++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u != v {
			edges[norm(u, v)] = true
		}
	}
	return edges
}

// TestRepairMatchesDecompose is the property test pinning Repair to
// full peeling: across many random graphs and random effective diffs
// (insert-heavy, remove-heavy and mixed), repairing the old core array
// must reproduce Decompose32 of the new graph exactly.
func TestRepairMatchesDecompose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 8 + rng.Intn(60)
		edges := randomEdges(rng, n, rng.Intn(4*n))
		g1 := buildFrom(n, edges)
		core := Decompose32(g1)

		// Draw an effective diff: some removals of present edges, some
		// insertions of absent pairs. Trial phase biases the mix.
		after := map[[2]int32]bool{}
		for e := range edges {
			after[e] = true
		}
		addWant, delWant := 1+rng.Intn(4), 1+rng.Intn(4)
		switch trial % 3 {
		case 1: // insert-heavy
			addWant, delWant = 1+rng.Intn(6), rng.Intn(2)
		case 2: // remove-heavy
			addWant, delWant = rng.Intn(2), 1+rng.Intn(6)
		}
		delSet := map[[2]int32]bool{}
		for _, e := range sortedPairs(edges) {
			if len(delSet) >= delWant {
				break
			}
			if rng.Intn(3) == 0 {
				delSet[e] = true
				delete(after, e)
			}
		}
		addSet := map[[2]int32]bool{}
		for len(addSet) < addWant {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u == v {
				continue
			}
			p := norm(u, v)
			if edges[p] || delSet[p] || addSet[p] {
				continue
			}
			addSet[p] = true
			after[p] = true
		}
		g2 := buildFrom(n, after)

		got := append([]int32(nil), core...)
		changed, visited, ok := Repair(g2, got, sortedPairs(addSet), sortedPairs(delSet), 0)
		if !ok {
			t.Fatalf("trial %d: unlimited budget reported exhaustion", trial)
		}
		want := Decompose32(g2)
		for u := range want {
			if got[u] != want[u] {
				t.Fatalf("trial %d (n=%d, +%d/-%d edges, visited %d): core[%d] = %d, want %d\ngot  %v\nwant %v",
					trial, n, len(addSet), len(delSet), visited, u, got[u], want[u], got, want)
			}
		}
		// The changed list is load-bearing downstream (PatchPreparedDelta
		// derives k-core membership changes from it instead of rescanning):
		// it must cover every vertex whose core number differs, exactly once.
		inChanged := map[int32]bool{}
		for _, v := range changed {
			if inChanged[v] {
				t.Fatalf("trial %d: vertex %d reported changed twice", trial, v)
			}
			inChanged[v] = true
		}
		for u := range want {
			if core[u] != want[u] && !inChanged[int32(u)] {
				t.Fatalf("trial %d: core[%d] changed %d -> %d but was not reported",
					trial, u, core[u], want[u])
			}
		}
	}
}

// TestRepairGrownGraph covers vertex growth: the core array is extended
// with zeros and the diff wires the new vertices in.
func TestRepairGrownGraph(t *testing.T) {
	edges := map[[2]int32]bool{{0, 1}: true, {1, 2}: true, {0, 2}: true}
	g1 := buildFrom(3, edges)
	core := Decompose32(g1)
	core = append(core, 0, 0) // vertices 3 and 4 join
	add := [][2]int32{{0, 3}, {1, 3}, {2, 3}, {3, 4}}
	after := map[[2]int32]bool{}
	for e := range edges {
		after[e] = true
	}
	for _, p := range add {
		after[p] = true
	}
	g2 := buildFrom(5, after)
	if _, _, ok := Repair(g2, core, add, nil, 0); !ok {
		t.Fatal("budget exhausted")
	}
	want := Decompose32(g2)
	if fmt.Sprint(core) != fmt.Sprint(want) {
		t.Fatalf("grown repair: got %v, want %v", core, want)
	}
}

// TestRepairBudget pins the fallback contract: a tiny budget makes
// Repair stop with ok=false instead of walking a large region.
func TestRepairBudget(t *testing.T) {
	// A long cycle is one subcore at c=2; adding a chord forces a walk
	// around it.
	const n = 200
	edges := map[[2]int32]bool{}
	for i := 0; i < n; i++ {
		edges[norm(int32(i), int32((i+1)%n))] = true
	}
	g1 := buildFrom(n, edges)
	core := Decompose32(g1)
	add := [][2]int32{{0, 100}}
	edges[norm(0, 100)] = true
	g2 := buildFrom(n, edges)

	got := append([]int32(nil), core...)
	if _, visited, ok := Repair(g2, got, add, nil, 5); ok || visited < 5 {
		t.Fatalf("budget 5: visited=%d ok=%v, want exhaustion", visited, ok)
	}
	got = append(got[:0], core...)
	if _, _, ok := Repair(g2, got, add, nil, 0); !ok {
		t.Fatal("unlimited budget must complete")
	}
	want := Decompose32(g2)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("after budget retry: got %v, want %v", got, want)
	}
}
