package kcore

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"krcore/internal/graph"
)

func clique(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.Build()
}

func TestDecomposeClique(t *testing.T) {
	g := clique(6)
	core := Decompose(g)
	for u, c := range core {
		if c != 5 {
			t.Fatalf("core[%d] = %d, want 5", u, c)
		}
	}
	if MaxCoreNumber(g) != 5 {
		t.Fatalf("MaxCoreNumber = %d, want 5", MaxCoreNumber(g))
	}
}

func TestDecomposePath(t *testing.T) {
	b := graph.NewBuilder(5)
	for i := 0; i < 4; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	g := b.Build()
	for u, c := range Decompose(g) {
		if c != 1 {
			t.Fatalf("core[%d] = %d, want 1 on a path", u, c)
		}
	}
}

func TestDecomposeMixed(t *testing.T) {
	// A 4-clique {0,1,2,3} with a pendant path 3-4-5.
	b := graph.NewBuilder(6)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	g := b.Build()
	got := Decompose(g)
	want := []int{3, 3, 3, 3, 1, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Decompose = %v, want %v", got, want)
	}
	if kc := KCore(g, 3); !reflect.DeepEqual(kc, []int32{0, 1, 2, 3}) {
		t.Fatalf("KCore(3) = %v", kc)
	}
	if kc := KCore(g, 4); kc != nil {
		t.Fatalf("KCore(4) = %v, want empty", kc)
	}
}

func TestDecomposeEmptyAndIsolated(t *testing.T) {
	g := graph.NewBuilder(3).Build()
	got := Decompose(g)
	want := []int{0, 0, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Decompose = %v, want %v", got, want)
	}
	if MaxCoreNumber(g) != 0 {
		t.Fatal("MaxCoreNumber of edgeless graph must be 0")
	}
	if g0 := graph.NewBuilder(0).Build(); len(Decompose(g0)) != 0 {
		t.Fatal("Decompose of empty graph must be empty")
	}
}

// naiveKCore peels by repeated scanning; the reference for Within and
// Decompose.
func naiveKCore(g *graph.Graph, k int, mask []bool) {
	for {
		removed := false
		for u := 0; u < g.N(); u++ {
			if mask[u] && g.DegreeWithin(int32(u), mask) < k {
				mask[u] = false
				removed = true
			}
		}
		if !removed {
			return
		}
	}
}

func randomGraph(rng *rand.Rand, n, extra int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < extra; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.Build()
}

func TestWithinMatchesNaive(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, 4*n)
		k := 1 + rng.Intn(5)

		mask := make([]bool, n)
		members := make([]int32, 0, n)
		for u := 0; u < n; u++ {
			if rng.Intn(4) != 0 {
				mask[u] = true
				members = append(members, int32(u))
			}
		}
		want := make([]bool, n)
		copy(want, mask)
		naiveKCore(g, k, want)

		got := Within(g, k, mask, members)
		for u := 0; u < n; u++ {
			if mask[u] != want[u] {
				return false
			}
		}
		// Survivor list matches the mask.
		cnt := 0
		for _, u := range got {
			if !mask[u] {
				return false
			}
			cnt++
		}
		for u := 0; u < n; u++ {
			if mask[u] {
				cnt--
			}
		}
		return cnt == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: core numbers from Decompose agree with iterated naive
// peeling: vertex u has core number >= k iff u survives naive k-core
// peeling.
func TestDecomposeMatchesNaive(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := randomGraph(rng, n, 3*n)
		core := Decompose(g)
		maxK := 0
		for _, c := range core {
			if c > maxK {
				maxK = c
			}
		}
		for k := 0; k <= maxK+1; k++ {
			mask := make([]bool, n)
			for u := range mask {
				mask[u] = true
			}
			naiveKCore(g, k, mask)
			for u := 0; u < n; u++ {
				if mask[u] != (core[u] >= k) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: every vertex of the k-core has degree >= k inside the k-core
// (the defining invariant), and the k-core is the *maximal* such set:
// adding any removed vertex breaks maximality via its own degree.
func TestKCoreInvariant(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomGraph(rng, n, 3*n)
		k := 1 + rng.Intn(4)
		kc := KCore(g, k)
		in := make([]bool, n)
		for _, u := range kc {
			in[u] = true
		}
		for _, u := range kc {
			if g.DegreeWithin(u, in) < k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecompose(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 20000, 120000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decompose(g)
	}
}
