package krcore

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gatedMetric is a distance metric over 1-D positions whose Score
// blocks until released: it holds the engine's (k,r) preparation open
// in mid-build so tests can observe the cache counters while N queries
// are stampeding one cold key.
type gatedMetric struct {
	pos     []float64
	started chan struct{} // closed on the first Score call
	release chan struct{} // Score blocks until this closes
	once    sync.Once
}

func (m *gatedMetric) Score(u, v int32) float64 {
	m.once.Do(func() { close(m.started) })
	<-m.release
	return math.Abs(m.pos[u] - m.pos[v])
}
func (m *gatedMetric) Distance() bool { return true }
func (m *gatedMetric) Name() string   { return "gated-abs" }

// TestEngineColdKeyStampedeCountsMisses is the regression test for the
// cache-hit miscount: concurrent cold queries for the same (k,r) all
// block on the entry's once while one of them builds it, so every one
// of them pays the preparation latency — none is a hit. The pre-fix
// code counted every caller except the map-inserter as a hit.
func TestEngineColdKeyStampedeCountsMisses(t *testing.T) {
	const n = 10
	b := NewGraphBuilder(n)
	for i := int32(0); i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	g := b.Build()
	pos := make([]float64, n)
	for i := range pos {
		pos[i] = float64(i)
	}
	m := &gatedMetric{pos: pos, started: make(chan struct{}), release: make(chan struct{})}
	eng := NewEngine(g, m)

	const racers = 8
	var wg sync.WaitGroup
	errc := make(chan error, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := eng.Enumerate(2, 100, EnumOptions{})
			if err == nil && len(res.Cores) != 1 {
				err = fmt.Errorf("got %d cores, want 1", len(res.Cores))
			}
			errc <- err
		}()
	}

	// The build is now in progress (first Score call observed) and
	// blocked on release. Wait until every racer has recorded its
	// counter — they do so before blocking on the entry's once — then
	// assert the invariant of this bugfix: no query is a hit while the
	// build it depends on is still running.
	<-m.started
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := eng.Stats()
		if st.Hits+st.Misses == racers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("racers never registered: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	st := eng.Stats()
	if st.Hits != 0 {
		t.Fatalf("queries counted as hits while the cold build was still running: %+v", st)
	}
	if st.Misses < 1 {
		t.Fatalf("no miss recorded for a cold build: %+v", st)
	}

	close(m.release)
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}

	// With the entry fully built, the next query is a pure hit.
	before := eng.Stats()
	if _, err := eng.Enumerate(2, 100, EnumOptions{}); err != nil {
		t.Fatal(err)
	}
	after := eng.Stats()
	if after.Hits != before.Hits+1 || after.Misses != before.Misses {
		t.Fatalf("warm query was not a hit: before %+v, after %+v", before, after)
	}
}

// countingMetric counts pairwise evaluations, so tests can tell whether
// an engine operation touched the graph-wide edge filter.
type countingMetric struct {
	pos   []float64
	calls atomic.Int64
}

func (m *countingMetric) Score(u, v int32) float64 {
	m.calls.Add(1)
	return math.Abs(m.pos[u] - m.pos[v])
}
func (m *countingMetric) Distance() bool { return true }
func (m *countingMetric) Name() string   { return "counting-abs" }

// TestEngineOracleFastPath is the regression test for the Oracle fast
// path: asking the engine for a similarity oracle must build the oracle
// and its index only — not run the dissimilar-edge filter over every
// edge of the graph — and must be visible in the hit/miss counters.
// The pre-fix code forced the full per-r build and bypassed the
// counters entirely.
func TestEngineOracleFastPath(t *testing.T) {
	const n = 60
	b := NewGraphBuilder(n)
	for i := int32(0); i+1 < n; i++ {
		b.AddEdge(i, i+1) // a path: n-1 edges the filter would evaluate
	}
	g := b.Build()
	pos := make([]float64, n)
	for i := range pos {
		pos[i] = float64(i % 7)
	}
	m := &countingMetric{pos: pos}
	eng := NewEngine(g, m)

	o1, err := eng.Oracle(3)
	if err != nil {
		t.Fatal(err)
	}
	if o1 == nil {
		t.Fatal("nil oracle")
	}
	if calls := m.calls.Load(); calls != 0 {
		t.Fatalf("Oracle(r) evaluated %d vertex pairs; the edge filter must stay lazy", calls)
	}
	st := eng.Stats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("Oracle call bypassed the cache counters: %+v", st)
	}
	if st.Thresholds != 1 {
		t.Fatalf("Oracle call did not cache its threshold slot: %+v", st)
	}

	// A repeated call is a hit and returns the same cached oracle.
	o2, err := eng.Oracle(3)
	if err != nil {
		t.Fatal(err)
	}
	if o2 != o1 {
		t.Fatal("repeated Oracle call rebuilt the oracle")
	}
	st = eng.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("repeated Oracle call not counted as a hit: %+v", st)
	}
	if calls := m.calls.Load(); calls != 0 {
		t.Fatalf("repeated Oracle call evaluated %d pairs", calls)
	}

	// The first (k,r) query at the same threshold pays the filter once
	// and reuses the already-built oracle.
	if _, err := eng.Enumerate(2, 3, EnumOptions{}); err != nil {
		t.Fatal(err)
	}
	if calls := m.calls.Load(); calls == 0 {
		t.Fatal("query did not run the edge filter at all")
	}
	o3, err := eng.Oracle(3)
	if err != nil {
		t.Fatal(err)
	}
	if o3 != o1 {
		t.Fatal("query rebuilt the oracle instead of reusing the cached slot")
	}
}

// TestEngineContextVariants exercises the context-aware query surface
// the serving daemon maps request deadlines onto.
func TestEngineContextVariants(t *testing.T) {
	g, geo := buildServingInstance()
	eng := NewEngine(g, geo.Metric())

	done, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := eng.EnumerateContext(done, 3, 8, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatal("cancelled context did not abort the search")
	}
	if res, err = eng.FindMaximumContext(done, 3, 8, MaxOptions{}); err != nil || !res.TimedOut {
		t.Fatalf("cancelled max search: res=%+v err=%v", res, err)
	}
	if res, err = eng.EnumerateContainingContext(done, 3, 8, 0, EnumOptions{}); err != nil || !res.TimedOut {
		t.Fatalf("cancelled containing search: res=%+v err=%v", res, err)
	}

	// A live context leaves the result identical to the plain call.
	want, err := eng.Enumerate(3, 8, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.EnumerateContext(context.Background(), 3, 8, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Cores) != fmt.Sprint(want.Cores) {
		t.Fatalf("context variant diverged: %v != %v", got.Cores, want.Cores)
	}

	// When both the argument context and Limits.Context are set, either
	// one cancels the search.
	res, err = eng.EnumerateContext(context.Background(), 3, 8, EnumOptions{Limits: Limits{Context: done}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatal("cancelled Limits.Context was dropped by the merge")
	}
	res, err = eng.EnumerateContext(done, 3, 8, EnumOptions{Limits: Limits{Context: context.Background()}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatal("cancelled argument context was dropped by the merge")
	}

	// The dynamic engine exposes the same surface.
	geo2 := NewGeoAttributes(g.N())
	for u := 0; u < g.N(); u++ {
		p := geo.store.Vertex(int32(u))
		geo2.Set(int32(u), p.X, p.Y)
	}
	deng, err := NewDynamicEngine(g, geo2)
	if err != nil {
		t.Fatal(err)
	}
	dres, err := deng.EnumerateContext(context.Background(), 3, 8, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(dres.Cores) != fmt.Sprint(want.Cores) {
		t.Fatalf("dynamic context variant diverged: %v != %v", dres.Cores, want.Cores)
	}
	if dres, err = deng.FindMaximumContext(done, 3, 8, MaxOptions{}); err != nil || !dres.TimedOut {
		t.Fatalf("dynamic cancelled max search: res=%+v err=%v", dres, err)
	}
	if dres, err = deng.EnumerateContainingContext(done, 3, 8, 0, EnumOptions{}); err != nil || !dres.TimedOut {
		t.Fatalf("dynamic cancelled containing search: res=%+v err=%v", dres, err)
	}
}
