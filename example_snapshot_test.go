package krcore_test

import (
	"bytes"
	"fmt"

	"krcore"
)

// Example_snapshot shows versioned snapshot persistence: a warmed
// engine saves its graph, attribute store, similarity index, filtered
// graph and prepared (k,r) settings; a "restarted" process loads the
// snapshot and serves the same settings as immediate cache hits
// instead of rebuilding them.
func Example_snapshot() {
	// Two dense friend groups bridged by one edge.
	b := krcore.NewGraphBuilder(9)
	groups := [][]int32{{0, 1, 2, 3, 4}, {5, 6, 7, 8}}
	for _, g := range groups {
		for i := 0; i < len(g); i++ {
			for j := i + 1; j < len(g); j++ {
				b.AddEdge(g[i], g[j])
			}
		}
	}
	b.AddEdge(4, 5)
	g := b.Build()

	geo := krcore.NewGeoAttributes(9)
	for _, v := range groups[0] {
		geo.Set(v, 0, float64(v)) // downtown
	}
	for _, v := range groups[1] {
		geo.Set(v, 100, float64(v)) // the suburbs
	}

	// Build and warm the engine, then save it. In production the
	// snapshot goes to a file (see cmd/krcored's -snapshot-save).
	eng := krcore.NewEngine(g, geo.Metric())
	if err := eng.Warm(2, 10); err != nil {
		panic(err)
	}
	var snapshot bytes.Buffer
	if err := eng.SaveSnapshot(&snapshot); err != nil {
		panic(err)
	}
	fmt.Println("snapshot bytes >", snapshot.Len() > 0)

	// "Restart": load the snapshot instead of rebuilding. The warmed
	// setting answers as a cache hit; traffic counters start at zero.
	restarted, err := krcore.LoadEngine(&snapshot)
	if err != nil {
		panic(err)
	}
	res, _ := restarted.Enumerate(2, 10, krcore.EnumOptions{})
	fmt.Println("communities:", len(res.Cores))

	st := restarted.Stats()
	fmt.Printf("cache: %d settings prepared, %d hits, %d misses\n",
		st.Prepared, st.Hits, st.Misses)
	// Output:
	// snapshot bytes > true
	// communities: 2
	// cache: 1 settings prepared, 1 hits, 0 misses
}
