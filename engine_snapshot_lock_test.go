package krcore_test

import (
	"bytes"
	"testing"
	"time"

	"krcore"
	"krcore/internal/snapshot"
)

// gateWriter blocks its first Write until released, so a test can hold
// a snapshot encode mid-stream and probe what else the engine lets
// happen meanwhile.
type gateWriter struct {
	entered chan struct{} // closed when the first Write arrives
	release chan struct{} // Write returns once this closes
	buf     bytes.Buffer
	once    bool
}

func (g *gateWriter) Write(p []byte) (int, error) {
	if !g.once {
		g.once = true
		close(g.entered)
		<-g.release
	}
	return g.buf.Write(p)
}

// TestDynamicSaveSnapshotDoesNotBlockWrites pins the lockheld fix:
// SaveSnapshot captures state under the read lock but streams the
// encoding with no lock held, so a slow snapshot destination (NFS, a
// throttled disk) cannot stall the write path. Pre-fix the encode ran
// under d.mu.RLock and the AddEdge below sat blocked until the writer
// released, tripping the timeout.
func TestDynamicSaveSnapshotDoesNotBlockWrites(t *testing.T) {
	g, geo := snapGeoInstance()
	eng, err := krcore.NewDynamicEngine(g, geo)
	if err != nil {
		t.Fatal(err)
	}
	preUpdates := eng.DynamicStats().Updates
	preM := eng.M()

	gw := &gateWriter{entered: make(chan struct{}), release: make(chan struct{})}
	saveErr := make(chan error, 1)
	go func() { saveErr <- eng.SaveSnapshot(gw) }()
	<-gw.entered

	// With the snapshot encode parked inside Write, a mutation must
	// still commit: the serving lock was released after capture.
	mutated := make(chan error, 1)
	go func() { mutated <- eng.AddEdge(0, int32(eng.N()-1)) }()
	select {
	case err := <-mutated:
		if err != nil {
			t.Fatalf("AddEdge during snapshot write: %v", err)
		}
	case <-time.After(10 * time.Second):
		close(gw.release)
		t.Fatal("AddEdge blocked behind an in-flight snapshot write: snapshot I/O is holding the serving lock")
	}

	close(gw.release)
	if err := <-saveErr; err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}

	// The snapshot must reflect the captured (pre-mutation) state, not
	// the concurrently applied edge.
	loaded, err := krcore.LoadDynamicEngine(bytes.NewReader(gw.buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadDynamicEngine of bytes written concurrently with a mutation: %v", err)
	}
	if got := loaded.DynamicStats().Updates; got != preUpdates {
		t.Fatalf("snapshot captured Updates=%d, want the pre-mutation %d", got, preUpdates)
	}
	if got := loaded.M(); got != preM {
		t.Fatalf("snapshot captured M=%d edges, want the pre-mutation %d", got, preM)
	}
}

// TestDynamicSaveSnapshotCloneIsolation pins the clone half of the same
// fix: the attribute store captured for encoding is deep-copied under
// the lock, so attribute mutations applied while the encoder streams
// cannot leak into (or race with) the snapshot bytes.
func TestDynamicSaveSnapshotCloneIsolation(t *testing.T) {
	g, geo := snapGeoInstance()
	eng, err := krcore.NewDynamicEngine(g, geo)
	if err != nil {
		t.Fatal(err)
	}

	gw := &gateWriter{entered: make(chan struct{}), release: make(chan struct{})}
	saveErr := make(chan error, 1)
	go func() { saveErr <- eng.SaveSnapshot(gw) }()
	<-gw.entered

	done := make(chan error, 1)
	go func() {
		done <- eng.SetAttributes(0, krcore.VertexAttributes{X: 9999, Y: 9999})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SetAttributes during snapshot write: %v", err)
		}
	case <-time.After(10 * time.Second):
		close(gw.release)
		t.Fatal("SetAttributes blocked behind an in-flight snapshot write")
	}

	close(gw.release)
	if err := <-saveErr; err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	st, err := snapshot.Read(bytes.NewReader(gw.buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if p := st.Geo.Vertex(0); p.X == 9999 && p.Y == 9999 {
		t.Fatal("snapshot bytes contain the post-capture attribute mutation: the store was not cloned before unlock")
	}
}
