package krcore

import (
	"testing"
	"time"
)

// buildTwoGroups wires the quickstart topology: two dense similar
// groups bridged by one structural edge.
func buildTwoGroups() (*Graph, *KeywordAttributes) {
	b := NewGraphBuilder(9)
	groups := [][]int32{{0, 1, 2, 3, 4}, {5, 6, 7, 8}}
	for _, g := range groups {
		for i := 0; i < len(g); i++ {
			for j := i + 1; j < len(g); j++ {
				b.AddEdge(g[i], g[j])
			}
		}
	}
	b.AddEdge(4, 5)
	kw := NewKeywordAttributes(9)
	for _, v := range groups[0] {
		kw.Set(v, []int32{1, 2, 3})
	}
	for _, v := range groups[1] {
		kw.Set(v, []int32{10, 11, 12})
	}
	return b.Build(), kw
}

func TestEnumerateMaximalFacade(t *testing.T) {
	g, kw := buildTwoGroups()
	res, err := EnumerateMaximal(g, Params{K: 2, Oracle: kw.JaccardAtLeast(0.5)}, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 2 {
		t.Fatalf("got %d cores, want 2: %v", len(res.Cores), res.Cores)
	}
	stats := res.Summarize()
	if stats.MaxSize != 5 || stats.Count != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestFindMaximumFacade(t *testing.T) {
	g, kw := buildTwoGroups()
	res, err := FindMaximum(g, Params{K: 2, Oracle: kw.JaccardAtLeast(0.5)}, MaxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 1 || len(res.Cores[0]) != 5 {
		t.Fatalf("maximum = %v, want the 5-clique", res.Cores)
	}
}

func TestCliquePlusFacade(t *testing.T) {
	g, kw := buildTwoGroups()
	res, err := CliquePlus(g, Params{K: 2, Oracle: kw.JaccardAtLeast(0.5)}, CliqueOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 2 {
		t.Fatalf("Clique+ found %d cores, want 2", len(res.Cores))
	}
}

func TestKCoreFacade(t *testing.T) {
	g, _ := buildTwoGroups()
	if got := len(KCore(g, 3)); got != 9 {
		t.Fatalf("3-core size = %d, want 9", got)
	}
	if got := len(KCore(g, 4)); got != 5 {
		t.Fatalf("4-core size = %d, want 5 (only the 5-clique)", got)
	}
	nums := CoreNumbers(g)
	if nums[0] != 4 || nums[8] != 3 {
		t.Fatalf("core numbers = %v", nums)
	}
}

func TestGeoFacade(t *testing.T) {
	b := NewGraphBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	g := b.Build()
	geo := NewGeoAttributes(4)
	geo.Set(0, 0, 0)
	geo.Set(1, 1, 0)
	geo.Set(2, 0, 1)
	geo.Set(3, 100, 100)
	res, err := EnumerateMaximal(g, Params{K: 2, Oracle: geo.WithinDistance(5)}, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 1 || len(res.Cores[0]) != 3 {
		t.Fatalf("cores = %v, want the triangle", res.Cores)
	}
}

func TestWeightedFacadeAndThreshold(t *testing.T) {
	w := NewWeightedKeywordAttributes(3)
	w.Set(0, []int32{1, 2}, []float64{2, 2})
	w.Set(1, []int32{1, 2}, []float64{2, 2})
	w.Set(2, []int32{9}, nil) // missing weights default to 1
	o := w.WeightedJaccardAtLeast(0.9)
	if !o.Similar(0, 1) || o.Similar(0, 2) {
		t.Fatal("weighted oracle wrong")
	}
	thr := TopPermilleThreshold(w.Metric(), 3, 500)
	if thr < 0 || thr > 1 {
		t.Fatalf("threshold %v out of range", thr)
	}
	if NewOracle(w.Metric(), 0.5) == nil {
		t.Fatal("NewOracle returned nil")
	}
}

// TestBuildIndexFacade exercises the serving-layer pattern: pre-build
// the similarity index once, reuse it across many (k,r) searches, and
// query it directly for bulk similar pairs.
func TestBuildIndexFacade(t *testing.T) {
	g, kw := buildTwoGroups()
	o := kw.JaccardAtLeast(0.5)
	idx := BuildIndex(o)
	if idx == nil {
		t.Fatal("BuildIndex returned nil")
	}
	if BuildIndex(o) != idx {
		t.Fatal("BuildIndex must reuse the attached index")
	}
	// Direct bulk query: inside group one everything is similar, across
	// groups nothing is.
	adj := idx.SimilarAdjacency([]int32{0, 1, 5})
	if len(adj[0]) != 1 || adj[0][0] != 1 || len(adj[2]) != 0 {
		t.Fatalf("bulk adjacency wrong: %v", adj)
	}
	// Searches with the pre-built index return the usual cores at
	// several k against the same oracle.
	for _, k := range []int{2, 3} {
		res, err := EnumerateMaximal(g, Params{K: k, Oracle: o}, EnumOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Cores) != 2 {
			t.Fatalf("k=%d: got %d cores, want 2", k, len(res.Cores))
		}
	}
}

func TestFacadeLimits(t *testing.T) {
	g, kw := buildTwoGroups()
	res, err := EnumerateMaximal(g, Params{K: 2, Oracle: kw.JaccardAtLeast(0.5)},
		EnumOptions{Limits: Limits{Deadline: time.Now().Add(time.Minute)}})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("minute-long budget should not expire on a toy graph")
	}
}
