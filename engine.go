package krcore

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"krcore/internal/core"
	"krcore/internal/graph"
	"krcore/internal/simgraph"
)

// Engine is the build-once/serve-many layer for answering many (k,r)
// queries over one attributed graph — the serving pattern behind the
// paper's evaluation, which sweeps k and r over the same networks, and
// the natural shape of a community-search service.
//
// The engine caches every level of shared state a (k,r) query needs:
//
//   - per threshold r: the similarity oracle, its bulk similarity
//     index (see BuildIndex) and the dissimilar-edge-filtered graph,
//     which depend on r but not on k;
//   - per pair (k,r): the prepared candidate components (the filtered
//     graph's k-core split into connected components with their
//     dissimilarity lists), reused by every query at that setting.
//
// All methods are safe for concurrent use. Concurrent queries for the
// same uncached (k,r) prepare it exactly once (the others wait);
// queries for a cached (k,r) run immediately with zero re-preparation
// and proceed fully in parallel, each with its own search state and
// budget. Cancellation and node/time limits apply per query through
// Limits; parallelism within one query through the options'
// Parallelism field.
type Engine struct {
	g      *Graph
	metric Metric

	mu   sync.Mutex
	byR  map[float64]*rEntry
	byKR map[krKey]*krEntry
	hits atomic.Int64
	miss atomic.Int64
}

type krKey struct {
	k int
	r float64
}

// rEntry is the r-dependent, k-independent shared state. ready is set
// when the once body completed; advance only carries ready entries
// (callers serialise advance with queries, so the flag is ordered).
type rEntry struct {
	once     sync.Once
	oracle   *Oracle
	filtered *graph.Graph
	ready    bool
}

// krEntry is the prepared problem of one (k,r) setting.
type krEntry struct {
	once  sync.Once
	pr    *core.Prepared
	err   error
	ready bool
}

// readyREntry wraps already-built per-r state so later queries treat it
// as constructed (the once is pre-fired).
func readyREntry(o *Oracle, filtered *graph.Graph) *rEntry {
	ent := &rEntry{oracle: o, filtered: filtered, ready: true}
	ent.once.Do(func() {})
	return ent
}

// readyKREntry wraps an already-prepared (k,r) problem.
func readyKREntry(pr *core.Prepared) *krEntry {
	ent := &krEntry{pr: pr, ready: true}
	ent.once.Do(func() {})
	return ent
}

// NewEngine returns a serving engine for the graph and similarity
// metric. The metric's attribute store must be final: per-r indexes
// snapshot it when a threshold is first queried.
func NewEngine(g *Graph, m Metric) *Engine {
	return &Engine{
		g:      g,
		metric: m,
		byR:    map[float64]*rEntry{},
		byKR:   map[krKey]*krEntry{},
	}
}

// EngineStats reports the engine's cache behaviour.
type EngineStats struct {
	// Hits counts queries that found their (k,r) setting already
	// prepared (or being prepared by a concurrent query).
	Hits int64
	// Misses counts queries that had to prepare their (k,r) setting.
	Misses int64
	// Thresholds is the number of distinct r values with a cached
	// oracle, similarity index and filtered graph.
	Thresholds int
	// Prepared is the number of distinct (k,r) settings with cached
	// candidate components.
	Prepared int
}

// Stats returns a snapshot of the engine's cache counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return EngineStats{
		Hits:       e.hits.Load(),
		Misses:     e.miss.Load(),
		Thresholds: len(e.byR),
		Prepared:   len(e.byKR),
	}
}

// Oracle returns the engine's cached similarity oracle for threshold r
// (with its bulk index attached), building it on first use.
func (e *Engine) Oracle(r float64) (*Oracle, error) {
	if e.metric == nil {
		return nil, errors.New("krcore: engine has no similarity metric")
	}
	if math.IsNaN(r) {
		return nil, errors.New("krcore: similarity threshold r must not be NaN")
	}
	return e.forR(r).oracle, nil
}

// Warm prepares the (k,r) setting ahead of traffic, so the first real
// query at that setting is a cache hit.
func (e *Engine) Warm(k int, r float64) error {
	_, err := e.prepared(k, r)
	return err
}

// Enumerate returns all maximal (k,r)-cores at the given setting (see
// EnumerateMaximal). Result.Elapsed covers the search only; on a cache
// hit no preparation happens at all.
func (e *Engine) Enumerate(k int, r float64, opt EnumOptions) (*Result, error) {
	pr, err := e.prepared(k, r)
	if err != nil {
		return nil, err
	}
	return pr.Enumerate(opt)
}

// EnumerateContaining returns the maximal (k,r)-cores containing the
// query vertex v at the given setting — the community-search flavour.
func (e *Engine) EnumerateContaining(k int, r float64, v int32, opt EnumOptions) (*Result, error) {
	pr, err := e.prepared(k, r)
	if err != nil {
		return nil, err
	}
	return pr.EnumerateContaining(v, opt)
}

// FindMaximum returns the maximum (k,r)-core at the given setting (see
// the package-level FindMaximum).
func (e *Engine) FindMaximum(k int, r float64, opt MaxOptions) (*Result, error) {
	pr, err := e.prepared(k, r)
	if err != nil {
		return nil, err
	}
	return pr.FindMaximum(opt)
}

// prepared returns the cached candidate components for (k,r), building
// them exactly once. The engine mutex is held only for the map lookup;
// construction runs under the entry's sync.Once so concurrent queries
// for other settings are not blocked.
func (e *Engine) prepared(k int, r float64) (*core.Prepared, error) {
	if e.metric == nil {
		return nil, errors.New("krcore: engine has no similarity metric")
	}
	if k < 1 {
		return nil, fmt.Errorf("krcore: k must be >= 1, got %d", k)
	}
	if math.IsNaN(r) {
		// NaN never equals itself, so it would miss (and grow) the
		// float64-keyed caches on every query.
		return nil, errors.New("krcore: similarity threshold r must not be NaN")
	}
	key := krKey{k: k, r: r}
	e.mu.Lock()
	ent, ok := e.byKR[key]
	if !ok {
		ent = &krEntry{}
		e.byKR[key] = ent
	}
	e.mu.Unlock()
	if ok {
		e.hits.Add(1)
	} else {
		e.miss.Add(1)
	}
	ent.once.Do(func() {
		re := e.forR(r)
		ent.pr, ent.err = core.PrepareFiltered(re.filtered, core.Params{K: k, Oracle: re.oracle})
		ent.ready = true
	})
	return ent.pr, ent.err
}

// forR returns the r-dependent shared state (oracle, index, filtered
// graph), building it exactly once per threshold.
func (e *Engine) forR(r float64) *rEntry {
	e.mu.Lock()
	ent, ok := e.byR[r]
	if !ok {
		ent = &rEntry{}
		e.byR[r] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		ent.oracle = NewOracle(e.metric, r)
		BuildIndex(ent.oracle)
		ent.filtered = core.FilterDissimilar(e.g, ent.oracle)
		ent.ready = true
	})
	return ent
}

// advanceDelta describes one committed mutation batch to the engine's
// scoped invalidation: the post-mutation graph, the effective edge diff
// (normalized u < v), the vertices with changed attributes, whether the
// vertex set grew, and the touched mask (endpoints of every changed
// pair plus every attribute-changed vertex, length g2.N()).
type advanceDelta struct {
	g2        *graph.Graph
	addPairs  [][2]int32
	delPairs  [][2]int32
	attrVerts []int32
	grown     bool
	touched   []bool
}

// advanceStats reports what one advance carried over versus rebuilt.
type advanceStats struct {
	indexesKept, indexesRebuilt         int
	componentsReused, componentsRebuilt int
}

// advance returns a new engine serving the mutated graph, carrying over
// every cache entry the delta provably left intact:
//
//   - per-r oracles and bulk similarity indexes survive structure-only
//     changes (they depend on attributes alone); attribute changes and
//     vertex growth rebuild them, because indexes snapshot per-vertex
//     state at construction;
//   - per-r filtered graphs are patched incrementally — only the new
//     and attribute-changed pairs consult the similarity engine (see
//     simgraph.PatchFiltered), never all m edges;
//   - per-(k,r) prepared candidate components are re-derived from the
//     patched filtered graph (k-core + components, O(n+m)), and every
//     component untouched by the delta keeps its existing problem,
//     including its dissimilarity lists (see core.PatchPrepared).
//
// Cache hit/miss counters carry over so Stats stays coherent across
// mutations. The receiver is left unchanged; the caller must serialise
// advance with queries on the same engine value (DynamicEngine holds
// its write lock across the call).
func (e *Engine) advance(d advanceDelta) (*Engine, advanceStats) {
	var st advanceStats
	ne := NewEngine(d.g2, e.metric)
	ne.hits.Store(e.hits.Load())
	ne.miss.Store(e.miss.Load())
	e.mu.Lock()
	rs := make(map[float64]*rEntry, len(e.byR))
	for r, ent := range e.byR {
		rs[r] = ent
	}
	krs := make(map[krKey]*krEntry, len(e.byKR))
	for key, ent := range e.byKR {
		krs[key] = ent
	}
	e.mu.Unlock()
	attrsChanged := len(d.attrVerts) > 0 || d.grown
	for r, old := range rs {
		if !old.ready {
			continue // never finished building; rebuilt lazily on demand
		}
		oracle := old.oracle
		if attrsChanged {
			oracle = NewOracle(e.metric, r)
			BuildIndex(oracle)
			st.indexesRebuilt++
		} else {
			st.indexesKept++
		}
		filtered := simgraph.PatchFiltered(old.filtered, oracle.Bulk(), d.g2,
			d.addPairs, d.delPairs, d.attrVerts)
		ne.byR[r] = readyREntry(oracle, filtered)
	}
	for key, old := range krs {
		if !old.ready || old.err != nil {
			continue
		}
		re := ne.byR[key.r]
		if re == nil {
			continue
		}
		pr, pst, err := core.PatchPrepared(old.pr, re.filtered,
			core.Params{K: key.k, Oracle: re.oracle}, d.touched)
		if err != nil {
			continue // impossible for a cached entry; rebuild lazily
		}
		st.componentsReused += pst.Reused
		st.componentsRebuilt += pst.Rebuilt
		ne.byKR[key] = readyKREntry(pr)
	}
	return ne, st
}
