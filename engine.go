package krcore

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"krcore/internal/core"
	"krcore/internal/graph"
	"krcore/internal/simgraph"
)

// Engine is the build-once/serve-many layer for answering many (k,r)
// queries over one attributed graph — the serving pattern behind the
// paper's evaluation, which sweeps k and r over the same networks, and
// the natural shape of a community-search service.
//
// The engine caches every level of shared state a (k,r) query needs:
//
//   - per threshold r: the similarity oracle, its bulk similarity
//     index (see BuildIndex) and the dissimilar-edge-filtered graph,
//     which depend on r but not on k;
//   - per pair (k,r): the prepared candidate components (the filtered
//     graph's k-core split into connected components with their
//     dissimilarity lists), reused by every query at that setting.
//
// All methods are safe for concurrent use. Concurrent queries for the
// same uncached (k,r) prepare it exactly once (the others wait);
// queries for a cached (k,r) run immediately with zero re-preparation
// and proceed fully in parallel, each with its own search state and
// budget. Cancellation and node/time limits apply per query through
// Limits; parallelism within one query through the options'
// Parallelism field.
type Engine struct {
	g      *Graph
	metric Metric

	mu   sync.Mutex
	byR  map[float64]*rEntry
	byKR map[krKey]*krEntry
	hits atomic.Int64
	miss atomic.Int64
}

type krKey struct {
	k int
	r float64
}

// rEntry is the r-dependent, k-independent shared state. The oracle
// (with its bulk similarity index) and the dissimilar-edge-filtered
// graph build under separate onces, so Engine.Oracle can serve the
// similarity oracle alone without paying for the full-graph edge
// filter a (k,r) query needs. ready is set once BOTH halves completed;
// advance only carries fully-ready entries (oracle-only entries are
// rebuilt lazily on the mutated graph).
type rEntry struct {
	oracleOnce  sync.Once
	oracle      *Oracle
	oracleReady atomic.Bool

	filterOnce sync.Once
	filtered   *graph.Graph
	ready      atomic.Bool
}

// krEntry is the prepared problem of one (k,r) setting. ready flips
// after the once body completed, so concurrent queries can tell a
// served entry (cache hit) from one still being built (miss: they
// block on the once alongside the builder). hits/miss are the
// per-setting split of the engine-wide counters, the series the
// /metrics endpoint exports per (k,r).
type krEntry struct {
	once  sync.Once
	pr    *core.Prepared
	err   error
	ready atomic.Bool
	hits  atomic.Int64
	miss  atomic.Int64
}

// readyREntry wraps already-built per-r state so later queries treat it
// as constructed (the onces are pre-fired).
func readyREntry(o *Oracle, filtered *graph.Graph) *rEntry {
	ent := &rEntry{oracle: o, filtered: filtered}
	ent.oracleOnce.Do(func() {})
	ent.filterOnce.Do(func() {})
	ent.oracleReady.Store(true)
	ent.ready.Store(true)
	return ent
}

// readyKREntry wraps an already-prepared (k,r) problem.
func readyKREntry(pr *core.Prepared) *krEntry {
	ent := &krEntry{pr: pr}
	ent.once.Do(func() {})
	ent.ready.Store(true)
	return ent
}

// NewEngine returns a serving engine for the graph and similarity
// metric. The metric's attribute store must be final: per-r indexes
// snapshot it when a threshold is first queried.
func NewEngine(g *Graph, m Metric) *Engine {
	return &Engine{
		g:      g,
		metric: m,
		byR:    map[float64]*rEntry{},
		byKR:   map[krKey]*krEntry{},
	}
}

// EngineStats reports the engine's cache behaviour.
type EngineStats struct {
	// Hits counts queries that found their (k,r) setting fully
	// prepared and served it with zero preparation work, plus Oracle
	// calls that found their threshold's oracle already built. A query
	// that arrives while another query is still building the same
	// setting is NOT a hit: it blocks until the build completes, so it
	// pays the preparation latency and is counted as a miss. (Earlier
	// revisions counted those as hits, overstating cache efficiency
	// exactly when a cold setting was stampeded.)
	Hits int64
	// Misses counts queries that had to prepare their (k,r) setting or
	// wait for a concurrent preparation of it, plus Oracle calls that
	// had to build the oracle.
	Misses int64
	// Thresholds is the number of distinct r values with at least a
	// cached oracle and similarity index. Entries created by Oracle
	// alone defer the filtered-graph build until the first (k,r) query
	// at that threshold.
	Thresholds int
	// Prepared is the number of distinct (k,r) settings with cached
	// candidate components.
	Prepared int
}

// Stats returns a snapshot of the engine's cache counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return EngineStats{
		Hits:       e.hits.Load(),
		Misses:     e.miss.Load(),
		Thresholds: len(e.byR),
		Prepared:   len(e.byKR),
	}
}

// SettingStats is the per-(k,r) split of the engine's cache traffic:
// one entry per cached setting, the series the serving layer exports
// on /metrics so an operator can see which settings are hot and which
// keep missing.
type SettingStats struct {
	K            int
	R            float64
	Hits, Misses int64
}

// SettingsStats reports hit/miss counts per fully-built (k,r) setting,
// sorted by k then r. Settings still being built (or whose build
// failed) are omitted; a setting dropped by an update and rebuilt
// later restarts its counts — the standard counter-reset semantics of
// a scrape target. Counts carry across updates for every setting the
// scoped invalidation keeps.
func (e *Engine) SettingsStats() []SettingStats {
	e.mu.Lock()
	type kv struct {
		key krKey
		ent *krEntry
	}
	entries := make([]kv, 0, len(e.byKR))
	for key, ent := range e.byKR {
		entries = append(entries, kv{key, ent})
	}
	e.mu.Unlock()
	out := make([]SettingStats, 0, len(entries))
	for _, it := range entries {
		if !it.ent.ready.Load() || it.ent.err != nil {
			continue
		}
		out = append(out, SettingStats{
			K:      it.key.k,
			R:      it.key.r,
			Hits:   it.ent.hits.Load(),
			Misses: it.ent.miss.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].K != out[j].K {
			return out[i].K < out[j].K
		}
		return out[i].R < out[j].R
	})
	return out
}

// Oracle returns the engine's cached similarity oracle for threshold r
// (with its bulk index attached), building it on first use. Only the
// oracle and its index are built: the dissimilar-edge filter over the
// whole graph — which a (k,r) query needs but an oracle caller does
// not — stays lazy until the first query at this threshold. (An
// earlier revision forced the full per-r build here and bypassed the
// hit/miss counters; both are regression-tested now.)
func (e *Engine) Oracle(r float64) (*Oracle, error) {
	if e.metric == nil {
		return nil, errors.New("krcore: engine has no similarity metric")
	}
	if math.IsNaN(r) {
		return nil, errors.New("krcore: similarity threshold r must not be NaN")
	}
	ent := e.rEntryFor(r)
	if ent.oracleReady.Load() {
		e.hits.Add(1)
	} else {
		e.miss.Add(1)
	}
	e.buildOracle(ent, r)
	return ent.oracle, nil
}

// Graph returns the immutable graph the engine serves.
func (e *Engine) Graph() *Graph { return e.g }

// Warm prepares the (k,r) setting ahead of traffic, so the first real
// query at that setting is a cache hit.
func (e *Engine) Warm(k int, r float64) error {
	_, err := e.prepared(k, r)
	return err
}

// Enumerate returns all maximal (k,r)-cores at the given setting (see
// EnumerateMaximal). Result.Elapsed covers the search only; on a cache
// hit no preparation happens at all.
func (e *Engine) Enumerate(k int, r float64, opt EnumOptions) (*Result, error) {
	pr, err := e.prepared(k, r)
	if err != nil {
		return nil, err
	}
	return pr.Enumerate(opt)
}

// EnumerateContaining returns the maximal (k,r)-cores containing the
// query vertex v at the given setting — the community-search flavour.
func (e *Engine) EnumerateContaining(k int, r float64, v int32, opt EnumOptions) (*Result, error) {
	pr, err := e.prepared(k, r)
	if err != nil {
		return nil, err
	}
	return pr.EnumerateContaining(v, opt)
}

// FindMaximum returns the maximum (k,r)-core at the given setting (see
// the package-level FindMaximum).
func (e *Engine) FindMaximum(k int, r float64, opt MaxOptions) (*Result, error) {
	pr, err := e.prepared(k, r)
	if err != nil {
		return nil, err
	}
	return pr.FindMaximum(opt)
}

// limitsWithContext binds ctx to the limits: the search aborts when ctx
// is done, in addition to any context, deadline or node cap already in
// l. When both contexts are set the returned limits hold a derived
// context cancelled as soon as either parent is; the caller must invoke
// the returned release func once the search ends, so no per-query
// bookkeeping stays registered on long-lived parent contexts.
func limitsWithContext(ctx context.Context, l Limits) (Limits, func()) {
	if ctx == nil {
		return l, func() {}
	}
	if l.Context == nil {
		l.Context = ctx
		return l, func() {}
	}
	merged, cancel := context.WithCancel(ctx)
	if l.Context.Err() != nil {
		cancel() // already done: propagate synchronously, not via AfterFunc's goroutine
		return withCtx(l, merged), func() {}
	}
	stop := context.AfterFunc(l.Context, cancel)
	return withCtx(l, merged), func() {
		stop()
		cancel()
	}
}

// withCtx returns l with its context replaced.
func withCtx(l Limits, ctx context.Context) Limits {
	l.Context = ctx
	return l
}

// EnumerateContext is Enumerate bound to a request context: the search
// aborts (Result.TimedOut) when ctx is cancelled or its deadline
// passes, on top of any limits in opt. This is the query surface the
// HTTP serving layer maps per-request deadlines onto.
func (e *Engine) EnumerateContext(ctx context.Context, k int, r float64, opt EnumOptions) (*Result, error) {
	limits, release := limitsWithContext(ctx, opt.Limits)
	defer release()
	opt.Limits = limits
	return e.Enumerate(k, r, opt)
}

// EnumerateContainingContext is EnumerateContaining bound to a request
// context (see EnumerateContext).
func (e *Engine) EnumerateContainingContext(ctx context.Context, k int, r float64, v int32, opt EnumOptions) (*Result, error) {
	limits, release := limitsWithContext(ctx, opt.Limits)
	defer release()
	opt.Limits = limits
	return e.EnumerateContaining(k, r, v, opt)
}

// FindMaximumContext is FindMaximum bound to a request context (see
// EnumerateContext).
func (e *Engine) FindMaximumContext(ctx context.Context, k int, r float64, opt MaxOptions) (*Result, error) {
	limits, release := limitsWithContext(ctx, opt.Limits)
	defer release()
	opt.Limits = limits
	return e.FindMaximum(k, r, opt)
}

// prepared returns the cached candidate components for (k,r), building
// them exactly once. The engine mutex is held only for the map lookup;
// construction runs under the entry's sync.Once so concurrent queries
// for other settings are not blocked.
func (e *Engine) prepared(k int, r float64) (*core.Prepared, error) {
	if e.metric == nil {
		return nil, errors.New("krcore: engine has no similarity metric")
	}
	if k < 1 {
		return nil, fmt.Errorf("krcore: k must be >= 1, got %d", k)
	}
	if math.IsNaN(r) {
		// NaN never equals itself, so it would miss (and grow) the
		// float64-keyed caches on every query.
		return nil, errors.New("krcore: similarity threshold r must not be NaN")
	}
	key := krKey{k: k, r: r}
	e.mu.Lock()
	ent, ok := e.byKR[key]
	if !ok {
		ent = &krEntry{}
		e.byKR[key] = ent
	}
	e.mu.Unlock()
	// A hit is an entry that is already fully built AND usable; a
	// caller that merely finds the map slot while another query is
	// still inside the once below blocks with the builder and pays the
	// same latency, so it counts as a miss — as does a cached build
	// error, which serves no prepared state. (Reading ent.err here is
	// safe: it is written before the ready flag's atomic store.)
	if ok && ent.ready.Load() && ent.err == nil {
		e.hits.Add(1)
		ent.hits.Add(1)
	} else {
		e.miss.Add(1)
		ent.miss.Add(1)
	}
	ent.once.Do(func() {
		re := e.forR(r)
		ent.pr, ent.err = core.PrepareFiltered(re.filtered, core.Params{K: k, Oracle: re.oracle})
		ent.ready.Store(true)
	})
	return ent.pr, ent.err
}

// rEntryFor returns the map slot of threshold r, inserting an empty
// entry under the engine mutex; the entry's halves build lazily.
func (e *Engine) rEntryFor(r float64) *rEntry {
	e.mu.Lock()
	ent, ok := e.byR[r]
	if !ok {
		ent = &rEntry{}
		e.byR[r] = ent
	}
	e.mu.Unlock()
	return ent
}

// buildOracle builds the oracle half of an rEntry exactly once: the
// similarity oracle plus its bulk index, but not the filtered graph.
func (e *Engine) buildOracle(ent *rEntry, r float64) {
	ent.oracleOnce.Do(func() {
		ent.oracle = NewOracle(e.metric, r)
		BuildIndex(ent.oracle)
		ent.oracleReady.Store(true)
	})
}

// forR returns the fully-built r-dependent shared state (oracle, index,
// filtered graph), building each half exactly once per threshold.
func (e *Engine) forR(r float64) *rEntry {
	ent := e.rEntryFor(r)
	e.buildOracle(ent, r)
	ent.filterOnce.Do(func() {
		ent.filtered = core.FilterDissimilar(e.g, ent.oracle)
		ent.ready.Store(true)
	})
	return ent
}

// advanceDelta describes one committed mutation batch to the engine's
// scoped invalidation: the post-mutation graph, the effective edge diff
// (normalized u < v), the vertices with changed attributes, whether the
// vertex set grew, and the touched mask (endpoints of every changed
// pair plus every attribute-changed vertex, length g2.N()).
type advanceDelta struct {
	g2        *graph.Graph
	addPairs  [][2]int32
	delPairs  [][2]int32
	attrVerts []int32
	grown     bool
	touched   []bool
}

// advanceStats reports what one advance carried over versus rebuilt,
// and which core-maintenance path each cached (k,r) setting took.
type advanceStats struct {
	indexesKept, indexesRebuilt         int
	componentsReused, componentsRebuilt int
	patchesIncremental, patchesFull     int
	coreVisited                         int
}

// advance returns a new engine serving the mutated graph, carrying over
// every cache entry the delta provably left intact:
//
//   - per-r oracles and bulk similarity indexes survive structure-only
//     changes (they depend on attributes alone); attribute changes and
//     vertex growth rebuild them, because indexes snapshot per-vertex
//     state at construction;
//   - per-r filtered graphs are patched incrementally — only the new
//     and attribute-changed pairs consult the similarity engine (see
//     simgraph.PatchFiltered), never all m edges;
//   - per-(k,r) prepared candidate components are maintained
//     incrementally: the per-vertex core numbers are repaired around the
//     changed edges and only the affected components are rediscovered
//     and rebuilt (see core.PatchPreparedDelta); batches touching a
//     region larger than the patch budget fall back to the O(n+m) full
//     recompute, and either way every component untouched by the delta
//     keeps its existing problem, including its dissimilarity lists.
//
// Cache hit/miss counters carry over so Stats stays coherent across
// mutations. The receiver is left unchanged; the caller must serialise
// advance with queries on the same engine value (DynamicEngine holds
// its write lock across the call).
func (e *Engine) advance(d advanceDelta) (*Engine, advanceStats) {
	var st advanceStats
	ne := NewEngine(d.g2, e.metric)
	ne.hits.Store(e.hits.Load())
	ne.miss.Store(e.miss.Load())
	e.mu.Lock()
	rs := make(map[float64]*rEntry, len(e.byR))
	for r, ent := range e.byR {
		rs[r] = ent
	}
	krs := make(map[krKey]*krEntry, len(e.byKR))
	for key, ent := range e.byKR {
		krs[key] = ent
	}
	e.mu.Unlock()
	attrsChanged := len(d.attrVerts) > 0 || d.grown
	type filteredDiff struct{ add, del [][2]int32 }
	diffs := make(map[float64]filteredDiff, len(rs))
	for r, old := range rs {
		if !old.ready.Load() {
			// Never finished building (this includes oracle-only
			// entries, whose filtered graph cannot be patched);
			// rebuilt lazily on demand.
			continue
		}
		oracle := old.oracle
		if attrsChanged {
			oracle = NewOracle(e.metric, r)
			BuildIndex(oracle)
			st.indexesRebuilt++
		} else {
			st.indexesKept++
		}
		filtered, addF, delF := simgraph.PatchFiltered(old.filtered, oracle.Bulk(), d.g2,
			d.addPairs, d.delPairs, d.attrVerts)
		diffs[r] = filteredDiff{add: addF, del: delF}
		ne.byR[r] = readyREntry(oracle, filtered)
	}
	for key, old := range krs {
		if !old.ready.Load() || old.err != nil {
			continue
		}
		re := ne.byR[key.r]
		if re == nil {
			continue
		}
		fd := diffs[key.r]
		pr, pst, err := core.PatchPreparedDelta(old.pr, re.filtered,
			core.Params{K: key.k, Oracle: re.oracle}, core.PatchDelta{
				AddFiltered: fd.add,
				DelFiltered: fd.del,
				AttrVerts:   d.attrVerts,
				Touched:     d.touched,
			})
		if err != nil {
			continue // impossible for a cached entry; rebuild lazily
		}
		st.componentsReused += pst.Reused
		st.componentsRebuilt += pst.Rebuilt
		if pst.Incremental {
			st.patchesIncremental++
		} else {
			st.patchesFull++
		}
		st.coreVisited += pst.CoreVisited
		kept := readyKREntry(pr)
		// Per-setting traffic counters follow the entry across the
		// advance, like the engine-wide ones do.
		kept.hits.Store(old.hits.Load())
		kept.miss.Store(old.miss.Load())
		ne.byKR[key] = kept
	}
	return ne, st
}
