package krcore_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"krcore"
	"krcore/internal/attr"
	"krcore/internal/dataset"
	"krcore/internal/snapshot"
	"krcore/internal/updates"
)

// updateGolden regenerates the checked-in snapshot fixtures under
// testdata/snapshots/ (the good ones and the corrupt ones derived from
// them): go test -run TestSnapshotGolden -update-golden .
var updateGolden = flag.Bool("update-golden", false, "rewrite the snapshot golden fixtures")

const goldenDir = "testdata/snapshots"

// snapGeoInstance builds the deterministic geo instance behind the geo
// fixtures (a public-API twin of the engine tests' serving instance).
func snapGeoInstance() (*krcore.Graph, *krcore.GeoAttributes) {
	const n = 120
	rng := rand.New(rand.NewSource(404))
	b := krcore.NewGraphBuilder(n)
	for i := 0; i < 5*n; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	g := b.Build()
	geo := krcore.NewGeoAttributes(n)
	centers := [][2]float64{{0, 0}, {10, 0}, {5, 9}, {35, 35}}
	for u := 0; u < n; u++ {
		c := centers[rng.Intn(len(centers))]
		geo.Set(int32(u), c[0]+rng.NormFloat64()*2.5, c[1]+rng.NormFloat64()*2.5)
	}
	return g, geo
}

// snapKeywordInstance builds the deterministic keyword instance behind
// the keywords fixture.
func snapKeywordInstance() (*krcore.Graph, *krcore.KeywordAttributes) {
	const n = 90
	rng := rand.New(rand.NewSource(505))
	b := krcore.NewGraphBuilder(n)
	for i := 0; i < 4*n; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	g := b.Build()
	kw := krcore.NewKeywordAttributes(n)
	for u := 0; u < n; u++ {
		topic := rng.Intn(4) * 10
		keys := []int32{int32(topic), int32(topic + 1)}
		for j := 0; j < 4; j++ {
			keys = append(keys, int32(topic+rng.Intn(10)))
		}
		kw.Set(int32(u), keys)
	}
	return g, kw
}

// snapWeightedInstance builds the deterministic weighted-keyword
// instance behind the weighted fixture.
func snapWeightedInstance() (*krcore.Graph, *krcore.WeightedKeywordAttributes) {
	const n = 90
	rng := rand.New(rand.NewSource(606))
	b := krcore.NewGraphBuilder(n)
	for i := 0; i < 4*n; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	g := b.Build()
	ws := krcore.NewWeightedKeywordAttributes(n)
	for u := 0; u < n; u++ {
		topic := rng.Intn(4) * 8
		keys := []int32{int32(topic), int32(topic + 1), int32(topic + rng.Intn(8))}
		weights := []float64{2, 2, float64(1 + rng.Intn(3))}
		ws.Set(int32(u), keys, weights)
	}
	return g, ws
}

// goldenFixture describes one checked-in snapshot: how to rebuild the
// engine state it captures, and the query settings it has prepared.
type goldenFixture struct {
	name    string
	dynamic bool
	build   func(t *testing.T) snapshotSaver
	warmed  []struct {
		k int
		r float64
	}
}

// snapshotSaver is the save surface shared by both engine flavours.
type snapshotSaver interface {
	SaveSnapshot(w *bytes.Buffer) error
}

// saverFor adapts the public engines (whose SaveSnapshot takes an
// io.Writer) to the fixture interface.
type saverFunc func(w *bytes.Buffer) error

func (f saverFunc) SaveSnapshot(w *bytes.Buffer) error { return f(w) }

var goldenFixtures = []goldenFixture{
	{
		name: "geo.snap",
		build: func(t *testing.T) snapshotSaver {
			g, geo := snapGeoInstance()
			eng := krcore.NewEngine(g, geo.Metric())
			mustWarm(t, eng, 2, 4)
			mustWarm(t, eng, 3, 8)
			if _, err := eng.Oracle(15); err != nil { // oracle-only threshold
				t.Fatal(err)
			}
			return saverFunc(func(w *bytes.Buffer) error { return eng.SaveSnapshot(w) })
		},
		warmed: []struct {
			k int
			r float64
		}{{2, 4}, {3, 8}},
	},
	{
		name: "keywords.snap",
		build: func(t *testing.T) snapshotSaver {
			g, kw := snapKeywordInstance()
			eng := krcore.NewEngine(g, kw.Metric())
			mustWarm(t, eng, 2, 0.25)
			return saverFunc(func(w *bytes.Buffer) error { return eng.SaveSnapshot(w) })
		},
		warmed: []struct {
			k int
			r float64
		}{{2, 0.25}},
	},
	{
		name: "weighted.snap",
		build: func(t *testing.T) snapshotSaver {
			g, ws := snapWeightedInstance()
			eng := krcore.NewEngine(g, ws.Metric())
			mustWarm(t, eng, 2, 0.3)
			return saverFunc(func(w *bytes.Buffer) error { return eng.SaveSnapshot(w) })
		},
		warmed: []struct {
			k int
			r float64
		}{{2, 0.3}},
	},
	{
		name:    "dynamic.snap",
		dynamic: true,
		build: func(t *testing.T) snapshotSaver {
			eng := buildDynamicFixtureEngine(t)
			return saverFunc(func(w *bytes.Buffer) error { return eng.SaveSnapshot(w) })
		},
		warmed: []struct {
			k int
			r float64
		}{{2, 4}},
	},
}

// buildDynamicFixtureEngine builds the dynamic fixture: the geo
// instance warmed at (2,4) with a deterministic mutation history, so
// the snapshot carries a non-zero journal offset.
func buildDynamicFixtureEngine(t *testing.T) *krcore.DynamicEngine {
	t.Helper()
	g, geo := snapGeoInstance()
	eng, err := krcore.NewDynamicEngine(g, geo)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Warm(2, 4); err != nil {
		t.Fatal(err)
	}
	if err := eng.ApplyBatch([]krcore.Update{
		krcore.AddEdgeUpdate(0, 1),
		krcore.AddEdgeUpdate(0, 2),
		krcore.RemoveEdgeUpdate(0, 1),
		krcore.SetAttributesUpdate(3, krcore.VertexAttributes{X: 1, Y: 2}),
	}); err != nil {
		t.Fatal(err)
	}
	return eng
}

func mustWarm(t *testing.T, eng *krcore.Engine, k int, r float64) {
	t.Helper()
	if err := eng.Warm(k, r); err != nil {
		t.Fatal(err)
	}
}

// encodeFixture rebuilds a fixture's engine and serialises it.
func encodeFixture(t *testing.T, fx goldenFixture) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := fx.build(t).SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotGolden pins the snapshot format: every checked-in
// fixture must (a) be reproduced byte-for-byte by rebuilding its
// engine from scratch, (b) re-encode byte-for-byte after a load, and
// (c) serve queries bit-identically to the freshly built engine. With
// -update-golden the fixtures (including the derived corrupt ones) are
// rewritten instead.
func TestSnapshotGolden(t *testing.T) {
	if *updateGolden {
		writeGoldenFixtures(t)
	}
	for _, fx := range goldenFixtures {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join(goldenDir, fx.name))
			if err != nil {
				t.Fatalf("%v (run: go test -run TestSnapshotGolden -update-golden .)", err)
			}
			if got := encodeFixture(t, fx); !bytes.Equal(got, want) {
				t.Fatalf("rebuilding %s produced different bytes (%d vs %d); if the format or the engine changed intentionally, refresh with -update-golden",
					fx.name, len(got), len(want))
			}
			// Byte-stable re-encode after a load.
			var re bytes.Buffer
			if fx.dynamic {
				deng, err := krcore.LoadDynamicEngine(bytes.NewReader(want))
				if err != nil {
					t.Fatal(err)
				}
				if err := deng.SaveSnapshot(&re); err != nil {
					t.Fatal(err)
				}
				if deng.JournalOffset() == 0 {
					t.Fatal("dynamic fixture lost its journal offset")
				}
			} else {
				eng, err := krcore.LoadEngine(bytes.NewReader(want))
				if err != nil {
					t.Fatal(err)
				}
				if err := eng.SaveSnapshot(&re); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(re.Bytes(), want) {
				t.Fatalf("load + re-save of %s changed its bytes", fx.name)
			}
			// Loaded engines answer exactly like the rebuilt original.
			eng, err := krcore.LoadEngine(bytes.NewReader(want))
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := krcore.LoadEngine(bytes.NewReader(encodeFixture(t, fx)))
			if err != nil {
				t.Fatal(err)
			}
			for _, cell := range fx.warmed {
				a, err := eng.Enumerate(cell.k, cell.r, krcore.EnumOptions{})
				if err != nil {
					t.Fatal(err)
				}
				b, err := fresh.Enumerate(cell.k, cell.r, krcore.EnumOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(a.Cores) != fmt.Sprint(b.Cores) || a.Nodes != b.Nodes {
					t.Fatalf("(k=%d, r=%g): loaded engine disagrees with rebuilt engine", cell.k, cell.r)
				}
			}
		})
	}
}

// corruptFixtures derives the committed corrupt fixtures from the good
// geo fixture; each must be rejected with the given sentinel cause.
var corruptFixtures = []struct {
	name    string
	derive  func(good []byte) []byte
	wantErr error
}{
	{"corrupt_truncated.snap", func(g []byte) []byte { return g[:2*len(g)/3] }, snapshot.ErrTruncated},
	{"corrupt_bitflip.snap", func(g []byte) []byte {
		mut := append([]byte(nil), g...)
		mut[len(mut)/2] ^= 0x08 // lands inside a section payload
		return mut
	}, snapshot.ErrChecksum},
	{"corrupt_version.snap", func(g []byte) []byte {
		mut := append([]byte(nil), g...)
		mut[8] = 0xfe // format version field
		return mut
	}, snapshot.ErrVersion},
	{"corrupt_magic.snap", func(g []byte) []byte {
		mut := append([]byte(nil), g...)
		copy(mut, "NOTASNAP")
		return mut
	}, snapshot.ErrMagic},
	// A format-v2 prepared section whose first maintained core number is
	// forged out of range (above any possible degree), with the section
	// checksum recomputed so only the semantic validation can catch it.
	{"corrupt_corenum.snap", corruptPreparedCore, snapshot.ErrCorrupt},
}

// corruptPreparedCore rewrites the first prepared section of a good v2
// snapshot, setting the first maintained core number to MaxInt32 and
// recomputing the section CRC. Section framing: 16-byte header, then
// per section id u32, length u64, payload, CRC-32C u32. The prepared
// payload is r f64, k u32, n u64, core-count u64, then the core values.
func corruptPreparedCore(g []byte) []byte {
	mut := append([]byte(nil), g...)
	off := 16
	for off+12 <= len(mut) {
		id := binary.LittleEndian.Uint32(mut[off:])
		n := int(binary.LittleEndian.Uint64(mut[off+4:]))
		payload := mut[off+12 : off+12+n]
		if id == 4 { // prepared section
			core0 := 8 + 4 + 8 + 8
			binary.LittleEndian.PutUint32(payload[core0:], 0x7fffffff)
			crc := crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli))
			binary.LittleEndian.PutUint32(mut[off+12+n:], crc)
			return mut
		}
		off += 12 + n + 4
	}
	panic("no prepared section in golden fixture")
}

// TestSnapshotCorruptFixtures checks the committed corrupt fixtures
// are rejected with typed *snapshot.FormatError causes.
func TestSnapshotCorruptFixtures(t *testing.T) {
	for _, cf := range corruptFixtures {
		cf := cf
		t.Run(cf.name, func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join(goldenDir, cf.name))
			if err != nil {
				t.Fatalf("%v (run: go test -run TestSnapshotGolden -update-golden .)", err)
			}
			_, err = krcore.LoadEngine(bytes.NewReader(raw))
			var fe *snapshot.FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("corrupt fixture loaded: err = %v, want *snapshot.FormatError", err)
			}
			if !errors.Is(err, cf.wantErr) {
				t.Fatalf("err = %v, want cause %v", err, cf.wantErr)
			}
			// The dynamic loader applies the same validation.
			if _, err := krcore.LoadDynamicEngine(bytes.NewReader(raw)); !errors.As(err, &fe) {
				t.Fatalf("dynamic load accepted corrupt fixture: %v", err)
			}
		})
	}
}

// writeGoldenFixtures regenerates every committed fixture.
func writeGoldenFixtures(t *testing.T) {
	t.Helper()
	if err := os.MkdirAll(goldenDir, 0o755); err != nil {
		t.Fatal(err)
	}
	var geoBytes []byte
	for _, fx := range goldenFixtures {
		raw := encodeFixture(t, fx)
		if fx.name == "geo.snap" {
			geoBytes = raw
		}
		if err := os.WriteFile(filepath.Join(goldenDir, fx.name), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", fx.name, len(raw))
	}
	for _, cf := range corruptFixtures {
		raw := cf.derive(geoBytes)
		if err := os.WriteFile(filepath.Join(goldenDir, cf.name), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", cf.name, len(raw))
	}
}

// TestSnapshotV1Compat pins backward compatibility with format v1:
// the committed v1 fixtures (written before the format carried core
// numbers or write-path counters) must load, serve bit-identically to
// a freshly built engine, and re-save as canonical current-version
// bytes — exactly the corresponding v2 golden. The v1 fixtures are
// frozen copies of the pre-v2 goldens; never regenerate them.
func TestSnapshotV1Compat(t *testing.T) {
	t.Run("static", func(t *testing.T) {
		raw, err := os.ReadFile(filepath.Join(goldenDir, "v1_geo.snap"))
		if err != nil {
			t.Fatal(err)
		}
		eng, err := krcore.LoadEngine(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := krcore.LoadEngine(bytes.NewReader(encodeFixture(t, goldenFixtures[0])))
		if err != nil {
			t.Fatal(err)
		}
		for _, cell := range goldenFixtures[0].warmed {
			a, err := eng.Enumerate(cell.k, cell.r, krcore.EnumOptions{})
			if err != nil {
				t.Fatal(err)
			}
			b, err := fresh.Enumerate(cell.k, cell.r, krcore.EnumOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(a.Cores) != fmt.Sprint(b.Cores) || a.Nodes != b.Nodes {
				t.Fatalf("(k=%d, r=%g): v1 load disagrees with fresh engine", cell.k, cell.r)
			}
		}
		var re bytes.Buffer
		if err := eng.SaveSnapshot(&re); err != nil {
			t.Fatal(err)
		}
		v2, err := os.ReadFile(filepath.Join(goldenDir, "geo.snap"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re.Bytes(), v2) {
			t.Fatal("v1 load did not re-save as the canonical v2 bytes")
		}
	})
	t.Run("dynamic", func(t *testing.T) {
		raw, err := os.ReadFile(filepath.Join(goldenDir, "v1_dynamic.snap"))
		if err != nil {
			t.Fatal(err)
		}
		eng, err := krcore.LoadDynamicEngine(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		if eng.JournalOffset() == 0 {
			t.Fatal("v1 dynamic fixture lost its journal offset")
		}
		ds := eng.DynamicStats()
		if ds.GroupCommits != 0 || ds.PatchesIncremental != 0 || ds.PatchesFull != 0 {
			t.Fatalf("v1 load invented write-path counters: %+v", ds)
		}
		// The write-path counters were not alive when the v1 fixture was
		// written, so its re-save cannot equal the v2 golden bytes; what
		// must hold is that it re-saves AS v2 (header version field),
		// keeps its journal offset, and is byte-stable from then on.
		var re bytes.Buffer
		if err := eng.SaveSnapshot(&re); err != nil {
			t.Fatal(err)
		}
		if v := binary.LittleEndian.Uint32(re.Bytes()[8:]); v != 2 {
			t.Fatalf("v1 dynamic load re-saved as version %d, want 2", v)
		}
		again, err := krcore.LoadDynamicEngine(bytes.NewReader(re.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if again.JournalOffset() != eng.JournalOffset() {
			t.Fatalf("journal offset %d after v1→v2 upgrade, want %d",
				again.JournalOffset(), eng.JournalOffset())
		}
		var re2 bytes.Buffer
		if err := again.SaveSnapshot(&re2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re.Bytes(), re2.Bytes()) {
			t.Fatal("upgraded snapshot is not byte-stable")
		}
	})
}

// TestSnapshotStatsAcrossSaveLoad is the table-driven regression for
// Engine.Stats across a save/load cycle: the structural counters
// (Thresholds, Prepared) survive, the traffic counters (Hits, Misses)
// reset to zero — the documented behaviour.
func TestSnapshotStatsAcrossSaveLoad(t *testing.T) {
	g, geo := snapGeoInstance()
	cases := []struct {
		name string
		prep func(t *testing.T, eng *krcore.Engine)
	}{
		{"empty", func(t *testing.T, eng *krcore.Engine) {}},
		{"one-warm", func(t *testing.T, eng *krcore.Engine) {
			mustWarm(t, eng, 2, 4)
		}},
		{"two-settings-shared-threshold", func(t *testing.T, eng *krcore.Engine) {
			mustWarm(t, eng, 2, 4)
			mustWarm(t, eng, 3, 4)
		}},
		{"warm-plus-oracle-only", func(t *testing.T, eng *krcore.Engine) {
			mustWarm(t, eng, 2, 4)
			if _, err := eng.Oracle(9); err != nil {
				t.Fatal(err)
			}
		}},
		{"queried-with-traffic", func(t *testing.T, eng *krcore.Engine) {
			mustWarm(t, eng, 2, 4)
			for i := 0; i < 3; i++ {
				if _, err := eng.Enumerate(2, 4, krcore.EnumOptions{}); err != nil {
					t.Fatal(err)
				}
			}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			eng := krcore.NewEngine(g, geo.Metric())
			tc.prep(t, eng)
			before := eng.Stats()
			var buf bytes.Buffer
			if err := eng.SaveSnapshot(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := krcore.LoadEngine(&buf)
			if err != nil {
				t.Fatal(err)
			}
			after := loaded.Stats()
			if after.Hits != 0 || after.Misses != 0 {
				t.Fatalf("traffic counters persisted: %+v", after)
			}
			if after.Thresholds != before.Thresholds || after.Prepared != before.Prepared {
				t.Fatalf("structural counters changed: before %+v, after %+v", before, after)
			}
		})
	}
}

// TestSnapshotWarmHitsCache checks that Warm (and queries) on a loaded
// engine hit only cached entries: zero misses for every setting the
// snapshot carries, a miss for a new setting.
func TestSnapshotWarmHitsCache(t *testing.T) {
	g, geo := snapGeoInstance()
	eng := krcore.NewEngine(g, geo.Metric())
	mustWarm(t, eng, 2, 4)
	mustWarm(t, eng, 3, 8)
	var buf bytes.Buffer
	if err := eng.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := krcore.LoadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	mustWarm(t, loaded, 2, 4)
	mustWarm(t, loaded, 3, 8)
	if _, err := loaded.Enumerate(2, 4, krcore.EnumOptions{}); err != nil {
		t.Fatal(err)
	}
	if st := loaded.Stats(); st.Hits != 3 || st.Misses != 0 {
		t.Fatalf("loaded engine re-prepared cached settings: %+v", st)
	}
	// A setting the snapshot does not carry is a genuine miss.
	mustWarm(t, loaded, 4, 4)
	if st := loaded.Stats(); st.Misses != 1 || st.Prepared != 3 {
		t.Fatalf("new setting not prepared as a miss: %+v", st)
	}
}

// TestSaveSnapshotRejectsCustomMetric pins the unsupported-metric
// error path.
func TestSaveSnapshotRejectsCustomMetric(t *testing.T) {
	g, _ := snapGeoInstance()
	eng := krcore.NewEngine(g, constantMetric{})
	var buf bytes.Buffer
	if err := eng.SaveSnapshot(&buf); err == nil {
		t.Fatal("custom metric serialised")
	}
}

// constantMetric is a custom metric the snapshot format cannot carry.
type constantMetric struct{}

func (constantMetric) Score(u, v int32) float64 { return 1 }
func (constantMetric) Distance() bool           { return false }
func (constantMetric) Name() string             { return "constant" }

// crashRecoveryDataset describes one differential scenario.
type crashRecoveryDataset struct {
	name    string
	make    func(t *testing.T) *dataset.Dataset
	k       int
	r       float64
	queries []struct {
		k int
		r float64
	}
}

// jaccardDataset generates a plain-keyword (Jaccard) dataset; the
// presets cover geo and weighted kinds only.
func jaccardDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Generate(dataset.Config{
		Name: "jaccard-test", Seed: 777, N: 600,
		AvgDegree: 6, HubCount: 2, HubDegree: 30,
		NumCommunities: 14, CommunityMin: 8, CommunityMax: 16,
		IntraProb: 0.7, OverlapSize: 3,
		Kind:  attr.KindKeywords,
		Vocab: 240, TopicWords: 12, WordsPerVertex: 10, NoiseFrac: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestSnapshotCrashRecoveryDifferential is the crash-recovery
// differential: a dynamic engine snapshotted mid-stream, reloaded, and
// replayed over the remaining journal must be bit-identical — same
// vertex and edge counts, same cores, same search-node counts — to a
// fresh engine built on the final graph, for a Euclidean and a Jaccard
// instance.
func TestSnapshotCrashRecoveryDifferential(t *testing.T) {
	scenarios := []crashRecoveryDataset{
		{
			name: "euclidean-brightkite",
			make: func(t *testing.T) *dataset.Dataset {
				d, err := dataset.Load("brightkite")
				if err != nil {
					t.Fatal(err)
				}
				return d
			},
			k: 4, r: 10,
			queries: []struct {
				k int
				r float64
			}{{4, 10}, {3, 25}},
		},
		{
			name: "jaccard-synthetic",
			make: jaccardDataset,
			k:    3, r: 0.3,
			queries: []struct {
				k int
				r float64
			}{{3, 0.3}, {2, 0.4}},
		},
	}
	const (
		streamLen = 120
		cut       = 70
		batch     = 5
	)
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			d := sc.make(t)
			ups := updates.Random(d, streamLen, 99)

			// The "crashing" engine: warm, apply the stream prefix,
			// checkpoint.
			attrs, err := updates.Attrs(d)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := krcore.NewDynamicEngine(d.Graph, attrs)
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Warm(sc.k, sc.r); err != nil {
				t.Fatal(err)
			}
			if _, err := updates.Replay(eng, ups[:cut], batch); err != nil {
				t.Fatal(err)
			}
			var ck bytes.Buffer
			if err := eng.SaveSnapshot(&ck); err != nil {
				t.Fatal(err)
			}

			// Recovery: load the checkpoint, resume the journal at the
			// recorded offset.
			restored, err := krcore.LoadDynamicEngine(bytes.NewReader(ck.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			off := restored.JournalOffset()
			if off != cut {
				t.Fatalf("journal offset %d, want %d", off, cut)
			}
			if _, err := updates.Replay(restored, ups[off:], batch); err != nil {
				t.Fatal(err)
			}

			// Reference: a fresh dynamic engine fed the whole stream.
			d2 := sc.make(t)
			attrs2, err := updates.Attrs(d2)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := krcore.NewDynamicEngine(d2.Graph, attrs2)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := updates.Replay(fresh, ups, batch); err != nil {
				t.Fatal(err)
			}

			if restored.N() != fresh.N() || restored.M() != fresh.M() {
				t.Fatalf("recovered graph %d/%d, fresh %d/%d",
					restored.N(), restored.M(), fresh.N(), fresh.M())
			}
			// And a from-scratch static engine over the final graph.
			static := krcore.NewEngine(fresh.Graph(), attrs2.Metric())
			for _, q := range sc.queries {
				a, err := restored.Enumerate(q.k, q.r, krcore.EnumOptions{})
				if err != nil {
					t.Fatal(err)
				}
				b, err := fresh.Enumerate(q.k, q.r, krcore.EnumOptions{})
				if err != nil {
					t.Fatal(err)
				}
				c, err := static.Enumerate(q.k, q.r, krcore.EnumOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(a.Cores) != fmt.Sprint(b.Cores) || a.Nodes != b.Nodes {
					t.Fatalf("(k=%d, r=%g): recovered engine diverges from fresh dynamic engine", q.k, q.r)
				}
				if fmt.Sprint(a.Cores) != fmt.Sprint(c.Cores) || a.Nodes != c.Nodes {
					t.Fatalf("(k=%d, r=%g): recovered engine diverges from from-scratch engine", q.k, q.r)
				}
				am, err := restored.FindMaximum(q.k, q.r, krcore.MaxOptions{})
				if err != nil {
					t.Fatal(err)
				}
				cm, err := static.FindMaximum(q.k, q.r, krcore.MaxOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(am.Cores) != fmt.Sprint(cm.Cores) || am.Nodes != cm.Nodes {
					t.Fatalf("(k=%d, r=%g): recovered maximum diverges", q.k, q.r)
				}
			}
			// The recovered engine stays mutable after recovery.
			if err := restored.AddEdge(0, 1); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDynamicSnapshotStatsSurvive checks the dynamic counters round
// trip and updates keep accumulating on top of them.
func TestDynamicSnapshotStatsSurvive(t *testing.T) {
	eng := buildDynamicFixtureEngine(t)
	before := eng.DynamicStats()
	var buf bytes.Buffer
	if err := eng.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := krcore.LoadDynamicEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.DynamicStats(); got != before {
		t.Fatalf("dynamic stats %+v, want %+v", got, before)
	}
	if err := restored.AddEdge(5, 7); err != nil {
		t.Fatal(err)
	}
	if got := restored.DynamicStats(); got.Updates != before.Updates+1 {
		t.Fatalf("updates did not resume from the journal offset: %+v", got)
	}
}
