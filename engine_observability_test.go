package krcore

import (
	"testing"
)

// TestEngineSettingsStats pins the per-(k,r) traffic split: warms are
// misses, repeat queries are hits, output is sorted by (k,r), and
// still-unbuilt settings never appear.
func TestEngineSettingsStats(t *testing.T) {
	g, geo := buildServingInstance()
	eng := NewEngine(g, geo.Metric())
	if got := eng.SettingsStats(); len(got) != 0 {
		t.Fatalf("fresh engine reports %d settings", len(got))
	}

	if err := eng.Warm(3, 8); err != nil {
		t.Fatal(err)
	}
	if err := eng.Warm(2, 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := eng.Enumerate(3, 8, EnumOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.FindMaximum(2, 4, MaxOptions{}); err != nil {
		t.Fatal(err)
	}

	got := eng.SettingsStats()
	if len(got) != 2 {
		t.Fatalf("settings = %+v, want 2 entries", got)
	}
	if got[0].K != 2 || got[0].R != 4 || got[1].K != 3 || got[1].R != 8 {
		t.Fatalf("settings not sorted by (k,r): %+v", got)
	}
	if got[0].Hits != 1 || got[0].Misses != 1 {
		t.Fatalf("(2,4) = %+v, want 1 hit (query) / 1 miss (warm)", got[0])
	}
	if got[1].Hits != 3 || got[1].Misses != 1 {
		t.Fatalf("(3,8) = %+v, want 3 hits / 1 miss", got[1])
	}

	// The per-setting split must sum to the engine-wide counters.
	st := eng.Stats()
	var hits, misses int64
	for _, s := range got {
		hits += s.Hits
		misses += s.Misses
	}
	if hits != st.Hits || misses != st.Misses {
		t.Fatalf("per-setting sums (%d,%d) != engine counters (%d,%d)", hits, misses, st.Hits, st.Misses)
	}
}

// TestDynamicSettingsStatsCarry checks per-setting counters survive a
// structure-only update alongside the carried prepared state.
func TestDynamicSettingsStatsCarry(t *testing.T) {
	g, geo := buildServingInstance()
	d, err := NewDynamicEngine(g, geo)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Warm(3, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Enumerate(3, 8, EnumOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(0, 1); err != nil {
		if err := d.RemoveEdge(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	got := d.SettingsStats()
	if len(got) != 1 || got[0].Hits != 1 || got[0].Misses != 1 {
		t.Fatalf("post-update settings = %+v, want the carried (3,8) with 1 hit / 1 miss", got)
	}
	if _, err := d.Enumerate(3, 8, EnumOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := d.SettingsStats(); got[0].Hits != 2 {
		t.Fatalf("carried setting did not keep counting: %+v", got)
	}
}

// TestDynamicCommitObserver checks the group-commit observer sees every
// accepted round with its batch and op counts.
func TestDynamicCommitObserver(t *testing.T) {
	g, geo := buildServingInstance()
	d, err := NewDynamicEngine(g, geo)
	if err != nil {
		t.Fatal(err)
	}
	var infos []CommitInfo
	d.SetCommitObserver(func(ci CommitInfo) { infos = append(infos, ci) })

	if err := d.ApplyBatch([]Update{AddEdgeUpdate(0, 1), AddEdgeUpdate(0, 2)}); err != nil {
		if err := d.ApplyBatch([]Update{RemoveEdgeUpdate(0, 1), RemoveEdgeUpdate(0, 2)}); err != nil {
			t.Fatal(err)
		}
	}
	if len(infos) != 1 {
		t.Fatalf("observer saw %d rounds, want 1", len(infos))
	}
	if infos[0].Batches != 1 || infos[0].Ops != 2 {
		t.Fatalf("round = %+v, want {Batches:1 Ops:2}", infos[0])
	}

	// A rejected batch must not reach the observer.
	infos = nil
	if err := d.ApplyBatch([]Update{AddEdgeUpdate(0, 99999)}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if len(infos) != 0 {
		t.Fatalf("observer saw rejected round: %+v", infos)
	}

	// Detach: no further callbacks.
	d.SetCommitObserver(nil)
	if _, err := d.AddVertex(); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatal("detached observer still called")
	}
}
