package krcore

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"krcore/internal/graph"
	"krcore/internal/similarity"
)

// UpdateOp identifies one mutation kind in an Update.
type UpdateOp uint8

const (
	// OpAddEdge inserts the undirected edge (U,V); inserting an existing
	// edge is a no-op.
	OpAddEdge UpdateOp = iota
	// OpRemoveEdge deletes the undirected edge (U,V); deleting a missing
	// edge is a no-op.
	OpRemoveEdge
	// OpAddVertex appends one isolated vertex with zero-valued
	// attributes; edges to it may follow in the same batch.
	OpAddVertex
	// OpSetAttributes replaces the attributes of vertex U with Attrs.
	OpSetAttributes
)

// String returns the update-stream mnemonic of the operation.
func (op UpdateOp) String() string {
	switch op {
	case OpAddEdge:
		return "add-edge"
	case OpRemoveEdge:
		return "remove-edge"
	case OpAddVertex:
		return "add-vertex"
	case OpSetAttributes:
		return "set-attributes"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// VertexAttributes carries one vertex's new attributes for whichever
// attribute kind the engine serves: X/Y for geo stores, Keys for
// keyword stores, Keys+Weights for weighted keyword stores. Fields
// irrelevant to the store's kind are ignored.
type VertexAttributes struct {
	X, Y    float64
	Keys    []int32
	Weights []float64
}

// Update is one mutation of a DynamicEngine's graph or attributes.
// Within a batch, updates validate and take effect in order, so an
// OpAddVertex may be followed by edges to the new vertex.
type Update struct {
	Op    UpdateOp
	U, V  int32
	Attrs VertexAttributes
}

// AddEdgeUpdate returns an OpAddEdge update.
func AddEdgeUpdate(u, v int32) Update { return Update{Op: OpAddEdge, U: u, V: v} }

// RemoveEdgeUpdate returns an OpRemoveEdge update.
func RemoveEdgeUpdate(u, v int32) Update { return Update{Op: OpRemoveEdge, U: u, V: v} }

// AddVertexUpdate returns an OpAddVertex update.
func AddVertexUpdate() Update { return Update{Op: OpAddVertex} }

// SetAttributesUpdate returns an OpSetAttributes update for vertex u.
func SetAttributesUpdate(u int32, a VertexAttributes) Update {
	return Update{Op: OpSetAttributes, U: u, Attrs: a}
}

// DynamicAttributes is the mutable attribute store a DynamicEngine
// maintains alongside its graph. GeoAttributes, KeywordAttributes and
// WeightedKeywordAttributes implement it; adapters over custom metrics
// only need these three methods.
type DynamicAttributes interface {
	// Metric exposes the similarity metric reading the store.
	Metric() Metric
	// Grow extends the store to n vertices with zero-valued attributes
	// (no-op when already at least that large).
	Grow(n int)
	// SetAttributes replaces the attributes of vertex u with the
	// kind-relevant fields of a.
	SetAttributes(u int32, a VertexAttributes)
}

// DynamicStats counts a DynamicEngine's update activity and how much
// cached state its scoped invalidation preserved.
type DynamicStats struct {
	// Updates is the number of individual operations accepted.
	Updates int64
	// Batches is the number of ApplyBatch commits (no-op batches
	// included).
	Batches int64
	// Version counts published graph snapshots; a no-op batch does not
	// bump it.
	Version int64
	// IndexesKept / IndexesRebuilt count per-threshold similarity
	// indexes carried across updates versus rebuilt (structure-only
	// changes keep them; attribute changes and vertex growth rebuild).
	IndexesKept, IndexesRebuilt int64
	// ComponentsReused / ComponentsRebuilt count prepared (k,r)
	// candidate components carried across updates versus rebuilt.
	ComponentsReused, ComponentsRebuilt int64
	// GroupCommits counts commit rounds. Concurrent ApplyBatch calls
	// coalesce into one round — one lock acquisition, one journal
	// append, one snapshot advance — so Batches/GroupCommits is the
	// write path's achieved coalescing factor (1.0 when writers never
	// overlap).
	GroupCommits int64
	// PatchesIncremental / PatchesFull count cached (k,r) settings
	// maintained by incremental core repair versus by the O(n+m) full
	// recompute fallback.
	PatchesIncremental, PatchesFull int64
	// CoreVisited totals the vertices whose neighbourhoods incremental
	// maintenance scanned (core repair plus affected-region discovery),
	// the direct measure of how local the update stream's effects are.
	CoreVisited int64
}

// CommitInfo describes one committed group-commit round to a commit
// observer: how many ApplyBatch calls coalesced into the round and how
// many update operations they carried. Batches/1 is a round that found
// no concurrent writers; larger values are the write path's amortised
// fan-in, the distribution the serving layer exports as a histogram.
type CommitInfo struct {
	// Batches is the number of accepted ApplyBatch calls in the round.
	Batches int
	// Ops is the total accepted update operations across those batches.
	Ops int
}

// JournalAppender receives every committed update before its snapshot
// is published, the hook a durable write-ahead journal implements (see
// updates.Journal). A commit group's operations arrive as one call —
// group commit amortises journal I/O the same way it amortises
// snapshot advances. An append error fails the whole group: no state
// changes, every waiting ApplyBatch call gets the error.
type JournalAppender interface {
	AppendBatch(batch []Update) error
}

// DynamicEngine is the mutable serving layer: an Engine that accepts
// live graph and attribute updates — AddEdge, RemoveEdge, AddVertex,
// SetAttributes, batched through ApplyBatch — while staying answerable
// for (k,r) queries. Social networks are never static; this layer makes
// a mutation cost incremental work instead of discarding every cached
// oracle, similarity index, filtered graph and prepared component.
//
// Every committed batch publishes a fresh immutable snapshot (graph
// plus engine) built by scoped invalidation: structure-only changes
// keep the per-r similarity indexes; the per-r filtered graphs are
// patched by classifying only the new or changed pairs; and prepared
// (k,r) components untouched by the delta are reused verbatim. Results
// are always bit-identical to a from-scratch Engine over the mutated
// graph — the differential test harness enforces exactly that.
//
// Concurrency: query methods take a shared lock and run fully in
// parallel with each other. Mutations go through a group-commit write
// path: concurrent ApplyBatch calls enqueue their batches and the
// first caller through becomes the round's leader, validating and
// merging every queued batch into one delta, one journal append and
// one snapshot advance. Structure-only rounds build the new snapshot
// entirely outside the engine lock — queries keep running against the
// current snapshot for the whole rebuild and are blocked only for the
// pointer swap; attribute rounds hold the lock across the advance,
// because the attribute store they mutate is read by concurrent
// cache-miss preparation. All methods are safe for concurrent use.
type DynamicEngine struct {
	mu    sync.RWMutex
	attrs DynamicAttributes
	g     *graph.Graph
	eng   *Engine
	stats DynamicStats

	// commitMu serialises commit rounds; the holder is the round's
	// leader. journal is guarded by it, and the leader's journal append
	// (one fsync per group commit) deliberately runs under it — that
	// ordering is the durability contract. krlint:iolock
	commitMu  sync.Mutex
	journal   JournalAppender
	commitObs func(CommitInfo)

	// pendMu guards the queue of batches awaiting a leader.
	pendMu  sync.Mutex
	pending []*commitReq

	// preAdvance, when non-nil, runs at the start of a structure-only
	// round's out-of-lock rebuild. Tests use it to hold a commit
	// mid-rebuild and prove queries still run.
	preAdvance func()
}

// commitReq is one ApplyBatch call waiting in the commit queue.
type commitReq struct {
	batch []Update
	// done receives the batch's outcome exactly once; buffered so the
	// leader never blocks on a waiter.
	done chan error
	// newN is the graph's vertex count right after this batch's updates,
	// recorded during validation so AddVertex can name its vertex even
	// when later batches in the same round add more.
	newN int
}

// NewDynamicEngine returns a mutable serving engine over the graph and
// attribute store. The store is grown to cover the graph's vertices;
// the engine owns both from here on — mutate them only through engine
// updates, never directly, or cached state will silently diverge.
func NewDynamicEngine(g *Graph, attrs DynamicAttributes) (*DynamicEngine, error) {
	if g == nil {
		return nil, errors.New("krcore: dynamic engine needs a graph")
	}
	if attrs == nil {
		return nil, errors.New("krcore: dynamic engine needs a dynamic attribute store")
	}
	attrs.Grow(g.N())
	return &DynamicEngine{attrs: attrs, g: g, eng: NewEngine(g, attrs.Metric())}, nil
}

// AddEdge inserts the undirected edge (u,v). Inserting an existing edge
// is a no-op; self-loops and out-of-range endpoints are errors.
func (d *DynamicEngine) AddEdge(u, v int32) error {
	return d.ApplyBatch([]Update{AddEdgeUpdate(u, v)})
}

// RemoveEdge deletes the undirected edge (u,v). Deleting a missing edge
// is a no-op; self-loops and out-of-range endpoints are errors.
func (d *DynamicEngine) RemoveEdge(u, v int32) error {
	return d.ApplyBatch([]Update{RemoveEdgeUpdate(u, v)})
}

// AddVertex appends one isolated vertex with zero-valued attributes and
// returns its id.
func (d *DynamicEngine) AddVertex() (int32, error) {
	newN, err := d.commit([]Update{AddVertexUpdate()})
	if err != nil {
		return 0, err
	}
	return int32(newN - 1), nil
}

// SetAttributes replaces the attributes of vertex u.
func (d *DynamicEngine) SetAttributes(u int32, a VertexAttributes) error {
	return d.ApplyBatch([]Update{SetAttributesUpdate(u, a)})
}

// BatchError is the error a rejected ApplyBatch returns: it names the
// offending update by its index within the batch, so stream-replay
// tooling can map the rejection back to a source position. The whole
// batch is discarded — Index records where validation stopped, not a
// partial-commit boundary.
type BatchError struct {
	// Index is the position of the invalid update within the batch.
	Index int
	// Op is the operation kind of the invalid update.
	Op UpdateOp
	// Err is the underlying validation error.
	Err error
}

// Error implements the error interface.
func (e *BatchError) Error() string {
	return fmt.Sprintf("krcore: update %d (%s): %v", e.Index, e.Op, e.Err)
}

// Unwrap returns the underlying validation error.
func (e *BatchError) Unwrap() error { return e.Err }

// ApplyBatch validates and commits a batch of updates atomically: on
// the first invalid update nothing is applied (the returned error is a
// *BatchError naming the offender), otherwise the whole batch becomes
// part of one new snapshot. An empty batch is a no-op.
//
// Concurrent calls group-commit: batches queued while a commit is in
// flight are validated, journalled and advanced together in the next
// round, one snapshot for the whole group. Atomicity stays per batch —
// a batch that fails validation is excluded from its round without
// affecting the others — and the happens-before order of returns
// matches commit order.
func (d *DynamicEngine) ApplyBatch(batch []Update) error {
	_, err := d.commit(batch)
	return err
}

// SetJournal attaches (or with nil detaches) a durable journal. Every
// committed round appends its accepted updates — in commit order — to
// the journal before publishing the new snapshot, so a crash after the
// append can always be replayed past it. Attach before accepting
// writes; swapping mid-stream leaves the journal with a gap.
func (d *DynamicEngine) SetJournal(j JournalAppender) {
	d.commitMu.Lock()
	d.journal = j
	d.commitMu.Unlock()
}

// SetCommitObserver registers fn (nil to detach), called by each
// commit round's leader after the round is accepted — journalled and
// about to publish — with the round's coalescing shape. The serving
// layer uses it to feed group-commit batch-size histograms. fn runs
// under the commit lock: it must be fast and must not block on I/O or
// call back into the engine.
func (d *DynamicEngine) SetCommitObserver(fn func(CommitInfo)) {
	d.commitMu.Lock()
	d.commitObs = fn
	d.commitMu.Unlock()
}

// AttributeKind names the engine's attribute family — "geo",
// "keywords", "weighted-keywords", or "custom" for user-supplied
// metrics. An update journal stores attribute payloads in the
// kind-specific text format, so a journal opened for this engine must
// use the same kind (see updates.OpenJournal).
func (d *DynamicEngine) AttributeKind() string {
	switch d.attrs.Metric().(type) {
	case similarity.Euclidean:
		return "geo"
	case similarity.Jaccard:
		return "keywords"
	case similarity.WeightedJaccard:
		return "weighted-keywords"
	default:
		return "custom"
	}
}

// commit enqueues one batch and returns its outcome and the vertex
// count right after it (for AddVertex). The first caller to take
// commitMu leads the round and commits every queued batch at once;
// the rest find their result already delivered.
func (d *DynamicEngine) commit(batch []Update) (int, error) {
	req := &commitReq{batch: batch, done: make(chan error, 1)}
	d.pendMu.Lock()
	d.pending = append(d.pending, req)
	d.pendMu.Unlock()

	d.commitMu.Lock()
	// A previous leader may have committed this request already; its
	// send on done happened before it released commitMu, so the result
	// is guaranteed visible here.
	select {
	case err := <-req.done:
		d.commitMu.Unlock()
		return req.newN, err
	default:
	}
	d.pendMu.Lock()
	group := d.pending
	d.pending = nil
	d.pendMu.Unlock()
	d.commitGroup(group) // delivers every request's outcome, ours included
	d.commitMu.Unlock()
	return req.newN, <-req.done
}

// applyToDelta validates one batch against the staged delta, recording
// attribute updates aside. On error the delta is dirty: the round must
// restart from a fresh one.
func applyToDelta(delta *graph.Delta, batch []Update, attrUps *[]Update) error {
	for i, up := range batch {
		var err error
		switch up.Op {
		case OpAddVertex:
			delta.AddVertex()
		case OpAddEdge:
			err = delta.AddEdge(up.U, up.V)
		case OpRemoveEdge:
			err = delta.RemoveEdge(up.U, up.V)
		case OpSetAttributes:
			if up.U < 0 || int(up.U) >= delta.N() {
				err = fmt.Errorf("krcore: vertex %d out of range [0,%d)", up.U, delta.N())
			} else {
				*attrUps = append(*attrUps, up)
			}
		default:
			err = fmt.Errorf("krcore: unknown update op %d", up.Op)
		}
		if err != nil {
			return &BatchError{Index: i, Op: up.Op, Err: err}
		}
	}
	return nil
}

// commitGroup commits one round: validate and merge every queued batch
// into a single delta, append the accepted updates to the journal, and
// publish one new snapshot. Caller holds commitMu — the leader is the
// only writer of d.g/d.eng/d.attrs until it returns, which is what
// lets the structure-only path read them without d.mu.
func (d *DynamicEngine) commitGroup(group []*commitReq) {
	errs := make([]error, len(group))
	var delta *graph.Delta
	var attrUps []Update
	// Merge with per-batch atomicity: a batch failing validation is
	// excluded and the merge restarts, because later batches may
	// reference vertices the excluded one would have added. Each restart
	// excludes at least one batch, so the loop terminates.
restart:
	delta = graph.NewDelta(d.g)
	attrUps = attrUps[:0]
	for gi, req := range group {
		if errs[gi] != nil {
			continue
		}
		if err := applyToDelta(delta, req.batch, &attrUps); err != nil {
			errs[gi] = err
			goto restart
		}
		req.newN = delta.N()
	}

	// One journal append for the round, before any state changes: the
	// accepted updates in commit order. Covers effective no-ops too —
	// the journal offset equals the accepted-update count.
	var ops []Update
	accepted := 0
	for gi, req := range group {
		if errs[gi] == nil {
			accepted++
			ops = append(ops, req.batch...)
		}
	}
	if d.journal != nil && len(ops) > 0 {
		if err := d.journal.AppendBatch(ops); err != nil {
			jerr := fmt.Errorf("krcore: journal append failed, batch not applied: %w", err)
			for gi := range group {
				if errs[gi] == nil {
					errs[gi] = jerr
				}
			}
			deliver(group, errs)
			return
		}
	}

	countGroup := func() {
		if accepted > 0 {
			d.stats.GroupCommits++
		}
		for gi, req := range group {
			if errs[gi] == nil {
				d.stats.Batches++
				d.stats.Updates += int64(len(req.batch))
			}
		}
	}

	// observeCommit reports the accepted round's coalescing shape to the
	// registered observer (leader-only, under commitMu — never d.mu).
	observeCommit := func() {
		if d.commitObs != nil && accepted > 0 {
			d.commitObs(CommitInfo{Batches: accepted, Ops: len(ops)})
		}
	}

	if delta.Empty() && len(attrUps) == 0 {
		// Effective no-op round: keep the current snapshot.
		d.mu.Lock()
		countGroup()
		d.mu.Unlock()
		observeCommit()
		deliver(group, errs)
		return
	}

	add, del := delta.Diff()
	grown := delta.N() > d.g.N()
	g2 := d.g.Apply(delta)
	attrVerts := make([]int32, 0, len(attrUps))
	attrSeen := map[int32]bool{}
	for _, up := range attrUps {
		if !attrSeen[up.U] {
			attrSeen[up.U] = true
			attrVerts = append(attrVerts, up.U)
		}
	}
	touched := make([]bool, g2.N())
	for _, v := range delta.Touched() {
		touched[v] = true
	}
	for _, u := range attrVerts {
		touched[u] = true
	}
	adv := advanceDelta{
		g2:        g2,
		addPairs:  add,
		delPairs:  del,
		attrVerts: attrVerts,
		grown:     grown,
		touched:   touched,
	}

	publish := func(ne *Engine, ast advanceStats) {
		d.g, d.eng = g2, ne
		countGroup()
		d.stats.Version++
		d.stats.IndexesKept += int64(ast.indexesKept)
		d.stats.IndexesRebuilt += int64(ast.indexesRebuilt)
		d.stats.ComponentsReused += int64(ast.componentsReused)
		d.stats.ComponentsRebuilt += int64(ast.componentsRebuilt)
		d.stats.PatchesIncremental += int64(ast.patchesIncremental)
		d.stats.PatchesFull += int64(ast.patchesFull)
		d.stats.CoreVisited += int64(ast.coreVisited)
	}

	if len(attrUps) == 0 && !grown {
		// Structure-only round: the attribute store is untouched, so the
		// whole snapshot rebuild runs outside d.mu — queries keep
		// serving the current snapshot — and the lock is held only for
		// the pointer swap.
		if d.preAdvance != nil {
			d.preAdvance()
		}
		ne, ast := d.eng.advance(adv)
		d.mu.Lock()
		publish(ne, ast)
		d.mu.Unlock()
	} else {
		// Attribute or growth round: the store mutations below are read
		// by concurrent cache-miss preparation, so the rebuild stays
		// under the write lock.
		d.mu.Lock()
		if grown {
			d.attrs.Grow(g2.N())
		}
		for _, up := range attrUps {
			d.attrs.SetAttributes(up.U, up.Attrs)
		}
		ne, ast := d.eng.advance(adv)
		publish(ne, ast)
		d.mu.Unlock()
	}
	observeCommit()
	deliver(group, errs)
}

// deliver sends each request its outcome. Channels are buffered, so
// the leader never blocks; sends complete before commitMu is released,
// which is what makes the fast path in commit race-free.
func deliver(group []*commitReq, errs []error) {
	for gi, req := range group {
		req.done <- errs[gi]
	}
}

// Graph returns the current immutable graph snapshot. It stays valid
// (and unchanged) however many updates follow.
func (d *DynamicEngine) Graph() *Graph {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.g
}

// N returns the current vertex count.
func (d *DynamicEngine) N() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.g.N()
}

// M returns the current undirected edge count.
func (d *DynamicEngine) M() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.g.M()
}

// Enumerate returns all maximal (k,r)-cores of the current snapshot
// (see Engine.Enumerate).
func (d *DynamicEngine) Enumerate(k int, r float64, opt EnumOptions) (*Result, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.eng.Enumerate(k, r, opt)
}

// EnumerateContaining returns the maximal (k,r)-cores containing v in
// the current snapshot (see Engine.EnumerateContaining).
func (d *DynamicEngine) EnumerateContaining(k int, r float64, v int32, opt EnumOptions) (*Result, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.eng.EnumerateContaining(k, r, v, opt)
}

// FindMaximum returns the maximum (k,r)-core of the current snapshot
// (see Engine.FindMaximum).
func (d *DynamicEngine) FindMaximum(k int, r float64, opt MaxOptions) (*Result, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.eng.FindMaximum(k, r, opt)
}

// EnumerateContext is Enumerate bound to a request context (see
// Engine.EnumerateContext). The context also covers the time the query
// may spend waiting for an in-flight mutation to publish its snapshot.
func (d *DynamicEngine) EnumerateContext(ctx context.Context, k int, r float64, opt EnumOptions) (*Result, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.eng.EnumerateContext(ctx, k, r, opt)
}

// EnumerateContainingContext is EnumerateContaining bound to a request
// context (see Engine.EnumerateContext).
func (d *DynamicEngine) EnumerateContainingContext(ctx context.Context, k int, r float64, v int32, opt EnumOptions) (*Result, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.eng.EnumerateContainingContext(ctx, k, r, v, opt)
}

// FindMaximumContext is FindMaximum bound to a request context (see
// Engine.EnumerateContext).
func (d *DynamicEngine) FindMaximumContext(ctx context.Context, k int, r float64, opt MaxOptions) (*Result, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.eng.FindMaximumContext(ctx, k, r, opt)
}

// Warm prepares the (k,r) setting ahead of traffic; subsequent updates
// keep it prepared through scoped invalidation.
func (d *DynamicEngine) Warm(k int, r float64) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.eng.Warm(k, r)
}

// Oracle returns the current snapshot's similarity oracle at threshold
// r (see Engine.Oracle).
func (d *DynamicEngine) Oracle(r float64) (*Oracle, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.eng.Oracle(r)
}

// Stats reports the serving cache counters. Hit and miss counts carry
// across updates, so Hits+Misses always equals the number of queries
// answered since construction.
func (d *DynamicEngine) Stats() EngineStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.eng.Stats()
}

// SettingsStats reports the current snapshot's per-(k,r) cache
// traffic (see Engine.SettingsStats). Counts persist across updates
// for every setting the scoped invalidation carries over.
func (d *DynamicEngine) SettingsStats() []SettingStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.eng.SettingsStats()
}

// DynamicStats reports update activity and invalidation reuse counters.
func (d *DynamicEngine) DynamicStats() DynamicStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.stats
}
