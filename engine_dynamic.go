package krcore

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"krcore/internal/graph"
)

// UpdateOp identifies one mutation kind in an Update.
type UpdateOp uint8

const (
	// OpAddEdge inserts the undirected edge (U,V); inserting an existing
	// edge is a no-op.
	OpAddEdge UpdateOp = iota
	// OpRemoveEdge deletes the undirected edge (U,V); deleting a missing
	// edge is a no-op.
	OpRemoveEdge
	// OpAddVertex appends one isolated vertex with zero-valued
	// attributes; edges to it may follow in the same batch.
	OpAddVertex
	// OpSetAttributes replaces the attributes of vertex U with Attrs.
	OpSetAttributes
)

// String returns the update-stream mnemonic of the operation.
func (op UpdateOp) String() string {
	switch op {
	case OpAddEdge:
		return "add-edge"
	case OpRemoveEdge:
		return "remove-edge"
	case OpAddVertex:
		return "add-vertex"
	case OpSetAttributes:
		return "set-attributes"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// VertexAttributes carries one vertex's new attributes for whichever
// attribute kind the engine serves: X/Y for geo stores, Keys for
// keyword stores, Keys+Weights for weighted keyword stores. Fields
// irrelevant to the store's kind are ignored.
type VertexAttributes struct {
	X, Y    float64
	Keys    []int32
	Weights []float64
}

// Update is one mutation of a DynamicEngine's graph or attributes.
// Within a batch, updates validate and take effect in order, so an
// OpAddVertex may be followed by edges to the new vertex.
type Update struct {
	Op    UpdateOp
	U, V  int32
	Attrs VertexAttributes
}

// AddEdgeUpdate returns an OpAddEdge update.
func AddEdgeUpdate(u, v int32) Update { return Update{Op: OpAddEdge, U: u, V: v} }

// RemoveEdgeUpdate returns an OpRemoveEdge update.
func RemoveEdgeUpdate(u, v int32) Update { return Update{Op: OpRemoveEdge, U: u, V: v} }

// AddVertexUpdate returns an OpAddVertex update.
func AddVertexUpdate() Update { return Update{Op: OpAddVertex} }

// SetAttributesUpdate returns an OpSetAttributes update for vertex u.
func SetAttributesUpdate(u int32, a VertexAttributes) Update {
	return Update{Op: OpSetAttributes, U: u, Attrs: a}
}

// DynamicAttributes is the mutable attribute store a DynamicEngine
// maintains alongside its graph. GeoAttributes, KeywordAttributes and
// WeightedKeywordAttributes implement it; adapters over custom metrics
// only need these three methods.
type DynamicAttributes interface {
	// Metric exposes the similarity metric reading the store.
	Metric() Metric
	// Grow extends the store to n vertices with zero-valued attributes
	// (no-op when already at least that large).
	Grow(n int)
	// SetAttributes replaces the attributes of vertex u with the
	// kind-relevant fields of a.
	SetAttributes(u int32, a VertexAttributes)
}

// DynamicStats counts a DynamicEngine's update activity and how much
// cached state its scoped invalidation preserved.
type DynamicStats struct {
	// Updates is the number of individual operations accepted.
	Updates int64
	// Batches is the number of ApplyBatch commits (no-op batches
	// included).
	Batches int64
	// Version counts published graph snapshots; a no-op batch does not
	// bump it.
	Version int64
	// IndexesKept / IndexesRebuilt count per-threshold similarity
	// indexes carried across updates versus rebuilt (structure-only
	// changes keep them; attribute changes and vertex growth rebuild).
	IndexesKept, IndexesRebuilt int64
	// ComponentsReused / ComponentsRebuilt count prepared (k,r)
	// candidate components carried across updates versus rebuilt.
	ComponentsReused, ComponentsRebuilt int64
}

// DynamicEngine is the mutable serving layer: an Engine that accepts
// live graph and attribute updates — AddEdge, RemoveEdge, AddVertex,
// SetAttributes, batched through ApplyBatch — while staying answerable
// for (k,r) queries. Social networks are never static; this layer makes
// a mutation cost incremental work instead of discarding every cached
// oracle, similarity index, filtered graph and prepared component.
//
// Every committed batch publishes a fresh immutable snapshot (graph
// plus engine) built by scoped invalidation: structure-only changes
// keep the per-r similarity indexes; the per-r filtered graphs are
// patched by classifying only the new or changed pairs; and prepared
// (k,r) components untouched by the delta are reused verbatim. Results
// are always bit-identical to a from-scratch Engine over the mutated
// graph — the differential test harness enforces exactly that.
//
// Concurrency: query methods take a shared lock and run fully in
// parallel with each other; mutations take the exclusive lock, so a
// batch waits for in-flight queries and blocks queries only while the
// snapshot is advanced (preparation work, never search work). All
// methods are safe for concurrent use.
type DynamicEngine struct {
	mu    sync.RWMutex
	attrs DynamicAttributes
	g     *graph.Graph
	eng   *Engine
	stats DynamicStats
}

// NewDynamicEngine returns a mutable serving engine over the graph and
// attribute store. The store is grown to cover the graph's vertices;
// the engine owns both from here on — mutate them only through engine
// updates, never directly, or cached state will silently diverge.
func NewDynamicEngine(g *Graph, attrs DynamicAttributes) (*DynamicEngine, error) {
	if g == nil {
		return nil, errors.New("krcore: dynamic engine needs a graph")
	}
	if attrs == nil {
		return nil, errors.New("krcore: dynamic engine needs a dynamic attribute store")
	}
	attrs.Grow(g.N())
	return &DynamicEngine{attrs: attrs, g: g, eng: NewEngine(g, attrs.Metric())}, nil
}

// AddEdge inserts the undirected edge (u,v). Inserting an existing edge
// is a no-op; self-loops and out-of-range endpoints are errors.
func (d *DynamicEngine) AddEdge(u, v int32) error {
	return d.ApplyBatch([]Update{AddEdgeUpdate(u, v)})
}

// RemoveEdge deletes the undirected edge (u,v). Deleting a missing edge
// is a no-op; self-loops and out-of-range endpoints are errors.
func (d *DynamicEngine) RemoveEdge(u, v int32) error {
	return d.ApplyBatch([]Update{RemoveEdgeUpdate(u, v)})
}

// AddVertex appends one isolated vertex with zero-valued attributes and
// returns its id.
func (d *DynamicEngine) AddVertex() (int32, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.applyLocked([]Update{AddVertexUpdate()}); err != nil {
		return 0, err
	}
	return int32(d.g.N() - 1), nil
}

// SetAttributes replaces the attributes of vertex u.
func (d *DynamicEngine) SetAttributes(u int32, a VertexAttributes) error {
	return d.ApplyBatch([]Update{SetAttributesUpdate(u, a)})
}

// BatchError is the error a rejected ApplyBatch returns: it names the
// offending update by its index within the batch, so stream-replay
// tooling can map the rejection back to a source position. The whole
// batch is discarded — Index records where validation stopped, not a
// partial-commit boundary.
type BatchError struct {
	// Index is the position of the invalid update within the batch.
	Index int
	// Op is the operation kind of the invalid update.
	Op UpdateOp
	// Err is the underlying validation error.
	Err error
}

// Error implements the error interface.
func (e *BatchError) Error() string {
	return fmt.Sprintf("krcore: update %d (%s): %v", e.Index, e.Op, e.Err)
}

// Unwrap returns the underlying validation error.
func (e *BatchError) Unwrap() error { return e.Err }

// ApplyBatch validates and commits a batch of updates atomically: on
// the first invalid update nothing is applied (the returned error is a
// *BatchError naming the offender), otherwise the whole batch becomes
// one new snapshot (one scoped invalidation, however many operations).
// An empty batch is a no-op.
func (d *DynamicEngine) ApplyBatch(batch []Update) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.applyLocked(batch)
}

// applyLocked is ApplyBatch under d.mu.
func (d *DynamicEngine) applyLocked(batch []Update) error {
	if len(batch) == 0 {
		d.stats.Batches++
		return nil
	}
	delta := graph.NewDelta(d.g)
	var attrUps []Update
	attrSeen := map[int32]bool{}
	for i, up := range batch {
		var err error
		switch up.Op {
		case OpAddVertex:
			delta.AddVertex()
		case OpAddEdge:
			err = delta.AddEdge(up.U, up.V)
		case OpRemoveEdge:
			err = delta.RemoveEdge(up.U, up.V)
		case OpSetAttributes:
			if up.U < 0 || int(up.U) >= delta.N() {
				err = fmt.Errorf("krcore: vertex %d out of range [0,%d)", up.U, delta.N())
			} else {
				attrUps = append(attrUps, up)
				attrSeen[up.U] = true
			}
		default:
			err = fmt.Errorf("krcore: unknown update op %d", up.Op)
		}
		if err != nil {
			return &BatchError{Index: i, Op: up.Op, Err: err}
		}
	}
	d.stats.Batches++
	d.stats.Updates += int64(len(batch))
	if delta.Empty() && len(attrUps) == 0 {
		return nil // effective no-op: keep the current snapshot
	}
	add, del := delta.Diff()
	grown := delta.N() > d.g.N()
	g2 := d.g.Apply(delta)
	if grown {
		d.attrs.Grow(g2.N())
	}
	attrVerts := make([]int32, 0, len(attrSeen))
	for _, up := range attrUps {
		if attrSeen[up.U] {
			attrSeen[up.U] = false
			attrVerts = append(attrVerts, up.U)
		}
		d.attrs.SetAttributes(up.U, up.Attrs)
	}
	touched := make([]bool, g2.N())
	for _, v := range delta.Touched() {
		touched[v] = true
	}
	for _, u := range attrVerts {
		touched[u] = true
	}
	ne, ast := d.eng.advance(advanceDelta{
		g2:        g2,
		addPairs:  add,
		delPairs:  del,
		attrVerts: attrVerts,
		grown:     grown,
		touched:   touched,
	})
	d.g, d.eng = g2, ne
	d.stats.Version++
	d.stats.IndexesKept += int64(ast.indexesKept)
	d.stats.IndexesRebuilt += int64(ast.indexesRebuilt)
	d.stats.ComponentsReused += int64(ast.componentsReused)
	d.stats.ComponentsRebuilt += int64(ast.componentsRebuilt)
	return nil
}

// Graph returns the current immutable graph snapshot. It stays valid
// (and unchanged) however many updates follow.
func (d *DynamicEngine) Graph() *Graph {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.g
}

// N returns the current vertex count.
func (d *DynamicEngine) N() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.g.N()
}

// M returns the current undirected edge count.
func (d *DynamicEngine) M() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.g.M()
}

// Enumerate returns all maximal (k,r)-cores of the current snapshot
// (see Engine.Enumerate).
func (d *DynamicEngine) Enumerate(k int, r float64, opt EnumOptions) (*Result, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.eng.Enumerate(k, r, opt)
}

// EnumerateContaining returns the maximal (k,r)-cores containing v in
// the current snapshot (see Engine.EnumerateContaining).
func (d *DynamicEngine) EnumerateContaining(k int, r float64, v int32, opt EnumOptions) (*Result, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.eng.EnumerateContaining(k, r, v, opt)
}

// FindMaximum returns the maximum (k,r)-core of the current snapshot
// (see Engine.FindMaximum).
func (d *DynamicEngine) FindMaximum(k int, r float64, opt MaxOptions) (*Result, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.eng.FindMaximum(k, r, opt)
}

// EnumerateContext is Enumerate bound to a request context (see
// Engine.EnumerateContext). The context also covers the time the query
// may spend waiting for an in-flight mutation to publish its snapshot.
func (d *DynamicEngine) EnumerateContext(ctx context.Context, k int, r float64, opt EnumOptions) (*Result, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.eng.EnumerateContext(ctx, k, r, opt)
}

// EnumerateContainingContext is EnumerateContaining bound to a request
// context (see Engine.EnumerateContext).
func (d *DynamicEngine) EnumerateContainingContext(ctx context.Context, k int, r float64, v int32, opt EnumOptions) (*Result, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.eng.EnumerateContainingContext(ctx, k, r, v, opt)
}

// FindMaximumContext is FindMaximum bound to a request context (see
// Engine.EnumerateContext).
func (d *DynamicEngine) FindMaximumContext(ctx context.Context, k int, r float64, opt MaxOptions) (*Result, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.eng.FindMaximumContext(ctx, k, r, opt)
}

// Warm prepares the (k,r) setting ahead of traffic; subsequent updates
// keep it prepared through scoped invalidation.
func (d *DynamicEngine) Warm(k int, r float64) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.eng.Warm(k, r)
}

// Oracle returns the current snapshot's similarity oracle at threshold
// r (see Engine.Oracle).
func (d *DynamicEngine) Oracle(r float64) (*Oracle, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.eng.Oracle(r)
}

// Stats reports the serving cache counters. Hit and miss counts carry
// across updates, so Hits+Misses always equals the number of queries
// answered since construction.
func (d *DynamicEngine) Stats() EngineStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.eng.Stats()
}

// DynamicStats reports update activity and invalidation reuse counters.
func (d *DynamicEngine) DynamicStats() DynamicStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.stats
}
