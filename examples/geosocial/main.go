// Geosocial reproduces the paper's Gowalla case study (Figure 6): a
// structurally connected group of check-in users splits into two
// maximal (k,r)-cores 40km apart once locations are constrained to
// r = 10km — the paper's "two groups of users emerge" observation.
// It then sweeps r to show how the groups merge as the threshold grows.
//
// Run with:
//
//	go run ./examples/geosocial
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"krcore"
	"krcore/internal/dataset"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run reproduces the case study and prints it to w; split from main so
// the smoke test can check the output.
func run(w io.Writer) error {
	d, k, r := dataset.GeosocialCase()
	fmt.Fprintf(w, "geo-social network: %d users, %d friendships\n", d.Graph.N(), d.Graph.M())

	params := krcore.Params{K: k, Oracle: d.Oracle(r)}
	res, err := krcore.EnumerateMaximal(d.Graph, params, krcore.EnumOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nk=%d, r=%.0fkm: %d maximal (k,r)-cores\n", k, r, len(res.Cores))
	for i, c := range res.Cores {
		cx, cy := centroid(d, c)
		fmt.Fprintf(w, "  group %d: %d users around (%.1f, %.1f)km\n", i+1, len(c), cx, cy)
	}

	fmt.Fprintln(w, "\nsweeping the distance threshold:")
	for _, rv := range []float64{5, 10, 20, 50, 100} {
		sweep, err := krcore.EnumerateMaximal(d.Graph,
			krcore.Params{K: k, Oracle: d.Oracle(rv)}, krcore.EnumOptions{})
		if err != nil {
			return err
		}
		stats := sweep.Summarize()
		fmt.Fprintf(w, "  r=%4.0fkm: %d group(s), largest %d users\n",
			rv, stats.Count, stats.MaxSize)
	}
	fmt.Fprintln(w, "\nat small r the two cities separate; at large r engagement")
	fmt.Fprintln(w, "alone decides and the groups merge — exactly Figure 6.")
	return nil
}

func centroid(d *dataset.Dataset, users []int32) (x, y float64) {
	for _, u := range users {
		p := d.Geo.Vertex(u)
		x += p.X
		y += p.Y
	}
	n := float64(len(users))
	return x / n, y / n
}
