package main

import (
	"strings"
	"testing"
)

// TestGeosocialOutput runs the case study end to end and checks the
// Figure 6 structure: two 15-user city groups at r=10km that merge as
// the threshold grows.
func TestGeosocialOutput(t *testing.T) {
	var out strings.Builder
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"geo-social network: 80 users, 319 friendships",
		"k=10, r=10km: 2 maximal (k,r)-cores",
		"group 1: 15 users around",
		"group 2: 15 users around",
		"sweeping the distance threshold:",
		"r= 100km: 1 group(s), largest 30 users",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
