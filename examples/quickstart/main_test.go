package main

import (
	"strings"
	"testing"
)

// TestQuickstartOutput runs the example end to end and checks the
// expected groups, so the quickstart cannot silently rot.
func TestQuickstartOutput(t *testing.T) {
	var out strings.Builder
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"maximal (2, 0.4)-cores: 2",
		"group 1: [0 1 2 3 4]",
		"group 2: [5 6 7 8]",
		"maximum (2, 0.4)-core: [0 1 2 3 4] (5 members)",
		"plain 2-core vertices: 13 of 17",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
