// Quickstart: build the paper's Figure 1 example by hand and compute
// its maximal and maximum (k,r)-cores through the public krcore API.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"krcore"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run builds the example network and prints its cores to w; split from
// main so the smoke test can check the output.
func run(w io.Writer) error {
	// A small collaboration network. Vertices 0-4 form a tight group
	// (G1), vertices 4-8 a second group (G2) bridged through vertex 4,
	// vertices 9-12 collaborate but have nothing in common (G5), and
	// vertices 13-16 are like-minded but barely collaborate (G4).
	const n = 17
	b := krcore.NewGraphBuilder(n)
	cliques := [][]int32{{0, 1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}}
	for _, group := range cliques {
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				b.AddEdge(group[i], group[j])
			}
		}
	}
	b.AddEdge(4, 5) // the structural bridge between G1 and G2
	b.AddEdge(13, 14)
	b.AddEdge(14, 15)
	b.AddEdge(15, 16)
	g := b.Build()

	// Each user has a set of interest keywords. Groups share interests;
	// the G5 members do not.
	kw := krcore.NewKeywordAttributes(n)
	for _, v := range []int32{0, 1, 2, 3, 4} {
		kw.Set(v, []int32{1, 2, 3, v + 100})
	}
	for _, v := range []int32{5, 6, 7, 8} {
		kw.Set(v, []int32{10, 11, 12, v + 100})
	}
	for i, v := range []int32{9, 10, 11, 12} {
		kw.Set(v, []int32{int32(20 + 10*i), int32(21 + 10*i)})
	}
	for _, v := range []int32{13, 14, 15, 16} {
		kw.Set(v, []int32{30, 31, 32})
	}

	params := krcore.Params{
		K:      2,                      // everyone needs 2 in-group collaborators
		Oracle: kw.JaccardAtLeast(0.4), // and interests overlapping >= 0.4
	}

	res, err := krcore.EnumerateMaximal(g, params, krcore.EnumOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "maximal (2, 0.4)-cores: %d\n", len(res.Cores))
	for i, c := range res.Cores {
		fmt.Fprintf(w, "  group %d: %v\n", i+1, c)
	}

	maxRes, err := krcore.FindMaximum(g, params, krcore.MaxOptions{})
	if err != nil {
		return err
	}
	if len(maxRes.Cores) == 1 {
		fmt.Fprintf(w, "maximum (2, 0.4)-core: %v (%d members)\n",
			maxRes.Cores[0], len(maxRes.Cores[0]))
	}

	// For contrast: the classic k-core keeps the dissimilar group G5
	// and glues G1 and G2 together.
	fmt.Fprintf(w, "plain 2-core vertices: %d of %d\n", len(krcore.KCore(g, 2)), n)
	return nil
}
