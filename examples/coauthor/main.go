// Coauthor reproduces the paper's DBLP case study (Figure 5): on a
// co-author network with weighted venue lists, two research groups that
// share a single bridge author emerge as two overlapping maximal
// (k,r)-cores, while the classic k-core merges everything into one
// blob. The maximum (k,r)-core is the larger coherent project team.
//
// Run with:
//
//	go run ./examples/coauthor
package main

import (
	"fmt"
	"log"

	"krcore"
	"krcore/internal/dataset"
)

func main() {
	d, k, r := dataset.CoauthorCase()
	fmt.Printf("co-author network: %d authors, %d co-author pairs\n",
		d.Graph.N(), d.Graph.M())
	fmt.Printf("planted groups: %d and %d authors sharing one bridge author\n",
		len(d.Communities[0]), len(d.Communities[1]))

	params := krcore.Params{K: k, Oracle: d.Oracle(r)}
	res, err := krcore.EnumerateMaximal(d.Graph, params, krcore.EnumOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmaximal (%d, %.2f)-cores: %d\n", k, r, len(res.Cores))
	for i, c := range res.Cores {
		bridge := ""
		for _, v := range c {
			if v == 0 {
				bridge = " (includes the bridge author, like Dr. Wilder in the paper)"
			}
		}
		fmt.Printf("  research group %d: %d authors%s\n", i+1, len(c), bridge)
	}

	maxRes, err := krcore.FindMaximum(d.Graph, params, krcore.MaxOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if len(maxRes.Cores) == 1 {
		fmt.Printf("\nmaximum (k,r)-core: %d authors — the group an organisation\n", len(maxRes.Cores[0]))
		fmt.Println("would sponsor for sustained collaboration (paper: the Ensembl team)")
	}

	// Contrast with structure only: with the threshold at 0 every pair
	// counts as similar, so the result degenerates to plain k-cores.
	merged, err := krcore.EnumerateMaximal(d.Graph,
		krcore.Params{K: k, Oracle: d.Oracle(0)}, krcore.EnumOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwithout the similarity constraint the same authors form %d group(s)\n",
		len(merged.Cores))
	fmt.Println("— engagement alone cannot separate the two research areas.")
}
