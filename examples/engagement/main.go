// Engagement plays out the paper's introduction scenario: an
// organisation wants to sponsor groups that will stay engaged in a
// collaborative activity. It loads the DBLP-style co-author network,
// sweeps the engagement threshold k, and reports how the candidate
// groups (maximal (k,r)-cores) and the best sponsorship target (the
// maximum (k,r)-core) evolve — including the contrast with plain
// k-cores, which ignore shared background.
//
// Run with:
//
//	go run ./examples/engagement
package main

import (
	"fmt"
	"log"
	"time"

	"krcore"
	"krcore/internal/dataset"
)

func main() {
	d, err := dataset.Load("dblp")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("co-author network: %d authors, %d edges\n", d.Graph.N(), d.Graph.M())

	// Calibrate the similarity threshold the way the paper does: take
	// the top 3 permille of the pairwise similarity distribution.
	r := d.TopPermille(3)
	fmt.Printf("similarity threshold (top 3 permille): %.3f\n\n", r)

	fmt.Println("    k   candidate groups   largest   avg size   plain k-core size")
	for k := 6; k <= 16; k += 2 {
		params := krcore.Params{K: k, Oracle: d.Oracle(r)}
		res, err := krcore.EnumerateMaximal(d.Graph, params, krcore.EnumOptions{
			Limits: krcore.Limits{Deadline: time.Now().Add(30 * time.Second)},
		})
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summarize()
		kcoreSize := len(krcore.KCore(d.Graph, k))
		fmt.Printf("  %3d   %16d   %7d   %8.1f   %17d\n",
			k, s.Count, s.MaxSize, s.AvgSize, kcoreSize)
	}

	// The sponsorship decision: the maximum (k,r)-core at the working
	// point k=10.
	params := krcore.Params{K: 10, Oracle: d.Oracle(r)}
	maxRes, err := krcore.FindMaximum(d.Graph, params, krcore.MaxOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if len(maxRes.Cores) == 1 {
		core := maxRes.Cores[0]
		fmt.Printf("\nsponsor this group: %d authors, every member has >= 10\n", len(core))
		fmt.Println("collaborators inside the group and a shared research background —")
		fmt.Println("the engaged AND similar group the introduction argues for.")
	}
}
