package krcore_test

import (
	"fmt"

	"krcore"
)

// Example_dynamicEngine shows live mutation of a served graph: the
// DynamicEngine accepts edge and attribute updates while staying
// answerable for (k,r) queries, and its scoped invalidation keeps
// results bit-identical to a from-scratch engine over the mutated
// graph.
func Example_dynamicEngine() {
	// Two dense friend groups bridged by one edge, as in ExampleEngine.
	b := krcore.NewGraphBuilder(9)
	groups := [][]int32{{0, 1, 2, 3, 4}, {5, 6, 7, 8}}
	for _, g := range groups {
		for i := 0; i < len(g); i++ {
			for j := i + 1; j < len(g); j++ {
				b.AddEdge(g[i], g[j])
			}
		}
	}
	b.AddEdge(4, 5)

	// Group one lives in Austin, group two 40km away.
	geo := krcore.NewGeoAttributes(9)
	for _, v := range groups[0] {
		geo.Set(v, 0, float64(v))
	}
	for _, v := range groups[1] {
		geo.Set(v, 40, float64(v))
	}

	eng, err := krcore.NewDynamicEngine(b.Build(), geo)
	if err != nil {
		panic(err)
	}
	res, _ := eng.Enumerate(3, 10, krcore.EnumOptions{})
	fmt.Printf("before: %d groups of sustained similar friends\n", len(res.Cores))

	// A new user joins near Austin and befriends most of group one.
	id, err := eng.AddVertex()
	if err != nil {
		panic(err)
	}
	err = eng.ApplyBatch([]krcore.Update{
		krcore.SetAttributesUpdate(id, krcore.VertexAttributes{X: 1, Y: 2}),
		krcore.AddEdgeUpdate(id, 0),
		krcore.AddEdgeUpdate(id, 1),
		krcore.AddEdgeUpdate(id, 2),
		krcore.AddEdgeUpdate(id, 3),
	})
	if err != nil {
		panic(err)
	}
	res, _ = eng.Enumerate(3, 10, krcore.EnumOptions{})
	fmt.Printf("after join: largest group has %d members\n", len(res.Cores[0]))

	// User 8 moves to Austin: the distant group loses a member, and the
	// engine reuses every cached component the move did not touch.
	if err := eng.SetAttributes(8, krcore.VertexAttributes{X: 0, Y: 2}); err != nil {
		panic(err)
	}
	res, _ = eng.Enumerate(3, 10, krcore.EnumOptions{})
	sizes := []int{}
	for _, c := range res.Cores {
		sizes = append(sizes, len(c))
	}
	fmt.Printf("after move: group sizes %v\n", sizes)
	// Output:
	// before: 2 groups of sustained similar friends
	// after join: largest group has 6 members
	// after move: group sizes [6]
}
