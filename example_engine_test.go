package krcore_test

import (
	"context"
	"fmt"
	"time"

	"krcore"
)

// ExampleEngine shows the build-once/serve-many pattern: one Engine
// holds the graph and similarity metric, caches the filtered graph per
// threshold r and the prepared candidate components per (k,r), and
// serves concurrent queries without rebuilding shared state.
func ExampleEngine() {
	// Two dense friend groups bridged by one edge.
	b := krcore.NewGraphBuilder(9)
	groups := [][]int32{{0, 1, 2, 3, 4}, {5, 6, 7, 8}}
	for _, g := range groups {
		for i := 0; i < len(g); i++ {
			for j := i + 1; j < len(g); j++ {
				b.AddEdge(g[i], g[j])
			}
		}
	}
	b.AddEdge(4, 5)
	g := b.Build()

	geo := krcore.NewGeoAttributes(9)
	for _, v := range groups[0] {
		geo.Set(v, 0, float64(v)) // downtown
	}
	for _, v := range groups[1] {
		geo.Set(v, 100, float64(v)) // the suburbs
	}

	eng := krcore.NewEngine(g, geo.Metric())

	// The first query at (k=2, r=10) prepares and caches that setting...
	res, _ := eng.Enumerate(2, 10, krcore.EnumOptions{})
	fmt.Println("communities:", len(res.Cores))

	// ...so sweeping other parameters over the same graph, or repeating
	// a query, reuses the cached state (see Engine.Stats).
	maxRes, _ := eng.FindMaximum(2, 10, krcore.MaxOptions{
		Parallelism: 4, // search candidate components concurrently
	})
	fmt.Println("maximum community size:", len(maxRes.Cores[0]))

	// Queries accept per-call limits and context cancellation; limits
	// are global across a query's workers.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	capped, _ := eng.Enumerate(2, 10, krcore.EnumOptions{
		Limits: krcore.Limits{Context: ctx, MaxNodes: 100000},
	})
	fmt.Println("within budget:", !capped.TimedOut)

	st := eng.Stats()
	fmt.Printf("cache: %d settings prepared, %d hits\n", st.Prepared, st.Hits)
	// Output:
	// communities: 2
	// maximum community size: 5
	// within budget: true
	// cache: 1 settings prepared, 2 hits
}
