// Package krcore computes (k,r)-cores on attributed social networks: it
// enumerates all maximal (k,r)-cores and finds the maximum (k,r)-core,
// reproducing "When Engagement Meets Similarity: Efficient (k,r)-Core
// Computation on Social Networks" (Zhang, Zhang, Qin, Zhang, Lin;
// VLDB 2017).
//
// A (k,r)-core is a connected subgraph in which every member has at
// least k neighbours inside the subgraph (the engagement, or structure,
// constraint) and every pair of members is similar with respect to a
// similarity threshold r (the similarity constraint). Both problems are
// NP-hard; this package implements the paper's branch-and-bound searches
// with candidate pruning, candidate retention, early termination,
// maximal checking, the (k,k')-core size bound and the Section 7 search
// orders.
//
// # Quick start
//
//	b := krcore.NewGraphBuilder(5)
//	b.AddEdge(0, 1) // ... add friendships
//	g := b.Build()
//
//	geo := krcore.NewGeoAttributes(5)
//	geo.Set(0, 30.27, -97.74) // ... place users
//
//	res, err := krcore.EnumerateMaximal(g, krcore.Params{
//		K:      2,
//		Oracle: geo.WithinDistance(10), // similar = within 10 km
//	}, krcore.EnumOptions{})
//
// See the examples directory for complete programs.
package krcore

import (
	"krcore/internal/attr"
	"krcore/internal/core"
	"krcore/internal/graph"
	"krcore/internal/kcore"
	"krcore/internal/similarity"
	"krcore/internal/simindex"
)

// Graph is an immutable undirected simple graph with vertices 0..N-1.
type Graph = graph.Graph

// GraphBuilder accumulates edges for a Graph.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for a graph with n vertices.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// Params defines a (k,r)-core problem: the engagement threshold K and
// the similarity Oracle (metric plus threshold r).
type Params = core.Params

// Oracle answers thresholded pairwise similarity queries.
type Oracle = similarity.Oracle

// Metric scores vertex pairs; see Jaccard, WeightedJaccard and
// Euclidean constructors on the attribute stores.
type Metric = similarity.Metric

// Result reports the cores found by a search along with search effort
// and time-out information.
type Result = core.Result

// Stats summarises an enumeration (core count, maximum and average
// size), as plotted in the paper's Figure 7.
type Stats = core.Stats

// EnumOptions configures EnumerateMaximal. The zero value is the
// paper's full AdvEnum configuration; see the fields for ablations.
type EnumOptions = core.EnumOptions

// MaxOptions configures FindMaximum. The zero value is the paper's full
// AdvMax configuration; set Parallelism to search candidate components
// concurrently with a shared incumbent.
type MaxOptions = core.MaxOptions

// CliqueOptions configures the CliquePlus baseline.
type CliqueOptions = core.CliqueOptions

// Limits bounds a search by deadline, node count or context
// cancellation. Limits are global: with Parallelism above 1, MaxNodes
// caps the total node count across all workers (never per worker) and
// Result.Nodes never exceeds it.
type Limits = core.Limits

// Search order constants (Section 7 of the paper).
const (
	OrderDelta1ThenDelta2 = core.OrderDelta1ThenDelta2
	OrderLambdaDelta      = core.OrderLambdaDelta
	OrderDegree           = core.OrderDegree
	OrderRandom           = core.OrderRandom
	OrderDelta1           = core.OrderDelta1
	OrderDelta2           = core.OrderDelta2
)

// Size upper bounds for the maximum search (Section 6.2).
const (
	BoundNaive       = core.BoundNaive
	BoundColor       = core.BoundColor
	BoundKcore       = core.BoundKcore
	BoundColorKcore  = core.BoundColorKcore
	BoundDoubleKcore = core.BoundDoubleKcore
)

// Branch orders for the maximum search (Section 7.2).
const (
	BranchAdaptive    = core.BranchAdaptive
	BranchExpandFirst = core.BranchExpandFirst
	BranchShrinkFirst = core.BranchShrinkFirst
)

// EnumerateMaximal returns all maximal (k,r)-cores of g (AdvEnum,
// Algorithm 3 with Theorems 2-6).
func EnumerateMaximal(g *Graph, p Params, opt EnumOptions) (*Result, error) {
	return core.Enumerate(g, p, opt)
}

// EnumerateContaining returns the maximal (k,r)-cores that contain the
// query vertex v — the community-search flavour of the problem: "which
// sustainable groups is this user part of?".
func EnumerateContaining(g *Graph, p Params, v int32, opt EnumOptions) (*Result, error) {
	return core.EnumerateContaining(g, p, v, opt)
}

// FindMaximum returns the maximum (k,r)-core of g (AdvMax, Algorithm 5
// with the (k,k')-core bound). Result.Cores is empty when no core
// exists.
func FindMaximum(g *Graph, p Params, opt MaxOptions) (*Result, error) {
	return core.FindMaximum(g, p, opt)
}

// CliquePlus runs the clique-based baseline of Section 3 (for
// comparison; EnumerateMaximal is faster).
func CliquePlus(g *Graph, p Params, opt CliqueOptions) (*Result, error) {
	return core.CliquePlus(g, p, opt)
}

// CoreNumbers returns the classic k-core number of every vertex
// (Batagelj-Zaversnik), the structural half of the model.
func CoreNumbers(g *Graph) []int { return kcore.Decompose(g) }

// KCore returns the vertices of the structural k-core of g.
func KCore(g *Graph, k int) []int32 { return kcore.KCore(g, k) }

// GeoAttributes stores one 2-D point per vertex and builds Euclidean
// distance oracles ("similar = within r kilometres").
type GeoAttributes struct{ store *attr.Geo }

// NewGeoAttributes returns a geo attribute store for n vertices.
func NewGeoAttributes(n int) *GeoAttributes {
	return &GeoAttributes{store: attr.NewGeo(n)}
}

// Set places vertex u at (x, y).
func (a *GeoAttributes) Set(u int32, x, y float64) {
	a.store.SetVertex(u, attr.Point{X: x, Y: y})
}

// WithinDistance returns an oracle that deems two vertices similar when
// their Euclidean distance is at most r.
func (a *GeoAttributes) WithinDistance(r float64) *Oracle {
	return similarity.NewOracle(similarity.Euclidean{Store: a.store}, r)
}

// Metric exposes the raw Euclidean distance metric (for Engine
// construction).
func (a *GeoAttributes) Metric() Metric { return similarity.Euclidean{Store: a.store} }

// Grow extends the store to n vertices at the origin; part of the
// DynamicAttributes interface.
func (a *GeoAttributes) Grow(n int) { a.store.Grow(n) }

// SetAttributes places u at (v.X, v.Y); part of the DynamicAttributes
// interface.
func (a *GeoAttributes) SetAttributes(u int32, v VertexAttributes) {
	a.store.SetVertex(u, attr.Point{X: v.X, Y: v.Y})
}

// KeywordAttributes stores one keyword set per vertex and builds
// Jaccard similarity oracles.
type KeywordAttributes struct{ store *attr.Keywords }

// NewKeywordAttributes returns a keyword attribute store for n vertices.
func NewKeywordAttributes(n int) *KeywordAttributes {
	return &KeywordAttributes{store: attr.NewKeywords(n)}
}

// Set assigns the keyword ids of vertex u.
func (a *KeywordAttributes) Set(u int32, keywords []int32) {
	a.store.SetVertex(u, keywords)
}

// JaccardAtLeast returns an oracle that deems two vertices similar when
// the Jaccard similarity of their keyword sets is at least r.
func (a *KeywordAttributes) JaccardAtLeast(r float64) *Oracle {
	return similarity.NewOracle(similarity.Jaccard{Store: a.store}, r)
}

// Metric exposes the raw Jaccard metric (for threshold calibration).
func (a *KeywordAttributes) Metric() Metric { return similarity.Jaccard{Store: a.store} }

// Grow extends the store to n vertices with empty keyword sets; part of
// the DynamicAttributes interface.
func (a *KeywordAttributes) Grow(n int) { a.store.Grow(n) }

// SetAttributes assigns v.Keys as the keyword set of u; part of the
// DynamicAttributes interface.
func (a *KeywordAttributes) SetAttributes(u int32, v VertexAttributes) {
	a.store.SetVertex(u, append([]int32(nil), v.Keys...))
}

// WeightedKeywordAttributes stores keyword->weight lists per vertex
// (e.g. counted conferences) and builds weighted-Jaccard oracles, the
// similarity the paper uses for DBLP and Pokec.
type WeightedKeywordAttributes struct{ store *attr.Weighted }

// NewWeightedKeywordAttributes returns a weighted keyword store for n
// vertices.
func NewWeightedKeywordAttributes(n int) *WeightedKeywordAttributes {
	return &WeightedKeywordAttributes{store: attr.NewWeighted(n)}
}

// Set assigns the (keyword, weight) list of vertex u.
func (a *WeightedKeywordAttributes) Set(u int32, keys []int32, weights []float64) {
	entries := make([]attr.WeightedEntry, 0, len(keys))
	for i := range keys {
		w := 1.0
		if i < len(weights) {
			w = weights[i]
		}
		entries = append(entries, attr.WeightedEntry{Key: keys[i], Weight: w})
	}
	a.store.SetVertex(u, entries)
}

// WeightedJaccardAtLeast returns an oracle with threshold r on the
// weighted Jaccard similarity.
func (a *WeightedKeywordAttributes) WeightedJaccardAtLeast(r float64) *Oracle {
	return similarity.NewOracle(similarity.WeightedJaccard{Store: a.store}, r)
}

// Metric exposes the raw weighted-Jaccard metric (for threshold
// calibration such as TopPermilleThreshold).
func (a *WeightedKeywordAttributes) Metric() Metric {
	return similarity.WeightedJaccard{Store: a.store}
}

// Grow extends the store to n vertices with empty lists; part of the
// DynamicAttributes interface.
func (a *WeightedKeywordAttributes) Grow(n int) { a.store.Grow(n) }

// SetAttributes assigns v.Keys with v.Weights (missing weights default
// to 1) as the weighted keyword list of u; part of the
// DynamicAttributes interface.
func (a *WeightedKeywordAttributes) SetAttributes(u int32, v VertexAttributes) {
	a.Set(u, append([]int32(nil), v.Keys...), v.Weights)
}

// TopPermilleThreshold returns the similarity value at the top p
// permille of the pairwise score distribution over n vertices — the
// paper's "r = top 3‰" parameterisation for DBLP and Pokec.
func TopPermilleThreshold(m Metric, n int, p float64) float64 {
	return similarity.TopPermille(m, n, p, 200000, 12345)
}

// NewOracle builds an oracle from any custom metric at threshold r.
func NewOracle(m Metric, r float64) *Oracle { return similarity.NewOracle(m, r) }

// BulkSimilarity is a bulk similar-pair engine: it materialises the
// thresholded similarity structure of a whole vertex set at once and
// is guaranteed bit-identical to per-pair Oracle.Similar calls. Every
// search builds one on demand; BuildIndex pre-builds it.
type BulkSimilarity = similarity.BulkSource

// BuildIndex pre-builds the bulk similarity index for the oracle and
// attaches it, so that repeated (k,r) searches against the same oracle
// — the serving-layer pattern of answering many (k, r) queries over one
// attributed graph — skip index construction. The index chosen depends
// on the metric: a uniform spatial grid for Euclidean distance, an
// inverted keyword index with prefix-filter bounds for Jaccard and
// weighted Jaccard, and a parallel brute-force engine for custom
// metrics. Build the index after the attribute store is final; it
// snapshots per-vertex statistics.
//
// The returned engine can also be used directly for bulk similar-pair
// queries outside a search.
func BuildIndex(o *Oracle) BulkSimilarity { return simindex.For(o) }
