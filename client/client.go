// Package client is the Go client for the krcored serving daemon: a
// thin, dependency-free wrapper over the JSON-over-HTTP wire format of
// krcore/api, exposing the same query surface as the in-process
// krcore.Engine — Enumerate, EnumerateContaining, FindMaximum, Warm,
// Stats — plus the batch update endpoint of dynamic daemons.
//
// Responses are bit-identical to in-process results: cores arrive as
// the same sorted int32 vertex ids the engine would return. A Client is
// safe for concurrent use; per-call deadlines come from the context
// and, server-side, from Options.Timeout.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"krcore"
	"krcore/api"
)

// Client talks to one krcored daemon.
type Client struct {
	base string
	hc   *http.Client
}

// Option customises a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8420").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx daemon response.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Message is the daemon's error string.
	Message string
	// Leader is the leader base URL carried by a read-only follower's
	// write redirect (503), empty otherwise. See IsReadOnly.
	Leader string
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("krcored: %d: %s", e.StatusCode, e.Message)
}

// IsBusy reports whether the error is an admission-control rejection
// (HTTP 429): the daemon's search slots and queue were full. Busy
// requests are safe to retry after a backoff.
func IsBusy(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusTooManyRequests
}

// Options bounds one query, mirroring the request fields of
// api.QueryRequest. The zero value uses the daemon's defaults.
type Options struct {
	// Parallelism is the worker count within this one query.
	Parallelism int
	// Timeout is the server-side search deadline (clamped by the
	// daemon); the context passed to the call bounds the whole HTTP
	// round-trip independently.
	Timeout time.Duration
	// MaxNodes caps the query's search-tree nodes (clamped by the
	// daemon).
	MaxNodes int64
}

func (o Options) request(k int, r float64) api.QueryRequest {
	ms := o.Timeout.Milliseconds()
	if ms == 0 && o.Timeout > 0 {
		// Sub-millisecond timeouts round up to the wire granularity;
		// truncating to 0 would silently mean "server default".
		ms = 1
	}
	return api.QueryRequest{
		K:           k,
		R:           r,
		Parallelism: o.Parallelism,
		TimeoutMS:   ms,
		MaxNodes:    o.MaxNodes,
	}
}

// do posts one JSON request and decodes the response into out.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encode %s: %w", path, err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("client: %s: %w", path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeAPIError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode %s: %w", path, err)
	}
	return nil
}

// decodeAPIError turns a non-2xx response into an *APIError, reading
// the api.Error body when one is present.
func decodeAPIError(resp *http.Response) *APIError {
	var ae api.Error
	msg := resp.Status
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&ae) == nil && ae.Error != "" {
		msg = ae.Error
	}
	return &APIError{StatusCode: resp.StatusCode, Message: msg, Leader: ae.Leader}
}

// Health checks the daemon's liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	var h api.HealthResponse
	if err := c.do(ctx, http.MethodGet, api.PathHealth, nil, &h); err != nil {
		return err
	}
	if h.Status != "ok" {
		return fmt.Errorf("client: daemon unhealthy: %q", h.Status)
	}
	return nil
}

// Metrics fetches the daemon's Prometheus text-format metric export
// (api.PathMetrics) verbatim — histograms, counters and gauges as
// served to a scraper. Parse individual series with ParseMetrics.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+api.PathMetrics, nil)
	if err != nil {
		return "", fmt.Errorf("client: %s: %w", api.PathMetrics, err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", fmt.Errorf("client: %s: %w", api.PathMetrics, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return "", fmt.Errorf("client: %s: %w", api.PathMetrics, err)
	}
	if resp.StatusCode/100 != 2 {
		return "", &APIError{StatusCode: resp.StatusCode, Message: strings.TrimSpace(string(body))}
	}
	return string(body), nil
}

// ParseMetrics extracts the sample lines of a Prometheus text-format
// export into a flat map from series (metric name plus any label
// block, exactly as rendered — e.g. "krcored_queries_total" or
// `krcored_http_request_seconds_bucket{endpoint="enumerate",le="0.1"}`)
// to sample value. Comment and blank lines are skipped; malformed
// sample lines are ignored rather than failing the scrape.
func ParseMetrics(text string) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out
}

// Stats fetches the daemon's cache and serving counters.
func (c *Client) Stats(ctx context.Context) (*api.StatsResponse, error) {
	var st api.StatsResponse
	if err := c.do(ctx, http.MethodGet, api.PathStats, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Warm prepares the (k,r) setting on the daemon ahead of traffic.
func (c *Client) Warm(ctx context.Context, k int, r float64) error {
	return c.do(ctx, http.MethodPost, api.PathWarm, api.WarmRequest{K: k, R: r}, &api.WarmResponse{})
}

// Enumerate returns all maximal (k,r)-cores at the given setting.
func (c *Client) Enumerate(ctx context.Context, k int, r float64, opt Options) (*api.QueryResponse, error) {
	req := opt.request(k, r)
	var resp api.QueryResponse
	if err := c.do(ctx, http.MethodPost, api.PathEnumerate, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// EnumerateContaining returns the maximal (k,r)-cores containing vertex
// v — the community-search flavour.
func (c *Client) EnumerateContaining(ctx context.Context, k int, r float64, v int32, opt Options) (*api.QueryResponse, error) {
	req := opt.request(k, r)
	req.Vertex = &v
	var resp api.QueryResponse
	if err := c.do(ctx, http.MethodPost, api.PathEnumerate, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// FindMaximum returns the maximum (k,r)-core at the given setting.
func (c *Client) FindMaximum(ctx context.Context, k int, r float64, opt Options) (*api.QueryResponse, error) {
	req := opt.request(k, r)
	var resp api.QueryResponse
	if err := c.do(ctx, http.MethodPost, api.PathMaximum, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ApplyBatch commits one atomic batch of updates on a dynamic daemon:
// either every update commits as one new snapshot or none does (a
// rejected batch returns an *APIError naming the offending update).
func (c *Client) ApplyBatch(ctx context.Context, batch []krcore.Update) (*api.UpdateResponse, error) {
	req := api.UpdateRequest{Updates: make([]api.Update, 0, len(batch))}
	for i, up := range batch {
		wu, err := api.FromUpdate(up)
		if err != nil {
			return nil, fmt.Errorf("client: update %d: %w", i, err)
		}
		req.Updates = append(req.Updates, wu)
	}
	var resp api.UpdateResponse
	if err := c.do(ctx, http.MethodPost, api.PathUpdate, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
