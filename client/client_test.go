package client_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"krcore"
	"krcore/client"
	"krcore/server"
)

// startDaemon serves a small two-cluster geo instance over an
// in-process HTTP server and returns a client plus the mirrored
// in-process engine.
func startDaemon(t *testing.T, dynamic bool) (*client.Client, *krcore.Engine) {
	t.Helper()
	const n = 30
	build := func() (*krcore.Graph, *krcore.GeoAttributes) {
		b := krcore.NewGraphBuilder(n)
		for c := 0; c < 2; c++ {
			base := int32(c * 15)
			for i := int32(0); i < 15; i++ {
				for j := i + 1; j < 15; j++ {
					if (i+j)%4 != 0 {
						b.AddEdge(base+i, base+j)
					}
				}
			}
		}
		g := b.Build()
		geo := krcore.NewGeoAttributes(n)
		for u := int32(0); u < n; u++ {
			geo.Set(u, float64(u/15)*1000, float64(u%15))
		}
		return g, geo
	}
	g, geo := build()
	var backend server.Backend
	if dynamic {
		deng, err := krcore.NewDynamicEngine(g, geo)
		if err != nil {
			t.Fatal(err)
		}
		backend = deng
	} else {
		backend = krcore.NewEngine(g, geo.Metric())
	}
	s, err := server.New(backend, server.Config{Dataset: "toy"})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	g2, geo2 := build()
	return client.New(hs.URL), krcore.NewEngine(g2, geo2.Metric())
}

func TestClientRoundTrip(t *testing.T) {
	c, local := startDaemon(t, false)
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Warm(ctx, 3, 20); err != nil {
		t.Fatal(err)
	}
	want, err := local.Enumerate(3, 20, krcore.EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Enumerate(ctx, 3, 20, client.Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Cores) != fmt.Sprint(want.Cores) || got.Nodes != want.Nodes {
		t.Fatalf("enumerate diverged: %+v vs %+v", got, want)
	}

	wantMax, err := local.FindMaximum(3, 20, krcore.MaxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gotMax, err := c.FindMaximum(ctx, 3, 20, client.Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(gotMax.Cores) != fmt.Sprint(wantMax.Cores) {
		t.Fatalf("maximum diverged: %+v vs %+v", gotMax, wantMax)
	}

	v := want.Cores[0][0]
	gotV, err := c.EnumerateContaining(ctx, 3, 20, v, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, core := range gotV.Cores {
		found := false
		for _, u := range core {
			if u == v {
				found = true
			}
		}
		if !found {
			t.Fatalf("containing core misses v=%d: %v", v, core)
		}
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dataset != "toy" || st.Engine.Prepared < 1 || st.Server.Queries != 3 {
		t.Fatalf("bad stats: %+v", st)
	}
}

func TestClientApplyBatch(t *testing.T) {
	c, _ := startDaemon(t, true)
	ctx := context.Background()
	resp, err := c.ApplyBatch(ctx, []krcore.Update{
		krcore.AddVertexUpdate(),
		krcore.SetAttributesUpdate(30, krcore.VertexAttributes{X: 5, Y: 5}),
		krcore.AddEdgeUpdate(30, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Applied != 3 || resp.N != 31 {
		t.Fatalf("bad ack: %+v", resp)
	}
	// A locally-invalid update fails before any HTTP traffic.
	if _, err := c.ApplyBatch(ctx, []krcore.Update{{Op: krcore.UpdateOp(99)}}); err == nil {
		t.Fatal("unserialisable op accepted")
	}
	// A server-side-invalid update is rejected with an APIError.
	_, err = c.ApplyBatch(ctx, []krcore.Update{krcore.AddEdgeUpdate(0, 4000)})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadRequest {
		t.Fatalf("want 400 APIError, got %v", err)
	}
}

func TestClientErrors(t *testing.T) {
	ctx := context.Background()

	// 429 surfaces through IsBusy.
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"busy"}`)
	}))
	defer busy.Close()
	c := client.New(busy.URL)
	_, err := c.Enumerate(ctx, 2, 1, client.Options{})
	if !client.IsBusy(err) {
		t.Fatalf("want busy, got %v", err)
	}
	if !strings.Contains(err.Error(), "busy") {
		t.Fatalf("lost the daemon's message: %v", err)
	}
	if client.IsBusy(fmt.Errorf("plain")) {
		t.Fatal("IsBusy on a non-API error")
	}

	// Non-JSON error bodies fall back to the HTTP status.
	raw := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer raw.Close()
	if err := client.New(raw.URL).Health(ctx); err == nil || !strings.Contains(err.Error(), "500") {
		t.Fatalf("want 500 error, got %v", err)
	}

	// Garbage success bodies are a decode error.
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "not json")
	}))
	defer garbage.Close()
	if _, err := client.New(garbage.URL).Stats(ctx); err == nil {
		t.Fatal("garbage body decoded")
	}

	// Unreachable daemons fail with a transport error.
	if err := client.New("http://127.0.0.1:1").Health(ctx); err == nil {
		t.Fatal("unreachable daemon healthy")
	}

	// A cancelled context aborts the round-trip.
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer slow.Close()
	cctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if err := client.New(slow.URL).Health(cctx); err == nil {
		t.Fatal("cancelled context ignored")
	}

	// An unhealthy status is an error even on HTTP 200.
	sick := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"draining"}`)
	}))
	defer sick.Close()
	if err := client.New(sick.URL).Health(ctx); err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("unhealthy status accepted: %v", err)
	}
}

func TestClientWithHTTPClient(t *testing.T) {
	hits := 0
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	defer hs.Close()
	hc := &http.Client{Timeout: time.Second}
	c := client.New(hs.URL+"/", client.WithHTTPClient(hc))
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Fatalf("custom http.Client not used: %d hits", hits)
	}
	ae := &client.APIError{StatusCode: 429, Message: "x"}
	if !strings.Contains(ae.Error(), "429") {
		t.Fatal(ae.Error())
	}
}

// TestClientMetrics scrapes a real daemon's Prometheus export and
// round-trips it through ParseMetrics.
func TestClientMetrics(t *testing.T) {
	c, _ := startDaemon(t, false)
	ctx := context.Background()
	if _, err := c.Enumerate(ctx, 3, 20, client.Options{}); err != nil {
		t.Fatal(err)
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "# TYPE krcored_queries_total counter") {
		t.Fatalf("export missing TYPE header:\n%s", text)
	}
	samples := client.ParseMetrics(text)
	if samples["krcored_queries_total"] != 1 {
		t.Fatalf("krcored_queries_total = %v, want 1", samples["krcored_queries_total"])
	}
	if samples[`krcored_http_request_seconds_count{endpoint="enumerate"}`] != 1 {
		t.Fatalf("enumerate histogram missing: %v", samples)
	}
}

// TestClientMetricsErrors pins the scrape's failure modes: non-2xx
// responses surface as APIError, dead daemons as transport errors.
func TestClientMetricsErrors(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no metrics here", http.StatusNotFound)
	}))
	defer hs.Close()
	ctx := context.Background()
	_, err := client.New(hs.URL).Metrics(ctx)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusNotFound {
		t.Fatalf("got %v, want APIError 404", err)
	}
	hs.Close()
	if _, err := client.New(hs.URL).Metrics(ctx); err == nil {
		t.Fatal("scrape of a dead daemon succeeded")
	}
}

// TestParseMetricsSkipsNoise checks the parser tolerates comments,
// blanks and malformed lines without failing the scrape.
func TestParseMetricsSkipsNoise(t *testing.T) {
	got := client.ParseMetrics("# HELP a b\na 1\n\nnot a sample at all\nb{x=\"y\"} 2.5\nbad NaNish trailing-word\n")
	if len(got) != 2 || got["a"] != 1 || got[`b{x="y"}`] != 2.5 {
		t.Fatalf("parsed %v", got)
	}
}
