package client_test

import (
	"context"
	"fmt"
	"net/http/httptest"

	"krcore"
	"krcore/client"
	"krcore/server"
)

// ExampleClient queries a krcored daemon: in production the daemon is
// a separate `krcored -data ... -warm ...` process; here an in-process
// HTTP server stands in so the example is runnable.
func ExampleClient() {
	// Two friend groups bridged by one edge, 100km apart.
	b := krcore.NewGraphBuilder(9)
	groups := [][]int32{{0, 1, 2, 3, 4}, {5, 6, 7, 8}}
	for _, g := range groups {
		for i := 0; i < len(g); i++ {
			for j := i + 1; j < len(g); j++ {
				b.AddEdge(g[i], g[j])
			}
		}
	}
	b.AddEdge(4, 5)
	geo := krcore.NewGeoAttributes(9)
	for _, v := range groups[0] {
		geo.Set(v, 0, float64(v))
	}
	for _, v := range groups[1] {
		geo.Set(v, 100, float64(v))
	}

	// The daemon side (what krcored does for you).
	srv, _ := server.New(krcore.NewEngine(b.Build(), geo.Metric()), server.Config{Dataset: "demo"})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	// The client side.
	ctx := context.Background()
	c := client.New(hs.URL)
	if err := c.Warm(ctx, 2, 10); err != nil { // pre-build the hot setting
		fmt.Println("warm:", err)
		return
	}

	res, _ := c.Enumerate(ctx, 2, 10, client.Options{})
	fmt.Println("communities:", res.Count)

	max, _ := c.FindMaximum(ctx, 2, 10, client.Options{})
	fmt.Println("maximum community:", max.Cores[0])

	one, _ := c.EnumerateContaining(ctx, 2, 10, 7, client.Options{})
	fmt.Println("communities of user 7:", one.Count)

	st, _ := c.Stats(ctx)
	fmt.Printf("served %d queries, %d cache hits\n", st.Server.Queries, st.Engine.Hits)
	// Output:
	// communities: 2
	// maximum community: [0 1 2 3 4]
	// communities of user 7: 1
	// served 3 queries, 3 cache hits
}
