// Replication client surface: snapshot download, journal tailing and
// failover promotion against the daemon's replication endpoints. This
// is what krcore/replica.Follower is built on; the primitives are
// exported so other embedders (debug tooling, backup jobs) can speak
// the same protocol.
package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"krcore"
	"krcore/api"
	"krcore/internal/updates"
)

// ErrTailCompacted reports a journal tail request below the leader's
// compacted base (HTTP 410): the requested operations are gone for
// good and the follower must re-bootstrap from Snapshot.
var ErrTailCompacted = errors.New("client: requested journal offset compacted away")

// IsReadOnly reports whether the error is a read-only follower's write
// redirect (HTTP 503 with a leader URL) and returns the leader to
// retry against.
func IsReadOnly(err error) (leader string, ok bool) {
	var ae *APIError
	if errors.As(err, &ae) && ae.StatusCode == http.StatusServiceUnavailable && ae.Leader != "" {
		return ae.Leader, true
	}
	return "", false
}

// SnapshotInfo describes a downloaded snapshot stream.
type SnapshotInfo struct {
	// Kind is the daemon's attribute-store kind ("geo", "keywords",
	// "weighted-keywords"), from api.HeaderKind.
	Kind string
	// Offset is the advisory journal offset from api.HeaderOffset (the
	// authoritative offset is embedded in the snapshot itself and
	// surfaces as the loaded engine's JournalOffset).
	Offset int64
}

// Snapshot streams the daemon's current engine snapshot (krsnap
// format). The caller owns the ReadCloser and typically feeds it
// straight into krcore.LoadDynamicEngine.
func (c *Client) Snapshot(ctx context.Context) (io.ReadCloser, SnapshotInfo, error) {
	var info SnapshotInfo
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+api.PathSnapshot, nil)
	if err != nil {
		return nil, info, fmt.Errorf("client: %s: %w", api.PathSnapshot, err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, info, fmt.Errorf("client: %s: %w", api.PathSnapshot, err)
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		return nil, info, decodeAPIError(resp)
	}
	info.Kind = resp.Header.Get(api.HeaderKind)
	info.Offset, _ = strconv.ParseInt(resp.Header.Get(api.HeaderOffset), 10, 64)
	return resp.Body, info, nil
}

// TailOptions bounds one JournalTail poll.
type TailOptions struct {
	// Wait long-polls on the daemon up to this long when no operation
	// past the offset is committed yet (clamped server-side). Zero
	// returns immediately.
	Wait time.Duration
	// Max caps the operations returned (clamped server-side); 0 is the
	// server maximum.
	Max int
}

// Tail is one JournalTail response.
type Tail struct {
	// Ops are the operations at absolute offsets [From, From+len(Ops)).
	Ops []krcore.Update
	// Next is the offset to poll from next: From plus the operations
	// actually received.
	Next int64
	// End is the offset past the last operation committed on the daemon
	// at read time; End - Next is the lag still to fetch.
	End int64
	// Kind is the daemon's attribute kind for these operations.
	Kind string
	// Truncated reports that the response body was cut mid-entry (the
	// connection dropped): Ops holds the complete prefix and the caller
	// simply polls again from Next. A torn final line is discarded even
	// when its prefix would parse — applying it would corrupt the
	// replica.
	Truncated bool
}

// JournalTail fetches committed journal operations from the absolute
// offset from. A from below the daemon's compacted base fails with an
// error wrapping ErrTailCompacted: re-bootstrap from Snapshot. The
// call is idempotent — the same from always yields the same operations
// — so a follower resumes after any failure by re-polling from its own
// applied offset.
func (c *Client) JournalTail(ctx context.Context, from int64, opt TailOptions) (*Tail, error) {
	q := url.Values{}
	q.Set("from", strconv.FormatInt(from, 10))
	if opt.Wait > 0 {
		q.Set("wait_ms", strconv.FormatInt(opt.Wait.Milliseconds(), 10))
	}
	if opt.Max > 0 {
		q.Set("max", strconv.Itoa(opt.Max))
	}
	u := c.base + api.PathJournal + "?" + q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("client: %s: %w", api.PathJournal, err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %s: %w", api.PathJournal, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		ae := decodeAPIError(resp)
		return nil, fmt.Errorf("%w: %w", ErrTailCompacted, ae)
	}
	if resp.StatusCode/100 != 2 {
		return nil, decodeAPIError(resp)
	}
	t := &Tail{Kind: resp.Header.Get(api.HeaderKind)}
	t.End, _ = strconv.ParseInt(resp.Header.Get(api.HeaderEnd), 10, 64)
	kind, err := updates.ParseKind(t.Kind)
	if err != nil {
		return nil, fmt.Errorf("client: %s: %w", api.PathJournal, err)
	}
	s, truncated, err := updates.ParseTail(resp.Body, kind)
	if err != nil {
		return nil, fmt.Errorf("client: %s: %w", api.PathJournal, err)
	}
	t.Ops, t.Truncated = s.Ups, truncated
	t.Next = from + int64(len(t.Ops))
	if !truncated && t.End < t.Next {
		// The daemon's End header predates ops it just sent only if the
		// response is inconsistent; trust the operations we hold.
		t.End = t.Next
	}
	return t, nil
}

// Replication fetches the daemon's replication role and offsets.
func (c *Client) Replication(ctx context.Context) (*api.ReplicationStatus, error) {
	var st api.ReplicationStatus
	if err := c.do(ctx, http.MethodGet, api.PathReplication, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Promote flips a read-only follower writable (failover). Idempotent
// on an already-writable daemon.
func (c *Client) Promote(ctx context.Context) (*api.PromoteResponse, error) {
	var pr api.PromoteResponse
	if err := c.do(ctx, http.MethodPost, api.PathPromote, nil, &pr); err != nil {
		return nil, err
	}
	return &pr, nil
}
