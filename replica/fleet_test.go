package replica_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"krcore"
	"krcore/api"
	"krcore/client"
	"krcore/internal/metrics"
	"krcore/internal/updates"
	"krcore/replica"
	"krcore/server"
)

// ---------------------------------------------------------------------------
// Fixtures: a small dynamic leader daemon and followers wired exactly
// as cmd/krcored wires them.
// ---------------------------------------------------------------------------

// newTestEngine builds a small two-cluster geo instance on a dynamic
// engine.
func newTestEngine(t *testing.T) *krcore.DynamicEngine {
	t.Helper()
	const n = 40
	b := krcore.NewGraphBuilder(n)
	for c := 0; c < 2; c++ {
		base := int32(c * 20)
		for i := int32(0); i < 20; i++ {
			for j := i + 1; j < 20; j++ {
				if (i+j)%3 != 0 {
					b.AddEdge(base+i, base+j)
				}
			}
		}
	}
	b.AddEdge(19, 20)
	geo := krcore.NewGeoAttributes(n)
	for u := int32(0); u < n; u++ {
		geo.Set(u, float64(u/20)*100, float64(u%20))
	}
	deng, err := krcore.NewDynamicEngine(b.Build(), geo)
	if err != nil {
		t.Fatal(err)
	}
	return deng
}

type leaderFixture struct {
	deng *krcore.DynamicEngine
	j    *updates.Journal
	hs   *httptest.Server
	c    *client.Client
}

func startLeader(t *testing.T) *leaderFixture {
	t.Helper()
	deng := newTestEngine(t)
	kind, err := updates.ParseKind(deng.AttributeKind())
	if err != nil {
		t.Fatal(err)
	}
	j, err := updates.OpenJournal(filepath.Join(t.TempDir(), "leader.journal"), kind)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	deng.SetJournal(j)
	s, err := server.New(deng, server.Config{
		Snapshot:   deng.SaveSnapshot,
		Tail:       j,
		JournalLen: j.TailOps,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return &leaderFixture{deng: deng, j: j, hs: hs, c: client.New(hs.URL)}
}

type followerFixture struct {
	fol    *replica.Follower
	j      *updates.Journal
	hs     *httptest.Server
	c      *client.Client
	cancel context.CancelFunc
	done   chan struct{}
}

func startFollower(t *testing.T, leaderURL string) *followerFixture {
	t.Helper()
	st, err := client.New(leaderURL).Replication(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	kind, err := updates.ParseKind(st.Kind)
	if err != nil {
		t.Fatal(err)
	}
	j, err := updates.OpenJournal(filepath.Join(t.TempDir(), "follower.journal"), kind)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	fol, err := replica.NewFollower(replica.FollowerConfig{
		Leader:   leaderURL,
		Journal:  j,
		PollWait: 100 * time.Millisecond,
		Backoff:  15 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := fol.Bootstrap(ctx); err != nil {
		cancel()
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		fol.Run(ctx)
	}()
	s, err := server.New(fol, server.Config{
		LeaderURL:  leaderURL,
		Lag:        fol.Lag,
		OnPromote:  fol.Stop,
		Snapshot:   fol.SaveSnapshot,
		Tail:       j,
		JournalLen: j.TailOps,
	})
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("follower tail loop did not exit")
		}
		hs.Close()
	})
	return &followerFixture{fol: fol, j: j, hs: hs, c: client.New(hs.URL), cancel: cancel, done: done}
}

// waitOffset polls until get() reaches want.
func waitOffset(t *testing.T, what string, get func() int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for get() != want {
		if time.Now().After(deadline) {
			t.Fatalf("%s stuck at offset %d, want %d", what, get(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// churnOps emits a phase of operations valid against the fixture
// engine when applied sequentially: toggle known cluster edges, nudge
// attributes, grow the graph. The (1,3) edge exists in the seed graph
// ((1+3)%3 != 0) and each remove is immediately undone.
func churnOps(phase int) []krcore.Update {
	var ops []krcore.Update
	for i := int32(0); i < 12; i++ {
		u, v := i, i+3
		if (u+v)%3 == 0 || v >= 20 {
			ops = append(ops, krcore.AddVertexUpdate())
			continue
		}
		ops = append(ops,
			krcore.RemoveEdgeUpdate(u, v),
			krcore.AddEdgeUpdate(u, v),
			krcore.SetAttributesUpdate(u, krcore.VertexAttributes{X: float64(phase*20) + float64(i), Y: float64(v)}),
		)
	}
	return ops
}

// ---------------------------------------------------------------------------
// Follower lifecycle.
// ---------------------------------------------------------------------------

// TestFollowerTailConvergence drives the full follower lifecycle:
// bootstrap, journal tailing, the serving delegation surface, metrics,
// and a clean stop.
func TestFollowerTailConvergence(t *testing.T) {
	leader := startLeader(t)
	f := startFollower(t, leader.hs.URL)
	ctx := context.Background()

	for phase := 0; phase < 3; phase++ {
		if _, err := leader.c.ApplyBatch(ctx, churnOps(phase)); err != nil {
			t.Fatal(err)
		}
	}
	end := leader.j.End()
	waitOffset(t, "follower", f.fol.JournalOffset, end)

	if f.fol.Applied() != end || f.fol.Bootstraps() != 1 {
		t.Fatalf("applied %d of %d across %d bootstraps", f.fol.Applied(), end, f.fol.Bootstraps())
	}
	if f.fol.LastError() != nil {
		t.Fatalf("clean replication surfaced an error: %v", f.fol.LastError())
	}
	// The follower's own journal holds the replicated tail durably.
	if f.j.End() != end {
		t.Fatalf("follower journal end %d, want %d", f.j.End(), end)
	}

	// The delegation surface answers identically to the leader engine.
	want, err := leader.deng.Enumerate(4, 10, krcore.EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.fol.EnumerateContext(ctx, 4, 10, krcore.EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Cores) != fmt.Sprint(want.Cores) || got.Nodes != want.Nodes {
		t.Fatal("follower enumerate diverged from leader")
	}
	wantMax, err := leader.deng.FindMaximum(4, 10, krcore.MaxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gotMax, err := f.fol.FindMaximumContext(ctx, 4, 10, krcore.MaxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(gotMax.Cores) != fmt.Sprint(wantMax.Cores) {
		t.Fatal("follower maximum diverged from leader")
	}
	if len(want.Cores) > 0 {
		v := want.Cores[0][0]
		gotV, err := f.fol.EnumerateContainingContext(ctx, 4, 10, v, krcore.EnumOptions{})
		if err != nil {
			t.Fatal(err)
		}
		wantV, err := leader.deng.EnumerateContaining(4, 10, v, krcore.EnumOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(gotV.Cores) != fmt.Sprint(wantV.Cores) {
			t.Fatal("follower containing diverged from leader")
		}
	}
	if err := f.fol.Warm(5, 25); err != nil {
		t.Fatal(err)
	}
	if g := f.fol.Graph(); g.N() != leader.deng.N() || g.M() != leader.deng.M() {
		t.Fatalf("follower graph %d/%d, leader %d/%d", g.N(), g.M(), leader.deng.N(), leader.deng.M())
	}
	if f.fol.AttributeKind() != leader.deng.AttributeKind() {
		t.Fatal("attribute kind diverged")
	}
	if st := f.fol.Stats(); st.Prepared == 0 {
		t.Fatalf("follower stats empty: %+v", st)
	}
	if len(f.fol.SettingsStats()) == 0 {
		t.Fatal("follower settings stats empty")
	}
	if ds := f.fol.DynamicStats(); ds.Version == 0 {
		t.Fatalf("follower dynamic stats empty: %+v", ds)
	}

	// A chained bootstrap: the follower's own snapshot endpoint serves
	// an image another replica could start from.
	var buf bytes.Buffer
	if err := f.fol.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	chained, err := krcore.LoadDynamicEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if chained.JournalOffset() != end {
		t.Fatalf("chained snapshot at offset %d, want %d", chained.JournalOffset(), end)
	}

	// Replication metrics export through a registry.
	reg := metrics.NewRegistry()
	f.fol.RegisterMetrics(reg)
	var text bytes.Buffer
	if err := reg.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"krcored_follower_bootstraps_total 1",
		fmt.Sprintf("krcored_follower_applied_ops_total %d", end),
		"krcored_follower_healthy 1",
	} {
		if !strings.Contains(text.String(), series) {
			t.Fatalf("metrics missing %q:\n%s", series, text.String())
		}
	}

	// Stop drains the loop; afterwards direct writes succeed (the
	// promoted path) and land in the follower's own journal.
	if err := f.fol.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if err := f.fol.ApplyBatch(churnOps(3)); err != nil {
		t.Fatal(err)
	}
	if f.fol.JournalOffset() <= end || f.j.End() != f.fol.JournalOffset() {
		t.Fatalf("post-stop write: engine %d, journal %d", f.fol.JournalOffset(), f.j.End())
	}
}

// TestFollowerRebootstrapAfterCompaction pins the 410 path: a follower
// that fell behind a leader compaction cannot be caught up by the
// journal and must re-bootstrap from the snapshot, transparently,
// through the same Run loop.
func TestFollowerRebootstrapAfterCompaction(t *testing.T) {
	leader := startLeader(t)
	ctx := context.Background()
	if err := leader.deng.ApplyBatch(churnOps(0)); err != nil {
		t.Fatal(err)
	}
	mid := leader.j.End()

	// Bootstrap at the current offset, but do NOT start tailing yet.
	kind, err := updates.ParseKind(leader.deng.AttributeKind())
	if err != nil {
		t.Fatal(err)
	}
	fj, err := updates.OpenJournal(filepath.Join(t.TempDir(), "late.journal"), kind)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fj.Close() })
	fol, err := replica.NewFollower(replica.FollowerConfig{
		Leader:   leader.hs.URL,
		Journal:  fj,
		PollWait: 50 * time.Millisecond,
		Backoff:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fol.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	if fol.JournalOffset() != mid {
		t.Fatalf("bootstrapped at %d, want %d", fol.JournalOffset(), mid)
	}

	// The leader moves on and compacts past the follower's offset.
	if err := leader.deng.ApplyBatch(churnOps(1)); err != nil {
		t.Fatal(err)
	}
	end := leader.j.End()
	if _, err := leader.j.CompactTo(end); err != nil {
		t.Fatal(err)
	}
	if leader.j.Base() <= mid {
		t.Fatalf("compaction left base %d, need > %d to exercise the 410", leader.j.Base(), mid)
	}

	rctx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		fol.Run(rctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	waitOffset(t, "late follower", fol.JournalOffset, end)
	if fol.Bootstraps() != 2 {
		t.Fatalf("follower recovered via %d bootstraps, want 2 (initial + post-410)", fol.Bootstraps())
	}
	// The local journal restarted at the new snapshot's offset.
	if fj.Base() != end {
		t.Fatalf("follower journal base %d after re-bootstrap, want %d", fj.Base(), end)
	}
	if eng := fol.Engine(); eng.N() != leader.deng.N() || eng.M() != leader.deng.M() {
		t.Fatalf("recovered follower graph %d/%d, leader %d/%d",
			eng.N(), eng.M(), leader.deng.N(), leader.deng.M())
	}
}

// ---------------------------------------------------------------------------
// Failover: the leader dies; the router must promote the follower with
// the highest applied offset, no acked write may be lost, and the
// promoted journal must compact cleanly and accept new writes.
// ---------------------------------------------------------------------------

func TestFailoverPromoteFreshest(t *testing.T) {
	leader := startLeader(t)
	a := startFollower(t, leader.hs.URL)
	b := startFollower(t, leader.hs.URL)
	ctx := context.Background()

	// Phase 1 reaches both followers.
	if err := leader.deng.ApplyBatch(churnOps(0)); err != nil {
		t.Fatal(err)
	}
	mid := leader.j.End()
	waitOffset(t, "follower A", a.fol.JournalOffset, mid)
	waitOffset(t, "follower B", b.fol.JournalOffset, mid)

	// B stops tailing — it will be the stale candidate at failover.
	if err := b.fol.Stop(ctx); err != nil {
		t.Fatal(err)
	}

	rt, err := replica.NewRouter(replica.RouterConfig{
		Leader:    leader.hs.URL,
		Followers: []string{a.hs.URL, b.hs.URL},
		Probe:     150 * time.Millisecond,
		FailAfter: 2,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	rhs := httptest.NewServer(rt.Handler())
	t.Cleanup(rhs.Close)
	rctx, rcancel := context.WithCancel(ctx)
	t.Cleanup(rcancel)
	go rt.Run(rctx)
	rc := client.New(rhs.URL)

	// Phase 2 goes through the router and is ACKED — these writes must
	// survive the failover. Only A sees them.
	if _, err := rc.ApplyBatch(ctx, churnOps(1)); err != nil {
		t.Fatal(err)
	}
	acked := leader.j.End()
	waitOffset(t, "follower A", a.fol.JournalOffset, acked)
	if b.fol.JournalOffset() != mid {
		t.Fatalf("stale follower advanced to %d, should be frozen at %d", b.fol.JournalOffset(), mid)
	}

	// The leader dies hard: in-flight connections cut, listener closed.
	leader.hs.CloseClientConnections()
	leader.hs.Close()

	// The router must promote A — the freshest follower — not B.
	deadline := time.Now().Add(15 * time.Second)
	for rt.Leader() != a.hs.URL {
		if time.Now().After(deadline) {
			t.Fatalf("router leader is %q, want %q (A at offset %d, B at %d)",
				rt.Leader(), a.hs.URL, a.fol.JournalOffset(), b.fol.JournalOffset())
		}
		time.Sleep(10 * time.Millisecond)
	}
	st, err := a.c.Replication(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != api.RoleLeader {
		t.Fatalf("promoted node reports role %q", st.Role)
	}

	// No acked write lost: A holds every operation the old leader ever
	// acknowledged, and serves bit-identically to its final state (the
	// old engine object is still queryable in-process).
	if a.fol.JournalOffset() != acked {
		t.Fatalf("promoted follower at offset %d, want %d", a.fol.JournalOffset(), acked)
	}
	want, err := leader.deng.Enumerate(4, 10, krcore.EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.c.Enumerate(ctx, 4, 10, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Cores) != fmt.Sprint(want.Cores) || got.Nodes != want.Nodes {
		t.Fatal("promoted follower diverged from the dead leader's final state")
	}

	// Writes through the router now land on A (its journal advances;
	// the dead leader's cannot).
	if _, err := rc.ApplyBatch(ctx, churnOps(2)); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
	grown := a.j.End()
	if grown <= acked {
		t.Fatalf("promoted journal did not advance past %d", acked)
	}
	if a.fol.JournalOffset() != grown {
		t.Fatalf("promoted engine at %d, journal at %d", a.fol.JournalOffset(), grown)
	}

	// The new leader's journal re-compacts cleanly against its own
	// snapshot, and keeps accepting writes afterwards.
	if _, err := updates.Compact(a.fol.Engine(), a.j, filepath.Join(t.TempDir(), "promoted.krsnap")); err != nil {
		t.Fatalf("promoted journal compaction: %v", err)
	}
	if a.j.Base() != grown {
		t.Fatalf("compacted journal base %d, want %d", a.j.Base(), grown)
	}
	if _, err := rc.ApplyBatch(ctx, churnOps(3)); err != nil {
		t.Fatalf("write after promoted compaction: %v", err)
	}
	if a.j.End() <= grown {
		t.Fatal("journal did not advance after promoted compaction")
	}
}

// ---------------------------------------------------------------------------
// Router read and write planes.
// ---------------------------------------------------------------------------

// TestRouterAffinityReads pins the read plane: queries go to followers
// (never the leader while any follower is healthy) and the same (k,r)
// setting always lands on the same follower, keeping its per-setting
// cache hot.
func TestRouterAffinityReads(t *testing.T) {
	leader := startLeader(t)
	a := startFollower(t, leader.hs.URL)
	b := startFollower(t, leader.hs.URL)
	rt, err := replica.NewRouter(replica.RouterConfig{
		Leader:    leader.hs.URL,
		Followers: []string{a.hs.URL, b.hs.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	rhs := httptest.NewServer(rt.Handler())
	t.Cleanup(rhs.Close)
	rc := client.New(rhs.URL)
	ctx := context.Background()

	if err := rc.Health(ctx); err != nil {
		t.Fatal(err)
	}
	st, err := rc.Replication(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "router" || st.Leader != leader.hs.URL {
		t.Fatalf("router replication status: %+v", st)
	}

	const perSetting = 4
	want, err := leader.deng.Enumerate(4, 10, krcore.EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < perSetting; i++ {
		got, err := rc.Enumerate(ctx, 4, 10, client.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got.Cores) != fmt.Sprint(want.Cores) {
			t.Fatal("routed read diverged from leader state")
		}
		if _, err := rc.Enumerate(ctx, 5, 25, client.Options{}); err != nil {
			t.Fatal(err)
		}
	}

	// Control-plane reads forward to the leader.
	if _, err := rc.Stats(ctx); err != nil {
		t.Fatal(err)
	}

	// All queries landed on followers, and each setting stuck to one:
	// per-node totals must be {0, 8} or {4, 4}, never an odd split.
	ql := scrapeQueries(t, leader.c)
	qa, qb := scrapeQueries(t, a.c), scrapeQueries(t, b.c)
	if ql != 0 {
		t.Fatalf("leader answered %d queries; reads must offload to followers", ql)
	}
	if qa+qb != 2*perSetting {
		t.Fatalf("followers answered %d+%d queries, want %d total", qa, qb, 2*perSetting)
	}
	if !(qa == 0 || qb == 0 || (qa == perSetting && qb == perSetting)) {
		t.Fatalf("affinity broken: follower query split %d/%d", qa, qb)
	}
}

// TestRouterAdoptsRedirectedLeader pins the write plane's redirect
// handling: a router whose configured leader is actually a read-only
// follower must follow the 503 redirect, adopt the real leader, and
// complete the write.
func TestRouterAdoptsRedirectedLeader(t *testing.T) {
	leader := startLeader(t)
	f := startFollower(t, leader.hs.URL)

	// Misconfigured on purpose: the follower is named as the leader.
	rt, err := replica.NewRouter(replica.RouterConfig{Leader: f.hs.URL})
	if err != nil {
		t.Fatal(err)
	}
	rhs := httptest.NewServer(rt.Handler())
	t.Cleanup(rhs.Close)
	rc := client.New(rhs.URL)
	ctx := context.Background()

	before := leader.j.End()
	if _, err := rc.ApplyBatch(ctx, churnOps(0)); err != nil {
		t.Fatalf("redirected write failed: %v", err)
	}
	if leader.j.End() <= before {
		t.Fatal("write never reached the real leader")
	}
	if rt.Leader() != leader.hs.URL {
		t.Fatalf("router still routes writes to %q, want adopted leader %q", rt.Leader(), leader.hs.URL)
	}
}

// scrapeQueries reads a node's served-query counter via its stats
// endpoint.
func scrapeQueries(t *testing.T, c *client.Client) int64 {
	t.Helper()
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return st.Server.Queries
}

// routerProxyErrors reads the router's proxy-error counter from its
// metric registry.
func routerProxyErrors(t *testing.T, rt *replica.Router) string {
	t.Helper()
	var text bytes.Buffer
	if err := rt.Metrics().WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(text.String(), "\n") {
		if strings.HasPrefix(line, "krcored_router_proxy_errors_total ") {
			return strings.TrimPrefix(line, "krcored_router_proxy_errors_total ")
		}
	}
	t.Fatal("proxy-error counter not exported")
	return ""
}

// TestRouterClientAbortNotProxyError separates the two ways a forward
// can die: the caller hanging up (its own deadline or disconnect) is
// not a fleet problem and must not move the proxy-error counter — a
// backend the router itself cannot reach is, and answers 502.
func TestRouterClientAbortNotProxyError(t *testing.T) {
	leader := startLeader(t)
	rt, err := replica.NewRouter(replica.RouterConfig{Leader: leader.hs.URL})
	if err != nil {
		t.Fatal(err)
	}

	// The caller is already gone when the forward starts: the abort
	// propagates into the proxied request, which fails without the
	// backend ever being at fault.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", api.PathEnumerate, strings.NewReader(`{"k":4,"r":10}`)).WithContext(ctx)
	rw := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rw, req)
	if got := routerProxyErrors(t, rt); got != "0" {
		t.Fatalf("client abort counted as proxy error (counter %s)", got)
	}

	// A genuinely unreachable backend still counts and surfaces a 502.
	leader.hs.CloseClientConnections()
	leader.hs.Close()
	req = httptest.NewRequest("POST", api.PathEnumerate, strings.NewReader(`{"k":4,"r":10}`))
	rw = httptest.NewRecorder()
	rt.Handler().ServeHTTP(rw, req)
	if rw.Code != 502 {
		t.Fatalf("dead backend answered %d, want 502", rw.Code)
	}
	if got := routerProxyErrors(t, rt); got != "1" {
		t.Fatalf("dead backend moved proxy errors to %s, want 1", got)
	}
}
