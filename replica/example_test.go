package replica_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"krcore"
	"krcore/replica"
	"krcore/server"
)

// ExampleFollower bootstraps a read replica from a live leader and
// tails its journal: the follower downloads the snapshot, streams
// committed operations, and converges to the leader's exact state.
func ExampleFollower() {
	// A leader: a dynamic engine served with snapshot and journal
	// endpoints. (A production leader also wires a durable
	// updates.Journal as Config.Tail; the example leader has no
	// journal, so followers would re-bootstrap instead of tailing —
	// which is all this example needs.)
	b := krcore.NewGraphBuilder(6)
	for i := int32(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(i, j)
		}
	}
	geo := krcore.NewGeoAttributes(6)
	deng, err := krcore.NewDynamicEngine(b.Build(), geo)
	if err != nil {
		panic(err)
	}
	s, err := server.New(deng, server.Config{Snapshot: deng.SaveSnapshot})
	if err != nil {
		panic(err)
	}
	leader := httptest.NewServer(s.Handler())
	defer leader.Close()

	// The follower: bootstrap once, then it serves queries
	// bit-identical to the leader at the snapshot's offset.
	fol, err := replica.NewFollower(replica.FollowerConfig{
		Leader:   leader.URL,
		PollWait: 100 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	if err := fol.Bootstrap(context.Background()); err != nil {
		panic(err)
	}

	res, err := fol.EnumerateContext(context.Background(), 3, 10, krcore.EnumOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("replica cores:", len(res.Cores), "applied offset:", fol.JournalOffset())
	// Output:
	// replica cores: 1 applied offset: 0
}
