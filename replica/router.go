package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"krcore/api"
	"krcore/client"
	"krcore/internal/metrics"
)

// RouterConfig parameterises a Router.
type RouterConfig struct {
	// Leader is the write node's base URL (required).
	Leader string
	// Followers are the read replicas' base URLs.
	Followers []string
	// HTTPClient overrides the forwarding client.
	HTTPClient *http.Client
	// Probe is the health-probe interval of Run. Default 1s.
	Probe time.Duration
	// FailAfter is how many consecutive failed leader probes trigger a
	// failover. Default 3.
	FailAfter int
	// Logf, when set, receives failover and probe transitions.
	Logf func(format string, args ...any)
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	if c.Probe <= 0 {
		c.Probe = time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 3
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// nodeState is one backend's last probed condition.
type nodeState struct {
	healthy bool
	applied int64
}

// Router fronts a replicated fleet behind one URL: queries are
// (k,r)-affinity-routed across healthy followers (the same setting
// always lands on the same replica, keeping its per-(k,r) cache hot),
// writes forward to the leader, and when the leader stops answering
// probes the follower with the highest applied offset is promoted in
// its place. Create with NewRouter, mount Handler, and run the probe
// loop with Run.
type Router struct {
	cfg RouterConfig
	hc  *http.Client
	mux *http.ServeMux

	// mu guards the routing table only — probes and forwards do their
	// I/O outside it and write results back under a brief lock.
	mu       sync.Mutex
	leader   string
	nodes    map[string]*nodeState
	leaderNG int // consecutive failed leader probes

	reg       *metrics.Registry
	forwarded *metrics.CounterVec // role: read | write | control
	proxyErrs *metrics.Counter
	failovers *metrics.Counter
}

// NewRouter returns a router over the fleet. Every node (leader and
// followers) starts out presumed healthy until the first probe.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Leader == "" {
		return nil, errors.New("replica: router needs a leader URL")
	}
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:    cfg,
		hc:     cfg.HTTPClient,
		leader: cfg.Leader,
		nodes:  make(map[string]*nodeState),
	}
	rt.nodes[cfg.Leader] = &nodeState{healthy: true}
	for _, f := range cfg.Followers {
		rt.nodes[f] = &nodeState{healthy: true}
	}
	rt.initMetrics()
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("GET "+api.PathHealth, rt.handleHealth)
	rt.mux.HandleFunc("GET "+api.PathMetrics, rt.handleMetrics)
	rt.mux.HandleFunc("GET "+api.PathReplication, rt.handleReplication)
	rt.mux.HandleFunc("POST "+api.PathEnumerate, rt.handleRead)
	rt.mux.HandleFunc("POST "+api.PathMaximum, rt.handleRead)
	rt.mux.HandleFunc("POST "+api.PathWarm, rt.handleRead)
	rt.mux.HandleFunc("POST "+api.PathUpdate, rt.handleWrite)
	rt.mux.HandleFunc("GET "+api.PathStats, rt.handleToLeader)
	rt.mux.HandleFunc("GET "+api.PathSnapshot, rt.handleToLeader)
	rt.mux.HandleFunc("GET "+api.PathJournal, rt.handleToLeader)
	return rt, nil
}

func (rt *Router) initMetrics() {
	rt.reg = metrics.NewRegistry()
	rt.forwarded = rt.reg.CounterVec("krcored_router_forwarded_total", "requests forwarded, by role (read: affinity-routed query; write: leader update; control: stats/snapshot/journal)", "role")
	rt.proxyErrs = rt.reg.Counter("krcored_router_proxy_errors_total", "forwards that failed to reach any backend (502)")
	rt.failovers = rt.reg.Counter("krcored_router_failovers_total", "leader promotions performed after probe failures")
	rt.reg.SampleFunc("krcored_router_backend_healthy", "1 per backend answering probes", metrics.KindGauge, []string{"backend"}, func() []metrics.Sample {
		rt.mu.Lock()
		defer rt.mu.Unlock()
		out := make([]metrics.Sample, 0, len(rt.nodes))
		for url, st := range rt.nodes {
			v := 0.0
			if st.healthy {
				v = 1
			}
			out = append(out, metrics.Sample{Labels: []string{url}, Value: v})
		}
		return out
	})
}

// Handler returns the router's HTTP surface.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Metrics returns the router's metric registry.
func (rt *Router) Metrics() *metrics.Registry { return rt.reg }

// Leader returns the current write node.
func (rt *Router) Leader() string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.leader
}

// Run probes the fleet until ctx is cancelled, marking node health
// and promoting the freshest follower when the leader stays down for
// FailAfter consecutive probes.
func (rt *Router) Run(ctx context.Context) error {
	t := time.NewTicker(rt.cfg.Probe)
	defer t.Stop()
	for {
		rt.probeOnce(ctx)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

// probeOnce checks every node's replication endpoint (health and
// applied offset in one call), then applies the results — including a
// failover — under the lock.
func (rt *Router) probeOnce(ctx context.Context) {
	rt.mu.Lock()
	leader := rt.leader
	urls := make([]string, 0, len(rt.nodes))
	for u := range rt.nodes {
		urls = append(urls, u)
	}
	rt.mu.Unlock()

	type probe struct {
		url     string
		ok      bool
		applied int64
		role    string
	}
	results := make([]probe, len(urls))
	var wg sync.WaitGroup
	for i, u := range urls {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, rt.cfg.Probe)
			defer cancel()
			st, err := client.New(u, client.WithHTTPClient(rt.hc)).Replication(pctx)
			if err != nil {
				results[i] = probe{url: u}
				return
			}
			results[i] = probe{url: u, ok: true, applied: st.AppliedOffset, role: st.Role}
		}(i, u)
	}
	wg.Wait()

	var freshest string
	var freshestApplied int64 = -1
	leaderOK := false
	rt.mu.Lock()
	for _, p := range results {
		st := rt.nodes[p.url]
		if st == nil {
			continue
		}
		st.healthy = p.ok
		st.applied = p.applied
		if p.url == leader {
			leaderOK = p.ok
			continue
		}
		if p.ok && p.applied > freshestApplied {
			freshest, freshestApplied = p.url, p.applied
		}
	}
	if leaderOK {
		rt.leaderNG = 0
		rt.mu.Unlock()
		return
	}
	rt.leaderNG++
	doFailover := rt.leaderNG >= rt.cfg.FailAfter && freshest != ""
	rt.mu.Unlock()
	if !doFailover {
		return
	}

	// Promotion happens outside the lock; the routing table flips only
	// after the new leader acknowledged.
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.Probe)
	pr, err := client.New(freshest, client.WithHTTPClient(rt.hc)).Promote(pctx)
	cancel()
	if err != nil {
		rt.cfg.Logf("router: promote %s failed: %v", freshest, err)
		return
	}
	rt.mu.Lock()
	// Re-check under the lock: another failover may have won the race.
	won := rt.leader == leader
	if won {
		rt.leader = freshest
		rt.leaderNG = 0
		rt.failovers.Inc()
	}
	rt.mu.Unlock()
	if won {
		rt.cfg.Logf("router: promoted %s (applied offset %d) after leader %s failed %d probes",
			freshest, pr.AppliedOffset, leader, rt.cfg.FailAfter)
	}
}

// readTarget picks the serving node for a (k,r) setting: rendezvous
// hashing over the healthy followers — every follower gets a stable
// slice of the settings space, so its per-(k,r) cache stays hot — with
// the leader as the fallback when no follower is healthy.
func (rt *Router) readTarget(k int, r float64) string {
	key := strconv.Itoa(k) + "/" + strconv.FormatFloat(r, 'g', -1, 64)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var best string
	var bestScore uint64
	for url, st := range rt.nodes {
		if !st.healthy || url == rt.leader {
			continue
		}
		h := fnv.New64a()
		io.WriteString(h, url)
		io.WriteString(h, "|")
		io.WriteString(h, key)
		if s := h.Sum64(); best == "" || s > bestScore {
			best, bestScore = url, s
		}
	}
	if best == "" {
		return rt.leader
	}
	return best
}

// forward replays the request against target and relays the response.
// A transport failure answers 502.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, target string, body []byte) {
	resp, err := rt.send(r, target, body)
	if err != nil {
		if r.Context().Err() != nil {
			// The caller went away (disconnect or deadline) and the
			// abort propagated into the forward. Nobody is listening
			// for a 502, and the backend was never shown unreachable —
			// counting this as a proxy error would make every client
			// timeout look like fleet trouble.
			return
		}
		rt.proxyErrs.Inc()
		writeError(w, http.StatusBadGateway, fmt.Sprintf("router: %s unreachable: %v", target, err))
		return
	}
	defer resp.Body.Close()
	relay(w, resp)
}

// send issues the forwarded request.
func (rt *Router) send(r *http.Request, target string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, target+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	return rt.hc.Do(req)
}

// relay copies a backend response through to the caller.
func relay(w http.ResponseWriter, resp *http.Response) {
	h := w.Header()
	for _, k := range []string{"Content-Type", api.HeaderKind, api.HeaderOffset, api.HeaderEnd} {
		if v := resp.Header.Get(k); v != "" {
			h.Set(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(api.Error{Error: msg})
}

// handleRead affinity-routes a query by its (k,r) setting. The body is
// decoded just enough to learn the setting, then forwarded verbatim.
func (rt *Router) handleRead(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("router: read body: %v", err))
		return
	}
	var setting struct {
		K int     `json:"k"`
		R float64 `json:"r"`
	}
	if err := json.Unmarshal(body, &setting); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("router: bad query body: %v", err))
		return
	}
	rt.forwarded.With("read").Inc()
	rt.forward(w, r, rt.readTarget(setting.K, setting.R), body)
}

// handleWrite forwards an update to the leader. A 503 leader redirect
// or transport failure retries once against the redirect target (or
// the freshest follower the probe loop has since promoted).
func (rt *Router) handleWrite(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("router: read body: %v", err))
		return
	}
	rt.forwarded.With("write").Inc()
	leader := rt.Leader()
	resp, err := rt.send(r, leader, body)
	if err == nil && resp.StatusCode != http.StatusServiceUnavailable {
		defer resp.Body.Close()
		relay(w, resp)
		return
	}
	// First try failed. A redirect body names the real leader; adopt it.
	retry := rt.Leader()
	if err == nil {
		var ae api.Error
		dec := json.NewDecoder(io.LimitReader(resp.Body, 1<<20))
		if dec.Decode(&ae) == nil && ae.Leader != "" {
			retry = ae.Leader
			rt.adoptLeader(retry)
		}
		resp.Body.Close()
	}
	if retry == leader && err != nil {
		if r.Context().Err() != nil {
			// Client-initiated abort, not a leader failure (see forward).
			return
		}
		// No new target yet: surface the transport failure.
		rt.proxyErrs.Inc()
		writeError(w, http.StatusBadGateway, fmt.Sprintf("router: leader %s unreachable: %v", leader, err))
		return
	}
	rt.forward(w, r, retry, body)
}

// adoptLeader flips the routing table to a leader learned from a
// redirect, registering it if it was not in the configured fleet.
func (rt *Router) adoptLeader(url string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.nodes[url] == nil {
		rt.nodes[url] = &nodeState{healthy: true}
	}
	if rt.leader != url {
		rt.leader = url
		rt.leaderNG = 0
	}
}

// handleToLeader forwards control-plane reads (stats, snapshot,
// journal) to the leader.
func (rt *Router) handleToLeader(w http.ResponseWriter, r *http.Request) {
	rt.forwarded.With("control").Inc()
	rt.forward(w, r, rt.Leader(), nil)
}

// handleHealth reports the router healthy while any backend is.
func (rt *Router) handleHealth(w http.ResponseWriter, _ *http.Request) {
	rt.mu.Lock()
	any := false
	for _, st := range rt.nodes {
		if st.healthy {
			any = true
			break
		}
	}
	rt.mu.Unlock()
	if !any {
		writeError(w, http.StatusServiceUnavailable, "router: no healthy backend")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(api.HealthResponse{Status: "ok"})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", metrics.TextContentType)
	rt.reg.WriteText(w)
}

// handleReplication reports the router's view of the fleet: its role
// is "router" and Leader names the current write node.
func (rt *Router) handleReplication(w http.ResponseWriter, _ *http.Request) {
	rt.mu.Lock()
	st := api.ReplicationStatus{Role: "router", Leader: rt.leader}
	if ls := rt.nodes[rt.leader]; ls != nil {
		st.AppliedOffset = ls.applied
	}
	rt.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}
