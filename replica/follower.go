// Package replica turns single krcored processes into a replicated
// serving fleet: a Follower bootstraps from a leader's snapshot and
// tails its journal stream into a local DynamicEngine, and a Router
// spreads reads across replicas with (k,r)-affinity while forwarding
// writes to the leader and promoting the freshest follower when the
// leader dies.
//
// The replication contract is offset-based and idempotent: every
// committed operation has one absolute journal offset, a follower
// always polls from its own engine's JournalOffset, and the leader
// serves the identical operations for the same offset — so a follower
// resumes after any failure (dropped connection, truncated body,
// follower restart) without duplicating or skipping operations.
// Because snapshot load plus replay is bit-identical to applying the
// same operations on a fresh engine, every follower answers queries
// bit-identical to the leader at the same offset.
package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"krcore"
	"krcore/client"
	"krcore/internal/metrics"
	"krcore/internal/updates"
)

// FollowerConfig parameterises a Follower.
type FollowerConfig struct {
	// Leader is the leader daemon's base URL (required).
	Leader string
	// Client overrides the leader client (timeouts, transports, test
	// doubles); nil builds one from Leader.
	Client *client.Client
	// Journal, when set, is the follower's own write-ahead journal:
	// reset to the snapshot's offset at bootstrap and attached to the
	// engine, so every replicated operation is locally durable and a
	// promoted follower leads from a journal aligned with its state.
	Journal *updates.Journal
	// PollWait is the long-poll duration of each tail request.
	// Default 2s.
	PollWait time.Duration
	// PollMax caps operations per tail response (0 = server maximum).
	PollMax int
	// ReplayBatch is the ApplyBatch group size during replay.
	// Default 256.
	ReplayBatch int
	// Backoff is the pause after a failed poll or bootstrap.
	// Default 250ms.
	Backoff time.Duration
}

func (c FollowerConfig) withDefaults() FollowerConfig {
	if c.Client == nil {
		c.Client = client.New(c.Leader)
	}
	if c.PollWait <= 0 {
		c.PollWait = 2 * time.Second
	}
	if c.ReplayBatch <= 0 {
		c.ReplayBatch = 256
	}
	if c.Backoff <= 0 {
		c.Backoff = 250 * time.Millisecond
	}
	return c
}

// Follower replicates one leader. It implements the query and update
// surfaces of krcore/server (Backend and Updater), delegating to its
// current engine — so a Follower is mounted directly as a read-only
// server backend, and keeps serving across a re-bootstrap (the engine
// swap is atomic). Create with NewFollower, call Bootstrap, then run
// the tail loop with Run; the serving surface is valid only after a
// successful Bootstrap.
type Follower struct {
	cfg FollowerConfig
	cl  *client.Client

	engine     atomic.Pointer[krcore.DynamicEngine]
	lag        atomic.Int64
	applied    atomic.Int64 // ops applied through the tail loop
	bootstraps atomic.Int64
	lastErr    atomic.Pointer[error]

	started atomic.Bool
	stop    chan struct{}
	stopped atomic.Bool
	runDone chan struct{}
}

// NewFollower returns an unbootstrapped follower of the leader.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Leader == "" && cfg.Client == nil {
		return nil, errors.New("replica: follower needs a leader URL")
	}
	cfg = cfg.withDefaults()
	return &Follower{
		cfg:     cfg,
		cl:      cfg.Client,
		stop:    make(chan struct{}),
		runDone: make(chan struct{}),
	}, nil
}

// Bootstrap downloads the leader's current snapshot, loads it into a
// fresh engine, aligns the local journal (when configured) to the
// snapshot's offset and atomically installs the engine as the serving
// state. Safe to call again later — ErrTailCompacted recovery does —
// without disturbing concurrent readers of the previous engine.
func (f *Follower) Bootstrap(ctx context.Context) error {
	rc, _, err := f.cl.Snapshot(ctx)
	if err != nil {
		return fmt.Errorf("replica: bootstrap: %w", err)
	}
	eng, lerr := krcore.LoadDynamicEngine(rc)
	cerr := rc.Close()
	if lerr != nil {
		return fmt.Errorf("replica: bootstrap: %w", lerr)
	}
	if cerr != nil {
		return fmt.Errorf("replica: bootstrap: %w", cerr)
	}
	off := eng.JournalOffset()
	if f.cfg.Journal != nil {
		// The local tail (from any previous life) is discarded: the
		// leader serves everything past the snapshot's offset anyway,
		// and restarting the journal exactly at the snapshot keeps the
		// absolute numbering aligned with the engine.
		if err := f.cfg.Journal.ResetTo(off); err != nil {
			return fmt.Errorf("replica: bootstrap: %w", err)
		}
		eng.SetJournal(f.cfg.Journal)
	}
	f.engine.Store(eng)
	f.bootstraps.Add(1)
	return nil
}

// Run tails the leader until ctx is cancelled or Stop is called,
// applying streamed operations through the engine's group-commit
// path. Transient failures (leader down, dropped or truncated
// responses) back off and resume from the engine's own offset; a 410
// (the leader compacted past us) re-bootstraps from the snapshot.
// Run returns nil on Stop and ctx.Err() on cancellation.
func (f *Follower) Run(ctx context.Context) error {
	if !f.started.CompareAndSwap(false, true) {
		return errors.New("replica: follower already running")
	}
	defer close(f.runDone)
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-f.stop:
			return nil
		default:
		}
		eng := f.engine.Load()
		if eng == nil {
			if err := f.Bootstrap(ctx); err != nil {
				f.setErr(err)
				if !f.sleep(ctx) {
					return ctx.Err()
				}
			}
			continue
		}
		from := eng.JournalOffset()
		t, err := f.cl.JournalTail(ctx, from, client.TailOptions{Wait: f.cfg.PollWait, Max: f.cfg.PollMax})
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			f.setErr(err)
			if errors.Is(err, client.ErrTailCompacted) {
				// The leader compacted past our offset: the journal
				// alone can no longer catch us up. Start over from the
				// snapshot; readers keep the old engine until the swap.
				if berr := f.Bootstrap(ctx); berr != nil {
					f.setErr(berr)
					if !f.sleep(ctx) {
						return ctx.Err()
					}
				}
				continue
			}
			if !f.sleep(ctx) {
				return ctx.Err()
			}
			continue
		}
		if len(t.Ops) > 0 {
			if _, err := updates.Replay(eng, t.Ops, f.cfg.ReplayBatch); err != nil {
				// A rejected replicated operation means this replica
				// diverged from the leader; the snapshot is the
				// authority, so rebuild from it rather than retrying
				// the same doomed tail forever.
				f.setErr(fmt.Errorf("replica: replay diverged, re-bootstrapping: %w", err))
				if berr := f.Bootstrap(ctx); berr != nil {
					f.setErr(berr)
					if !f.sleep(ctx) {
						return ctx.Err()
					}
				}
				continue
			}
			f.applied.Add(int64(len(t.Ops)))
		}
		if lag := t.End - eng.JournalOffset(); lag > 0 {
			f.lag.Store(lag)
		} else {
			f.lag.Store(0)
		}
	}
}

// Stop ends the tail loop and waits for it to exit (bounded by ctx) —
// wire it as the server's OnPromote hook so no replicated operation
// can land after the node starts accepting writes. Idempotent; a nil
// return means the loop is no longer applying operations.
func (f *Follower) Stop(ctx context.Context) error {
	if f.stopped.CompareAndSwap(false, true) {
		close(f.stop)
	}
	if !f.started.Load() {
		return nil
	}
	select {
	case <-f.runDone:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("replica: tail loop still draining: %w", ctx.Err())
	}
}

// sleep pauses for the backoff; false means ctx expired.
func (f *Follower) sleep(ctx context.Context) bool {
	t := time.NewTimer(f.cfg.Backoff)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-f.stop:
		return true
	case <-ctx.Done():
		return false
	}
}

func (f *Follower) setErr(err error) { f.lastErr.Store(&err) }

// LastError returns the most recent tail or bootstrap failure, nil
// when replication has been clean.
func (f *Follower) LastError() error {
	if p := f.lastErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Lag is the follower's last observed distance behind the leader in
// operations — wire it as the server's Lag hook.
func (f *Follower) Lag() int64 { return f.lag.Load() }

// Bootstraps counts snapshot bootstraps (1 after a clean start; more
// after ErrTailCompacted or divergence recoveries).
func (f *Follower) Bootstraps() int64 { return f.bootstraps.Load() }

// Applied counts operations applied through the tail loop.
func (f *Follower) Applied() int64 { return f.applied.Load() }

// Engine returns the current serving engine (nil before Bootstrap).
// The engine may be swapped by a re-bootstrap; callers should grab it
// once per operation rather than caching it.
func (f *Follower) Engine() *krcore.DynamicEngine { return f.engine.Load() }

// RegisterMetrics adds the follower's replication series to a metric
// registry (typically the serving server's, so they export on
// /metrics alongside the lag gauge wired via the server's Lag hook).
func (f *Follower) RegisterMetrics(reg *metrics.Registry) {
	sampled := func(name, help string, kind metrics.Kind, get func() int64) {
		reg.SampleFunc(name, help, kind, nil, func() []metrics.Sample {
			return []metrics.Sample{{Value: float64(get())}}
		})
	}
	sampled("krcored_follower_bootstraps_total", "snapshot bootstraps (re-bootstraps mean the leader compacted past this follower)", metrics.KindCounter, f.Bootstraps)
	sampled("krcored_follower_applied_ops_total", "operations applied from the leader's journal stream", metrics.KindCounter, f.Applied)
	sampled("krcored_follower_healthy", "1 while the tail loop has an engine and no sticky error state", metrics.KindGauge, func() int64 {
		if f.engine.Load() != nil {
			return 1
		}
		return 0
	})
}

// cur returns the serving engine, panicking before Bootstrap — the
// server surface below is documented as valid only after one.
func (f *Follower) cur() *krcore.DynamicEngine {
	eng := f.engine.Load()
	if eng == nil {
		panic("replica: follower used as a backend before Bootstrap")
	}
	return eng
}

// --- krcore/server Backend + Updater surface, delegating to the
// current engine so the server keeps working across engine swaps. ---

// EnumerateContext implements server.Backend.
func (f *Follower) EnumerateContext(ctx context.Context, k int, r float64, opt krcore.EnumOptions) (*krcore.Result, error) {
	return f.cur().EnumerateContext(ctx, k, r, opt)
}

// EnumerateContainingContext implements server.Backend.
func (f *Follower) EnumerateContainingContext(ctx context.Context, k int, r float64, v int32, opt krcore.EnumOptions) (*krcore.Result, error) {
	return f.cur().EnumerateContainingContext(ctx, k, r, v, opt)
}

// FindMaximumContext implements server.Backend.
func (f *Follower) FindMaximumContext(ctx context.Context, k int, r float64, opt krcore.MaxOptions) (*krcore.Result, error) {
	return f.cur().FindMaximumContext(ctx, k, r, opt)
}

// Warm implements server.Backend.
func (f *Follower) Warm(k int, r float64) error { return f.cur().Warm(k, r) }

// Stats implements server.Backend.
func (f *Follower) Stats() krcore.EngineStats { return f.cur().Stats() }

// Graph implements server.Backend.
func (f *Follower) Graph() *krcore.Graph { return f.cur().Graph() }

// SettingsStats surfaces per-(k,r) cache traffic for /metrics.
func (f *Follower) SettingsStats() []krcore.SettingStats { return f.cur().SettingsStats() }

// ApplyBatch implements server.Updater. It reaches the engine only
// after promotion — while the node follows, the server's read-only
// gate answers 503 before this is called.
func (f *Follower) ApplyBatch(batch []krcore.Update) error { return f.cur().ApplyBatch(batch) }

// DynamicStats implements server.Updater.
func (f *Follower) DynamicStats() krcore.DynamicStats { return f.cur().DynamicStats() }

// JournalOffset reports the operations folded into the serving state
// (the applied offset exported on /metrics and PathReplication).
func (f *Follower) JournalOffset() int64 {
	if eng := f.engine.Load(); eng != nil {
		return eng.JournalOffset()
	}
	return 0
}

// AttributeKind names the engine's attribute-store kind.
func (f *Follower) AttributeKind() string { return f.cur().AttributeKind() }

// SaveSnapshot streams the current engine's snapshot — wire it as the
// server's Snapshot hook so this follower can itself bootstrap others
// (and lead after a promotion).
func (f *Follower) SaveSnapshot(w io.Writer) error { return f.cur().SaveSnapshot(w) }
