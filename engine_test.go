package krcore

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// buildServingInstance builds a deterministic random social graph with
// clustered geo attributes, large enough that (k,r) queries do real
// work but small enough for exhaustive cross-checking.
func buildServingInstance() (*Graph, *GeoAttributes) {
	const n = 160
	rng := rand.New(rand.NewSource(2017))
	b := NewGraphBuilder(n)
	for i := 0; i < 5*n; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	g := b.Build()
	geo := NewGeoAttributes(n)
	centers := [][2]float64{{0, 0}, {12, 0}, {6, 10}, {40, 40}}
	for u := 0; u < n; u++ {
		c := centers[rng.Intn(len(centers))]
		geo.Set(int32(u), c[0]+rng.NormFloat64()*2.5, c[1]+rng.NormFloat64()*2.5)
	}
	return g, geo
}

// servingGrid is the (k,r) parameter grid the serving tests sweep,
// mirroring the paper's figure sweeps over one graph.
var servingGrid = []struct {
	k int
	r float64
}{
	{2, 4}, {2, 8}, {3, 4}, {3, 8}, {3, 15}, {4, 8}, {5, 15},
}

func TestEngineMatchesFreshRuns(t *testing.T) {
	g, geo := buildServingInstance()
	eng := NewEngine(g, geo.Metric())
	for _, cell := range servingGrid {
		fresh, err := EnumerateMaximal(g, Params{K: cell.k, Oracle: geo.WithinDistance(cell.r)}, EnumOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Enumerate(cell.k, cell.r, EnumOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got.Cores) != fmt.Sprint(fresh.Cores) {
			t.Fatalf("(k=%d, r=%g): engine %v != fresh %v", cell.k, cell.r, got.Cores, fresh.Cores)
		}
		freshMax, err := FindMaximum(g, Params{K: cell.k, Oracle: geo.WithinDistance(cell.r)}, MaxOptions{})
		if err != nil {
			t.Fatal(err)
		}
		gotMax, err := eng.FindMaximum(cell.k, cell.r, MaxOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(gotMax.Cores) != fmt.Sprint(freshMax.Cores) {
			t.Fatalf("(k=%d, r=%g): engine max %v != fresh %v", cell.k, cell.r, gotMax.Cores, freshMax.Cores)
		}
	}
}

// TestEngineCacheHits verifies the zero-re-preparation guarantee: a
// repeated (k,r) query is a cache hit and creates no new prepared
// state.
func TestEngineCacheHits(t *testing.T) {
	g, geo := buildServingInstance()
	eng := NewEngine(g, geo.Metric())
	if _, err := eng.Enumerate(3, 8, EnumOptions{}); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Misses != 1 || st.Hits != 0 || st.Prepared != 1 || st.Thresholds != 1 {
		t.Fatalf("after first query: %+v", st)
	}
	for i := 0; i < 3; i++ {
		if _, err := eng.Enumerate(3, 8, EnumOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	st = eng.Stats()
	if st.Hits != 3 || st.Misses != 1 || st.Prepared != 1 {
		t.Fatalf("repeated (k,r) query re-prepared: %+v", st)
	}
	// A different k at the same r reuses the filtered graph (one
	// threshold entry) but prepares its own components.
	if _, err := eng.FindMaximum(4, 8, MaxOptions{}); err != nil {
		t.Fatal(err)
	}
	st = eng.Stats()
	if st.Thresholds != 1 || st.Prepared != 2 || st.Misses != 2 {
		t.Fatalf("after second k at same r: %+v", st)
	}
	// Warm makes the first real query at a new setting a hit.
	if err := eng.Warm(2, 4); err != nil {
		t.Fatal(err)
	}
	before := eng.Stats()
	if _, err := eng.FindMaximum(2, 4, MaxOptions{}); err != nil {
		t.Fatal(err)
	}
	after := eng.Stats()
	if after.Hits != before.Hits+1 || after.Prepared != before.Prepared {
		t.Fatalf("warmed query was not a pure hit: before %+v, after %+v", before, after)
	}
}

// TestEngineConcurrentStress fires concurrent mixed (k,r) queries —
// enumeration, community search and maximum, serial and parallel — at
// one engine and verifies every answer against fresh single-threaded
// runs. Run under -race this doubles as the data-race check on the
// shared caches, budgets and incumbents.
func TestEngineConcurrentStress(t *testing.T) {
	g, geo := buildServingInstance()

	type expected struct {
		enum *Result
		max  *Result
	}
	want := make([]expected, len(servingGrid))
	for i, cell := range servingGrid {
		enum, err := EnumerateMaximal(g, Params{K: cell.k, Oracle: geo.WithinDistance(cell.r)}, EnumOptions{})
		if err != nil {
			t.Fatal(err)
		}
		max, err := FindMaximum(g, Params{K: cell.k, Oracle: geo.WithinDistance(cell.r)}, MaxOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = expected{enum: enum, max: max}
	}

	eng := NewEngine(g, geo.Metric())
	const goroutines = 16
	const queriesPerG = 30
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for wid := 0; wid < goroutines; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + wid)))
			for q := 0; q < queriesPerG; q++ {
				ci := rng.Intn(len(servingGrid))
				cell, exp := servingGrid[ci], want[ci]
				par := []int{0, 2, 4}[rng.Intn(3)]
				switch rng.Intn(3) {
				case 0:
					res, err := eng.Enumerate(cell.k, cell.r, EnumOptions{Parallelism: par})
					if err != nil {
						errc <- err
						return
					}
					if fmt.Sprint(res.Cores) != fmt.Sprint(exp.enum.Cores) {
						errc <- fmt.Errorf("worker %d (k=%d, r=%g): enum %v != fresh %v",
							wid, cell.k, cell.r, res.Cores, exp.enum.Cores)
						return
					}
				case 1:
					res, err := eng.FindMaximum(cell.k, cell.r, MaxOptions{Parallelism: par})
					if err != nil {
						errc <- err
						return
					}
					if fmt.Sprint(res.Cores) != fmt.Sprint(exp.max.Cores) {
						errc <- fmt.Errorf("worker %d (k=%d, r=%g): max %v != fresh %v",
							wid, cell.k, cell.r, res.Cores, exp.max.Cores)
						return
					}
				default:
					v := int32(rng.Intn(g.N()))
					res, err := eng.EnumerateContaining(cell.k, cell.r, v, EnumOptions{Parallelism: par})
					if err != nil {
						errc <- err
						return
					}
					// The answer must be exactly the v-containing subset of
					// the full enumeration.
					var subset [][]int32
					for _, c := range exp.enum.Cores {
						for _, u := range c {
							if u == v {
								subset = append(subset, c)
								break
							}
						}
					}
					if fmt.Sprint(res.Cores) != fmt.Sprint(subset) {
						errc <- fmt.Errorf("worker %d (k=%d, r=%g, v=%d): containing %v != subset %v",
							wid, cell.k, cell.r, v, res.Cores, subset)
						return
					}
				}
			}
			errc <- nil
		}(wid)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.Prepared != len(servingGrid) {
		t.Fatalf("prepared %d settings, want %d (each exactly once): %+v", st.Prepared, len(servingGrid), st)
	}
	if st.Hits+st.Misses != goroutines*queriesPerG {
		t.Fatalf("hit+miss = %d, want %d: %+v", st.Hits+st.Misses, goroutines*queriesPerG, st)
	}
}

func TestEngineCancellationAndLimits(t *testing.T) {
	g, geo := buildServingInstance()
	eng := NewEngine(g, geo.Metric())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := eng.Enumerate(3, 8, EnumOptions{Limits: Limits{Context: ctx}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut || res.Nodes != 0 {
		t.Fatalf("cancelled engine query ran anyway: %+v", res)
	}
	// The cancelled query still prepared (and cached) its setting, so a
	// live retry is a hit.
	live, err := eng.Enumerate(3, 8, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if live.TimedOut {
		t.Fatal("unlimited retry timed out")
	}
	capped, err := eng.Enumerate(3, 8, EnumOptions{Limits: Limits{MaxNodes: 1}, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Nodes > 1 {
		t.Fatalf("engine query exceeded MaxNodes: %d nodes", capped.Nodes)
	}
}

func TestEngineValidation(t *testing.T) {
	g, geo := buildServingInstance()
	eng := NewEngine(g, geo.Metric())
	if _, err := eng.Enumerate(0, 8, EnumOptions{}); err == nil {
		t.Fatal("k=0 must be rejected")
	}
	if _, err := eng.EnumerateContaining(2, 8, int32(g.N()), EnumOptions{}); err == nil {
		t.Fatal("out-of-range query vertex must be rejected")
	}
	broken := NewEngine(g, nil)
	if _, err := broken.Enumerate(2, 8, EnumOptions{}); err == nil {
		t.Fatal("nil metric must be rejected")
	}
	if _, err := broken.Oracle(8); err == nil {
		t.Fatal("Oracle with nil metric must be rejected")
	}
	// NaN never equals itself, so it would defeat the float64-keyed
	// caches; the engine must refuse it instead of leaking entries.
	before := eng.Stats()
	if _, err := eng.Enumerate(2, math.NaN(), EnumOptions{}); err == nil {
		t.Fatal("NaN threshold must be rejected")
	}
	if _, err := eng.Oracle(math.NaN()); err == nil {
		t.Fatal("NaN threshold must be rejected by Oracle")
	}
	after := eng.Stats()
	if after.Thresholds != before.Thresholds || after.Prepared != before.Prepared {
		t.Fatalf("rejected NaN queries must not populate the caches: before %+v, after %+v", before, after)
	}
}
