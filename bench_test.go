// Package krcore_test: the external test package avoids an import
// cycle — internal/expr's serving experiments drive the public
// krcore.Engine.
package krcore_test

// One benchmark per reproduced table/figure (deliverable d). Each
// iteration regenerates the corresponding experiment through the
// internal/expr harness with a short per-cell budget, so
//
//	go test -bench=. -benchmem
//
// replays the paper's whole evaluation. The rendered tables land in the
// benchmark log (-v) and in cmd/benchrunner, which uses the same code
// with the full budget.

import (
	"testing"
	"time"

	"krcore/internal/expr"
)

// benchBudget keeps a full -bench=. run in the minutes range; use
// cmd/benchrunner for the full-budget tables.
const benchBudget = 1 * time.Second

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e := expr.Find(id)
	if e == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		r := expr.NewRunner(benchBudget)
		rep := e.Run(r)
		if i == 0 {
			b.Log("\n" + rep.String())
			inf := 0
			cells := 0
			for _, s := range rep.Series {
				for _, c := range s.Cells {
					cells++
					if c == "INF" {
						inf++
					}
				}
			}
			b.ReportMetric(float64(cells), "cells")
			b.ReportMetric(float64(inf), "INF-cells")
		}
	}
}

func BenchmarkTable3Stats(b *testing.B)       { runExperiment(b, "table3") }
func BenchmarkFig5CaseStudyDBLP(b *testing.B) { runExperiment(b, "fig5") }
func BenchmarkFig6CaseStudyGeo(b *testing.B)  { runExperiment(b, "fig6") }
func BenchmarkFig7aStats(b *testing.B)        { runExperiment(b, "fig7a") }
func BenchmarkFig7bStats(b *testing.B)        { runExperiment(b, "fig7b") }
func BenchmarkFig8aClique(b *testing.B)       { runExperiment(b, "fig8a") }
func BenchmarkFig8bClique(b *testing.B)       { runExperiment(b, "fig8b") }
func BenchmarkFig9aPruning(b *testing.B)      { runExperiment(b, "fig9a") }
func BenchmarkFig9bPruning(b *testing.B)      { runExperiment(b, "fig9b") }
func BenchmarkFig10aBounds(b *testing.B)      { runExperiment(b, "fig10a") }
func BenchmarkFig10bBounds(b *testing.B)      { runExperiment(b, "fig10b") }
func BenchmarkFig11aLambda(b *testing.B)      { runExperiment(b, "fig11a") }
func BenchmarkFig11bBranch(b *testing.B)      { runExperiment(b, "fig11b") }
func BenchmarkFig11cMaxOrders(b *testing.B)   { runExperiment(b, "fig11c") }
func BenchmarkFig11dEnumOrders(b *testing.B)  { runExperiment(b, "fig11d") }
func BenchmarkFig11eEnumOrders(b *testing.B)  { runExperiment(b, "fig11e") }
func BenchmarkFig11fCheckOrders(b *testing.B) { runExperiment(b, "fig11f") }
func BenchmarkFig12aDatasets(b *testing.B)    { runExperiment(b, "fig12a") }
func BenchmarkFig12bDatasets(b *testing.B)    { runExperiment(b, "fig12b") }
func BenchmarkFig13aEnumK(b *testing.B)       { runExperiment(b, "fig13a") }
func BenchmarkFig13bEnumR(b *testing.B)       { runExperiment(b, "fig13b") }
func BenchmarkFig14aMaxK(b *testing.B)        { runExperiment(b, "fig14a") }
func BenchmarkFig14bMaxR(b *testing.B)        { runExperiment(b, "fig14b") }

// Serving-layer additions beyond the paper (PR 2).
func BenchmarkEngineCache(b *testing.B) { runExperiment(b, "engine") }
func BenchmarkParallelMax(b *testing.B) { runExperiment(b, "parmax") }
