module krcore

go 1.24
