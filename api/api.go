// Package api defines the JSON wire format of the krcored serving
// daemon: request and response bodies shared by the HTTP server
// (krcore/server) and the Go client (krcore/client), plus the
// conversions between wire updates and krcore.Update values.
//
// The format is deliberately plain JSON over HTTP — one POST per query
// — so non-Go clients need nothing beyond an HTTP library. Vertex ids
// are int32 (as in the krcore API) and serialise exactly, so cores
// returned over the wire are bit-identical to in-process results.
package api

import (
	"fmt"

	"krcore"
)

// Endpoint paths served by krcored.
const (
	PathHealth    = "/healthz"
	PathStats     = "/v1/stats"
	PathEnumerate = "/v1/enumerate"
	PathMaximum   = "/v1/maximum"
	PathWarm      = "/v1/warm"
	PathUpdate    = "/v1/update"
	// PathMetrics serves the daemon's full metric registry in Prometheus
	// text exposition format (0.0.4) — latency histograms, admission and
	// cache counters, write-path instrumentation. GET, not JSON.
	PathMetrics = "/metrics"

	// PathSnapshot (GET) streams the engine's current snapshot in the
	// binary krsnap format; the snapshot carries its own journal offset,
	// echoed in HeaderOffset. This is how a follower bootstraps.
	PathSnapshot = "/v1/snapshot"
	// PathJournal (GET) streams committed journal operations in the
	// internal/updates text wire format, starting at the absolute offset
	// given by the "from" query parameter. "wait_ms" long-polls up to
	// that long for new operations, "max" caps the operations returned.
	// A "from" older than the journal's compacted base answers 410 Gone:
	// the tail is no longer replayable and the follower must
	// re-bootstrap from PathSnapshot.
	PathJournal = "/v1/journal"
	// PathReplication (GET) reports the node's replication role and
	// offsets as a ReplicationStatus.
	PathReplication = "/v1/replication"
	// PathPromote (POST) turns a read-only follower into a writable
	// leader (failover). Idempotent on an already-writable node.
	PathPromote = "/v1/promote"
)

// Headers of the replication endpoints.
const (
	// HeaderKind carries the attribute-store kind of a journal stream or
	// snapshot ("geo", "keywords", ...), so a follower can refuse to
	// apply a tail from a differently-typed leader.
	HeaderKind = "X-Krcore-Kind"
	// HeaderOffset is the absolute journal offset of a PathSnapshot
	// response: the number of operations already folded into it.
	HeaderOffset = "X-Krcore-Offset"
	// HeaderEnd is the absolute offset just past the last COMMITTED
	// operation in the serving journal at read time — not the last
	// operation returned (a "max" cap can hold the body short of it).
	// The next poll starts at from + operations-returned; HeaderEnd
	// minus that is the remaining lag. Set even on an empty body.
	HeaderEnd = "X-Krcore-End"
)

// Replication roles reported by ReplicationStatus.Role.
const (
	RoleLeader   = "leader"
	RoleFollower = "follower"
	// RoleStatic is a read-only daemon without a dynamic engine; it can
	// neither lead nor follow.
	RoleStatic = "static"
)

// QueryRequest asks for the (k,r)-cores at one setting. It is the body
// of PathEnumerate (all maximal cores, or the cores containing Vertex
// when set) and PathMaximum (the maximum core).
type QueryRequest struct {
	// K is the engagement threshold (>= 1).
	K int `json:"k"`
	// R is the similarity threshold (km for geo datasets, metric value
	// otherwise).
	R float64 `json:"r"`
	// Vertex, when non-nil, restricts an enumerate query to the maximal
	// cores containing this vertex (community search). Ignored by
	// PathMaximum.
	Vertex *int32 `json:"vertex,omitempty"`
	// Parallelism is the number of worker goroutines searching
	// candidate components within this one query (0 or 1 = serial).
	Parallelism int `json:"parallelism,omitempty"`
	// TimeoutMS is the per-request deadline in milliseconds; 0 uses the
	// server default, and the server clamps it to its configured
	// maximum. An exceeded deadline returns a 200 with timed_out=true
	// and whatever was found, mirroring Limits semantics.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxNodes caps the total search-tree nodes of this query across
	// all its workers (0 = server default/unlimited); the server clamps
	// it to its configured maximum.
	MaxNodes int64 `json:"max_nodes,omitempty"`
}

// QueryResponse is the answer to a QueryRequest.
type QueryResponse struct {
	// Cores holds the result cores as sorted global vertex ids,
	// canonically ordered — bit-identical to the in-process Result.
	Cores [][]int32 `json:"cores"`
	// Count, MaxSize and AvgSize summarise the cores (Result.Summarize).
	Count   int     `json:"count"`
	MaxSize int     `json:"max_size"`
	AvgSize float64 `json:"avg_size"`
	// Nodes counts expanded search-tree nodes (Result.Nodes).
	Nodes int64 `json:"nodes"`
	// TimedOut reports that a limit aborted the search; Cores is then
	// incomplete.
	TimedOut bool `json:"timed_out,omitempty"`
	// ElapsedUS is the server-side search time in microseconds.
	ElapsedUS int64 `json:"elapsed_us"`
}

// WarmRequest pre-builds one (k,r) setting (PathWarm).
type WarmRequest struct {
	K int     `json:"k"`
	R float64 `json:"r"`
}

// WarmResponse acknowledges a warm.
type WarmResponse struct {
	// Prepared is the number of distinct (k,r) settings now cached.
	Prepared int `json:"prepared"`
}

// Update is one wire-format mutation (PathUpdate). Op uses the update
// stream mnemonics of internal/updates: "ae" (add edge), "re" (remove
// edge), "av" (add vertex), "sa" (set attributes).
type Update struct {
	Op string `json:"op"`
	U  int32  `json:"u,omitempty"`
	V  int32  `json:"v,omitempty"`
	// Attribute payload for "sa"; the daemon applies whichever fields
	// its attribute store kind reads.
	X       float64   `json:"x,omitempty"`
	Y       float64   `json:"y,omitempty"`
	Keys    []int32   `json:"keys,omitempty"`
	Weights []float64 `json:"weights,omitempty"`
}

// Op mnemonics of the wire update format.
const (
	OpAddEdge       = "ae"
	OpRemoveEdge    = "re"
	OpAddVertex     = "av"
	OpSetAttributes = "sa"
)

// ToUpdate converts a wire update to a krcore.Update.
func (u Update) ToUpdate() (krcore.Update, error) {
	switch u.Op {
	case OpAddEdge:
		return krcore.AddEdgeUpdate(u.U, u.V), nil
	case OpRemoveEdge:
		return krcore.RemoveEdgeUpdate(u.U, u.V), nil
	case OpAddVertex:
		return krcore.AddVertexUpdate(), nil
	case OpSetAttributes:
		return krcore.SetAttributesUpdate(u.U, krcore.VertexAttributes{
			X: u.X, Y: u.Y, Keys: u.Keys, Weights: u.Weights,
		}), nil
	default:
		return krcore.Update{}, fmt.Errorf("api: unknown update op %q", u.Op)
	}
}

// FromUpdate converts a krcore.Update to its wire form.
func FromUpdate(up krcore.Update) (Update, error) {
	switch up.Op {
	case krcore.OpAddEdge:
		return Update{Op: OpAddEdge, U: up.U, V: up.V}, nil
	case krcore.OpRemoveEdge:
		return Update{Op: OpRemoveEdge, U: up.U, V: up.V}, nil
	case krcore.OpAddVertex:
		return Update{Op: OpAddVertex}, nil
	case krcore.OpSetAttributes:
		return Update{
			Op: OpSetAttributes, U: up.U,
			X: up.Attrs.X, Y: up.Attrs.Y,
			Keys: up.Attrs.Keys, Weights: up.Attrs.Weights,
		}, nil
	default:
		return Update{}, fmt.Errorf("api: cannot serialise op %v", up.Op)
	}
}

// UpdateRequest applies one atomic batch of updates through
// DynamicEngine.ApplyBatch: either every update commits as one new
// snapshot or none does.
type UpdateRequest struct {
	Updates []Update `json:"updates"`
}

// UpdateResponse acknowledges a committed batch.
type UpdateResponse struct {
	// Applied is the number of operations in the committed batch.
	Applied int `json:"applied"`
	// Version is the engine's snapshot version after the commit.
	Version int64 `json:"version"`
	// N and M are the vertex and undirected-edge counts after the
	// commit.
	N int `json:"n"`
	M int `json:"m"`
}

// EngineStats mirrors krcore.EngineStats on the wire.
type EngineStats struct {
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Thresholds int   `json:"thresholds"`
	Prepared   int   `json:"prepared"`
}

// DynamicStats mirrors krcore.DynamicStats on the wire (PathStats,
// dynamic daemons only). Batches/GroupCommits is the write-path
// coalescing factor: how many ApplyBatch calls shared one commit round
// on average. PatchesIncremental vs PatchesFull says how often core
// maintenance stayed on the bounded repair path instead of re-peeling.
type DynamicStats struct {
	Updates            int64 `json:"updates"`
	Batches            int64 `json:"batches"`
	GroupCommits       int64 `json:"group_commits"`
	Version            int64 `json:"version"`
	IndexesKept        int64 `json:"indexes_kept"`
	IndexesRebuilt     int64 `json:"indexes_rebuilt"`
	ComponentsReused   int64 `json:"components_reused"`
	ComponentsRebuilt  int64 `json:"components_rebuilt"`
	PatchesIncremental int64 `json:"patches_incremental"`
	PatchesFull        int64 `json:"patches_full"`
	CoreVisited        int64 `json:"core_visited"`
	// JournalOps is the number of operations in the daemon's update
	// journal tail — the replay cost of a crash recovery, reset by
	// journal compaction. Zero when the daemon runs without -journal.
	JournalOps int64 `json:"journal_ops"`
}

// ServerStats reports the daemon's expvar-style serving counters.
//
// Failed requests are split by blame since the error counters were
// divided: ClientErrors covers 4xx failures the caller can fix (bad
// JSON, invalid parameters, cancelled while queued), ServerErrors
// covers 5xx daemon faults (a failed write-ahead journal append, for
// example). Errors remains their sum so callers written against the
// lumped counter keep working unchanged; admission-control 429s stay
// in Rejected and count toward neither.
type ServerStats struct {
	// Queries counts search queries answered successfully.
	Queries int64 `json:"queries"`
	// Rejected counts requests turned away by admission control (429).
	Rejected int64 `json:"rejected"`
	// Errors counts all failed requests: ClientErrors + ServerErrors.
	// Kept for backward compatibility with the pre-split counter.
	Errors int64 `json:"errors"`
	// ClientErrors counts requests failed by the client (4xx other than
	// 429).
	ClientErrors int64 `json:"client_errors"`
	// ServerErrors counts requests failed by the daemon (5xx).
	ServerErrors int64 `json:"server_errors"`
	// UpdatesApplied counts update operations committed.
	UpdatesApplied int64 `json:"updates_applied"`
	// InFlight is the number of searches running right now.
	InFlight int64 `json:"in_flight"`
	// PeakInFlight is the highest concurrent-search count observed; it
	// never exceeds the admission-control limit.
	PeakInFlight int64 `json:"peak_in_flight"`
	// MaxConcurrent echoes the admission-control limit.
	MaxConcurrent int64 `json:"max_concurrent"`
}

// StatsResponse is the body of PathStats.
type StatsResponse struct {
	// Dataset names the served dataset (as given to the daemon).
	Dataset string `json:"dataset,omitempty"`
	// N and M are the current vertex and undirected-edge counts.
	N int `json:"n"`
	M int `json:"m"`
	// Dynamic reports whether the daemon accepts updates.
	Dynamic bool        `json:"dynamic"`
	Engine  EngineStats `json:"engine"`
	Server  ServerStats `json:"server"`
	// DynamicEngine is set on dynamic daemons only.
	DynamicEngine *DynamicStats `json:"dynamic_engine,omitempty"`
}

// HealthResponse is the body of PathHealth.
type HealthResponse struct {
	Status string `json:"status"` // "ok"
}

// ReplicationStatus is the body of PathReplication.
type ReplicationStatus struct {
	// Role is RoleLeader, RoleFollower or RoleStatic.
	Role string `json:"role"`
	// Leader is the leader base URL a follower replicates from (empty on
	// leaders and static nodes).
	Leader string `json:"leader,omitempty"`
	// Kind is the node's attribute-store kind ("geo", "keywords",
	// "weighted-keywords") — a follower opens its local journal with
	// the leader's kind before bootstrapping.
	Kind string `json:"kind,omitempty"`
	// AppliedOffset is the engine's journal offset: the count of
	// operations folded into the serving state.
	AppliedOffset int64 `json:"applied_offset"`
	// JournalBase and JournalEnd bound the replayable journal tail
	// [base, end); offsets below base have been compacted away. Zero on
	// nodes running without a journal.
	JournalBase int64 `json:"journal_base"`
	JournalEnd  int64 `json:"journal_end"`
	// LagOps is the follower's last observed distance behind its leader
	// (leader end minus applied offset); 0 when caught up or leading.
	LagOps int64 `json:"lag_ops"`
}

// PromoteResponse acknowledges a PathPromote.
type PromoteResponse struct {
	// Role after the promotion: RoleLeader.
	Role string `json:"role"`
	// AppliedOffset is the promoted node's journal offset — writes
	// continue the same absolute numbering.
	AppliedOffset int64 `json:"applied_offset"`
}

// Error is the body of every non-2xx response.
type Error struct {
	Error string `json:"error"`
	// Leader, set on the 503 a read-only follower answers to a write,
	// is the leader base URL the caller should retry against.
	Leader string `json:"leader,omitempty"`
}
