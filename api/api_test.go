package api

import (
	"encoding/json"
	"fmt"
	"testing"

	"krcore"
)

func TestUpdateConversionRoundTrip(t *testing.T) {
	ups := []krcore.Update{
		krcore.AddEdgeUpdate(3, 9),
		krcore.RemoveEdgeUpdate(9, 3),
		krcore.AddVertexUpdate(),
		krcore.SetAttributesUpdate(7, krcore.VertexAttributes{X: 1.5, Y: -2}),
		krcore.SetAttributesUpdate(8, krcore.VertexAttributes{
			Keys: []int32{4, 5}, Weights: []float64{2, 0.5},
		}),
	}
	for _, up := range ups {
		wire, err := FromUpdate(up)
		if err != nil {
			t.Fatal(err)
		}
		// The wire form must survive JSON, as it does over HTTP.
		buf, err := json.Marshal(wire)
		if err != nil {
			t.Fatal(err)
		}
		var back Update
		if err := json.Unmarshal(buf, &back); err != nil {
			t.Fatal(err)
		}
		got, err := back.ToUpdate()
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(up) {
			t.Fatalf("round trip diverged: %+v -> %s -> %+v", up, buf, got)
		}
	}
}

func TestUpdateConversionErrors(t *testing.T) {
	if _, err := (Update{Op: "xx"}).ToUpdate(); err == nil {
		t.Fatal("unknown wire op accepted")
	}
	if _, err := FromUpdate(krcore.Update{Op: krcore.UpdateOp(99)}); err == nil {
		t.Fatal("unknown krcore op serialised")
	}
}
